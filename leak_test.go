package highway

import (
	"testing"
	"time"
)

// waitPoolFull polls until every buffer has returned to the node's pool.
// The datapath frees asynchronously (PMD loops, sinks, teardown drains), so
// conservation is an eventually-true property.
func waitPoolFull(t *testing.T, node *Node) {
	t.Helper()
	pool := node.inner.Pool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pool.Avail() == pool.Cap() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("buffer leak: %d of %d returned", node.inner.Pool.Avail(), node.inner.Pool.Cap())
}

// TestNoBufferLeakAcrossChainLifecycles deploys and destroys chains
// repeatedly on one node and asserts the packet-buffer population is fully
// conserved — the strongest whole-system ownership check we have, covering
// PMD switchover, bypass drain, sink frees and teardown paths.
func TestNoBufferLeakAcrossChainLifecycles(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway, PoolSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	for cycle := 0; cycle < 3; cycle++ {
		chain, err := node.DeployBidirChain(2, ChainOptions{Flows: 2})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if !node.WaitBypasses(chain.ExpectedBypasses()) {
			t.Fatalf("cycle %d: bypasses not established", cycle)
		}
		time.Sleep(100 * time.Millisecond) // let traffic churn
		chain.Stop()
		waitPoolFull(t, node)
		if node.BypassCount() != 0 {
			t.Fatalf("cycle %d: bypasses leaked", cycle)
		}
		if node.inner.Registry.Len() != 0 {
			t.Fatalf("cycle %d: segments leaked", cycle)
		}
	}
}

// TestNoBufferLeakNICChain is the NIC-chain variant: generators, wire
// sinks, rate-limited queues and their teardown drains must also conserve
// the population.
func TestNoBufferLeakNICChain(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway, PoolSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	for cycle := 0; cycle < 2; cycle++ {
		chain, err := node.DeployNICChain(2, ChainOptions{Flows: 2})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if !node.WaitBypasses(chain.ExpectedBypasses()) {
			t.Fatalf("cycle %d: bypasses not established", cycle)
		}
		time.Sleep(100 * time.Millisecond)
		chain.Stop()
		waitPoolFull(t, node)
	}
}

// TestNoBufferLeakVanilla covers the baseline datapath's drop/free paths.
func TestNoBufferLeakVanilla(t *testing.T) {
	node, err := Start(Config{Mode: ModeVanilla, PoolSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(3, ChainOptions{Flows: 2})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	chain.Stop()
	waitPoolFull(t, node)
}
