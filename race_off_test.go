//go:build !race

package highway

const raceEnabled = false
