module ovshighway

go 1.24
