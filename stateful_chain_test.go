package highway

import (
	"testing"
	"time"
)

// TestStatefulChainSplitLedger deploys the NAT44→ACL→balancer chain via the
// placement optimizer across a 2-node cluster and closes the zero-loss
// conservation ledger: every packet the paced client sent must land in the
// server sink once generation pauses and the chain drains.
func TestStatefulChainSplitLedger(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		Config: Config{Mode: ModeHighway},
		Nodes:  []string{"node0", "node1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sc, crossings, err := c.DeployStatefulChain(StatefulChainOptions{
		Flows: 32, RatePps: 20_000, Backends: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// The balanced placement must split the 5 VNFs across both nodes.
	hosts := 0
	for _, name := range c.NodeNames() {
		if c.Internal().Node(name) != nil && sc.Deployment().Internal().Deployment(name) != nil {
			hosts++
		}
	}
	if hosts < 2 {
		t.Fatalf("chain deployed on %d node(s), want ≥2 (crossings=%d)", hosts, crossings)
	}
	if crossings < 1 {
		t.Fatalf("split chain reports %d crossings", crossings)
	}

	// Let the chain run: connections establish through NAT (bindings), ACL
	// (classifier walk then bypass) and balancer (backend pins).
	deadline := time.Now().Add(10 * time.Second)
	for sc.Received() < 5000 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sc.Received() < 5000 {
		t.Fatalf("sink received only %d packets", sc.Received())
	}

	// Stateful behaviour actually engaged.
	if got := sc.NAT().Bound.Load(); got != 32 {
		t.Fatalf("NAT bindings = %d, want 32 (one per flow)", got)
	}
	if sc.ACL().Established.Load() == 0 {
		t.Fatal("ACL conntrack bypass never hit")
	}
	if sc.ACL().Denied.Load() != 0 {
		t.Fatalf("ACL denied %d packets of an allowed workload", sc.ACL().Denied.Load())
	}
	if got := sc.Balancer().NewConns.Load(); got != 32 {
		t.Fatalf("balancer pinned %d connections, want 32", got)
	}

	// Conservation ledger: pause, drain, compare.
	sc.Pause(true)
	if inFlight := sc.Settle(5 * time.Second); inFlight != 0 {
		t.Fatalf("ledger did not close: %d packets unaccounted (sent=%d received=%d)",
			inFlight, sc.Sent(), sc.Received())
	}
}
