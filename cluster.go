package highway

import (
	"fmt"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
	"ovshighway/internal/orchestrator"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vnf"
)

// FabricMode selects the cluster's switched-core topology.
type FabricMode = orchestrator.FabricMode

// Fabric modes.
const (
	// FabricMesh joins every communicating node pair directly (default).
	FabricMesh = orchestrator.FabricMesh
	// FabricSpine relays leaf–leaf lanes through a designated spine node.
	FabricSpine = orchestrator.FabricSpine
)

// FabricConfig shapes the switched core joining the cluster's nodes.
type FabricConfig struct {
	// Mode selects mesh (direct adjacencies) or leaf–spine (lanes between
	// leaves relay through the spine's vSwitch).
	Mode FabricMode
	// Spine names the relay node in spine mode (default: the first node).
	// Ignored when Spines is set.
	Spine string
	// Spines names the relay nodes of a multi-spine Clos core: each
	// leaf–leaf lane gets one two-hop path per spine and the sender's ECMP
	// spreads flows across all of them. Empty falls back to the single
	// Spine.
	Spines []string
	// ECMPWidth is the number of parallel trunks per adjacency (default 1).
	// Flows are pinned to one trunk of the bundle by their (lane, Hash2)
	// hash, repicked off congested paths at flowlet boundaries, and re-pin
	// live onto survivors when a trunk dies.
	ECMPWidth int
	// StagingCap bounds each trunk direction's per-PCP staging queue
	// (default 256). Shallower queues surface congestion faster; deeper
	// ones absorb bigger bursts before dropping.
	StagingCap int
	// PCPWeights are the per-802.1Q-priority deficit-round-robin weights
	// every trunk schedules its shared rate budget by (0 = weight 1). A
	// crossing edge's graph.Edge.PCP selects its class.
	PCPWeights [8]float64
}

// ClusterConfig parametrizes StartCluster. The embedded Config applies to
// every node (OpenFlowAddr is per-node state and is ignored here).
type ClusterConfig struct {
	Config
	// Nodes names the compute nodes, in placement order; the first is the
	// default target for unplaced VNFs. Default: {"node0", "node1"}.
	Nodes []string
	// TrunkRate caps each direction of every node-pair trunk, SHARED by all
	// VLAN lanes riding it (0 = 10G line rate for 64B frames, negative =
	// unlimited). This models the contended ToR uplink: k crossings between
	// two nodes split one budget instead of getting k private wires. With
	// Fabric.ECMPWidth > 1 the cap is per parallel trunk.
	TrunkRate float64
	// WireLatency adds per-direction propagation delay on the trunks.
	WireLatency time.Duration
	// Fabric selects the switched-core topology, ECMP bundle width and lane
	// QoS weights.
	Fabric FabricConfig
}

// Cluster is a running set of NFV nodes connected by shared VLAN-steered
// trunks (one per node pair). Service graphs deployed on it are partitioned
// by per-VNF placement (graph.VNF.Node); hops between co-located VNFs
// behave exactly as on a single node — including, in highway mode,
// transparent bypass — while hops that cross nodes become VLAN lanes
// contending for the pair's trunk.
type Cluster struct {
	inner *orchestrator.Cluster
	tcfg  orchestrator.TrunkConfig
}

// StartCluster boots cfg.Nodes NFV nodes, each with its own vSwitch,
// agent, packet pool and (in highway mode) detector and bypass manager.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	names := cfg.Nodes
	if len(names) == 0 {
		names = []string{"node0", "node1"}
	}
	inner, err := orchestrator.NewCluster(names, cfg.Config.nodeConfig())
	if err != nil {
		return nil, err
	}
	return &Cluster{
		inner: inner,
		tcfg: orchestrator.TrunkConfig{
			RatePps:    cfg.TrunkRate,
			Latency:    cfg.WireLatency,
			StagingCap: cfg.Fabric.StagingCap,
			Mode:       cfg.Fabric.Mode,
			Spine:      cfg.Fabric.Spine,
			Spines:     cfg.Fabric.Spines,
			ECMPWidth:  cfg.Fabric.ECMPWidth,
			PCPWeights: cfg.Fabric.PCPWeights,
		},
	}, nil
}

// Stop shuts every node down.
func (c *Cluster) Stop() { c.inner.Stop() }

// Mode returns the cluster's datapath mode.
func (c *Cluster) Mode() Mode { return c.inner.Mode() }

// NodeNames returns the node names in placement order.
func (c *Cluster) NodeNames() []string { return c.inner.NodeNames() }

// BypassCount reports the number of live bypass channels cluster-wide.
func (c *Cluster) BypassCount() int { return c.inner.BypassLinkCount() }

// NodeBypassCount reports the live bypass channels on one node.
func (c *Cluster) NodeBypassCount(name string) int {
	n := c.inner.Node(name)
	if n == nil {
		return 0
	}
	return n.Switch.BypassLinkCount()
}

// WaitBypasses blocks (bounded) until exactly want bypasses are live
// across the cluster.
func (c *Cluster) WaitBypasses(want int) bool { return c.inner.WaitBypassCount(want) }

// Deploy partitions g by VNF placement and lowers each partition on its
// node, steering the boundary crossings over shared trunk lanes.
func (c *Cluster) Deploy(g *Graph) (*ClusterDeployment, error) {
	cd, err := c.inner.Deploy(g, c.tcfg)
	if err != nil {
		return nil, err
	}
	return &ClusterDeployment{inner: cd}, nil
}

// DeployPlaced runs the crossing-minimizing placement optimizer
// (graph.Place, a balanced Kernighan–Lin-style swap heuristic) over g
// before deploying: unpinned VNFs are assigned nodes so the deployment pays
// as few trunk lanes as possible. Returns the deployment and the crossing
// count the optimizer settled on.
func (c *Cluster) DeployPlaced(g *Graph) (*ClusterDeployment, int, error) {
	cd, crossings, err := c.inner.DeployPlaced(g, c.tcfg)
	if err != nil {
		return nil, 0, err
	}
	return &ClusterDeployment{inner: cd}, crossings, nil
}

// Internal returns the underlying orchestrator cluster, for advanced
// callers.
func (c *Cluster) Internal() *orchestrator.Cluster { return c.inner }

// Reconciler is the cluster's background convergence loop; see
// StartReconciler.
type Reconciler = orchestrator.Reconciler

// ReconcilerStats is a point-in-time read of a reconciler's counters.
type ReconcilerStats = orchestrator.ReconcilerStats

// ErrUnknownAdjacency reports fault injection aimed at a node pair (or
// bundle slot) the fabric does not carry; match with errors.Is.
var ErrUnknownAdjacency = orchestrator.ErrUnknownAdjacency

// FailTrunk kills one parallel trunk of a node-pair adjacency (bundle slot
// idx). Lanes keep flowing over the surviving slots via ECMP fall-forward;
// the reconciler rebuilds the dead slot. Idempotent per slot; failing the
// last live slot is refused.
func (c *Cluster) FailTrunk(a, b string, idx int) error { return c.inner.FailTrunk(a, b, idx) }

// FailNode simulates a node blip: every trunk touching the node dies and
// its vSwitch restarts with an empty flow table. VMs, ports and pools
// survive. Recovery is the reconciler's job.
func (c *Cluster) FailNode(name string) error { return c.inner.FailNode(name) }

// RestartVSwitch bounces one node's vSwitch, wiping its flow table,
// per-PMD caches and bypasses — the vswitchd-crash fault.
func (c *Cluster) RestartVSwitch(name string) error { return c.inner.RestartVSwitch(name) }

// WipeRules deletes every deployment-installed steering rule on a node
// (the fat-fingered `ovs-ofctl del-flows` fault). Returns the number of
// rules destroyed.
func (c *Cluster) WipeRules(name string) (int, error) { return c.inner.WipeDeploymentRules(name) }

// ReconcileOnce runs one synchronous convergence pass over every live
// deployment, repairing rule drift, dead trunks and missing lanes.
// Returns the number of repairs; zero means the cluster matched its spec.
func (c *Cluster) ReconcileOnce() (int, error) { return c.inner.ReconcileOnce() }

// StartReconciler launches the background convergence loop (interval <= 0
// defaults to 10ms). Stop it before stopping the cluster.
func (c *Cluster) StartReconciler(interval time.Duration) *Reconciler {
	return c.inner.StartReconciler(interval)
}

// Rebalancer is the background placement controller; see StartRebalancer.
type Rebalancer = orchestrator.Rebalancer

// RebalanceConfig tunes the placement controller's sampling interval and
// damping thresholds.
type RebalanceConfig = orchestrator.RebalanceConfig

// RebalancerStats is a point-in-time read of a rebalancer's counters.
type RebalancerStats = orchestrator.RebalancerStats

// RebalanceMove is one executed rolling move of a rebalance plan.
type RebalanceMove = orchestrator.RebalanceMove

// StartRebalancer launches the drift-driven placement controller: every
// interval it samples node loads, re-runs the placement optimizer, and
// converges the live layout onto the proposal via rolling zero-loss
// migrations — one VNF in flight, damped against oscillating load, and
// deferred while the fabric carries unrepaired faults. Stop it before
// stopping the cluster.
func (c *Cluster) StartRebalancer(cfg RebalanceConfig) *Rebalancer {
	return c.inner.StartRebalancer(cfg)
}

// Cordon excludes a node from automatic placement (DeployPlaced and the
// rebalance controller); running VNFs and explicit pins are untouched.
func (c *Cluster) Cordon(node string) error { return c.inner.Cordon(node) }

// Uncordon returns a node to the placement pool.
func (c *Cluster) Uncordon(node string) error { return c.inner.Uncordon(node) }

// CordonedNodes lists the currently cordoned nodes in cluster order.
func (c *Cluster) CordonedNodes() []string { return c.inner.CordonedNodes() }

// Drain cordons a node and live-evacuates every middle VNF it hosts via
// rolling zero-loss migrations, so the node can be retired under traffic.
// Returns the number of VNFs moved.
func (c *Cluster) Drain(node string) (int, error) { return c.inner.Drain(node) }

// ClusterDeployment is a service graph deployed across a cluster.
type ClusterDeployment struct {
	inner *orchestrator.ClusterDeployment
}

// Stop tears the deployment down on every node and dismantles the wires.
func (d *ClusterDeployment) Stop() { d.inner.Stop() }

// Internal returns the underlying cluster deployment.
func (d *ClusterDeployment) Internal() *orchestrator.ClusterDeployment { return d.inner }

// Reconcile runs one convergence pass over just this deployment.
func (d *ClusterDeployment) Reconcile() (int, error) { return d.inner.Reconcile() }

// MigrateReport describes a completed live migration: the make-before-break
// cutover window and whether the old path drained before the deadline.
type MigrateReport = orchestrator.MigrateReport

// ErrMigrationInFlight reports a control-plane action refused because a
// live migration currently owns the deployment; match with errors.Is.
var ErrMigrationInFlight = orchestrator.ErrMigrationInFlight

// Migrate live-moves a middle VNF to another node using make-before-break
// double-steering: the replica and its whole forwarding path are plumbed
// dark, the feed rules flip atomically, and the old path drains to
// delivery before anything is torn down — targeting zero packets lost.
// The report says whether the drain was observed complete (Drained) or the
// teardown proceeded on the deadline. One migration per deployment at a
// time: a concurrent call fails with ErrMigrationInFlight.
func (d *ClusterDeployment) Migrate(vnf, node string) (MigrateReport, error) {
	return d.inner.Migrate(vnf, node)
}

// Crossings reports the deployment's current node-boundary crossing count —
// the trunk lanes its layout pays for.
func (d *ClusterDeployment) Crossings() int { return d.inner.Crossings() }

// SplitChain is a bidirectional benchmark chain deployed across cluster
// nodes, with the same measurement hooks as Chain.
type SplitChain struct {
	dep      *ClusterDeployment
	n        int
	segments []int
	ends     []*vnf.SrcSink
}

// DeploySplitChain deploys the Figure 3(a) bidirectional chain of n
// forwarder VMs with its VM sequence placed across the given nodes in
// contiguous, evenly-sized segments (nil nodes = all cluster nodes in
// order). It mirrors Node.DeployBidirChain: the paper's x-axis VM count is
// n+2, and in highway mode every intra-node hop still becomes a bypass —
// only the len(nodes)-1 wire hops stay on the NIC path.
func (c *Cluster) DeploySplitChain(n int, nodes []string, opts ChainOptions) (*SplitChain, error) {
	if len(nodes) == 0 {
		nodes = c.NodeNames()
	}
	if len(nodes) > n+2 {
		nodes = nodes[:n+2]
	}
	g := graph.SplitBidirChain(n, nodes)
	applyBidirEndpointArgs(g, opts)
	dep, err := c.Deploy(g)
	if err != nil {
		return nil, err
	}
	sc := &SplitChain{dep: dep, n: n}
	// Derive the segment sizes from the placement the graph actually got,
	// so ExpectedBypasses can never drift from SplitBidirChain's layout.
	counts := make(map[string]int, len(nodes))
	for _, v := range g.VNFs {
		counts[v.Node]++
	}
	for _, name := range nodes {
		if k := counts[name]; k > 0 {
			sc.segments = append(sc.segments, k)
		}
	}
	for _, name := range []string{"end0", "end1"} {
		ss := dep.inner.SrcSink(name)
		if ss == nil {
			dep.Stop()
			return nil, fmt.Errorf("splitchain: endpoint %s missing after deploy", name)
		}
		sc.ends = append(sc.ends, ss)
	}
	return sc, nil
}

// Stop tears the chain down across all nodes.
func (c *SplitChain) Stop() { c.dep.Stop() }

// Deployment exposes the chain's underlying cluster deployment, for
// reconcile and migration calls against a benchmark chain.
func (c *SplitChain) Deployment() *ClusterDeployment { return c.dep }

// Pause stops (or resumes) packet generation at both chain ends. Reception
// keeps running, so a paused chain drains: in-flight packets land and the
// conservation ledger settles.
func (c *SplitChain) Pause(p bool) {
	for _, e := range c.ends {
		e.SetPaused(p)
	}
}

// InFlight returns generated-minus-received summed over both ends — the
// number of packets currently somewhere inside the cluster. On a paced
// chain this is an exact ledger; after Pause+Settle a nonzero delta across
// an operation means packets were lost.
func (c *SplitChain) InFlight() int64 {
	var total int64
	for _, e := range c.ends {
		total += e.InFlight()
	}
	return total
}

// Settle pauses nothing but waits (bounded by timeout) for the chain's
// sent/received ledger to stop moving — a sustained run of identical
// observations, not just two, since a packet parked behind a stalled
// thread moves no counter for a while — then returns InFlight. Call after
// Pause(true) to let residual in-flight packets land.
func (c *SplitChain) Settle(timeout time.Duration) int64 {
	ledger := func() uint64 {
		var v uint64
		for _, e := range c.ends {
			v += e.Sent.Load() + e.Received.Load()
		}
		return v
	}
	deadline := time.Now().Add(timeout)
	prev := ledger()
	stable := 0
	for time.Now().Before(deadline) && stable < 8 {
		time.Sleep(5 * time.Millisecond)
		cur := ledger()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
	return c.InFlight()
}

// Length returns the number of forwarder VMs.
func (c *SplitChain) Length() int { return c.n }

// Segments returns the number of chain VMs placed on each node, in node
// order.
func (c *SplitChain) Segments() []int { return append([]int(nil), c.segments...) }

// ResetWindow zeroes all measurement counters.
func (c *SplitChain) ResetWindow() {
	for _, e := range c.ends {
		e.ResetWindow()
	}
}

// RatePps returns the aggregate receive rate of both chain ends.
func (c *SplitChain) RatePps() float64 {
	var total float64
	for _, e := range c.ends {
		total += e.RatePps()
	}
	return total
}

// MeasureMpps runs a fresh measurement window and returns the aggregate
// throughput in Mpps.
func (c *SplitChain) MeasureMpps(window time.Duration) float64 {
	c.ResetWindow()
	time.Sleep(window)
	return c.RatePps() / 1e6
}

// LatencyQuantile returns the q-quantile of one-way latency across both
// directions. Only meaningful for chains deployed with Timestamp: true;
// timestamps survive the trunk hop (the pump copies them across pools).
func (c *SplitChain) LatencyQuantile(q float64) time.Duration {
	var worst time.Duration
	for _, e := range c.ends {
		if v := e.Lat.Quantile(q); v > worst {
			worst = v
		}
	}
	return worst
}

// LatencyMean returns the mean one-way latency across both directions.
func (c *SplitChain) LatencyMean() time.Duration {
	var sum time.Duration
	var n int
	for _, e := range c.ends {
		if e.Lat.Count() > 0 {
			sum += e.Lat.Mean()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// LatencySamples returns the number of recorded latency samples.
func (c *SplitChain) LatencySamples() uint64 {
	var total uint64
	for _, e := range c.ends {
		total += e.Lat.Count()
	}
	return total
}

// ExpectedBypasses returns the number of directed bypass links a highway
// cluster should establish for this chain: every intra-node VM↔VM hop in
// both directions. A segment of k VMs contributes k-1 hops; the trunk hops
// between segments cannot bypass.
func (c *SplitChain) ExpectedBypasses() int {
	hops := 0
	for _, k := range c.segments {
		if k > 1 {
			hops += k - 1
		}
	}
	return 2 * hops
}

// StatefulChainOptions parametrizes DeployStatefulChain. Zero values take
// defaults sized so the chain reaches a lossless steady state.
type StatefulChainOptions struct {
	// Flows is the number of concurrent client connections the source
	// cycles through (default 64). The NAT's per-node port block is sized
	// to cover them exactly.
	Flows int
	// RatePps paces the client source (default 50_000). Keep it below
	// chain capacity or the conservation ledger cannot close.
	RatePps float64
	// Backends is the number of balancer targets behind the VIP (default 2).
	Backends int
}

// StatefulChain is the production service chain of the conntrack PR:
// client source → NAT44 → ACL (established bypass) → L4 balancer → sink,
// deployed across cluster nodes by the placement optimizer. Unlike the
// bidirectional benchmark chains, traffic is unidirectional and paced, so
// the conservation ledger is exact: after Pause and Settle, every packet
// the source sent must have landed in the sink.
type StatefulChain struct {
	dep  *ClusterDeployment
	src  *vnf.Source
	sink *vnf.Sink
	nat  *vnf.NAT44
	acl  *vnf.ACL
	lb   *vnf.Balancer
}

// DeployStatefulChain builds and deploys the NAT44→ACL→balancer chain via
// the crossing-minimizing placement optimizer (DeployPlaced), returning the
// chain handle and the placement's crossing count. The traffic plan: the
// client talks to a VIP, the NAT source-translates it onto its node's port
// block, the ACL admits only VIP-bound traffic (first packet via the
// compiled classifier, the rest through the conntrack bypass), and the
// balancer pins each connection to a backend.
func (c *Cluster) DeployStatefulChain(opts StatefulChainOptions) (*StatefulChain, int, error) {
	if opts.Flows <= 0 {
		opts.Flows = 64
	}
	if opts.RatePps <= 0 {
		opts.RatePps = 50_000
	}
	if opts.Backends <= 0 {
		opts.Backends = 2
	}
	vip := pkt.IP4{10, 99, 0, 1}
	const vipPort = 80
	spec := orchestrator.DefaultTrafficSpec()
	spec.DstIP = vip
	spec.DstPort = vipPort
	backends := make([]vnf.Backend, opts.Backends)
	for i := range backends {
		backends[i] = vnf.Backend{IP: pkt.IP4{10, 1, 0, byte(i + 1)}, Port: 8080}
	}
	g := &Graph{
		VNFs: []graph.VNF{
			{Name: "client", Kind: graph.KindSource, Args: orchestrator.SourceSpecArgs{
				Spec: spec, Flows: opts.Flows, RatePps: opts.RatePps,
			}},
			{Name: "nat", Kind: graph.KindNAT44, Args: orchestrator.NAT44Args{
				ExtIP: pkt.IP4{192, 0, 2, 1}, PortBase: 40000, PortCount: opts.Flows,
			}},
			{Name: "acl", Kind: graph.KindACL, Args: orchestrator.ACLArgs{
				Rules: []vnf.ACLRule{{
					Priority: 100,
					Match:    flow.MatchAll().WithIPProto(pkt.ProtoUDP).WithIPDst(vip, 32).WithL4Dst(vipPort),
					Allow:    true,
				}},
			}},
			{Name: "lb", Kind: graph.KindBalancer, Args: orchestrator.BalancerArgs{
				VIP: vip, VIPPort: vipPort, Backends: backends,
			}},
			{Name: "server", Kind: graph.KindSink},
		},
		Edges: []graph.Edge{
			{A: graph.VNFPort("client", 0), B: graph.VNFPort("nat", 0), Bidirectional: true},
			{A: graph.VNFPort("nat", 1), B: graph.VNFPort("acl", 0), Bidirectional: true},
			{A: graph.VNFPort("acl", 1), B: graph.VNFPort("lb", 0), Bidirectional: true},
			{A: graph.VNFPort("lb", 1), B: graph.VNFPort("server", 0), Bidirectional: true},
		},
	}
	dep, crossings, err := c.DeployPlaced(g)
	if err != nil {
		return nil, 0, err
	}
	sc := &StatefulChain{
		dep:  dep,
		sink: dep.inner.Sink("server"),
		nat:  dep.inner.NAT44("nat"),
		acl:  dep.inner.ACL("acl"),
		lb:   dep.inner.Balancer("lb"),
	}
	if srcs := dep.inner.Sources(); len(srcs) == 1 {
		sc.src = srcs[0]
	}
	if sc.src == nil || sc.sink == nil || sc.nat == nil || sc.acl == nil || sc.lb == nil {
		dep.Stop()
		return nil, 0, fmt.Errorf("statefulchain: VNF handles missing after deploy")
	}
	return sc, crossings, nil
}

// Stop tears the chain down across all nodes.
func (sc *StatefulChain) Stop() { sc.dep.Stop() }

// Deployment exposes the chain's underlying cluster deployment.
func (sc *StatefulChain) Deployment() *ClusterDeployment { return sc.dep }

// NAT returns the chain's NAT44 handle.
func (sc *StatefulChain) NAT() *vnf.NAT44 { return sc.nat }

// ACL returns the chain's stateful-firewall handle.
func (sc *StatefulChain) ACL() *vnf.ACL { return sc.acl }

// Balancer returns the chain's L4 balancer handle.
func (sc *StatefulChain) Balancer() *vnf.Balancer { return sc.lb }

// Sent returns the number of packets the client source generated.
func (sc *StatefulChain) Sent() uint64 { return sc.src.Sent.Load() }

// Received returns the number of packets the server sink absorbed.
func (sc *StatefulChain) Received() uint64 { return sc.sink.Received.Load() }

// Pause stops (or resumes) client generation; the rest of the chain keeps
// forwarding, so in-flight packets drain toward the sink.
func (sc *StatefulChain) Pause(p bool) { sc.src.SetPaused(p) }

// InFlight returns sent-minus-received: packets currently inside the chain.
// After Pause+Settle a nonzero value means packets were lost.
func (sc *StatefulChain) InFlight() int64 {
	return int64(sc.Sent()) - int64(sc.Received())
}

// Settle waits (bounded by timeout) for the chain's ledger to stop moving —
// a sustained run of identical observations — then returns InFlight. Call
// after Pause(true).
func (sc *StatefulChain) Settle(timeout time.Duration) int64 {
	ledger := func() uint64 { return sc.Sent() + sc.Received() }
	deadline := time.Now().Add(timeout)
	prev := ledger()
	stable := 0
	for time.Now().Before(deadline) && stable < 8 {
		time.Sleep(5 * time.Millisecond)
		cur := ledger()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
	return sc.InFlight()
}
