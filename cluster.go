package highway

import (
	"fmt"
	"time"

	"ovshighway/internal/graph"
	"ovshighway/internal/orchestrator"
	"ovshighway/internal/vnf"
)

// FabricMode selects the cluster's switched-core topology.
type FabricMode = orchestrator.FabricMode

// Fabric modes.
const (
	// FabricMesh joins every communicating node pair directly (default).
	FabricMesh = orchestrator.FabricMesh
	// FabricSpine relays leaf–leaf lanes through a designated spine node.
	FabricSpine = orchestrator.FabricSpine
)

// FabricConfig shapes the switched core joining the cluster's nodes.
type FabricConfig struct {
	// Mode selects mesh (direct adjacencies) or leaf–spine (lanes between
	// leaves relay through the spine's vSwitch).
	Mode FabricMode
	// Spine names the relay node in spine mode (default: the first node).
	Spine string
	// ECMPWidth is the number of parallel trunks per adjacency (default 1).
	// Flows are pinned to one trunk of the bundle by their (lane, Hash2)
	// hash and re-pin live onto survivors when a trunk dies.
	ECMPWidth int
	// PCPWeights are the per-802.1Q-priority deficit-round-robin weights
	// every trunk schedules its shared rate budget by (0 = weight 1). A
	// crossing edge's graph.Edge.PCP selects its class.
	PCPWeights [8]float64
}

// ClusterConfig parametrizes StartCluster. The embedded Config applies to
// every node (OpenFlowAddr is per-node state and is ignored here).
type ClusterConfig struct {
	Config
	// Nodes names the compute nodes, in placement order; the first is the
	// default target for unplaced VNFs. Default: {"node0", "node1"}.
	Nodes []string
	// TrunkRate caps each direction of every node-pair trunk, SHARED by all
	// VLAN lanes riding it (0 = 10G line rate for 64B frames, negative =
	// unlimited). This models the contended ToR uplink: k crossings between
	// two nodes split one budget instead of getting k private wires. With
	// Fabric.ECMPWidth > 1 the cap is per parallel trunk.
	TrunkRate float64
	// WireLatency adds per-direction propagation delay on the trunks.
	WireLatency time.Duration
	// Fabric selects the switched-core topology, ECMP bundle width and lane
	// QoS weights.
	Fabric FabricConfig
}

// Cluster is a running set of NFV nodes connected by shared VLAN-steered
// trunks (one per node pair). Service graphs deployed on it are partitioned
// by per-VNF placement (graph.VNF.Node); hops between co-located VNFs
// behave exactly as on a single node — including, in highway mode,
// transparent bypass — while hops that cross nodes become VLAN lanes
// contending for the pair's trunk.
type Cluster struct {
	inner *orchestrator.Cluster
	tcfg  orchestrator.TrunkConfig
}

// StartCluster boots cfg.Nodes NFV nodes, each with its own vSwitch,
// agent, packet pool and (in highway mode) detector and bypass manager.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	names := cfg.Nodes
	if len(names) == 0 {
		names = []string{"node0", "node1"}
	}
	inner, err := orchestrator.NewCluster(names, cfg.Config.nodeConfig())
	if err != nil {
		return nil, err
	}
	return &Cluster{
		inner: inner,
		tcfg: orchestrator.TrunkConfig{
			RatePps:    cfg.TrunkRate,
			Latency:    cfg.WireLatency,
			Mode:       cfg.Fabric.Mode,
			Spine:      cfg.Fabric.Spine,
			ECMPWidth:  cfg.Fabric.ECMPWidth,
			PCPWeights: cfg.Fabric.PCPWeights,
		},
	}, nil
}

// Stop shuts every node down.
func (c *Cluster) Stop() { c.inner.Stop() }

// Mode returns the cluster's datapath mode.
func (c *Cluster) Mode() Mode { return c.inner.Mode() }

// NodeNames returns the node names in placement order.
func (c *Cluster) NodeNames() []string { return c.inner.NodeNames() }

// BypassCount reports the number of live bypass channels cluster-wide.
func (c *Cluster) BypassCount() int { return c.inner.BypassLinkCount() }

// NodeBypassCount reports the live bypass channels on one node.
func (c *Cluster) NodeBypassCount(name string) int {
	n := c.inner.Node(name)
	if n == nil {
		return 0
	}
	return n.Switch.BypassLinkCount()
}

// WaitBypasses blocks (bounded) until exactly want bypasses are live
// across the cluster.
func (c *Cluster) WaitBypasses(want int) bool { return c.inner.WaitBypassCount(want) }

// Deploy partitions g by VNF placement and lowers each partition on its
// node, steering the boundary crossings over shared trunk lanes.
func (c *Cluster) Deploy(g *Graph) (*ClusterDeployment, error) {
	cd, err := c.inner.Deploy(g, c.tcfg)
	if err != nil {
		return nil, err
	}
	return &ClusterDeployment{inner: cd}, nil
}

// DeployPlaced runs the crossing-minimizing placement optimizer
// (graph.Place, a balanced Kernighan–Lin-style swap heuristic) over g
// before deploying: unpinned VNFs are assigned nodes so the deployment pays
// as few trunk lanes as possible. Returns the deployment and the crossing
// count the optimizer settled on.
func (c *Cluster) DeployPlaced(g *Graph) (*ClusterDeployment, int, error) {
	cd, crossings, err := c.inner.DeployPlaced(g, c.tcfg)
	if err != nil {
		return nil, 0, err
	}
	return &ClusterDeployment{inner: cd}, crossings, nil
}

// Internal returns the underlying orchestrator cluster, for advanced
// callers.
func (c *Cluster) Internal() *orchestrator.Cluster { return c.inner }

// ClusterDeployment is a service graph deployed across a cluster.
type ClusterDeployment struct {
	inner *orchestrator.ClusterDeployment
}

// Stop tears the deployment down on every node and dismantles the wires.
func (d *ClusterDeployment) Stop() { d.inner.Stop() }

// Internal returns the underlying cluster deployment.
func (d *ClusterDeployment) Internal() *orchestrator.ClusterDeployment { return d.inner }

// SplitChain is a bidirectional benchmark chain deployed across cluster
// nodes, with the same measurement hooks as Chain.
type SplitChain struct {
	dep      *ClusterDeployment
	n        int
	segments []int
	ends     []*vnf.SrcSink
}

// DeploySplitChain deploys the Figure 3(a) bidirectional chain of n
// forwarder VMs with its VM sequence placed across the given nodes in
// contiguous, evenly-sized segments (nil nodes = all cluster nodes in
// order). It mirrors Node.DeployBidirChain: the paper's x-axis VM count is
// n+2, and in highway mode every intra-node hop still becomes a bypass —
// only the len(nodes)-1 wire hops stay on the NIC path.
func (c *Cluster) DeploySplitChain(n int, nodes []string, opts ChainOptions) (*SplitChain, error) {
	if len(nodes) == 0 {
		nodes = c.NodeNames()
	}
	if len(nodes) > n+2 {
		nodes = nodes[:n+2]
	}
	g := graph.SplitBidirChain(n, nodes)
	applyBidirEndpointArgs(g, opts)
	dep, err := c.Deploy(g)
	if err != nil {
		return nil, err
	}
	sc := &SplitChain{dep: dep, n: n}
	// Derive the segment sizes from the placement the graph actually got,
	// so ExpectedBypasses can never drift from SplitBidirChain's layout.
	counts := make(map[string]int, len(nodes))
	for _, v := range g.VNFs {
		counts[v.Node]++
	}
	for _, name := range nodes {
		if k := counts[name]; k > 0 {
			sc.segments = append(sc.segments, k)
		}
	}
	for _, name := range []string{"end0", "end1"} {
		ss := dep.inner.SrcSink(name)
		if ss == nil {
			dep.Stop()
			return nil, fmt.Errorf("splitchain: endpoint %s missing after deploy", name)
		}
		sc.ends = append(sc.ends, ss)
	}
	return sc, nil
}

// Stop tears the chain down across all nodes.
func (c *SplitChain) Stop() { c.dep.Stop() }

// Length returns the number of forwarder VMs.
func (c *SplitChain) Length() int { return c.n }

// Segments returns the number of chain VMs placed on each node, in node
// order.
func (c *SplitChain) Segments() []int { return append([]int(nil), c.segments...) }

// ResetWindow zeroes all measurement counters.
func (c *SplitChain) ResetWindow() {
	for _, e := range c.ends {
		e.ResetWindow()
	}
}

// RatePps returns the aggregate receive rate of both chain ends.
func (c *SplitChain) RatePps() float64 {
	var total float64
	for _, e := range c.ends {
		total += e.RatePps()
	}
	return total
}

// MeasureMpps runs a fresh measurement window and returns the aggregate
// throughput in Mpps.
func (c *SplitChain) MeasureMpps(window time.Duration) float64 {
	c.ResetWindow()
	time.Sleep(window)
	return c.RatePps() / 1e6
}

// LatencyQuantile returns the q-quantile of one-way latency across both
// directions. Only meaningful for chains deployed with Timestamp: true;
// timestamps survive the trunk hop (the pump copies them across pools).
func (c *SplitChain) LatencyQuantile(q float64) time.Duration {
	var worst time.Duration
	for _, e := range c.ends {
		if v := e.Lat.Quantile(q); v > worst {
			worst = v
		}
	}
	return worst
}

// LatencyMean returns the mean one-way latency across both directions.
func (c *SplitChain) LatencyMean() time.Duration {
	var sum time.Duration
	var n int
	for _, e := range c.ends {
		if e.Lat.Count() > 0 {
			sum += e.Lat.Mean()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// LatencySamples returns the number of recorded latency samples.
func (c *SplitChain) LatencySamples() uint64 {
	var total uint64
	for _, e := range c.ends {
		total += e.Lat.Count()
	}
	return total
}

// ExpectedBypasses returns the number of directed bypass links a highway
// cluster should establish for this chain: every intra-node VM↔VM hop in
// both directions. A segment of k VMs contributes k-1 hops; the trunk hops
// between segments cannot bypass.
func (c *SplitChain) ExpectedBypasses() int {
	hops := 0
	for _, k := range c.segments {
		if k > 1 {
			hops += k - 1
		}
	}
	return 2 * hops
}
