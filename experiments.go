package highway

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ovshighway/internal/conntrack"
	"ovshighway/internal/core"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
	"ovshighway/internal/mempool"
	"ovshighway/internal/orchestrator"
	"ovshighway/internal/pkt"
	"ovshighway/internal/trunk"
	"ovshighway/internal/vnf"
	"ovshighway/internal/vswitch"
)

// ExperimentConfig tunes the measurement harness. Zero values take defaults
// (200 ms warm-up, 500 ms window, 4 flows).
type ExperimentConfig struct {
	Warmup time.Duration
	Window time.Duration
	Flows  int
	// NumPMDs configures the vSwitch forwarding threads (default 1, as a
	// single shared PMD core is what makes the vanilla baseline decay).
	NumPMDs int
	// EMCDisabled turns the exact-match cache off (ablation A1).
	EMCDisabled bool
	// EMCEntries overrides the per-PMD exact-match cache size (0 = the
	// vswitch default, 8192). The probabilistic-insertion win only shows
	// when the cache is small relative to the active flow count.
	EMCEntries int
	// SMCDisabled turns the signature-match cache off (ablation A5).
	SMCDisabled bool
	// EMCInsertInvProb is the vswitch emc-insert-inv-prob knob: 1 = insert
	// every classifier resolution into the EMC (default), N = one in N —
	// the OVS policy that keeps elephants from being churned out by mice
	// under heavy-tailed traffic.
	EMCInsertInvProb int
	// ZipfSkew, when > 1, switches the flowscale generator from uniform
	// cycling to a Zipf(s) draw over the flow ids: a few elephant flows
	// carry most packets over a long mouse tail — the regime where sparse
	// EMC insertion wins.
	ZipfSkew float64
	// NumQueues is the RSS queue count per dpdkr port in the pmdscale
	// experiment (default 4): the hot port's traffic fans over this many
	// independently-homed queues, which is what gives extra PMDs something
	// to own.
	NumQueues int
	// AutoBalance enables the load balancer in experiment arms that support
	// it (pmdscale runs each point with and without regardless; this seeds
	// the default for other harness users).
	AutoBalance bool
}

func (c *ExperimentConfig) fill() {
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 500 * time.Millisecond
	}
	if c.Flows == 0 {
		c.Flows = 4
	}
	if c.NumQueues == 0 {
		c.NumQueues = 4
	}
}

// ThroughputRow is one point of Figure 3.
type ThroughputRow struct {
	VMs  int
	Mode Mode
	Mpps float64
}

// RunFig3aPoint measures one memory-only chain point: vms is the paper's
// x-axis (total VMs including the source/sink endpoints, so vms-2
// forwarders), mode selects the datapath.
func RunFig3aPoint(vms int, mode Mode, cfg ExperimentConfig) (ThroughputRow, error) {
	cfg.fill()
	if vms < 2 {
		return ThroughputRow{}, fmt.Errorf("fig3a: need >= 2 VMs, got %d", vms)
	}
	node, err := Start(Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled, SMCDisabled: cfg.SMCDisabled})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(vms-2, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !node.WaitBypasses(chain.ExpectedBypasses()) {
		return ThroughputRow{}, fmt.Errorf("fig3a: bypasses not established (%d live)", node.BypassCount())
	}
	time.Sleep(cfg.Warmup)
	mpps := chain.MeasureMpps(cfg.Window)
	return ThroughputRow{VMs: vms, Mode: mode, Mpps: mpps}, nil
}

// RunFig3a sweeps chain lengths for both modes, reproducing Figure 3(a).
func RunFig3a(vmCounts []int, cfg ExperimentConfig) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunFig3aPoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RunFig3bPoint measures one NIC-attached chain point: vms forwarder VMs
// between two line-rate-limited 10G NICs.
func RunFig3bPoint(vms int, mode Mode, cfg ExperimentConfig) (ThroughputRow, error) {
	cfg.fill()
	if vms < 1 {
		return ThroughputRow{}, fmt.Errorf("fig3b: need >= 1 VM, got %d", vms)
	}
	node, err := Start(Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled, SMCDisabled: cfg.SMCDisabled})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer node.Stop()
	chain, err := node.DeployNICChain(vms, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !node.WaitBypasses(chain.ExpectedBypasses()) {
		return ThroughputRow{}, fmt.Errorf("fig3b: bypasses not established (%d live)", node.BypassCount())
	}
	time.Sleep(cfg.Warmup)
	mpps := chain.MeasureMpps(cfg.Window)
	return ThroughputRow{VMs: vms, Mode: mode, Mpps: mpps}, nil
}

// RunFig3b sweeps chain lengths for both modes, reproducing Figure 3(b).
func RunFig3b(vmCounts []int, cfg ExperimentConfig) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunFig3bPoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// MultiNodeRow is one point of the 2-node split-chain experiment: a
// Fig-3a-style bidirectional chain whose VM sequence is split contiguously
// across two nodes joined by a shared VLAN-steered trunk.
type MultiNodeRow struct {
	VMs      int // total chain VMs (both endpoints included), paper x-axis
	Mode     Mode
	Mpps     float64
	Bypasses int   // live bypasses while measuring (0 in vanilla mode)
	Segments []int // chain VMs per node
}

// RunMultiNodePoint measures one 2-node split-chain point: vms total VMs
// (so vms-2 forwarders) split across nodes "node-a"/"node-b". Intra-node
// hops can bypass in highway mode; the inter-node hop rides a VLAN lane on
// the nodes' shared 10G trunk in either mode — realistic shared-uplink
// contention, not a private wire.
func RunMultiNodePoint(vms int, mode Mode, cfg ExperimentConfig) (MultiNodeRow, error) {
	cfg.fill()
	if vms < 2 {
		return MultiNodeRow{}, fmt.Errorf("multinode: need >= 2 VMs, got %d", vms)
	}
	cluster, err := StartCluster(ClusterConfig{
		Config: Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled, SMCDisabled: cfg.SMCDisabled},
		Nodes:  []string{"node-a", "node-b"},
	})
	if err != nil {
		return MultiNodeRow{}, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(vms-2, nil, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return MultiNodeRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return MultiNodeRow{}, fmt.Errorf("multinode: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	time.Sleep(cfg.Warmup)
	mpps := chain.MeasureMpps(cfg.Window)
	return MultiNodeRow{
		VMs: vms, Mode: mode, Mpps: mpps,
		Bypasses: cluster.BypassCount(),
		Segments: chain.Segments(),
	}, nil
}

// RunMultiNode sweeps split-chain lengths for both modes.
func RunMultiNode(vmCounts []int, cfg ExperimentConfig) ([]MultiNodeRow, error) {
	var rows []MultiNodeRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunMultiNodePoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// WireLatencyRow is one point of the cross-node propagation-delay sweep:
// a 2-node split chain measured under a given per-direction trunk latency.
type WireLatencyRow struct {
	WireLatency time.Duration
	VMs         int
	Mode        Mode
	Mpps        float64
	P50, P99    time.Duration
	Samples     uint64
}

// RunWireLatencyPoint measures one split-chain point under the given trunk
// propagation delay (ClusterConfig.WireLatency): throughput and one-way
// latency together, under bidirectional load. The chain crosses the trunk
// once, so every end-to-end path pays the delay exactly once per direction.
func RunWireLatencyPoint(vms int, wireLat time.Duration, mode Mode, cfg ExperimentConfig) (WireLatencyRow, error) {
	cfg.fill()
	if vms < 2 {
		return WireLatencyRow{}, fmt.Errorf("wlatency: need >= 2 VMs, got %d", vms)
	}
	cluster, err := StartCluster(ClusterConfig{
		Config:      Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled, SMCDisabled: cfg.SMCDisabled},
		Nodes:       []string{"node-a", "node-b"},
		WireLatency: wireLat,
	})
	if err != nil {
		return WireLatencyRow{}, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(vms-2, nil, ChainOptions{Flows: cfg.Flows, Timestamp: true})
	if err != nil {
		return WireLatencyRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return WireLatencyRow{}, fmt.Errorf("wlatency: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	time.Sleep(cfg.Warmup)
	chain.ResetWindow()
	time.Sleep(cfg.Window)
	return WireLatencyRow{
		WireLatency: wireLat,
		VMs:         vms,
		Mode:        mode,
		Mpps:        chain.RatePps() / 1e6,
		P50:         chain.LatencyQuantile(0.50),
		P99:         chain.LatencyQuantile(0.99),
		Samples:     chain.LatencySamples(),
	}, nil
}

// RunWireLatency sweeps the trunk propagation delay over a fixed split
// chain for both modes (ROADMAP's cross-node latency experiment). The
// expectation: the wire delay adds a mode-independent floor, so the
// highway's relative latency advantage shrinks as propagation dominates —
// but its throughput advantage survives untouched.
func RunWireLatency(vms int, latencies []time.Duration, cfg ExperimentConfig) ([]WireLatencyRow, error) {
	var rows []WireLatencyRow
	for _, lat := range latencies {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunWireLatencyPoint(vms, lat, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// LatencyRow is one point of the latency experiment (E3).
type LatencyRow struct {
	VMs     int
	Mode    Mode
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
	Samples uint64
}

// RunLatencyPoint measures one-way latency through a memory-only chain of
// vms total VMs under bidirectional load.
func RunLatencyPoint(vms int, mode Mode, cfg ExperimentConfig) (LatencyRow, error) {
	cfg.fill()
	if vms < 2 {
		return LatencyRow{}, fmt.Errorf("latency: need >= 2 VMs, got %d", vms)
	}
	node, err := Start(Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled, SMCDisabled: cfg.SMCDisabled})
	if err != nil {
		return LatencyRow{}, err
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(vms-2, ChainOptions{Flows: cfg.Flows, Timestamp: true})
	if err != nil {
		return LatencyRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !node.WaitBypasses(chain.ExpectedBypasses()) {
		return LatencyRow{}, fmt.Errorf("latency: bypasses not established")
	}
	time.Sleep(cfg.Warmup)
	chain.ResetWindow()
	time.Sleep(cfg.Window)
	return LatencyRow{
		VMs:     vms,
		Mode:    mode,
		Mean:    chain.LatencyMean(),
		P50:     chain.LatencyQuantile(0.50),
		P99:     chain.LatencyQuantile(0.99),
		Samples: chain.LatencySamples(),
	}, nil
}

// RunLatency sweeps chain lengths for both modes (experiment E3; the paper
// reports ~80% improvement at 8 VMs).
func RunLatency(vmCounts []int, cfg ExperimentConfig) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunLatencyPoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// SetupRow summarizes the bypass establishment latency experiment (E4).
type SetupRow struct {
	Samples int
	Min     time.Duration
	Mean    time.Duration
	Max     time.Duration
	// HotplugDelay/ConfigDelay echo the emulated control-plane latencies.
	HotplugDelay time.Duration
	ConfigDelay  time.Duration
}

// RunSetupTime measures the flow-mod→bypass-active latency (experiment E4)
// over `links` directed links, with the given emulated QEMU/virtio delays.
// With QEMU-realistic delays (tens of ms for hot-plug), the total lands in
// the paper's ~100 ms regime; with zero delays it exposes the pure
// control-plane software cost of this implementation.
func RunSetupTime(links int, hotplug, config time.Duration) (SetupRow, error) {
	if links < 2 {
		links = 2
	}
	var (
		mu      sync.Mutex
		samples []time.Duration
	)
	node, err := Start(Config{
		Mode:         ModeHighway,
		HotplugDelay: hotplug,
		ConfigDelay:  config,
		OnBypassUp: func(_, _ uint32, d time.Duration) {
			mu.Lock()
			samples = append(samples, d)
			mu.Unlock()
		},
	})
	if err != nil {
		return SetupRow{}, err
	}
	defer node.Stop()

	// links/2 bidirectional hops ⇒ links directed bypasses.
	chain, err := node.DeployBidirChain(links/2-1, ChainOptions{})
	if err != nil {
		return SetupRow{}, err
	}
	defer chain.Stop()
	if !node.WaitBypasses(chain.ExpectedBypasses()) {
		return SetupRow{}, fmt.Errorf("setup: bypasses not established")
	}

	mu.Lock()
	defer mu.Unlock()
	row := SetupRow{Samples: len(samples), HotplugDelay: hotplug, ConfigDelay: config}
	if len(samples) == 0 {
		return row, fmt.Errorf("setup: no samples observed")
	}
	row.Min = samples[0]
	var sum time.Duration
	for _, s := range samples {
		if s < row.Min {
			row.Min = s
		}
		if s > row.Max {
			row.Max = s
		}
		sum += s
	}
	row.Mean = sum / time.Duration(len(samples))
	return row, nil
}

// FlowScaleRow is one point of the flow-scale experiment: steady traffic
// over a given number of distinct 5-tuples, optionally under flow-table
// delete churn, with the per-tier resolution breakdown of the lookup
// hierarchy. Percentages are shares of all lookups over the run (EMC hit,
// SMC hit, within-batch dedup, full classifier walk); they show the tier
// shift as the distinct-flow count grows past each cache's reach.
type FlowScaleRow struct {
	Flows       int
	ChurnPerSec int
	Mpps        float64
	EMCPct      float64
	SMCPct      float64
	DedupPct    float64
	ClsPct      float64
	ParseErrors uint64
	// EMCConflicts counts LIVE cache entries evicted by insertions over the
	// window — the "elephant churned out by a mouse" events the
	// emc-insert-inv-prob policy exists to suppress.
	EMCConflicts uint64
	// PMDBusy is each forwarding thread's busy-poll fraction over the
	// measurement window (index = PMD), showing how the load spread across
	// threads during the point.
	PMDBusy []float64
}

// churnVictims builds n unrelated drop flows (an ingress port no traffic
// ever uses) for delete-churn fixtures: the flowscale churner and
// BenchmarkLookupChurn delete them one by one to model idle-expiry /
// co-resident-teardown flow-table churn that must not disturb live
// cache entries.
func churnVictims(n int) ([]flow.FlowSpec, []flow.Match) {
	specs := make([]flow.FlowSpec, n)
	matches := make([]flow.Match, n)
	for i := range specs {
		m := flow.MatchInPort(999).WithL4Dst(uint16(i))
		matches[i] = m
		specs[i] = flow.FlowSpec{Priority: 5, Match: m, Actions: flow.Actions{flow.Drop()}}
	}
	return specs, matches
}

// RunFlowScalePoint measures one (distinct flows × churn) point on a bare
// vSwitch: a generator cycles `flows` distinct UDP 5-tuples (one wildcard
// rule forwards them all, so every 5-tuple is its own EMC/SMC entry but the
// classifier holds one subtable row), while a churner deletes pre-installed
// unrelated flows at churnPerSec — the idle-expiry/teardown churn that used
// to stampede the whole EMC onto the classifier before death-mark
// invalidation. Tier percentages are windowed (DatapathStats snapshot-and-
// diff around the measurement window), so they report steady state rather
// than blurring in the warm-up's cold-cache misses.
func RunFlowScalePoint(flows, churnPerSec int, cfg ExperimentConfig) (FlowScaleRow, error) {
	cfg.fill()
	if flows < 1 || flows > 1<<16 {
		return FlowScaleRow{}, fmt.Errorf("flowscale: flows %d out of range [1,65536]", flows)
	}
	if churnPerSec < 0 {
		return FlowScaleRow{}, fmt.Errorf("flowscale: negative churn rate %d", churnPerSec)
	}
	sw := vswitch.New(vswitch.Config{
		NumPMDs:          cfg.NumPMDs,
		EMCDisabled:      cfg.EMCDisabled,
		EMCEntries:       cfg.EMCEntries,
		SMCDisabled:      cfg.SMCDisabled,
		EMCInsertInvProb: cfg.EMCInsertInvProb,
		// Sweep often: each sweep re-ranks the classifier by observed hits.
		SweepInterval: 50 * time.Millisecond,
	})
	pool := mempool.MustNew(mempool.Config{Capacity: 4096})
	portGen, pmdGen, err := dpdkr.NewPort(1, "gen", 1024)
	if err != nil {
		return FlowScaleRow{}, err
	}
	portSink, pmdSink, err := dpdkr.NewPort(2, "sink", 1024)
	if err != nil {
		return FlowScaleRow{}, err
	}
	if err := sw.AddPort(portGen); err != nil {
		return FlowScaleRow{}, err
	}
	if err := sw.AddPort(portSink); err != nil {
		return FlowScaleRow{}, err
	}
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)

	// Churn victims: a bounded pool of unrelated flows, deleted at the
	// requested rate and re-installed in one batch each time the pool runs
	// dry, so the delete pressure is sustained for arbitrary windows (each
	// restock costs one add-generation bump per `victims` deletes —
	// negligible next to the churn it feeds).
	// The pool is deliberately small: a delete costs O(table size) (match
	// scan + snapshot rebuild), so an oversized victim pool would measure
	// delete CPU cost on the shared core instead of cache invalidation.
	var specs []flow.FlowSpec
	var victims []flow.Match
	if churnPerSec > 0 {
		specs, victims = churnVictims(512)
		sw.Table().AddBatch(specs)
	}
	if err := sw.Start(); err != nil {
		return FlowScaleRow{}, err
	}

	raw := make([]byte, 256)
	frameLen, err := pkt.BuildUDP(raw, orchestrator.DefaultTrafficSpec())
	if err != nil {
		sw.Stop()
		return FlowScaleRow{}, err
	}
	// The UDP source port is the flow axis; it sits right after the
	// Ethernet + minimal IPv4 headers in the untagged template frame. The
	// rewrite below does not refresh the UDP checksum, so clear it in the
	// template once (0 = "no checksum" in UDP) and every generated frame
	// stays well-formed.
	const srcPortOff = pkt.EthernetLen + pkt.IPv4MinLen
	raw[srcPortOff+6] = 0
	raw[srcPortOff+7] = 0

	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		delivered atomic.Uint64
	)
	// Sink: drain the far port and return buffers to the pool.
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]*mempool.Buf, 64)
		for !stop.Load() {
			n := pmdSink.Rx(out)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			delivered.Add(uint64(n))
			mempool.FreeBatch(out[:n])
		}
	}()
	// Generator: blast batches, rotating the 5-tuple through `flows`
	// distinct source ports. Uniform mode cycles the set; Zipf mode draws
	// heavy-tailed traffic where rank 0 is the biggest elephant and the
	// cold half of the ranks is replaced by ONE-SHOT mice — fresh ephemeral
	// ports that never repeat, like short-lived connections. One-shot mice
	// are what make unconditional EMC insertion hurt: each claims a cache
	// slot it will never use again, evicting an elephant to do so.
	var zipf *rand.Zipf
	if cfg.ZipfSkew > 1 && flows > 1 {
		zipf = rand.NewZipf(rand.New(rand.NewSource(42)), cfg.ZipfSkew, 1, uint64(flows-1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		bufs := make([]*mempool.Buf, 32)
		seq := 0
		mouse := flows // one-shot mice cycle the port space above the elephants
		for !stop.Load() {
			got := pool.GetBatch(bufs)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < got; i++ {
				b := bufs[i]
				b.SetBytes(raw[:frameLen])
				var fp uint16
				if zipf != nil {
					r := int(zipf.Uint64())
					// No mouse space is left when the elephants already fill
					// the 16-bit port axis: fall back to the plain Zipf draw
					// (uint16(flows) would otherwise alias rank 0).
					if r < (flows+1)/2 || flows >= 1<<16 {
						fp = uint16(r) // persistent elephant
					} else {
						// One-shot mouse from the port space above the
						// elephants. The space cycles (65536-flows ports), so
						// "one-shot" holds as long as a full cycle outlives
						// the EMC residence of anything a mouse displaced —
						// true for the demo configs, which keep flows ≤ 4096.
						fp = uint16(mouse)
						mouse++
						if mouse > 0xffff {
							mouse = flows
						}
					}
				} else {
					fp = uint16(seq % flows)
					seq++
				}
				fb := b.Bytes()
				fb[srcPortOff] = byte(fp >> 8)
				fb[srcPortOff+1] = byte(fp)
			}
			sent := pmdGen.Tx(bufs[:got])
			if sent < got {
				mempool.FreeBatch(bufs[sent:got])
				runtime.Gosched()
			}
		}
	}()
	// Churner: delete pre-installed unrelated flows at churnPerSec, paced
	// in 1 ms quanta (a per-delete sleep undershoots badly once the
	// interval drops below the scheduler's sleep granularity), restocking
	// the victim pool when it runs dry.
	if churnPerSec > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Catch-up bursts are capped: after a long deschedule (normal
			// on the 1-core hosts) the backlog is dropped rather than
			// executed as a rebuild storm that would stall the datapath for
			// tens of ms. The achieved rate therefore saturates around
			// 32k/s; the sweep's rates sit far below that.
			const quantum = time.Millisecond
			const burstCap = 32
			start := time.Now()
			done := 0
			next := 0
			for !stop.Load() {
				due := int(time.Since(start).Seconds() * float64(churnPerSec))
				if due-done > burstCap {
					done = due - burstCap
				}
				for ; done < due && !stop.Load(); done++ {
					if next == len(victims) {
						sw.Table().AddBatch(specs)
						next = 0
					}
					sw.Table().DeleteStrict(5, victims[next])
					next++
				}
				time.Sleep(quantum)
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	// Windowed tier stats: snapshot-and-diff around the measurement window
	// (cache counters are per-PMD atomics, safe to read live), so the
	// reported split is steady state — warm-up misses and cold caches do
	// not blur it.
	pre := sw.DatapathStats()
	base := delivered.Load()
	t0 := time.Now()
	time.Sleep(cfg.Window)
	got := delivered.Load() - base
	elapsed := time.Since(t0)
	st := sw.DatapathStats().Delta(pre)
	stop.Store(true)
	wg.Wait()
	sw.Stop()
	lookups := st.EMC.Hits + st.SMC.Hits + st.DedupHits + st.ClassifierHits + st.ClassifierMisses
	pct := func(v uint64) float64 {
		if lookups == 0 {
			return 0
		}
		return 100 * float64(v) / float64(lookups)
	}
	busy := make([]float64, len(st.PMDs))
	for i, l := range st.PMDs {
		busy[i] = l.BusyFraction()
	}
	return FlowScaleRow{
		Flows:        flows,
		ChurnPerSec:  churnPerSec,
		Mpps:         float64(got) / elapsed.Seconds() / 1e6,
		EMCPct:       pct(st.EMC.Hits),
		SMCPct:       pct(st.SMC.Hits),
		DedupPct:     pct(st.DedupHits),
		ClsPct:       pct(st.ClassifierHits + st.ClassifierMisses),
		ParseErrors:  st.ParseErrors,
		EMCConflicts: st.EMC.Conflicts,
		PMDBusy:      busy,
	}, nil
}

// RunFlowScale sweeps distinct-flow counts crossed with churn rates — the
// experiment that exposes the tiered lookup hierarchy: EMC absorbs small
// flow counts, the SMC tier takes over past the EMC's reach, and the
// classifier catches the tail; delete churn barely dents the curve thanks
// to death-mark invalidation.
func RunFlowScale(flowCounts, churnRates []int, cfg ExperimentConfig) ([]FlowScaleRow, error) {
	var rows []FlowScaleRow
	for _, churn := range churnRates {
		for _, flows := range flowCounts {
			r, err := RunFlowScalePoint(flows, churn, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// PMDScaleRow is one point of the multi-PMD scaling experiment: a single
// hot multi-queue port driven at full rate, for a given (PMD count ×
// queues-per-port), with or without the auto-balancer. Spread is
// max−min per-PMD busy fraction; Before is measured with every queue
// deliberately skewed onto PMD 0, After over the final (post-balancing)
// measurement window. Moves counts the balancer's queue re-homings.
type PMDScaleRow struct {
	PMDs         int
	Queues       int
	Balanced     bool
	Mpps         float64
	SpreadBefore float64
	SpreadAfter  float64
	Moves        uint64
}

// pmdSpread is max−min busy fraction across a windowed PMD load sample.
func pmdSpread(win []vswitch.PMDLoad) float64 {
	if len(win) == 0 {
		return 0
	}
	lo, hi := win[0].BusyFraction(), win[0].BusyFraction()
	for _, l := range win[1:] {
		f := l.BusyFraction()
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

// pmdLoadWindow samples PMD loads twice, dt apart, and returns the deltas.
func pmdLoadWindow(sw *vswitch.Switch, dt time.Duration) []vswitch.PMDLoad {
	pre := sw.PMDLoads()
	time.Sleep(dt)
	post := sw.PMDLoads()
	win := make([]vswitch.PMDLoad, len(post))
	for i, l := range post {
		if i < len(pre) {
			l = l.Delta(pre[i])
		}
		win[i] = l
	}
	return win
}

// RunPMDScalePoint measures one (PMDs × queues × balancer) point: a bare
// vSwitch with a single multi-queue generator port, all of whose RX queues
// are first forced onto PMD 0 — the residue-clustering pathology made
// deliberate — then, in the balanced arm, handed to the auto-balancer to
// spread. The generator cycles enough distinct 5-tuples that the RSS hash
// populates every queue.
func RunPMDScalePoint(pmds, queues int, balance bool, cfg ExperimentConfig) (PMDScaleRow, error) {
	cfg.fill()
	if pmds < 1 || queues < 1 {
		return PMDScaleRow{}, fmt.Errorf("pmdscale: need pmds >= 1 and queues >= 1")
	}
	sw := vswitch.New(vswitch.Config{NumPMDs: pmds})
	pool := mempool.MustNew(mempool.Config{Capacity: 4096})
	portGen, pmdGen, err := dpdkr.NewPortMQ(1, "gen", 1024, queues)
	if err != nil {
		return PMDScaleRow{}, err
	}
	portSink, pmdSink, err := dpdkr.NewPort(2, "sink", 1024)
	if err != nil {
		return PMDScaleRow{}, err
	}
	if err := sw.AddPort(portGen); err != nil {
		return PMDScaleRow{}, err
	}
	if err := sw.AddPort(portSink); err != nil {
		return PMDScaleRow{}, err
	}
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	if err := sw.Start(); err != nil {
		return PMDScaleRow{}, err
	}

	// Skew: home every gen queue on PMD 0 (the sink queue may stay where the
	// initial assignment put it — one cold single-queue port does not tilt
	// the comparison).
	for q := 0; q < queues; q++ {
		if err := sw.MoveQueue(1, q, 0); err != nil {
			sw.Stop()
			return PMDScaleRow{}, err
		}
	}

	raw := make([]byte, 256)
	frameLen, err := pkt.BuildUDP(raw, orchestrator.DefaultTrafficSpec())
	if err != nil {
		sw.Stop()
		return PMDScaleRow{}, err
	}
	const srcPortOff = pkt.EthernetLen + pkt.IPv4MinLen
	raw[srcPortOff+6] = 0 // zero UDP checksum; the rewrite below won't refresh it
	raw[srcPortOff+7] = 0

	// Enough distinct flows that every queue receives a share of the hash
	// space with overwhelming probability.
	flows := cfg.Flows
	if flows < 8*queues {
		flows = 8 * queues
	}

	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		delivered atomic.Uint64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]*mempool.Buf, 64)
		for !stop.Load() {
			n := pmdSink.Rx(out)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			delivered.Add(uint64(n))
			mempool.FreeBatch(out[:n])
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		bufs := make([]*mempool.Buf, 32)
		seq := 0
		for !stop.Load() {
			got := pool.GetBatch(bufs)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < got; i++ {
				b := bufs[i]
				b.SetBytes(raw[:frameLen])
				fp := uint16(seq % flows)
				seq++
				fb := b.Bytes()
				fb[srcPortOff] = byte(fp >> 8)
				fb[srcPortOff+1] = byte(fp)
			}
			sent := pmdGen.Tx(bufs[:got])
			if sent < got {
				mempool.FreeBatch(bufs[sent:got])
				runtime.Gosched()
			}
		}
	}()

	time.Sleep(cfg.Warmup)
	spreadBefore := pmdSpread(pmdLoadWindow(sw, cfg.Window))

	var moves uint64
	if balance && pmds > 1 {
		// Drive convergence deterministically: sample-and-rebalance at the
		// balancer's own cadence until a window stays under threshold (or a
		// bounded number of samples passes — convergence is asserted by the
		// caller from SpreadAfter, not assumed here).
		bal := core.NewBalancer(sw, core.BalancerConfig{})
		for i := 0; i < 20; i++ {
			time.Sleep(100 * time.Millisecond)
			bal.RebalanceOnce()
			st := bal.Stats()
			if st.Samples >= 3 && st.Moves == moves {
				break // stable: recent windows triggered no movement
			}
			moves = st.Moves
		}
		moves = bal.Stats().Moves
	}

	base := delivered.Load()
	t0 := time.Now()
	spreadAfter := pmdSpread(pmdLoadWindow(sw, cfg.Window))
	got := delivered.Load() - base
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	sw.Stop()
	return PMDScaleRow{
		PMDs:         pmds,
		Queues:       queues,
		Balanced:     balance,
		Mpps:         float64(got) / elapsed.Seconds() / 1e6,
		SpreadBefore: spreadBefore,
		SpreadAfter:  spreadAfter,
		Moves:        moves,
	}, nil
}

// RunPMDScale sweeps PMD count × queues-per-port × balancer for the
// pmdscale table: the single-queue column shows why RSS is necessary (one
// queue can never use more than one PMD), the skewed-unbalanced column
// shows why the balancer is (all queues pinned to PMD 0), and the balanced
// column shows the two mechanisms composing.
func RunPMDScale(cfg ExperimentConfig) ([]PMDScaleRow, error) {
	cfg.fill()
	var rows []PMDScaleRow
	for _, pmds := range []int{1, 2, 4} {
		for _, queues := range []int{1, cfg.NumQueues} {
			if queues == 1 && cfg.NumQueues == 1 {
				continue // axis collapsed; avoid a duplicate point
			}
			for _, balance := range []bool{false, true} {
				r, err := RunPMDScalePoint(pmds, queues, balance, cfg)
				if err != nil {
					return rows, err
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

// FabricPathRow is one parallel trunk's contribution to a fabric
// experiment point: carried/dropped frames over the measurement window,
// both directions summed.
type FabricPathRow struct {
	Name             string
	Carried, Dropped uint64
}

// FabricRow is one point of the switched-core fabric experiment.
type FabricRow struct {
	Topology string // "mesh", "spine", "ecmp×2", ...
	VMs      int
	Mpps     float64
	P50, P99 time.Duration
	Paths    []FabricPathRow
}

// pathWindow snapshots per-trunk carried/dropped counters so a measurement
// window can be expressed as deltas rather than since-boot blur.
type pathWindow struct {
	trunks  []*trunk.Trunk
	carried []uint64
	dropped []uint64
}

func newPathWindow(trunks []*trunk.Trunk) *pathWindow {
	w := &pathWindow{trunks: trunks, carried: make([]uint64, len(trunks)), dropped: make([]uint64, len(trunks))}
	for i, tr := range trunks {
		ab, ba := tr.Stats()
		w.carried[i] = ab.Carried + ba.Carried
		w.dropped[i] = ab.Dropped + ba.Dropped
	}
	return w
}

func (w *pathWindow) rows() []FabricPathRow {
	out := make([]FabricPathRow, len(w.trunks))
	for i, tr := range w.trunks {
		ab, ba := tr.Stats()
		out[i] = FabricPathRow{
			Name:    tr.Name(),
			Carried: ab.Carried + ba.Carried - w.carried[i],
			Dropped: ab.Dropped + ba.Dropped - w.dropped[i],
		}
	}
	return out
}

// RunFabricThroughputPoint measures one cross-node throughput point on a
// 3-node chain (node-a → node-b → node-c, two crossings) whose trunks are
// rate-limited to perTrunkRate per direction — the uplink, not the
// datapath, is the bottleneck. ECMP width multiplies the parallel trunks
// per adjacency at the SAME per-trunk rate, so a wider bundle must carry
// measurably more once flows spread across the paths.
func RunFabricThroughputPoint(vms, ecmpWidth int, perTrunkRate float64, cfg ExperimentConfig) (FabricRow, error) {
	cfg.fill()
	if vms < 3 {
		return FabricRow{}, fmt.Errorf("fabric: need >= 3 VMs for a 3-node chain, got %d", vms)
	}
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeVanilla, NumPMDs: cfg.NumPMDs},
		Nodes:     []string{"node-a", "node-b", "node-c"},
		TrunkRate: perTrunkRate,
		Fabric:    FabricConfig{Mode: FabricMesh, ECMPWidth: ecmpWidth},
	})
	if err != nil {
		return FabricRow{}, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(vms-2, nil, ChainOptions{Flows: 32})
	if err != nil {
		return FabricRow{}, err
	}
	defer chain.Stop()
	time.Sleep(cfg.Warmup)
	win := newPathWindow(cluster.inner.Trunks())
	mpps := chain.MeasureMpps(cfg.Window)
	name := "ecmp×1"
	if ecmpWidth > 1 {
		name = fmt.Sprintf("ecmp×%d", ecmpWidth)
	}
	return FabricRow{Topology: name, VMs: vms, Mpps: mpps, Paths: win.rows()}, nil
}

// RunFabricLatencyPoint measures one split-chain latency point with the
// chain's two segments on two leaves, in mesh (direct trunk) or spine
// (relay through a third node's vSwitch) topology, under the given trunk
// propagation delay. The spine path pays the delay — and the relay hop —
// twice, which is the extra-hop penalty of a switched core.
func RunFabricLatencyPoint(vms int, mode FabricMode, wireLat time.Duration, cfg ExperimentConfig) (FabricRow, error) {
	cfg.fill()
	if vms < 2 {
		return FabricRow{}, fmt.Errorf("fabric: need >= 2 VMs, got %d", vms)
	}
	cluster, err := StartCluster(ClusterConfig{
		Config:      Config{Mode: ModeVanilla, NumPMDs: cfg.NumPMDs},
		Nodes:       []string{"spine", "leaf-a", "leaf-b"},
		TrunkRate:   -1,
		WireLatency: wireLat,
		Fabric:      FabricConfig{Mode: mode, Spine: "spine"},
	})
	if err != nil {
		return FabricRow{}, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(vms-2, []string{"leaf-a", "leaf-b"}, ChainOptions{Flows: cfg.Flows, Timestamp: true})
	if err != nil {
		return FabricRow{}, err
	}
	defer chain.Stop()
	time.Sleep(cfg.Warmup)
	win := newPathWindow(cluster.inner.Trunks())
	chain.ResetWindow()
	time.Sleep(cfg.Window)
	return FabricRow{
		Topology: mode.String(),
		VMs:      vms,
		Mpps:     chain.RatePps() / 1e6,
		P50:      chain.LatencyQuantile(0.50),
		P99:      chain.LatencyQuantile(0.99),
		Paths:    win.rows(),
	}, nil
}

// FabricQoSRow summarizes the lane-QoS arm: two co-resident split chains
// saturate one shared trunk from different 802.1Q priority classes under a
// 2:1 DRR weighting.
type FabricQoSRow struct {
	HiMpps, LoMpps float64
	Ratio          float64
	// HiCarried/LoCarried and drops are the trunk's per-PCP window deltas.
	HiCarried, HiDropped uint64
	LoCarried, LoDropped uint64
}

// prefixGraph name-prefixes a graph's VNFs (and their edge endpoints) so
// two chain instances can share one cluster.
func prefixGraph(g *graph.Graph, prefix string) {
	for i := range g.VNFs {
		g.VNFs[i].Name = prefix + g.VNFs[i].Name
	}
	for i := range g.Edges {
		if g.Edges[i].A.Kind == graph.EpVNF {
			g.Edges[i].A.Name = prefix + g.Edges[i].A.Name
		}
		if g.Edges[i].B.Kind == graph.EpVNF {
			g.Edges[i].B.Name = prefix + g.Edges[i].B.Name
		}
	}
}

// RunFabricQoS deploys two 3-VM split chains over one shared 2-node trunk,
// one riding PCP 6 (weight 2), the other PCP 0 (weight 1), both saturating
// the shared perTrunkRate budget, and reports their goodput split. The
// trunk scheduler unit test (TestTrunkPCPWeightedScheduler) asserts the
// same ≈2:1 property in isolation; this is the end-to-end view with real
// chains, steering rules and the mod_vlan_pcp stamp in the datapath.
func RunFabricQoS(perTrunkRate float64, cfg ExperimentConfig) (FabricQoSRow, error) {
	cfg.fill()
	var weights [8]float64
	weights[0] = 1
	weights[6] = 2
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeVanilla, NumPMDs: cfg.NumPMDs},
		Nodes:     []string{"node-a", "node-b"},
		TrunkRate: perTrunkRate,
		Fabric:    FabricConfig{PCPWeights: weights},
	})
	if err != nil {
		return FabricQoSRow{}, err
	}
	defer cluster.Stop()

	deployChain := func(prefix string, pcp uint8) (*ClusterDeployment, error) {
		g := graph.SplitBidirChain(1, []string{"node-a", "node-b"})
		applyBidirEndpointArgs(g, ChainOptions{Flows: 8, LanePCP: pcp})
		prefixGraph(g, prefix)
		return cluster.Deploy(g)
	}
	hi, err := deployChain("hi-", 6)
	if err != nil {
		return FabricQoSRow{}, err
	}
	defer hi.Stop()
	lo, err := deployChain("lo-", 0)
	if err != nil {
		return FabricQoSRow{}, err
	}
	defer lo.Stop()

	time.Sleep(cfg.Warmup)
	trunks := cluster.inner.PairTrunks("node-a", "node-b")
	if len(trunks) != 1 {
		return FabricQoSRow{}, fmt.Errorf("fabric qos: expected one shared trunk, have %d", len(trunks))
	}
	preAB, preBA := trunks[0].PCPStats()
	recv := func(cd *ClusterDeployment, names ...string) uint64 {
		var total uint64
		for _, n := range names {
			if ss := cd.Internal().SrcSink(n); ss != nil {
				total += ss.Received.Load()
			}
		}
		return total
	}
	hiBase := recv(hi, "hi-end0", "hi-end1")
	loBase := recv(lo, "lo-end0", "lo-end1")
	t0 := time.Now()
	time.Sleep(cfg.Window)
	elapsed := time.Since(t0).Seconds()
	row := FabricQoSRow{
		HiMpps: float64(recv(hi, "hi-end0", "hi-end1")-hiBase) / elapsed / 1e6,
		LoMpps: float64(recv(lo, "lo-end0", "lo-end1")-loBase) / elapsed / 1e6,
	}
	if row.LoMpps > 0 {
		row.Ratio = row.HiMpps / row.LoMpps
	}
	postAB, postBA := trunks[0].PCPStats()
	row.HiCarried = postAB[6].Carried + postBA[6].Carried - preAB[6].Carried - preBA[6].Carried
	row.HiDropped = postAB[6].Dropped + postBA[6].Dropped - preAB[6].Dropped - preBA[6].Dropped
	row.LoCarried = postAB[0].Carried + postBA[0].Carried - preAB[0].Carried - preBA[0].Carried
	row.LoDropped = postAB[0].Dropped + postBA[0].Dropped - preAB[0].Dropped - preBA[0].Dropped
	return row, nil
}

// HealRow is one fault→repair cycle of the self-healing experiment: the
// fault injected, what the reconciler did to converge, and the chain's
// throughput before and after — RecoveredMpps near BaseMpps with no manual
// redeploy is the acceptance bar.
type HealRow struct {
	Fault         string
	Passes        int           // reconcile passes until a clean (0-repair) pass
	Repairs       int           // total repairs applied across those passes
	Converge      time.Duration // wall time from fault to clean pass
	BaseMpps      float64
	RecoveredMpps float64
}

// healConverge drives synchronous reconcile passes until one applies zero
// repairs (bounded), returning the pass/repair counts and elapsed time.
func healConverge(cluster *Cluster) (passes, repairs int, converge time.Duration, err error) {
	t0 := time.Now()
	for passes < 50 {
		passes++
		n, rerr := cluster.ReconcileOnce()
		if rerr != nil {
			return passes, repairs, time.Since(t0), rerr
		}
		repairs += n
		if n == 0 {
			return passes, repairs, time.Since(t0), nil
		}
	}
	return passes, repairs, time.Since(t0), fmt.Errorf("heal: no clean pass after %d reconcile passes (%d repairs)", passes, repairs)
}

// RunHeal reproduces the self-healing story on a 3-node highway cluster
// with an ECMP×2 fabric: a split chain runs while three faults are injected
// in sequence — a trunk of a bundle killed, the middle node's steering
// rules wiped, the middle node's vSwitch restarted — and after each one the
// declarative reconciler alone repairs the cluster back to full throughput.
func RunHeal(cfg ExperimentConfig) ([]HealRow, error) {
	cfg.fill()
	nodes := []string{"node-a", "node-b", "node-c"}
	cluster, err := StartCluster(ClusterConfig{
		Config: Config{Mode: ModeHighway, NumPMDs: cfg.NumPMDs},
		Nodes:  nodes,
		Fabric: FabricConfig{ECMPWidth: 2},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(6, nodes, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return nil, err
	}
	defer chain.Stop()
	if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return nil, fmt.Errorf("heal: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	time.Sleep(cfg.Warmup)
	base := chain.MeasureMpps(cfg.Window)

	mid := nodes[1]
	faults := []struct {
		name   string
		inject func() error
	}{
		{"fail-trunk", func() error { return cluster.FailTrunk(nodes[0], mid, 0) }},
		{"wipe-rules", func() error { _, werr := cluster.WipeRules(mid); return werr }},
		{"restart-vswitch", func() error { return cluster.RestartVSwitch(mid) }},
	}
	var rows []HealRow
	for _, f := range faults {
		if err := f.inject(); err != nil {
			return rows, fmt.Errorf("heal: inject %s: %w", f.name, err)
		}
		passes, repairs, converge, err := healConverge(cluster)
		if err != nil {
			return rows, fmt.Errorf("heal: %s: %w", f.name, err)
		}
		// Rules are back; give the detector time to re-establish any
		// bypasses the fault tore down before measuring.
		if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
			return rows, fmt.Errorf("heal: %s: bypasses not re-established (%d live, want %d)",
				f.name, cluster.BypassCount(), chain.ExpectedBypasses())
		}
		time.Sleep(cfg.Warmup)
		rows = append(rows, HealRow{
			Fault: f.name, Passes: passes, Repairs: repairs, Converge: converge,
			BaseMpps: base, RecoveredMpps: chain.MeasureMpps(cfg.Window),
		})
	}
	return rows, nil
}

// MigrateRow is the zero-loss live-migration experiment's result: where the
// VNF moved, how long the make-before-break cutover took, and the packet
// conservation ledger across it — Lost must be exactly 0.
type MigrateRow struct {
	VNF           string
	From, To      string
	Cutover       time.Duration
	Drained       bool // old path observed quiet before the drain deadline
	Lost          int64 // in-flight delta across the migration; 0 = no loss
	BaseMpps      float64
	AfterMpps     float64
	BypassesAfter int
}

// RunMigrate live-moves a middle VNF between nodes under paced traffic and
// proves zero loss by conservation: the chain is paused and allowed to
// settle before and after the migration, and the generated-minus-received
// ledger must not change — every packet in flight during the cutover was
// delivered.
func RunMigrate(cfg ExperimentConfig) (MigrateRow, error) {
	cfg.fill()
	nodes := []string{"node-a", "node-b", "node-c"}
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeHighway, NumPMDs: cfg.NumPMDs},
		Nodes:     nodes,
		TrunkRate: -1,
	})
	if err != nil {
		return MigrateRow{}, err
	}
	defer cluster.Stop()
	// Paced ends: the conservation ledger is exact only when the chain is
	// not saturated (a saturated chain drops at the generator by design).
	chain, err := cluster.DeploySplitChain(4, nodes[:2], ChainOptions{Flows: cfg.Flows, RatePps: 50_000})
	if err != nil {
		return MigrateRow{}, err
	}
	defer chain.Stop()
	if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return MigrateRow{}, fmt.Errorf("migrate: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	time.Sleep(cfg.Warmup)
	base := chain.MeasureMpps(cfg.Window)

	row := MigrateRow{VNF: "vnf2", From: nodes[0], To: nodes[2], BaseMpps: base}
	chain.Pause(true)
	l0 := chain.Settle(2 * time.Second)
	chain.Pause(false)
	t0 := time.Now()
	rep, err := chain.Deployment().Migrate(row.VNF, row.To)
	if err != nil {
		return row, fmt.Errorf("migrate: %w", err)
	}
	row.Cutover = time.Since(t0)
	row.Drained = rep.Drained
	chain.Pause(true)
	l1 := chain.Settle(2 * time.Second)
	row.Lost = l1 - l0
	chain.Pause(false)
	time.Sleep(cfg.Warmup)
	row.AfterMpps = chain.MeasureMpps(cfg.Window)
	row.BypassesAfter = cluster.BypassCount()
	return row, nil
}

// RebalanceReport is the rolling re-placement experiment's result: the
// drifted layout's crossing count before and after the controller ran, the
// move plan it executed (with per-move cutover), how long convergence took,
// and the packet conservation ledger across the whole run — Lost must be
// exactly 0.
type RebalanceReport struct {
	CrossBefore int
	CrossAfter  int
	Moves       []RebalanceMove
	Converge    time.Duration // start of controller → last layout change
	Lost        int64         // in-flight delta across the run; 0 = no loss
	Stats       RebalancerStats
	BaseMpps    float64
	AfterMpps   float64
}

// RunRebalance deploys a split chain, deliberately drifts its layout (two
// middles swapped across the fabric — the skew a long-running cluster
// accumulates), then lets the rolling re-placement controller repair it:
// rolling zero-loss migrations, one in flight at a time, until the crossing
// count is back down. The conservation ledger brackets the entire
// controller run. cfg.Window is the controller's load-sampling interval.
func RunRebalance(cfg ExperimentConfig) (RebalanceReport, error) {
	cfg.fill()
	nodes := []string{"node-a", "node-b", "node-c"}
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeHighway, NumPMDs: cfg.NumPMDs},
		Nodes:     nodes,
		TrunkRate: -1,
	})
	if err != nil {
		return RebalanceReport{}, err
	}
	defer cluster.Stop()
	// Paced ends: the ledger is exact only when the chain is not saturated,
	// and unsaturated lanes also drain in milliseconds per migration.
	chain, err := cluster.DeploySplitChain(6, nodes, ChainOptions{Flows: cfg.Flows, RatePps: 30_000})
	if err != nil {
		return RebalanceReport{}, err
	}
	defer chain.Stop()
	if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return RebalanceReport{}, fmt.Errorf("rebalance: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	// Drift the layout by hand: vnf2 and vnf5 swapped across the fabric
	// turns the contiguous deploy's 2 crossings into 4.
	for _, mv := range []struct{ vnf, to string }{
		{"vnf2", nodes[2]},
		{"vnf5", nodes[0]},
	} {
		if _, err := chain.Deployment().Migrate(mv.vnf, mv.to); err != nil {
			return RebalanceReport{}, fmt.Errorf("rebalance: skew migrate %s→%s: %w", mv.vnf, mv.to, err)
		}
	}
	rep := RebalanceReport{CrossBefore: chain.Deployment().Crossings()}
	time.Sleep(cfg.Warmup)
	rep.BaseMpps = chain.MeasureMpps(cfg.Window)

	chain.Pause(true)
	l0 := chain.Settle(2 * time.Second)
	chain.Pause(false)

	start := time.Now()
	reb := cluster.StartRebalancer(RebalanceConfig{Interval: cfg.Window})
	// Converged when the crossings dropped below the drifted count and the
	// layout then held still for two full sampling intervals.
	cross := rep.CrossBefore
	lastChange := start
	deadline := start.Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if c := chain.Deployment().Crossings(); c != cross {
			cross = c
			lastChange = time.Now()
		}
		if cross < rep.CrossBefore && time.Since(lastChange) > 2*cfg.Window {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	reb.Stop()
	rep.Converge = lastChange.Sub(start)
	rep.CrossAfter = chain.Deployment().Crossings()
	rep.Stats = reb.Stats()
	rep.Moves = reb.Moves()

	chain.Pause(true)
	l1 := chain.Settle(2 * time.Second)
	rep.Lost = l1 - l0
	chain.Pause(false)
	time.Sleep(cfg.Warmup)
	rep.AfterMpps = chain.MeasureMpps(cfg.Window)
	if n, err := cluster.ReconcileOnce(); err != nil || n != 0 {
		return rep, fmt.Errorf("rebalance: post-run reconcile: %d repairs, err %v", n, err)
	}
	return rep, nil
}

// IncastRow is one arm of the congestion-aware ECMP incast experiment:
// the measured leaf–leaf chain's goodput and latency while one of the two
// spine paths is deliberately incast-congested by background traffic.
type IncastRow struct {
	Arm      string // "static" (repick disabled) or "adaptive"
	Mpps     float64
	P50, P99 time.Duration
	// Repicks is the number of adaptive avoid-set changes across all nodes
	// since the measured chain deployed (the static arm must report 0; the
	// adaptive arm repicks a handful of times as the masks converge, then
	// holds).
	Repicks uint64
	// Paths are the measured deployment's per-trunk carried/dropped window
	// deltas — the adaptive arm must show the load shifted onto the quiet
	// spine.
	Paths []FabricPathRow
}

// runIncastArm builds a 4-node, 2-spine Clos (leaf-a, leaf-b uplink to
// spine-1 AND spine-2), incasts background chains onto spine-1 from both
// leaves — saturating exactly the trunks the measured lane's spine-1 path
// rides, in both directions — and measures a paced leaf-a↔leaf-b chain
// whose single ECMP rule spreads over both spine paths. With repick
// disabled, the flows hashed onto spine-1 sit behind the incast queue;
// with it enabled, the PMD reads the per-path congestion gauges and moves
// them to spine-2 at a flowlet boundary.
func runIncastArm(arm string, disabled bool, perTrunkRate float64, cfg ExperimentConfig) (IncastRow, error) {
	// Deep staging (2048 frames ≈ 20 ms of wait at the trunk budget) makes
	// the congested path hurt mostly in LATENCY rather than drops — the
	// regime adaptive routing exists for. The congestion gauge saturates
	// long before the queue does (occupancy threshold plus overflow-drop
	// evidence), so the signal does not need the queue to fill.
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeVanilla, NumPMDs: cfg.NumPMDs, ECMPAdaptiveDisabled: disabled},
		Nodes:     []string{"spine-1", "spine-2", "leaf-a", "leaf-b"},
		TrunkRate: perTrunkRate,
		Fabric: FabricConfig{
			Mode:       FabricSpine,
			Spines:     []string{"spine-1", "spine-2"},
			StagingCap: 2048,
		},
	})
	if err != nil {
		return IncastRow{}, err
	}
	defer cluster.Stop()

	// Background incast: chains from each leaf onto spine-1, paced at 3×
	// the trunk budget — steady overload, unlike a saturating (pool-bound)
	// generator whose two directions seesaw on buffer exhaustion and flap
	// the congestion signal. Leaf–spine crossings are single-hop, so these
	// congest the (leaf-a, spine-1) and (leaf-b, spine-1) trunks and
	// nothing else.
	for _, bg := range []struct{ prefix, leaf string }{
		{"bga-", "leaf-a"},
		{"bgb-", "leaf-b"},
	} {
		g := graph.SplitBidirChain(1, []string{bg.leaf, "spine-1"})
		applyBidirEndpointArgs(g, ChainOptions{Flows: 8, RatePps: perTrunkRate * 3})
		prefixGraph(g, bg.prefix)
		dep, err := cluster.Deploy(g)
		if err != nil {
			return IncastRow{}, err
		}
		defer dep.Stop()
	}

	// Measured chain: paced well under one path's capacity, so the quiet
	// spine can absorb it entirely — any residual p99 tail or drops come
	// from flows stuck behind the incast, not from self-congestion.
	chain, err := cluster.DeploySplitChain(2, []string{"leaf-a", "leaf-b"},
		ChainOptions{Flows: 32, Timestamp: true, RatePps: perTrunkRate * 0.5})
	if err != nil {
		return IncastRow{}, err
	}
	defer chain.Stop()

	// Repicks are counted from chain deploy, not window start: the masks
	// converge within the first few batches (warmup), and a steady signal
	// means they then STAY put — near-zero in-window churn is the success
	// mode, not an idle datapath.
	repicks := func() uint64 {
		var total uint64
		for _, name := range cluster.NodeNames() {
			total += cluster.inner.Node(name).Switch.DatapathStats().ECMPRepicks
		}
		return total
	}
	base := repicks()
	time.Sleep(cfg.Warmup)
	win := newPathWindow(chain.Deployment().Internal().Trunks())
	chain.ResetWindow()
	time.Sleep(cfg.Window)
	return IncastRow{
		Arm:     arm,
		Mpps:    chain.RatePps() / 1e6,
		P50:     chain.LatencyQuantile(0.50),
		P99:     chain.LatencyQuantile(0.99),
		Repicks: repicks() - base,
		Paths:   win.rows(),
	}, nil
}

// RunIncast runs both arms of the incast experiment — static hash pinning
// vs congestion-aware adaptive repick — on identical topologies and
// offered load. The adaptive arm must beat the static arm on p99 latency
// and carried Mpps.
func RunIncast(perTrunkRate float64, cfg ExperimentConfig) ([]IncastRow, error) {
	cfg.fill()
	var rows []IncastRow
	for _, arm := range []struct {
		name     string
		disabled bool
	}{
		{"static", true},
		{"adaptive", false},
	} {
		row, err := runIncastArm(arm.name, arm.disabled, perTrunkRate, cfg)
		if err != nil {
			return nil, fmt.Errorf("incast %s arm: %w", arm.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ConntrackRow is one point of the conntrack scale sweep: a table
// pre-seeded with Conns established connections, then a measurement window
// of live traffic through an ACL VNF whose fast path is the conntrack
// established-connection bypass.
type ConntrackRow struct {
	Conns int
	// SeedMconnsPerSec is the table fill rate while pre-establishing the
	// Conns connections (arena-backed inserts, no heap traffic).
	SeedMconnsPerSec float64
	Mpps             float64
	// CTHitPct/CTMissPct split conntrack probes over the window: hits are
	// established-bypass packets, misses took the classifier walk (and, up
	// to capacity, established a new connection).
	CTHitPct  float64
	CTMissPct float64
	// Per-tier vSwitch lookup split over the same window. With millions of
	// distinct 5-tuples in flight the EMC/SMC working sets are hopeless and
	// the split slides toward the classifier — the point of showing it.
	EMCPct float64
	SMCPct float64
	ClsPct float64
	// Live is the connection count at the end of the window; the sweep
	// gates Live >= Conns (no seeded connection may fall out mid-run).
	Live int
}

// conntrackConnKey enumerates the sweep's connection space: index i maps to
// a unique 5-tuple toward the experiment VIP. 14 bits ride the source port
// and the rest the source address, so the space covers far beyond the 4M
// sweep ceiling without aliasing.
func conntrackConnKey(i int) conntrack.Key {
	hi := i >> 14
	return conntrack.Key{
		Src:     pkt.IP4{10, byte(hi >> 16), byte(hi >> 8), byte(hi)},
		Dst:     pkt.IP4{10, 99, 0, 1},
		SrcPort: uint16(1024 + i&0x3fff),
		DstPort: 80,
		Proto:   pkt.ProtoUDP,
	}
}

// RunConntrackPoint measures one conntrack scale point. Phase 1 pre-seeds
// `conns` established connections into a sharded table (reporting the fill
// rate); phase 2 drives traffic from the generator through the vSwitch into
// an ACL VNF bound to that table and back out to a sink, with 1 frame in 16
// carrying a never-seeded 5-tuple so the window exercises both the
// established bypass and the first-packet classifier walk. The table is
// attached to the vSwitch, so its counters arrive through the same windowed
// DatapathStats delta as the cache tiers and the expiry sweeper owns
// idle-timeout death-marks. The point fails if any seeded connection fell
// out of the table or the per-shard stats disagree with the global sums.
func RunConntrackPoint(conns int, cfg ExperimentConfig) (ConntrackRow, error) {
	cfg.fill()
	if conns < 1 || conns > 1<<22 {
		return ConntrackRow{}, fmt.Errorf("conntrack: conns %d out of range [1,%d]", conns, 1<<22)
	}
	// Headroom: the arena splits evenly across shards but Hash2 spreads
	// keys only statistically evenly, and window misses establish new
	// connections on top of the seeded ones.
	ct, err := conntrack.New(conntrack.Config{
		Shards:      4,
		Capacity:    conns + conns/8 + 4096,
		IdleTimeout: time.Hour,
	})
	if err != nil {
		return ConntrackRow{}, err
	}
	now := time.Now().UnixNano()
	t0 := time.Now()
	for i := 0; i < conns; i++ {
		if ct.Insert(conntrackConnKey(i), now) == nil {
			return ConntrackRow{}, fmt.Errorf("conntrack: seed insert %d/%d failed", i, conns)
		}
	}
	seedRate := float64(conns) / time.Since(t0).Seconds() / 1e6

	sw := vswitch.New(vswitch.Config{NumPMDs: cfg.NumPMDs})
	sw.AttachConntrack(ct)
	pool := mempool.MustNew(mempool.Config{Capacity: 4096})
	portGen, pmdGen, err := dpdkr.NewPort(1, "gen", 1024)
	if err != nil {
		return ConntrackRow{}, err
	}
	portSink, pmdSink, err := dpdkr.NewPort(2, "sink", 1024)
	if err != nil {
		return ConntrackRow{}, err
	}
	portACLIn, pmdACLIn, err := dpdkr.NewPort(3, "aclin", 1024)
	if err != nil {
		return ConntrackRow{}, err
	}
	portACLOut, pmdACLOut, err := dpdkr.NewPort(4, "aclout", 1024)
	if err != nil {
		return ConntrackRow{}, err
	}
	for _, p := range []*dpdkr.Port{portGen, portSink, portACLIn, portACLOut} {
		if err := sw.AddPort(p); err != nil {
			return ConntrackRow{}, err
		}
	}
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}, 0)
	sw.Table().Add(10, flow.MatchInPort(4), flow.Actions{flow.Output(2)}, 0)
	app, acl, err := vnf.NewACL("acl", pmdACLIn, pmdACLOut, pool, ct, []vnf.ACLRule{{
		Priority: 100,
		Match:    flow.MatchAll().WithIPProto(pkt.ProtoUDP).WithIPDst(pkt.IP4{10, 99, 0, 1}, 32).WithL4Dst(80),
		Allow:    true,
	}}, false)
	if err != nil {
		return ConntrackRow{}, err
	}
	_ = acl
	if err := sw.Start(); err != nil {
		return ConntrackRow{}, err
	}
	app.Start()

	spec := orchestrator.DefaultTrafficSpec()
	spec.DstIP = pkt.IP4{10, 99, 0, 1}
	spec.DstPort = 80
	raw := make([]byte, 256)
	frameLen, err := pkt.BuildUDP(raw, spec)
	if err != nil {
		app.Stop()
		sw.Stop()
		return ConntrackRow{}, err
	}
	// The generator rewrites source address and port per frame; neither the
	// parser nor the ACL verifies L3/L4 checksums, so clear the UDP
	// checksum once (0 = "no checksum") and leave the IPv4 sum stale.
	const srcIPOff = pkt.EthernetLen + 12
	const srcPortOff = pkt.EthernetLen + pkt.IPv4MinLen
	raw[srcPortOff+6] = 0
	raw[srcPortOff+7] = 0

	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		delivered atomic.Uint64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]*mempool.Buf, 64)
		for !stop.Load() {
			n := pmdSink.Rx(out)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			delivered.Add(uint64(n))
			mempool.FreeBatch(out[:n])
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		bufs := make([]*mempool.Buf, 32)
		seq := 0
		mouse := 0
		for !stop.Load() {
			got := pool.GetBatch(bufs)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < got; i++ {
				var idx int
				if seq%16 == 15 {
					// Never-seeded tuple: a first-packet classifier walk.
					// The space above the seeded connections is large
					// enough that it barely recycles within a window.
					idx = conns + mouse%(1<<16)
					mouse++
				} else {
					idx = seq % conns
				}
				seq++
				k := conntrackConnKey(idx)
				b := bufs[i]
				b.SetBytes(raw[:frameLen])
				fb := b.Bytes()
				copy(fb[srcIPOff:srcIPOff+4], k.Src[:])
				fb[srcPortOff] = byte(k.SrcPort >> 8)
				fb[srcPortOff+1] = byte(k.SrcPort)
			}
			sent := pmdGen.Tx(bufs[:got])
			if sent < got {
				mempool.FreeBatch(bufs[sent:got])
				runtime.Gosched()
			}
		}
	}()

	time.Sleep(cfg.Warmup)
	pre := sw.DatapathStats()
	base := delivered.Load()
	w0 := time.Now()
	time.Sleep(cfg.Window)
	got := delivered.Load() - base
	elapsed := time.Since(w0)
	st := sw.DatapathStats().Delta(pre)
	stop.Store(true)
	wg.Wait()
	app.Stop()
	sw.Stop()

	row := ConntrackRow{
		Conns:            conns,
		SeedMconnsPerSec: seedRate,
		Mpps:             float64(got) / elapsed.Seconds() / 1e6,
		Live:             ct.Live(),
	}
	probes := st.Conntrack.Hits + st.Conntrack.Misses
	if probes > 0 {
		row.CTHitPct = 100 * float64(st.Conntrack.Hits) / float64(probes)
		row.CTMissPct = 100 * float64(st.Conntrack.Misses) / float64(probes)
	}
	lookups := st.EMC.Hits + st.SMC.Hits + st.DedupHits + st.ClassifierHits + st.ClassifierMisses
	if lookups > 0 {
		row.EMCPct = 100 * float64(st.EMC.Hits) / float64(lookups)
		row.SMCPct = 100 * float64(st.SMC.Hits) / float64(lookups)
		row.ClsPct = 100 * float64(st.ClassifierHits+st.ClassifierMisses) / float64(lookups)
	}
	if row.Live < conns {
		return row, fmt.Errorf("conntrack: only %d of %d seeded connections still live after the window", row.Live, conns)
	}
	if err := ct.CheckShardSums(); err != nil {
		return row, fmt.Errorf("conntrack: shard stats audit failed: %w", err)
	}
	return row, nil
}

// RunConntrack sweeps concurrent connections 64k → 4M.
func RunConntrack(cfg ExperimentConfig) ([]ConntrackRow, error) {
	var rows []ConntrackRow
	for _, conns := range []int{64 << 10, 256 << 10, 1 << 20, 1 << 22} {
		row, err := RunConntrackPoint(conns, cfg)
		if err != nil {
			return rows, fmt.Errorf("conntrack %d conns: %w", conns, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
