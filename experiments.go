package highway

import (
	"fmt"
	"sync"
	"time"
)

// ExperimentConfig tunes the measurement harness. Zero values take defaults
// (200 ms warm-up, 500 ms window, 4 flows).
type ExperimentConfig struct {
	Warmup time.Duration
	Window time.Duration
	Flows  int
	// NumPMDs configures the vSwitch forwarding threads (default 1, as a
	// single shared PMD core is what makes the vanilla baseline decay).
	NumPMDs int
	// EMCDisabled turns the exact-match cache off (ablation A1).
	EMCDisabled bool
}

func (c *ExperimentConfig) fill() {
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 500 * time.Millisecond
	}
	if c.Flows == 0 {
		c.Flows = 4
	}
}

// ThroughputRow is one point of Figure 3.
type ThroughputRow struct {
	VMs  int
	Mode Mode
	Mpps float64
}

// RunFig3aPoint measures one memory-only chain point: vms is the paper's
// x-axis (total VMs including the source/sink endpoints, so vms-2
// forwarders), mode selects the datapath.
func RunFig3aPoint(vms int, mode Mode, cfg ExperimentConfig) (ThroughputRow, error) {
	cfg.fill()
	if vms < 2 {
		return ThroughputRow{}, fmt.Errorf("fig3a: need >= 2 VMs, got %d", vms)
	}
	node, err := Start(Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(vms-2, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !node.WaitBypasses(chain.ExpectedBypasses()) {
		return ThroughputRow{}, fmt.Errorf("fig3a: bypasses not established (%d live)", node.BypassCount())
	}
	time.Sleep(cfg.Warmup)
	mpps := chain.MeasureMpps(cfg.Window)
	return ThroughputRow{VMs: vms, Mode: mode, Mpps: mpps}, nil
}

// RunFig3a sweeps chain lengths for both modes, reproducing Figure 3(a).
func RunFig3a(vmCounts []int, cfg ExperimentConfig) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunFig3aPoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RunFig3bPoint measures one NIC-attached chain point: vms forwarder VMs
// between two line-rate-limited 10G NICs.
func RunFig3bPoint(vms int, mode Mode, cfg ExperimentConfig) (ThroughputRow, error) {
	cfg.fill()
	if vms < 1 {
		return ThroughputRow{}, fmt.Errorf("fig3b: need >= 1 VM, got %d", vms)
	}
	node, err := Start(Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer node.Stop()
	chain, err := node.DeployNICChain(vms, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return ThroughputRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !node.WaitBypasses(chain.ExpectedBypasses()) {
		return ThroughputRow{}, fmt.Errorf("fig3b: bypasses not established (%d live)", node.BypassCount())
	}
	time.Sleep(cfg.Warmup)
	mpps := chain.MeasureMpps(cfg.Window)
	return ThroughputRow{VMs: vms, Mode: mode, Mpps: mpps}, nil
}

// RunFig3b sweeps chain lengths for both modes, reproducing Figure 3(b).
func RunFig3b(vmCounts []int, cfg ExperimentConfig) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunFig3bPoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// MultiNodeRow is one point of the 2-node split-chain experiment: a
// Fig-3a-style bidirectional chain whose VM sequence is split contiguously
// across two nodes joined by a shared VLAN-steered trunk.
type MultiNodeRow struct {
	VMs      int // total chain VMs (both endpoints included), paper x-axis
	Mode     Mode
	Mpps     float64
	Bypasses int   // live bypasses while measuring (0 in vanilla mode)
	Segments []int // chain VMs per node
}

// RunMultiNodePoint measures one 2-node split-chain point: vms total VMs
// (so vms-2 forwarders) split across nodes "node-a"/"node-b". Intra-node
// hops can bypass in highway mode; the inter-node hop rides a VLAN lane on
// the nodes' shared 10G trunk in either mode — realistic shared-uplink
// contention, not a private wire.
func RunMultiNodePoint(vms int, mode Mode, cfg ExperimentConfig) (MultiNodeRow, error) {
	cfg.fill()
	if vms < 2 {
		return MultiNodeRow{}, fmt.Errorf("multinode: need >= 2 VMs, got %d", vms)
	}
	cluster, err := StartCluster(ClusterConfig{
		Config: Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled},
		Nodes:  []string{"node-a", "node-b"},
	})
	if err != nil {
		return MultiNodeRow{}, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(vms-2, nil, ChainOptions{Flows: cfg.Flows})
	if err != nil {
		return MultiNodeRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return MultiNodeRow{}, fmt.Errorf("multinode: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	time.Sleep(cfg.Warmup)
	mpps := chain.MeasureMpps(cfg.Window)
	return MultiNodeRow{
		VMs: vms, Mode: mode, Mpps: mpps,
		Bypasses: cluster.BypassCount(),
		Segments: chain.Segments(),
	}, nil
}

// RunMultiNode sweeps split-chain lengths for both modes.
func RunMultiNode(vmCounts []int, cfg ExperimentConfig) ([]MultiNodeRow, error) {
	var rows []MultiNodeRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunMultiNodePoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// WireLatencyRow is one point of the cross-node propagation-delay sweep:
// a 2-node split chain measured under a given per-direction trunk latency.
type WireLatencyRow struct {
	WireLatency time.Duration
	VMs         int
	Mode        Mode
	Mpps        float64
	P50, P99    time.Duration
	Samples     uint64
}

// RunWireLatencyPoint measures one split-chain point under the given trunk
// propagation delay (ClusterConfig.WireLatency): throughput and one-way
// latency together, under bidirectional load. The chain crosses the trunk
// once, so every end-to-end path pays the delay exactly once per direction.
func RunWireLatencyPoint(vms int, wireLat time.Duration, mode Mode, cfg ExperimentConfig) (WireLatencyRow, error) {
	cfg.fill()
	if vms < 2 {
		return WireLatencyRow{}, fmt.Errorf("wlatency: need >= 2 VMs, got %d", vms)
	}
	cluster, err := StartCluster(ClusterConfig{
		Config:      Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled},
		Nodes:       []string{"node-a", "node-b"},
		WireLatency: wireLat,
	})
	if err != nil {
		return WireLatencyRow{}, err
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(vms-2, nil, ChainOptions{Flows: cfg.Flows, Timestamp: true})
	if err != nil {
		return WireLatencyRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		return WireLatencyRow{}, fmt.Errorf("wlatency: bypasses not established (%d live, want %d)",
			cluster.BypassCount(), chain.ExpectedBypasses())
	}
	time.Sleep(cfg.Warmup)
	chain.ResetWindow()
	time.Sleep(cfg.Window)
	return WireLatencyRow{
		WireLatency: wireLat,
		VMs:         vms,
		Mode:        mode,
		Mpps:        chain.RatePps() / 1e6,
		P50:         chain.LatencyQuantile(0.50),
		P99:         chain.LatencyQuantile(0.99),
		Samples:     chain.LatencySamples(),
	}, nil
}

// RunWireLatency sweeps the trunk propagation delay over a fixed split
// chain for both modes (ROADMAP's cross-node latency experiment). The
// expectation: the wire delay adds a mode-independent floor, so the
// highway's relative latency advantage shrinks as propagation dominates —
// but its throughput advantage survives untouched.
func RunWireLatency(vms int, latencies []time.Duration, cfg ExperimentConfig) ([]WireLatencyRow, error) {
	var rows []WireLatencyRow
	for _, lat := range latencies {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunWireLatencyPoint(vms, lat, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// LatencyRow is one point of the latency experiment (E3).
type LatencyRow struct {
	VMs     int
	Mode    Mode
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
	Samples uint64
}

// RunLatencyPoint measures one-way latency through a memory-only chain of
// vms total VMs under bidirectional load.
func RunLatencyPoint(vms int, mode Mode, cfg ExperimentConfig) (LatencyRow, error) {
	cfg.fill()
	if vms < 2 {
		return LatencyRow{}, fmt.Errorf("latency: need >= 2 VMs, got %d", vms)
	}
	node, err := Start(Config{Mode: mode, NumPMDs: cfg.NumPMDs, EMCDisabled: cfg.EMCDisabled})
	if err != nil {
		return LatencyRow{}, err
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(vms-2, ChainOptions{Flows: cfg.Flows, Timestamp: true})
	if err != nil {
		return LatencyRow{}, err
	}
	defer chain.Stop()
	if mode == ModeHighway && !node.WaitBypasses(chain.ExpectedBypasses()) {
		return LatencyRow{}, fmt.Errorf("latency: bypasses not established")
	}
	time.Sleep(cfg.Warmup)
	chain.ResetWindow()
	time.Sleep(cfg.Window)
	return LatencyRow{
		VMs:     vms,
		Mode:    mode,
		Mean:    chain.LatencyMean(),
		P50:     chain.LatencyQuantile(0.50),
		P99:     chain.LatencyQuantile(0.99),
		Samples: chain.LatencySamples(),
	}, nil
}

// RunLatency sweeps chain lengths for both modes (experiment E3; the paper
// reports ~80% improvement at 8 VMs).
func RunLatency(vmCounts []int, cfg ExperimentConfig) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, vms := range vmCounts {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			r, err := RunLatencyPoint(vms, mode, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// SetupRow summarizes the bypass establishment latency experiment (E4).
type SetupRow struct {
	Samples int
	Min     time.Duration
	Mean    time.Duration
	Max     time.Duration
	// HotplugDelay/ConfigDelay echo the emulated control-plane latencies.
	HotplugDelay time.Duration
	ConfigDelay  time.Duration
}

// RunSetupTime measures the flow-mod→bypass-active latency (experiment E4)
// over `links` directed links, with the given emulated QEMU/virtio delays.
// With QEMU-realistic delays (tens of ms for hot-plug), the total lands in
// the paper's ~100 ms regime; with zero delays it exposes the pure
// control-plane software cost of this implementation.
func RunSetupTime(links int, hotplug, config time.Duration) (SetupRow, error) {
	if links < 2 {
		links = 2
	}
	var (
		mu      sync.Mutex
		samples []time.Duration
	)
	node, err := Start(Config{
		Mode:         ModeHighway,
		HotplugDelay: hotplug,
		ConfigDelay:  config,
		OnBypassUp: func(_, _ uint32, d time.Duration) {
			mu.Lock()
			samples = append(samples, d)
			mu.Unlock()
		},
	})
	if err != nil {
		return SetupRow{}, err
	}
	defer node.Stop()

	// links/2 bidirectional hops ⇒ links directed bypasses.
	chain, err := node.DeployBidirChain(links/2-1, ChainOptions{})
	if err != nil {
		return SetupRow{}, err
	}
	defer chain.Stop()
	if !node.WaitBypasses(chain.ExpectedBypasses()) {
		return SetupRow{}, fmt.Errorf("setup: bypasses not established")
	}

	mu.Lock()
	defer mu.Unlock()
	row := SetupRow{Samples: len(samples), HotplugDelay: hotplug, ConfigDelay: config}
	if len(samples) == 0 {
		return row, fmt.Errorf("setup: no samples observed")
	}
	row.Min = samples[0]
	var sum time.Duration
	for _, s := range samples {
		if s < row.Min {
			row.Min = s
		}
		if s > row.Max {
			row.Max = s
		}
		sum += s
	}
	row.Mean = sum / time.Duration(len(samples))
	return row, nil
}
