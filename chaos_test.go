package highway

import (
	"testing"
	"time"
)

// TestChaosSoakReconciler runs the full self-healing story end to end: a
// 3-node highway cluster with an ECMP×2 fabric carries a live split chain
// while faults are injected in a loop — trunks killed, steering rules
// wiped, vSwitches restarted — and the background reconciler alone must
// keep bringing the cluster back to full throughput, bypasses included,
// with no manual redeploy. Run under -race in CI.
func TestChaosSoakReconciler(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	nodes := []string{"node-a", "node-b", "node-c"}
	cluster, err := StartCluster(ClusterConfig{
		Config: Config{Mode: ModeHighway, PoolSize: 4096},
		Nodes:  nodes,
		Fabric: FabricConfig{ECMPWidth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(6, nodes, ChainOptions{Flows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		t.Fatalf("initial bypasses not established (%d live)", cluster.BypassCount())
	}
	// Progress probe: both ends together must deliver `want` more packets
	// within the deadline. Fixed-window rate measurements are too flaky
	// under the race detector's scheduling; absolute progress is not.
	received := func() uint64 {
		var v uint64
		for _, e := range chain.ends {
			v += e.Received.Load()
		}
		return v
	}
	waitProgress := func(want uint64) bool {
		start := received()
		deadline := time.Now().Add(5 * time.Second)
		for received() < start+want && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		return received() >= start+want
	}
	if !waitProgress(2000) {
		t.Fatal("chain carries no traffic before chaos")
	}
	base := chain.MeasureMpps(300 * time.Millisecond)

	r := cluster.StartReconciler(2 * time.Millisecond)
	defer r.Stop()

	mid := nodes[1]
	faults := []struct {
		name   string
		inject func() error
	}{
		{"fail-trunk-ab0", func() error { return cluster.FailTrunk(nodes[0], mid, 0) }},
		{"wipe-rules-mid", func() error { _, err := cluster.WipeRules(mid); return err }},
		{"restart-mid", func() error { return cluster.RestartVSwitch(mid) }},
		{"fail-trunk-bc1", func() error { return cluster.FailTrunk(mid, nodes[2], 1) }},
		{"wipe-rules-a", func() error { _, err := cluster.WipeRules(nodes[0]); return err }},
		{"restart-a", func() error { return cluster.RestartVSwitch(nodes[0]) }},
	}
	for round := 0; round < 2; round++ {
		for _, f := range faults {
			if err := f.inject(); err != nil {
				t.Fatalf("round %d: inject %s: %v", round, f.name, err)
			}
			// The reconciler must restore the rules and fabric; the detector
			// then re-establishes any bypasses the fault tore down.
			if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
				st := r.Stats()
				t.Fatalf("round %d: %s: bypasses not restored (%d live, want %d; reconciler passes=%d repairs=%d errors=%d)",
					round, f.name, cluster.BypassCount(), chain.ExpectedBypasses(),
					st.Passes, st.Repairs, st.Errors)
			}
			// Traffic must actually move again end to end.
			if !waitProgress(1000) {
				t.Fatalf("round %d: %s: chain dead after repair", round, f.name)
			}
		}
	}

	st := r.Stats()
	if st.Repairs == 0 {
		t.Fatal("reconciler repaired nothing across the whole chaos run")
	}
	if st.Errors != 0 {
		t.Fatalf("reconciler recorded %d errors", st.Errors)
	}
	// Full recovery: a healthy measurement window after the chaos ends. The
	// bar is deliberately loose (half of baseline) — the point is "repaired
	// to real throughput", not a performance assertion on a loaded host.
	time.Sleep(200 * time.Millisecond)
	final := chain.MeasureMpps(300 * time.Millisecond)
	if final == 0 {
		t.Fatal("no throughput after chaos ended")
	}
	// The ratio bar only holds without the race detector: its scheduler
	// perturbs fixed-window rates by far more than the 2× slack.
	if !raceEnabled && base > 0 && final < base/2 {
		t.Fatalf("throughput did not recover: %.3f Mpps vs %.3f baseline", final, base)
	}
}

// TestChaosSoakRebalancer runs the placement controller and the reconciler
// together under fault injection: a deliberately skewed split chain carries
// paced traffic while trunks are killed, rules wiped, and a vSwitch
// restarted. The rebalancer must converge the layout (fewer crossings) with
// at most one migration in flight, defer around unrepaired faults instead
// of erroring, and never race the reconciler. Run under -race in CI.
func TestChaosSoakRebalancer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	nodes := []string{"node-a", "node-b", "node-c"}
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeHighway, PoolSize: 4096},
		Nodes:     nodes,
		Fabric:    FabricConfig{ECMPWidth: 2},
		TrunkRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(6, nodes, ChainOptions{Flows: 4, RatePps: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		t.Fatalf("initial bypasses not established (%d live)", cluster.BypassCount())
	}
	received := func() uint64 {
		var v uint64
		for _, e := range chain.ends {
			v += e.Received.Load()
		}
		return v
	}
	waitProgress := func(want uint64) bool {
		start := received()
		deadline := time.Now().Add(5 * time.Second)
		for received() < start+want && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		return received() >= start+want
	}
	if !waitProgress(2000) {
		t.Fatal("chain carries no traffic before chaos")
	}

	// Skew the layout by hand: two middles swapped across the fabric. The
	// contiguous deploy has 2 crossings; this drifted layout has 4 — the
	// drift a long-running cluster accumulates and the controller exists to
	// repair. (ExpectedBypasses is deploy-time layout; after these moves the
	// live bypass count differs, so the rest of the test probes progress and
	// crossings, not bypass counts.)
	for _, mv := range []struct{ vnf, to string }{
		{"vnf2", nodes[2]},
		{"vnf5", nodes[0]},
	} {
		if _, err := chain.Deployment().Migrate(mv.vnf, mv.to); err != nil {
			t.Fatalf("skew migrate %s→%s: %v", mv.vnf, mv.to, err)
		}
	}
	crossBefore := chain.Deployment().Crossings()
	if crossBefore < 4 {
		t.Fatalf("skew setup produced only %d crossings", crossBefore)
	}

	rec := cluster.StartReconciler(2 * time.Millisecond)
	defer rec.Stop()
	reb := cluster.StartRebalancer(RebalanceConfig{
		Interval: 15 * time.Millisecond,
		Cooldown: 250 * time.Millisecond,
	})
	defer reb.Stop()

	mid := nodes[1]
	faults := []struct {
		name   string
		inject func() error
	}{
		{"fail-trunk-ab0", func() error { return cluster.FailTrunk(nodes[0], mid, 0) }},
		{"wipe-rules-mid", func() error { _, err := cluster.WipeRules(mid); return err }},
		{"restart-mid", func() error { return cluster.RestartVSwitch(mid) }},
	}
	for round := 0; round < 2; round++ {
		for _, f := range faults {
			if err := f.inject(); err != nil {
				t.Fatalf("round %d: inject %s: %v", round, f.name, err)
			}
			// The reconciler repairs; the rebalancer keeps (or resumes)
			// converging around the fault. Traffic must keep moving.
			if !waitProgress(1000) {
				t.Fatalf("round %d: %s: chain dead after repair", round, f.name)
			}
		}
	}

	// Convergence: with the chaos over, the controller must have reduced the
	// drifted layout's crossings. Poll — moves still cooling down may land
	// shortly after the last fault round.
	deadline := time.Now().Add(10 * time.Second)
	crossAfter := chain.Deployment().Crossings()
	for crossAfter >= crossBefore && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		crossAfter = chain.Deployment().Crossings()
	}
	if crossAfter >= crossBefore {
		st := reb.Stats()
		t.Fatalf("rebalancer never converged the skewed layout: %d → %d crossings (passes=%d deferred=%d damped=%d moves=%d errors=%d)",
			crossBefore, crossAfter, st.Passes, st.Deferred, st.Damped, st.Moves, st.Errors)
	}

	st := reb.Stats()
	if st.Moves == 0 {
		t.Fatal("rebalancer moved nothing across the whole chaos run")
	}
	if st.MaxInFlight > 1 {
		t.Fatalf("rebalancer ran %d migrations concurrently, want at most 1", st.MaxInFlight)
	}
	if st.Errors != 0 {
		t.Fatalf("rebalancer recorded %d errors", st.Errors)
	}
	if rs := rec.Stats(); rs.Errors != 0 {
		t.Fatalf("reconciler recorded %d errors", rs.Errors)
	}
	if !waitProgress(2000) {
		t.Fatal("chain dead after chaos ended")
	}
}

// TestMigrateZeroLossPublicAPI drives a live migration through the public
// highway API under paced traffic and asserts the conservation ledger:
// pausing and settling before and after, the in-flight delta must be zero.
func TestMigrateZeroLossPublicAPI(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c"}
	cluster, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: ModeHighway, PoolSize: 4096},
		Nodes:     nodes,
		TrunkRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	chain, err := cluster.DeploySplitChain(4, nodes[:2], ChainOptions{Flows: 4, RatePps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
		t.Fatalf("bypasses not established (%d live)", cluster.BypassCount())
	}

	chain.Pause(true)
	l0 := chain.Settle(2 * time.Second)
	chain.Pause(false)
	rep, err := chain.Deployment().Migrate("vnf2", nodes[2])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Errorf("paced migration should drain before the deadline: %+v", rep)
	}
	chain.Pause(true)
	l1 := chain.Settle(2 * time.Second)
	chain.Pause(false)
	if lost := l1 - l0; lost != 0 {
		t.Fatalf("migration lost %d packets (ledger %d → %d)", lost, l0, l1)
	}
	// The migrated layout keeps flowing and reconciles clean.
	start := chain.ends[0].Received.Load() + chain.ends[1].Received.Load()
	deadline := time.Now().Add(5 * time.Second)
	alive := func() uint64 {
		return chain.ends[0].Received.Load() + chain.ends[1].Received.Load() - start
	}
	for alive() < 1000 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if alive() < 1000 {
		t.Fatal("chain dead after migration")
	}
	if n, err := cluster.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("post-migration reconcile: %d repairs, err %v", n, err)
	}
}

// TestChaosStatefulConntrack puts the stateful NAT44→ACL→balancer chain
// under the same faults the reconciler soak uses — steering rules wiped,
// vSwitches restarted — and requires the connection state to ride through:
// conntrack tables live on the Switch (not in the per-PMD caches a restart
// discards) and rules are reconciled, so established connections must keep
// translating on their original NAT bindings. A reset would show up as
// fresh port allocations; a lost table as unsolicited-inbound drops.
func TestChaosStatefulConntrack(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	nodes := []string{"node-a", "node-b"}
	cluster, err := StartCluster(ClusterConfig{
		Config: Config{Mode: ModeHighway, PoolSize: 4096},
		Nodes:  nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	sc, _, err := cluster.DeployStatefulChain(StatefulChainOptions{
		Flows: 32, RatePps: 20_000, Backends: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	waitProgress := func(want uint64) bool {
		start := sc.Received()
		deadline := time.Now().Add(5 * time.Second)
		for sc.Received() < start+want && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		return sc.Received() >= start+want
	}
	if !waitProgress(2000) {
		t.Fatal("chain carries no traffic before chaos")
	}
	// All 32 connections established: the binding census must not move for
	// the rest of the test — any growth means a connection was reset and
	// had to re-establish through a fresh NAT binding.
	bound := sc.NAT().Bound.Load()
	if bound != 32 {
		t.Fatalf("NAT established %d bindings before chaos, want 32", bound)
	}
	pinned := sc.Balancer().NewConns.Load()

	r := cluster.StartReconciler(2 * time.Millisecond)
	defer r.Stop()

	faults := []struct {
		name   string
		inject func() error
	}{
		{"wipe-rules-a", func() error { _, err := cluster.WipeRules(nodes[0]); return err }},
		{"restart-a", func() error { return cluster.RestartVSwitch(nodes[0]) }},
		{"wipe-rules-b", func() error { _, err := cluster.WipeRules(nodes[1]); return err }},
		{"restart-b", func() error { return cluster.RestartVSwitch(nodes[1]) }},
	}
	for round := 0; round < 2; round++ {
		for _, f := range faults {
			if err := f.inject(); err != nil {
				t.Fatalf("round %d: inject %s: %v", round, f.name, err)
			}
			if !waitProgress(1000) {
				st := r.Stats()
				t.Fatalf("round %d: %s: chain dead after repair (reconciler passes=%d repairs=%d errors=%d)",
					round, f.name, st.Passes, st.Repairs, st.Errors)
			}
		}
	}

	st := r.Stats()
	if st.Errors != 0 {
		t.Fatalf("reconciler recorded %d errors", st.Errors)
	}
	if st.Repairs == 0 {
		t.Fatal("reconciler repaired nothing across the whole chaos run")
	}
	if got := sc.NAT().Bound.Load(); got != bound {
		t.Fatalf("connections reset: NAT bindings grew %d → %d across chaos", bound, got)
	}
	if got := sc.NAT().Unsolicit.Load(); got != 0 {
		t.Fatalf("conntrack state lost: %d inbound packets arrived unsolicited", got)
	}
	if got := sc.Balancer().NewConns.Load(); got != pinned {
		t.Fatalf("balancer re-pinned connections %d → %d: conntrack state lost", pinned, got)
	}
	if got := sc.Balancer().NoState.Load(); got != 0 {
		t.Fatalf("balancer dropped %d reply packets for missing state", got)
	}
}
