package highway

// Benchmark harness: one benchmark per paper artifact (Figures 3(a), 3(b),
// the latency claim, the ~100 ms setup-time claim) plus the ablations from
// DESIGN.md (A1 EMC, A2 batch size, A3 detector overhead).
//
// Throughput points are reported as the custom metric "Mpps"; the paper's
// absolute numbers will not match (simulated substrate), but the relative
// shape — highway ≫ vanilla, the gap widening with chain length, the NIC
// cap flattening Figure 3(b) — reproduces. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or get the formatted paper-style tables from `go run ./cmd/repro`.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ovshighway/internal/conntrack"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/openflow"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vswitch"
)

// benchCfg keeps per-iteration measurement windows short so `go test
// -bench=.` completes in minutes; cmd/repro uses longer windows.
var benchCfg = ExperimentConfig{
	Warmup: 100 * time.Millisecond,
	Window: 300 * time.Millisecond,
	Flows:  4,
}

// BenchmarkFig3a regenerates Figure 3(a): memory-only chains, the first and
// last VM acting as bidirectional 64B source/sink, for 2..8 total VMs.
func BenchmarkFig3a(b *testing.B) {
	for _, vms := range []int{2, 3, 4, 5, 6, 7, 8} {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			b.Run(fmt.Sprintf("vms=%d/mode=%s", vms, mode), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					row, err := RunFig3aPoint(vms, mode, benchCfg)
					if err != nil {
						b.Fatal(err)
					}
					total += row.Mpps
				}
				b.ReportMetric(total/float64(b.N), "Mpps")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig3b regenerates Figure 3(b): chains of 1..8 VMs fed and drained
// through two line-rate-limited 10G NICs.
func BenchmarkFig3b(b *testing.B) {
	for _, vms := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			b.Run(fmt.Sprintf("vms=%d/mode=%s", vms, mode), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					row, err := RunFig3bPoint(vms, mode, benchCfg)
					if err != nil {
						b.Fatal(err)
					}
					total += row.Mpps
				}
				b.ReportMetric(total/float64(b.N), "Mpps")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkLatency regenerates the latency claim (E3): one-way latency
// through memory-only chains; the paper reports ~80% improvement at 8 VMs.
func BenchmarkLatency(b *testing.B) {
	for _, vms := range []int{2, 4, 8} {
		for _, mode := range []Mode{ModeVanilla, ModeHighway} {
			b.Run(fmt.Sprintf("vms=%d/mode=%s", vms, mode), func(b *testing.B) {
				var p50 float64
				for i := 0; i < b.N; i++ {
					row, err := RunLatencyPoint(vms, mode, benchCfg)
					if err != nil {
						b.Fatal(err)
					}
					p50 += float64(row.P50.Nanoseconds())
				}
				b.ReportMetric(p50/float64(b.N), "p50-ns")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkSetupTime regenerates the setup-time claim (E4): flow-mod
// analysis to PMD-switched, with QEMU-realistic emulated control latencies
// (~30 ms per ivshmem hot-plug, ~5 ms per virtio-serial exchange — the
// regime that puts the paper at ~100 ms) and with zero emulation (the pure
// software cost of this implementation).
func BenchmarkSetupTime(b *testing.B) {
	cases := []struct {
		name            string
		hotplug, config time.Duration
	}{
		{"qemu-realistic", 30 * time.Millisecond, 5 * time.Millisecond},
		{"no-emulation", 0, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				row, err := RunSetupTime(4, c.hotplug, c.config)
				if err != nil {
					b.Fatal(err)
				}
				mean += float64(row.Mean.Nanoseconds())
			}
			b.ReportMetric(mean/float64(b.N)/1e6, "setup-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationEMC (A1): single-hop vanilla forwarding with the
// exact-match cache on vs off, isolating the EMC's contribution to the
// per-hop vSwitch cost the bypass removes. The SMC tier is off in BOTH
// arms, so emc=off measures the full classifier walk rather than the
// second cache tier (its own axis is A5, BenchmarkAblationSMC).
func BenchmarkAblationEMC(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "emc=on"
		if disabled {
			name = "emc=off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg
			cfg.EMCDisabled = disabled
			cfg.SMCDisabled = true
			var total float64
			for i := 0; i < b.N; i++ {
				row, err := RunFig3aPoint(2, ModeVanilla, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += row.Mpps
			}
			b.ReportMetric(total/float64(b.N), "Mpps")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationBatch (A2): raw bypass-hop cost at different burst sizes,
// showing why the datapath works in batches of 32.
func BenchmarkAblationBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			pool := mempool.MustNew(mempool.Config{Capacity: 2048, BufSize: 256, Headroom: 32})
			_, pmdA, _ := dpdkr.NewPort(1, "a", 1024)
			_, pmdB, _ := dpdkr.NewPort(2, "b", 1024)
			link, _ := dpdkr.NewLink("l", 1, 2, 1024)
			pmdA.AttachTxBypass(link)
			pmdB.AttachRxBypass(link)
			bufs := make([]*mempool.Buf, batch)
			out := make([]*mempool.Buf, batch)
			pool.GetBatch(bufs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pmdA.Tx(bufs)
				pmdB.Rx(out)
			}
			b.SetBytes(int64(batch))
		})
	}
}

// BenchmarkAblationDetector (A3): flow-mod ingestion cost with and without
// the p-2-p detector listening, bounding the control-plane overhead the
// paper's modification adds to every flowmod.
func BenchmarkAblationDetector(b *testing.B) {
	for _, mode := range []Mode{ModeVanilla, ModeHighway} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			node, err := Start(Config{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer node.Stop()
			sw := node.Internal().Switch
			// Churn non-p2p rules (refined matches) so highway mode pays the
			// analysis without any plumbing.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fm := openflow.FlowMod{
					Command:  openflow.FlowCmdAdd,
					Priority: uint16(i % 100),
					Match:    flow.MatchInPort(uint32(i % 16)).WithL4Dst(uint16(i)),
					Actions:  flow.Actions{flow.Output(uint32(i%16 + 1))},
				}
				if err := sw.ApplyFlowMod(fm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPMDs (A4): vanilla chain throughput versus the number of
// vSwitch forwarding threads. The paper's baseline decay assumes the usual
// deployment of few shared PMD cores; more PMDs flatten the vanilla curve
// at the cost of burning cores the VNFs could have used — the bypass gets
// the flat curve for free.
func BenchmarkAblationPMDs(b *testing.B) {
	for _, pmds := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pmds=%d", pmds), func(b *testing.B) {
			cfg := benchCfg
			cfg.NumPMDs = pmds
			var total float64
			for i := 0; i < b.N; i++ {
				row, err := RunFig3aPoint(6, ModeVanilla, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += row.Mpps
			}
			b.ReportMetric(total/float64(b.N), "Mpps")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationSMC (A5): flow-scale throughput with the signature-match
// cache on vs off, at a distinct-flow count past the EMC's reach (where the
// SMC tier is the one doing the work) — the second-tier twin of A1.
func BenchmarkAblationSMC(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "smc=on"
		if disabled {
			name = "smc=off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg
			cfg.SMCDisabled = disabled
			var total float64
			for i := 0; i < b.N; i++ {
				row, err := RunFlowScalePoint(16384, 0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += row.Mpps
			}
			b.ReportMetric(total/float64(b.N), "Mpps")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkClassifierSubtables measures TSS lookup cost against the number
// of distinct masks (subtables), the scaling dimension tuple-space search
// trades for update speed.
func BenchmarkClassifierSubtables(b *testing.B) {
	for _, masks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("masks=%d", masks), func(b *testing.B) {
			tb := flow.NewTable()
			for i := 0; i < masks; i++ {
				// Each variant pins a different field combination → its own
				// mask → its own subtable.
				m := flow.MatchInPort(uint32(i))
				switch i % 4 {
				case 1:
					m = m.WithIPProto(17)
				case 2:
					m = m.WithL4Dst(uint16(1000 + i))
				case 3:
					m = m.WithIPProto(6).WithL4Src(uint16(2000 + i))
				}
				tb.Add(uint16(i), m, flow.Actions{flow.Output(1)}, 0)
			}
			k := flow.Key{InPort: 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Lookup(&k)
			}
		})
	}
}

// BenchmarkEMCLookup pins the cost of the cache-tier lookups the PMD pays
// on every steady-state packet: a hit in the exact-match cache (first
// tier) and in the signature-match cache (second tier, probed on EMC
// miss), both validated against the table's add/modify generation. Zero
// allocations — CI gates every line.
func BenchmarkEMCLookup(b *testing.B) {
	tb := flow.NewTable()
	f := tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	key := flow.Key{InPort: 1, EthType: 0x0800, IPProto: 17, L4Src: 5000, L4Dst: 9000}
	kp := key.Pack()
	hash := kp.Hash()
	gen := tb.Generation()
	b.Run("emc", func(b *testing.B) {
		emc := flow.NewEMC(8192)
		emc.Insert(kp, hash, f, gen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if emc.Lookup(kp, hash, gen) == nil {
				b.Fatal("unexpected EMC miss")
			}
		}
	})
	b.Run("smc", func(b *testing.B) {
		smc := flow.NewSMC(32768)
		smc.Insert(&kp, hash, f, gen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if smc.Lookup(&kp, hash, gen) == nil {
				b.Fatal("unexpected SMC miss")
			}
		}
	})
}

// BenchmarkLookupChurn is the death-mark invalidation headline: steady
// traffic over a fixed key set while UNRELATED flows are deleted from the
// table (idle-expiry / co-resident-teardown churn). Under the legacy
// global-version scheme (every mutation bumps the generation the cache
// validates against) each delete stampedes the whole EMC onto the
// classifier and the hit rate collapses toward 0%. Under the death-mark
// scheme (Table.Generation moves only on add/modify; deletes mark their
// flow dead) the EMC keeps hitting through the churn. The emc-hit-%
// metric is the comparison; acceptance wants >90% for death-mark.
func BenchmarkLookupChurn(b *testing.B) {
	const (
		trafficKeys = 256
		victims     = 4096
		churnEvery  = 16 // one unrelated delete per 16 lookups
	)
	for _, scheme := range []string{"global-version", "death-mark"} {
		b.Run(scheme, func(b *testing.B) {
			tb := flow.NewTable()
			tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
			specs, matches := churnVictims(victims)
			tb.AddBatch(specs)
			gen := func() uint64 {
				if scheme == "global-version" {
					return tb.Version()
				}
				return tb.Generation()
			}
			kps := make([]flow.Packed, trafficKeys)
			hashes := make([]uint32, trafficKeys)
			for i := range kps {
				k := flow.Key{InPort: 1, EthType: 0x0800, IPProto: 17, L4Src: uint16(i), L4Dst: 9000}
				kps[i] = k.Pack()
				hashes[i] = kps[i].Hash()
			}
			emc := flow.NewEMC(8192)
			nextVictim := 0
			var hits, lookups uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%churnEvery == churnEvery-1 {
					if nextVictim == victims {
						// Victims exhausted on a long run: restock outside
						// the measured churn pattern (one add-generation
						// bump per 4096 deletes — negligible either way).
						b.StopTimer()
						tb.AddBatch(specs)
						nextVictim = 0
						b.StartTimer()
					}
					tb.DeleteStrict(5, matches[nextVictim])
					nextVictim++
				}
				j := i % trafficKeys
				g := gen()
				f := emc.Lookup(kps[j], hashes[j], g)
				if f != nil {
					hits++
				} else if f = tb.LookupPacked(&kps[j]); f != nil {
					emc.Insert(kps[j], hashes[j], f, g)
				}
				lookups++
			}
			b.ReportMetric(100*float64(hits)/float64(lookups), "emc-hit-%")
		})
	}
}

// BenchmarkConntrack pins the stateful-VNF fast path: the sharded
// connection table every NAT44/ACL/balancer consults per packet. hit is the
// established-connection case (the overwhelming majority at steady state),
// miss the first-packet probe, and churn the worst case — connections
// opening and closing every iteration, cycling entries through the arena
// freelist and forcing tombstone reclaim and bucket compaction. All three
// must report 0 allocs/op: like the PMD forwarding path, connection
// tracking never touches the heap — CI gates every line.
func BenchmarkConntrack(b *testing.B) {
	const conns = 65536
	keys := make([]conntrack.Key, conns)
	for i := range keys {
		keys[i] = conntrack.Key{
			Src:     pkt.IP4{10, byte(i >> 16), byte(i >> 8), byte(i)},
			Dst:     pkt.IP4{10, 99, 0, 1},
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   pkt.ProtoUDP,
		}
	}
	newTable := func(b *testing.B) *conntrack.Table {
		// Headroom over the connection count: the arena is split evenly
		// across shards but Hash2 spreads keys only statistically evenly.
		t, err := conntrack.New(conntrack.Config{Shards: 4, Capacity: conns + conns/8, IdleTimeout: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	b.Run("hit", func(b *testing.B) {
		t := newTable(b)
		for _, k := range keys {
			if t.Insert(k, 1) == nil {
				b.Fatal("insert failed during setup")
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if t.Lookup(keys[i%conns], int64(i)+2) == nil {
				b.Fatal("unexpected conntrack miss")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		t := newTable(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if t.Lookup(keys[i%conns], int64(i)) != nil {
				b.Fatal("unexpected conntrack hit")
			}
		}
	})
	b.Run("churn", func(b *testing.B) {
		// Quarter-full table, every iteration closes the oldest connection
		// and opens a new one: constant tombstone creation, freelist reuse,
		// and periodic compaction — the expiry-churn steady state.
		t := newTable(b)
		const live = conns / 4
		for i := 0; i < live; i++ {
			if t.Insert(keys[i], 1) == nil {
				b.Fatal("insert failed during setup")
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Remove(keys[i%conns])
			if t.Insert(keys[(i+live)%conns], int64(i)+2) == nil {
				b.Fatal("churn insert failed")
			}
		}
	})
}

// BenchmarkClassifierLookup pins the EMC-miss cost: a full tuple-space-search
// walk on the already-packed key (the PMD never re-packs on the miss path).
func BenchmarkClassifierLookup(b *testing.B) {
	tb := flow.NewTable()
	for i := 0; i < 16; i++ {
		m := flow.MatchInPort(uint32(i))
		switch i % 4 {
		case 1:
			m = m.WithIPProto(17)
		case 2:
			m = m.WithL4Dst(uint16(1000 + i))
		case 3:
			m = m.WithIPProto(6).WithL4Src(uint16(2000 + i))
		}
		tb.Add(uint16(i), m, flow.Actions{flow.Output(1)}, 0)
	}
	key := flow.Key{InPort: 3, EthType: 0x0800, IPProto: 6, L4Src: 2003}
	kp := key.Pack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.LookupPacked(&kp)
	}
}

// BenchmarkPMDBatch drives full 32-packet bursts through a running vSwitch
// PMD — parse, EMC, flow grouping, action execution, accumulator flush — and
// must report 0 allocs/op: the steady-state forwarding path performs no heap
// allocation. The vlan variant exercises the trunk-lane receive path (tag
// parse + vlan-match + PCP rewrite + pop) and the ecmp variant the
// hash-pinned multi-path output; all must stay zero-alloc — CI gates every
// line.
func BenchmarkPMDBatch(b *testing.B) {
	b.Run("untagged", func(b *testing.B) { benchPMDBatch(b, 0) })
	b.Run("vlan", func(b *testing.B) { benchPMDBatch(b, 7) })
	b.Run("ecmp", benchPMDBatchECMP)
	b.Run("ecmp-adaptive", benchPMDBatchECMPAdaptive)
}

func benchPMDBatch(b *testing.B, vid uint16) {
	sw := vswitch.New(vswitch.Config{SweepInterval: time.Hour})
	pool := mempool.MustNew(mempool.Config{Capacity: 2048})
	sw.SetInjectionPool(pool)
	portA, pmdA, _ := dpdkr.NewPort(1, "a", 1024)
	portB, pmdB, _ := dpdkr.NewPort(2, "b", 1024)
	sw.AddPort(portA)
	sw.AddPort(portB)
	spec := DefaultTrafficSpec()
	if vid == 0 {
		sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	} else {
		// The receive path of a QoS-scheduled trunk lane: match the tag,
		// restamp its priority (the PCP set path), strip it, deliver.
		spec.VlanID = vid
		sw.Table().Add(10, flow.MatchInPort(1).WithVlan(vid),
			flow.Actions{flow.SetVlanPcp(5), flow.PopVlan(), flow.Output(2)}, 0)
	}
	if err := sw.Start(); err != nil {
		b.Fatal(err)
	}
	defer sw.Stop()

	raw := make([]byte, 256)
	n, _ := pkt.BuildUDP(raw, spec)
	bufs := make([]*mempool.Buf, 32)
	out := make([]*mempool.Buf, 32)
	refill := func() {
		// The pop action strips the tag in flight, so the vlan variant
		// re-stamps the frames before re-transmitting (SetBytes is a copy
		// into the existing buffer — no allocation).
		if vid != 0 {
			for _, buf := range bufs {
				buf.SetBytes(raw[:n])
			}
		}
	}
	for i := range bufs {
		bufs[i], _ = pool.Get()
		bufs[i].SetBytes(raw[:n])
	}
	// Warm the path (EMC entry, accumulator capacities) before counting.
	pmdA.Tx(bufs)
	for got := 0; got < 32; {
		got += rxYield(pmdB, out)
	}
	refill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent := pmdA.Tx(bufs)
		got := 0
		for got < sent {
			got += rxYield(pmdB, out)
		}
		refill()
	}
	b.SetBytes(32)
}

// benchPMDBatchECMP drives bursts through an output_ecmp rule spreading
// over two destinations: per-packet Hash2 path pinning plus the live-port
// probe, all of which must stay inside the zero-alloc budget.
func benchPMDBatchECMP(b *testing.B) {
	sw := vswitch.New(vswitch.Config{SweepInterval: time.Hour})
	pool := mempool.MustNew(mempool.Config{Capacity: 2048})
	sw.SetInjectionPool(pool)
	portA, pmdA, _ := dpdkr.NewPort(1, "a", 1024)
	portB, pmdB, _ := dpdkr.NewPort(2, "b", 1024)
	portC, pmdC, _ := dpdkr.NewPort(3, "c", 1024)
	sw.AddPort(portA)
	sw.AddPort(portB)
	sw.AddPort(portC)
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.OutputECMP(2, 3)}, 0)
	if err := sw.Start(); err != nil {
		b.Fatal(err)
	}
	defer sw.Stop()

	raw := make([]byte, 256)
	spec := DefaultTrafficSpec()
	bufs := make([]*mempool.Buf, 32)
	out := make([]*mempool.Buf, 32)
	for i := range bufs {
		// 32 distinct flows so the burst genuinely spreads across both
		// destinations (one flow per buffer → stable per-buffer pin).
		spec.SrcPort = uint16(5000 + i)
		n, _ := pkt.BuildUDP(raw, spec)
		bufs[i], _ = pool.Get()
		bufs[i].SetBytes(raw[:n])
	}
	rxBoth := func() int {
		k := pmdB.Rx(out)
		k += pmdC.Rx(out[k:])
		if k == 0 {
			runtime.Gosched()
		}
		return k
	}
	// Warm the path (EMC entries, accumulator capacities) before counting.
	pmdA.Tx(bufs)
	for got := 0; got < 32; {
		got += rxBoth()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent := pmdA.Tx(bufs)
		got := 0
		for got < sent {
			got += rxBoth()
		}
	}
	b.SetBytes(32)
}

// benchPMDBatchECMPAdaptive drives the same ECMP spread with the
// congestion-aware repick path ACTIVE: the destinations are NIC ports —
// which export congestion gauges, so portEntry.cong is non-nil — and one
// gauge is pinned at saturation. Every action execution therefore reads the
// per-path gauges and every packet's pick scans past the avoided slot; the
// CI allocation gate holds this at 0 allocs/op like every PMDBatch variant.
func benchPMDBatchECMPAdaptive(b *testing.B) {
	sw := vswitch.New(vswitch.Config{SweepInterval: time.Hour})
	pool := mempool.MustNew(mempool.Config{Capacity: 2048})
	sw.SetInjectionPool(pool)
	portA, pmdA, _ := dpdkr.NewPort(1, "a", 1024)
	nicB, _ := nic.New(nic.Config{ID: 2, Name: "b", QueueSize: 1024, RatePps: -1})
	nicC, _ := nic.New(nic.Config{ID: 3, Name: "c", QueueSize: 1024, RatePps: -1})
	sw.AddPort(portA)
	sw.AddPort(nicB)
	sw.AddPort(nicC)
	// Path B congested: the first batch repicks the avoid mask onto it and
	// every later batch re-reads the gauges, confirms, and steers around.
	nicB.CongestionGauge().Store(255)
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.OutputECMP(2, 3)}, 0)
	if err := sw.Start(); err != nil {
		b.Fatal(err)
	}
	defer sw.Stop()

	raw := make([]byte, 256)
	spec := DefaultTrafficSpec()
	bufs := make([]*mempool.Buf, 32)
	drain := make([]*mempool.Buf, 64)
	for i := range bufs {
		spec.SrcPort = uint16(5000 + i)
		n, _ := pkt.BuildUDP(raw, spec)
		bufs[i], _ = pool.Get()
		bufs[i].SetBytes(raw[:n])
	}
	// The datapath is zero-copy end to end: the drained buffers ARE the
	// injected ones, re-sent next iteration — drain only, never free.
	rxBoth := func() int {
		k := nicB.DrainToWire(drain)
		k += nicC.DrainToWire(drain[k:])
		if k == 0 {
			runtime.Gosched()
		}
		return k
	}
	pmdA.Tx(bufs)
	for got := 0; got < 32; {
		got += rxBoth()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent := pmdA.Tx(bufs)
		got := 0
		for got < sent {
			got += rxBoth()
		}
	}
	b.SetBytes(32)
}

// rxYield polls the PMD once and yields the core when nothing arrived, so a
// single-core host hands the processor to the switch thread instead of
// spinning out its scheduling quantum.
func rxYield(pmd *dpdkr.PMD, out []*mempool.Buf) int {
	k := pmd.Rx(out)
	if k == 0 {
		runtime.Gosched()
	}
	return k
}

// BenchmarkVSwitchSingleHop is the vanilla per-hop reference point: one
// packet crossing the full EMC→classifier→action datapath.
func BenchmarkVSwitchSingleHop(b *testing.B) {
	sw := vswitch.New(vswitch.Config{})
	pool := mempool.MustNew(mempool.Config{Capacity: 2048})
	sw.SetInjectionPool(pool)
	portA, pmdA, _ := dpdkr.NewPort(1, "a", 1024)
	portB, pmdB, _ := dpdkr.NewPort(2, "b", 1024)
	sw.AddPort(portA)
	sw.AddPort(portB)
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	if err := sw.Start(); err != nil {
		b.Fatal(err)
	}
	defer sw.Stop()

	spec := DefaultTrafficSpec()
	raw := make([]byte, 256)
	n, _ := pkt.BuildUDP(raw, spec)
	bufs := make([]*mempool.Buf, 32)
	out := make([]*mempool.Buf, 32)
	for i := range bufs {
		bufs[i], _ = pool.Get()
		bufs[i].SetBytes(raw[:n])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent := pmdA.Tx(bufs)
		got := 0
		for got < sent {
			got += rxYield(pmdB, out)
		}
	}
	b.SetBytes(32)
}

// BenchmarkPMDScale measures forwarding-thread scaling on a single hot
// multi-queue port: 32 flows RSS-fanned over 4 RX queues, each queue homed
// on its own PMD (round-robin), a closed-loop shuttle keeping every queue
// fed. On a ≥4-core host 4 PMDs must deliver at least 3× the Mpps of 1 PMD;
// hosts without the cores (or race-instrumented builds, or windows too short
// to trust) skip the scaling assertion but still report the per-point Mpps.
func BenchmarkPMDScale(b *testing.B) {
	type point struct {
		mpps    float64
		elapsed time.Duration
	}
	results := make(map[int]point)
	for _, pmds := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pmds=%d", pmds), func(b *testing.B) {
			mpps := benchPMDScale(b, pmds, 4)
			results[pmds] = point{mpps: mpps, elapsed: b.Elapsed()}
		})
	}
	r1, ok1 := results[1]
	r4, ok4 := results[4]
	if !ok1 || !ok4 {
		return // sub-benchmark filter excluded an endpoint
	}
	if runtime.NumCPU() < 4 || raceEnabled ||
		r1.elapsed < 100*time.Millisecond || r4.elapsed < 100*time.Millisecond {
		return
	}
	if r4.mpps < 3*r1.mpps {
		b.Fatalf("4 PMDs reached %.2f Mpps, want >= 3x the 1-PMD %.2f Mpps", r4.mpps, r1.mpps)
	}
}

func benchPMDScale(b *testing.B, pmds, queues int) float64 {
	sw := vswitch.New(vswitch.Config{NumPMDs: pmds, SweepInterval: time.Hour})
	pool := mempool.MustNew(mempool.Config{Capacity: 2048})
	sw.SetInjectionPool(pool)
	portGen, pmdGen, _ := dpdkr.NewPortMQ(1, "gen", 1024, queues)
	portSink, pmdSink, _ := dpdkr.NewPort(2, "sink", 1024)
	sw.AddPort(portGen)
	sw.AddPort(portSink)
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	if err := sw.Start(); err != nil {
		b.Fatal(err)
	}
	defer sw.Stop()

	spec := DefaultTrafficSpec()
	raw := make([]byte, 256)
	bufs := make([]*mempool.Buf, 32)
	out := make([]*mempool.Buf, 32)
	for i := range bufs {
		// 32 distinct flows so the guest RSS genuinely spreads the burst
		// over all queues (and so every PMD sees work each iteration).
		spec.SrcPort = uint16(5000 + i)
		n, _ := pkt.BuildUDP(raw, spec)
		bufs[i], _ = pool.Get()
		bufs[i].SetBytes(raw[:n])
	}
	// Warm the path: EMC entries for all 32 flows, accumulator capacities.
	pmdGen.Tx(bufs)
	for got := 0; got < 32; {
		got += rxYield(pmdSink, out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent := pmdGen.Tx(bufs)
		got := 0
		for got < sent {
			got += rxYield(pmdSink, out)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	mpps := 0.0
	if elapsed > 0 {
		mpps = float64(b.N) * 32 / elapsed.Seconds() / 1e6
	}
	b.ReportMetric(mpps, "Mpps")
	b.SetBytes(32)
	return mpps
}
