package highway

import (
	"fmt"
	"time"

	"ovshighway/internal/graph"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/orchestrator"
	"ovshighway/internal/vnf"
)

// ChainOptions tunes chain deployments.
type ChainOptions struct {
	// Flows is the number of distinct 5-tuples generated (default 1).
	Flows int
	// Timestamp stamps generated frames for one-way latency measurement.
	Timestamp bool
	// LanePCP stamps every edge of the chain with this 802.1Q priority
	// (0..7). Only edges that cross a node boundary are affected: their
	// trunk lanes are scheduled in the corresponding DRR class
	// (ClusterConfig.Fabric.PCPWeights). Intra-node hops ignore it.
	LanePCP uint8
	// RatePps paces each end's generator to this rate instead of
	// saturating (0 = unpaced). A paced chain has an exact conservation
	// ledger — every generated packet is eventually received — which the
	// migration experiments use to prove zero loss.
	RatePps float64
}

// Chain is a deployed benchmark chain with measurement hooks.
type Chain struct {
	dep  *Deployment
	node *Node
	n    int
	ends []*vnf.SrcSink   // memory-only chains (Figure 3(a))
	gens []*nic.Generator // NIC chains (Figure 3(b))
	wsnk []*nic.WireSink
	nics []*nic.NIC
}

// applyBidirEndpointArgs injects per-end traffic args into a bidirectional
// chain graph (mirror the 5-tuple for the reverse direction so both ends
// generate sane, distinct flows). Shared by the single-node and the
// cluster split-chain deployers.
func applyBidirEndpointArgs(g *graph.Graph, opts ChainOptions) {
	if opts.LanePCP != 0 {
		for i := range g.Edges {
			g.Edges[i].PCP = opts.LanePCP & 0x07
		}
	}
	for i := range g.VNFs {
		switch g.VNFs[i].Name {
		case "end0":
			g.VNFs[i].Args = orchestrator.SrcSinkArgs{
				Spec: orchestrator.DefaultTrafficSpec(), Flows: opts.Flows, Timestamp: opts.Timestamp,
				RatePps: opts.RatePps,
			}
		case "end1":
			spec := orchestrator.DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcMAC, spec.DstMAC = spec.DstMAC, spec.SrcMAC
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			g.VNFs[i].Args = orchestrator.SrcSinkArgs{
				Spec: spec, Flows: opts.Flows, Timestamp: opts.Timestamp,
				RatePps: opts.RatePps,
			}
		}
	}
}

// DeployBidirChain deploys the paper's Figure 3(a) workload: n forwarder VMs
// in a line with a combined source/sink VM at each end, bidirectional 64B
// traffic. The number of VMs in the paper's x-axis sense is n+2.
func (node *Node) DeployBidirChain(n int, opts ChainOptions) (*Chain, error) {
	g := graph.BidirChain(n)
	applyBidirEndpointArgs(g, opts)
	d, err := node.Deploy(g)
	if err != nil {
		return nil, err
	}
	c := &Chain{dep: d, node: node, n: n}
	c.ends = []*vnf.SrcSink{
		d.inner.SrcSink("end0"),
		d.inner.SrcSink("end1"),
	}
	return c, nil
}

// DeployNICChain deploys the paper's Figure 3(b) workload: n forwarder VMs
// between two simulated 10G NICs, with external generators and sinks on
// both NICs (bidirectional 64B traffic through the node).
func (node *Node) DeployNICChain(n int, opts ChainOptions) (*Chain, error) {
	flows := opts.Flows
	if flows == 0 {
		flows = 1
	}
	eth0, err := node.AddNIC(fmt.Sprintf("eth0-n%d", n), 0)
	if err != nil {
		return nil, err
	}
	eth1, err := node.AddNIC(fmt.Sprintf("eth1-n%d", n), 0)
	if err != nil {
		return nil, err
	}
	g := graph.Chain(n, eth0.PortName(), eth1.PortName())
	d, err := node.Deploy(g)
	if err != nil {
		return nil, err
	}
	c := &Chain{dep: d, node: node, n: n, nics: []*nic.NIC{eth0, eth1}}

	fwd := orchestrator.DefaultTrafficSpec()
	rev := fwd
	rev.SrcIP, rev.DstIP = fwd.DstIP, fwd.SrcIP
	rev.SrcPort, rev.DstPort = fwd.DstPort, fwd.SrcPort

	g0, err := nic.NewGenerator(eth0, node.inner.Pool, fwd, flows)
	if err != nil {
		d.Stop()
		return nil, err
	}
	g1, err := nic.NewGenerator(eth1, node.inner.Pool, rev, flows)
	if err != nil {
		g0.Stop()
		d.Stop()
		return nil, err
	}
	c.gens = []*nic.Generator{g0, g1}
	c.wsnk = []*nic.WireSink{nic.NewWireSink(eth0), nic.NewWireSink(eth1)}
	return c, nil
}

// Stop halts traffic and tears the chain down, including any NICs the chain
// created.
func (c *Chain) Stop() {
	for _, g := range c.gens {
		g.Stop()
	}
	c.dep.Stop()
	for _, s := range c.wsnk {
		s.Stop()
	}
	for _, dev := range c.nics {
		// Through RemoveNIC (not bare RemovePort) so the name registration
		// dies with the port and a later chain can reuse it.
		_ = c.node.inner.RemoveNIC(dev.PortName())
	}
	// Wait out PMD iterations still holding the old port snapshot: draining
	// a queue the datapath is also consuming would break the SPSC contract.
	c.node.inner.Switch.WaitDatapathQuiescence()
	for _, dev := range c.nics {
		// Free anything still parked in either NIC queue. The generators and
		// the switch PMDs are stopped or detached by now, so both drains see
		// quiescent rings.
		scratch := make([]*mempool.Buf, 32)
		for {
			k := dev.DrainToWire(scratch)
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
		}
		for {
			k := dev.DrainFromWire(scratch)
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
		}
	}
}

// Length returns the number of forwarder VMs.
func (c *Chain) Length() int { return c.n }

// ResetWindow zeroes all measurement counters.
func (c *Chain) ResetWindow() {
	for _, e := range c.ends {
		e.ResetWindow()
	}
	for _, s := range c.wsnk {
		s.ResetWindow()
	}
}

// RatePps returns the instantaneous aggregate receive rate (both
// directions summed, matching the paper's bidirectional throughput axis).
func (c *Chain) RatePps() float64 {
	var total float64
	for _, e := range c.ends {
		total += e.RatePps()
	}
	for _, s := range c.wsnk {
		total += s.RatePps()
	}
	return total
}

// MeasureMpps runs a fresh measurement window of the given duration and
// returns the aggregate throughput in Mpps.
func (c *Chain) MeasureMpps(window time.Duration) float64 {
	c.ResetWindow()
	time.Sleep(window)
	return c.RatePps() / 1e6
}

// LatencyQuantile returns the q-quantile of one-way latency across both
// directions. Only meaningful for chains deployed with Timestamp: true.
func (c *Chain) LatencyQuantile(q float64) time.Duration {
	var worst time.Duration
	for _, e := range c.ends {
		if v := e.Lat.Quantile(q); v > worst {
			worst = v
		}
	}
	return worst
}

// LatencyMean returns the mean one-way latency across both directions.
func (c *Chain) LatencyMean() time.Duration {
	var sum time.Duration
	var n int
	for _, e := range c.ends {
		if e.Lat.Count() > 0 {
			sum += e.Lat.Mean()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// LatencySamples returns the number of recorded latency samples.
func (c *Chain) LatencySamples() uint64 {
	var total uint64
	for _, e := range c.ends {
		total += e.Lat.Count()
	}
	return total
}

// ExpectedBypasses returns the number of directed bypass links a highway
// node should establish for this chain: every VM↔VM hop in both directions.
// NIC↔VM hops cannot bypass.
func (c *Chain) ExpectedBypasses() int {
	if len(c.gens) > 0 { // NIC chain: n VMs ⇒ n-1 VM↔VM hops
		if c.n < 2 {
			return 0
		}
		return 2 * (c.n - 1)
	}
	// memory-only: n forwarders + 2 endpoint VMs ⇒ n+1 hops
	return 2 * (c.n + 1)
}
