package highway

import (
	"testing"
	"time"
)

func startCluster(t *testing.T, mode Mode) *Cluster {
	t.Helper()
	c, err := StartCluster(ClusterConfig{
		Config:    Config{Mode: mode},
		Nodes:     []string{"node-a", "node-b"},
		TrunkRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestSplitChainPublicAPIBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeHighway} {
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, mode)
			chain, err := c.DeploySplitChain(3, nil, ChainOptions{Flows: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer chain.Stop()

			// 5 chain VMs over 2 nodes ⇒ segments 3+2 ⇒ 3 intra-node hops.
			if got := chain.ExpectedBypasses(); got != 6 {
				t.Fatalf("ExpectedBypasses = %d, want 6", got)
			}
			if mode == ModeHighway {
				if !c.WaitBypasses(chain.ExpectedBypasses()) {
					t.Fatalf("bypasses = %d, want %d", c.BypassCount(), chain.ExpectedBypasses())
				}
				if c.NodeBypassCount("node-a") != 4 || c.NodeBypassCount("node-b") != 2 {
					t.Fatalf("per-node bypasses = %d/%d, want 4/2",
						c.NodeBypassCount("node-a"), c.NodeBypassCount("node-b"))
				}
			} else if c.BypassCount() != 0 {
				t.Fatal("vanilla cluster created bypasses")
			}
			// Poll for delivery instead of asserting on a timed window: under
			// race-detector slowdown a fixed window can measure zero.
			chain.ResetWindow()
			deadline := time.Now().Add(5 * time.Second)
			delivered := func() bool {
				for _, name := range []string{"end0", "end1"} {
					if chain.dep.inner.SrcSink(name).Received.Load() < 1000 {
						return false
					}
				}
				return true
			}
			for !delivered() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if !delivered() {
				t.Fatalf("split chain moved no traffic (end0=%d end1=%d received)",
					chain.dep.inner.SrcSink("end0").Received.Load(),
					chain.dep.inner.SrcSink("end1").Received.Load())
			}
		})
	}
}

func TestSplitChainHighwayNotSlowerThanVanilla(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative throughput needs a real measurement window")
	}
	measure := func(mode Mode) float64 {
		c := startCluster(t, mode)
		defer c.Stop()
		chain, err := c.DeploySplitChain(3, nil, ChainOptions{Flows: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer chain.Stop()
		if mode == ModeHighway && !c.WaitBypasses(chain.ExpectedBypasses()) {
			t.Fatalf("bypasses = %d, want %d", c.BypassCount(), chain.ExpectedBypasses())
		}
		time.Sleep(200 * time.Millisecond)
		return chain.MeasureMpps(500 * time.Millisecond)
	}
	vanilla := measure(ModeVanilla)
	hw := measure(ModeHighway)
	t.Logf("split chain: vanilla %.3f Mpps, highway %.3f Mpps", vanilla, hw)
	if hw < vanilla {
		t.Fatalf("highway (%.3f Mpps) slower than vanilla (%.3f Mpps) on the split chain", hw, vanilla)
	}
}

func TestClusterNoBufferLeakAcrossDeployments(t *testing.T) {
	c := startCluster(t, ModeHighway)
	for i := 0; i < 3; i++ {
		chain, err := c.DeploySplitChain(2, nil, ChainOptions{})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		c.WaitBypasses(chain.ExpectedBypasses())
		time.Sleep(20 * time.Millisecond)
		chain.Stop()
		for _, name := range c.NodeNames() {
			pool := c.Internal().Node(name).Pool
			if pool.Avail() != pool.Cap() {
				t.Fatalf("cycle %d: node %s pool leaked %d buffers",
					i, name, pool.Cap()-pool.Avail())
			}
		}
	}
}
