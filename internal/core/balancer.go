package core

import (
	"sync"
	"sync/atomic"
	"time"

	"ovshighway/internal/vswitch"
)

// BalancerConfig parametrizes a Balancer. Zero values take defaults.
type BalancerConfig struct {
	// Interval is the sampling period: each tick takes one load sample and,
	// if the spread is past threshold, performs one rebalance step. Default
	// 100ms (OVS's pmd-auto-lb rebalances on the same sampled-window
	// principle, just over longer windows).
	Interval time.Duration
	// SpreadThreshold is the max(busy)−min(busy) per-PMD busy-fraction gap
	// that triggers a rebalance. Default 0.2 — the acceptance bound: loads
	// inside the bound are "balanced" and moving queues would only churn
	// caches for nothing.
	SpreadThreshold float64
	// MinBusy is the minimum busy fraction of the hottest PMD for a
	// rebalance to be worth it: an idle datapath always has "infinite"
	// relative spread but nothing to gain from moving queues. Default 0.02.
	MinBusy float64
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (c *BalancerConfig) fill() {
	if c.Interval == 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.SpreadThreshold == 0 {
		c.SpreadThreshold = 0.2
	}
	if c.MinBusy == 0 {
		c.MinBusy = 0.02
	}
}

// BalancerStats are the balancer's lifetime counters (diagnostic).
type BalancerStats struct {
	// Samples is the number of completed sampling windows.
	Samples uint64
	// Rebalances is the number of windows that triggered at least one move.
	Rebalances uint64
	// Moves is the total number of queue re-homings performed.
	Moves uint64
}

// Balancer is the datapath auto-balancer: the revival of the core package's
// "watch the switch, react at run time" pattern pointed at load instead of
// rules. It samples every PMD's busy fraction over its interval (windowed
// via PMDLoad.Delta, so only the last interval counts), and when the
// hottest-to-coldest gap exceeds the threshold it re-homes the cheapest
// queues off the hottest PMD onto the coldest one using the switch's
// quiesce-then-move protocol — per-flow ordering is never at risk, and the
// moved flows simply warm the destination PMD's caches (generation checks
// keep any stale entry from serving).
type Balancer struct {
	sw  *vswitch.Switch
	cfg BalancerConfig

	prevPMDs   []vswitch.PMDLoad
	prevQueues []vswitch.QueueLoad

	samples    atomic.Uint64
	rebalances atomic.Uint64
	moves      atomic.Uint64

	running  atomic.Bool
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewBalancer builds a balancer over sw. Call Run (usually in a goroutine)
// to start sampling, or drive it deterministically with RebalanceOnce.
func NewBalancer(sw *vswitch.Switch, cfg BalancerConfig) *Balancer {
	cfg.fill()
	return &Balancer{
		sw:   sw,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Run samples until Stop. Intended as a goroutine; at most one Run per
// balancer.
func (b *Balancer) Run() {
	b.running.Store(true)
	defer close(b.done)
	t := time.NewTicker(b.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.RebalanceOnce()
		}
	}
}

// Stop halts Run and waits for it. Safe to call multiple times and on a
// balancer that was never Run (the caller must have ordered Run before Stop
// if it started one).
func (b *Balancer) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	if b.running.Load() {
		<-b.done
	}
}

// Stats returns the lifetime counters.
func (b *Balancer) Stats() BalancerStats {
	return BalancerStats{
		Samples:    b.samples.Load(),
		Rebalances: b.rebalances.Load(),
		Moves:      b.moves.Load(),
	}
}

// RebalanceOnce closes one sampling window and performs at most one
// rebalance step (a small batch of moves hot→cold). It returns the number
// of queues moved. The first call only primes the window. Exported so tests
// and experiments can drive convergence deterministically without the
// ticker.
func (b *Balancer) RebalanceOnce() int {
	pmds := b.sw.PMDLoads()
	queues := b.sw.QueueLoads()
	prevP, prevQ := b.prevPMDs, b.prevQueues
	b.prevPMDs, b.prevQueues = pmds, queues
	if prevP == nil || len(pmds) < 2 {
		return 0
	}
	b.samples.Add(1)

	// Windowed busy fractions for this interval.
	frac := make([]float64, len(pmds))
	var hot, cold int
	for i, l := range pmds {
		if i < len(prevP) {
			l = l.Delta(prevP[i])
		}
		frac[i] = l.BusyFraction()
		if frac[i] > frac[hot] {
			hot = i
		}
		if frac[i] < frac[cold] {
			cold = i
		}
	}
	gap := frac[hot] - frac[cold]
	if gap < b.cfg.SpreadThreshold || frac[hot] < b.cfg.MinBusy {
		return 0
	}

	// Candidate queues: everything homed on the hot PMD, with this window's
	// busy time as cost. The hot PMD must keep at least one queue.
	type cand struct {
		port uint32
		qid  int
		busy uint64
	}
	prevQBy := make(map[[2]uint64]uint64, len(prevQ))
	for _, l := range prevQ {
		prevQBy[[2]uint64{uint64(l.Port), uint64(l.Queue)}] = l.BusyNanos
	}
	var cands []cand
	var hotTotal uint64
	for _, l := range queues {
		if l.PMD != hot {
			continue
		}
		busy := l.BusyNanos
		if p, ok := prevQBy[[2]uint64{uint64(l.Port), uint64(l.Queue)}]; ok && busy >= p {
			busy -= p
		}
		cands = append(cands, cand{port: l.Port, qid: l.Queue, busy: busy})
		hotTotal += busy
	}
	if len(cands) < 2 {
		return 0 // a single hot queue cannot be split; moving it just swaps roles
	}

	// Cheapest-first moves, stopping once roughly half the gap's worth of
	// busy time has been re-homed: moving more would overshoot and oscillate.
	// Window total nanos approximates the hot PMD's measured wall time.
	var hotWindow uint64
	if hot < len(prevP) {
		hotWindow = pmds[hot].Delta(prevP[hot]).TotalNanos
	} else {
		hotWindow = pmds[hot].TotalNanos
	}
	gapNanos := uint64(gap / 2 * float64(hotWindow))
	// Sort ascending by busy (insertion sort: candidate lists are tiny).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].busy < cands[j-1].busy; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	maxMoves := len(cands) / 2
	if maxMoves < 1 {
		maxMoves = 1
	}
	moved := 0
	var movedBusy uint64
	for _, c := range cands {
		if moved >= maxMoves {
			break
		}
		if moved > 0 && movedBusy >= gapNanos {
			break
		}
		if err := b.sw.MoveQueue(c.port, c.qid, cold); err != nil {
			if b.cfg.Logf != nil {
				b.cfg.Logf("balancer: move port %d q %d → pmd %d: %v", c.port, c.qid, cold, err)
			}
			continue
		}
		moved++
		movedBusy += c.busy
	}
	if moved > 0 {
		b.rebalances.Add(1)
		b.moves.Add(uint64(moved))
		if b.cfg.Logf != nil {
			b.cfg.Logf("balancer: moved %d queue(s) pmd %d → pmd %d (gap %.2f)", moved, hot, cold, gap)
		}
	}
	return moved
}
