package core_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ovshighway/internal/core"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vswitch"
)

// TestBalancerConvergence skews every RX queue of a hot multi-queue port
// onto PMD 0 and asserts the balancer spreads the load back out: within a
// bounded number of samples the per-PMD busy-fraction spread must drop under
// the 20% threshold, and it must do so by actually moving queues.
func TestBalancerConvergence(t *testing.T) {
	const queues = 4
	sw := vswitch.New(vswitch.Config{NumPMDs: 2})
	pool := mempool.MustNew(mempool.Config{Capacity: 2048, BufSize: 2048})
	portGen, pmdGen, err := dpdkr.NewPortMQ(1, "gen", 1024, queues)
	if err != nil {
		t.Fatal(err)
	}
	portSink, pmdSink, err := dpdkr.NewPort(2, "sink", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(portGen); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(portSink); err != nil {
		t.Fatal(err)
	}
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	if err := sw.Start(); err != nil {
		t.Fatal(err)
	}
	defer sw.Stop()

	// The deliberate skew: every queue on PMD 0, PMD 1 idle.
	for q := 0; q < queues; q++ {
		if err := sw.MoveQueue(1, q, 0); err != nil {
			t.Fatal(err)
		}
	}

	raw := make([]byte, 256)
	frameLen, err := pkt.BuildUDP(raw, pkt.UDPSpec{
		SrcMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x02},
		SrcIP:  pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000,
		FrameLen: pkt.MinFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	const srcPortOff = pkt.EthernetLen + pkt.IPv4MinLen
	raw[srcPortOff+6] = 0 // zero UDP checksum; src port is rewritten per frame
	raw[srcPortOff+7] = 0

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]*mempool.Buf, 64)
		for !stop.Load() {
			n := pmdSink.Rx(out)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			mempool.FreeBatch(out[:n])
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		bufs := make([]*mempool.Buf, 32)
		seq := 0
		for !stop.Load() {
			got := pool.GetBatch(bufs)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < got; i++ {
				b := bufs[i]
				b.SetBytes(raw[:frameLen])
				fp := uint16(5000 + seq%32) // 32 flows spread over the queues
				seq++
				fb := b.Bytes()
				fb[srcPortOff] = byte(fp >> 8)
				fb[srcPortOff+1] = byte(fp)
			}
			sent := pmdGen.Tx(bufs[:got])
			if sent < got {
				mempool.FreeBatch(bufs[sent:got])
				runtime.Gosched()
			}
		}
	}()

	// Let the skewed state establish, then drive sampling windows by hand.
	time.Sleep(200 * time.Millisecond)
	bal := core.NewBalancer(sw, core.BalancerConfig{})

	spread := func() float64 {
		pre := sw.PMDLoads()
		time.Sleep(150 * time.Millisecond)
		post := sw.PMDLoads()
		lo, hi := 1.0, 0.0
		for i, l := range post {
			f := l.Delta(pre[i]).BusyFraction()
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		return hi - lo
	}
	before := spread()
	if before < 0.2 {
		t.Skipf("skewed spread only %.2f on this host; cannot demonstrate convergence", before)
	}

	const maxSamples = 15
	converged := false
	for i := 0; i < maxSamples; i++ {
		time.Sleep(150 * time.Millisecond)
		bal.RebalanceOnce()
		if bal.Stats().Moves > 0 && spread() < 0.2 {
			converged = true
			break
		}
	}
	st := bal.Stats()
	if st.Moves == 0 {
		t.Fatalf("balancer never moved a queue (samples %d, spread before %.2f)", st.Samples, before)
	}
	if !converged {
		t.Fatalf("spread did not converge under 0.2 within %d samples (before %.2f, moves %d)",
			maxSamples, before, st.Moves)
	}
}
