package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/shm"
	"ovshighway/internal/vswitch"
)

// miniPlumber is a minimal in-process agent: it resolves segments in the
// registry and attaches/detaches the links to the right PMDs directly. The
// full agent (internal/agent) does the same through VM device tables and the
// virtio-serial protocol; this fake keeps core tests focused on lifecycle
// logic.
type miniPlumber struct {
	reg  *shm.Registry
	pmds map[uint32]*dpdkr.PMD

	mu      sync.Mutex
	plugged map[string]map[uint32]*shm.Segment // segment → port → ref
	calls   []string
	failOn  string // method name that should fail (failure injection)
}

func newMiniPlumber(reg *shm.Registry) *miniPlumber {
	return &miniPlumber{
		reg:     reg,
		pmds:    make(map[uint32]*dpdkr.PMD),
		plugged: make(map[string]map[uint32]*shm.Segment),
	}
}

func (p *miniPlumber) record(op string, port uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls = append(p.calls, fmt.Sprintf("%s:%d", op, port))
	if p.failOn == op {
		return errors.New("injected failure: " + op)
	}
	return nil
}

func (p *miniPlumber) link(seg string) (*dpdkr.Link, error) {
	s, err := p.reg.Attach(seg)
	if err != nil {
		return nil, err
	}
	defer p.reg.Detach(s) // we only needed a peek; Plug holds the real ref
	l, ok := s.Obj.(*dpdkr.Link)
	if !ok {
		return nil, errors.New("segment is not a bypass link")
	}
	return l, nil
}

func (p *miniPlumber) Plug(port uint32, segment string) error {
	if err := p.record("plug", port); err != nil {
		return err
	}
	s, err := p.reg.Attach(segment)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.plugged[segment] == nil {
		p.plugged[segment] = make(map[uint32]*shm.Segment)
	}
	p.plugged[segment][port] = s
	p.mu.Unlock()
	return nil
}

func (p *miniPlumber) Unplug(port uint32, segment string) error {
	if err := p.record("unplug", port); err != nil {
		return err
	}
	p.mu.Lock()
	s := p.plugged[segment][port]
	delete(p.plugged[segment], port)
	p.mu.Unlock()
	if s != nil {
		p.reg.Detach(s)
	}
	return nil
}

func (p *miniPlumber) ConfigureTx(port uint32, segment string) error {
	if err := p.record("cfg-tx", port); err != nil {
		return err
	}
	l, err := p.link(segment)
	if err != nil {
		return err
	}
	p.pmds[port].AttachTxBypass(l)
	return nil
}

func (p *miniPlumber) ConfigureRx(port uint32, segment string) error {
	if err := p.record("cfg-rx", port); err != nil {
		return err
	}
	l, err := p.link(segment)
	if err != nil {
		return err
	}
	p.pmds[port].AttachRxBypass(l)
	return nil
}

func (p *miniPlumber) RemoveTx(port uint32) error {
	if err := p.record("rm-tx", port); err != nil {
		return err
	}
	pmd := p.pmds[port]
	pmd.DetachTxBypass()
	pmd.QuiesceTx()
	return nil
}

func (p *miniPlumber) RemoveRx(port uint32) error {
	if err := p.record("rm-rx", port); err != nil {
		return err
	}
	pmd := p.pmds[port]
	pmd.DetachRxBypass()
	pmd.QuiesceRx()
	return nil
}

type managerEnv struct {
	sw      *vswitch.Switch
	reg     *shm.Registry
	plumber *miniPlumber
	det     *Detector
	mgr     *Manager
	pmds    map[uint32]*dpdkr.PMD
	pool    *mempool.Pool

	estMu sync.Mutex
	est   []time.Duration
}

func newManagerEnv(t *testing.T, nPorts int) *managerEnv {
	t.Helper()
	env := &managerEnv{
		sw:   vswitch.New(vswitch.Config{}),
		reg:  shm.NewRegistry(),
		pool: mempool.MustNew(mempool.Config{Capacity: 1024, BufSize: 256, Headroom: 32}),
		pmds: make(map[uint32]*dpdkr.PMD),
	}
	env.plumber = newMiniPlumber(env.reg)
	var portIDs []uint32
	for i := 1; i <= nPorts; i++ {
		id := uint32(i)
		port, pmd, err := dpdkr.NewPort(id, "dpdkr", 256)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.sw.AddPort(port); err != nil {
			t.Fatal(err)
		}
		env.pmds[id] = pmd
		env.plumber.pmds[id] = pmd
		portIDs = append(portIDs, id)
	}
	env.det = NewDetector(env.sw.Table(), func() []uint32 { return portIDs })
	env.mgr = NewManager(env.sw, env.reg, env.plumber, env.det, ManagerConfig{
		RingSize:     256,
		DrainTimeout: 50 * time.Millisecond,
		OnEstablished: func(from, to uint32, d time.Duration) {
			env.estMu.Lock()
			env.est = append(env.est, d)
			env.estMu.Unlock()
		},
	})
	go env.mgr.Run()
	t.Cleanup(env.mgr.Stop)
	return env
}

func (e *managerEnv) waitActive(t *testing.T, from, to uint32, want bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.mgr.IsActive(from, to) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("bypass %d→%d active=%v never reached", from, to, want)
}

func TestManagerEstablishesOnP2PRule(t *testing.T) {
	env := newManagerEnv(t, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.waitActive(t, 1, 2, true)

	// PMDs must actually be wired to the same link.
	if env.pmds[1].TxBypassLink() == nil || env.pmds[2].RxBypassLink() == nil {
		t.Fatal("PMDs not configured")
	}
	if env.pmds[1].TxBypassLink() != env.pmds[2].RxBypassLink() {
		t.Fatal("PMDs wired to different links")
	}
	if env.sw.BypassLinkCount() != 1 {
		t.Fatal("link not registered for stats")
	}
	if env.reg.Len() != 1 {
		t.Fatalf("registry segments = %d", env.reg.Len())
	}
	env.estMu.Lock()
	defer env.estMu.Unlock()
	if len(env.est) != 1 || env.est[0] <= 0 {
		t.Fatalf("setup latency not observed: %v", env.est)
	}
}

func TestManagerTearsDownOnRuleDelete(t *testing.T) {
	env := newManagerEnv(t, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.waitActive(t, 1, 2, true)

	env.sw.Table().DeleteStrict(10, flow.MatchInPort(1))
	env.waitActive(t, 1, 2, false)

	if env.pmds[1].TxBypassLink() != nil || env.pmds[2].RxBypassLink() != nil {
		t.Fatal("PMDs still wired after teardown")
	}
	if env.sw.BypassLinkCount() != 0 {
		t.Fatal("stats registration leaked")
	}
	if env.reg.Len() != 0 {
		t.Fatalf("segment leaked: %v", env.reg.Names())
	}
}

func TestManagerTearsDownWhenRuleRefined(t *testing.T) {
	env := newManagerEnv(t, 3)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.waitActive(t, 1, 2, true)

	// A higher-priority rule steering part of port 1's traffic elsewhere
	// breaks the p-2-p property: the bypass must dissolve.
	env.sw.Table().Add(100, flow.MatchInPort(1).WithL4Dst(80), flow.Actions{flow.Output(3)}, 0)
	env.waitActive(t, 1, 2, false)
	if env.pmds[1].TxBypassLink() != nil {
		t.Fatal("TX bypass survives divergent rule")
	}
}

func TestManagerRetargetsLink(t *testing.T) {
	env := newManagerEnv(t, 3)
	tb := env.sw.Table()
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.waitActive(t, 1, 2, true)

	// Retarget port 1's traffic to port 3: old link must go, new must come.
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}, 0)
	env.waitActive(t, 1, 2, false)
	env.waitActive(t, 1, 3, true)
	if env.reg.Len() != 1 {
		t.Fatalf("segments = %v", env.reg.Names())
	}
	if env.pmds[2].RxBypassLink() != nil {
		t.Fatal("old RX peer still attached")
	}
	if got := env.pmds[1].TxBypassLink(); got == nil || got.To != 3 {
		t.Fatalf("TX link = %+v", got)
	}
}

func TestManagerBidirectionalPair(t *testing.T) {
	env := newManagerEnv(t, 2)
	tb := env.sw.Table()
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	tb.Add(10, flow.MatchInPort(2), flow.Actions{flow.Output(1)}, 0)
	env.waitActive(t, 1, 2, true)
	env.waitActive(t, 2, 1, true)
	if env.reg.Len() != 2 {
		t.Fatalf("segments = %v", env.reg.Names())
	}
	// Both directions through distinct rings.
	if env.pmds[1].TxBypassLink() == env.pmds[2].TxBypassLink() {
		t.Fatal("directions share a ring")
	}
}

func TestManagerEndToEndTrafficViaBypass(t *testing.T) {
	env := newManagerEnv(t, 2)
	if err := env.sw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.sw.Stop)
	f := env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.waitActive(t, 1, 2, true)

	// Traffic sent by VM1 must reach VM2 without the vSwitch seeing it.
	const n = 1000
	out := make([]*mempool.Buf, 32)
	sent, got := 0, 0
	for got < n {
		if sent < n {
			if b, err := env.pool.Get(); err == nil {
				b.SetBytes([]byte{1, 2, 3, 4})
				if env.pmds[1].Tx([]*mempool.Buf{b}) == 1 {
					sent++
				} else {
					b.Free()
				}
			}
		}
		k := env.pmds[2].Rx(out)
		for i := 0; i < k; i++ {
			out[i].Free()
		}
		got += k
	}

	// The switch's own counters must be zero (packets never crossed it)...
	port1 := env.sw.Port(1).(*dpdkr.Port)
	if port1.Counters.RxPackets.Load() != 0 {
		t.Fatal("packets leaked through the normal channel")
	}
	// ...but exported stats must show them (transparency).
	if v, _ := env.sw.PortStats(1); v.RxPackets != n {
		t.Fatalf("merged port1 rx = %d, want %d", v.RxPackets, n)
	}
	if p, _ := env.sw.FlowCounters(f); p != n {
		t.Fatalf("merged flow packets = %d, want %d", p, n)
	}
}

func TestManagerDrainsInFlightOnTeardown(t *testing.T) {
	env := newManagerEnv(t, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.waitActive(t, 1, 2, true)

	// Park packets in the bypass ring, then delete the rule. The consumer
	// keeps polling during the drain window, so nothing may be lost.
	const parked = 64
	for i := 0; i < parked; i++ {
		b, err := env.pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		b.SetBytes([]byte{9})
		if env.pmds[1].Tx([]*mempool.Buf{b}) != 1 {
			t.Fatal("tx failed")
		}
	}
	done := make(chan int, 1)
	go func() {
		out := make([]*mempool.Buf, 16)
		got := 0
		deadline := time.Now().Add(2 * time.Second)
		for got < parked && time.Now().Before(deadline) {
			k := env.pmds[2].Rx(out)
			for i := 0; i < k; i++ {
				out[i].Free()
			}
			got += k
		}
		done <- got
	}()
	env.sw.Table().DeleteStrict(10, flow.MatchInPort(1))
	env.waitActive(t, 1, 2, false)
	if got := <-done; got != parked {
		t.Fatalf("drained %d of %d parked packets", got, parked)
	}
}

func TestManagerRollbackOnPlugFailure(t *testing.T) {
	env := newManagerEnv(t, 2)
	env.plumber.failOn = "plug"
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)

	time.Sleep(50 * time.Millisecond)
	if env.mgr.IsActive(1, 2) {
		t.Fatal("bypass active despite plug failure")
	}
	if env.reg.Len() != 0 {
		t.Fatalf("segment leaked after rollback: %v", env.reg.Names())
	}
	if env.sw.BypassLinkCount() != 0 {
		t.Fatal("stats registration leaked after rollback")
	}
}

func TestManagerRollbackOnConfigureFailure(t *testing.T) {
	env := newManagerEnv(t, 2)
	env.plumber.failOn = "cfg-tx"
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)

	time.Sleep(50 * time.Millisecond)
	if env.mgr.IsActive(1, 2) {
		t.Fatal("bypass active despite configure failure")
	}
	if env.reg.Len() != 0 {
		t.Fatalf("segment leaked: %v", env.reg.Names())
	}
	if env.pmds[2].RxBypassLink() != nil {
		t.Fatal("RX left attached after TX configure failed")
	}
}

func TestManagerStopTearsDownEverything(t *testing.T) {
	env := newManagerEnv(t, 2)
	tb := env.sw.Table()
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	tb.Add(10, flow.MatchInPort(2), flow.Actions{flow.Output(1)}, 0)
	env.waitActive(t, 1, 2, true)
	env.waitActive(t, 2, 1, true)

	env.mgr.Stop()
	if env.reg.Len() != 0 {
		t.Fatalf("segments after stop: %v", env.reg.Names())
	}
	if env.pmds[1].TxBypassLink() != nil || env.pmds[2].TxBypassLink() != nil {
		t.Fatal("PMDs wired after stop")
	}
}

func TestManagerFlowModStorm(t *testing.T) {
	env := newManagerEnv(t, 4)
	tb := env.sw.Table()
	// Rapidly alternate targets; the manager must settle on the final state
	// with no leaked segments or registrations.
	for i := 0; i < 100; i++ {
		dst := uint32(2 + i%3)
		tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(dst)}, 0)
	}
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}, 0)
	env.waitActive(t, 1, 3, true)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if env.reg.Len() == 1 && env.sw.BypassLinkCount() == 1 &&
			!env.mgr.IsActive(1, 2) && !env.mgr.IsActive(1, 4) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if env.reg.Len() != 1 {
		t.Fatalf("segments = %v", env.reg.Names())
	}
	if got := env.pmds[1].TxBypassLink(); got == nil || got.To != 3 {
		t.Fatalf("final TX link = %+v", got)
	}
}
