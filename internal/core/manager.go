package core

import (
	"fmt"
	"sync"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/shm"
	"ovshighway/internal/vswitch"
)

// Plumber is the interface to the (modified) compute agent: the external
// component OVS must rely on because it knows which VM owns which port. Its
// methods mirror the paper's two agent duties — (i) plug the bypass channel
// into the VM as an ivshmem device, (ii) configure the PMD instance over the
// virtio-serial control channel — plus their inverses.
type Plumber interface {
	// Plug makes the named shm segment reachable inside the VM owning port.
	Plug(port uint32, segment string) error
	// Unplug removes the segment from that VM's device table.
	Unplug(port uint32, segment string) error
	// ConfigureTx points the PMD's transmit side at the plugged segment.
	ConfigureTx(port uint32, segment string) error
	// ConfigureRx adds the plugged segment to the PMD's receive poll set.
	ConfigureRx(port uint32, segment string) error
	// RemoveTx reverts the PMD's transmit side to the normal channel.
	RemoveTx(port uint32) error
	// RemoveRx removes the bypass from the PMD's receive poll set.
	RemoveRx(port uint32) error
}

// ManagerConfig parametrizes a Manager. Zero values take defaults.
type ManagerConfig struct {
	// RingSize is the bypass ring capacity. Default dpdkr.DefaultRingSize.
	RingSize int
	// DrainTimeout bounds the wait for in-flight bypass packets during
	// teardown. Default 100ms.
	DrainTimeout time.Duration
	// OnEstablished, if set, observes every completed establishment with its
	// end-to-end setup latency (flow-mod analysis to PMD switched). This is
	// the instrumentation behind experiment E4.
	OnEstablished func(from, to uint32, setup time.Duration)
	// OnTornDown, if set, observes completed teardowns.
	OnTornDown func(from, to uint32)
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

type pairKey struct{ from, to uint32 }

type activeLink struct {
	link *dpdkr.Link
	seg  *shm.Segment
	l    Link
}

// Manager consumes detector signals and drives bypass channels through
// their lifecycle:
//
//	Idle → Plumbing → Active → Draining → Idle
//
// All transitions run on the manager goroutine, so flow-mod storms serialize
// naturally and a pair can never be double-plumbed.
type Manager struct {
	sw       *vswitch.Switch
	reg      *shm.Registry
	plumber  Plumber
	detector *Detector
	cfg      ManagerConfig

	mu     sync.Mutex
	active map[pairKey]*activeLink

	stop chan struct{}
	done chan struct{}
}

// NewManager wires the manager. Call Run (usually in a goroutine) to start
// processing.
func NewManager(sw *vswitch.Switch, reg *shm.Registry, plumber Plumber, det *Detector, cfg ManagerConfig) *Manager {
	if cfg.RingSize == 0 {
		cfg.RingSize = dpdkr.DefaultRingSize
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 100 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Manager{
		sw:       sw,
		reg:      reg,
		plumber:  plumber,
		detector: det,
		cfg:      cfg,
		active:   make(map[pairKey]*activeLink),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Run processes detector notifications until Stop. It performs one initial
// rescan so links implied by pre-existing rules are established.
func (m *Manager) Run() {
	defer close(m.done)
	m.rescan()
	for {
		select {
		case <-m.stop:
			return
		case <-m.detector.Notify():
			m.rescan()
		}
	}
}

// Stop halts the event loop and tears down every active bypass.
func (m *Manager) Stop() {
	select {
	case <-m.stop:
		return
	default:
		close(m.stop)
	}
	<-m.done
	m.mu.Lock()
	keys := make([]pairKey, 0, len(m.active))
	for k := range m.active {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	for _, k := range keys {
		m.teardown(k)
	}
}

// ActiveLinks returns the directed pairs currently bypassed (diagnostic).
func (m *Manager) ActiveLinks() [][2]uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][2]uint32, 0, len(m.active))
	for k := range m.active {
		out = append(out, [2]uint32{k.from, k.to})
	}
	return out
}

// IsActive reports whether a directed bypass exists for from→to.
func (m *Manager) IsActive(from, to uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.active[pairKey{from, to}]
	return ok
}

// rescan diffs the detector's desired link set against the active set and
// applies teardowns before establishments (a flow-mod that retargets A from
// B to C must never leave both channels attached).
func (m *Manager) rescan() {
	desired := make(map[pairKey]Link)
	for _, l := range m.detector.Scan() {
		desired[pairKey{l.From, l.To}] = l
	}

	m.mu.Lock()
	var drop []pairKey
	for k, al := range m.active {
		want, ok := desired[k]
		if !ok || want.Flow != al.l.Flow {
			// Gone, or the implementing rule was replaced (counters reset on
			// replacement, so the link must be re-plumbed against the new
			// flow object).
			drop = append(drop, k)
		}
	}
	var add []Link
	for k, l := range desired {
		if _, ok := m.active[k]; !ok {
			add = append(add, l)
		}
	}
	m.mu.Unlock()

	for _, k := range drop {
		m.teardown(k)
	}
	// A dropped pair may be re-added with a new flow object.
	m.mu.Lock()
	add = add[:0]
	for k, l := range desired {
		if _, ok := m.active[k]; !ok {
			add = append(add, l)
		}
	}
	m.mu.Unlock()
	for _, l := range add {
		m.establish(l)
	}
}

func (m *Manager) establish(l Link) {
	start := time.Now()
	k := pairKey{l.From, l.To}
	name := fmt.Sprintf("bypass-%d-%d", l.From, l.To)

	link, err := dpdkr.NewLink(name, l.From, l.To, m.cfg.RingSize)
	if err != nil {
		m.cfg.Logf("core: establish %s: %v", name, err)
		return
	}
	seg, err := m.reg.Create(name, link)
	if err != nil {
		m.cfg.Logf("core: establish %s: %v", name, err)
		return
	}

	rollback := func(steps ...func()) {
		for i := len(steps) - 1; i >= 0; i-- {
			steps[i]()
		}
		m.reg.Detach(seg)
	}

	// (i) plug the segment into both VMs, receiver first.
	if err := m.plumber.Plug(l.To, name); err != nil {
		m.cfg.Logf("core: plug rx %s: %v", name, err)
		rollback()
		return
	}
	if err := m.plumber.Plug(l.From, name); err != nil {
		m.cfg.Logf("core: plug tx %s: %v", name, err)
		rollback(func() { m.plumber.Unplug(l.To, name) })
		return
	}
	// (ii) configure the PMDs: RX before TX so no packet enters the ring
	// without a consumer attached.
	if err := m.plumber.ConfigureRx(l.To, name); err != nil {
		m.cfg.Logf("core: configure rx %s: %v", name, err)
		rollback(
			func() { m.plumber.Unplug(l.To, name) },
			func() { m.plumber.Unplug(l.From, name) },
		)
		return
	}
	if err := m.plumber.ConfigureTx(l.From, name); err != nil {
		m.cfg.Logf("core: configure tx %s: %v", name, err)
		rollback(
			func() { m.plumber.Unplug(l.To, name) },
			func() { m.plumber.Unplug(l.From, name) },
			func() { m.plumber.RemoveRx(l.To) },
		)
		return
	}

	m.sw.RegisterBypass(link, l.Flow)
	m.mu.Lock()
	m.active[k] = &activeLink{link: link, seg: seg, l: l}
	m.mu.Unlock()

	setup := time.Since(start)
	m.cfg.Logf("core: bypass %d→%d active in %v", l.From, l.To, setup)
	if m.cfg.OnEstablished != nil {
		m.cfg.OnEstablished(l.From, l.To, setup)
	}
}

func (m *Manager) teardown(k pairKey) {
	m.mu.Lock()
	al, ok := m.active[k]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(m.active, k)
	m.mu.Unlock()

	name := al.link.Name
	// Stop the producer first: new traffic reverts to the normal channel.
	if err := m.plumber.RemoveTx(k.from); err != nil {
		m.cfg.Logf("core: remove tx %s: %v", name, err)
	}
	// Let the consumer drain in-flight packets.
	deadline := time.Now().Add(m.cfg.DrainTimeout)
	for al.link.Ring.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	if err := m.plumber.RemoveRx(k.to); err != nil {
		m.cfg.Logf("core: remove rx %s: %v", name, err)
	}
	// Fold the final counters into the switch's view, then release memory.
	m.sw.UnregisterBypass(al.link)
	if err := m.plumber.Unplug(k.from, name); err != nil {
		m.cfg.Logf("core: unplug tx %s: %v", name, err)
	}
	if err := m.plumber.Unplug(k.to, name); err != nil {
		m.cfg.Logf("core: unplug rx %s: %v", name, err)
	}
	if leaked := al.link.Drain(); leaked > 0 {
		m.cfg.Logf("core: %s: %d packets freed at teardown", name, leaked)
	}
	m.reg.Detach(al.seg)
	m.cfg.Logf("core: bypass %d→%d torn down", k.from, k.to)
	if m.cfg.OnTornDown != nil {
		m.cfg.OnTornDown(k.from, k.to)
	}
}
