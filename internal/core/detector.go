// Package core implements the paper's primary contribution: the p-2-p link
// detector that analyses OpenFlow steering rules at run time, and the bypass
// lifecycle manager that — through the compute agent — plumbs direct
// VM-to-VM channels when a point-to-point pattern appears and tears them
// down when it disappears.
package core

import (
	"ovshighway/internal/flow"
)

// Link is a directed p-2-p steering relationship derived from the flow
// table: every packet entering on From is forwarded, by the rules alone, to
// To and nowhere else.
type Link struct {
	From, To uint32
	// Flow is the catch-all rule (match = in_port only, or fully wildcarded)
	// that guarantees total coverage of From's traffic. Bypass statistics
	// are attributed to it.
	Flow *flow.Flow
}

// isCatchAllFor reports whether m covers every possible packet arriving on
// port: either the match constrains nothing at all, or it constrains only
// the ingress port and pins it to port.
func isCatchAllFor(m flow.Match, port uint32) bool {
	if m.MatchesOnlyInPort() {
		return m.Key.InPort == port
	}
	var zero flow.Packed
	return m.Mask.Pack() == zero
}

// ComputeLinks derives the set of directed p-2-p links implied by the given
// rule set over the given candidate ports.
//
// The analysis is deliberately conservative (sound, not complete): port A is
// linked to B only when
//
//  1. every flow that could admit packets from A (in_port = A or in_port
//     wildcarded) has action list exactly [output:B], and
//  2. at least one such flow is a catch-all for A, so coverage is total and
//     no table-miss behaviour can diverge, and
//  3. B != A (no hairpin), and
//  4. B is itself a candidate port (both ends of a bypass must be dpdkr
//     ports backed by VMs; a NIC cannot host the peer ring).
//
// Any rule set for which some packet from A could be dropped, punted,
// rewritten, multicast, or steered elsewhere yields no link — exactly the
// situations where the vSwitch's involvement is semantically required.
// Priority shadowing is intentionally ignored: a shadowed divergent rule
// disables the bypass even though it would never fire. That only costs
// performance, never correctness, and matches the paper's per-flowmod
// incremental analysis.
func ComputeLinks(flows []*flow.Flow, ports []uint32) []Link {
	candidate := make(map[uint32]bool, len(ports))
	for _, p := range ports {
		candidate[p] = true
	}
	var out []Link
	for _, a := range ports {
		var (
			target    uint32
			haveT     bool
			catchAll  *flow.Flow
			disqually bool
		)
		for _, f := range flows {
			if !f.Match.AdmitsInPort(a) {
				continue
			}
			dst, ok := f.Actions.SoleOutput()
			if !ok {
				disqually = true
				break
			}
			if haveT && dst != target {
				disqually = true
				break
			}
			target, haveT = dst, true
			if catchAll == nil && isCatchAllFor(f.Match, a) {
				catchAll = f
			}
		}
		if disqually || !haveT || catchAll == nil || target == a || !candidate[target] {
			continue
		}
		out = append(out, Link{From: a, To: target, Flow: catchAll})
	}
	return out
}

// Detector watches a flow table and recomputes the link set on demand. It
// implements flow.Listener; table mutations only set a dirty signal (the
// callback runs under the table's mutation lock), and the manager's event
// loop performs the actual rescan.
type Detector struct {
	table  *flow.Table
	ports  func() []uint32
	notify chan struct{}
}

// NewDetector attaches a detector to the table. ports lists the candidate
// dpdkr ports (NIC ports cannot host a VM-to-VM bypass and must not be
// included).
func NewDetector(table *flow.Table, ports func() []uint32) *Detector {
	d := &Detector{
		table:  table,
		ports:  ports,
		notify: make(chan struct{}, 1),
	}
	table.AddListener(d)
	return d
}

// FlowAdded implements flow.Listener.
func (d *Detector) FlowAdded(*flow.Flow) { d.poke() }

// FlowRemoved implements flow.Listener.
func (d *Detector) FlowRemoved(*flow.Flow) { d.poke() }

// Poke requests a rescan (used when the candidate port set changes).
func (d *Detector) Poke() { d.poke() }

func (d *Detector) poke() {
	select {
	case d.notify <- struct{}{}:
	default:
	}
}

// Notify returns the dirty-signal channel consumed by the manager loop.
func (d *Detector) Notify() <-chan struct{} { return d.notify }

// Scan recomputes the current link set from the live table.
func (d *Detector) Scan() []Link {
	return ComputeLinks(d.table.Snapshot(), d.ports())
}
