package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

func mkFlows(t *testing.T, specs ...struct {
	prio uint16
	m    flow.Match
	as   flow.Actions
}) (*flow.Table, []*flow.Flow) {
	t.Helper()
	tb := flow.NewTable()
	var out []*flow.Flow
	for _, s := range specs {
		out = append(out, tb.Add(s.prio, s.m, s.as, 0))
	}
	return tb, out
}

type spec = struct {
	prio uint16
	m    flow.Match
	as   flow.Actions
}

func linkSet(links []Link) map[[2]uint32]bool {
	out := make(map[[2]uint32]bool)
	for _, l := range links {
		out[[2]uint32{l.From, l.To}] = true
	}
	return out
}

func TestComputeLinksSimpleChain(t *testing.T) {
	// The canonical paper scenario: bidirectional p-2-p wiring of a chain
	// 1→2, 2→1 (VM ports for one hop).
	_, flows := mkFlows(t,
		spec{10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}},
		spec{10, flow.MatchInPort(2), flow.Actions{flow.Output(1)}},
	)
	links := ComputeLinks(flows, []uint32{1, 2})
	set := linkSet(links)
	if len(set) != 2 || !set[[2]uint32{1, 2}] || !set[[2]uint32{2, 1}] {
		t.Fatalf("links = %v", links)
	}
	// The attributed flow must be the catch-all.
	for _, l := range links {
		if !l.Flow.Match.MatchesOnlyInPort() {
			t.Errorf("link %d→%d attributed to non-catch-all %s", l.From, l.To, l.Flow)
		}
	}
}

func TestComputeLinksUnidirectional(t *testing.T) {
	_, flows := mkFlows(t,
		spec{10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}},
	)
	links := ComputeLinks(flows, []uint32{1, 2})
	set := linkSet(links)
	if len(set) != 1 || !set[[2]uint32{1, 2}] {
		t.Fatalf("links = %v", links)
	}
}

func TestComputeLinksNoCatchAllNoLink(t *testing.T) {
	// Only a refined match: coverage is partial, table misses diverge.
	_, flows := mkFlows(t,
		spec{10, flow.MatchInPort(1).WithIPProto(pkt.ProtoUDP), flow.Actions{flow.Output(2)}},
	)
	if links := ComputeLinks(flows, []uint32{1, 2}); len(links) != 0 {
		t.Fatalf("partial coverage produced links: %v", links)
	}
}

func TestComputeLinksDivergentTargetNoLink(t *testing.T) {
	// Web/non-web split from Figure 1: port 1 traffic splits to 2 and 3.
	_, flows := mkFlows(t,
		spec{100, flow.MatchInPort(1).WithIPProto(pkt.ProtoTCP).WithL4Dst(80), flow.Actions{flow.Output(2)}},
		spec{10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}},
	)
	if links := ComputeLinks(flows, []uint32{1, 2, 3}); len(links) != 0 {
		t.Fatalf("split steering produced links: %v", links)
	}
}

func TestComputeLinksNonOutputActionsDisqualify(t *testing.T) {
	for _, as := range []flow.Actions{
		{flow.Controller()},
		{flow.Drop()},
		nil,
		{flow.DecTTL(), flow.Output(2)},
		{flow.Output(2), flow.Output(3)},
		{flow.SetEthDst(pkt.MAC{1}), flow.Output(2)},
	} {
		_, flows := mkFlows(t, spec{10, flow.MatchInPort(1), as})
		if links := ComputeLinks(flows, []uint32{1, 2, 3}); len(links) != 0 {
			t.Errorf("actions %v produced links %v", as, links)
		}
	}
}

func TestComputeLinksHairpinExcluded(t *testing.T) {
	_, flows := mkFlows(t,
		spec{10, flow.MatchInPort(1), flow.Actions{flow.Output(1)}},
	)
	if links := ComputeLinks(flows, []uint32{1}); len(links) != 0 {
		t.Fatalf("hairpin produced links: %v", links)
	}
}

func TestComputeLinksWildcardInPort(t *testing.T) {
	// A single match-all rule steering everything to port 9: every other
	// candidate port gains a link to 9.
	_, flows := mkFlows(t,
		spec{1, flow.MatchAll(), flow.Actions{flow.Output(9)}},
	)
	links := ComputeLinks(flows, []uint32{1, 2, 9})
	set := linkSet(links)
	if len(set) != 2 || !set[[2]uint32{1, 9}] || !set[[2]uint32{2, 9}] {
		t.Fatalf("links = %v", links)
	}
}

func TestComputeLinksWildcardConflictsWithPerPort(t *testing.T) {
	// A wildcard rule to 9 plus a per-port rule to 2: port 1 admits both
	// targets, so no link for port 1; other ports still link to 9.
	_, flows := mkFlows(t,
		spec{1, flow.MatchAll(), flow.Actions{flow.Output(9)}},
		spec{10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}},
	)
	links := ComputeLinks(flows, []uint32{1, 3, 9})
	set := linkSet(links)
	if set[[2]uint32{1, 9}] || set[[2]uint32{1, 2}] {
		t.Fatalf("conflicted port 1 got a link: %v", links)
	}
	if !set[[2]uint32{3, 9}] {
		t.Fatalf("port 3 lost its link: %v", links)
	}
}

func TestComputeLinksRefinedSameTargetStillLinks(t *testing.T) {
	// Redundant more-specific rule with the same output keeps the link.
	_, flows := mkFlows(t,
		spec{100, flow.MatchInPort(1).WithIPProto(pkt.ProtoUDP), flow.Actions{flow.Output(2)}},
		spec{10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}},
	)
	links := ComputeLinks(flows, []uint32{1, 2})
	if len(links) != 1 || links[0].From != 1 || links[0].To != 2 {
		t.Fatalf("links = %v", links)
	}
	if !links[0].Flow.Match.MatchesOnlyInPort() {
		t.Fatal("link attributed to the refined rule, want catch-all")
	}
}

func TestComputeLinksIgnoresNonCandidatePorts(t *testing.T) {
	// Port 7 (say, a NIC) steers to 1, but 7 is not a candidate.
	_, flows := mkFlows(t,
		spec{10, flow.MatchInPort(7), flow.Actions{flow.Output(1)}},
	)
	if links := ComputeLinks(flows, []uint32{1, 2}); len(links) != 0 {
		t.Fatalf("non-candidate port linked: %v", links)
	}
}

// refWouldDiverge is the semantic soundness oracle: it samples packets from
// port `from` and checks whether the classifier ever steers one anywhere
// other than `to` (or fails to match). If the detector claims a link, no
// divergence may exist.
func refWouldDiverge(tb *flow.Table, from, to uint32, rng *rand.Rand) bool {
	for trial := 0; trial < 200; trial++ {
		k := flow.Key{
			InPort:  from,
			EthType: pkt.EtherTypeIPv4,
			IPSrc:   rng.Uint32() % 16,
			IPDst:   rng.Uint32() % 16,
			IPProto: []uint8{pkt.ProtoUDP, pkt.ProtoTCP}[rng.Intn(2)],
			L4Src:   uint16(rng.Intn(4)),
			L4Dst:   uint16(rng.Intn(4) + 80),
		}
		f := tb.Lookup(&k)
		if f == nil {
			return true // table miss: coverage hole
		}
		dst, ok := f.Actions.SoleOutput()
		if !ok || dst != to {
			return true
		}
	}
	return false
}

// TestQuickDetectorSoundness: for random rule sets, every link the detector
// reports must be semantically divergence-free under random packet sampling.
func TestQuickDetectorSoundness(t *testing.T) {
	ports := []uint32{1, 2, 3, 4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := flow.NewTable()
		n := rng.Intn(8) + 1
		for i := 0; i < n; i++ {
			var m flow.Match
			switch rng.Intn(3) {
			case 0:
				m = flow.MatchAll()
			case 1:
				m = flow.MatchInPort(ports[rng.Intn(len(ports))])
			default:
				m = flow.MatchInPort(ports[rng.Intn(len(ports))]).
					WithIPProto([]uint8{pkt.ProtoUDP, pkt.ProtoTCP}[rng.Intn(2)])
			}
			var as flow.Actions
			switch rng.Intn(4) {
			case 0, 1:
				as = flow.Actions{flow.Output(ports[rng.Intn(len(ports))])}
			case 2:
				as = flow.Actions{flow.Controller()}
			default:
				as = flow.Actions{flow.DecTTL(), flow.Output(ports[rng.Intn(len(ports))])}
			}
			tb.Add(uint16(rng.Intn(3)*10), m, as, 0)
		}
		links := ComputeLinks(tb.Snapshot(), ports)
		for _, l := range links {
			if refWouldDiverge(tb, l.From, l.To, rng) {
				t.Logf("seed %d: unsound link %d→%d", seed, l.From, l.To)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIsCatchAllFor(t *testing.T) {
	cases := []struct {
		m    flow.Match
		port uint32
		want bool
	}{
		{flow.MatchInPort(3), 3, true},
		{flow.MatchInPort(3), 4, false},
		{flow.MatchAll(), 9, true},
		{flow.MatchInPort(3).WithIPProto(pkt.ProtoUDP), 3, false},
		{flow.MatchAll().WithEthType(pkt.EtherTypeIPv4), 3, false},
		{flow.MatchAll().WithVlan(5), 1, false},
	}
	for i, c := range cases {
		if got := isCatchAllFor(c.m, c.port); got != c.want {
			t.Errorf("case %d: isCatchAllFor(%s, %d) = %v, want %v", i, c.m, c.port, got, c.want)
		}
	}
}

func TestDetectorNotifyOnMutation(t *testing.T) {
	tb := flow.NewTable()
	d := NewDetector(tb, func() []uint32 { return []uint32{1, 2} })

	select {
	case <-d.Notify():
		t.Fatal("spurious notification")
	default:
	}
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	select {
	case <-d.Notify():
	default:
		t.Fatal("no notification after add")
	}
	links := d.Scan()
	if len(links) != 1 {
		t.Fatalf("scan = %v", links)
	}
	tb.DeleteStrict(10, flow.MatchInPort(1))
	select {
	case <-d.Notify():
	default:
		t.Fatal("no notification after delete")
	}
	if links := d.Scan(); len(links) != 0 {
		t.Fatalf("scan after delete = %v", links)
	}
}
