package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ovshighway/internal/pkt"
)

// randKey draws a key from a small value domain so collisions and matches
// actually happen under quick.Check.
func randKey(rng *rand.Rand) Key {
	return Key{
		InPort:  uint32(rng.Intn(4)),
		EthType: pkt.EtherTypeIPv4,
		IPSrc:   rng.Uint32() % 8,
		IPDst:   rng.Uint32() % 8,
		IPProto: []uint8{pkt.ProtoUDP, pkt.ProtoTCP}[rng.Intn(2)],
		L4Src:   uint16(rng.Intn(4)),
		L4Dst:   uint16(rng.Intn(4)),
	}
}

func randMatch(rng *rand.Rand) Match {
	m := MatchAll()
	if rng.Intn(2) == 0 {
		m = MatchInPort(uint32(rng.Intn(4)))
	}
	if rng.Intn(3) == 0 {
		m = m.WithIPProto([]uint8{pkt.ProtoUDP, pkt.ProtoTCP}[rng.Intn(2)])
	}
	if rng.Intn(3) == 0 {
		m = m.WithL4Dst(uint16(rng.Intn(4)))
	}
	if rng.Intn(4) == 0 {
		m = m.WithIPSrc(pkt.IP4FromUint32(rng.Uint32()%8), 30+rng.Intn(3))
	}
	return m
}

// Property: packed masking is idempotent and commutes with itself.
func TestQuickPackedMaskAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := randKey(rng)
		m := randMatch(rng)
		kp := k.Pack()
		mp := m.Mask.Pack()
		masked := kp.And(mp)
		// idempotent
		if masked.And(mp) != masked {
			return false
		}
		// masking with the zero mask yields zero
		var zero Packed
		if kp.And(zero) != zero {
			return false
		}
		// masking with an all-ones mask is identity on the packed bytes
		var ones Packed
		for i := range ones {
			ones[i] = 0xff
		}
		return kp.And(ones) == kp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Covers(k) is exactly "k agrees with the match key on every
// masked bit" — cross-check against a bit-level reference.
func TestQuickCoversDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := randKey(rng)
		m := randMatch(rng)
		kp := k.Pack()
		mp := m.Mask.Pack()
		want := m.Key.Pack().And(mp) == kp.And(mp)
		return m.Covers(&k) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Match.Equal is reflexive and symmetric, and invariant under
// changes to masked-out key bits.
func TestQuickMatchEqualRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatch(rng)
		b := randMatch(rng)
		if !a.Equal(a) || !b.Equal(b) {
			return false
		}
		if a.Equal(b) != b.Equal(a) {
			return false
		}
		// Mutating a masked-out bit of a's key must not change equality.
		c := a
		if c.Mask.IPDst == 0 {
			c.Key.IPDst = rng.Uint32()
		}
		return a.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a match refined by a builder covers a subset of what the
// original covered (builders only pin additional bits).
func TestQuickBuildersMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randMatch(rng)
		refined := base.WithL4Src(uint16(rng.Intn(4)))
		for trial := 0; trial < 40; trial++ {
			k := randKey(rng)
			if refined.Covers(&k) && !base.Covers(&k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full tiered lookup (EMC → SMC → classifier, with
// death-mark and generation invalidation) always agrees with a linear-scan
// reference over the live flow list, across random add/delete/expire/rerank
// churn. "Agrees" is OpenFlow-modulo-ties: both sides must find a covering
// flow of the same (maximal) priority or both must miss, and a cache may
// never serve a dead flow. This is the oracle for the whole hierarchy: any
// invalidation bug (a stale cache serving a removed or shadowed flow) or
// ranking bug (rerank breaking the early exit) shows up as a disagreement.
func TestQuickTieredLookupOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable()
		emc := NewEMC(64) // tiny, to force evictions
		smc := NewSMC(64)
		for trial := 0; trial < 250; trial++ {
			switch rng.Intn(10) {
			case 0, 1, 2:
				// Add; sometimes with an idle timeout so expiry has victims.
				var idle uint16
				if rng.Intn(2) == 0 {
					idle = 1
				}
				tb.AddWithTimeouts(uint16(rng.Intn(4)*10), randMatch(rng),
					Actions{Output(uint32(rng.Intn(4)))}, 0, idle, 0, 0)
			case 3:
				// Delete a random live flow.
				if fs := tb.Snapshot(); len(fs) > 0 {
					v := fs[rng.Intn(len(fs))]
					tb.DeleteStrict(v.Priority, v.Match)
				}
			case 4:
				// Expire every idle-timeout flow (2s later than now ≫ 1s).
				tb.Expire(time.Now().Add(2 * time.Second))
			case 5:
				tb.Rerank()
			}

			k := randKey(rng)
			kp := k.Pack()
			h := kp.Hash()
			g := tb.Generation()

			// Tiered lookup, exactly as the PMD walks it.
			got := emc.Lookup(kp, h, g)
			if got == nil {
				got = smc.Lookup(&kp, h, g)
			}
			if got == nil {
				got = tb.LookupPacked(&kp)
				if got != nil {
					emc.Insert(kp, h, got, g)
					smc.Insert(&kp, h, got, g)
				}
			}

			// Reference: linear scan over the live flow list.
			want := refLookup(tb.Snapshot(), &k)
			switch {
			case got == nil && want == nil:
			case got == nil || want == nil:
				return false
			case got.Dead():
				return false // a cache served a removed flow
			case !got.Match.Covers(&k):
				return false
			case got.Priority != want.Priority:
				return false // stale/shadowed result (or rerank broke early exit)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: EMC lookups always agree with the classifier they were filled
// from, across random insert orders and table mutations.
func TestQuickEMCCoherence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable()
		emc := NewEMC(64) // tiny, to force evictions
		n := rng.Intn(10) + 1
		for i := 0; i < n; i++ {
			tb.Add(uint16(rng.Intn(4)*10), randMatch(rng), Actions{Output(uint32(rng.Intn(4)))}, uint64(i))
		}
		for trial := 0; trial < 100; trial++ {
			if rng.Intn(20) == 0 { // occasional mutation
				tb.Add(uint16(rng.Intn(4)*10), randMatch(rng), Actions{Output(uint32(rng.Intn(4)))}, 99)
			}
			k := randKey(rng)
			kp := k.Pack()
			h := kp.Hash()
			v := tb.Version()
			cached := emc.Lookup(kp, h, v)
			truth := tb.Lookup(&k)
			if cached != nil && cached != truth {
				return false // stale or wrong entry served
			}
			if cached == nil && truth != nil {
				emc.Insert(kp, h, truth, v)
				// Immediately re-reading must hit unless the version moved.
				if tb.Version() == v && emc.Lookup(kp, h, v) != truth {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
