package flow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Expiry reasons, matching OpenFlow's OFPRR_* values.
const (
	ReasonIdleTimeout uint8 = 0
	ReasonHardTimeout uint8 = 1
)

// SendFlowRemoved is the OFPFF_SEND_FLOW_REM flag bit: the controller wants
// an OFPT_FLOW_REMOVED when this flow expires.
const SendFlowRemoved uint16 = 1

// Flow is one flow-table entry. Stats counters are updated lock-free by the
// datapath; everything else is immutable after insertion (modifications
// replace the entry).
type Flow struct {
	Priority uint16
	Match    Match
	Actions  Actions
	Cookie   uint64

	// IdleTO/HardTO are OpenFlow timeouts in seconds (0 = permanent).
	IdleTO uint16
	HardTO uint16
	// Flags carries OpenFlow flow-mod flags (SendFlowRemoved).
	Flags uint16

	// Packets/Bytes are hit counters maintained by the datapath. Bypass
	// traffic is accounted separately (see the stats package) and merged at
	// stats-export time, exactly as the paper's PMD/shared-memory split.
	Packets atomic.Uint64
	Bytes   atomic.Uint64

	created int64        // UnixNano at insertion
	lastHit atomic.Int64 // UnixNano of the most recent datapath hit

	// dead is the death mark: set exactly once, when the flow leaves its
	// table (delete, expiry, or replacement). The EMC/SMC check it on every
	// candidate hit, so a removal invalidates precisely the cached entries
	// pointing at this flow — without bumping the add/modify generation and
	// stampeding the rest of the cache onto the classifier.
	dead atomic.Bool

	// pmask/pkeyMasked cache Match.Mask.Pack() and the masked match key,
	// computed once at insertion, so CoversPacked runs without Pack calls on
	// the SMC verification path.
	pmask      Packed
	pkeyMasked Packed

	// ecmp is the adaptive multipath repick state, mutated by the datapath
	// under a flowlet gate like the stats counters above (the flow itself
	// stays immutable; this is runtime state riding on it, the way lastHit
	// does).
	ecmp ECMPState
}

// ECMPState is a flow's adaptive-ECMP repick state. An ECMP rule matches a
// whole port's traffic (microflows spread by packet hash), so this is
// per-RULE path-steering state: Avoid masks out bundle slots whose egress
// reports congestion, and the two epochs gate how often that mask may
// change — a flowlet-style ordering guarantee (see the datapath's
// ActOutputECMP execution).
type ECMPState struct {
	// Avoid is a bitmask over the ECMP action's bundle slots (bit j = slot
	// j) the flow currently steers around.
	Avoid atomic.Uint32
	// Seen is the UnixNano of the last batch executed through the flow's
	// ECMP action — the idle-gap side of the flowlet gate.
	Seen atomic.Int64
	// Moved is the UnixNano of the last Avoid change — the bounded-rate
	// side of the gate.
	Moved atomic.Int64
}

// ECMP returns the flow's adaptive-ECMP repick state.
func (f *Flow) ECMP() *ECMPState { return &f.ecmp }

// Dead reports whether the flow has been removed from its table. Cached
// lookup tiers must never serve a dead flow.
func (f *Flow) Dead() bool { return f.dead.Load() }

// markDead sets the death mark; called under the table mutation lock by
// every removal path.
func (f *Flow) markDead() { f.dead.Store(true) }

// CoversPacked reports whether the packed key satisfies the flow's match,
// using the mask material cached at insertion (no allocation, no Pack).
func (f *Flow) CoversPacked(kp *Packed) bool {
	return kp.MaskedEqual(&f.pmask, &f.pkeyMasked)
}

// Touch records a datapath hit for idle-timeout accounting. The PMD calls
// it once per batch with an amortized timestamp; flows without an idle
// timeout skip the store.
func (f *Flow) Touch(nowNano int64) {
	if f.IdleTO > 0 {
		f.lastHit.Store(nowNano)
	}
}

// Expired reports whether the flow has timed out at now and why.
func (f *Flow) Expired(now time.Time) (bool, uint8) {
	n := now.UnixNano()
	if f.HardTO > 0 && n-f.created >= int64(f.HardTO)*int64(time.Second) {
		return true, ReasonHardTimeout
	}
	if f.IdleTO > 0 && n-f.lastHit.Load() >= int64(f.IdleTO)*int64(time.Second) {
		return true, ReasonIdleTimeout
	}
	return false, 0
}

// Age returns how long the flow has existed.
func (f *Flow) Age() time.Duration {
	return time.Duration(time.Now().UnixNano() - f.created)
}

// Stats returns a snapshot of the flow counters.
func (f *Flow) Stats() (packets, bytes uint64) {
	return f.Packets.Load(), f.Bytes.Load()
}

func (f *Flow) String() string {
	return fmt.Sprintf("priority=%d,%s actions=%s", f.Priority, f.Match, f.Actions)
}

// subtable groups flows sharing one mask: the unit of tuple space search.
type subtable struct {
	mask    Packed
	maxPrio uint16
	// entries maps masked packed keys to flows sorted by descending priority.
	entries map[Packed][]*Flow
	// hits counts lookups this subtable won. The counter outlives snapshot
	// rebuilds (it is owned by the Table, keyed by mask) and feeds the
	// periodic hit ranking. Atomic: several PMDs walk one snapshot.
	hits *atomic.Uint64
}

// classifier is an immutable lookup snapshot. Tables rebuild it on every
// mutation and swap it atomically, giving PMD threads wait-free lookups
// (the RCU idiom OVS uses, in Go clothing).
type classifier struct {
	// subtables sorted by descending maxPrio allows early exit as soon as the
	// best candidate outranks every remaining subtable; within an equal
	// maxPrio run they are ranked by observed hits (hottest first), which
	// Rerank refreshes periodically without touching the early-exit bound.
	subtables []*subtable
	version   uint64
}

// Lookup returns the highest-priority flow covering k, or nil.
func (c *classifier) Lookup(k *Key) *Flow {
	kp := k.Pack()
	return c.LookupPacked(&kp)
}

// LookupPacked is Lookup on an already-packed key, saving the serialization
// when the caller (the PMD fast path) has packed the key for EMC hashing.
func (c *classifier) LookupPacked(kp *Packed) *Flow {
	var best *Flow
	var bestSt *subtable
	for _, st := range c.subtables {
		if best != nil && best.Priority >= st.maxPrio {
			break
		}
		masked := kp.And(st.mask)
		for _, f := range st.entries[masked] {
			if best == nil || f.Priority > best.Priority {
				best = f
				bestSt = st
			}
			break // entries are sorted by descending priority
		}
	}
	if best != nil {
		bestSt.hits.Add(1)
	}
	return best
}

// Table is a priority flow table with copy-on-write lookup snapshots.
// Mutations (Add/Delete/Modify) are serialized by a mutex and O(n); lookups
// are wait-free against the latest snapshot. Listeners observe every
// mutation — this is the hook point for the p-2-p link detector, which in
// the paper inspects each flowmod received by the vSwitch.
type Table struct {
	mu        sync.Mutex
	flows     []*Flow
	version   atomic.Uint64
	gen       atomic.Uint64
	snap      atomic.Pointer[classifier]
	listeners []Listener
	// stHits owns the per-mask hit counters the classifier subtables point
	// at, so hit ranking survives snapshot rebuilds. Guarded by mu.
	stHits map[Packed]*atomic.Uint64
}

// Listener observes table mutations. Callbacks run synchronously under the
// table mutation lock: implementations must be fast and must not mutate the
// table reentrantly.
type Listener interface {
	FlowAdded(f *Flow)
	FlowRemoved(f *Flow)
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{stHits: make(map[Packed]*atomic.Uint64)}
	t.snap.Store(&classifier{})
	return t
}

// AddListener registers a mutation listener.
func (t *Table) AddListener(l Listener) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listeners = append(t.listeners, l)
}

// Version returns the current table version; it increments on every
// mutation (including deletes and expiries). Diagnostics and the legacy
// whole-cache invalidation scheme key off it.
func (t *Table) Version() uint64 { return t.version.Load() }

// Generation returns the add/modify generation: it increments only on
// insertions and modifications — the mutations that can *shadow* a cached
// classification with a different, possibly higher-priority result. The
// EMC/SMC validate entries against it. Removals (deletes, expiries) do NOT
// bump it; they death-mark the removed flows instead, so a delete
// invalidates exactly the cached entries pointing at the removed flow and
// the rest of the cache keeps hitting. Generations start at 1: nothing can
// be cached from an empty table, so 0 doubles as the caches' empty tag.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// Add inserts a permanent flow. Per OpenFlow semantics, an existing flow
// with the same priority and match is replaced (its counters are lost, as
// with OFPFF_RESET_COUNTS). Returns the inserted flow.
func (t *Table) Add(priority uint16, m Match, actions Actions, cookie uint64) *Flow {
	return t.AddWithTimeouts(priority, m, actions, cookie, 0, 0, 0)
}

// AddWithTimeouts inserts a flow with OpenFlow idle/hard timeouts (seconds,
// 0 = never) and flow-mod flags.
func (t *Table) AddWithTimeouts(priority uint16, m Match, actions Actions, cookie uint64, idleTO, hardTO, flags uint16) *Flow {
	f := newFlow(FlowSpec{
		Priority: priority, Match: m, Actions: actions, Cookie: cookie,
		IdleTO: idleTO, HardTO: hardTO, Flags: flags,
	}, time.Now().UnixNano())
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, old := range t.flows {
		if old.Priority == priority && old.Match.Equal(m) {
			t.flows[i] = f
			old.markDead()
			t.rebuildLocked()
			// Gen bumps AFTER the snapshot swap: a concurrent PMD that sees
			// the new gen is then guaranteed to classify against the new
			// snapshot (the reverse misordering — old gen, new snapshot —
			// only tags fresh results stale, which is merely conservative).
			t.gen.Add(1)
			for _, l := range t.listeners {
				l.FlowRemoved(old)
				l.FlowAdded(f)
			}
			return f
		}
	}
	t.flows = append(t.flows, f)
	t.rebuildLocked()
	t.gen.Add(1)
	for _, l := range t.listeners {
		l.FlowAdded(f)
	}
	return f
}

// newFlow builds a flow entry from a spec, caching the packed match
// material the SMC verification path reads.
func newFlow(sp FlowSpec, now int64) *Flow {
	f := &Flow{
		Priority: sp.Priority,
		Match:    sp.Match,
		Actions:  append(Actions(nil), sp.Actions...),
		Cookie:   sp.Cookie,
		IdleTO:   sp.IdleTO,
		HardTO:   sp.HardTO,
		Flags:    sp.Flags,
		created:  now,
	}
	f.pmask = sp.Match.Mask.Pack()
	f.pkeyMasked = sp.Match.Key.Pack().And(f.pmask)
	f.lastHit.Store(now)
	return f
}

// FlowSpec describes one flow for batched insertion via AddBatch.
type FlowSpec struct {
	Priority uint16
	Match    Match
	Actions  Actions
	Cookie   uint64
	// IdleTO/HardTO are OpenFlow timeouts in seconds (0 = permanent).
	IdleTO uint16
	HardTO uint16
	Flags  uint16
}

// AddBatch inserts all specs under one mutation lock with a single
// classifier rebuild, and returns the inserted flows in spec order.
// Installing n rules through Add rebuilds the snapshot n times (O(n²) work
// across a deploy laying down a whole service graph); AddBatch is the bulk
// path the steering-rule installers use. Replacement semantics match Add,
// including between two specs of the same priority and match within one
// batch (the later spec wins). Listeners observe the same removed/added
// sequence they would under per-flow Add calls.
func (t *Table) AddBatch(specs []FlowSpec) []*Flow {
	if len(specs) == 0 {
		return nil
	}
	now := time.Now().UnixNano()
	out := make([]*Flow, len(specs))
	replaced := make([]*Flow, len(specs)) // nil where the spec was a fresh insert
	t.mu.Lock()
	defer t.mu.Unlock()
	for si, sp := range specs {
		f := newFlow(sp, now)
		out[si] = f
		found := false
		for i, old := range t.flows {
			if old.Priority == sp.Priority && old.Match.Equal(sp.Match) {
				t.flows[i] = f
				old.markDead()
				replaced[si] = old
				found = true
				break
			}
		}
		if !found {
			t.flows = append(t.flows, f)
		}
	}
	t.rebuildLocked()
	t.gen.Add(1) // after the snapshot swap — see AddWithTimeouts
	for si, f := range out {
		for _, l := range t.listeners {
			if replaced[si] != nil {
				l.FlowRemoved(replaced[si])
			}
			l.FlowAdded(f)
		}
	}
	return out
}

// DeleteStrict removes the flow with exactly this priority and match,
// reporting whether one was removed.
func (t *Table) DeleteStrict(priority uint16, m Match) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, f := range t.flows {
		if f.Priority == priority && f.Match.Equal(m) {
			t.flows = append(t.flows[:i], t.flows[i+1:]...)
			f.markDead()
			t.rebuildLocked()
			for _, l := range t.listeners {
				l.FlowRemoved(f)
			}
			return true
		}
	}
	return false
}

// DeleteWhere removes all flows for which pred returns true and reports how
// many were removed. Non-strict OpenFlow deletes map onto this.
func (t *Table) DeleteWhere(pred func(*Flow) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var kept []*Flow
	var removed []*Flow
	for _, f := range t.flows {
		if pred(f) {
			removed = append(removed, f)
		} else {
			kept = append(kept, f)
		}
	}
	if len(removed) == 0 {
		return 0
	}
	t.flows = kept
	for _, f := range removed {
		f.markDead()
	}
	t.rebuildLocked()
	for _, f := range removed {
		for _, l := range t.listeners {
			l.FlowRemoved(f)
		}
	}
	return len(removed)
}

// Snapshot returns a copy of the flow list, sorted by descending priority.
// Callers may read flow fields but must not mutate them.
func (t *Table) Snapshot() []*Flow {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]*Flow(nil), t.flows...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// Len returns the number of flows.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}

// Lookup classifies k against the current snapshot. Wait-free.
func (t *Table) Lookup(k *Key) *Flow {
	return t.snap.Load().Lookup(k)
}

// LookupPacked classifies an already-packed key against the current
// snapshot. Wait-free; the PMD miss path uses it to avoid re-packing the key
// it already serialized for EMC hashing.
func (t *Table) LookupPacked(kp *Packed) *Flow {
	return t.snap.Load().LookupPacked(kp)
}

// Expired is one flow removed by Expire, with its OpenFlow reason code.
type Expired struct {
	Flow   *Flow
	Reason uint8
}

// Expire removes every flow whose idle or hard timeout has elapsed at now,
// firing the usual removal listeners (so the p-2-p detector reacts to
// expiries exactly as to explicit deletes), and returns them with reasons.
func (t *Table) Expire(now time.Time) []Expired {
	t.mu.Lock()
	defer t.mu.Unlock()
	// First pass without allocating: the common sweep finds nothing to do.
	dead := false
	for _, f := range t.flows {
		if d, _ := f.Expired(now); d {
			dead = true
			break
		}
	}
	if !dead {
		return nil
	}
	var expired []Expired
	var kept []*Flow
	for _, f := range t.flows {
		if dead, reason := f.Expired(now); dead {
			expired = append(expired, Expired{Flow: f, Reason: reason})
		} else {
			kept = append(kept, f)
		}
	}
	if len(expired) == 0 {
		return nil
	}
	t.flows = kept
	for _, e := range expired {
		e.Flow.markDead()
	}
	t.rebuildLocked()
	for _, e := range expired {
		for _, l := range t.listeners {
			l.FlowRemoved(e.Flow)
		}
	}
	return expired
}

// Rerank re-sorts the current classifier snapshot's subtables by observed
// hit counts and swaps a fresh snapshot in. The sort is priority-guarded —
// descending maxPrio remains the primary key, hits only order subtables
// *within* an equal-maxPrio run — so the walk's early exit stays correct.
// Rerank is not a mutation: neither the version nor the add/modify
// generation moves, listeners do not fire, and cached EMC/SMC entries stay
// valid. The vSwitch expiry sweeper calls it periodically so the hottest
// mask migrates to the front of the tuple-space walk.
func (t *Table) Rerank() {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.snap.Load()
	if len(cur.subtables) < 2 {
		return
	}
	next := &classifier{version: cur.version}
	next.subtables = append([]*subtable(nil), cur.subtables...)
	sortSubtables(next.subtables)
	t.snap.Store(next)
}

// sortSubtables orders a subtable slice for lookup: descending maxPrio
// (the early-exit invariant), then descending observed hits.
func sortSubtables(sts []*subtable) {
	sort.SliceStable(sts, func(i, j int) bool {
		if sts[i].maxPrio != sts[j].maxPrio {
			return sts[i].maxPrio > sts[j].maxPrio
		}
		return sts[i].hits.Load() > sts[j].hits.Load()
	})
}

// rebuildLocked regenerates the classifier snapshot. Caller holds t.mu.
func (t *Table) rebuildLocked() {
	v := t.version.Add(1)
	bymask := make(map[Packed]*subtable)
	for _, f := range t.flows {
		mp := f.pmask
		st, ok := bymask[mp]
		if !ok {
			hc := t.stHits[mp]
			if hc == nil {
				hc = new(atomic.Uint64)
				t.stHits[mp] = hc
			}
			st = &subtable{mask: mp, entries: make(map[Packed][]*Flow), hits: hc}
			bymask[mp] = st
		}
		if f.Priority > st.maxPrio {
			st.maxPrio = f.Priority
		}
		st.entries[f.pkeyMasked] = append(st.entries[f.pkeyMasked], f)
	}
	// Hit counters of vanished masks die with their subtable: a returning
	// mask starts cold rather than inheriting a stale rank.
	for mp := range t.stHits {
		if _, ok := bymask[mp]; !ok {
			delete(t.stHits, mp)
		}
	}
	c := &classifier{version: v}
	for _, st := range bymask {
		for _, flows := range st.entries {
			sort.SliceStable(flows, func(i, j int) bool { return flows[i].Priority > flows[j].Priority })
		}
		c.subtables = append(c.subtables, st)
	}
	sortSubtables(c.subtables)
	t.snap.Store(c)
}
