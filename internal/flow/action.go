package flow

import (
	"fmt"
	"strings"

	"ovshighway/internal/pkt"
)

// ActionType discriminates Action values.
type ActionType uint8

// Action types supported by the datapath.
const (
	ActOutput     ActionType = iota + 1 // forward to Port
	ActController                       // punt to the OpenFlow controller
	ActDrop                             // explicit drop
	ActSetEthSrc                        // rewrite source MAC
	ActSetEthDst                        // rewrite destination MAC
	ActDecTTL                           // decrement IPv4 TTL, drop at zero
	ActPushVlan                         // push an 802.1Q tag carrying Vlan
	ActPopVlan                          // strip the outermost 802.1Q tag
	ActSetVlan                          // rewrite the vid of an existing tag
	ActSetVlanPcp                       // rewrite the PCP bits of an existing tag
	ActOutputECMP                       // hash-spread output over Ports[:NPorts]
)

// MaxECMPPorts bounds the number of parallel destinations one ECMP action
// can spread over. A fixed-size array keeps Action comparable (Actions.Equal
// relies on ==) and the datapath allocation-free.
const MaxECMPPorts = 8

// Action is one datapath action. The zero value is invalid.
type Action struct {
	Type ActionType
	Port uint32  // ActOutput
	MAC  pkt.MAC // ActSetEthSrc / ActSetEthDst
	Vlan uint16  // ActPushVlan / ActSetVlan
	PCP  uint8   // ActSetVlanPcp
	// Ports[:NPorts] are the parallel destinations of an ActOutputECMP: each
	// packet is pinned to one of them by its flow hash (lane + Hash2), so a
	// flow never straddles paths while distinct flows spread.
	Ports  [MaxECMPPorts]uint32
	NPorts uint8
}

// Output returns an output-to-port action.
func Output(port uint32) Action { return Action{Type: ActOutput, Port: port} }

// Controller returns a punt-to-controller action.
func Controller() Action { return Action{Type: ActController} }

// Drop returns an explicit drop action.
func Drop() Action { return Action{Type: ActDrop} }

// SetEthSrc returns a source-MAC rewrite action.
func SetEthSrc(m pkt.MAC) Action { return Action{Type: ActSetEthSrc, MAC: m} }

// SetEthDst returns a destination-MAC rewrite action.
func SetEthDst(m pkt.MAC) Action { return Action{Type: ActSetEthDst, MAC: m} }

// DecTTL returns a TTL-decrement action.
func DecTTL() Action { return Action{Type: ActDecTTL} }

// PushVlan returns an action pushing an 802.1Q tag with the given VLAN id —
// the sender-side half of trunk-lane steering.
func PushVlan(vid uint16) Action { return Action{Type: ActPushVlan, Vlan: vid & 0x0fff} }

// PopVlan returns an action stripping the outermost 802.1Q tag — the
// receiver-side half of trunk-lane steering.
func PopVlan() Action { return Action{Type: ActPopVlan} }

// SetVlan returns an action rewriting the VLAN id of an already-tagged
// frame (ovs-ofctl mod_vlan_vid).
func SetVlan(vid uint16) Action { return Action{Type: ActSetVlan, Vlan: vid & 0x0fff} }

// SetVlanPcp returns an action rewriting the 802.1Q priority code point of
// an already-tagged frame (ovs-ofctl mod_vlan_pcp) — how a lane's crossing
// priority is stamped onto trunk traffic for the DRR scheduler.
func SetVlanPcp(pcp uint8) Action { return Action{Type: ActSetVlanPcp, PCP: pcp & 0x07} }

// OutputECMP returns an action spreading output over up to MaxECMPPorts
// parallel destinations by per-packet flow hash — the multi-trunk uplink
// fan-out of the fabric's ECMP mode. Ports beyond MaxECMPPorts are dropped;
// a single-port list degenerates to plain output semantics (but is still
// never treated as a p-2-p bypass candidate).
func OutputECMP(ports ...uint32) Action {
	a := Action{Type: ActOutputECMP}
	for _, p := range ports {
		if int(a.NPorts) == MaxECMPPorts {
			break
		}
		a.Ports[a.NPorts] = p
		a.NPorts++
	}
	return a
}

// String renders the action in ovs-ofctl style.
func (a Action) String() string {
	switch a.Type {
	case ActOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActController:
		return "CONTROLLER"
	case ActDrop:
		return "drop"
	case ActSetEthSrc:
		return "mod_dl_src:" + a.MAC.String()
	case ActSetEthDst:
		return "mod_dl_dst:" + a.MAC.String()
	case ActDecTTL:
		return "dec_ttl"
	case ActPushVlan:
		return fmt.Sprintf("push_vlan:%d", a.Vlan)
	case ActPopVlan:
		return "strip_vlan"
	case ActSetVlan:
		return fmt.Sprintf("mod_vlan_vid:%d", a.Vlan)
	case ActSetVlanPcp:
		return fmt.Sprintf("mod_vlan_pcp:%d", a.PCP)
	case ActOutputECMP:
		var sb strings.Builder
		sb.WriteString("output_ecmp")
		for i := uint8(0); i < a.NPorts; i++ {
			fmt.Fprintf(&sb, ":%d", a.Ports[i])
		}
		return sb.String()
	default:
		return fmt.Sprintf("unknown(%d)", a.Type)
	}
}

// Actions is an ordered action list.
type Actions []Action

// String renders the list in ovs-ofctl style ("drop" when empty).
func (as Actions) String() string {
	if len(as) == 0 {
		return "drop"
	}
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// Equal reports element-wise equality.
func (as Actions) Equal(other Actions) bool {
	if len(as) != len(other) {
		return false
	}
	for i := range as {
		if as[i] != other[i] {
			return false
		}
	}
	return true
}

// OutputPorts returns the set of ports the list outputs to, including every
// parallel destination of ECMP actions.
func (as Actions) OutputPorts() []uint32 {
	var out []uint32
	for _, a := range as {
		switch a.Type {
		case ActOutput:
			out = append(out, a.Port)
		case ActOutputECMP:
			out = append(out, a.Ports[:a.NPorts]...)
		}
	}
	return out
}

// IsPureOutputTo reports whether the action list is exactly one output to
// the given port — the action shape required for a p-2-p bypass.
func (as Actions) IsPureOutputTo(port uint32) bool {
	return len(as) == 1 && as[0].Type == ActOutput && as[0].Port == port
}

// SoleOutput returns the destination when the list is exactly one output
// action, with ok reporting whether that is the case.
func (as Actions) SoleOutput() (port uint32, ok bool) {
	if len(as) == 1 && as[0].Type == ActOutput {
		return as[0].Port, true
	}
	return 0, false
}
