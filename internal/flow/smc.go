package flow

import "sync/atomic"

// SMC is the signature-match cache: the middle tier of the lookup
// hierarchy, slotted between the exact-match cache and the tuple-space
// classifier, modeled on OVS-DPDK's SMC. Where an EMC entry stores the full
// 36-byte packed key, an SMC entry stores only hash material — a 16-bit
// signature of the primary key hash plus an independent 32-bit secondary
// hash — so the same memory holds several times more entries and the cache
// keeps absorbing lookups long after the distinct-flow count has blown past
// the EMC's reach. Per-PMD and single-threaded, like the EMC.
//
// A candidate entry is served only after three checks:
//
//  1. generation — the entry was cached at the table's current add/modify
//     generation (the same shadowing rule the EMC uses: a newly inserted
//     rule could outrank the cached one);
//  2. liveness — the cached flow has not been death-marked by a delete,
//     expiry, or replacement;
//  3. coverage — the cached flow's match covers the looked-up key, verified
//     against the packed mask material cached on the flow (no Pack calls).
//
// Coverage makes a signature collision between keys that resolve to
// different rules detectable in practice: the colliding key fails the
// cached rule's mask check, is counted in FalsePositives, and falls through
// to the classifier. The residual wrong-answer window — another key
// agreeing on ~48 independent hash bits AND covered by the cached rule
// while a higher-priority rule covers only it — is ~2^-48 per colliding
// pair; like OVS's SMC, the tier trades that vanishing probability for
// reach.
type SMC struct {
	mask    uint32
	entries []smcEntry
	victim  uint32 // round-robin victim cursor for full live buckets

	// Counters are atomics so control-plane code can snapshot them while
	// the owning PMD keeps forwarding (windowed DatapathStats deltas); the
	// PMD thread is still the only writer.
	hits     atomic.Uint64
	misses   atomic.Uint64
	falsePos atomic.Uint64
}

// smcEntry is one cache way: no key, just hash material and the result.
type smcEntry struct {
	gen  uint64
	flow *Flow
	alt  uint32 // secondary hash (Packed.Hash2)
	sig  uint16 // primary-hash signature (high bits, never 0)
}

const smcWays = 4

// NewSMC builds a cache with the given number of entries (rounded up to a
// power of two, minimum 2*ways).
func NewSMC(entries int) *SMC {
	n := smcWays * 2
	for n < entries {
		n <<= 1
	}
	return &SMC{
		mask:    uint32(n/smcWays - 1),
		entries: make([]smcEntry, n),
	}
}

// smcSig derives the in-bucket signature from the primary hash. 0 is
// remapped so a zeroed (empty) way can never match.
func smcSig(hash uint32) uint16 {
	s := uint16(hash >> 16)
	if s == 0 {
		s = 0xffff
	}
	return s
}

// Lookup returns the cached flow covering the packed key, or nil on miss.
// gen must be the owning table's current add/modify generation.
func (c *SMC) Lookup(kp *Packed, hash uint32, gen uint64) *Flow {
	base := int(hash&c.mask) * smcWays
	sig := smcSig(hash)
	var alt uint32
	altDone := false
	for w := 0; w < smcWays; w++ {
		e := &c.entries[base+w]
		if e.sig != sig || e.gen != gen || e.flow == nil {
			continue
		}
		if !altDone {
			alt = kp.Hash2() // computed lazily: most probes fail on sig/gen
			altDone = true
		}
		if e.alt != alt {
			// Primary-signature collision caught by the secondary hash: a
			// detected false positive of the 16-bit signature.
			c.falsePos.Add(1)
			continue
		}
		f := e.flow
		if f.Dead() {
			e.flow = nil // scrub: the way becomes a preferred victim
			continue
		}
		if !f.CoversPacked(kp) {
			c.falsePos.Add(1)
			continue
		}
		c.hits.Add(1)
		return f
	}
	c.misses.Add(1)
	return nil
}

// Insert caches a classification result obtained at gen. A nil flow is
// never cached. Victim preference: the way holding the same hash material
// (re-validation updates in place), then an empty/stale/dead way, then
// round-robin among live ways.
func (c *SMC) Insert(kp *Packed, hash uint32, f *Flow, gen uint64) {
	if f == nil {
		return
	}
	base := int(hash&c.mask) * smcWays
	sig := smcSig(hash)
	alt := kp.Hash2()
	vic := -1
	for w := 0; w < smcWays; w++ {
		e := &c.entries[base+w]
		if e.sig == sig && e.alt == alt && e.flow != nil {
			vic = w // same key material: update in place
			break
		}
		if vic < 0 && (e.flow == nil || e.gen != gen || e.flow.Dead()) {
			vic = w
		}
	}
	if vic < 0 {
		vic = int(c.victim % smcWays)
		c.victim++
	}
	c.entries[base+vic] = smcEntry{gen: gen, flow: f, alt: alt, sig: sig}
}

// SMCStats are cumulative cache counters. FalsePositives count signature
// matches whose flow did not cover the key: detected collisions, served as
// misses.
type SMCStats struct {
	Hits, Misses, FalsePositives uint64
}

// Delta returns the counter movement since an earlier snapshot.
func (s SMCStats) Delta(prev SMCStats) SMCStats {
	return SMCStats{
		Hits:           s.Hits - prev.Hits,
		Misses:         s.Misses - prev.Misses,
		FalsePositives: s.FalsePositives - prev.FalsePositives,
	}
}

// Stats returns a snapshot of the cache counters. Safe to call while the
// owning PMD is forwarding.
func (c *SMC) Stats() SMCStats {
	return SMCStats{Hits: c.hits.Load(), Misses: c.misses.Load(), FalsePositives: c.falsePos.Load()}
}
