package flow

// EMC is an exact-match cache: a direct-mapped, 2-way cache from full packet
// keys to classification results, owned by a single PMD thread (no locking).
// It is the first level of the OVS userspace datapath lookup hierarchy; on a
// hit the masked classifier walk is skipped entirely.
//
// Entries carry per-entry generation tags: each entry remembers the table
// version it was cached at and is served only while that version is current.
// A table mutation therefore invalidates exactly the entries cached before
// it — lazily, with no flush pass over the whole cache — while entries
// re-validated after the mutation keep hitting. This is how flow-mod driven
// behaviour changes (including bypass teardown decisions) become visible to
// the datapath promptly without the old whole-cache-flush cost on every
// mutation.
type EMC struct {
	mask    uint32
	entries []emcEntry

	hits      uint64
	misses    uint64
	conflicts uint64
}

// emcEntry is one cache way. gen is the table version the classification was
// obtained at; 0 means empty (table versions start at 1 — an empty table
// classifies nothing, so nothing is ever cached at version 0).
type emcEntry struct {
	gen  uint64
	key  Packed
	flow *Flow
}

const emcWays = 2

// NewEMC builds a cache with the given number of entries (rounded up to a
// power of two, minimum 2*ways).
func NewEMC(entries int) *EMC {
	n := emcWays * 2
	for n < entries {
		n <<= 1
	}
	return &EMC{
		mask:    uint32(n/emcWays - 1),
		entries: make([]emcEntry, n),
	}
}

// Lookup returns the cached flow for the packed key, or nil on miss.
// tableVersion must be the owning table's current version; entries tagged
// with any other generation are stale and never served.
func (c *EMC) Lookup(kp Packed, hash uint32, tableVersion uint64) *Flow {
	base := int(hash&c.mask) * emcWays
	for w := 0; w < emcWays; w++ {
		e := &c.entries[base+w]
		if e.gen == tableVersion && e.key == kp && e.flow != nil {
			c.hits++
			return e.flow
		}
	}
	c.misses++
	return nil
}

// Insert caches a classification result obtained at tableVersion. A nil flow
// is never cached (misses in the classifier go to the slow path and may
// install new state). Stale ways (older generations) are preferred victims;
// among live ways the set behaves as insertion-order LRU.
func (c *EMC) Insert(kp Packed, hash uint32, f *Flow, tableVersion uint64) {
	if f == nil {
		return
	}
	base := int(hash&c.mask) * emcWays
	// Re-validation of a key already present in the set updates in place.
	for w := 0; w < emcWays; w++ {
		e := &c.entries[base+w]
		if e.gen != 0 && e.key == kp {
			e.gen = tableVersion
			e.flow = f
			return
		}
	}
	// A stale way 0 can be overwritten without touching a possibly-live way 1.
	if c.entries[base].gen != tableVersion {
		c.entries[base] = emcEntry{gen: tableVersion, key: kp, flow: f}
		return
	}
	// Way 0 receives the newest entry; the previous way-0 occupant shifts to
	// way 1, evicting the set's oldest entry (insertion-order LRU).
	if c.entries[base+1].gen == tableVersion {
		c.conflicts++
	}
	c.entries[base+1] = c.entries[base]
	c.entries[base] = emcEntry{gen: tableVersion, key: kp, flow: f}
}

// EMCStats are cumulative cache counters.
type EMCStats struct {
	Hits, Misses, Conflicts uint64
}

// Stats returns a snapshot of the cache counters.
func (c *EMC) Stats() EMCStats {
	return EMCStats{Hits: c.hits, Misses: c.misses, Conflicts: c.conflicts}
}
