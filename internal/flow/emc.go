package flow

import "sync/atomic"

// EMC is an exact-match cache: a direct-mapped, 2-way cache from full packet
// keys to classification results, owned by a single PMD thread (no locking).
// It is the first level of the OVS userspace datapath lookup hierarchy; on a
// hit the SMC probe and the masked classifier walk are both skipped.
//
// Invalidation is two-pronged:
//
//   - Entries carry per-entry generation tags. The caller passes the table's
//     add/modify generation (Table.Generation): each entry remembers the
//     generation it was cached at and is served only while that generation
//     is current, so an insertion or modification — which can shadow a
//     cached result with a different winner — invalidates entries cached
//     before it, lazily, with no flush pass over the cache.
//   - Removals (deletes, expiries, replacements) death-mark the removed
//     Flow instead of bumping the generation. A hit candidate whose flow is
//     dead is scrubbed and treated as a miss. Deletes — the dominant churn
//     source in a busy flow table — therefore invalidate exactly the
//     entries pointing at the removed flow; the rest of the cache keeps
//     hitting. (The pre-death-mark behaviour, every mutation stampeding the
//     whole cache onto the classifier, is recoverable by passing
//     Table.Version as the generation — BenchmarkLookupChurn compares the
//     two schemes.)
type EMC struct {
	mask    uint32
	entries []emcEntry

	// Counters are atomics so control-plane code can snapshot them while
	// the owning PMD keeps forwarding (windowed DatapathStats deltas); the
	// PMD thread is still the only writer.
	hits      atomic.Uint64
	misses    atomic.Uint64
	conflicts atomic.Uint64
}

// emcEntry is one cache way. gen is the add/modify generation the
// classification was obtained at; 0 means empty (generations start at 1 —
// an empty table classifies nothing, so nothing is ever cached at 0).
type emcEntry struct {
	gen  uint64
	key  Packed
	flow *Flow
}

const emcWays = 2

// NewEMC builds a cache with the given number of entries (rounded up to a
// power of two, minimum 2*ways).
func NewEMC(entries int) *EMC {
	n := emcWays * 2
	for n < entries {
		n <<= 1
	}
	return &EMC{
		mask:    uint32(n/emcWays - 1),
		entries: make([]emcEntry, n),
	}
}

// Lookup returns the cached flow for the packed key, or nil on miss.
// gen must be the owning table's current add/modify generation; entries
// tagged with any other generation, or whose flow has been death-marked,
// are stale and never served.
func (c *EMC) Lookup(kp Packed, hash uint32, gen uint64) *Flow {
	base := int(hash&c.mask) * emcWays
	for w := 0; w < emcWays; w++ {
		e := &c.entries[base+w]
		if e.gen == gen && e.key == kp {
			if f := e.flow; f != nil && !f.Dead() {
				c.hits.Add(1)
				return f
			}
			// The cached flow was removed: scrub the way so it becomes a
			// preferred insertion victim.
			e.gen = 0
			e.flow = nil
		}
	}
	c.misses.Add(1)
	return nil
}

// Insert caches a classification result obtained at gen. A nil flow is
// never cached (misses in the classifier go to the slow path and may
// install new state). Stale ways (older generations, dead flows) are
// preferred victims; among live ways the set behaves as insertion-order
// LRU.
//
// When the insertion replaces a LIVE entry, that victim (key + flow) is
// returned with evicted=true: the caller demotes it into the SMC
// (OVS-style), so the second tier warms with exactly the flows the first
// tier can no longer hold — without waiting for their next classifier walk.
func (c *EMC) Insert(kp Packed, hash uint32, f *Flow, gen uint64) (victimKey Packed, victim *Flow, evicted bool) {
	if f == nil {
		return Packed{}, nil, false
	}
	base := int(hash&c.mask) * emcWays
	// Re-validation of a key already present in the set updates in place.
	for w := 0; w < emcWays; w++ {
		e := &c.entries[base+w]
		if e.gen != 0 && e.key == kp {
			e.gen = gen
			e.flow = f
			return Packed{}, nil, false
		}
	}
	// A stale or dead way 0 can be overwritten without touching a
	// possibly-live way 1.
	if e := &c.entries[base]; e.gen != gen || e.flow == nil || e.flow.Dead() {
		*e = emcEntry{gen: gen, key: kp, flow: f}
		return Packed{}, nil, false
	}
	// Way 0 receives the newest entry; the previous way-0 occupant shifts to
	// way 1, evicting the set's oldest entry (insertion-order LRU).
	if e1 := &c.entries[base+1]; e1.gen == gen && e1.flow != nil && !e1.flow.Dead() {
		c.conflicts.Add(1)
		victimKey, victim, evicted = e1.key, e1.flow, true
	}
	c.entries[base+1] = c.entries[base]
	c.entries[base] = emcEntry{gen: gen, key: kp, flow: f}
	return victimKey, victim, evicted
}

// EMCStats are cumulative cache counters.
type EMCStats struct {
	Hits, Misses, Conflicts uint64
}

// Delta returns the counter movement since an earlier snapshot.
func (s EMCStats) Delta(prev EMCStats) EMCStats {
	return EMCStats{Hits: s.Hits - prev.Hits, Misses: s.Misses - prev.Misses, Conflicts: s.Conflicts - prev.Conflicts}
}

// Stats returns a snapshot of the cache counters. Safe to call while the
// owning PMD is forwarding.
func (c *EMC) Stats() EMCStats {
	return EMCStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Conflicts: c.conflicts.Load()}
}
