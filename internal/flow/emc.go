package flow

// EMC is an exact-match cache: a direct-mapped, 2-way cache from full packet
// keys to classification results, owned by a single PMD thread (no locking).
// It is the first level of the OVS userspace datapath lookup hierarchy; on a
// hit the masked classifier walk is skipped entirely.
//
// Entries are validated against the table version: any table mutation
// invalidates the whole cache on the next lookup, which is how flow-mod
// driven behaviour changes (including bypass teardown decisions) become
// visible to the datapath promptly.
type EMC struct {
	mask    uint32
	entries []emcEntry
	version uint64

	hits      uint64
	misses    uint64
	conflicts uint64
}

type emcEntry struct {
	valid bool
	key   Packed
	flow  *Flow
}

const emcWays = 2

// NewEMC builds a cache with the given number of entries (rounded up to a
// power of two, minimum 2*ways).
func NewEMC(entries int) *EMC {
	n := emcWays * 2
	for n < entries {
		n <<= 1
	}
	return &EMC{
		mask:    uint32(n/emcWays - 1),
		entries: make([]emcEntry, n),
	}
}

// Lookup returns the cached flow for the packed key, or nil on miss.
// tableVersion must be the owning table's current version; a version change
// flushes the cache.
func (c *EMC) Lookup(kp Packed, hash uint32, tableVersion uint64) *Flow {
	if c.version != tableVersion {
		c.flush(tableVersion)
		c.misses++
		return nil
	}
	base := int(hash&c.mask) * emcWays
	for w := 0; w < emcWays; w++ {
		e := &c.entries[base+w]
		if e.valid && e.key == kp {
			c.hits++
			return e.flow
		}
	}
	c.misses++
	return nil
}

// Insert caches a classification result obtained at tableVersion. A nil flow
// is never cached (misses in the classifier go to the slow path and may
// install new state). If the cache holds entries from an older version they
// are flushed first.
func (c *EMC) Insert(kp Packed, hash uint32, f *Flow, tableVersion uint64) {
	if f == nil {
		return
	}
	if c.version != tableVersion {
		c.flush(tableVersion)
	}
	base := int(hash&c.mask) * emcWays
	// Way 0 always receives the newest entry; the previous way-0 occupant
	// shifts to way 1, evicting the set's oldest entry (insertion-order LRU).
	if c.entries[base].valid && c.entries[base+1].valid {
		c.conflicts++
	}
	c.entries[base+1] = c.entries[base]
	c.entries[base] = emcEntry{valid: true, key: kp, flow: f}
}

func (c *EMC) flush(version uint64) {
	for i := range c.entries {
		c.entries[i] = emcEntry{}
	}
	c.version = version
}

// EMCStats are cumulative cache counters.
type EMCStats struct {
	Hits, Misses, Conflicts uint64
}

// Stats returns a snapshot of the cache counters.
func (c *EMC) Stats() EMCStats {
	return EMCStats{Hits: c.hits, Misses: c.misses, Conflicts: c.conflicts}
}
