// Package flow implements the OpenFlow-style flow abstraction used by the
// vSwitch datapath: match keys with masks, actions, priority-ordered flow
// tables, a tuple-space-search classifier, and a per-PMD exact-match cache.
//
// The structure mirrors the OVS userspace datapath lookup hierarchy the paper
// relies on: EMC (exact, per-PMD) in front of a masked classifier (one hash
// subtable per distinct mask), in front of the slow path. Reproducing that
// hierarchy matters because the vanilla baseline's per-hop cost is exactly
// this lookup plus the action execution.
package flow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"ovshighway/internal/pkt"
)

// Key is the flat packet header key the classifier operates on, the analogue
// of OVS's struct flow (reduced to the fields this system matches on).
type Key struct {
	InPort  uint32
	EthSrc  pkt.MAC
	EthDst  pkt.MAC
	EthType uint16
	VlanID  uint16 // 0 = untagged
	IPSrc   uint32
	IPDst   uint32
	IPProto uint8
	IPDSCP  uint8
	L4Src   uint16
	L4Dst   uint16
}

// packedKeySize is the size of the canonical packed representation.
const packedKeySize = 36

// Packed is the canonical fixed-size serialization of a Key. It is the hash
// and equality unit for classifier subtables and the EMC.
type Packed [packedKeySize]byte

// Pack serializes the key into its canonical packed form.
func (k *Key) Pack() Packed {
	var p Packed
	binary.BigEndian.PutUint32(p[0:4], k.InPort)
	copy(p[4:10], k.EthSrc[:])
	copy(p[10:16], k.EthDst[:])
	binary.BigEndian.PutUint16(p[16:18], k.EthType)
	binary.BigEndian.PutUint16(p[18:20], k.VlanID)
	binary.BigEndian.PutUint32(p[20:24], k.IPSrc)
	binary.BigEndian.PutUint32(p[24:28], k.IPDst)
	p[28] = k.IPProto
	p[29] = k.IPDSCP
	binary.BigEndian.PutUint16(p[30:32], k.L4Src)
	binary.BigEndian.PutUint16(p[32:34], k.L4Dst)
	// p[34:36] reserved padding, always zero.
	return p
}

// Mask selects which Key bits a flow matches on. A zero bit is wildcarded.
// Masks use the same packed layout as keys.
type Mask struct {
	InPort  uint32
	EthSrc  pkt.MAC
	EthDst  pkt.MAC
	EthType uint16
	VlanID  uint16
	IPSrc   uint32
	IPDst   uint32
	IPProto uint8
	IPDSCP  uint8
	L4Src   uint16
	L4Dst   uint16
}

// Pack serializes the mask into packed form.
func (m *Mask) Pack() Packed {
	k := Key{
		InPort: m.InPort, EthSrc: m.EthSrc, EthDst: m.EthDst,
		EthType: m.EthType, VlanID: m.VlanID,
		IPSrc: m.IPSrc, IPDst: m.IPDst,
		IPProto: m.IPProto, IPDSCP: m.IPDSCP,
		L4Src: m.L4Src, L4Dst: m.L4Dst,
	}
	return k.Pack()
}

// And returns p masked by m, byte-wise.
func (p Packed) And(m Packed) Packed {
	var out Packed
	for i := range p {
		out[i] = p[i] & m[i]
	}
	return out
}

// MaskedEqual reports whether p&mask == want byte-wise, without
// materializing the masked copy. It is the SMC's verification primitive:
// flows cache their packed mask and masked key at insertion, so checking
// whether a flow covers a packet key is one pass over 36 bytes.
func (p *Packed) MaskedEqual(mask, want *Packed) bool {
	for i := range p {
		if p[i]&mask[i] != want[i] {
			return false
		}
	}
	return true
}

// Hash returns an FNV-1a hash of the packed bytes.
func (p Packed) Hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range p {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}

// Hash2 returns a second hash of the packed bytes, independent of Hash:
// FNV-1a over a different offset basis with a murmur-style finalizer. The
// SMC stores it alongside the primary hash's signature, so an entry must
// agree on ~48 independent hash bits before its mask-cover verification —
// pushing undetectable signature collisions below any realistic flow count.
func (p *Packed) Hash2() uint32 {
	const prime32 = 16777619
	h := uint32(0x9747b28c)
	for _, b := range p {
		h ^= uint32(b)
		h *= prime32
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return h
}

// ExtractKey builds a classifier key from a parsed packet and its ingress
// port. It allocates nothing.
func ExtractKey(p *pkt.Parser, inPort uint32) Key {
	k := Key{InPort: inPort}
	if !p.Decoded.Has(pkt.LayerEthernet) {
		return k
	}
	k.EthSrc = p.Eth.Src()
	k.EthDst = p.Eth.Dst()
	k.EthType = p.Eth.EtherType()
	if p.Decoded.Has(pkt.LayerVLAN) {
		k.VlanID = p.VLAN.VID()
		k.EthType = p.VLAN.EtherType()
	}
	if p.Decoded.Has(pkt.LayerIPv4) {
		k.IPSrc = p.IPv4.Src().Uint32()
		k.IPDst = p.IPv4.Dst().Uint32()
		k.IPProto = p.IPv4.Proto()
		k.IPDSCP = p.IPv4.DSCP()
	}
	switch {
	case p.Decoded.Has(pkt.LayerUDP):
		k.L4Src = p.UDP.SrcPort()
		k.L4Dst = p.UDP.DstPort()
	case p.Decoded.Has(pkt.LayerTCP):
		k.L4Src = p.TCP.SrcPort()
		k.L4Dst = p.TCP.DstPort()
	}
	return k
}

// RSSHash computes a frame's receive-side-scaling hash the way the
// simulated multi-queue ports' "hardware" does: parse, extract the header
// key, and reuse the secondary key hash (Hash2) — the same value the SMC
// signature and the ECMP path pinning derive from, so one flow maps to one
// RX queue, one cache signature, and one fabric path. The ingress-port
// contribution is fixed at zero because RSS runs before the switch has
// attributed the frame to a port, and a queue choice must not depend on
// it. ok=false marks frames the parser rejects: they have no flow
// identity, and callers place them on queue 0. Allocates nothing.
func RSSHash(p *pkt.Parser, frame []byte) (h uint32, ok bool) {
	if err := p.Parse(frame); err != nil {
		return 0, false
	}
	k := ExtractKey(p, 0)
	kp := k.Pack()
	return kp.Hash2(), true
}

// Match pairs a key with a mask: the OpenFlow match of a flow entry.
type Match struct {
	Key  Key
	Mask Mask
}

// MatchAll is the fully wildcarded match.
func MatchAll() Match { return Match{} }

// MatchInPort matches only on the ingress port — the catch-all rule shape
// the p-2-p detector looks for.
func MatchInPort(port uint32) Match {
	return Match{
		Key:  Key{InPort: port},
		Mask: Mask{InPort: ^uint32(0)},
	}
}

// WithEthType returns a copy of m additionally matching the EtherType.
func (m Match) WithEthType(t uint16) Match {
	m.Key.EthType = t
	m.Mask.EthType = 0xffff
	return m
}

// WithIPProto returns a copy of m additionally matching the IP protocol.
// It implies matching EtherType IPv4 if not already set.
func (m Match) WithIPProto(proto uint8) Match {
	if m.Mask.EthType == 0 {
		m = m.WithEthType(pkt.EtherTypeIPv4)
	}
	m.Key.IPProto = proto
	m.Mask.IPProto = 0xff
	return m
}

// WithIPDst returns a copy of m additionally matching a destination prefix.
func (m Match) WithIPDst(addr pkt.IP4, prefixLen int) Match {
	if m.Mask.EthType == 0 {
		m = m.WithEthType(pkt.EtherTypeIPv4)
	}
	mask := prefixMask(prefixLen)
	m.Key.IPDst = addr.Uint32() & mask
	m.Mask.IPDst = mask
	return m
}

// WithIPSrc returns a copy of m additionally matching a source prefix.
func (m Match) WithIPSrc(addr pkt.IP4, prefixLen int) Match {
	if m.Mask.EthType == 0 {
		m = m.WithEthType(pkt.EtherTypeIPv4)
	}
	mask := prefixMask(prefixLen)
	m.Key.IPSrc = addr.Uint32() & mask
	m.Mask.IPSrc = mask
	return m
}

// WithL4Dst returns a copy of m additionally matching the destination port.
func (m Match) WithL4Dst(port uint16) Match {
	m.Key.L4Dst = port
	m.Mask.L4Dst = 0xffff
	return m
}

// WithL4Src returns a copy of m additionally matching the source port.
func (m Match) WithL4Src(port uint16) Match {
	m.Key.L4Src = port
	m.Mask.L4Src = 0xffff
	return m
}

// WithEthDst returns a copy of m additionally matching the destination MAC.
func (m Match) WithEthDst(mac pkt.MAC) Match {
	m.Key.EthDst = mac
	m.Mask.EthDst = pkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	return m
}

// WithVlan returns a copy of m additionally matching the VLAN id.
func (m Match) WithVlan(vid uint16) Match {
	m.Key.VlanID = vid
	m.Mask.VlanID = 0x0fff
	return m
}

func prefixMask(prefixLen int) uint32 {
	if prefixLen <= 0 {
		return 0
	}
	if prefixLen >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - prefixLen)
}

// Covers reports whether k satisfies the match.
func (m Match) Covers(k *Key) bool {
	return m.Key.Pack().And(m.Mask.Pack()) == k.Pack().And(m.Mask.Pack())
}

// MatchesOnlyInPort reports whether the match constrains nothing beyond the
// ingress port — i.e. it is a per-port catch-all. Used by the p-2-p detector.
func (m Match) MatchesOnlyInPort() bool {
	var zero Packed
	mp := m.Mask.Pack()
	// Clear the in-port bytes and require everything else wildcarded.
	mp[0], mp[1], mp[2], mp[3] = 0, 0, 0, 0
	return m.Mask.InPort == ^uint32(0) && mp == zero
}

// AdmitsInPort reports whether packets arriving on port could satisfy the
// match's in-port constraint (exactly matching, or in-port wildcarded).
func (m Match) AdmitsInPort(port uint32) bool {
	return m.Key.InPort&m.Mask.InPort == port&m.Mask.InPort
}

// Equal reports whether two matches are identical (same key bits under the
// same mask). OpenFlow flow-mod identity is (table, priority, match): this
// provides the match component.
func (m Match) Equal(o Match) bool {
	return m.Mask.Pack() == o.Mask.Pack() &&
		m.Key.Pack().And(m.Mask.Pack()) == o.Key.Pack().And(o.Mask.Pack())
}

// String renders the match in an ovs-ofctl-like syntax.
func (m Match) String() string {
	var parts []string
	if m.Mask.InPort != 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.Key.InPort))
	}
	if m.Mask.EthSrc != (pkt.MAC{}) {
		parts = append(parts, "dl_src="+m.Key.EthSrc.String())
	}
	if m.Mask.EthDst != (pkt.MAC{}) {
		parts = append(parts, "dl_dst="+m.Key.EthDst.String())
	}
	if m.Mask.EthType != 0 {
		parts = append(parts, fmt.Sprintf("dl_type=0x%04x", m.Key.EthType))
	}
	if m.Mask.VlanID != 0 {
		parts = append(parts, fmt.Sprintf("dl_vlan=%d", m.Key.VlanID))
	}
	if m.Mask.IPSrc != 0 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", pkt.IP4FromUint32(m.Key.IPSrc), popcount(m.Mask.IPSrc)))
	}
	if m.Mask.IPDst != 0 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", pkt.IP4FromUint32(m.Key.IPDst), popcount(m.Mask.IPDst)))
	}
	if m.Mask.IPProto != 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.Key.IPProto))
	}
	if m.Mask.L4Src != 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.Key.L4Src))
	}
	if m.Mask.L4Dst != 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.Key.L4Dst))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

func popcount(v uint32) int {
	n := 0
	for v != 0 {
		n += int(v & 1)
		v >>= 1
	}
	return n
}
