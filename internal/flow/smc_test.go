package flow

import (
	"testing"
	"time"

	"ovshighway/internal/pkt"
)

func TestSMCHitMissAndGeneration(t *testing.T) {
	tb := NewTable()
	fl := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	c := NewSMC(256)

	k := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kp := k.Pack()
	h := kp.Hash()
	g := tb.Generation()

	if got := c.Lookup(&kp, h, g); got != nil {
		t.Fatal("cold cache hit")
	}
	c.Insert(&kp, h, fl, g)
	if got := c.Lookup(&kp, h, g); got != fl {
		t.Fatal("warm cache miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// An insertion (which could shadow the cached result) moves the
	// generation and invalidates.
	tb.Add(20, MatchInPort(2), Actions{Output(1)}, 0)
	if got := c.Lookup(&kp, h, tb.Generation()); got != nil {
		t.Fatal("stale entry served after add-generation bump")
	}
	// Re-validation at the new generation hits again.
	c.Insert(&kp, h, fl, tb.Generation())
	if got := c.Lookup(&kp, h, tb.Generation()); got != fl {
		t.Fatal("re-validated entry missed")
	}
}

func TestSMCNeverServesDeadFlow(t *testing.T) {
	tb := NewTable()
	fl := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	other := tb.Add(10, MatchInPort(2), Actions{Output(1)}, 0)
	c := NewSMC(256)

	k1 := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	k2 := key(2, 11, 22, pkt.ProtoUDP, 3, 4)
	kp1, kp2 := k1.Pack(), k2.Pack()
	g := tb.Generation()
	c.Insert(&kp1, kp1.Hash(), fl, g)
	c.Insert(&kp2, kp2.Hash(), other, g)

	// Deleting fl does NOT move the add/modify generation…
	if !tb.DeleteStrict(10, MatchInPort(1)) {
		t.Fatal("delete failed")
	}
	if tb.Generation() != g {
		t.Fatal("delete moved the add/modify generation")
	}
	// …yet its cached entry must never be served again (death mark)…
	if got := c.Lookup(&kp1, kp1.Hash(), tb.Generation()); got != nil {
		t.Fatalf("SMC served removed flow %v", got)
	}
	// …while the unrelated entry keeps hitting: the delete invalidated
	// exactly one entry, not the cache.
	if got := c.Lookup(&kp2, kp2.Hash(), tb.Generation()); got != other {
		t.Fatal("unrelated entry lost to an unrelated delete")
	}
}

// TestSMCSignatureCollisionRejected pins the false-positive handling: a
// probe whose primary signature collides with a cached entry but whose key
// differs must be rejected (secondary hash / coverage verification), never
// served, and counted in FalsePositives.
func TestSMCSignatureCollisionRejected(t *testing.T) {
	tb := NewTable()
	// The flow matches in_port=1 only.
	fl := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	c := NewSMC(8) // tiny: adversarial probes share the bucket set
	g := tb.Generation()

	k1 := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kp1 := k1.Pack()
	c.Insert(&kp1, kp1.Hash(), fl, g)

	// Probe with a DIFFERENT key forging k1's primary hash (adversarial
	// signature collision): in_port=9 is not even covered by the flow.
	k2 := key(9, 11, 22, pkt.ProtoUDP, 1, 2)
	kp2 := k2.Pack()
	if got := c.Lookup(&kp2, kp1.Hash(), g); got != nil {
		t.Fatalf("SMC served a colliding foreign key: %v", got)
	}
	if st := c.Stats(); st.FalsePositives == 0 {
		t.Fatalf("detected collision not counted: %+v", st)
	}
	// The true key still hits.
	if got := c.Lookup(&kp1, kp1.Hash(), g); got != fl {
		t.Fatal("true key rejected")
	}
}

// TestEMCDeathMarkInvalidatesOnlyRemovedFlow is the EMC twin of the SMC
// death-mark test, pinning the delete-churn story end to end: unrelated
// deletes leave the cache hot, and the removed flow's entry dies instantly.
func TestEMCDeathMarkInvalidatesOnlyRemovedFlow(t *testing.T) {
	tb := NewTable()
	fa := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	fb := tb.Add(10, MatchInPort(2), Actions{Output(1)}, 0)
	victim := tb.Add(5, MatchInPort(9), Actions{Output(3)}, 0)
	_ = victim
	c := NewEMC(1024)

	ka := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kb := key(2, 11, 22, pkt.ProtoUDP, 3, 4)
	kpa, kpb := ka.Pack(), kb.Pack()
	g := tb.Generation()
	c.Insert(kpa, kpa.Hash(), fa, g)
	c.Insert(kpb, kpb.Hash(), fb, g)

	// Delete an UNRELATED flow: generation must not move, both entries must
	// keep hitting — this is what the old global-version scheme got wrong.
	if !tb.DeleteStrict(5, MatchInPort(9)) {
		t.Fatal("unrelated delete failed")
	}
	if tb.Generation() != g {
		t.Fatal("delete moved the add/modify generation")
	}
	if c.Lookup(kpa, kpa.Hash(), tb.Generation()) != fa ||
		c.Lookup(kpb, kpb.Hash(), tb.Generation()) != fb {
		t.Fatal("unrelated delete invalidated live EMC entries")
	}

	// Delete a CACHED flow: its entry dies immediately, the sibling lives.
	if !tb.DeleteStrict(10, MatchInPort(1)) {
		t.Fatal("delete failed")
	}
	if got := c.Lookup(kpa, kpa.Hash(), tb.Generation()); got != nil {
		t.Fatalf("EMC served removed flow %v", got)
	}
	if c.Lookup(kpb, kpb.Hash(), tb.Generation()) != fb {
		t.Fatal("sibling entry lost")
	}

	// Expiry death-marks exactly like an explicit delete.
	exp := tb.AddWithTimeouts(10, MatchInPort(3), Actions{Output(1)}, 0, 1, 0, 0)
	kc := key(3, 11, 22, pkt.ProtoUDP, 5, 6)
	kpc := kc.Pack()
	g2 := tb.Generation()
	c.Insert(kpc, kpc.Hash(), exp, g2)
	if c.Lookup(kpc, kpc.Hash(), g2) != exp {
		t.Fatal("entry not cached")
	}
	if n := len(tb.Expire(time.Now().Add(2 * time.Second))); n != 1 {
		t.Fatalf("expired %d flows, want 1", n)
	}
	if tb.Generation() != g2 {
		t.Fatal("expiry moved the add/modify generation")
	}
	if got := c.Lookup(kpc, kpc.Hash(), tb.Generation()); got != nil {
		t.Fatalf("EMC served expired flow %v", got)
	}
}

// TestReplacementDeathMarksOldFlow: modifying a flow (same priority+match)
// must both bump the generation AND death-mark the replaced entry, so
// neither validity path can serve the old actions.
func TestReplacementDeathMarksOldFlow(t *testing.T) {
	tb := NewTable()
	old := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	g := tb.Generation()
	c := NewEMC(64)
	k := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kp := k.Pack()
	c.Insert(kp, kp.Hash(), old, g)

	repl := tb.Add(10, MatchInPort(1), Actions{Output(3)}, 0)
	if tb.Generation() == g {
		t.Fatal("replacement did not bump the generation")
	}
	if !old.Dead() {
		t.Fatal("replaced flow not death-marked")
	}
	if repl.Dead() {
		t.Fatal("replacement flow born dead")
	}
	if got := c.Lookup(kp, kp.Hash(), tb.Generation()); got != nil {
		t.Fatalf("EMC served replaced flow %v", got)
	}
}

// TestClassifierRerankOrdersByHits drives lookups into one of two
// equal-priority subtables, re-ranks, and checks both that the hot subtable
// moved to the front and that lookups stay correct (priority guard).
func TestClassifierRerankOrdersByHits(t *testing.T) {
	tb := NewTable()
	// Two subtables at the same maxPrio (different masks), plus one
	// higher-priority subtable that must stay in front regardless of hits.
	tb.Add(50, MatchInPort(1).WithL4Dst(80), Actions{Output(9)}, 0)
	tb.Add(10, MatchInPort(2), Actions{Output(2)}, 0)                 // mask A
	tb.Add(10, MatchInPort(3).WithIPProto(17), Actions{Output(3)}, 0) // mask B

	// Hammer mask B's flow.
	kb := key(3, 11, 22, pkt.ProtoUDP, 1, 2)
	for i := 0; i < 64; i++ {
		if tb.Lookup(&kb) == nil {
			t.Fatal("lookup lost")
		}
	}
	tb.Rerank()

	snap := tb.snap.Load()
	if len(snap.subtables) != 3 {
		t.Fatalf("subtables = %d, want 3", len(snap.subtables))
	}
	// Priority guard: descending maxPrio must survive ranking.
	for i := 1; i < len(snap.subtables); i++ {
		if snap.subtables[i-1].maxPrio < snap.subtables[i].maxPrio {
			t.Fatal("rerank broke the descending maxPrio invariant")
		}
	}
	if snap.subtables[0].maxPrio != 50 {
		t.Fatal("high-priority subtable displaced from the front")
	}
	// Within the equal-priority run, the hammered mask leads.
	hot := snap.subtables[1]
	if hot.hits.Load() < 64 {
		t.Fatalf("hot subtable not ranked first within its priority run (hits=%d)", hot.hits.Load())
	}

	// Rerank must not move the generation or the version (not a mutation).
	g, v := tb.Generation(), tb.Version()
	tb.Rerank()
	if tb.Generation() != g || tb.Version() != v {
		t.Fatal("rerank counted as a mutation")
	}
	// And lookups still resolve by priority, not rank.
	khi := key(1, 11, 22, pkt.ProtoUDP, 1, 80)
	if f := tb.Lookup(&khi); f == nil || f.Priority != 50 {
		t.Fatalf("priority winner lost after rerank: %v", f)
	}
}

// TestRerankPersistsAcrossRebuild: hit counters are keyed by mask on the
// table, so an unrelated mutation (rebuild) must not reset the ranking.
func TestRerankPersistsAcrossRebuild(t *testing.T) {
	tb := NewTable()
	tb.Add(10, MatchInPort(2), Actions{Output(2)}, 0)
	tb.Add(10, MatchInPort(3).WithIPProto(17), Actions{Output(3)}, 0)
	kb := key(3, 11, 22, pkt.ProtoUDP, 1, 2)
	for i := 0; i < 64; i++ {
		tb.Lookup(&kb)
	}
	// Unrelated mutation rebuilds the snapshot.
	tb.Add(10, MatchInPort(4), Actions{Output(4)}, 0)
	tb.Rerank()
	first := tb.snap.Load().subtables[0]
	if first.hits.Load() < 64 {
		t.Fatalf("hit-ranked subtable lost its counter across a rebuild (hits=%d)", first.hits.Load())
	}
}

// TestEMCEvictionDemotesVictimToSMC: replacing a LIVE EMC entry returns the
// victim, and inserting it into the SMC (as the PMD does) lets the evicted
// flow keep resolving in the second tier without a classifier walk —
// asserted via the SMC hit counter.
func TestEMCEvictionDemotesVictimToSMC(t *testing.T) {
	tb := NewTable()
	fl := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	gen := tb.Generation()

	emc := NewEMC(1) // minimum size: 4 entries, 2 two-way sets
	smc := NewSMC(64)

	// Collect three distinct keys landing in the same EMC set.
	var keys []Packed
	var hashes []uint32
	want := uint32(0)
	for port := uint16(1); len(keys) < 3 && port < 10000; port++ {
		k := Key{InPort: 1, EthType: 0x0800, IPProto: 17, L4Src: port, L4Dst: 9000}
		kp := k.Pack()
		h := kp.Hash()
		set := h & 1
		if len(keys) == 0 {
			want = set
		}
		if set == want {
			keys = append(keys, kp)
			hashes = append(hashes, h)
		}
	}
	if len(keys) < 3 {
		t.Fatal("could not find three keys sharing an EMC set")
	}

	if _, _, ev := emc.Insert(keys[0], hashes[0], fl, gen); ev {
		t.Fatal("insertion into an empty set reported an eviction")
	}
	if _, _, ev := emc.Insert(keys[1], hashes[1], fl, gen); ev {
		t.Fatal("insertion into a half-empty set reported an eviction")
	}
	vk, vf, ev := emc.Insert(keys[2], hashes[2], fl, gen)
	if !ev || vf != fl || vk != keys[0] {
		t.Fatalf("third insertion: evicted=%v victim=%v key match=%v, want eviction of the oldest entry",
			ev, vf, vk == keys[0])
	}

	// The PMD wiring: the victim demotes into the SMC at the same gen.
	smc.Insert(&vk, vk.Hash(), vf, gen)

	// The evicted key now misses the EMC but hits the SMC.
	if emc.Lookup(keys[0], hashes[0], gen) != nil {
		t.Fatal("evicted key still hits the EMC")
	}
	if got := smc.Lookup(&keys[0], hashes[0], gen); got != fl {
		t.Fatalf("demoted victim not served by the SMC (got %v)", got)
	}
	if st := smc.Stats(); st.Hits != 1 {
		t.Fatalf("SMC hits = %d, want 1 (the demoted victim)", st.Hits)
	}
}
