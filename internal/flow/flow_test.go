package flow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ovshighway/internal/pkt"
)

func key(inPort uint32, src, dst uint32, proto uint8, l4src, l4dst uint16) Key {
	return Key{
		InPort: inPort, EthType: pkt.EtherTypeIPv4,
		IPSrc: src, IPDst: dst, IPProto: proto,
		L4Src: l4src, L4Dst: l4dst,
	}
}

func TestMatchInPortCovers(t *testing.T) {
	m := MatchInPort(3)
	k1 := key(3, 1, 2, pkt.ProtoUDP, 10, 20)
	k2 := key(4, 1, 2, pkt.ProtoUDP, 10, 20)
	if !m.Covers(&k1) {
		t.Error("in_port=3 should cover port-3 packet")
	}
	if m.Covers(&k2) {
		t.Error("in_port=3 should not cover port-4 packet")
	}
	if !m.MatchesOnlyInPort() {
		t.Error("MatchInPort should be in-port-only")
	}
}

func TestMatchAllCoversEverything(t *testing.T) {
	m := MatchAll()
	k := key(9, 123, 456, pkt.ProtoTCP, 1, 2)
	if !m.Covers(&k) {
		t.Error("MatchAll must cover any key")
	}
	if m.MatchesOnlyInPort() {
		t.Error("MatchAll does not pin in-port")
	}
	if !m.AdmitsInPort(77) {
		t.Error("MatchAll admits every port")
	}
}

func TestMatchBuildersRefine(t *testing.T) {
	m := MatchInPort(1).WithIPProto(pkt.ProtoUDP).WithL4Dst(80)
	if m.MatchesOnlyInPort() {
		t.Error("refined match claims in-port-only")
	}
	hit := key(1, 5, 6, pkt.ProtoUDP, 1000, 80)
	missProto := key(1, 5, 6, pkt.ProtoTCP, 1000, 80)
	missPort := key(1, 5, 6, pkt.ProtoUDP, 1000, 81)
	if !m.Covers(&hit) {
		t.Error("should cover UDP to :80")
	}
	if m.Covers(&missProto) || m.Covers(&missPort) {
		t.Error("covers packets it should not")
	}
	// WithIPProto implies EthType IPv4.
	nonIP := Key{InPort: 1, EthType: pkt.EtherTypeARP}
	if m.Covers(&nonIP) {
		t.Error("IP match covers ARP packet")
	}
}

func TestMatchIPPrefix(t *testing.T) {
	m := MatchAll().WithIPDst(pkt.IP4{10, 1, 2, 3}, 16)
	in := key(1, 0, pkt.IP4{10, 1, 200, 9}.Uint32(), 0, 0, 0)
	out := key(1, 0, pkt.IP4{10, 2, 2, 3}.Uint32(), 0, 0, 0)
	if !m.Covers(&in) {
		t.Error("prefix /16 should cover 10.1.200.9")
	}
	if m.Covers(&out) {
		t.Error("prefix /16 should not cover 10.2.2.3")
	}
}

func TestPrefixMaskEdges(t *testing.T) {
	if prefixMask(0) != 0 {
		t.Error("/0 mask")
	}
	if prefixMask(32) != ^uint32(0) {
		t.Error("/32 mask")
	}
	if prefixMask(24) != 0xffffff00 {
		t.Errorf("/24 mask = %08x", prefixMask(24))
	}
	if prefixMask(-3) != 0 || prefixMask(99) != ^uint32(0) {
		t.Error("out-of-range prefix lens not clamped")
	}
}

func TestMatchEqual(t *testing.T) {
	a := MatchInPort(2).WithL4Dst(80)
	b := MatchInPort(2).WithL4Dst(80)
	c := MatchInPort(2).WithL4Dst(81)
	if !a.Equal(b) {
		t.Error("identical matches not equal")
	}
	if a.Equal(c) {
		t.Error("different matches equal")
	}
	// Different irrelevant (masked-out) key bits must not matter.
	d := b
	d.Key.IPSrc = 999 // not covered by mask
	if !a.Equal(d) {
		t.Error("masked-out bits affect equality")
	}
}

func TestMatchString(t *testing.T) {
	m := MatchInPort(7).WithIPProto(pkt.ProtoTCP).WithL4Dst(80)
	s := m.String()
	for _, want := range []string{"in_port=7", "nw_proto=6", "tp_dst=80", "dl_type=0x0800"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if MatchAll().String() != "any" {
		t.Errorf("MatchAll().String() = %q", MatchAll().String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestActionsHelpers(t *testing.T) {
	as := Actions{Output(5)}
	if !as.IsPureOutputTo(5) {
		t.Error("pure output not recognized")
	}
	if as.IsPureOutputTo(6) {
		t.Error("wrong port accepted")
	}
	if p, ok := as.SoleOutput(); !ok || p != 5 {
		t.Error("SoleOutput failed")
	}
	multi := Actions{SetEthDst(pkt.MAC{1}), Output(5)}
	if multi.IsPureOutputTo(5) {
		t.Error("multi-action treated as pure output")
	}
	if _, ok := multi.SoleOutput(); ok {
		t.Error("SoleOutput on multi-action list")
	}
	if got := multi.OutputPorts(); len(got) != 1 || got[0] != 5 {
		t.Errorf("OutputPorts = %v", got)
	}
	if Actions(nil).String() != "drop" {
		t.Error("empty actions should render as drop")
	}
	if !as.Equal(Actions{Output(5)}) || as.Equal(multi) {
		t.Error("Actions.Equal wrong")
	}
}

func TestVlanActions(t *testing.T) {
	// Constructors mask to the 12-bit vid space.
	if PushVlan(0xffff).Vlan != 0x0fff || SetVlan(0x1005).Vlan != 5 {
		t.Error("vid not masked to 12 bits")
	}
	// The trunk-lane rule shapes must never look like p-2-p candidates.
	push := Actions{PushVlan(7), Output(3)}
	if push.IsPureOutputTo(3) {
		t.Error("push+output treated as pure output — the detector would bypass a trunk hop")
	}
	pop := Actions{PopVlan(), Output(4)}
	if pop.IsPureOutputTo(4) {
		t.Error("pop+output treated as pure output")
	}
	// ovs-ofctl-style rendering.
	if got := push.String(); got != "push_vlan:7,output:3" {
		t.Errorf("push String = %q", got)
	}
	if got := (Actions{PopVlan()}).String(); got != "strip_vlan" {
		t.Errorf("pop String = %q", got)
	}
	if got := (Actions{SetVlan(9)}).String(); got != "mod_vlan_vid:9" {
		t.Errorf("set String = %q", got)
	}
}

func TestTableLookupPriority(t *testing.T) {
	tb := NewTable()
	lo := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	hi := tb.Add(100, MatchInPort(1).WithIPProto(pkt.ProtoTCP), Actions{Output(3)}, 0)

	tcp := key(1, 1, 2, pkt.ProtoTCP, 10, 20)
	udp := key(1, 1, 2, pkt.ProtoUDP, 10, 20)
	if got := tb.Lookup(&tcp); got != hi {
		t.Errorf("TCP lookup = %v, want high-priority flow", got)
	}
	if got := tb.Lookup(&udp); got != lo {
		t.Errorf("UDP lookup = %v, want low-priority flow", got)
	}
	other := key(2, 1, 2, pkt.ProtoTCP, 10, 20)
	if got := tb.Lookup(&other); got != nil {
		t.Errorf("port-2 lookup = %v, want nil", got)
	}
}

func TestTableAddReplacesSameMatch(t *testing.T) {
	tb := NewTable()
	tb.Add(10, MatchInPort(1), Actions{Output(2)}, 1)
	f2 := tb.Add(10, MatchInPort(1), Actions{Output(3)}, 2)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replacement)", tb.Len())
	}
	k := key(1, 0, 0, 0, 0, 0)
	if got := tb.Lookup(&k); got != f2 {
		t.Error("lookup did not see replacement")
	}
	// Same match at a different priority is a distinct flow.
	tb.Add(20, MatchInPort(1), Actions{Output(4)}, 3)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestTableDeleteStrict(t *testing.T) {
	tb := NewTable()
	tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	if !tb.DeleteStrict(10, MatchInPort(1)) {
		t.Fatal("strict delete missed existing flow")
	}
	if tb.DeleteStrict(10, MatchInPort(1)) {
		t.Fatal("strict delete hit twice")
	}
	k := key(1, 0, 0, 0, 0, 0)
	if tb.Lookup(&k) != nil {
		t.Fatal("deleted flow still matches")
	}
}

func TestTableDeleteWhere(t *testing.T) {
	tb := NewTable()
	tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	tb.Add(10, MatchInPort(2), Actions{Output(1)}, 0)
	tb.Add(10, MatchInPort(3), Actions{Output(4)}, 0)
	n := tb.DeleteWhere(func(f *Flow) bool {
		p, ok := f.Actions.SoleOutput()
		return ok && p <= 2
	})
	if n != 2 {
		t.Fatalf("DeleteWhere = %d, want 2", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
}

type recListener struct {
	added, removed []*Flow
}

func (r *recListener) FlowAdded(f *Flow)   { r.added = append(r.added, f) }
func (r *recListener) FlowRemoved(f *Flow) { r.removed = append(r.removed, f) }

func TestTableListenerEvents(t *testing.T) {
	tb := NewTable()
	rec := &recListener{}
	tb.AddListener(rec)

	f1 := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	if len(rec.added) != 1 || rec.added[0] != f1 {
		t.Fatal("add event missing")
	}
	// Replacement fires removed+added.
	f2 := tb.Add(10, MatchInPort(1), Actions{Output(3)}, 0)
	if len(rec.removed) != 1 || rec.removed[0] != f1 || len(rec.added) != 2 || rec.added[1] != f2 {
		t.Fatalf("replacement events wrong: added=%d removed=%d", len(rec.added), len(rec.removed))
	}
	tb.DeleteStrict(10, MatchInPort(1))
	if len(rec.removed) != 2 || rec.removed[1] != f2 {
		t.Fatal("delete event missing")
	}
}

func TestTableVersionBumps(t *testing.T) {
	tb := NewTable()
	v0 := tb.Version()
	tb.Add(1, MatchAll(), Actions{Output(1)}, 0)
	if tb.Version() == v0 {
		t.Fatal("version did not change on add")
	}
	v1 := tb.Version()
	tb.DeleteStrict(1, MatchAll())
	if tb.Version() == v1 {
		t.Fatal("version did not change on delete")
	}
	if tb.DeleteStrict(1, MatchAll()) {
		t.Fatal("no-op delete returned true")
	}
}

func TestSnapshotSortedByPriority(t *testing.T) {
	tb := NewTable()
	tb.Add(5, MatchInPort(1), Actions{Output(2)}, 0)
	tb.Add(50, MatchInPort(2), Actions{Output(3)}, 0)
	tb.Add(25, MatchInPort(3), Actions{Output(4)}, 0)
	snap := tb.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Priority < snap[i].Priority {
			t.Fatal("snapshot not sorted by descending priority")
		}
	}
}

// refLookup is the obviously-correct reference classifier: linear scan,
// highest priority wins, earlier insert wins ties.
func refLookup(flows []*Flow, k *Key) *Flow {
	var best *Flow
	for _, f := range flows {
		if f.Match.Covers(k) && (best == nil || f.Priority > best.Priority) {
			best = f
		}
	}
	return best
}

// TestQuickClassifierAgainstReference generates random rule sets and random
// packets and cross-checks the TSS classifier with a linear scan.
func TestQuickClassifierAgainstReference(t *testing.T) {
	gen := func(rng *rand.Rand) Match {
		m := MatchAll()
		if rng.Intn(2) == 0 {
			m = MatchInPort(uint32(rng.Intn(4)))
		}
		if rng.Intn(3) == 0 {
			m = m.WithIPProto([]uint8{pkt.ProtoUDP, pkt.ProtoTCP}[rng.Intn(2)])
		}
		if rng.Intn(3) == 0 {
			m = m.WithL4Dst(uint16(rng.Intn(3) + 80))
		}
		if rng.Intn(4) == 0 {
			m = m.WithIPDst(pkt.IP4{10, byte(rng.Intn(3)), 0, 0}, 16)
		}
		return m
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable()
		var flows []*Flow
		n := rng.Intn(24) + 1
		for i := 0; i < n; i++ {
			m := gen(rng)
			prio := uint16(rng.Intn(8) * 10)
			fl := tb.Add(prio, m, Actions{Output(uint32(rng.Intn(8)))}, uint64(i))
			// Mirror replacement semantics in the reference list.
			for j, old := range flows {
				if old.Priority == prio && old.Match.Equal(m) {
					flows = append(flows[:j], flows[j+1:]...)
					break
				}
			}
			flows = append(flows, fl)
		}
		for trial := 0; trial < 50; trial++ {
			k := key(uint32(rng.Intn(4)),
				rng.Uint32(), pkt.IP4{10, byte(rng.Intn(3)), 1, 1}.Uint32(),
				[]uint8{pkt.ProtoUDP, pkt.ProtoTCP}[rng.Intn(2)],
				uint16(rng.Intn(1000)), uint16(rng.Intn(3)+80))
			got := tb.Lookup(&k)
			want := refLookup(flows, &k)
			// Both must agree on the winning priority (ties between equal
			// priorities may legitimately differ in which flow wins).
			switch {
			case got == nil && want == nil:
			case got == nil || want == nil:
				return false
			case got.Priority != want.Priority:
				return false
			case !got.Match.Covers(&k):
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEMCHitMissFlush(t *testing.T) {
	tb := NewTable()
	fl := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	c := NewEMC(1024)

	k := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kp := k.Pack()
	h := kp.Hash()
	v := tb.Version()

	if got := c.Lookup(kp, h, v); got != nil {
		t.Fatal("cold cache hit")
	}
	c.Insert(kp, h, fl, v)
	if got := c.Lookup(kp, h, v); got != fl {
		t.Fatal("warm cache miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Any table change invalidates.
	tb.Add(20, MatchInPort(2), Actions{Output(1)}, 0)
	if got := c.Lookup(kp, h, tb.Version()); got != nil {
		t.Fatal("stale entry survived version bump")
	}
}

func TestEMCNilNotCached(t *testing.T) {
	c := NewEMC(64)
	k := key(1, 0, 0, 0, 0, 0)
	kp := k.Pack()
	c.Insert(kp, kp.Hash(), nil, 0)
	if got := c.Lookup(kp, kp.Hash(), 0); got != nil {
		t.Fatal("nil flow was cached")
	}
}

func TestEMCConflictEviction(t *testing.T) {
	c := NewEMC(4) // tiny: 4 entries = 2 sets * 2 ways
	tb := NewTable()
	fl := tb.Add(1, MatchAll(), Actions{Output(1)}, 0)
	v := tb.Version()

	// Fill one set with three entries mapping to the same bucket.
	var keys []Packed
	h := uint32(0) // same hash → same set
	for i := 0; i < 3; i++ {
		k := key(uint32(i), 0, 0, 0, 0, 0)
		kp := k.Pack()
		keys = append(keys, kp)
		c.Insert(kp, h, fl, v)
	}
	// Newest two must be present, oldest evicted.
	if c.Lookup(keys[2], h, v) != fl || c.Lookup(keys[1], h, v) != fl {
		t.Fatal("recent entries evicted")
	}
	if c.Lookup(keys[0], h, v) != nil {
		t.Fatal("oldest entry survived 2-way eviction")
	}
	if c.Stats().Conflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

// TestEMCGenerationInvalidatesOnlyStaleEntries pins the per-entry
// generation-tag semantics: a table mutation must stop stale entries from
// hitting, but entries re-validated after the mutation keep hitting — the
// mutation no longer wipes the whole cache.
func TestEMCGenerationInvalidatesOnlyStaleEntries(t *testing.T) {
	tb := NewTable()
	fa := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	fb := tb.Add(10, MatchInPort(2), Actions{Output(1)}, 0)
	c := NewEMC(1024)

	ka := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kb := key(2, 11, 22, pkt.ProtoUDP, 3, 4)
	kpa, kpb := ka.Pack(), kb.Pack()
	v1 := tb.Version()
	c.Insert(kpa, kpa.Hash(), fa, v1)
	c.Insert(kpb, kpb.Hash(), fb, v1)

	// Mutate the table: both cached entries are now stale.
	tb.Add(30, MatchInPort(3), Actions{Output(1)}, 0)
	v2 := tb.Version()
	if v2 == v1 {
		t.Fatal("mutation did not bump version")
	}
	if c.Lookup(kpa, kpa.Hash(), v2) != nil || c.Lookup(kpb, kpb.Hash(), v2) != nil {
		t.Fatal("stale entry served after mutation")
	}

	// Re-validate only A at v2. B must stay invalid, A must hit — i.e. the
	// re-validation did not depend on a whole-cache flush and did not
	// resurrect B.
	c.Insert(kpa, kpa.Hash(), fa, v2)
	if c.Lookup(kpa, kpa.Hash(), v2) != fa {
		t.Fatal("re-validated entry missed")
	}
	if c.Lookup(kpb, kpb.Hash(), v2) != nil {
		t.Fatal("entry from the old generation resurrected")
	}
	// And another mutation invalidates A's v2 entry in turn.
	tb.Add(40, MatchInPort(4), Actions{Output(1)}, 0)
	if c.Lookup(kpa, kpa.Hash(), tb.Version()) != nil {
		t.Fatal("v2 entry served at v3")
	}
}

// TestEMCNeverServesRemovedFlow pins the safety property the PMD relies on:
// once a flow is deleted (version bump), no lookup at the new version may
// return it, so the datapath never executes actions of a removed flow.
func TestEMCNeverServesRemovedFlow(t *testing.T) {
	tb := NewTable()
	fl := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	c := NewEMC(64)

	k := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kp := k.Pack()
	v1 := tb.Version()
	c.Insert(kp, kp.Hash(), fl, v1)
	if c.Lookup(kp, kp.Hash(), v1) != fl {
		t.Fatal("warm cache missed")
	}

	if !tb.DeleteStrict(10, MatchInPort(1)) {
		t.Fatal("delete failed")
	}
	if got := c.Lookup(kp, kp.Hash(), tb.Version()); got != nil {
		t.Fatalf("EMC served removed flow %v", got)
	}
	// The PMD pattern after the miss: classifier lookup (nil — flow is gone),
	// so nothing is re-cached and a later lookup still misses.
	if tb.Lookup(&k) != nil {
		t.Fatal("classifier still knows removed flow")
	}
	if c.Lookup(kp, kp.Hash(), tb.Version()) != nil {
		t.Fatal("removed flow reappeared")
	}
}

// TestEMCInsertPrefersStaleVictim checks that inserting into a set whose
// way 0 is stale overwrites the stale way and leaves a live way 1 intact.
func TestEMCInsertPrefersStaleVictim(t *testing.T) {
	tb := NewTable()
	fl := tb.Add(1, MatchAll(), Actions{Output(1)}, 0)
	c := NewEMC(4) // 2 sets × 2 ways
	v1 := tb.Version()

	h := uint32(0) // same set for all keys
	key0 := key(10, 0, 0, 0, 0, 0)
	key1 := key(11, 0, 0, 0, 0, 0)
	k0, k1 := key0.Pack(), key1.Pack()
	c.Insert(k0, h, fl, v1)

	tb.Add(2, MatchInPort(9), Actions{Output(1)}, 0) // version gap v1 → v3
	fl2 := tb.Add(3, MatchInPort(8), Actions{Output(1)}, 0)
	v3 := tb.Version()

	// k1 lands at v3; k0's entry (v1) is stale and must be the victim even
	// though it sits in way 0.
	c.Insert(k1, h, fl2, v3)
	if c.Lookup(k1, h, v3) != fl2 {
		t.Fatal("fresh entry missing")
	}
	// A second fresh insert shifts into the empty way — no conflict yet.
	c.Insert(k0, h, fl2, v3)
	if c.Lookup(k0, h, v3) != fl2 || c.Lookup(k1, h, v3) != fl2 {
		t.Fatal("live entries lost")
	}
	if got := c.Stats().Conflicts; got != 0 {
		t.Fatalf("conflicts = %d, want 0 (stale/empty ways were available)", got)
	}
	// A third insert finds both ways live at v3: now it must conflict-evict.
	key2 := key(12, 0, 0, 0, 0, 0)
	k2 := key2.Pack()
	c.Insert(k2, h, fl2, v3)
	if got := c.Stats().Conflicts; got != 1 {
		t.Fatalf("conflicts = %d, want 1 (both ways were live)", got)
	}
	if c.Lookup(k2, h, v3) != fl2 || c.Lookup(k0, h, v3) != fl2 {
		t.Fatal("newest entries must survive the conflict eviction")
	}
	if c.Lookup(k1, h, v3) != nil {
		t.Fatal("oldest live entry must be the conflict victim")
	}
}

func TestExtractKeyFromParsedPacket(t *testing.T) {
	buf := make([]byte, 256)
	n, err := pkt.BuildUDP(buf, pkt.UDPSpec{
		SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
		SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var p pkt.Parser
	if err := p.Parse(buf[:n]); err != nil {
		t.Fatal(err)
	}
	k := ExtractKey(&p, 7)
	if k.InPort != 7 || k.EthType != pkt.EtherTypeIPv4 ||
		k.IPSrc != (pkt.IP4{10, 0, 0, 1}).Uint32() ||
		k.IPProto != pkt.ProtoUDP || k.L4Src != 1000 || k.L4Dst != 2000 {
		t.Fatalf("key = %+v", k)
	}
}

func TestFlowStatsCounters(t *testing.T) {
	tb := NewTable()
	f := tb.Add(1, MatchAll(), Actions{Output(1)}, 0)
	f.Packets.Add(10)
	f.Bytes.Add(640)
	p, b := f.Stats()
	if p != 10 || b != 640 {
		t.Fatalf("stats = %d/%d", p, b)
	}
}

func BenchmarkTableLookupEMCMiss(b *testing.B) {
	tb := NewTable()
	for i := 0; i < 32; i++ {
		tb.Add(uint16(i), MatchInPort(uint32(i)).WithL4Dst(uint16(80+i)), Actions{Output(uint32(i + 1))}, 0)
	}
	k := key(5, 1, 2, pkt.ProtoUDP, 99, 85)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tb.Lookup(&k) == nil {
			b.Fatal("no match")
		}
	}
}

func BenchmarkEMCLookupHit(b *testing.B) {
	tb := NewTable()
	fl := tb.Add(1, MatchAll(), Actions{Output(1)}, 0)
	c := NewEMC(8192)
	k := key(1, 11, 22, pkt.ProtoUDP, 1, 2)
	kp := k.Pack()
	h := kp.Hash()
	v := tb.Version()
	c.Insert(kp, h, fl, v)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Lookup(kp, h, v) == nil {
			b.Fatal("miss")
		}
	}
}

func TestAddBatchInsertsWithOneRebuild(t *testing.T) {
	tb := NewTable()
	v0 := tb.Version()
	specs := make([]FlowSpec, 8)
	for i := range specs {
		specs[i] = FlowSpec{Priority: 10, Match: MatchInPort(uint32(i + 1)), Actions: Actions{Output(uint32(i + 2))}}
	}
	flows := tb.AddBatch(specs)
	if len(flows) != len(specs) {
		t.Fatalf("AddBatch returned %d flows, want %d", len(flows), len(specs))
	}
	if got := tb.Version() - v0; got != 1 {
		t.Fatalf("AddBatch bumped the version %d times, want 1 rebuild", got)
	}
	if tb.Len() != len(specs) {
		t.Fatalf("table has %d flows, want %d", tb.Len(), len(specs))
	}
	for i := range specs {
		k := key(uint32(i+1), 1, 2, pkt.ProtoUDP, 10, 20)
		if f := tb.Lookup(&k); f != flows[i] {
			t.Fatalf("lookup in_port=%d returned %v, want batch flow %d", i+1, f, i)
		}
	}
}

func TestAddBatchReplaceSemantics(t *testing.T) {
	tb := NewTable()
	rec := &recListener{}
	old := tb.Add(10, MatchInPort(1), Actions{Output(2)}, 0)
	tb.AddListener(rec)

	// Second spec replaces the pre-existing flow; the third replaces the
	// first spec of this very batch (later spec wins, as sequential Adds).
	flows := tb.AddBatch([]FlowSpec{
		{Priority: 10, Match: MatchInPort(5), Actions: Actions{Output(6)}},
		{Priority: 10, Match: MatchInPort(1), Actions: Actions{Output(3)}},
		{Priority: 10, Match: MatchInPort(5), Actions: Actions{Output(7)}},
	})
	if tb.Len() != 2 {
		t.Fatalf("table has %d flows, want 2", tb.Len())
	}
	k := key(1, 1, 2, pkt.ProtoUDP, 10, 20)
	if f := tb.Lookup(&k); f != flows[1] {
		t.Fatalf("in_port=1 lookup = %v, want replacement flow", f)
	}
	k5 := key(5, 1, 2, pkt.ProtoUDP, 10, 20)
	if f := tb.Lookup(&k5); f != flows[2] {
		t.Fatalf("in_port=5 lookup = %v, want last in-batch flow", f)
	}
	wantAdded := []*Flow{flows[0], flows[1], flows[2]}
	wantRemoved := []*Flow{old, flows[0]}
	if len(rec.added) != len(wantAdded) || len(rec.removed) != len(wantRemoved) {
		t.Fatalf("listener saw %d added / %d removed, want %d / %d",
			len(rec.added), len(rec.removed), len(wantAdded), len(wantRemoved))
	}
	for i := range wantAdded {
		if rec.added[i] != wantAdded[i] {
			t.Fatalf("added[%d] mismatch", i)
		}
	}
	for i := range wantRemoved {
		if rec.removed[i] != wantRemoved[i] {
			t.Fatalf("removed[%d] mismatch", i)
		}
	}
}

func TestAddBatchEmpty(t *testing.T) {
	tb := NewTable()
	v0 := tb.Version()
	if got := tb.AddBatch(nil); got != nil {
		t.Fatalf("AddBatch(nil) = %v, want nil", got)
	}
	if tb.Version() != v0 {
		t.Fatal("AddBatch(nil) must not rebuild")
	}
}
