package graph

import (
	"fmt"
	"math"
)

// PlaceOptions tunes the placement optimizer beyond plain crossing
// minimization.
type PlaceOptions struct {
	// Dist returns the fabric distance between two DISTINCT nodes (indexes
	// into the nodes slice passed to PlaceWith): the hop cost a crossing
	// between them pays. In a leaf–spine fabric a leaf–leaf crossing relays
	// through the spine (cost 2) while a leaf–spine crossing is direct
	// (cost 1); in a mesh every crossing costs 1. Nil means uniform cost 1,
	// which degenerates to crossing-count minimization.
	Dist func(a, b int) int
	// NodeLoad is measured per-node background load in VNF-equivalents
	// (indexed like nodes; nil or short = zero). The balance constraint
	// counts it: a node already busy — e.g. per the vswitch port counters of
	// deployments it hosts — receives correspondingly fewer new VNFs, which
	// is what models heterogeneous chains sharing a cluster.
	NodeLoad []float64
	// Excluded marks nodes (indexed like nodes; nil or short = none) that
	// must not receive any unpinned VNF — cordoned for decommission, or
	// carrying failed trunk slots. Exclusion gates new assignment only:
	// VNFs already pinned to an excluded node stay there, and the balance
	// average is computed over the eligible nodes alone. Excluding every
	// node is an error.
	Excluded []bool
}

// Place assigns a node to every VNF of the graph, minimizing the number of
// cross-node edges (each crossing costs one trunk lane and rides the shared
// uplink) while keeping the node loads balanced: node VNF counts differ by
// at most one. It is a Kernighan–Lin-style heuristic: start from the naive
// contiguous split in VNF order, then greedily apply balance-preserving
// single moves and pairwise swaps until no move reduces the crossing count.
//
// VNFs whose Node is already set are pinned and never moved (their node
// must appear in nodes). NIC endpoints act as pinned anchors on the node
// nicNode maps them to; NICs absent from nicNode exert no pull. The final
// placement is written into g.VNFs[i].Node and the resulting crossing count
// returned.
func (g *Graph) Place(nodes []string, nicNode map[string]string) (int, error) {
	return g.PlaceWith(nodes, nicNode, PlaceOptions{})
}

// PlaceWith is Place with fabric-distance-aware edge costs and
// load-weighted balance (see PlaceOptions). The returned count is still the
// number of crossings (lanes a deployer pays), not the weighted hop cost
// the optimizer minimized.
func (g *Graph) PlaceWith(nodes []string, nicNode map[string]string, opts PlaceOptions) (int, error) {
	if len(nodes) == 0 {
		return 0, fmt.Errorf("graph: place needs at least one node")
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	nodeIdx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		if n == "" {
			return 0, fmt.Errorf("graph: place: empty node name")
		}
		if _, dup := nodeIdx[n]; dup {
			return 0, fmt.Errorf("graph: place: duplicate node %q", n)
		}
		nodeIdx[n] = i
	}

	nv := len(g.VNFs)
	assign := make([]int, nv)  // VNF index → node index
	pinned := make([]bool, nv) // placement fixed by the caller
	byName := make(map[string]int, nv)
	for i, v := range g.VNFs {
		byName[v.Name] = i
		if v.Node != "" {
			ni, ok := nodeIdx[v.Node]
			if !ok {
				return 0, fmt.Errorf("graph: place: VNF %q pinned to unknown node %q", v.Name, v.Node)
			}
			assign[i] = ni
			pinned[i] = true
		}
	}

	// Adjacency: VNF↔VNF edges by index; NIC-anchored edges pull toward a
	// fixed node. Parallel edges accumulate weight.
	type anchor struct {
		node   int
		weight int
	}
	adj := make([][]int, nv) // neighbor VNF indexes, one entry per edge
	anchors := make(map[int][]anchor)
	for _, e := range g.Edges {
		av, aIsVNF := byName[e.A.Name], e.A.Kind == EpVNF
		bv, bIsVNF := byName[e.B.Name], e.B.Kind == EpVNF
		switch {
		case aIsVNF && bIsVNF:
			adj[av] = append(adj[av], bv)
			adj[bv] = append(adj[bv], av)
		case aIsVNF && !bIsVNF:
			if n, ok := nicNode[e.B.Name]; ok {
				if ni, ok := nodeIdx[n]; ok {
					anchors[av] = append(anchors[av], anchor{node: ni, weight: 1})
				}
			}
		case bIsVNF && !aIsVNF:
			if n, ok := nicNode[e.A.Name]; ok {
				if ni, ok := nodeIdx[n]; ok {
					anchors[bv] = append(anchors[bv], anchor{node: ni, weight: 1})
				}
			}
		}
	}

	// Fabric distance: 0 on-node, opts.Dist (or 1) across nodes.
	dist := func(a, b int) int {
		if a == b {
			return 0
		}
		if opts.Dist != nil {
			return opts.Dist(a, b)
		}
		return 1
	}

	// Eligible nodes: the ones unpinned VNFs may land on. Pinned VNFs on
	// excluded nodes stay put (the caller asked for that placement), so the
	// invariant the move/swap phases rely on is only that no UNPINNED VNF
	// ever sits on an excluded node.
	excl := func(n int) bool { return n < len(opts.Excluded) && opts.Excluded[n] }
	var elig []int
	for n := range nodes {
		if !excl(n) {
			elig = append(elig, n)
		}
	}
	if len(elig) == 0 {
		return 0, fmt.Errorf("graph: place: every node is excluded")
	}

	// Balanced initial assignment: distribute the unpinned VNFs in listed
	// order over the eligible nodes so total per-node loads (existing
	// background load plus one per VNF) stay within [floor,ceil] of the
	// per-eligible-node average — the naive contiguous split Place must
	// beat. Mass parked on excluded nodes is left out of the average: it
	// can neither receive nor shed unpinned VNFs.
	sizes := make([]float64, len(nodes))
	for n := range nodes {
		if n < len(opts.NodeLoad) && opts.NodeLoad[n] > 0 {
			sizes[n] = opts.NodeLoad[n]
		}
	}
	for i := range g.VNFs {
		if pinned[i] {
			sizes[assign[i]]++
		}
	}
	total := 0.0
	for _, n := range elig {
		total += sizes[n]
	}
	for i := range g.VNFs {
		if !pinned[i] {
			total++
		}
	}
	ceil := math.Ceil(total / float64(len(elig)))
	ti := 0
	for i := range g.VNFs {
		if pinned[i] {
			continue
		}
		for ti < len(elig)-1 && sizes[elig[ti]] >= ceil {
			ti++
		}
		assign[i] = elig[ti]
		sizes[elig[ti]]++
	}

	// cost(i, node) = total fabric distance of i's incident VNF edges to
	// their peers' nodes, plus NIC anchors pulling from their own distances.
	extCost := func(i, node int) int {
		c := 0
		for _, peer := range adj[i] {
			c += dist(node, assign[peer])
		}
		for _, a := range anchors[i] {
			c += a.weight * dist(node, a.node)
		}
		return c
	}
	floor := math.Floor(total / float64(len(elig)))

	// swapGain evaluates the crossing reduction of exchanging i and j
	// (positive = fewer crossings). The swap is applied temporarily so
	// edges between i and j are counted consistently.
	swapGain := func(i, j int) int {
		ni, nj := assign[i], assign[j]
		before := extCost(i, ni) + extCost(j, nj)
		assign[i], assign[j] = nj, ni
		after := extCost(i, nj) + extCost(j, ni)
		assign[i], assign[j] = ni, nj
		return before - after
	}

	// Improvement rounds: a greedy balance-preserving single-move sweep
	// (handles uneven pinned loads), then one Kernighan–Lin swap pass —
	// tentatively apply the best remaining swap even at zero or negative
	// gain, lock the pair, and finally keep only the prefix of the swap
	// sequence with the best cumulative gain. The tentative phase is what
	// climbs out of the plateaus a strictly-greedy exchange gets stuck on.
	locked := make([]bool, nv)
	type swapStep struct{ i, j int }
	for round := 0; round < nv+2; round++ {
		improved := false
		for i := 0; i < nv; i++ {
			if pinned[i] {
				continue
			}
			from := assign[i]
			for to := range nodes {
				if to == from || excl(to) || sizes[to] >= ceil || sizes[from] <= floor {
					continue
				}
				// Self-edges (i adjacent to i) are impossible: ports are
				// distinct endpoints, and Validate bans port reuse.
				if extCost(i, from)-extCost(i, to) > 0 {
					assign[i] = to
					sizes[from]--
					sizes[to]++
					improved = true
					from = to
				}
			}
		}

		for i := range locked {
			locked[i] = false
		}
		var steps []swapStep
		cum, bestCum, bestIdx := 0, 0, -1
		for {
			bi, bj, bg := -1, -1, 0
			found := false
			for i := 0; i < nv; i++ {
				if pinned[i] || locked[i] {
					continue
				}
				for j := i + 1; j < nv; j++ {
					if pinned[j] || locked[j] || assign[i] == assign[j] {
						continue
					}
					if g := swapGain(i, j); !found || g > bg {
						bi, bj, bg = i, j, g
						found = true
					}
				}
			}
			if !found {
				break
			}
			assign[bi], assign[bj] = assign[bj], assign[bi]
			locked[bi], locked[bj] = true, true
			steps = append(steps, swapStep{bi, bj})
			cum += bg
			if cum > bestCum {
				bestCum, bestIdx = cum, len(steps)-1
			}
		}
		// Undo everything past the best prefix (all of it when no prefix
		// had positive cumulative gain).
		for k := len(steps) - 1; k > bestIdx; k-- {
			s := steps[k]
			assign[s.i], assign[s.j] = assign[s.j], assign[s.i]
		}
		if bestCum > 0 {
			improved = true
		}
		if !improved {
			break
		}
	}

	for i := range g.VNFs {
		g.VNFs[i].Node = nodes[assign[i]]
	}
	return g.Crossings(nodes[0], nicNode), nil
}
