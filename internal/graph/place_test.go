package graph

import (
	"fmt"
	"testing"
)

// parallelChains builds k disjoint bidirectional chains of length n each,
// with the VNF list interleaved across chains (c0v0, c1v0, c0v1, c1v1, …).
// The interleaving makes the naive contiguous split cut every chain — the
// branching-service-graph shape where a placement optimizer pays off.
func parallelChains(k, n int) *Graph {
	g := &Graph{}
	for v := 0; v < n; v++ {
		for c := 0; c < k; c++ {
			name := fmt.Sprintf("c%dv%d", c, v)
			kind := KindForward
			if v == 0 || v == n-1 {
				kind = KindSrcSink
			}
			g.VNFs = append(g.VNFs, VNF{Name: name, Kind: kind})
		}
	}
	for c := 0; c < k; c++ {
		for v := 0; v+1 < n; v++ {
			a, b := fmt.Sprintf("c%dv%d", c, v), fmt.Sprintf("c%dv%d", c, v+1)
			ap, bp := 1, 0
			if v == 0 {
				ap = 0 // srcsink has a single port
			}
			g.Edges = append(g.Edges, Edge{
				A: VNFPort(a, ap), B: VNFPort(b, bp), Bidirectional: true,
			})
		}
	}
	return g
}

// contiguousCrossings evaluates the naive baseline: assign the VNFs to the
// nodes contiguously in list order (the SplitBidirChain layout) and count
// crossings.
func contiguousCrossings(t *testing.T, g *Graph, nodes []string) int {
	t.Helper()
	c := &Graph{VNFs: append([]VNF(nil), g.VNFs...), Edges: g.Edges}
	total := len(c.VNFs)
	pos := 0
	for s := 0; s < len(nodes); s++ {
		size := total / len(nodes)
		if s < total%len(nodes) {
			size++
		}
		for k := 0; k < size; k++ {
			c.VNFs[pos].Node = nodes[s]
			pos++
		}
	}
	return c.Crossings(nodes[0], nil)
}

func TestPlaceBeatsContiguousSplitOnBranchingGraph(t *testing.T) {
	nodes := []string{"a", "b"}
	g := parallelChains(2, 4) // two interleaved 4-VM tenant chains
	naive := contiguousCrossings(t, g, nodes)
	if naive < 2 {
		t.Fatalf("baseline is not adversarial enough: %d crossings", naive)
	}
	got, err := g.Place(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got >= naive {
		t.Fatalf("Place crossings = %d, contiguous split = %d — optimizer did not improve", got, naive)
	}
	// The two disjoint chains fit one per node: the optimum is zero.
	if got != 0 {
		t.Fatalf("Place crossings = %d, want 0 (one chain per node)", got)
	}
	// Balance held: 4 VNFs per node.
	counts := map[string]int{}
	for _, v := range g.VNFs {
		counts[v.Node]++
	}
	if counts["a"] != 4 || counts["b"] != 4 {
		t.Fatalf("unbalanced placement: %v", counts)
	}
	// The reported count matches a fresh evaluation.
	if g.Crossings("a", nil) != got {
		t.Fatalf("reported %d crossings, graph evaluates to %d", got, g.Crossings("a", nil))
	}
}

func TestPlaceRespectsPins(t *testing.T) {
	nodes := []string{"a", "b"}
	g := parallelChains(2, 3)
	// Pin chain 0's head to b and chain 1's head to a — the optimizer must
	// follow the pins and gather each chain around its pinned head.
	for i := range g.VNFs {
		switch g.VNFs[i].Name {
		case "c0v0":
			g.VNFs[i].Node = "b"
		case "c1v0":
			g.VNFs[i].Node = "a"
		}
	}
	if _, err := g.Place(nodes, nil); err != nil {
		t.Fatal(err)
	}
	byName := map[string]string{}
	for _, v := range g.VNFs {
		byName[v.Name] = v.Node
	}
	if byName["c0v0"] != "b" || byName["c1v0"] != "a" {
		t.Fatalf("pins moved: %v", byName)
	}
	if got := g.Crossings("a", nil); got != 0 {
		t.Fatalf("crossings = %d, want 0 (chains gathered around their pins)", got)
	}
}

func TestPlaceNICAnchors(t *testing.T) {
	// NIC-attached chain: eth0 lives on node b, so the whole 2-VM chain
	// should gravitate there despite node a being listed first.
	g := Chain(2, "eth0", "eth1")
	nicNode := map[string]string{"eth0": "b", "eth1": "b"}
	got, err := g.Place([]string{"a", "b"}, nicNode)
	if err != nil {
		t.Fatal(err)
	}
	// Balance forces a 1/1 split of the two VMs, so one chain hop and one
	// NIC edge must cross; the optimizer just must not do worse.
	if got > 2 {
		t.Fatalf("crossings = %d, want <= 2", got)
	}
}

func TestPlaceSingleNodeAndValidation(t *testing.T) {
	g := BidirChain(2)
	got, err := g.Place([]string{"only"}, nil)
	if err != nil || got != 0 {
		t.Fatalf("single-node place = %d, %v", got, err)
	}
	for _, v := range g.VNFs {
		if v.Node != "only" {
			t.Fatalf("%s not placed", v.Name)
		}
	}
	if _, err := g.Place(nil, nil); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := g.Place([]string{"a", "a"}, nil); err == nil {
		t.Fatal("duplicate node accepted")
	}
	bad := BidirChain(1)
	bad.VNFs[0].Node = "elsewhere"
	if _, err := bad.Place([]string{"a"}, nil); err == nil {
		t.Fatal("pin to unknown node accepted")
	}
}

// TestPlaceWithFabricDistance: in a leaf–spine fabric (node 0 = spine),
// leaf–leaf crossings cost 2 hops while leaf–spine crossings cost 1. With a
// chain pinned to the two leaves at its ends, every placement of the free
// middle VNF pays the same crossing COUNT (2 lanes) — only the
// distance-aware cost tells the spine (1+1 hops) apart from a leaf
// (1 + 2 hops via the far leaf), so the optimizer must park it on the spine.
func TestPlaceWithFabricDistance(t *testing.T) {
	spineDist := func(a, b int) int {
		if a == 0 || b == 0 {
			return 1 // spine adjacency
		}
		return 2 // leaf–leaf relays through the spine
	}
	g := &Graph{
		VNFs: []VNF{
			{Name: "end0", Kind: KindSrcSink, Node: "leaf1"},
			{Name: "end1", Kind: KindSrcSink, Node: "leaf2"},
			{Name: "mid", Kind: KindForward},
		},
		Edges: []Edge{
			{A: VNFPort("end0", 0), B: VNFPort("mid", 0), Bidirectional: true},
			{A: VNFPort("mid", 1), B: VNFPort("end1", 0), Bidirectional: true},
		},
	}
	nodes := []string{"spine", "leaf1", "leaf2"}
	if _, err := g.PlaceWith(nodes, nil, PlaceOptions{Dist: spineDist}); err != nil {
		t.Fatal(err)
	}
	// Both crossings are unavoidable (2 lanes); the distance-aware optimizer
	// must park the forwarder on the spine (total 2 hops), never on a leaf
	// (1 + 2 = 3 hops via the far leaf).
	var mid string
	for _, v := range g.VNFs {
		if v.Name == "mid" {
			mid = v.Node
		}
	}
	if mid != "spine" {
		t.Fatalf("distance-aware placement parked mid on %q, want spine", mid)
	}
}

// TestPlaceWithNodeLoad: background load on a node (in VNF-equivalents)
// shrinks its share of new VNFs — the load-weighted balance that models
// heterogeneous co-resident chains.
func TestPlaceWithNodeLoad(t *testing.T) {
	g := parallelChains(2, 4) // 8 VNFs over 2 nodes: 4+4 unloaded
	nodes := []string{"a", "b"}
	if _, err := g.PlaceWith(nodes, nil, PlaceOptions{NodeLoad: []float64{4, 0}}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, v := range g.VNFs {
		counts[v.Node]++
	}
	// total load 8 VNFs + 4 background = 12, 6 per node ⇒ loaded node a gets
	// only 2 of the 8 new VNFs.
	if counts["a"] != 2 || counts["b"] != 6 {
		t.Fatalf("load-weighted balance placed %v, want a:2 b:6", counts)
	}
}

func TestPlaceWithExcludedNodes(t *testing.T) {
	nodes := []string{"a", "b", "c"}

	// No unpinned VNF may land on the excluded node.
	g := parallelChains(2, 4)
	if _, err := g.PlaceWith(nodes, nil, PlaceOptions{Excluded: []bool{false, true, false}}); err != nil {
		t.Fatal(err)
	}
	for _, v := range g.VNFs {
		if v.Node == "b" {
			t.Fatalf("VNF %s placed on excluded node b", v.Name)
		}
	}

	// A VNF pinned to an excluded node stays there — exclusion gates new
	// assignment, not existing pins.
	g = parallelChains(2, 4)
	g.VNFs[0].Node = "b"
	if _, err := g.PlaceWith(nodes, nil, PlaceOptions{Excluded: []bool{false, true, false}}); err != nil {
		t.Fatal(err)
	}
	if g.VNFs[0].Node != "b" {
		t.Fatalf("pinned VNF moved off its excluded node to %s", g.VNFs[0].Node)
	}
	for _, v := range g.VNFs[1:] {
		if v.Node == "b" {
			t.Fatalf("unpinned VNF %s placed on excluded node b", v.Name)
		}
	}

	// Balance holds across the eligible nodes alone: 8 VNFs over {a, c}.
	g = parallelChains(2, 4)
	if _, err := g.PlaceWith(nodes, nil, PlaceOptions{Excluded: []bool{false, true, false}}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, v := range g.VNFs {
		counts[v.Node]++
	}
	if counts["a"] != 4 || counts["c"] != 4 {
		t.Fatalf("eligible-node balance placed %v, want a:4 c:4", counts)
	}

	// Excluding every node is an error, not a panic.
	g = parallelChains(1, 2)
	if _, err := g.PlaceWith(nodes, nil, PlaceOptions{Excluded: []bool{true, true, true}}); err == nil {
		t.Fatal("placement with every node excluded was accepted")
	}
}
