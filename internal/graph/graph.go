// Package graph models NFV service graphs (Figure 1(a) of the paper):
// VNF nodes with numbered ports, connected by logical links among
// themselves and to external endpoints (NICs). The orchestrator lowers a
// graph onto a node as VMs, dpdkr ports and OpenFlow steering rules.
package graph

import "fmt"

// Kind discriminates VNF node types the orchestrator can instantiate.
type Kind string

// Supported VNF kinds.
const (
	KindForward  Kind = "forward"  // two ports, moves packets between them
	KindFirewall Kind = "firewall" // two ports, filters while forwarding
	KindMonitor  Kind = "monitor"  // two ports, accounts while forwarding
	KindSource   Kind = "source"   // one port, generates traffic
	KindSink     Kind = "sink"     // one port, terminates traffic
	KindSrcSink  Kind = "srcsink"  // one port, generates AND terminates (bidirectional endpoint)
	KindNAT44    Kind = "nat44"    // two ports, stateful source NAT (inside=0, outside=1)
	KindACL      Kind = "acl"      // two ports, stateful firewall with established bypass
	KindBalancer Kind = "balancer" // two ports, L4 VIP load balancer (clients=0, backends=1)
)

// PortCount returns the number of dpdkr ports a kind requires, or 0 for an
// unknown kind.
func (k Kind) PortCount() int {
	switch k {
	case KindSource, KindSink, KindSrcSink:
		return 1
	case KindForward, KindFirewall, KindMonitor, KindNAT44, KindACL, KindBalancer:
		return 2
	default:
		return 0
	}
}

// VNF is one service-graph node.
type VNF struct {
	Name string
	Kind Kind
	// Args carries kind-specific configuration (e.g. []vnf.FirewallRule for
	// firewalls, a pkt.UDPSpec for sources). Interpreted by the
	// orchestrator's factories.
	Args any
	// Node names the compute node this VNF is placed on. Empty means the
	// deployment's default node; single-node deployments ignore placement
	// entirely. Cluster deployments partition the graph by this label (see
	// Partition).
	Node string
}

// EndpointKind discriminates edge endpoints.
type EndpointKind int

// Endpoint kinds.
const (
	EpVNF EndpointKind = iota
	EpNIC
)

// Endpoint is one side of an edge: a (VNF, port) pair or a named NIC.
type Endpoint struct {
	Kind EndpointKind
	Name string // VNF name or NIC name
	Port int    // VNF-local port index (ignored for NICs)
}

// VNFPort addresses port idx of the named VNF.
func VNFPort(name string, idx int) Endpoint {
	return Endpoint{Kind: EpVNF, Name: name, Port: idx}
}

// NIC addresses a named external NIC.
func NIC(name string) Endpoint {
	return Endpoint{Kind: EpNIC, Name: name}
}

// Edge is a logical link. Bidirectional edges lower to two steering rules.
type Edge struct {
	A, B          Endpoint
	Bidirectional bool
	// PCP is the 802.1Q priority (0..7) this link's traffic is stamped with
	// when the edge crosses a node boundary: the sending side's push_vlan
	// steering adds a mod_vlan_pcp, and the trunk's DRR scheduler weighs the
	// class accordingly. Intra-node edges ignore it.
	PCP uint8
}

// Graph is a service graph.
type Graph struct {
	VNFs  []VNF
	Edges []Edge
}

// Validate checks structural sanity: unique VNF names, endpoints that
// exist, port indexes in range, and no VNF port used by two edges (each
// dpdkr port carries exactly one logical attachment).
func (g *Graph) Validate() error {
	byName := make(map[string]VNF, len(g.VNFs))
	for _, v := range g.VNFs {
		if v.Name == "" {
			return fmt.Errorf("graph: VNF with empty name")
		}
		if _, dup := byName[v.Name]; dup {
			return fmt.Errorf("graph: duplicate VNF %q", v.Name)
		}
		if v.Kind.PortCount() == 0 {
			return fmt.Errorf("graph: VNF %q has unknown kind %q", v.Name, v.Kind)
		}
		byName[v.Name] = v
	}
	used := make(map[Endpoint]bool)
	for i, e := range g.Edges {
		for _, ep := range []Endpoint{e.A, e.B} {
			switch ep.Kind {
			case EpVNF:
				v, ok := byName[ep.Name]
				if !ok {
					return fmt.Errorf("graph: edge %d references unknown VNF %q", i, ep.Name)
				}
				if ep.Port < 0 || ep.Port >= v.Kind.PortCount() {
					return fmt.Errorf("graph: edge %d: VNF %q has no port %d", i, ep.Name, ep.Port)
				}
				if used[ep] {
					return fmt.Errorf("graph: edge %d: VNF port %s/%d already linked", i, ep.Name, ep.Port)
				}
				used[ep] = true
			case EpNIC:
				if ep.Name == "" {
					return fmt.Errorf("graph: edge %d: NIC endpoint without name", i)
				}
			default:
				return fmt.Errorf("graph: edge %d: bad endpoint kind %d", i, ep.Kind)
			}
		}
	}
	return nil
}

// CrossEdge is one graph edge that crosses a node boundary after
// partitioning. The edge is removed from both local graphs; the deployer
// realizes it as a VLAN lane on the shared trunk joining the two nodes,
// steering each side with vlan push/pop rules against the endpoints
// recorded here.
type CrossEdge struct {
	// Index is the position of the original edge in Graph.Edges.
	Index int
	// NodeA/NodeB are the nodes hosting the edge's A/B endpoints.
	NodeA, NodeB string
	// A/B are the original (VNF) endpoints of the cut edge.
	A, B Endpoint
	// Bidirectional mirrors the original edge.
	Bidirectional bool
	// PCP mirrors the original edge's crossing priority; the deployer stamps
	// it onto the lane's frames for the trunk scheduler.
	PCP uint8
}

// Partition is a service graph split across compute nodes: one local graph
// per node (crossing edges removed) plus the list of crossings to realize
// as trunk lanes.
type Partition struct {
	// Local maps node name → the node-local subgraph. Only nodes that host
	// at least one VNF appear.
	Local map[string]*Graph
	// Cross lists the boundary crossings in Graph.Edges order.
	Cross []CrossEdge
}

// nodeOf resolves an endpoint's node: a VNF endpoint lives where its VNF is
// placed (default node when unlabeled); a NIC endpoint lives where the NIC
// is registered per nicNode (default node when absent).
func nodeOf(ep Endpoint, byName map[string]VNF, defaultNode string, nicNode map[string]string) string {
	switch ep.Kind {
	case EpVNF:
		if n := byName[ep.Name].Node; n != "" {
			return n
		}
	case EpNIC:
		if n := nicNode[ep.Name]; n != "" {
			return n
		}
	}
	return defaultNode
}

// Partition splits g by VNF placement. VNFs with an empty Node land on
// defaultNode; nicNode maps externally-registered NIC names to their nodes
// (nil is fine when the graph has no NIC endpoints or they all live on the
// default node).
//
// Every edge whose endpoints resolve to the same node is copied into that
// node's local graph unchanged. A VNF↔VNF edge crossing a boundary is
// realizable: it is removed from both local graphs and recorded as a
// CrossEdge for the deployer to realize as a VLAN lane on the node pair's
// shared trunk. An edge that crosses a boundary at a NIC endpoint is NOT
// realizable — the physical NIC's wire side is owned by external traffic,
// so there is no place to splice an inter-node hop — and Partition rejects
// it.
func (g *Graph) Partition(defaultNode string, nicNode map[string]string) (*Partition, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if defaultNode == "" {
		return nil, fmt.Errorf("graph: partition needs a default node name")
	}
	byName := make(map[string]VNF, len(g.VNFs))
	for _, v := range g.VNFs {
		byName[v.Name] = v
	}
	p := &Partition{Local: make(map[string]*Graph)}
	local := func(node string) *Graph {
		lg, ok := p.Local[node]
		if !ok {
			lg = &Graph{}
			p.Local[node] = lg
		}
		return lg
	}
	for _, v := range g.VNFs {
		node := v.Node
		if node == "" {
			node = defaultNode
		}
		local(node).VNFs = append(local(node).VNFs, v)
	}
	for i, e := range g.Edges {
		na := nodeOf(e.A, byName, defaultNode, nicNode)
		nb := nodeOf(e.B, byName, defaultNode, nicNode)
		if na == nb {
			local(na).Edges = append(local(na).Edges, e)
			continue
		}
		if e.A.Kind == EpNIC || e.B.Kind == EpNIC {
			return nil, fmt.Errorf(
				"graph: edge %d crosses nodes %s/%s at a NIC endpoint — not realizable; place the NIC's peer on the NIC's node",
				i, na, nb)
		}
		p.Cross = append(p.Cross, CrossEdge{
			Index: i, NodeA: na, NodeB: nb,
			A: e.A, B: e.B,
			Bidirectional: e.Bidirectional,
			PCP:           e.PCP,
		})
	}
	return p, nil
}

// Crossings counts the edges whose endpoints resolve to different nodes
// under the current placement — the cost function the Place optimizer
// minimizes and deployers pay one trunk lane per unit of.
func (g *Graph) Crossings(defaultNode string, nicNode map[string]string) int {
	byName := make(map[string]VNF, len(g.VNFs))
	for _, v := range g.VNFs {
		byName[v.Name] = v
	}
	n := 0
	for _, e := range g.Edges {
		if nodeOf(e.A, byName, defaultNode, nicNode) != nodeOf(e.B, byName, defaultNode, nicNode) {
			n++
		}
	}
	return n
}

// Nodes returns the set of node names a graph's placement references
// (excluding the empty default label), in first-use order.
func (g *Graph) Nodes() []string {
	var out []string
	seen := make(map[string]bool)
	for _, v := range g.VNFs {
		if v.Node != "" && !seen[v.Node] {
			seen[v.Node] = true
			out = append(out, v.Node)
		}
	}
	return out
}

// SplitBidirChain builds the Figure 3(a) bidirectional chain of n forwarder
// VMs and places its VM sequence (end0, vnf1..vnfn, end1) across the given
// nodes in contiguous, evenly-sized segments — the natural split-chain
// layout, where exactly len(nodes)-1 hops cross a node boundary. With fewer
// VMs than nodes, only the first VMs-many nodes are used; with no nodes the
// graph is identical to BidirChain.
func SplitBidirChain(n int, nodes []string) *Graph {
	g := BidirChain(n)
	if len(nodes) == 0 {
		return g
	}
	total := len(g.VNFs) // chain VMs: 2 endpoints + n forwarders
	segs := len(nodes)
	if segs > total {
		segs = total
	}
	// BidirChain lists VNFs as end0, end1, vnf1..vnfn; placement follows the
	// chain order end0, vnf1..vnfn, end1.
	order := make([]*VNF, 0, total)
	order = append(order, &g.VNFs[0])
	for i := 2; i < total; i++ {
		order = append(order, &g.VNFs[i])
	}
	order = append(order, &g.VNFs[1])
	pos := 0
	for s := 0; s < segs; s++ {
		size := total / segs
		if s < total%segs {
			size++
		}
		for k := 0; k < size; k++ {
			order[pos].Node = nodes[s]
			pos++
		}
	}
	return g
}

// Chain builds the paper's benchmark graph: a source/NIC, n forwarder VMs,
// and a sink/NIC, linked bidirectionally in a line. If nicIn/nicOut are
// empty, a source and sink VNF are used instead (memory-only, Figure 3(a));
// otherwise traffic enters and leaves via the named NICs (Figure 3(b)).
func Chain(n int, nicIn, nicOut string) *Graph {
	g := &Graph{}
	var first, last Endpoint
	if nicIn == "" {
		g.VNFs = append(g.VNFs, VNF{Name: "src", Kind: KindSource})
		first = VNFPort("src", 0)
	} else {
		first = NIC(nicIn)
	}
	if nicOut == "" {
		g.VNFs = append(g.VNFs, VNF{Name: "dst", Kind: KindSink})
		last = VNFPort("dst", 0)
	} else {
		last = NIC(nicOut)
	}
	prev := first
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vnf%d", i+1)
		g.VNFs = append(g.VNFs, VNF{Name: name, Kind: KindForward})
		g.Edges = append(g.Edges, Edge{A: prev, B: VNFPort(name, 0), Bidirectional: true})
		prev = VNFPort(name, 1)
	}
	g.Edges = append(g.Edges, Edge{A: prev, B: last, Bidirectional: true})
	return g
}

// BidirChain builds the paper's bidirectional benchmark chain: both ends are
// combined source/sink endpoints (named "end0" and "end1") injecting 64B
// traffic toward each other through n forwarder VMs. This is the exact
// workload of Figure 3(a): "the first and the last VM of the chain act as
// traffic source/sink" with "bidirectional 64B traffic".
func BidirChain(n int) *Graph {
	g := &Graph{
		VNFs: []VNF{
			{Name: "end0", Kind: KindSrcSink},
			{Name: "end1", Kind: KindSrcSink},
		},
	}
	prev := VNFPort("end0", 0)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vnf%d", i+1)
		g.VNFs = append(g.VNFs, VNF{Name: name, Kind: KindForward})
		g.Edges = append(g.Edges, Edge{A: prev, B: VNFPort(name, 0), Bidirectional: true})
		prev = VNFPort(name, 1)
	}
	g.Edges = append(g.Edges, Edge{A: prev, B: VNFPort("end1", 0), Bidirectional: true})
	return g
}
