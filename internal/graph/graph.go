// Package graph models NFV service graphs (Figure 1(a) of the paper):
// VNF nodes with numbered ports, connected by logical links among
// themselves and to external endpoints (NICs). The orchestrator lowers a
// graph onto a node as VMs, dpdkr ports and OpenFlow steering rules.
package graph

import "fmt"

// Kind discriminates VNF node types the orchestrator can instantiate.
type Kind string

// Supported VNF kinds.
const (
	KindForward  Kind = "forward"  // two ports, moves packets between them
	KindFirewall Kind = "firewall" // two ports, filters while forwarding
	KindMonitor  Kind = "monitor"  // two ports, accounts while forwarding
	KindSource   Kind = "source"   // one port, generates traffic
	KindSink     Kind = "sink"     // one port, terminates traffic
	KindSrcSink  Kind = "srcsink"  // one port, generates AND terminates (bidirectional endpoint)
)

// PortCount returns the number of dpdkr ports a kind requires, or 0 for an
// unknown kind.
func (k Kind) PortCount() int {
	switch k {
	case KindSource, KindSink, KindSrcSink:
		return 1
	case KindForward, KindFirewall, KindMonitor:
		return 2
	default:
		return 0
	}
}

// VNF is one service-graph node.
type VNF struct {
	Name string
	Kind Kind
	// Args carries kind-specific configuration (e.g. []vnf.FirewallRule for
	// firewalls, a pkt.UDPSpec for sources). Interpreted by the
	// orchestrator's factories.
	Args any
}

// EndpointKind discriminates edge endpoints.
type EndpointKind int

// Endpoint kinds.
const (
	EpVNF EndpointKind = iota
	EpNIC
)

// Endpoint is one side of an edge: a (VNF, port) pair or a named NIC.
type Endpoint struct {
	Kind EndpointKind
	Name string // VNF name or NIC name
	Port int    // VNF-local port index (ignored for NICs)
}

// VNFPort addresses port idx of the named VNF.
func VNFPort(name string, idx int) Endpoint {
	return Endpoint{Kind: EpVNF, Name: name, Port: idx}
}

// NIC addresses a named external NIC.
func NIC(name string) Endpoint {
	return Endpoint{Kind: EpNIC, Name: name}
}

// Edge is a logical link. Bidirectional edges lower to two steering rules.
type Edge struct {
	A, B          Endpoint
	Bidirectional bool
}

// Graph is a service graph.
type Graph struct {
	VNFs  []VNF
	Edges []Edge
}

// Validate checks structural sanity: unique VNF names, endpoints that
// exist, port indexes in range, and no VNF port used by two edges (each
// dpdkr port carries exactly one logical attachment).
func (g *Graph) Validate() error {
	byName := make(map[string]VNF, len(g.VNFs))
	for _, v := range g.VNFs {
		if v.Name == "" {
			return fmt.Errorf("graph: VNF with empty name")
		}
		if _, dup := byName[v.Name]; dup {
			return fmt.Errorf("graph: duplicate VNF %q", v.Name)
		}
		if v.Kind.PortCount() == 0 {
			return fmt.Errorf("graph: VNF %q has unknown kind %q", v.Name, v.Kind)
		}
		byName[v.Name] = v
	}
	used := make(map[Endpoint]bool)
	for i, e := range g.Edges {
		for _, ep := range []Endpoint{e.A, e.B} {
			switch ep.Kind {
			case EpVNF:
				v, ok := byName[ep.Name]
				if !ok {
					return fmt.Errorf("graph: edge %d references unknown VNF %q", i, ep.Name)
				}
				if ep.Port < 0 || ep.Port >= v.Kind.PortCount() {
					return fmt.Errorf("graph: edge %d: VNF %q has no port %d", i, ep.Name, ep.Port)
				}
				if used[ep] {
					return fmt.Errorf("graph: edge %d: VNF port %s/%d already linked", i, ep.Name, ep.Port)
				}
				used[ep] = true
			case EpNIC:
				if ep.Name == "" {
					return fmt.Errorf("graph: edge %d: NIC endpoint without name", i)
				}
			default:
				return fmt.Errorf("graph: edge %d: bad endpoint kind %d", i, ep.Kind)
			}
		}
	}
	return nil
}

// Chain builds the paper's benchmark graph: a source/NIC, n forwarder VMs,
// and a sink/NIC, linked bidirectionally in a line. If nicIn/nicOut are
// empty, a source and sink VNF are used instead (memory-only, Figure 3(a));
// otherwise traffic enters and leaves via the named NICs (Figure 3(b)).
func Chain(n int, nicIn, nicOut string) *Graph {
	g := &Graph{}
	var first, last Endpoint
	if nicIn == "" {
		g.VNFs = append(g.VNFs, VNF{Name: "src", Kind: KindSource})
		first = VNFPort("src", 0)
	} else {
		first = NIC(nicIn)
	}
	if nicOut == "" {
		g.VNFs = append(g.VNFs, VNF{Name: "dst", Kind: KindSink})
		last = VNFPort("dst", 0)
	} else {
		last = NIC(nicOut)
	}
	prev := first
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vnf%d", i+1)
		g.VNFs = append(g.VNFs, VNF{Name: name, Kind: KindForward})
		g.Edges = append(g.Edges, Edge{A: prev, B: VNFPort(name, 0), Bidirectional: true})
		prev = VNFPort(name, 1)
	}
	g.Edges = append(g.Edges, Edge{A: prev, B: last, Bidirectional: true})
	return g
}

// BidirChain builds the paper's bidirectional benchmark chain: both ends are
// combined source/sink endpoints (named "end0" and "end1") injecting 64B
// traffic toward each other through n forwarder VMs. This is the exact
// workload of Figure 3(a): "the first and the last VM of the chain act as
// traffic source/sink" with "bidirectional 64B traffic".
func BidirChain(n int) *Graph {
	g := &Graph{
		VNFs: []VNF{
			{Name: "end0", Kind: KindSrcSink},
			{Name: "end1", Kind: KindSrcSink},
		},
	}
	prev := VNFPort("end0", 0)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vnf%d", i+1)
		g.VNFs = append(g.VNFs, VNF{Name: name, Kind: KindForward})
		g.Edges = append(g.Edges, Edge{A: prev, B: VNFPort(name, 0), Bidirectional: true})
		prev = VNFPort(name, 1)
	}
	g.Edges = append(g.Edges, Edge{A: prev, B: VNFPort("end1", 0), Bidirectional: true})
	return g
}
