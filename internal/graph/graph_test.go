package graph

import "testing"

func TestValidateAcceptsChain(t *testing.T) {
	for n := 1; n <= 8; n++ {
		g := Chain(n, "", "")
		if err := g.Validate(); err != nil {
			t.Fatalf("chain %d: %v", n, err)
		}
		// n forwarders + src + dst
		if len(g.VNFs) != n+2 {
			t.Fatalf("chain %d: %d VNFs", n, len(g.VNFs))
		}
		if len(g.Edges) != n+1 {
			t.Fatalf("chain %d: %d edges", n, len(g.Edges))
		}
	}
}

func TestChainWithNICs(t *testing.T) {
	g := Chain(3, "eth0", "eth1")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.VNFs) != 3 {
		t.Fatalf("VNFs = %d, want 3 (no src/dst)", len(g.VNFs))
	}
	if g.Edges[0].A.Kind != EpNIC || g.Edges[0].A.Name != "eth0" {
		t.Fatalf("first edge = %+v", g.Edges[0])
	}
	last := g.Edges[len(g.Edges)-1]
	if last.B.Kind != EpNIC || last.B.Name != "eth1" {
		t.Fatalf("last edge = %+v", last)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
	}{
		{"empty VNF name", Graph{VNFs: []VNF{{Name: "", Kind: KindForward}}}},
		{"duplicate VNF", Graph{VNFs: []VNF{
			{Name: "a", Kind: KindForward}, {Name: "a", Kind: KindForward}}}},
		{"unknown kind", Graph{VNFs: []VNF{{Name: "a", Kind: Kind("bogus")}}}},
		{"edge to unknown VNF", Graph{Edges: []Edge{{A: VNFPort("ghost", 0), B: VNFPort("ghost", 1)}}}},
		{"port out of range", Graph{
			VNFs:  []VNF{{Name: "a", Kind: KindSource}},
			Edges: []Edge{{A: VNFPort("a", 1), B: VNFPort("a", 0)}}}},
		{"port reuse", Graph{
			VNFs: []VNF{{Name: "a", Kind: KindForward}, {Name: "b", Kind: KindForward}, {Name: "c", Kind: KindForward}},
			Edges: []Edge{
				{A: VNFPort("a", 0), B: VNFPort("b", 0)},
				{A: VNFPort("a", 0), B: VNFPort("c", 0)},
			}}},
		{"nameless NIC", Graph{Edges: []Edge{{A: NIC(""), B: NIC("x")}}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestKindPortCount(t *testing.T) {
	if KindSource.PortCount() != 1 || KindSink.PortCount() != 1 {
		t.Error("source/sink must have one port")
	}
	if KindForward.PortCount() != 2 || KindFirewall.PortCount() != 2 || KindMonitor.PortCount() != 2 {
		t.Error("middle VNFs must have two ports")
	}
}
