package graph

import "testing"

func TestValidateAcceptsChain(t *testing.T) {
	for n := 1; n <= 8; n++ {
		g := Chain(n, "", "")
		if err := g.Validate(); err != nil {
			t.Fatalf("chain %d: %v", n, err)
		}
		// n forwarders + src + dst
		if len(g.VNFs) != n+2 {
			t.Fatalf("chain %d: %d VNFs", n, len(g.VNFs))
		}
		if len(g.Edges) != n+1 {
			t.Fatalf("chain %d: %d edges", n, len(g.Edges))
		}
	}
}

func TestChainWithNICs(t *testing.T) {
	g := Chain(3, "eth0", "eth1")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.VNFs) != 3 {
		t.Fatalf("VNFs = %d, want 3 (no src/dst)", len(g.VNFs))
	}
	if g.Edges[0].A.Kind != EpNIC || g.Edges[0].A.Name != "eth0" {
		t.Fatalf("first edge = %+v", g.Edges[0])
	}
	last := g.Edges[len(g.Edges)-1]
	if last.B.Kind != EpNIC || last.B.Name != "eth1" {
		t.Fatalf("last edge = %+v", last)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
	}{
		{"empty VNF name", Graph{VNFs: []VNF{{Name: "", Kind: KindForward}}}},
		{"duplicate VNF", Graph{VNFs: []VNF{
			{Name: "a", Kind: KindForward}, {Name: "a", Kind: KindForward}}}},
		{"unknown kind", Graph{VNFs: []VNF{{Name: "a", Kind: Kind("bogus")}}}},
		{"edge to unknown VNF", Graph{Edges: []Edge{{A: VNFPort("ghost", 0), B: VNFPort("ghost", 1)}}}},
		{"port out of range", Graph{
			VNFs:  []VNF{{Name: "a", Kind: KindSource}},
			Edges: []Edge{{A: VNFPort("a", 1), B: VNFPort("a", 0)}}}},
		{"port reuse", Graph{
			VNFs: []VNF{{Name: "a", Kind: KindForward}, {Name: "b", Kind: KindForward}, {Name: "c", Kind: KindForward}},
			Edges: []Edge{
				{A: VNFPort("a", 0), B: VNFPort("b", 0)},
				{A: VNFPort("a", 0), B: VNFPort("c", 0)},
			}}},
		{"nameless NIC", Graph{Edges: []Edge{{A: NIC(""), B: NIC("x")}}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestKindPortCount(t *testing.T) {
	if KindSource.PortCount() != 1 || KindSink.PortCount() != 1 {
		t.Error("source/sink must have one port")
	}
	if KindForward.PortCount() != 2 || KindFirewall.PortCount() != 2 || KindMonitor.PortCount() != 2 {
		t.Error("middle VNFs must have two ports")
	}
}

func TestPartitionSingleNode(t *testing.T) {
	g := BidirChain(2)
	p, err := g.Partition("n0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cross) != 0 {
		t.Fatalf("unplaced chain produced %d crossings", len(p.Cross))
	}
	lg, ok := p.Local["n0"]
	if !ok || len(p.Local) != 1 {
		t.Fatalf("expected one local graph on n0, got %v", p.Local)
	}
	if len(lg.VNFs) != len(g.VNFs) || len(lg.Edges) != len(g.Edges) {
		t.Fatalf("local graph shrank: %d VNFs %d edges", len(lg.VNFs), len(lg.Edges))
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSplitsChainAcrossTwoNodes(t *testing.T) {
	// end0, vnf1, vnf2, vnf3, end1 split 3+2: the vnf2↔vnf3 hop crosses.
	g := SplitBidirChain(3, []string{"a", "b"})
	p, err := g.Partition("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cross) != 1 {
		t.Fatalf("expected 1 crossing, got %d: %+v", len(p.Cross), p.Cross)
	}
	ce := p.Cross[0]
	if ce.NodeA != "a" || ce.NodeB != "b" {
		t.Fatalf("crossing nodes = %s/%s", ce.NodeA, ce.NodeB)
	}
	if !ce.Bidirectional {
		t.Fatal("crossing lost bidirectionality")
	}
	// The cut edge's endpoints survive for the trunk-lane steering rules.
	if ce.A != VNFPort("vnf2", 1) || ce.B != VNFPort("vnf3", 0) {
		t.Fatalf("crossing endpoints = %+v/%+v", ce.A, ce.B)
	}
	la, lb := p.Local["a"], p.Local["b"]
	if la == nil || lb == nil {
		t.Fatalf("missing local graphs: %v", p.Local)
	}
	if len(la.VNFs) != 3 || len(lb.VNFs) != 2 {
		t.Fatalf("segment sizes %d/%d, want 3/2", len(la.VNFs), len(lb.VNFs))
	}
	// The crossing edge is removed from both sides (the trunk deployer
	// steers it); the remaining local edges stay intact.
	if len(la.Edges)+len(lb.Edges) != len(g.Edges)-1 {
		t.Fatalf("local edges %d+%d, want %d", len(la.Edges), len(lb.Edges), len(g.Edges)-1)
	}
	for _, lg := range p.Local {
		if err := lg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Crossings("a", nil); got != 1 {
		t.Fatalf("Crossings = %d, want 1", got)
	}
}

func TestPartitionRejectsCrossNodeNICEdge(t *testing.T) {
	g := Chain(1, "eth0", "eth1")
	for i := range g.VNFs {
		if g.VNFs[i].Kind == KindForward {
			g.VNFs[i].Node = "b"
		}
	}
	// eth0/eth1 default to node a; the VM sits on node b ⇒ both NIC edges
	// cross at a NIC endpoint.
	if _, err := g.Partition("a", nil); err == nil {
		t.Fatal("cross-node NIC edge accepted")
	}
	// Pinning the NICs to the VM's node makes it realizable again.
	if _, err := g.Partition("a", map[string]string{"eth0": "b", "eth1": "b"}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionValidatesGraph(t *testing.T) {
	g := &Graph{VNFs: []VNF{{Name: "", Kind: KindForward}}}
	if _, err := g.Partition("a", nil); err == nil {
		t.Fatal("invalid graph accepted")
	}
	if _, err := BidirChain(1).Partition("", nil); err == nil {
		t.Fatal("empty default node accepted")
	}
}

func TestSplitBidirChainPlacement(t *testing.T) {
	// 6 forwarders + 2 ends = 8 VMs over 3 nodes ⇒ segments 3/3/2 in chain
	// order end0,vnf1..vnf6,end1.
	g := SplitBidirChain(6, []string{"x", "y", "z"})
	want := map[string]string{
		"end0": "x", "vnf1": "x", "vnf2": "x",
		"vnf3": "y", "vnf4": "y", "vnf5": "y",
		"vnf6": "z", "end1": "z",
	}
	for _, v := range g.VNFs {
		if v.Node != want[v.Name] {
			t.Fatalf("%s placed on %q, want %q", v.Name, v.Node, want[v.Name])
		}
	}
	if got := g.Nodes(); len(got) != 3 {
		t.Fatalf("Nodes() = %v", got)
	}
	// More nodes than VMs: only the first VMs-many nodes used, one VM each.
	g2 := SplitBidirChain(0, []string{"a", "b", "c", "d"})
	if got := g2.Nodes(); len(got) != 2 {
		t.Fatalf("2-VM chain across 4 nodes used %v", got)
	}
}
