package openflow

import (
	"fmt"

	"ovshighway/internal/flow"
)

// PortStatsRequest asks for counters of one port (or PortAny for all).
type PortStatsRequest struct {
	PortNo uint32
}

// MsgType implements Msg.
func (PortStatsRequest) MsgType() uint8 { return TypeMultipartRequest }
func (m PortStatsRequest) encodeBody(b []byte) []byte {
	b = be.AppendUint16(b, MultipartPortStats)
	b = be.AppendUint16(b, 0)
	b = be.AppendUint32(b, 0)
	b = be.AppendUint32(b, m.PortNo)
	return be.AppendUint32(b, 0)
}

// PortStats is one port's counters, as in ofp_port_stats (the fields this
// datapath maintains; the remaining spec fields encode as zero).
type PortStats struct {
	PortNo    uint32
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

// PortStatsReply carries counters for the requested ports.
//
// For ports participating in a p-2-p bypass, the datapath merges the
// PMD-maintained shared-memory counters into these values before encoding,
// keeping the controller's view identical to a vanilla switch.
type PortStatsReply struct {
	Stats []PortStats
}

// MsgType implements Msg.
func (PortStatsReply) MsgType() uint8 { return TypeMultipartReply }
func (m PortStatsReply) encodeBody(b []byte) []byte {
	b = be.AppendUint16(b, MultipartPortStats)
	b = be.AppendUint16(b, 0)
	b = be.AppendUint32(b, 0)
	for _, s := range m.Stats {
		b = be.AppendUint32(b, s.PortNo)
		b = be.AppendUint32(b, 0) // pad
		b = be.AppendUint64(b, s.RxPackets)
		b = be.AppendUint64(b, s.TxPackets)
		b = be.AppendUint64(b, s.RxBytes)
		b = be.AppendUint64(b, s.TxBytes)
		b = be.AppendUint64(b, s.RxDropped)
		b = be.AppendUint64(b, s.TxDropped)
		// rx_errors .. duration_nsec: 6 uint64 + 2 uint32 of zeros.
		for i := 0; i < 6; i++ {
			b = be.AppendUint64(b, 0)
		}
		b = be.AppendUint32(b, 0)
		b = be.AppendUint32(b, 0)
	}
	return b
}

// portStatsEntryLen is the wire size of one ofp_port_stats entry.
const portStatsEntryLen = 112

// FlowStatsRequest asks for the flows matching a filter.
type FlowStatsRequest struct {
	TableID    uint8
	OutPort    uint32
	Cookie     uint64
	CookieMask uint64
	Match      flow.Match
}

// MsgType implements Msg.
func (FlowStatsRequest) MsgType() uint8 { return TypeMultipartRequest }
func (m FlowStatsRequest) encodeBody(b []byte) []byte {
	b = be.AppendUint16(b, MultipartFlow)
	b = be.AppendUint16(b, 0)
	b = be.AppendUint32(b, 0)
	b = append(b, m.TableID, 0, 0, 0)
	b = be.AppendUint32(b, m.OutPort)
	b = be.AppendUint32(b, PortAny) // out_group
	b = be.AppendUint32(b, 0)       // pad
	b = be.AppendUint64(b, m.Cookie)
	b = be.AppendUint64(b, m.CookieMask)
	return append(b, EncodeMatch(m.Match)...)
}

// FlowStats is one flow entry's description and counters.
type FlowStats struct {
	TableID     uint8
	Priority    uint16
	Cookie      uint64
	PacketCount uint64
	ByteCount   uint64
	Match       flow.Match
	Actions     flow.Actions
}

// FlowStatsReply carries the matching flow entries. As with port stats,
// bypass counters are merged in by the datapath before encoding.
type FlowStatsReply struct {
	Stats []FlowStats
}

// MsgType implements Msg.
func (FlowStatsReply) MsgType() uint8 { return TypeMultipartReply }
func (m FlowStatsReply) encodeBody(b []byte) []byte {
	b = be.AppendUint16(b, MultipartFlow)
	b = be.AppendUint16(b, 0)
	b = be.AppendUint32(b, 0)
	for _, s := range m.Stats {
		match := EncodeMatch(s.Match)
		acts := EncodeActions(s.Actions)
		length := 48 + len(match) + 8 + len(acts)
		b = be.AppendUint16(b, uint16(length))
		b = append(b, s.TableID, 0)
		b = be.AppendUint32(b, 0) // duration_sec
		b = be.AppendUint32(b, 0) // duration_nsec
		b = be.AppendUint16(b, s.Priority)
		b = be.AppendUint16(b, 0) // idle_timeout
		b = be.AppendUint16(b, 0) // hard_timeout
		b = be.AppendUint16(b, 0) // flags
		b = be.AppendUint32(b, 0) // pad
		b = be.AppendUint64(b, s.Cookie)
		b = be.AppendUint64(b, s.PacketCount)
		b = be.AppendUint64(b, s.ByteCount)
		b = append(b, match...)
		b = be.AppendUint16(b, instrApplyActions)
		b = be.AppendUint16(b, uint16(8+len(acts)))
		b = be.AppendUint32(b, 0)
		b = append(b, acts...)
	}
	return b
}

func decodeMultipartRequest(body []byte) (Msg, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("openflow: short multipart request")
	}
	mpType := be.Uint16(body[0:2])
	rest := body[8:]
	switch mpType {
	case MultipartPortStats:
		if len(rest) < 8 {
			return nil, fmt.Errorf("openflow: short port stats request")
		}
		return PortStatsRequest{PortNo: be.Uint32(rest[0:4])}, nil
	case MultipartFlow:
		if len(rest) < 32 {
			return nil, fmt.Errorf("openflow: short flow stats request")
		}
		req := FlowStatsRequest{
			TableID:    rest[0],
			OutPort:    be.Uint32(rest[4:8]),
			Cookie:     be.Uint64(rest[16:24]),
			CookieMask: be.Uint64(rest[24:32]),
		}
		match, _, err := DecodeMatch(rest[32:])
		if err != nil {
			return nil, err
		}
		req.Match = match
		return req, nil
	default:
		return nil, fmt.Errorf("openflow: unsupported multipart type %d", mpType)
	}
}

func decodeMultipartReply(body []byte) (Msg, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("openflow: short multipart reply")
	}
	mpType := be.Uint16(body[0:2])
	rest := body[8:]
	switch mpType {
	case MultipartPortStats:
		var reply PortStatsReply
		for len(rest) > 0 {
			if len(rest) < portStatsEntryLen {
				return nil, fmt.Errorf("openflow: truncated port stats entry")
			}
			e := rest[:portStatsEntryLen]
			reply.Stats = append(reply.Stats, PortStats{
				PortNo:    be.Uint32(e[0:4]),
				RxPackets: be.Uint64(e[8:16]),
				TxPackets: be.Uint64(e[16:24]),
				RxBytes:   be.Uint64(e[24:32]),
				TxBytes:   be.Uint64(e[32:40]),
				RxDropped: be.Uint64(e[40:48]),
				TxDropped: be.Uint64(e[48:56]),
			})
			rest = rest[portStatsEntryLen:]
		}
		return reply, nil
	case MultipartFlow:
		var reply FlowStatsReply
		for len(rest) > 0 {
			if len(rest) < 48 {
				return nil, fmt.Errorf("openflow: truncated flow stats entry")
			}
			length := int(be.Uint16(rest[0:2]))
			if length < 48 || length > len(rest) {
				return nil, fmt.Errorf("openflow: bad flow stats entry length %d", length)
			}
			e := rest[:length]
			fs := FlowStats{
				TableID:     e[2],
				Priority:    be.Uint16(e[12:14]),
				Cookie:      be.Uint64(e[24:32]),
				PacketCount: be.Uint64(e[32:40]),
				ByteCount:   be.Uint64(e[40:48]),
			}
			match, n, err := DecodeMatch(e[48:])
			if err != nil {
				return nil, err
			}
			fs.Match = match
			instr := e[48+n:]
			if len(instr) >= 8 && be.Uint16(instr[0:2]) == instrApplyActions {
				acts, err := DecodeActions(instr[8:])
				if err != nil {
					return nil, err
				}
				fs.Actions = acts
			}
			reply.Stats = append(reply.Stats, fs)
			rest = rest[length:]
		}
		return reply, nil
	default:
		return nil, fmt.Errorf("openflow: unsupported multipart type %d", mpType)
	}
}
