package openflow

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxMsgLen bounds accepted message sizes (the length field is 16-bit, so
// this is the protocol maximum; it also caps memory per read).
const maxMsgLen = 1 << 16

// Conn frames OpenFlow messages over a byte stream. Reads and writes are
// each internally serialized, so one reader goroutine and any number of
// writer goroutines may share a Conn.
type Conn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	wmu sync.Mutex
	xid atomic.Uint32
}

// NewConn wraps a stream (typically a *net.TCPConn).
func NewConn(rwc io.ReadWriteCloser) *Conn {
	return &Conn{rwc: rwc, br: bufio.NewReaderSize(rwc, 4096)}
}

// NextXid returns a fresh transaction id.
func (c *Conn) NextXid() uint32 { return c.xid.Add(1) }

// Send encodes and writes m with a fresh xid, returning the xid used.
func (c *Conn) Send(m Msg) (uint32, error) {
	xid := c.NextXid()
	return xid, c.SendXid(m, xid)
}

// SendXid encodes and writes m with the given xid (used for replies).
func (c *Conn) SendXid(m Msg, xid uint32) error {
	b := Encode(m, xid)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.rwc.Write(b)
	return err
}

// Recv reads and decodes the next message.
func (c *Conn) Recv() (Msg, uint32, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := int(be.Uint16(hdr[2:4]))
	if length < HeaderLen || length > maxMsgLen {
		return nil, 0, fmt.Errorf("openflow: bad frame length %d", length)
	}
	frame := make([]byte, length)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(c.br, frame[HeaderLen:]); err != nil {
		return nil, 0, err
	}
	return Decode(frame)
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rwc.Close() }

// Handshake performs the version negotiation from the initiator side:
// send HELLO, expect HELLO.
func (c *Conn) Handshake() error {
	if _, err := c.Send(Hello{}); err != nil {
		return err
	}
	m, _, err := c.Recv()
	if err != nil {
		return err
	}
	if _, ok := m.(Hello); !ok {
		return fmt.Errorf("openflow: handshake: got %T, want Hello", m)
	}
	return nil
}

// Dial connects to an OpenFlow switch at addr (TCP) and completes the
// handshake.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	if err := c.Handshake(); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}
