package openflow

import (
	"fmt"

	"ovshighway/internal/flow"
)

// Msg is one decoded OpenFlow message. Xid carries the transaction id from
// the header.
type Msg interface {
	// MsgType returns the OFPT_* discriminator.
	MsgType() uint8
	// encodeBody appends the body (everything after the 8-byte header).
	encodeBody(b []byte) []byte
}

// Hello is OFPT_HELLO.
type Hello struct{}

// MsgType implements Msg.
func (Hello) MsgType() uint8             { return TypeHello }
func (Hello) encodeBody(b []byte) []byte { return b }

// EchoRequest is OFPT_ECHO_REQUEST; Data is echoed back verbatim.
type EchoRequest struct{ Data []byte }

// MsgType implements Msg.
func (EchoRequest) MsgType() uint8               { return TypeEchoRequest }
func (m EchoRequest) encodeBody(b []byte) []byte { return append(b, m.Data...) }

// EchoReply is OFPT_ECHO_REPLY.
type EchoReply struct{ Data []byte }

// MsgType implements Msg.
func (EchoReply) MsgType() uint8               { return TypeEchoReply }
func (m EchoReply) encodeBody(b []byte) []byte { return append(b, m.Data...) }

// Error is OFPT_ERROR.
type Error struct {
	Type, Code uint16
	Data       []byte
}

// MsgType implements Msg.
func (Error) MsgType() uint8 { return TypeError }
func (m Error) encodeBody(b []byte) []byte {
	b = be.AppendUint16(b, m.Type)
	b = be.AppendUint16(b, m.Code)
	return append(b, m.Data...)
}

// Error implements the error interface so protocol errors can be returned.
func (m Error) Error() string {
	return fmt.Sprintf("openflow: error type=%d code=%d", m.Type, m.Code)
}

// FeaturesRequest is OFPT_FEATURES_REQUEST.
type FeaturesRequest struct{}

// MsgType implements Msg.
func (FeaturesRequest) MsgType() uint8             { return TypeFeaturesRequest }
func (FeaturesRequest) encodeBody(b []byte) []byte { return b }

// FeaturesReply is OFPT_FEATURES_REPLY.
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	AuxiliaryID  uint8
	Capabilities uint32
}

// MsgType implements Msg.
func (FeaturesReply) MsgType() uint8 { return TypeFeaturesReply }
func (m FeaturesReply) encodeBody(b []byte) []byte {
	b = be.AppendUint64(b, m.DatapathID)
	b = be.AppendUint32(b, m.NBuffers)
	b = append(b, m.NTables, m.AuxiliaryID, 0, 0)
	b = be.AppendUint32(b, m.Capabilities)
	return be.AppendUint32(b, 0)
}

// BarrierRequest is OFPT_BARRIER_REQUEST.
type BarrierRequest struct{}

// MsgType implements Msg.
func (BarrierRequest) MsgType() uint8             { return TypeBarrierRequest }
func (BarrierRequest) encodeBody(b []byte) []byte { return b }

// BarrierReply is OFPT_BARRIER_REPLY.
type BarrierReply struct{}

// MsgType implements Msg.
func (BarrierReply) MsgType() uint8             { return TypeBarrierReply }
func (BarrierReply) encodeBody(b []byte) []byte { return b }

// FlowMod is OFPT_FLOW_MOD, the message whose run-time analysis drives the
// paper's p-2-p link detector.
type FlowMod struct {
	Cookie     uint64
	CookieMask uint64
	TableID    uint8
	Command    uint8
	IdleTO     uint16
	HardTO     uint16
	Priority   uint16
	OutPort    uint32 // filter for delete commands
	Flags      uint16
	Match      flow.Match
	Actions    flow.Actions
}

// MsgType implements Msg.
func (FlowMod) MsgType() uint8 { return TypeFlowMod }
func (m FlowMod) encodeBody(b []byte) []byte {
	b = be.AppendUint64(b, m.Cookie)
	b = be.AppendUint64(b, m.CookieMask)
	b = append(b, m.TableID, m.Command)
	b = be.AppendUint16(b, m.IdleTO)
	b = be.AppendUint16(b, m.HardTO)
	b = be.AppendUint16(b, m.Priority)
	b = be.AppendUint32(b, 0xffffffff) // buffer_id: NO_BUFFER
	b = be.AppendUint32(b, m.OutPort)
	b = be.AppendUint32(b, PortAny) // out_group
	b = be.AppendUint16(b, m.Flags)
	b = append(b, 0, 0)
	b = append(b, EncodeMatch(m.Match)...)
	acts := EncodeActions(m.Actions)
	// Single apply-actions instruction.
	b = be.AppendUint16(b, instrApplyActions)
	b = be.AppendUint16(b, uint16(8+len(acts)))
	b = be.AppendUint32(b, 0)
	return append(b, acts...)
}

func decodeFlowMod(body []byte) (FlowMod, error) {
	var m FlowMod
	if len(body) < 40 {
		return m, fmt.Errorf("openflow: flow_mod body %d bytes", len(body))
	}
	m.Cookie = be.Uint64(body[0:8])
	m.CookieMask = be.Uint64(body[8:16])
	m.TableID = body[16]
	m.Command = body[17]
	m.IdleTO = be.Uint16(body[18:20])
	m.HardTO = be.Uint16(body[20:22])
	m.Priority = be.Uint16(body[22:24])
	m.OutPort = be.Uint32(body[28:32])
	m.Flags = be.Uint16(body[36:38])
	rest := body[40:]
	match, n, err := DecodeMatch(rest)
	if err != nil {
		return m, err
	}
	m.Match = match
	rest = rest[n:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return m, fmt.Errorf("openflow: truncated instruction")
		}
		itype := be.Uint16(rest[0:2])
		ilen := int(be.Uint16(rest[2:4]))
		if ilen < 8 || ilen > len(rest) {
			return m, fmt.Errorf("openflow: bad instruction length %d", ilen)
		}
		if itype == instrApplyActions {
			acts, err := DecodeActions(rest[8:ilen])
			if err != nil {
				return m, err
			}
			m.Actions = acts
		}
		rest = rest[ilen:]
	}
	return m, nil
}

// PacketIn is OFPT_PACKET_IN: a packet punted to the controller.
type PacketIn struct {
	Reason  uint8
	TableID uint8
	Cookie  uint64
	Match   flow.Match // carries in_port
	Data    []byte
}

// MsgType implements Msg.
func (PacketIn) MsgType() uint8 { return TypePacketIn }
func (m PacketIn) encodeBody(b []byte) []byte {
	b = be.AppendUint32(b, 0xffffffff) // buffer_id: NO_BUFFER
	b = be.AppendUint16(b, uint16(len(m.Data)))
	b = append(b, m.Reason, m.TableID)
	b = be.AppendUint64(b, m.Cookie)
	b = append(b, EncodeMatch(m.Match)...)
	b = append(b, 0, 0) // pad
	return append(b, m.Data...)
}

func decodePacketIn(body []byte) (PacketIn, error) {
	var m PacketIn
	if len(body) < 16 {
		return m, fmt.Errorf("openflow: packet_in body %d bytes", len(body))
	}
	m.Reason = body[6]
	m.TableID = body[7]
	m.Cookie = be.Uint64(body[8:16])
	rest := body[16:]
	match, n, err := DecodeMatch(rest)
	if err != nil {
		return m, err
	}
	m.Match = match
	rest = rest[n:]
	if len(rest) < 2 {
		return m, fmt.Errorf("openflow: packet_in missing pad")
	}
	m.Data = rest[2:]
	return m, nil
}

// PacketOut is OFPT_PACKET_OUT: a controller-injected packet. This is the
// message that must keep working through the *normal* channel even while a
// port's traffic rides the bypass.
type PacketOut struct {
	InPort  uint32
	Actions flow.Actions
	Data    []byte
}

// MsgType implements Msg.
func (PacketOut) MsgType() uint8 { return TypePacketOut }
func (m PacketOut) encodeBody(b []byte) []byte {
	acts := EncodeActions(m.Actions)
	b = be.AppendUint32(b, 0xffffffff) // buffer_id: NO_BUFFER
	b = be.AppendUint32(b, m.InPort)
	b = be.AppendUint16(b, uint16(len(acts)))
	b = append(b, 0, 0, 0, 0, 0, 0)
	b = append(b, acts...)
	return append(b, m.Data...)
}

func decodePacketOut(body []byte) (PacketOut, error) {
	var m PacketOut
	if len(body) < 16 {
		return m, fmt.Errorf("openflow: packet_out body %d bytes", len(body))
	}
	m.InPort = be.Uint32(body[4:8])
	alen := int(be.Uint16(body[8:10]))
	if 16+alen > len(body) {
		return m, fmt.Errorf("openflow: packet_out actions overflow")
	}
	acts, err := DecodeActions(body[16 : 16+alen])
	if err != nil {
		return m, err
	}
	m.Actions = acts
	m.Data = body[16+alen:]
	return m, nil
}

// Encode serializes any message with the given transaction id.
func Encode(m Msg, xid uint32) []byte {
	b := make([]byte, HeaderLen, HeaderLen+64)
	b = m.encodeBody(b)
	b[0] = Version
	b[1] = m.MsgType()
	be.PutUint16(b[2:4], uint16(len(b)))
	be.PutUint32(b[4:8], xid)
	return b
}

// Decode parses one complete framed message (header + body).
func Decode(b []byte) (Msg, uint32, error) {
	if len(b) < HeaderLen {
		return nil, 0, fmt.Errorf("openflow: short message: %d bytes", len(b))
	}
	if b[0] != Version {
		return nil, 0, fmt.Errorf("openflow: version %#x, want %#x", b[0], Version)
	}
	length := int(be.Uint16(b[2:4]))
	if length != len(b) {
		return nil, 0, fmt.Errorf("openflow: length field %d != frame %d", length, len(b))
	}
	xid := be.Uint32(b[4:8])
	body := b[HeaderLen:]
	var (
		m   Msg
		err error
	)
	switch b[1] {
	case TypeHello:
		m = Hello{}
	case TypeEchoRequest:
		m = EchoRequest{Data: body}
	case TypeEchoReply:
		m = EchoReply{Data: body}
	case TypeError:
		if len(body) < 4 {
			return nil, 0, fmt.Errorf("openflow: short error body")
		}
		m = Error{Type: be.Uint16(body[0:2]), Code: be.Uint16(body[2:4]), Data: body[4:]}
	case TypeFeaturesRequest:
		m = FeaturesRequest{}
	case TypeFeaturesReply:
		if len(body) < 24 {
			return nil, 0, fmt.Errorf("openflow: short features body")
		}
		m = FeaturesReply{
			DatapathID:   be.Uint64(body[0:8]),
			NBuffers:     be.Uint32(body[8:12]),
			NTables:      body[12],
			AuxiliaryID:  body[13],
			Capabilities: be.Uint32(body[16:20]),
		}
	case TypeBarrierRequest:
		m = BarrierRequest{}
	case TypeBarrierReply:
		m = BarrierReply{}
	case TypeFlowMod:
		m, err = decodeFlowMod(body)
	case TypeFlowRemoved:
		m, err = decodeFlowRemoved(body)
	case TypePacketIn:
		m, err = decodePacketIn(body)
	case TypePacketOut:
		m, err = decodePacketOut(body)
	case TypeMultipartRequest:
		m, err = decodeMultipartRequest(body)
	case TypeMultipartReply:
		m, err = decodeMultipartReply(body)
	default:
		return nil, xid, Error{Type: ErrTypeBadRequest, Code: ErrCodeBadType}
	}
	if err != nil {
		return nil, xid, err
	}
	return m, xid, nil
}
