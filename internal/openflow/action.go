package openflow

import (
	"fmt"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

// EncodeActions serializes an action list in OFP 1.3 wire format.
// flow.Drop has no wire representation (an empty list means drop) and
// flow.Controller becomes output:CONTROLLER. flow.ActPushVlan expands, as
// the protocol requires, into OFPAT_PUSH_VLAN(0x8100) followed by a
// set-field on VLAN_VID; flow.ActSetVlan is the bare set-field.
func EncodeActions(as flow.Actions) []byte {
	var b []byte
	// appendSetField frames one ofp_action_set_field: type(2) len(2) OXM,
	// padded to a multiple of 8 — shared by every set-field arm below so
	// the wire framing cannot diverge between fields.
	appendSetField := func(field uint8, val []byte) {
		oxm := appendOXM(nil, field, val, nil)
		alen := (4 + len(oxm) + 7) &^ 7
		b = be.AppendUint16(b, actSetField)
		b = be.AppendUint16(b, uint16(alen))
		b = append(b, oxm...)
		for pad := alen - 4 - len(oxm); pad > 0; pad-- {
			b = append(b, 0)
		}
	}
	appendVidSetField := func(vid uint16) {
		appendSetField(oxmVlanVID, u16bytes(vid&0x0fff|vlanPresent))
	}
	for _, a := range as {
		switch a.Type {
		case flow.ActOutput, flow.ActController:
			port := a.Port
			if a.Type == flow.ActController {
				port = PortController
			}
			// ofp_action_output: type(2) len(2)=16 port(4) max_len(2) pad(6)
			b = be.AppendUint16(b, actOutput)
			b = be.AppendUint16(b, 16)
			b = be.AppendUint32(b, port)
			b = be.AppendUint16(b, 0xffff) // OFPCML_NO_BUFFER
			b = append(b, 0, 0, 0, 0, 0, 0)
		case flow.ActDecTTL:
			// ofp_action_header: type(2) len(2)=8 pad(4)
			b = be.AppendUint16(b, actDecTTL)
			b = be.AppendUint16(b, 8)
			b = append(b, 0, 0, 0, 0)
		case flow.ActPushVlan:
			// ofp_action_push: type(2) len(2)=8 ethertype(2) pad(2), then the
			// vid rides a mandatory VLAN_VID set-field.
			b = be.AppendUint16(b, actPushVlan)
			b = be.AppendUint16(b, 8)
			b = be.AppendUint16(b, pkt.EtherTypeVLAN)
			b = append(b, 0, 0)
			appendVidSetField(a.Vlan)
		case flow.ActPopVlan:
			// ofp_action_header: type(2) len(2)=8 pad(4)
			b = be.AppendUint16(b, actPopVlan)
			b = be.AppendUint16(b, 8)
			b = append(b, 0, 0, 0, 0)
		case flow.ActSetVlan:
			appendVidSetField(a.Vlan)
		case flow.ActSetVlanPcp:
			appendSetField(oxmVlanPCP, []byte{a.PCP & 0x07})
		case flow.ActSetEthSrc, flow.ActSetEthDst:
			field := oxmEthSrc
			if a.Type == flow.ActSetEthDst {
				field = oxmEthDst
			}
			appendSetField(field, a.MAC[:])
		case flow.ActDrop:
			// Drop is the absence of actions; skip.
		case flow.ActOutputECMP:
			// Not representable in this wire subset: OpenFlow models
			// multi-path output as select groups, which we do not speak.
			// ECMP rules are fabric-internal (installed by the orchestrator
			// directly); a controller dump simply omits the action.
		}
	}
	return b
}

// DecodeActions parses an OFP 1.3 action list occupying all of b. An
// OFPAT_PUSH_VLAN followed by a VLAN_VID set-field folds into one
// flow.PushVlan; a bare VLAN_VID set-field decodes to flow.SetVlan.
func DecodeActions(b []byte) (flow.Actions, error) {
	var as flow.Actions
	pendingPush := false
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("openflow: truncated action header")
		}
		typ := be.Uint16(b[0:2])
		alen := int(be.Uint16(b[2:4]))
		if alen < 8 || alen%8 != 0 || alen > len(b) {
			return nil, fmt.Errorf("openflow: bad action length %d", alen)
		}
		if pendingPush && !(typ == actSetField) {
			return nil, fmt.Errorf("openflow: push_vlan without vlan_vid set-field")
		}
		body := b[4:alen]
		switch typ {
		case actOutput:
			if len(body) < 6 {
				return nil, fmt.Errorf("openflow: short output action")
			}
			port := be.Uint32(body[0:4])
			if port == PortController {
				as = append(as, flow.Controller())
			} else {
				as = append(as, flow.Output(port))
			}
		case actDecTTL:
			as = append(as, flow.DecTTL())
		case actPushVlan:
			if len(body) < 2 {
				return nil, fmt.Errorf("openflow: short push-vlan action")
			}
			if et := be.Uint16(body[0:2]); et != pkt.EtherTypeVLAN {
				return nil, fmt.Errorf("openflow: push-vlan ethertype 0x%04x unsupported", et)
			}
			pendingPush = true
		case actPopVlan:
			as = append(as, flow.PopVlan())
		case actSetField:
			if len(body) < 4 {
				return nil, fmt.Errorf("openflow: short set-field action")
			}
			field := body[2] >> 1
			plen := int(body[3])
			if len(body) < 4+plen {
				return nil, fmt.Errorf("openflow: truncated set-field OXM")
			}
			val := body[4 : 4+plen]
			switch field {
			case oxmEthSrc, oxmEthDst:
				if plen != 6 {
					return nil, fmt.Errorf("openflow: set-field MAC length %d", plen)
				}
				var m pkt.MAC
				copy(m[:], val)
				if field == oxmEthSrc {
					as = append(as, flow.SetEthSrc(m))
				} else {
					as = append(as, flow.SetEthDst(m))
				}
			case oxmVlanVID:
				if plen != 2 {
					return nil, fmt.Errorf("openflow: set-field VLAN_VID length %d", plen)
				}
				vid := be.Uint16(val) &^ vlanPresent
				if pendingPush {
					as = append(as, flow.PushVlan(vid))
					pendingPush = false
				} else {
					as = append(as, flow.SetVlan(vid))
				}
			case oxmVlanPCP:
				if plen != 1 {
					return nil, fmt.Errorf("openflow: set-field VLAN_PCP length %d", plen)
				}
				as = append(as, flow.SetVlanPcp(val[0]))
			default:
				return nil, fmt.Errorf("openflow: unsupported set-field %d", field)
			}
		default:
			return nil, fmt.Errorf("openflow: unsupported action type %d", typ)
		}
		b = b[alen:]
	}
	if pendingPush {
		return nil, fmt.Errorf("openflow: push_vlan without vlan_vid set-field")
	}
	return as, nil
}
