package openflow

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

func roundTrip(t *testing.T, m Msg, xid uint32) Msg {
	t.Helper()
	b := Encode(m, xid)
	got, gotXid, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%T): %v", m, err)
	}
	if gotXid != xid {
		t.Fatalf("xid = %d, want %d", gotXid, xid)
	}
	return got
}

func TestHeaderFields(t *testing.T) {
	b := Encode(Hello{}, 42)
	if len(b) != HeaderLen {
		t.Fatalf("hello frame = %d bytes", len(b))
	}
	if b[0] != Version || b[1] != TypeHello {
		t.Fatalf("header = % x", b)
	}
	if be.Uint16(b[2:4]) != HeaderLen || be.Uint32(b[4:8]) != 42 {
		t.Fatalf("length/xid wrong: % x", b)
	}
}

func TestSimpleMessagesRoundTrip(t *testing.T) {
	cases := []Msg{
		Hello{},
		EchoRequest{Data: []byte("ping")},
		EchoReply{Data: []byte("pong")},
		FeaturesRequest{},
		BarrierRequest{},
		BarrierReply{},
		Error{Type: ErrTypeBadRequest, Code: ErrCodeBadType, Data: []byte{1, 2}},
		FeaturesReply{DatapathID: 0xdeadbeef, NBuffers: 256, NTables: 1, Capabilities: 7},
	}
	for i, m := range cases {
		got := roundTrip(t, m, uint32(i))
		// Echo/Error data decode as views of the frame; compare structurally.
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("case %d: got %+v, want %+v", i, got, m)
		}
	}
}

// normalize maps nil and empty byte slices to a canonical form for DeepEqual.
func normalize(m Msg) Msg {
	switch v := m.(type) {
	case EchoRequest:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case EchoReply:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case Error:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	default:
		return m
	}
}

func TestMatchRoundTripVariants(t *testing.T) {
	cases := []flow.Match{
		flow.MatchAll(),
		flow.MatchInPort(7),
		flow.MatchInPort(1).WithEthType(pkt.EtherTypeIPv4),
		flow.MatchInPort(2).WithIPProto(pkt.ProtoUDP).WithL4Dst(53),
		flow.MatchInPort(3).WithIPProto(pkt.ProtoTCP).WithL4Src(80).WithL4Dst(8080),
		flow.MatchAll().WithIPDst(pkt.IP4{10, 1, 0, 0}, 16),
		flow.MatchAll().WithIPSrc(pkt.IP4{192, 168, 0, 0}, 24).WithIPDst(pkt.IP4{10, 0, 0, 1}, 32),
		flow.MatchAll().WithEthDst(pkt.MAC{2, 0, 0, 0, 0, 9}),
		flow.MatchAll().WithVlan(100),
		flow.MatchInPort(1).WithIPProto(pkt.ProtoUDP).WithIPDst(pkt.IP4{10, 0, 0, 2}, 32).WithL4Dst(4000),
	}
	for i, m := range cases {
		enc := EncodeMatch(m)
		if len(enc)%8 != 0 {
			t.Errorf("case %d: match not 8-padded (%d bytes)", i, len(enc))
		}
		got, n, err := DecodeMatch(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(enc) {
			t.Errorf("case %d: consumed %d of %d", i, n, len(enc))
		}
		if !got.Equal(m) {
			t.Errorf("case %d: got %s, want %s", i, got, m)
		}
	}
}

func TestActionsRoundTrip(t *testing.T) {
	cases := []flow.Actions{
		nil,
		{flow.Output(3)},
		{flow.Controller()},
		{flow.DecTTL(), flow.Output(1)},
		{flow.SetEthSrc(pkt.MAC{1, 2, 3, 4, 5, 6}), flow.SetEthDst(pkt.MAC{6, 5, 4, 3, 2, 1}), flow.Output(9)},
		{flow.PushVlan(42), flow.Output(2)},
		{flow.PopVlan(), flow.Output(7)},
		{flow.SetVlan(100), flow.Output(1)},
		{flow.PushVlan(7), flow.Output(2), flow.PopVlan(), flow.Output(3)},
	}
	for i, as := range cases {
		enc := EncodeActions(as)
		got, err := DecodeActions(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !got.Equal(as) {
			t.Errorf("case %d: got %v, want %v", i, got, as)
		}
	}
}

func TestDanglingPushVlanRejected(t *testing.T) {
	// OFPAT_PUSH_VLAN with no following VLAN_VID set-field is malformed.
	var enc []byte
	enc = be.AppendUint16(enc, actPushVlan)
	enc = be.AppendUint16(enc, 8)
	enc = be.AppendUint16(enc, pkt.EtherTypeVLAN)
	enc = append(enc, 0, 0)
	if _, err := DecodeActions(enc); err == nil {
		t.Fatal("dangling push_vlan accepted")
	}
	// …including when a different action interposes.
	enc = append(enc, EncodeActions(flow.Actions{flow.Output(1)})...)
	if _, err := DecodeActions(enc); err == nil {
		t.Fatal("push_vlan split from its set-field accepted")
	}
}

func TestDropActionHasNoWireForm(t *testing.T) {
	enc := EncodeActions(flow.Actions{flow.Drop()})
	if len(enc) != 0 {
		t.Fatalf("drop encoded as % x", enc)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := FlowMod{
		Cookie:   0x1122334455667788,
		Command:  FlowCmdAdd,
		Priority: 100,
		OutPort:  PortAny,
		Match:    flow.MatchInPort(4).WithIPProto(pkt.ProtoUDP).WithL4Dst(9999),
		Actions:  flow.Actions{flow.Output(5)},
	}
	got := roundTrip(t, m, 77).(FlowMod)
	if got.Cookie != m.Cookie || got.Command != m.Command || got.Priority != m.Priority {
		t.Fatalf("scalar fields: %+v", got)
	}
	if !got.Match.Equal(m.Match) {
		t.Fatalf("match: got %s want %s", got.Match, m.Match)
	}
	if !got.Actions.Equal(m.Actions) {
		t.Fatalf("actions: got %v want %v", got.Actions, m.Actions)
	}
}

func TestFlowModDeleteRoundTrip(t *testing.T) {
	m := FlowMod{
		Command: FlowCmdDeleteStrict,
		OutPort: 3,
		Match:   flow.MatchInPort(1),
	}
	got := roundTrip(t, m, 1).(FlowMod)
	if got.Command != FlowCmdDeleteStrict || got.OutPort != 3 {
		t.Fatalf("got %+v", got)
	}
	if len(got.Actions) != 0 {
		t.Fatalf("delete with actions: %v", got.Actions)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	data := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}
	m := PacketIn{
		Reason:  PacketInNoMatch,
		TableID: 0,
		Cookie:  12345,
		Match:   flow.MatchInPort(6),
		Data:    data,
	}
	got := roundTrip(t, m, 9).(PacketIn)
	if got.Reason != m.Reason || got.Cookie != m.Cookie {
		t.Fatalf("got %+v", got)
	}
	if got.Match.Key.InPort != 6 {
		t.Fatalf("in_port = %d", got.Match.Key.InPort)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatalf("data = % x", got.Data)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	m := PacketOut{
		InPort:  PortController,
		Actions: flow.Actions{flow.Output(2)},
		Data:    []byte("frame-bytes"),
	}
	got := roundTrip(t, m, 3).(PacketOut)
	if got.InPort != m.InPort || !got.Actions.Equal(m.Actions) || !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("got %+v", got)
	}
}

func TestPortStatsRoundTrip(t *testing.T) {
	req := PortStatsRequest{PortNo: PortAny}
	gotReq := roundTrip(t, req, 5).(PortStatsRequest)
	if gotReq.PortNo != PortAny {
		t.Fatalf("req port = %d", gotReq.PortNo)
	}
	reply := PortStatsReply{Stats: []PortStats{
		{PortNo: 1, RxPackets: 100, TxPackets: 200, RxBytes: 6400, TxBytes: 12800, RxDropped: 1, TxDropped: 2},
		{PortNo: 2, RxPackets: 7},
	}}
	gotReply := roundTrip(t, reply, 6).(PortStatsReply)
	if !reflect.DeepEqual(gotReply, reply) {
		t.Fatalf("got %+v, want %+v", gotReply, reply)
	}
}

func TestFlowStatsRoundTrip(t *testing.T) {
	req := FlowStatsRequest{TableID: 0, OutPort: PortAny, Match: flow.MatchInPort(1)}
	gotReq := roundTrip(t, req, 8).(FlowStatsRequest)
	if !gotReq.Match.Equal(req.Match) {
		t.Fatalf("req match %s", gotReq.Match)
	}
	reply := FlowStatsReply{Stats: []FlowStats{
		{
			TableID: 0, Priority: 10, Cookie: 42,
			PacketCount: 1000, ByteCount: 64000,
			Match:   flow.MatchInPort(1),
			Actions: flow.Actions{flow.Output(2)},
		},
		{
			TableID: 0, Priority: 20, Cookie: 43,
			PacketCount: 5, ByteCount: 300,
			Match:   flow.MatchInPort(2).WithIPProto(pkt.ProtoTCP),
			Actions: flow.Actions{flow.Controller()},
		},
	}}
	gotReply := roundTrip(t, reply, 9).(FlowStatsReply)
	if len(gotReply.Stats) != 2 {
		t.Fatalf("stats count %d", len(gotReply.Stats))
	}
	for i := range reply.Stats {
		w, g := reply.Stats[i], gotReply.Stats[i]
		if g.Priority != w.Priority || g.Cookie != w.Cookie ||
			g.PacketCount != w.PacketCount || g.ByteCount != w.ByteCount {
			t.Errorf("entry %d scalars: %+v", i, g)
		}
		if !g.Match.Equal(w.Match) || !g.Actions.Equal(w.Actions) {
			t.Errorf("entry %d match/actions mismatch", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	// Short frame.
	if _, _, err := Decode([]byte{4, 0}); err == nil {
		t.Error("short frame accepted")
	}
	// Wrong version.
	b := Encode(Hello{}, 1)
	b[0] = 0x01
	if _, _, err := Decode(b); err == nil {
		t.Error("wrong version accepted")
	}
	// Length field mismatch.
	b = Encode(Hello{}, 1)
	b[2], b[3] = 0, 200
	if _, _, err := Decode(b); err == nil {
		t.Error("length mismatch accepted")
	}
	// Unknown type maps to a protocol Error.
	b = Encode(Hello{}, 1)
	b[1] = 99
	_, _, err := Decode(b)
	if _, ok := err.(Error); !ok {
		t.Errorf("unknown type: err = %v, want openflow.Error", err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestQuickDecodeTotal(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: flow-mod round trip preserves match and actions for random
// well-formed inputs.
func TestQuickFlowModRoundTrip(t *testing.T) {
	f := func(port uint32, prio uint16, proto bool, l4 uint16, out uint32) bool {
		m := flow.MatchInPort(port)
		if proto {
			m = m.WithIPProto(pkt.ProtoUDP).WithL4Dst(l4)
		}
		fm := FlowMod{Command: FlowCmdAdd, Priority: prio, Match: m,
			Actions: flow.Actions{flow.Output(out)}}
		b := Encode(fm, 1)
		got, _, err := Decode(b)
		if err != nil {
			return false
		}
		gfm, ok := got.(FlowMod)
		return ok && gfm.Priority == prio && gfm.Match.Equal(m) && gfm.Actions.Equal(fm.Actions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverDone := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		c := NewConn(nc)
		defer c.Close()
		// Expect HELLO, reply HELLO, then echo flow-mods back as packet-ins.
		m, _, err := c.Recv()
		if err != nil {
			serverDone <- err
			return
		}
		if _, ok := m.(Hello); !ok {
			serverDone <- err
			return
		}
		if _, err := c.Send(Hello{}); err != nil {
			serverDone <- err
			return
		}
		m, xid, err := c.Recv()
		if err != nil {
			serverDone <- err
			return
		}
		fm := m.(FlowMod)
		serverDone <- c.SendXid(PacketIn{Cookie: fm.Cookie, Match: fm.Match}, xid)
	}()

	c, err := Dial(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fm := FlowMod{Cookie: 99, Command: FlowCmdAdd, Priority: 1,
		Match: flow.MatchInPort(2), Actions: flow.Actions{flow.Output(3)}}
	xid, err := c.Send(fm)
	if err != nil {
		t.Fatal(err)
	}
	m, gotXid, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if gotXid != xid {
		t.Fatalf("xid %d != %d", gotXid, xid)
	}
	pi := m.(PacketIn)
	if pi.Cookie != 99 || pi.Match.Key.InPort != 2 {
		t.Fatalf("packet-in %+v", pi)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeFlowMod(b *testing.B) {
	fm := FlowMod{Command: FlowCmdAdd, Priority: 100,
		Match:   flow.MatchInPort(4).WithIPProto(pkt.ProtoUDP).WithL4Dst(9999),
		Actions: flow.Actions{flow.Output(5)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(fm, uint32(i))
	}
}

func BenchmarkDecodeFlowMod(b *testing.B) {
	fm := FlowMod{Command: FlowCmdAdd, Priority: 100,
		Match:   flow.MatchInPort(4).WithIPProto(pkt.ProtoUDP).WithL4Dst(9999),
		Actions: flow.Actions{flow.Output(5)}}
	buf := Encode(fm, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
