package openflow

import (
	"encoding/binary"
	"fmt"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

var be = binary.BigEndian

// appendOXM appends one OXM TLV. value and mask must have equal length;
// mask nil means no mask.
func appendOXM(b []byte, field uint8, value, mask []byte) []byte {
	hasMask := uint8(0)
	payloadLen := len(value)
	if mask != nil {
		hasMask = 1
		payloadLen *= 2
	}
	b = be.AppendUint16(b, oxmClassBasic)
	b = append(b, field<<1|hasMask, uint8(payloadLen))
	b = append(b, value...)
	if mask != nil {
		b = append(b, mask...)
	}
	return b
}

func u16bytes(v uint16) []byte { var b [2]byte; be.PutUint16(b[:], v); return b[:] }
func u32bytes(v uint32) []byte { var b [4]byte; be.PutUint32(b[:], v); return b[:] }

// fullMask reports whether every byte of m is 0xff.
func fullMask(m []byte) bool {
	for _, b := range m {
		if b != 0xff {
			return false
		}
	}
	return true
}

// zeroMask reports whether every byte of m is zero.
func zeroMask(m []byte) bool {
	for _, b := range m {
		if b != 0 {
			return false
		}
	}
	return true
}

// EncodeMatch serializes m as an OFP 1.3 OXM match structure, padded to a
// multiple of 8 bytes as the spec requires.
func EncodeMatch(m flow.Match) []byte {
	var oxms []byte
	if m.Mask.InPort != 0 {
		oxms = appendOXM(oxms, oxmInPort, u32bytes(m.Key.InPort), nil)
	}
	if m.Mask.EthSrc != (pkt.MAC{}) {
		if fullMask(m.Mask.EthSrc[:]) {
			oxms = appendOXM(oxms, oxmEthSrc, m.Key.EthSrc[:], nil)
		} else {
			oxms = appendOXM(oxms, oxmEthSrc, m.Key.EthSrc[:], m.Mask.EthSrc[:])
		}
	}
	if m.Mask.EthDst != (pkt.MAC{}) {
		if fullMask(m.Mask.EthDst[:]) {
			oxms = appendOXM(oxms, oxmEthDst, m.Key.EthDst[:], nil)
		} else {
			oxms = appendOXM(oxms, oxmEthDst, m.Key.EthDst[:], m.Mask.EthDst[:])
		}
	}
	if m.Mask.EthType != 0 {
		oxms = appendOXM(oxms, oxmEthType, u16bytes(m.Key.EthType), nil)
	}
	if m.Mask.VlanID != 0 {
		oxms = appendOXM(oxms, oxmVlanVID, u16bytes(m.Key.VlanID|vlanPresent), nil)
	}
	if m.Mask.IPDSCP != 0 {
		oxms = appendOXM(oxms, oxmIPDSCP, []byte{m.Key.IPDSCP}, nil)
	}
	if m.Mask.IPProto != 0 {
		oxms = appendOXM(oxms, oxmIPProto, []byte{m.Key.IPProto}, nil)
	}
	if m.Mask.IPSrc != 0 {
		if m.Mask.IPSrc == ^uint32(0) {
			oxms = appendOXM(oxms, oxmIPv4Src, u32bytes(m.Key.IPSrc), nil)
		} else {
			oxms = appendOXM(oxms, oxmIPv4Src, u32bytes(m.Key.IPSrc), u32bytes(m.Mask.IPSrc))
		}
	}
	if m.Mask.IPDst != 0 {
		if m.Mask.IPDst == ^uint32(0) {
			oxms = appendOXM(oxms, oxmIPv4Dst, u32bytes(m.Key.IPDst), nil)
		} else {
			oxms = appendOXM(oxms, oxmIPv4Dst, u32bytes(m.Key.IPDst), u32bytes(m.Mask.IPDst))
		}
	}
	// L4 port OXMs are protocol-specific; pick by the matched IP protocol.
	srcField, dstField := oxmTCPSrc, oxmTCPDst
	if m.Key.IPProto == pkt.ProtoUDP {
		srcField, dstField = oxmUDPSrc, oxmUDPDst
	}
	if m.Mask.L4Src != 0 {
		oxms = appendOXM(oxms, srcField, u16bytes(m.Key.L4Src), nil)
	}
	if m.Mask.L4Dst != 0 {
		oxms = appendOXM(oxms, dstField, u16bytes(m.Key.L4Dst), nil)
	}

	// ofp_match: type=1 (OXM), length covers type+length+oxms (not padding).
	length := 4 + len(oxms)
	out := make([]byte, 0, (length+7)&^7)
	out = be.AppendUint16(out, 1)
	out = be.AppendUint16(out, uint16(length))
	out = append(out, oxms...)
	for len(out)%8 != 0 {
		out = append(out, 0)
	}
	return out
}

// DecodeMatch parses an OXM match structure from b, returning the match and
// the number of bytes consumed (including padding).
func DecodeMatch(b []byte) (flow.Match, int, error) {
	var m flow.Match
	if len(b) < 4 {
		return m, 0, fmt.Errorf("openflow: match: %d bytes", len(b))
	}
	if mt := be.Uint16(b[0:2]); mt != 1 {
		return m, 0, fmt.Errorf("openflow: match type %d, want OXM(1)", mt)
	}
	length := int(be.Uint16(b[2:4]))
	if length < 4 || length > len(b) {
		return m, 0, fmt.Errorf("openflow: match length %d out of range", length)
	}
	oxms := b[4:length]
	for len(oxms) > 0 {
		if len(oxms) < 4 {
			return m, 0, fmt.Errorf("openflow: truncated OXM header")
		}
		class := be.Uint16(oxms[0:2])
		field := oxms[2] >> 1
		hasMask := oxms[2]&1 == 1
		plen := int(oxms[3])
		if len(oxms) < 4+plen {
			return m, 0, fmt.Errorf("openflow: truncated OXM payload")
		}
		payload := oxms[4 : 4+plen]
		if class != oxmClassBasic {
			return m, 0, fmt.Errorf("openflow: unsupported OXM class %#x", class)
		}
		vlen := plen
		var value, mask []byte
		if hasMask {
			vlen = plen / 2
			value, mask = payload[:vlen], payload[vlen:]
		} else {
			value = payload
		}
		if err := applyOXM(&m, field, value, mask); err != nil {
			return m, 0, err
		}
		oxms = oxms[4+plen:]
	}
	consumed := (length + 7) &^ 7
	if consumed > len(b) {
		return m, 0, fmt.Errorf("openflow: match padding exceeds buffer")
	}
	return m, consumed, nil
}

func applyOXM(m *flow.Match, field uint8, value, mask []byte) error {
	need := func(n int) error {
		if len(value) != n {
			return fmt.Errorf("openflow: OXM field %d: %d-byte value, want %d", field, len(value), n)
		}
		if mask != nil && len(mask) != n {
			return fmt.Errorf("openflow: OXM field %d: %d-byte mask, want %d", field, len(mask), n)
		}
		return nil
	}
	switch field {
	case oxmInPort:
		if err := need(4); err != nil {
			return err
		}
		if mask != nil {
			return fmt.Errorf("openflow: in_port must not be masked")
		}
		m.Key.InPort = be.Uint32(value)
		m.Mask.InPort = ^uint32(0)
	case oxmEthSrc:
		if err := need(6); err != nil {
			return err
		}
		copy(m.Key.EthSrc[:], value)
		if mask != nil {
			copy(m.Mask.EthSrc[:], mask)
		} else {
			m.Mask.EthSrc = pkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
		}
	case oxmEthDst:
		if err := need(6); err != nil {
			return err
		}
		copy(m.Key.EthDst[:], value)
		if mask != nil {
			copy(m.Mask.EthDst[:], mask)
		} else {
			m.Mask.EthDst = pkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
		}
	case oxmEthType:
		if err := need(2); err != nil {
			return err
		}
		m.Key.EthType = be.Uint16(value)
		m.Mask.EthType = 0xffff
	case oxmVlanVID:
		if err := need(2); err != nil {
			return err
		}
		m.Key.VlanID = be.Uint16(value) &^ vlanPresent
		m.Mask.VlanID = 0x0fff
	case oxmIPDSCP:
		if err := need(1); err != nil {
			return err
		}
		m.Key.IPDSCP = value[0]
		m.Mask.IPDSCP = 0x3f
	case oxmIPProto:
		if err := need(1); err != nil {
			return err
		}
		m.Key.IPProto = value[0]
		m.Mask.IPProto = 0xff
	case oxmIPv4Src:
		if err := need(4); err != nil {
			return err
		}
		m.Key.IPSrc = be.Uint32(value)
		if mask != nil {
			m.Mask.IPSrc = be.Uint32(mask)
		} else {
			m.Mask.IPSrc = ^uint32(0)
		}
	case oxmIPv4Dst:
		if err := need(4); err != nil {
			return err
		}
		m.Key.IPDst = be.Uint32(value)
		if mask != nil {
			m.Mask.IPDst = be.Uint32(mask)
		} else {
			m.Mask.IPDst = ^uint32(0)
		}
	case oxmTCPSrc, oxmUDPSrc:
		if err := need(2); err != nil {
			return err
		}
		m.Key.L4Src = be.Uint16(value)
		m.Mask.L4Src = 0xffff
	case oxmTCPDst, oxmUDPDst:
		if err := need(2); err != nil {
			return err
		}
		m.Key.L4Dst = be.Uint16(value)
		m.Mask.L4Dst = 0xffff
	default:
		return fmt.Errorf("openflow: unsupported OXM field %d", field)
	}
	return nil
}
