package openflow

import (
	"fmt"

	"ovshighway/internal/flow"
)

// TypeFlowRemoved is OFPT_FLOW_REMOVED.
const TypeFlowRemoved uint8 = 11

// Flow-removed reasons (OFPRR_*).
const (
	RemovedIdleTimeout uint8 = 0
	RemovedHardTimeout uint8 = 1
	RemovedDelete      uint8 = 2
)

// FlowRemoved is OFPT_FLOW_REMOVED: the switch notifies the controller that
// a flow expired or was deleted (when the flow-mod requested it via
// OFPFF_SEND_FLOW_REM).
type FlowRemoved struct {
	Cookie      uint64
	Priority    uint16
	Reason      uint8
	TableID     uint8
	DurationSec uint32
	IdleTO      uint16
	HardTO      uint16
	PacketCount uint64
	ByteCount   uint64
	Match       flow.Match
}

// MsgType implements Msg.
func (FlowRemoved) MsgType() uint8 { return TypeFlowRemoved }
func (m FlowRemoved) encodeBody(b []byte) []byte {
	b = be.AppendUint64(b, m.Cookie)
	b = be.AppendUint16(b, m.Priority)
	b = append(b, m.Reason, m.TableID)
	b = be.AppendUint32(b, m.DurationSec)
	b = be.AppendUint32(b, 0) // duration_nsec
	b = be.AppendUint16(b, m.IdleTO)
	b = be.AppendUint16(b, m.HardTO)
	b = be.AppendUint64(b, m.PacketCount)
	b = be.AppendUint64(b, m.ByteCount)
	return append(b, EncodeMatch(m.Match)...)
}

func decodeFlowRemoved(body []byte) (FlowRemoved, error) {
	var m FlowRemoved
	if len(body) < 40 {
		return m, fmt.Errorf("openflow: flow_removed body %d bytes", len(body))
	}
	m.Cookie = be.Uint64(body[0:8])
	m.Priority = be.Uint16(body[8:10])
	m.Reason = body[10]
	m.TableID = body[11]
	m.DurationSec = be.Uint32(body[12:16])
	m.IdleTO = be.Uint16(body[20:22])
	m.HardTO = be.Uint16(body[22:24])
	m.PacketCount = be.Uint64(body[24:32])
	m.ByteCount = be.Uint64(body[32:40])
	match, _, err := DecodeMatch(body[40:])
	if err != nil {
		return m, err
	}
	m.Match = match
	return m, nil
}
