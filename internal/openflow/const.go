// Package openflow implements the subset of the OpenFlow 1.3 wire protocol
// this system speaks on its controller channel: handshake, echo, flow-mods,
// packet-in/out, barriers and port/flow multipart statistics, with OXM TLV
// match encoding.
//
// The codec converts between wire messages and the internal flow package
// types (flow.Match, flow.Actions), so the vSwitch front-end and the p-2-p
// link detector operate on decoded flow-mods exactly the way the paper's
// modified OVS analyses "each flowmod received by the vSwitch".
package openflow

// Version is the only protocol version supported (OpenFlow 1.3).
const Version = 0x04

// HeaderLen is the fixed size of the OpenFlow message header.
const HeaderLen = 8

// Message types (OFPT_*).
const (
	TypeHello            uint8 = 0
	TypeError            uint8 = 1
	TypeEchoRequest      uint8 = 2
	TypeEchoReply        uint8 = 3
	TypeFeaturesRequest  uint8 = 5
	TypeFeaturesReply    uint8 = 6
	TypePacketIn         uint8 = 10
	TypePacketOut        uint8 = 13
	TypeFlowMod          uint8 = 14
	TypeMultipartRequest uint8 = 18
	TypeMultipartReply   uint8 = 19
	TypeBarrierRequest   uint8 = 20
	TypeBarrierReply     uint8 = 21
)

// Flow-mod commands (OFPFC_*).
const (
	FlowCmdAdd uint8 = iota
	FlowCmdModify
	FlowCmdModifyStrict
	FlowCmdDelete
	FlowCmdDeleteStrict
)

// Reserved port numbers (OFPP_*).
const (
	PortAny        uint32 = 0xffffffff
	PortController uint32 = 0xfffffffd
)

// Multipart types (OFPMP_*).
const (
	MultipartFlow      uint16 = 1
	MultipartPortStats uint16 = 4
)

// Packet-in reasons (OFPR_*).
const (
	PacketInNoMatch uint8 = 0
	PacketInAction  uint8 = 1
)

// Error types/codes used by this implementation (OFPET_* / OFPBRC_*).
const (
	ErrTypeBadRequest uint16 = 1
	ErrCodeBadType    uint16 = 1
	ErrCodeBadLen     uint16 = 2
)

// OXM class and field ids (OFPXMC_OPENFLOW_BASIC / OXM_OF_*).
const (
	oxmClassBasic uint16 = 0x8000

	oxmInPort  uint8 = 0
	oxmEthDst  uint8 = 3
	oxmEthSrc  uint8 = 4
	oxmEthType uint8 = 5
	oxmVlanVID uint8 = 6
	oxmVlanPCP uint8 = 7
	oxmIPDSCP  uint8 = 8
	oxmIPProto uint8 = 10
	oxmIPv4Src uint8 = 11
	oxmIPv4Dst uint8 = 12
	oxmTCPSrc  uint8 = 13
	oxmTCPDst  uint8 = 14
	oxmUDPSrc  uint8 = 15
	oxmUDPDst  uint8 = 16
)

// Action types (OFPAT_*).
const (
	actOutput   uint16 = 0
	actPushVlan uint16 = 17
	actPopVlan  uint16 = 18
	actDecTTL   uint16 = 24
	actSetField uint16 = 25
)

// instrApplyActions is the only instruction type supported (OFPIT_APPLY_ACTIONS).
const instrApplyActions uint16 = 4

// vlanPresent is the OFPVID_PRESENT bit OpenFlow sets in VLAN_VID values.
const vlanPresent uint16 = 0x1000
