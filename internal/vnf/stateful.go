package vnf

import (
	"fmt"
	"sync/atomic"
	"time"

	"ovshighway/internal/conntrack"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// The stateful VNFs below (NAT44, ACL with established bypass, L4 balancer)
// all ride one conntrack.Table: a zero-alloc sharded connection table whose
// shard pick reuses the datapath's Hash2, so a connection's state lives on
// the PMD/VNF goroutine its packets arrive on. Each App is a single
// goroutine, satisfying the table's single-writer-per-shard contract; the
// vSwitch sweeper expires idle entries cross-thread via death-marks.

// fixupL4 repairs the transport checksum after an IP/port rewrite: UDP drops
// to the no-checksum sentinel (legal for IPv4 UDP — recomputation would scan
// the payload), TCP recomputes over the pseudo-header and segment.
func fixupL4(p *pkt.Parser) {
	switch {
	case p.Decoded.Has(pkt.LayerUDP):
		p.UDP.SetChecksum(0)
	case p.Decoded.Has(pkt.LayerTCP):
		p.TCP.SetChecksum(0)
		p.TCP.SetChecksum(pkt.L4Checksum(p.IPv4.Src(), p.IPv4.Dst(), pkt.ProtoTCP, p.TCP.Segment()))
	}
}

// reverseKey returns the tuple return traffic for k carries.
func reverseKey(k conntrack.Key) conntrack.Key {
	return conntrack.Key{
		Src: k.Dst, Dst: k.Src,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

// --- NAT44 ------------------------------------------------------------------

// NAT44Config parametrizes NewNAT44.
type NAT44Config struct {
	// ExtIP is the external (translated-to) address this node owns.
	ExtIP pkt.IP4
	// PortBase/PortCount delimit this node's port block — the cluster-level
	// placement hands each NAT node a disjoint block of the ExtIP port
	// space, so nodes allocate without coordinating (per-node port-block
	// allocation).
	PortBase  uint16
	PortCount int
	// Table is the conntrack table translations live in. Its IdleTimeout
	// bounds how long an idle binding holds its port.
	Table *conntrack.Table
	// Linger is the TIME_WAIT-style hold-down between observing a full TCP
	// close (a FIN from each direction, or a RST) and releasing the external
	// port. The binding keeps translating through the hold-down — the peer's
	// FIN/ACK, the final ACK and any retransmits still flow — and the port
	// cannot be remapped while the remote endpoint may still legitimately
	// transmit to it. Zero takes the 2s default.
	Linger time.Duration
}

// natDefaultLinger is the default NAT44Config.Linger.
const natDefaultLinger = 2 * time.Second

// Close-handshake progress bits, one set per allocated port (closeFl).
const (
	closeFinIn  uint8 = 1 << iota // FIN seen from the inside host
	closeFinOut                   // FIN seen from the outside peer
	closeQueued                   // close complete; port lingering toward release
)

// portLinger is one closed binding awaiting its hold-down expiry.
type portLinger struct {
	port     uint16
	deadline int64 // UnixNano after which the port may be released
}

// NAT44 is the stateful source-NAT VNF: port 0 faces inside, port 1 faces
// outside. Outbound connections get (ExtIP, block port) bindings; return
// traffic is translated back; unsolicited outside traffic is dropped.
type NAT44 struct {
	cfg      NAT44Config
	portFree []uint16 // free ports of the block (owner goroutine only)
	// binding[i] is the inside→outside tuple holding port PortBase+i, valid
	// when bound[i]; lets ReclaimExpired release ports whose conntrack
	// entries the sweeper idled out (owner goroutine only).
	binding []conntrack.Key
	bound   []bool
	// closeFl[i] tracks the TCP close handshake of the binding on port
	// PortBase+i; lingerQ is a FIFO ring (closeQueued guarantees at most one
	// slot per port, so PortCount slots never overflow) of close-complete
	// ports riding out the Linger hold-down. Owner goroutine only.
	closeFl    []uint8
	lingerQ    []portLinger
	lingerHead int
	lingerLen  int
	Bound      atomic.Uint64
	Unbound   atomic.Uint64
	Exhausted atomic.Uint64 // drops: port block empty or table full
	Unsolicit atomic.Uint64 // drops: outside packet with no binding
	Untransl  atomic.Uint64 // drops: not translatable (non-IPv4/TCP/UDP)
}

// PortsFree returns the number of unallocated ports left in the block.
// Owner-goroutine accuracy; racing readers get a snapshot.
func (n *NAT44) PortsFree() int { return len(n.portFree) }

// NewNAT44 builds the NAT app. Port allocation, binding insertion and
// reclamation all run on the app goroutine — the conntrack shard owner — so
// the whole fast path is lock-free and allocation-free.
func NewNAT44(name string, inside, outside *dpdkr.PMD, pool *mempool.Pool, cfg NAT44Config) (*App, *NAT44, error) {
	if cfg.Table == nil {
		return nil, nil, fmt.Errorf("nat44 %s: nil conntrack table", name)
	}
	if cfg.PortCount <= 0 || int(cfg.PortBase)+cfg.PortCount > 0x10000 {
		return nil, nil, fmt.Errorf("nat44 %s: bad port block [%d,+%d)", name, cfg.PortBase, cfg.PortCount)
	}
	if cfg.Linger <= 0 {
		cfg.Linger = natDefaultLinger
	}
	n := &NAT44{
		cfg:      cfg,
		portFree: make([]uint16, 0, cfg.PortCount),
		binding:  make([]conntrack.Key, cfg.PortCount),
		bound:    make([]bool, cfg.PortCount),
		closeFl:  make([]uint8, cfg.PortCount),
		lingerQ:  make([]portLinger, cfg.PortCount),
	}
	for i := cfg.PortCount - 1; i >= 0; i-- {
		n.portFree = append(n.portFree, cfg.PortBase+uint16(i))
	}
	ct := cfg.Table
	var parser pkt.Parser
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		now := time.Now().UnixNano()
		n.drainLinger(ct, now)
		keep := bufs[:0]
		for _, b := range bufs {
			if parser.Parse(b.Bytes()) != nil || !parser.Decoded.Has(pkt.LayerIPv4) {
				n.Untransl.Add(1)
				b.Free()
				continue
			}
			ft, ok := parser.FiveTuple()
			if !ok || (ft.Proto != pkt.ProtoUDP && ft.Proto != pkt.ProtoTCP) {
				n.Untransl.Add(1)
				b.Free()
				continue
			}
			if inPort == 0 {
				if !n.outbound(ct, &parser, ft, now) {
					b.Free()
					continue
				}
			} else {
				if !n.inbound(ct, &parser, ft, now) {
					b.Free()
					continue
				}
			}
			keep = append(keep, b)
		}
		ctx.Tx(1-inPort, keep)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{inside, outside}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, nil, err
	}
	return app, n, nil
}

// outbound translates inside→outside traffic, establishing a binding on the
// first packet of a connection.
func (n *NAT44) outbound(ct *conntrack.Table, p *pkt.Parser, ft conntrack.Key, now int64) bool {
	e := ct.Lookup(ft, now)
	if e == nil {
		if len(n.portFree) == 0 {
			n.Exhausted.Add(1)
			return false
		}
		port := n.portFree[len(n.portFree)-1]
		fwd := ct.Insert(ft, now)
		if fwd == nil {
			n.Exhausted.Add(1)
			return false
		}
		// Reverse binding keyed by the tuple return packets carry:
		// remoteIP:remotePort → ExtIP:port.
		rk := conntrack.Key{Src: ft.Dst, Dst: n.cfg.ExtIP, SrcPort: ft.DstPort, DstPort: port, Proto: ft.Proto}
		rev := ct.Insert(rk, now)
		if rev == nil {
			ct.Remove(ft)
			n.Exhausted.Add(1)
			return false
		}
		n.portFree = n.portFree[:len(n.portFree)-1]
		n.binding[port-n.cfg.PortBase] = ft
		n.bound[port-n.cfg.PortBase] = true
		fwd.XlateIP = n.cfg.ExtIP
		fwd.XlatePort = port
		rev.XlateIP = ft.Src
		rev.XlatePort = ft.SrcPort
		if ft.Proto == pkt.ProtoTCP {
			fwd.TCPState = conntrack.TCPOpening
			rev.TCPState = conntrack.TCPOpening
		}
		n.Bound.Add(1)
		e = fwd
	}
	xip, xport := e.XlateIP, e.XlatePort
	fin, rst := observeTCP(p, e)
	p.IPv4.SetSrc(xip)
	if p.Decoded.Has(pkt.LayerUDP) {
		p.UDP.SetSrcPort(xport)
	} else {
		p.TCP.SetSrcPort(xport)
	}
	p.IPv4.UpdateChecksum()
	fixupL4(p)
	if fin || rst {
		n.noteClose(xport, closeFinIn, rst, now)
	}
	return true
}

// inbound translates outside→inside return traffic through an existing
// binding; unsolicited traffic dies here (the NAT is also a stateful
// firewall).
func (n *NAT44) inbound(ct *conntrack.Table, p *pkt.Parser, ft conntrack.Key, now int64) bool {
	e := ct.Lookup(ft, now)
	if e == nil {
		n.Unsolicit.Add(1)
		return false
	}
	insideIP, insidePort := e.XlateIP, e.XlatePort
	extPort := ft.DstPort
	fin, rst := observeTCP(p, e)
	p.IPv4.SetDst(insideIP)
	if p.Decoded.Has(pkt.LayerUDP) {
		p.UDP.SetDstPort(insidePort)
	} else {
		p.TCP.SetDstPort(insidePort)
	}
	p.IPv4.UpdateChecksum()
	fixupL4(p)
	if fin || rst {
		n.noteClose(extPort, closeFinOut, rst, now)
	}
	return true
}

// observeTCP advances the coarse TCP lifecycle on e and reports whether the
// packet carries a FIN or RST.
func observeTCP(p *pkt.Parser, e *conntrack.Entry) (fin, rst bool) {
	if !p.Decoded.Has(pkt.LayerTCP) {
		return false, false
	}
	f := p.TCP.Flags()
	switch {
	case f&pkt.TCPRst != 0:
		e.TCPState = conntrack.TCPClosing
		return false, true
	case f&pkt.TCPFin != 0:
		e.TCPState = conntrack.TCPClosing
		return true, false
	case f&pkt.TCPAck != 0 && e.TCPState == conntrack.TCPOpening:
		e.TCPState = conntrack.TCPOpen
	}
	return false, false
}

// noteClose records close-handshake progress on the binding holding port:
// dir is the direction bit the FIN was seen from; a RST counts for both
// directions (the connection is dead both ways). Once both directions have
// closed, the port enters the linger queue — the binding keeps translating
// (FIN/ACKs, the final ACK, retransmits) until drainLinger retires it after
// the hold-down, so the port is never remapped while the remote endpoint
// may still legitimately transmit. Owner goroutine only.
func (n *NAT44) noteClose(port uint16, dir uint8, rst bool, now int64) {
	i := int(port) - int(n.cfg.PortBase)
	if i < 0 || i >= len(n.bound) || !n.bound[i] {
		return
	}
	if rst {
		n.closeFl[i] |= closeFinIn | closeFinOut
	} else {
		n.closeFl[i] |= dir
	}
	const bothFins = closeFinIn | closeFinOut
	if n.closeFl[i]&bothFins != bothFins || n.closeFl[i]&closeQueued != 0 {
		return
	}
	n.closeFl[i] |= closeQueued
	slot := (n.lingerHead + n.lingerLen) % len(n.lingerQ)
	n.lingerQ[slot] = portLinger{port: port, deadline: now + n.cfg.Linger.Nanoseconds()}
	n.lingerLen++
}

// drainLinger unbinds the closed ports whose hold-down elapsed. Deadlines
// are enqueued in arrival order, so the scan stops at the first live one.
// Owner goroutine only.
func (n *NAT44) drainLinger(ct *conntrack.Table, now int64) {
	for n.lingerLen > 0 {
		le := n.lingerQ[n.lingerHead]
		if le.deadline > now {
			return
		}
		n.lingerHead = (n.lingerHead + 1) % len(n.lingerQ)
		n.lingerLen--
		n.unbind(ct, n.binding[le.port-n.cfg.PortBase], le.port)
	}
}

// unbind retires a binding: both conntrack directions plus the block port.
// fwd is the inside→outside tuple; extPort the allocated external port. The
// conntrack entries may already be sweeper-expired carcasses — the bound
// record, not the table, is authoritative for whether the port is held.
func (n *NAT44) unbind(ct *conntrack.Table, fwd conntrack.Key, extPort uint16) {
	rk := conntrack.Key{Src: fwd.Dst, Dst: n.cfg.ExtIP, SrcPort: fwd.DstPort, DstPort: extPort, Proto: fwd.Proto}
	ct.Remove(fwd)
	ct.Remove(rk)
	i := extPort - n.cfg.PortBase
	if n.bound[i] {
		n.bound[i] = false
		n.closeFl[i] = 0
		n.portFree = append(n.portFree, extPort)
		n.Unbound.Add(1)
	}
}

// ReclaimExpired releases block ports whose bindings the expiry sweeper
// death-marked (idle connections that never sent a FIN), and drains any
// close-lingered ports whose hold-down elapsed. The conntrack table cannot
// release NAT ports itself — the block freelist is owner state — so the
// owner calls this periodically (cheap: one probe per outstanding
// allocation). Must run on the app goroutine or with the app stopped.
// Returns the number of ports freed.
func (n *NAT44) ReclaimExpired(ct *conntrack.Table, now int64) int {
	freed := 0
	before := n.lingerLen
	n.drainLinger(ct, now)
	freed += before - n.lingerLen
	for i := range n.bound {
		if !n.bound[i] || n.closeFl[i]&closeQueued != 0 {
			continue // free, or owned by the linger queue
		}
		fwd := n.binding[i]
		// Peek, not Lookup: a counting probe would refresh the entry's idle
		// clock and keep every binding eternally fresh, defeating the very
		// expiry this reclaim rides on.
		if ct.Peek(fwd) != nil {
			continue // still live
		}
		// Retire both carcasses and release the port.
		n.unbind(ct, fwd, n.cfg.PortBase+uint16(i))
		freed++
	}
	return freed
}

// --- ACL with established-connection bypass ---------------------------------

// ACLRule is one compiled firewall rule: a classifier match plus verdict.
type ACLRule struct {
	Priority uint16
	Match    flow.Match
	Allow    bool
}

// ACL is the stateful firewall VNF: first-packet decisions walk a classifier
// compiled from the rules (the same tuple-space machinery the vSwitch
// uses); allowed connections are inserted into conntrack, and every later
// packet — both directions — takes the zero-alloc established-bypass hit
// path without touching the classifier.
type ACL struct {
	rules *flow.Table
	ct    *conntrack.Table

	Established atomic.Uint64 // packets served by the conntrack bypass
	Walked      atomic.Uint64 // packets that took the classifier walk
	Denied      atomic.Uint64
	TableFull   atomic.Uint64 // allowed but not trackable; still forwarded
}

// Rules exposes the compiled classifier (tests/operators).
func (a *ACL) Rules() *flow.Table { return a.rules }

// aclCookie tags compiled ACL rules in the classifier; the verdict itself
// is read from the matched flow's action type.
const aclCookie = 0xAC1 << 16

// NewACL builds the two-port stateful firewall. Rules are compiled into a
// flow.Table (priority order, first match wins — exactly the classifier's
// contract); defaultAllow decides no-match traffic.
func NewACL(name string, in, out *dpdkr.PMD, pool *mempool.Pool, ct *conntrack.Table, rules []ACLRule, defaultAllow bool) (*App, *ACL, error) {
	if ct == nil {
		return nil, nil, fmt.Errorf("acl %s: nil conntrack table", name)
	}
	rt := flow.NewTable()
	for i, r := range rules {
		act := flow.Actions{flow.Drop()}
		if r.Allow {
			act = flow.Actions{flow.Output(1)}
		}
		rt.Add(r.Priority, r.Match, act, uint64(aclCookie|i))
	}
	// Priority-0 default.
	defAct := flow.Actions{flow.Drop()}
	if defaultAllow {
		defAct = flow.Actions{flow.Output(1)}
	}
	rt.Add(0, flow.MatchAll(), defAct, aclCookie|0xffff)
	a := &ACL{rules: rt, ct: ct}
	var parser pkt.Parser
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		now := time.Now().UnixNano()
		keep := bufs[:0]
		for _, b := range bufs {
			if parser.Parse(b.Bytes()) != nil {
				b.Free()
				a.Denied.Add(1)
				continue
			}
			ft, ok := parser.FiveTuple()
			if ok {
				if e := ct.Lookup(ft, now); e != nil {
					// Established: no classifier walk, no allocation.
					a.Established.Add(1)
					keep = append(keep, b)
					continue
				}
			}
			// First packet (or untrackable): classifier walk.
			a.Walked.Add(1)
			k := flow.ExtractKey(&parser, uint32(inPort))
			f := a.rules.Lookup(&k)
			allow := f != nil && len(f.Actions) > 0 && f.Actions[0].Type == flow.ActOutput
			if !allow {
				a.Denied.Add(1)
				b.Free()
				continue
			}
			if ok {
				// Track both directions so return traffic bypasses too. If
				// only the forward entry fits, roll it back: a half-tracked
				// connection would serve forward packets from the bypass
				// while replies — matching no forward-direction rule — are
				// denied. Untracked, the connection keeps re-walking the
				// classifier and retries tracking once the table has room.
				if fe := ct.Insert(ft, now); fe != nil {
					if ct.Insert(reverseKey(ft), now) == nil {
						ct.Remove(ft)
						a.TableFull.Add(1)
					}
				} else {
					a.TableFull.Add(1)
				}
			}
			keep = append(keep, b)
		}
		ctx.Tx(1-inPort, keep)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{in, out}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, nil, err
	}
	return app, a, nil
}

// --- L4 load balancer -------------------------------------------------------

// Backend is one balancer target.
type Backend struct {
	IP   pkt.IP4
	Port uint16
}

// BalancerConfig parametrizes NewBalancer.
type BalancerConfig struct {
	// VIP/VIPPort is the virtual service address clients talk to.
	VIP     pkt.IP4
	VIPPort uint16
	// Backends are the real servers; a connection is pinned to one on its
	// first packet by the same Hash2 the RSS/ECMP spreading uses, so the
	// pick is stable across the connection's lifetime.
	Backends []Backend
	// Table is the conntrack table connection→backend pins live in.
	Table *conntrack.Table
}

// Balancer is the L4 load-balancing VNF: port 0 faces clients, port 1 faces
// the backend fabric. DNAT on the way in, SNAT back to the VIP on the way
// out; the backend pick is per-connection state in conntrack.
type Balancer struct {
	cfg BalancerConfig

	NewConns atomic.Uint64
	NotVIP   atomic.Uint64 // client-side packets not addressed to the VIP
	NoState  atomic.Uint64 // backend-side packets with no pinned connection
	Full     atomic.Uint64 // connection table exhausted
}

// BackendFor reports the pinned backend index for a client tuple, -1 if
// none. Test/operator helper; runs a real (counted) lookup.
func (lb *Balancer) BackendFor(ct *conntrack.Table, k conntrack.Key, now int64) int {
	if e := ct.Lookup(k, now); e != nil {
		return int(e.Backend)
	}
	return -1
}

// NewBalancer builds the two-port L4 balancer app.
func NewBalancer(name string, client, backend *dpdkr.PMD, pool *mempool.Pool, cfg BalancerConfig) (*App, *Balancer, error) {
	if cfg.Table == nil {
		return nil, nil, fmt.Errorf("balancer %s: nil conntrack table", name)
	}
	if len(cfg.Backends) == 0 {
		return nil, nil, fmt.Errorf("balancer %s: no backends", name)
	}
	lb := &Balancer{cfg: cfg}
	ct := cfg.Table
	var parser pkt.Parser
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		now := time.Now().UnixNano()
		keep := bufs[:0]
		for _, b := range bufs {
			if parser.Parse(b.Bytes()) != nil || !parser.Decoded.Has(pkt.LayerIPv4) {
				lb.NotVIP.Add(1)
				b.Free()
				continue
			}
			ft, ok := parser.FiveTuple()
			if !ok || (ft.Proto != pkt.ProtoUDP && ft.Proto != pkt.ProtoTCP) {
				lb.NotVIP.Add(1)
				b.Free()
				continue
			}
			forward := false
			if inPort == 0 {
				forward = lb.toBackend(ct, &parser, ft, now)
			} else {
				forward = lb.toClient(ct, &parser, ft, now)
			}
			if !forward {
				b.Free()
				continue
			}
			keep = append(keep, b)
		}
		ctx.Tx(1-inPort, keep)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{client, backend}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, nil, err
	}
	return app, lb, nil
}

// toBackend DNATs a client→VIP packet to its pinned backend, pinning one on
// the first packet.
func (lb *Balancer) toBackend(ct *conntrack.Table, p *pkt.Parser, ft conntrack.Key, now int64) bool {
	e := ct.Lookup(ft, now)
	if e == nil {
		if ft.Dst != lb.cfg.VIP || ft.DstPort != lb.cfg.VIPPort {
			lb.NotVIP.Add(1)
			return false
		}
		// Pin by the connection hash — the same value that spread the
		// connection across RX queues and fabric paths.
		idx := int32(conntrack.HashKey(ft) % uint32(len(lb.cfg.Backends)))
		fwd := ct.Insert(ft, now)
		if fwd == nil {
			lb.Full.Add(1)
			return false
		}
		bk := lb.cfg.Backends[idx]
		// Reverse pin keyed by the tuple backend replies carry.
		rk := conntrack.Key{Src: bk.IP, Dst: ft.Src, SrcPort: bk.Port, DstPort: ft.SrcPort, Proto: ft.Proto}
		rev := ct.Insert(rk, now)
		if rev == nil {
			ct.Remove(ft)
			lb.Full.Add(1)
			return false
		}
		fwd.Backend = idx
		fwd.XlateIP = bk.IP
		fwd.XlatePort = bk.Port
		rev.Backend = idx
		rev.XlateIP = lb.cfg.VIP
		rev.XlatePort = lb.cfg.VIPPort
		lb.NewConns.Add(1)
		e = fwd
	}
	p.IPv4.SetDst(e.XlateIP)
	if p.Decoded.Has(pkt.LayerUDP) {
		p.UDP.SetDstPort(e.XlatePort)
	} else {
		p.TCP.SetDstPort(e.XlatePort)
	}
	p.IPv4.UpdateChecksum()
	fixupL4(p)
	return true
}

// toClient SNATs a backend reply's source back to the VIP.
func (lb *Balancer) toClient(ct *conntrack.Table, p *pkt.Parser, ft conntrack.Key, now int64) bool {
	e := ct.Lookup(ft, now)
	if e == nil {
		lb.NoState.Add(1)
		return false
	}
	p.IPv4.SetSrc(e.XlateIP)
	if p.Decoded.Has(pkt.LayerUDP) {
		p.UDP.SetSrcPort(e.XlatePort)
	} else {
		p.TCP.SetSrcPort(e.XlatePort)
	}
	p.IPv4.UpdateChecksum()
	fixupL4(p)
	return true
}
