package vnf

import (
	"runtime"
	"sync/atomic"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
	"ovshighway/internal/stats"
)

// SrcSink is a combined traffic endpoint: it generates frames on its single
// port and terminates whatever arrives, which is exactly the role of the
// first and last VM in the paper's bidirectional chain experiments. With
// Timestamp enabled it stamps each generated frame's buffer and feeds the
// one-way latency of received stamped frames into a histogram (experiment
// E3).
type SrcSink struct {
	Name string

	pmd  *dpdkr.PMD
	pool *mempool.Pool

	Sent     atomic.Uint64
	Received atomic.Uint64
	RxBytes  atomic.Uint64
	Lat      stats.LatencyHist

	timestamp bool
	rate      float64      // generation cap in pps (0 = unpaced)
	start     atomic.Int64 // window start, UnixNano

	// paused gates generation only: a paused endpoint keeps terminating
	// arrivals, so callers can drain the pipeline to a known-empty state and
	// take exact Sent/Received accounting snapshots (the migration
	// experiment's zero-loss bookkeeping).
	paused atomic.Bool

	stop atomic.Bool
	done chan struct{}
}

// SrcSinkConfig parametrizes NewSrcSink.
type SrcSinkConfig struct {
	Name      string
	PMD       *dpdkr.PMD
	Pool      *mempool.Pool
	Spec      pkt.UDPSpec
	Flows     int  // distinct UDP source ports to cycle (default 1)
	Timestamp bool // stamp generated frames and record one-way latency
	Batch     int  // default 32
	// RatePps caps the generation rate (0 = generate as fast as the pool and
	// ring allow). A paced endpoint below the chain's capacity reaches a
	// lossless steady state, which is what exact end-to-end packet accounting
	// (the migration experiment) needs.
	RatePps float64
}

// NewSrcSink starts a bidirectional endpoint.
func NewSrcSink(cfg SrcSinkConfig) (*SrcSink, error) {
	if cfg.Flows < 1 {
		cfg.Flows = 1
	}
	if cfg.Batch == 0 {
		cfg.Batch = 32
	}
	if cfg.Spec.FrameLen == 0 {
		cfg.Spec.FrameLen = pkt.MinFrame
	}
	templates := make([][]byte, cfg.Flows)
	for i := range templates {
		sp := cfg.Spec
		sp.SrcPort = cfg.Spec.SrcPort + uint16(i)
		buf := make([]byte, 2048)
		n, err := pkt.BuildUDP(buf, sp)
		if err != nil {
			return nil, err
		}
		templates[i] = buf[:n]
	}
	s := &SrcSink{
		Name:      cfg.Name,
		pmd:       cfg.PMD,
		pool:      cfg.Pool,
		timestamp: cfg.Timestamp,
		rate:      cfg.RatePps,
		done:      make(chan struct{}),
	}
	s.start.Store(time.Now().UnixNano())
	go s.run(templates, cfg.Batch)
	return s, nil
}

func (s *SrcSink) run(templates [][]byte, batchSize int) {
	defer close(s.done)
	txBatch := make([]*mempool.Buf, batchSize)
	rxBatch := make([]*mempool.Buf, batchSize)
	next := 0
	// credit is the paced-mode generation budget, topped up by wall time.
	// The burst cap (two batches) bounds how hard a starved endpoint slams
	// the ring when credit accumulates during a stall.
	var credit float64
	lastTick := time.Now()
	for !s.stop.Load() {
		// work tracks whether this pass moved any packet; an endpoint that is
		// pool-starved or ring-blocked must yield instead of burning its
		// scheduling quantum generating frames that tail-drop immediately
		// (essential on few-core hosts, where a spinning source starves the
		// very consumers that would relieve it).
		work := false
		// Generate.
		want := batchSize
		if s.paused.Load() {
			want = 0
		} else if s.rate > 0 {
			now := time.Now()
			credit += now.Sub(lastTick).Seconds() * s.rate
			lastTick = now
			if max := float64(2 * batchSize); credit > max {
				credit = max
			}
			if want = int(credit); want > batchSize {
				want = batchSize
			}
		}
		n := 0
		if want > 0 {
			n = s.pool.GetBatch(txBatch[:want])
		}
		if n > 0 {
			var now int64
			if s.timestamp {
				now = time.Now().UnixNano()
			}
			for i := 0; i < n; i++ {
				txBatch[i].SetBytes(templates[next])
				txBatch[i].TS = now
				next++
				if next == len(templates) {
					next = 0
				}
			}
			sent := s.pmd.Tx(txBatch[:n])
			if sent < n {
				mempool.FreeBatch(txBatch[sent:n])
			}
			if s.rate > 0 {
				credit -= float64(n)
			}
			s.Sent.Add(uint64(sent))
			if sent > 0 {
				work = true
			}
		}
		// Terminate: account first, then return the burst to the pool in one
		// batched free.
		k := s.pmd.Rx(rxBatch)
		if k > 0 {
			var now int64
			if s.timestamp {
				now = time.Now().UnixNano()
			}
			var bytes uint64
			for i := 0; i < k; i++ {
				b := rxBatch[i]
				bytes += uint64(b.Len)
				if s.timestamp && b.TS != 0 {
					s.Lat.Observe(time.Duration(now - b.TS))
				}
			}
			mempool.FreeBatch(rxBatch[:k])
			s.Received.Add(uint64(k))
			s.RxBytes.Add(bytes)
			work = true
		}
		if !work {
			runtime.Gosched()
		}
	}
}

// Stop halts the endpoint.
func (s *SrcSink) Stop() {
	if s.stop.CompareAndSwap(false, true) {
		<-s.done
	}
}

// SetPaused gates generation: a paused endpoint stops injecting but keeps
// terminating arrivals, so the chain drains to empty and Sent/Received
// become an exact conservation ledger. Safe to toggle while running.
func (s *SrcSink) SetPaused(p bool) { s.paused.Store(p) }

// InFlight returns Sent - Received: with every peer endpoint paused and the
// pipeline drained, a nonzero residue is packets lost in the fabric.
func (s *SrcSink) InFlight() int64 {
	return int64(s.Sent.Load()) - int64(s.Received.Load())
}

// ResetWindow zeroes the receive counters, latency histogram and rate clock.
func (s *SrcSink) ResetWindow() {
	s.Received.Store(0)
	s.RxBytes.Store(0)
	s.Lat.Reset()
	s.start.Store(time.Now().UnixNano())
}

// RatePps returns the receive rate since the window start.
func (s *SrcSink) RatePps() float64 {
	el := time.Since(time.Unix(0, s.start.Load())).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Received.Load()) / el
}
