package vnf

import (
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
)

func TestSrcSinkGeneratesAndTerminates(t *testing.T) {
	pl := mempool.MustNew(mempool.Config{Capacity: 512, BufSize: 2048, Headroom: 128})
	host, pmd, err := dpdkr.NewPort(1, "p", 256)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSrcSink(SrcSinkConfig{
		Name: "end", PMD: pmd, Pool: pl, Spec: spec, Flows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Stop()

	// Echo generated frames straight back at the endpoint.
	batch := make([]*mempool.Buf, 32)
	moved := 0
	deadline := time.Now().Add(2 * time.Second)
	for moved < 2000 && time.Now().Before(deadline) {
		n := host.Recv(batch)
		if n == 0 {
			continue
		}
		moved += host.Send(batch[:n])
	}
	if moved < 2000 {
		t.Fatalf("echoed only %d frames", moved)
	}
	deadline = time.Now().Add(2 * time.Second)
	for ss.Received.Load() < 2000 && time.Now().Before(deadline) {
	}
	if ss.Sent.Load() == 0 || ss.Received.Load() < 2000 {
		t.Fatalf("sent=%d received=%d", ss.Sent.Load(), ss.Received.Load())
	}
	if ss.RatePps() <= 0 {
		t.Fatal("rate not positive")
	}
	// Without Timestamp the latency histogram stays empty.
	if ss.Lat.Count() != 0 {
		t.Fatalf("unexpected latency samples: %d", ss.Lat.Count())
	}
}

func TestSrcSinkLatencySampling(t *testing.T) {
	pl := mempool.MustNew(mempool.Config{Capacity: 256, BufSize: 2048, Headroom: 128})
	host, pmd, err := dpdkr.NewPort(1, "p", 128)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSrcSink(SrcSinkConfig{
		Name: "end", PMD: pmd, Pool: pl, Spec: spec, Timestamp: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Stop()

	batch := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(2 * time.Second)
	for ss.Lat.Count() < 1000 && time.Now().Before(deadline) {
		n := host.Recv(batch)
		if n > 0 {
			host.Send(batch[:n])
		}
	}
	if ss.Lat.Count() < 1000 {
		t.Fatalf("latency samples = %d", ss.Lat.Count())
	}
	p50 := ss.Lat.Quantile(0.5)
	if p50 <= 0 || p50 > time.Second {
		t.Fatalf("implausible p50 %v", p50)
	}
	// Reset is only exact once the endpoint is quiescent (in-flight frames
	// land immediately after a live reset, by design).
	ss.Stop()
	ss.ResetWindow()
	if ss.Lat.Count() != 0 || ss.Received.Load() != 0 {
		t.Fatal("window reset incomplete")
	}
}

func TestSrcSinkBuildError(t *testing.T) {
	pl := mempool.MustNew(mempool.Config{Capacity: 16, BufSize: 2048, Headroom: 128})
	_, pmd, _ := dpdkr.NewPort(1, "p", 64)
	bad := spec
	bad.Payload = make([]byte, 4000) // exceeds template buffer
	if _, err := NewSrcSink(SrcSinkConfig{Name: "x", PMD: pmd, Pool: pl, Spec: bad}); err == nil {
		t.Fatal("oversized spec accepted")
	}
}
