// Package vnf provides the DPDK-application framework the guest network
// functions are built on, plus the stock VNFs used in the paper's
// experiments and examples: a port-to-port forwarder, a firewall, a traffic
// monitor, and source/sink generators.
//
// An App is the equivalent of a single-core DPDK app: one goroutine polling
// its ports in a run-to-completion loop. Thanks to the PMD's transparency,
// exactly the same App binary-logic runs whether its traffic crosses the
// vSwitch or a direct bypass channel — the paper's headline property.
package vnf

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
)

// Handler processes one received burst. bufs are owned by the handler: every
// buffer must be either transmitted via ctx.Tx or freed.
type Handler func(ctx *Ctx, inPort int, bufs []*mempool.Buf)

// Ctx is the per-App view handlers operate through.
type Ctx struct {
	app *App
}

// Tx transmits bufs on the app's out-th port, freeing whatever the ring
// rejects and counting it as a drop.
func (c *Ctx) Tx(out int, bufs []*mempool.Buf) {
	pmd := c.app.pmds[out]
	n := pmd.Tx(bufs)
	if n < len(bufs) {
		mempool.FreeBatch(bufs[n:])
	}
	c.app.TxPackets.Add(uint64(n))
	c.app.TxDrops.Add(uint64(len(bufs) - n))
}

// Drop frees all bufs in one batched free, counting them as intentional
// drops.
func (c *Ctx) Drop(bufs []*mempool.Buf) {
	n := len(bufs)
	mempool.FreeBatch(bufs)
	c.app.Dropped.Add(uint64(n))
}

// Pool returns the app's buffer pool (for handlers that synthesize packets).
func (c *Ctx) Pool() *mempool.Pool { return c.app.pool }

// App is one VNF instance: a set of dpdkr ports driven by a single lcore
// goroutine.
type App struct {
	Name string

	pmds    []*dpdkr.PMD
	pool    *mempool.Pool
	batch   int
	handler Handler

	RxPackets atomic.Uint64
	TxPackets atomic.Uint64
	TxDrops   atomic.Uint64
	Dropped   atomic.Uint64

	stop atomic.Bool
	done chan struct{}
}

// Config parametrizes an App.
type Config struct {
	Name    string
	PMDs    []*dpdkr.PMD // the app's ports, in app-local order
	Pool    *mempool.Pool
	Batch   int // default 32
	Handler Handler
}

// New builds a stopped App.
func New(cfg Config) (*App, error) {
	if len(cfg.PMDs) == 0 {
		return nil, fmt.Errorf("vnf %s: no ports", cfg.Name)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("vnf %s: no handler", cfg.Name)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 32
	}
	return &App{
		Name:    cfg.Name,
		pmds:    cfg.PMDs,
		pool:    cfg.Pool,
		batch:   cfg.Batch,
		handler: cfg.Handler,
		done:    make(chan struct{}),
	}, nil
}

// Start launches the lcore goroutine.
func (a *App) Start() {
	go a.run()
}

// Stop halts the loop and waits for it to exit.
func (a *App) Stop() {
	if a.stop.CompareAndSwap(false, true) {
		<-a.done
	}
}

func (a *App) run() {
	defer close(a.done)
	ctx := &Ctx{app: a}
	batch := make([]*mempool.Buf, a.batch)
	for !a.stop.Load() {
		work := false
		for i, pmd := range a.pmds {
			n := pmd.Rx(batch)
			if n == 0 {
				continue
			}
			work = true
			a.RxPackets.Add(uint64(n))
			a.handler(ctx, i, batch[:n])
		}
		if !work {
			runtime.Gosched()
		}
	}
}

// --- stock VNFs -------------------------------------------------------------

// ForwardHandler returns the paper's benchmark VNF behaviour: packets
// received on port i are transmitted on the "other" port (0↔1). Apps built
// with it must have exactly two ports.
func ForwardHandler() Handler {
	return func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		ctx.Tx(1-inPort, bufs)
	}
}

// NewForwarder builds the chain-element VNF used throughout the evaluation:
// a single-core app that moves packets between its two ports.
func NewForwarder(name string, in, out *dpdkr.PMD, pool *mempool.Pool) (*App, error) {
	return New(Config{
		Name:    name,
		PMDs:    []*dpdkr.PMD{in, out},
		Pool:    pool,
		Handler: ForwardHandler(),
	})
}
