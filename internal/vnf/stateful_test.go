package vnf

import (
	"testing"
	"time"

	"ovshighway/internal/conntrack"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

func ctTable(t testing.TB, shards, cap int) *conntrack.Table {
	t.Helper()
	ct, err := conntrack.New(conntrack.Config{Shards: shards, Capacity: cap, IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func tcpFrame(t testing.TB, p *mempool.Pool, spec pkt.TCPSpec) *mempool.Buf {
	t.Helper()
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 256)
	n, err := pkt.BuildTCP(raw, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n < pkt.MinFrame {
		n = pkt.MinFrame
	}
	b.SetBytes(raw[:n])
	return b
}

func parse(t testing.TB, b *mempool.Buf) *pkt.Parser {
	t.Helper()
	var p pkt.Parser
	if err := p.Parse(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	return &p
}

func TestNAT44Translates(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	ct := ctTable(t, 1, 256)
	extIP := pkt.IP4{192, 0, 2, 1}
	app, nat, err := NewNAT44("nat", pmdIn, pmdOut, pl, NAT44Config{
		ExtIP: extIP, PortBase: 40000, PortCount: 16, Table: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	// Outbound first packet establishes a binding and rewrites the source.
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("outbound packet lost")
	}
	p := parse(t, b)
	if p.IPv4.Src() != extIP {
		t.Fatalf("src not translated: %v", p.IPv4.Src())
	}
	extPort := p.UDP.SrcPort()
	if extPort < 40000 || extPort >= 40016 {
		t.Fatalf("translated port %d outside block", extPort)
	}
	if !p.IPv4.VerifyChecksum() {
		t.Fatal("IPv4 checksum invalid after NAT")
	}
	if p.UDP.Checksum() != 0 {
		t.Fatal("UDP checksum not cleared")
	}
	b.Free()
	if nat.Bound.Load() != 1 || nat.PortsFree() != 15 {
		t.Fatalf("bound=%d free=%d", nat.Bound.Load(), nat.PortsFree())
	}

	// Return traffic through the binding is translated back.
	ret := pkt.UDPSpec{
		SrcMAC: spec.DstMAC, DstMAC: spec.SrcMAC,
		SrcIP: spec.DstIP, DstIP: extIP,
		SrcPort: spec.DstPort, DstPort: extPort, FrameLen: pkt.MinFrame,
	}
	out.Send([]*mempool.Buf{frame(t, pl, ret)})
	b = recvHost(in, time.Second)
	if b == nil {
		t.Fatal("return packet lost")
	}
	p = parse(t, b)
	if p.IPv4.Dst() != spec.SrcIP || p.UDP.DstPort() != spec.SrcPort {
		t.Fatalf("return not untranslated: %v:%d", p.IPv4.Dst(), p.UDP.DstPort())
	}
	b.Free()

	// Same connection reuses the binding (no new port).
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b = recvHost(out, time.Second)
	if b == nil {
		t.Fatal("second outbound lost")
	}
	if got := parse(t, b).UDP.SrcPort(); got != extPort {
		t.Fatalf("binding unstable: port %d then %d", extPort, got)
	}
	b.Free()
	if nat.Bound.Load() != 1 {
		t.Fatalf("second packet re-bound: %d", nat.Bound.Load())
	}

	// Unsolicited outside traffic dies.
	bad := ret
	bad.DstPort = 40015
	out.Send([]*mempool.Buf{frame(t, pl, bad)})
	if b := recvHost(in, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("unsolicited packet forwarded")
	}
	if nat.Unsolicit.Load() == 0 {
		t.Fatal("unsolicited drop not counted")
	}
}

func TestNAT44TCPLifecycle(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	ct := ctTable(t, 1, 256)
	extIP := pkt.IP4{192, 0, 2, 1}
	const linger = 100 * time.Millisecond
	app, nat, err := NewNAT44("nat", pmdIn, pmdOut, pl, NAT44Config{
		ExtIP: extIP, PortBase: 40000, PortCount: 4, Table: ct, Linger: linger,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	syn := pkt.TCPSpec{
		SrcMAC: spec.SrcMAC, DstMAC: spec.DstMAC,
		SrcIP: spec.SrcIP, DstIP: spec.DstIP,
		SrcPort: 5000, DstPort: 6000, Flags: pkt.TCPSyn,
	}
	in.Send([]*mempool.Buf{tcpFrame(t, pl, syn)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("SYN lost")
	}
	p := parse(t, b)
	if p.IPv4.Src() != extIP {
		t.Fatal("SYN not translated")
	}
	// TCP checksum must verify against the translated header.
	seg := p.TCP.Segment()
	if pkt.L4Checksum(p.IPv4.Src(), p.IPv4.Dst(), pkt.ProtoTCP, seg) != 0 {
		t.Fatal("TCP checksum invalid after NAT")
	}
	extPort := p.TCP.SrcPort()
	b.Free()
	if nat.PortsFree() != 3 {
		t.Fatalf("ports free %d after SYN", nat.PortsFree())
	}

	// The inside host's FIN alone must NOT release the port: the peer's
	// FIN/ACK and the final ACK are still in flight.
	fin := syn
	fin.Flags = pkt.TCPFin | pkt.TCPAck
	in.Send([]*mempool.Buf{tcpFrame(t, pl, fin)})
	b = recvHost(out, time.Second)
	if b == nil {
		t.Fatal("FIN lost")
	}
	b.Free()
	if nat.PortsFree() != 3 || nat.Unbound.Load() != 0 {
		t.Fatalf("half-closed binding released: free=%d unbound=%d",
			nat.PortsFree(), nat.Unbound.Load())
	}

	// The peer's FIN/ACK still translates through the binding (the old
	// first-FIN teardown dropped it as unsolicited).
	peerFin := pkt.TCPSpec{
		SrcMAC: spec.DstMAC, DstMAC: spec.SrcMAC,
		SrcIP: spec.DstIP, DstIP: extIP,
		SrcPort: 6000, DstPort: extPort, Flags: pkt.TCPFin | pkt.TCPAck,
	}
	out.Send([]*mempool.Buf{tcpFrame(t, pl, peerFin)})
	b = recvHost(in, time.Second)
	if b == nil {
		t.Fatal("peer FIN/ACK dropped as unsolicited")
	}
	p = parse(t, b)
	if p.IPv4.Dst() != spec.SrcIP || p.TCP.DstPort() != 5000 {
		t.Fatalf("peer FIN not untranslated: %v:%d", p.IPv4.Dst(), p.TCP.DstPort())
	}
	b.Free()

	// So does the final ACK. Both FINs are now seen: the port is lingering,
	// still held.
	ack := syn
	ack.Flags = pkt.TCPAck
	in.Send([]*mempool.Buf{tcpFrame(t, pl, ack)})
	b = recvHost(out, time.Second)
	if b == nil {
		t.Fatal("final ACK dropped")
	}
	b.Free()
	app.Stop()
	if nat.PortsFree() != 3 {
		t.Fatalf("port released before linger: free=%d", nat.PortsFree())
	}
	if freed := nat.ReclaimExpired(ct, time.Now().UnixNano()); freed != 0 {
		t.Fatalf("reclaim released %d lingering ports before the hold-down", freed)
	}
	// Past the hold-down the port comes back.
	if freed := nat.ReclaimExpired(ct, time.Now().Add(2*linger).UnixNano()); freed != 1 {
		t.Fatalf("reclaimed %d ports after linger, want 1", freed)
	}
	if nat.PortsFree() != 4 || nat.Unbound.Load() != 1 {
		t.Fatalf("after linger: free=%d unbound=%d", nat.PortsFree(), nat.Unbound.Load())
	}
}

// TestNAT44RSTLinger pins the abort path: a RST ends the connection both
// ways at once, but the port still rides out the hold-down before reuse.
func TestNAT44RSTLinger(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	ct := ctTable(t, 1, 256)
	const linger = 100 * time.Millisecond
	app, nat, err := NewNAT44("nat", pmdIn, pmdOut, pl, NAT44Config{
		ExtIP: pkt.IP4{192, 0, 2, 1}, PortBase: 41000, PortCount: 2, Table: ct, Linger: linger,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	syn := pkt.TCPSpec{
		SrcMAC: spec.SrcMAC, DstMAC: spec.DstMAC,
		SrcIP: spec.SrcIP, DstIP: spec.DstIP,
		SrcPort: 5001, DstPort: 6000, Flags: pkt.TCPSyn,
	}
	in.Send([]*mempool.Buf{tcpFrame(t, pl, syn)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("SYN lost")
	}
	b.Free()
	rst := syn
	rst.Flags = pkt.TCPRst
	in.Send([]*mempool.Buf{tcpFrame(t, pl, rst)})
	b = recvHost(out, time.Second)
	if b == nil {
		t.Fatal("RST lost")
	}
	b.Free()
	app.Stop()
	if nat.PortsFree() != 1 {
		t.Fatalf("port released on RST with no hold-down: free=%d", nat.PortsFree())
	}
	if freed := nat.ReclaimExpired(ct, time.Now().Add(2*linger).UnixNano()); freed != 1 {
		t.Fatalf("reclaimed %d ports after RST linger, want 1", freed)
	}
	if nat.PortsFree() != 2 {
		t.Fatalf("ports free %d after RST linger", nat.PortsFree())
	}
}

func TestNAT44PortExhaustion(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	ct := ctTable(t, 1, 256)
	app, nat, err := NewNAT44("nat", pmdIn, pmdOut, pl, NAT44Config{
		ExtIP: pkt.IP4{192, 0, 2, 1}, PortBase: 40000, PortCount: 2, Table: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	for i := 0; i < 3; i++ {
		s := spec
		s.SrcPort = uint16(5000 + i)
		in.Send([]*mempool.Buf{frame(t, pl, s)})
	}
	got := 0
	for recvHost(out, 200*time.Millisecond) != nil {
		got++
	}
	if got != 2 {
		t.Fatalf("forwarded %d, want 2 (block size)", got)
	}
	if nat.Exhausted.Load() != 1 {
		t.Fatalf("exhausted=%d", nat.Exhausted.Load())
	}

	// Expiry-driven reclaim returns the ports once the sweeper idles the
	// bindings out.
	app.Stop()
	ct.Expire(time.Now().Add(2 * time.Minute))
	if freed := nat.ReclaimExpired(ct, time.Now().UnixNano()); freed != 2 {
		t.Fatalf("reclaimed %d ports, want 2", freed)
	}
	if nat.PortsFree() != 2 {
		t.Fatalf("ports free %d after reclaim", nat.PortsFree())
	}
}

func TestACLEstablishedBypass(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	ct := ctTable(t, 1, 256)
	// Allow UDP to :6000, default deny.
	rules := []ACLRule{{
		Priority: 100,
		Match:    flow.MatchAll().WithIPProto(pkt.ProtoUDP).WithL4Dst(6000),
		Allow:    true,
	}}
	app, acl, err := NewACL("acl", pmdIn, pmdOut, pl, ct, rules, false)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	// First packet walks the classifier and is allowed.
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("allowed packet dropped")
	}
	b.Free()
	if acl.Walked.Load() != 1 || acl.Established.Load() != 0 {
		t.Fatalf("walked=%d established=%d", acl.Walked.Load(), acl.Established.Load())
	}

	// Second packet of the connection takes the conntrack bypass.
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b = recvHost(out, time.Second)
	if b == nil {
		t.Fatal("established packet dropped")
	}
	b.Free()
	if acl.Established.Load() != 1 {
		t.Fatalf("established=%d", acl.Established.Load())
	}

	// Return traffic bypasses too (reverse entry), even though no rule
	// allows dst-port 5000.
	ret := pkt.UDPSpec{
		SrcMAC: spec.DstMAC, DstMAC: spec.SrcMAC,
		SrcIP: spec.DstIP, DstIP: spec.SrcIP,
		SrcPort: spec.DstPort, DstPort: spec.SrcPort, FrameLen: pkt.MinFrame,
	}
	out.Send([]*mempool.Buf{frame(t, pl, ret)})
	b = recvHost(in, time.Second)
	if b == nil {
		t.Fatal("return traffic denied despite established connection")
	}
	b.Free()
	if acl.Established.Load() != 2 {
		t.Fatalf("established=%d after return", acl.Established.Load())
	}

	// A different connection violating policy is denied.
	deny := spec
	deny.DstPort = 7000
	in.Send([]*mempool.Buf{frame(t, pl, deny)})
	if b := recvHost(out, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("denied packet forwarded")
	}
	if acl.Denied.Load() != 1 {
		t.Fatalf("denied=%d", acl.Denied.Load())
	}
}

// TestACLTableFullRollback pins the insert-pair rollback: when the forward
// entry fits but the reverse doesn't (table full), the forward entry must be
// rolled back — a half-tracked connection would serve forward packets from
// the bypass while denying replies, and would never retry tracking.
func TestACLTableFullRollback(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	// Capacity 1: the forward insert fits, the reverse cannot.
	ct := ctTable(t, 1, 1)
	rules := []ACLRule{{
		Priority: 100,
		Match:    flow.MatchAll().WithIPProto(pkt.ProtoUDP).WithL4Dst(6000),
		Allow:    true,
	}}
	app, acl, err := NewACL("acl", pmdIn, pmdOut, pl, ct, rules, false)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	// The packet is still forwarded (the rule allows it) but the connection
	// must end up untracked, not half-tracked.
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("allowed packet dropped under table pressure")
	}
	b.Free()
	if acl.TableFull.Load() != 1 {
		t.Fatalf("tablefull=%d", acl.TableFull.Load())
	}
	if live := ct.Live(); live != 0 {
		t.Fatalf("half-tracked connection left behind: live=%d", live)
	}

	// The next forward packet re-walks the classifier — no stale bypass hit
	// on a connection whose replies would be denied.
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b = recvHost(out, time.Second)
	if b == nil {
		t.Fatal("second packet dropped")
	}
	b.Free()
	if acl.Walked.Load() != 2 || acl.Established.Load() != 0 {
		t.Fatalf("walked=%d established=%d", acl.Walked.Load(), acl.Established.Load())
	}
}

func TestBalancerPinsBackend(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	ct := ctTable(t, 1, 256)
	vip := pkt.IP4{10, 99, 0, 1}
	backends := []Backend{
		{IP: pkt.IP4{10, 1, 0, 1}, Port: 8080},
		{IP: pkt.IP4{10, 1, 0, 2}, Port: 8080},
		{IP: pkt.IP4{10, 1, 0, 3}, Port: 8080},
	}
	app, lb, err := NewBalancer("lb", pmdIn, pmdOut, pl, BalancerConfig{
		VIP: vip, VIPPort: 80, Backends: backends, Table: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	mk := func(srcPort uint16) pkt.UDPSpec {
		s := spec
		s.DstIP = vip
		s.DstPort = 80
		s.SrcPort = srcPort
		return s
	}

	// Two packets of one connection land on the same backend.
	var first pkt.IP4
	for i := 0; i < 2; i++ {
		in.Send([]*mempool.Buf{frame(t, pl, mk(5000))})
		b := recvHost(out, time.Second)
		if b == nil {
			t.Fatalf("packet %d lost", i)
		}
		p := parse(t, b)
		if i == 0 {
			first = p.IPv4.Dst()
		} else if p.IPv4.Dst() != first {
			t.Fatalf("backend flapped: %v then %v", first, p.IPv4.Dst())
		}
		if p.UDP.DstPort() != 8080 {
			t.Fatalf("dst port %d", p.UDP.DstPort())
		}
		b.Free()
	}
	if lb.NewConns.Load() != 1 {
		t.Fatalf("newconns=%d", lb.NewConns.Load())
	}

	// Many connections spread across more than one backend.
	seen := map[pkt.IP4]bool{first: true}
	for i := 0; i < 32; i++ {
		in.Send([]*mempool.Buf{frame(t, pl, mk(uint16(6000+i)))})
		b := recvHost(out, time.Second)
		if b == nil {
			t.Fatalf("conn %d lost", i)
		}
		seen[parse(t, b).IPv4.Dst()] = true
		b.Free()
	}
	if len(seen) < 2 {
		t.Fatalf("32 connections all pinned to one backend")
	}

	// Backend reply is SNATed back to the VIP.
	ret := pkt.UDPSpec{
		SrcMAC: spec.DstMAC, DstMAC: spec.SrcMAC,
		SrcIP: first, DstIP: spec.SrcIP,
		SrcPort: 8080, DstPort: 5000, FrameLen: pkt.MinFrame,
	}
	out.Send([]*mempool.Buf{frame(t, pl, ret)})
	b := recvHost(in, time.Second)
	if b == nil {
		t.Fatal("reply lost")
	}
	p := parse(t, b)
	if p.IPv4.Src() != vip || p.UDP.SrcPort() != 80 {
		t.Fatalf("reply not SNATed to VIP: %v:%d", p.IPv4.Src(), p.UDP.SrcPort())
	}
	b.Free()

	// Traffic to a non-VIP address dies at the balancer.
	stray := spec
	stray.DstIP = pkt.IP4{10, 99, 0, 9}
	in.Send([]*mempool.Buf{frame(t, pl, stray)})
	if b := recvHost(out, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("non-VIP packet forwarded")
	}
	if lb.NotVIP.Load() == 0 {
		t.Fatal("non-VIP drop not counted")
	}
}
