package vnf

import (
	"runtime"
	"sync/atomic"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// Source is a traffic-generating VNF: the first VM of a memory-only chain
// (experiment E1), synthesizing minimum-size frames as fast as the chain
// absorbs them.
type Source struct {
	app    *App
	Sent   atomic.Uint64
	paused atomic.Bool
}

// SetPaused gates generation (stray-receive draining continues). A paused
// source lets a conservation ledger settle: once every in-flight frame has
// landed, Sent equals the downstream sink's Received exactly.
func (s *Source) SetPaused(p bool) { s.paused.Store(p) }

// NewSource builds a one-port generator app. flows is the number of distinct
// UDP source ports to cycle through (≥1), exercising the EMC with a small
// flow set as the paper's pktgen does.
func NewSource(name string, port *dpdkr.PMD, pool *mempool.Pool, spec pkt.UDPSpec, flows int) (*Source, error) {
	return NewSourcePaced(name, port, pool, spec, flows, 0)
}

// NewSourcePaced is NewSource with a packets-per-second budget (0 = as fast
// as the chain absorbs, the classic source). Pacing is credit-based like the
// SrcSink's: credits accrue with wall time and are capped at a small burst,
// so a stall does not bank an unbounded backlog.
func NewSourcePaced(name string, port *dpdkr.PMD, pool *mempool.Pool, spec pkt.UDPSpec, flows int, ratePps float64) (*Source, error) {
	if flows < 1 {
		flows = 1
	}
	s := &Source{}
	// Pre-build the frame templates once; the hot loop only copies.
	if spec.FrameLen == 0 {
		spec.FrameLen = pkt.MinFrame
	}
	templates := make([][]byte, flows)
	for i := range templates {
		sp := spec
		sp.SrcPort = spec.SrcPort + uint16(i)
		buf := make([]byte, 2048)
		n, err := pkt.BuildUDP(buf, sp)
		if err != nil {
			return nil, err
		}
		templates[i] = buf[:n]
	}
	next := 0
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		// A source has no input; it only drains stray receives.
		ctx.Drop(bufs)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{port}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, err
	}
	s.app = app
	// Replace the run loop: generators push rather than poll.
	go func() {
		defer close(app.done)
		batch := make([]*mempool.Buf, app.batch)
		credits := 0.0
		last := time.Now()
		for !app.stop.Load() {
			if s.paused.Load() {
				drain(port)
				last = time.Now()
				credits = 0
				runtime.Gosched()
				continue
			}
			want := app.batch
			if ratePps > 0 {
				now := time.Now()
				credits += now.Sub(last).Seconds() * ratePps
				last = now
				if cap := float64(2 * app.batch); credits > cap {
					credits = cap
				}
				if credits < 1 {
					if drain(port) == 0 {
						runtime.Gosched()
					}
					continue
				}
				if want > int(credits) {
					want = int(credits)
				}
			}
			n := pool.GetBatch(batch[:want])
			if n == 0 {
				// Pool exhausted: the chain is saturated. Yield instead of
				// spinning — on few-core hosts a spinning source starves the
				// consumers whose frees would refill the pool.
				if drain(port) == 0 {
					runtime.Gosched()
				}
				continue
			}
			for i := 0; i < n; i++ {
				batch[i].SetBytes(templates[next])
				next++
				if next == len(templates) {
					next = 0
				}
			}
			sent := port.Tx(batch[:n])
			if sent < n {
				mempool.FreeBatch(batch[sent:n])
			}
			s.Sent.Add(uint64(sent))
			if ratePps > 0 {
				credits -= float64(sent)
			}
			if sent == 0 {
				// Ring full: back off until the downstream consumer runs.
				if drain(port) == 0 {
					runtime.Gosched()
				}
			}
		}
	}()
	return s, nil
}

// drain consumes and discards anything arriving at a generator port (e.g.
// reverse-direction traffic in a misconfigured graph) so rings cannot jam.
func drain(pmd *dpdkr.PMD) int {
	var scratch [8]*mempool.Buf
	n := pmd.Rx(scratch[:])
	if n > 0 {
		mempool.FreeBatch(scratch[:n])
	}
	return n
}

// Stop halts the generator.
func (s *Source) Stop() {
	s.app.stop.Store(true)
	<-s.app.done
}

// Sink is a traffic-terminating VNF: the last VM of a memory-only chain.
// It counts and frees everything it receives, and computes receive rate.
type Sink struct {
	app      *App
	Received atomic.Uint64
	Bytes    atomic.Uint64
	start    time.Time
}

// NewSink builds a one-port sink app.
func NewSink(name string, port *dpdkr.PMD, pool *mempool.Pool) (*Sink, error) {
	s := &Sink{start: time.Now()}
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		var bytes uint64
		for _, b := range bufs {
			bytes += uint64(b.Len)
		}
		s.Received.Add(uint64(len(bufs)))
		s.Bytes.Add(bytes)
		ctx.Drop(bufs)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{port}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, err
	}
	s.app = app
	app.Start()
	return s, nil
}

// Stop halts the sink.
func (s *Sink) Stop() { s.app.Stop() }

// ResetWindow zeroes the counters and restarts the measurement clock.
func (s *Sink) ResetWindow() {
	s.Received.Store(0)
	s.Bytes.Store(0)
	s.start = time.Now()
}

// RatePps returns packets per second since the window start.
func (s *Sink) RatePps() float64 {
	el := time.Since(s.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Received.Load()) / el
}
