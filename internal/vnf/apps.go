package vnf

import (
	"sync"
	"sync/atomic"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// FirewallRule drops packets matching the given IPv4 constraints; zero
// fields are wildcards.
type FirewallRule struct {
	SrcPrefix    pkt.IP4
	SrcPrefixLen int
	DstPrefix    pkt.IP4
	DstPrefixLen int
	Proto        uint8
	DstPort      uint16
}

func (r FirewallRule) matches(p *pkt.Parser) bool {
	if !p.Decoded.Has(pkt.LayerIPv4) {
		return false
	}
	if r.Proto != 0 && p.IPv4.Proto() != r.Proto {
		return false
	}
	if r.SrcPrefixLen > 0 {
		mask := ^uint32(0) << (32 - uint(r.SrcPrefixLen))
		if p.IPv4.Src().Uint32()&mask != r.SrcPrefix.Uint32()&mask {
			return false
		}
	}
	if r.DstPrefixLen > 0 {
		mask := ^uint32(0) << (32 - uint(r.DstPrefixLen))
		if p.IPv4.Dst().Uint32()&mask != r.DstPrefix.Uint32()&mask {
			return false
		}
	}
	if r.DstPort != 0 {
		var dst uint16
		switch {
		case p.Decoded.Has(pkt.LayerUDP):
			dst = p.UDP.DstPort()
		case p.Decoded.Has(pkt.LayerTCP):
			dst = p.TCP.DstPort()
		}
		if dst != r.DstPort {
			return false
		}
	}
	return true
}

// Firewall is a stateless packet filter VNF (Figure 1's first element).
type Firewall struct {
	rules   []FirewallRule
	Blocked atomic.Uint64
}

// NewFirewall builds a two-port firewall app dropping traffic that matches
// any rule and forwarding the rest to the opposite port.
func NewFirewall(name string, in, out *dpdkr.PMD, pool *mempool.Pool, rules []FirewallRule) (*App, *Firewall, error) {
	fw := &Firewall{rules: rules}
	var parser pkt.Parser
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		keep := bufs[:0]
		for _, b := range bufs {
			blocked := false
			if parser.Parse(b.Bytes()) == nil {
				for _, r := range fw.rules {
					if r.matches(&parser) {
						blocked = true
						break
					}
				}
			}
			if blocked {
				fw.Blocked.Add(1)
				b.Free()
			} else {
				keep = append(keep, b)
			}
		}
		ctx.Tx(1-inPort, keep)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{in, out}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, nil, err
	}
	return app, fw, nil
}

// Monitor is a passive per-flow accounting VNF (Figure 1's second element).
type Monitor struct {
	mu       sync.Mutex
	flows    map[pkt.FiveTuple]*MonitorEntry
	maxFlows int
	Overflow atomic.Uint64
}

// MonitorEntry is one tracked flow's counters.
type MonitorEntry struct {
	Packets uint64
	Bytes   uint64
}

// NewMonitor builds a two-port monitor app counting 5-tuple flows while
// forwarding everything.
func NewMonitor(name string, in, out *dpdkr.PMD, pool *mempool.Pool, maxFlows int) (*App, *Monitor, error) {
	if maxFlows == 0 {
		maxFlows = 65536
	}
	mon := &Monitor{flows: make(map[pkt.FiveTuple]*MonitorEntry), maxFlows: maxFlows}
	var parser pkt.Parser
	handler := func(ctx *Ctx, inPort int, bufs []*mempool.Buf) {
		for _, b := range bufs {
			if parser.Parse(b.Bytes()) != nil {
				continue
			}
			ft, ok := parser.FiveTuple()
			if !ok {
				continue
			}
			mon.mu.Lock()
			e := mon.flows[ft]
			if e == nil {
				if len(mon.flows) >= mon.maxFlows {
					mon.Overflow.Add(1)
					mon.mu.Unlock()
					continue
				}
				e = &MonitorEntry{}
				mon.flows[ft] = e
			}
			e.Packets++
			e.Bytes += uint64(b.Len)
			mon.mu.Unlock()
		}
		ctx.Tx(1-inPort, bufs)
	}
	app, err := New(Config{Name: name, PMDs: []*dpdkr.PMD{in, out}, Pool: pool, Handler: handler})
	if err != nil {
		return nil, nil, err
	}
	return app, mon, nil
}

// FlowCount returns the number of tracked flows.
func (m *Monitor) FlowCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.flows)
}

// Lookup returns a copy of one flow's counters.
func (m *Monitor) Lookup(ft pkt.FiveTuple) (MonitorEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.flows[ft]; ok {
		return *e, true
	}
	return MonitorEntry{}, false
}
