package vnf

import (
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

func pool(t testing.TB) *mempool.Pool {
	t.Helper()
	return mempool.MustNew(mempool.Config{Capacity: 1024, BufSize: 2048, Headroom: 128})
}

// hostPair creates a dpdkr port pair wired so packets sent by the test on
// hostIn appear at the app's port 0, and packets the app emits on port 1 are
// readable by the test from hostOut.
func hostPair(t testing.TB) (in *dpdkr.Port, out *dpdkr.Port, pmdIn, pmdOut *dpdkr.PMD) {
	t.Helper()
	var err error
	in, pmdIn, err = dpdkr.NewPort(1, "in", 256)
	if err != nil {
		t.Fatal(err)
	}
	out, pmdOut, err = dpdkr.NewPort(2, "out", 256)
	if err != nil {
		t.Fatal(err)
	}
	return in, out, pmdIn, pmdOut
}

func frame(t testing.TB, p *mempool.Pool, spec pkt.UDPSpec) *mempool.Buf {
	t.Helper()
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 256)
	n, err := pkt.BuildUDP(raw, spec)
	if err != nil {
		t.Fatal(err)
	}
	b.SetBytes(raw[:n])
	return b
}

var spec = pkt.UDPSpec{
	SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
	SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 6000, FrameLen: pkt.MinFrame,
}

// recvHost polls a host port until one packet or timeout.
func recvHost(p *dpdkr.Port, d time.Duration) *mempool.Buf {
	out := make([]*mempool.Buf, 1)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if p.Recv(out) == 1 {
			return out[0]
		}
	}
	return nil
}

func TestForwarderMovesBothDirections(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	app, err := NewForwarder("fwd", pmdIn, pmdOut, pl)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	// host→port0 ⇒ app ⇒ port1→host
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("forward 0→1 failed")
	}
	b.Free()

	// and the reverse
	out.Send([]*mempool.Buf{frame(t, pl, spec)})
	b = recvHost(in, time.Second)
	if b == nil {
		t.Fatal("forward 1→0 failed")
	}
	b.Free()

	if app.RxPackets.Load() != 2 || app.TxPackets.Load() != 2 {
		t.Fatalf("app counters rx=%d tx=%d", app.RxPackets.Load(), app.TxPackets.Load())
	}
}

func TestAppValidation(t *testing.T) {
	if _, err := New(Config{Name: "x", Handler: ForwardHandler()}); err == nil {
		t.Fatal("app without ports accepted")
	}
	_, _, pmdIn, _ := hostPair(t)
	if _, err := New(Config{Name: "x", PMDs: []*dpdkr.PMD{pmdIn}}); err == nil {
		t.Fatal("app without handler accepted")
	}
}

func TestFirewallBlocksMatching(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	rules := []FirewallRule{{Proto: pkt.ProtoUDP, DstPort: 6000}}
	app, fw, err := NewFirewall("fw", pmdIn, pmdOut, pl, rules)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	// Blocked: UDP to :6000.
	in.Send([]*mempool.Buf{frame(t, pl, spec)})
	if b := recvHost(out, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("blocked packet forwarded")
	}
	if fw.Blocked.Load() != 1 {
		t.Fatalf("blocked = %d", fw.Blocked.Load())
	}

	// Passed: different destination port.
	okSpec := spec
	okSpec.DstPort = 7777
	in.Send([]*mempool.Buf{frame(t, pl, okSpec)})
	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("allowed packet dropped")
	}
	b.Free()
}

func TestFirewallPrefixRule(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	rules := []FirewallRule{{SrcPrefix: pkt.IP4{10, 0, 0, 0}, SrcPrefixLen: 8}}
	app, fw, err := NewFirewall("fw", pmdIn, pmdOut, pl, rules)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	in.Send([]*mempool.Buf{frame(t, pl, spec)}) // src 10.0.0.1 → blocked
	otherSpec := spec
	otherSpec.SrcIP = pkt.IP4{192, 168, 0, 1}
	in.Send([]*mempool.Buf{frame(t, pl, otherSpec)}) // passes

	b := recvHost(out, time.Second)
	if b == nil {
		t.Fatal("non-matching packet dropped")
	}
	var p pkt.Parser
	p.Parse(b.Bytes())
	if p.IPv4.Src() != otherSpec.SrcIP {
		t.Fatal("wrong packet passed the firewall")
	}
	b.Free()
	if fw.Blocked.Load() != 1 {
		t.Fatalf("blocked = %d", fw.Blocked.Load())
	}
}

func TestMonitorCountsFlows(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	app, mon, err := NewMonitor("mon", pmdIn, pmdOut, pl, 0)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	for i := 0; i < 3; i++ {
		in.Send([]*mempool.Buf{frame(t, pl, spec)})
	}
	spec2 := spec
	spec2.SrcPort = 5001
	in.Send([]*mempool.Buf{frame(t, pl, spec2)})

	for i := 0; i < 4; i++ {
		b := recvHost(out, time.Second)
		if b == nil {
			t.Fatalf("packet %d not forwarded", i)
		}
		b.Free()
	}
	if mon.FlowCount() != 2 {
		t.Fatalf("flows = %d, want 2", mon.FlowCount())
	}
	ft := pkt.FiveTuple{Src: spec.SrcIP, Dst: spec.DstIP, SrcPort: 5000, DstPort: 6000, Proto: pkt.ProtoUDP}
	e, ok := mon.Lookup(ft)
	if !ok || e.Packets != 3 {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
}

func TestMonitorOverflowCap(t *testing.T) {
	pl := pool(t)
	in, out, pmdIn, pmdOut := hostPair(t)
	app, mon, err := NewMonitor("mon", pmdIn, pmdOut, pl, 2)
	if err != nil {
		t.Fatal(err)
	}
	app.Start()
	defer app.Stop()

	for i := 0; i < 4; i++ {
		s := spec
		s.SrcPort = uint16(5000 + i)
		in.Send([]*mempool.Buf{frame(t, pl, s)})
		if b := recvHost(out, time.Second); b != nil {
			b.Free()
		}
	}
	if mon.FlowCount() != 2 {
		t.Fatalf("flows = %d, want cap 2", mon.FlowCount())
	}
	if mon.Overflow.Load() != 2 {
		t.Fatalf("overflow = %d, want 2", mon.Overflow.Load())
	}
}

func TestSourceSinkPair(t *testing.T) {
	pl := pool(t)
	srcHost, srcPMD, err := dpdkr.NewPort(10, "srcport", 256)
	if err != nil {
		t.Fatal(err)
	}
	sinkHost, sinkPMD, err := dpdkr.NewPort(11, "sinkport", 256)
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewSource("src", srcPMD, pl, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	sink, err := NewSink("dst", sinkPMD, pl)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Stop()

	// Shuttle what the source emits into the sink's normal channel by hand
	// (standing in for the switch).
	batch := make([]*mempool.Buf, 32)
	moved := 0
	deadline := time.Now().Add(2 * time.Second)
	for moved < 1000 && time.Now().Before(deadline) {
		n := srcHost.Recv(batch)
		if n == 0 {
			continue
		}
		moved += sinkHost.Send(batch[:n])
	}
	if moved < 1000 {
		t.Fatalf("moved only %d packets", moved)
	}
	deadline = time.Now().Add(2 * time.Second)
	for sink.Received.Load() < uint64(moved) && time.Now().Before(deadline) {
	}
	if got := sink.Received.Load(); got < uint64(moved) {
		t.Fatalf("sink received %d of %d", got, moved)
	}
	if src.Sent.Load() == 0 {
		t.Fatal("source sent nothing")
	}
	if sink.RatePps() <= 0 {
		t.Fatal("sink rate not positive")
	}
}
