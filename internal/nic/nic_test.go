package nic

import (
	"testing"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

func pool(t testing.TB, n int) *mempool.Pool {
	t.Helper()
	return mempool.MustNew(mempool.Config{Capacity: n, BufSize: 2048, Headroom: 128})
}

func TestWireRoundTrip(t *testing.T) {
	pl := pool(t, 64)
	n, err := New(Config{ID: 1, Name: "eth0", RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := pl.Get()
	b.SetBytes([]byte{1, 2, 3})

	// wire → switch
	if got := n.InjectFromWire([]*mempool.Buf{b}); got != 1 {
		t.Fatal("inject failed")
	}
	out := make([]*mempool.Buf, 4)
	if got := n.Recv(out); got != 1 || out[0] != b {
		t.Fatalf("Recv = %d", got)
	}
	if n.PortCounters().RxPackets.Load() != 1 {
		t.Fatal("rx counter not updated")
	}

	// switch → wire
	if got := n.Send([]*mempool.Buf{b}); got != 1 {
		t.Fatal("send failed")
	}
	if got := n.DrainToWire(out); got != 1 {
		t.Fatal("drain failed")
	}
	if n.PortCounters().TxPackets.Load() != 1 {
		t.Fatal("tx counter not updated")
	}
	b.Free()
}

func TestSendDropsWhenQueueFull(t *testing.T) {
	pl := pool(t, 16)
	n, _ := New(Config{ID: 1, Name: "eth0", RatePps: -1, QueueSize: 4})
	bufs := make([]*mempool.Buf, 6)
	for i := range bufs {
		bufs[i], _ = pl.Get()
		bufs[i].SetBytes([]byte{9})
	}
	if got := n.Send(bufs); got != 4 {
		t.Fatalf("Send = %d, want 4", got)
	}
	if n.PortCounters().TxDropped.Load() != 2 {
		t.Fatal("drops not counted")
	}
	if pl.Avail() != 16-4 {
		t.Fatalf("dropped frames not freed: avail %d", pl.Avail())
	}
}

func TestRateLimitEnforced(t *testing.T) {
	const rate = 100_000 // pps
	pl := pool(t, 2048)
	n, _ := New(Config{ID: 1, Name: "eth0", RatePps: rate, QueueSize: 2048})

	// Preload the wire side.
	for i := 0; i < 2000; i++ {
		b, err := pl.Get()
		if err != nil {
			break
		}
		b.SetBytes([]byte{1})
		if n.InjectFromWire([]*mempool.Buf{b}) == 0 {
			b.Free()
			break
		}
	}

	// Pull as fast as possible for 50ms, recycling frames back onto the
	// wire so the queue never runs dry: the bucket must cap throughput near
	// rate*0.05 = 5000 packets (plus one burst allowance).
	out := make([]*mempool.Buf, 32)
	got := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond {
		k := n.Recv(out)
		if k > 0 {
			for sent := 0; sent < k; {
				sent += n.InjectFromWire(out[sent:k])
			}
		}
		got += k
	}
	want := int(rate * 0.05)
	burst := 64 + int(rate/1000)
	if got > want+burst*2 {
		t.Fatalf("rate limit leaked: got %d in 50ms, want <= ~%d", got, want+burst)
	}
	if got < want/2 {
		t.Fatalf("rate limiter too aggressive: got %d, want around %d", got, want)
	}
}

func TestUnlimitedRate(t *testing.T) {
	n, _ := New(Config{ID: 1, Name: "eth0", RatePps: -1})
	if got := n.Recv(make([]*mempool.Buf, 8)); got != 0 {
		t.Fatal("recv from empty wire")
	}
	// take() must grant everything when unlimited.
	if got := n.rxBucket.take(1000000); got != 1000000 {
		t.Fatalf("unlimited take = %d", got)
	}
}

func TestGeneratorAndWireSink(t *testing.T) {
	pl := pool(t, 512)
	n, _ := New(Config{ID: 1, Name: "eth0", RatePps: -1, QueueSize: 256})

	spec := pkt.UDPSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: 1, DstPort: 2,
	}
	gen, err := NewGenerator(n, pl, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()

	// Loop wire-rx back to wire-tx through the "switch" by hand, and verify
	// the sink counts them.
	sink := NewWireSink(n)
	defer sink.Stop()

	batch := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(2 * time.Second)
	for sink.Received.Load() < 5000 && time.Now().Before(deadline) {
		k := n.Recv(batch)
		if k > 0 {
			n.Send(batch[:k])
		}
	}
	if sink.Received.Load() < 5000 {
		t.Fatalf("sink received %d", sink.Received.Load())
	}
	if gen.Sent.Load() == 0 {
		t.Fatal("generator sent nothing")
	}
	if sink.RatePps() <= 0 {
		t.Fatal("sink rate not positive")
	}
	// Frames are minimum-size and parseable.
	sink.ResetWindow()
	if sink.Received.Load() != 0 {
		t.Fatal("window reset failed")
	}
}

func TestLineRateConstant(t *testing.T) {
	// 10GbE 64B line rate: 10e9 / ((64+20)*8) = 14,880,952.
	if LineRate64B != 14_880_952 {
		t.Fatalf("LineRate64B = %d", LineRate64B)
	}
}
