package nic

import (
	"sync/atomic"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// Generator feeds synthesized frames into a NIC's wire side as fast as the
// NIC accepts them — the external traffic generator of the paper's Figure
// 3(b) setup.
type Generator struct {
	nic  *NIC
	pool *mempool.Pool

	Sent atomic.Uint64

	stop atomic.Bool
	done chan struct{}
}

// NewGenerator starts a generator producing spec-shaped frames cycling over
// `flows` UDP source ports.
func NewGenerator(n *NIC, pool *mempool.Pool, spec pkt.UDPSpec, flows int) (*Generator, error) {
	if flows < 1 {
		flows = 1
	}
	if spec.FrameLen == 0 {
		spec.FrameLen = pkt.MinFrame
	}
	templates := make([][]byte, flows)
	for i := range templates {
		sp := spec
		sp.SrcPort = spec.SrcPort + uint16(i)
		buf := make([]byte, 2048)
		ln, err := pkt.BuildUDP(buf, sp)
		if err != nil {
			return nil, err
		}
		templates[i] = buf[:ln]
	}
	g := &Generator{nic: n, pool: pool, done: make(chan struct{})}
	go func() {
		defer close(g.done)
		batch := make([]*mempool.Buf, 32)
		next := 0
		for !g.stop.Load() {
			k := pool.GetBatch(batch)
			if k == 0 {
				time.Sleep(10 * time.Microsecond)
				continue
			}
			for i := 0; i < k; i++ {
				batch[i].SetBytes(templates[next])
				next++
				if next == len(templates) {
					next = 0
				}
			}
			sent := n.InjectFromWire(batch[:k])
			if sent < k {
				mempool.FreeBatch(batch[sent:k])
			}
			g.Sent.Add(uint64(sent))
			if sent == 0 {
				time.Sleep(time.Microsecond)
			}
		}
	}()
	return g, nil
}

// Stop halts the generator.
func (g *Generator) Stop() {
	if g.stop.CompareAndSwap(false, true) {
		<-g.done
	}
}

// WireSink drains a NIC's transmit side, counting and freeing frames — the
// measurement endpoint of the NIC experiments.
type WireSink struct {
	nic *NIC

	Received atomic.Uint64
	Bytes    atomic.Uint64
	start    atomic.Int64 // UnixNano of window start

	stop atomic.Bool
	done chan struct{}
}

// NewWireSink starts a sink on the NIC's wire TX side.
func NewWireSink(n *NIC) *WireSink {
	s := &WireSink{nic: n, done: make(chan struct{})}
	s.start.Store(time.Now().UnixNano())
	go func() {
		defer close(s.done)
		batch := make([]*mempool.Buf, 32)
		for !s.stop.Load() {
			k := n.DrainToWire(batch)
			if k == 0 {
				time.Sleep(time.Microsecond)
				continue
			}
			var bytes uint64
			for i := 0; i < k; i++ {
				bytes += uint64(batch[i].Len)
			}
			mempool.FreeBatch(batch[:k])
			s.Received.Add(uint64(k))
			s.Bytes.Add(bytes)
		}
	}()
	return s
}

// Stop halts the sink.
func (s *WireSink) Stop() {
	if s.stop.CompareAndSwap(false, true) {
		<-s.done
	}
}

// ResetWindow zeroes counters and restarts the rate clock.
func (s *WireSink) ResetWindow() {
	s.Received.Store(0)
	s.Bytes.Store(0)
	s.start.Store(time.Now().UnixNano())
}

// RatePps returns packets per second since the window start.
func (s *WireSink) RatePps() float64 {
	el := time.Since(time.Unix(0, s.start.Load())).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Received.Load()) / el
}
