// Package nic simulates the physical 10G NICs of the paper's testbed
// (Intel 82599ES). A NIC is a vSwitch DataPort whose wire side is fed and
// drained by traffic generators; a token bucket enforces line rate in each
// direction, reproducing the NIC/PCIe bottleneck that distinguishes the
// paper's Figure 3(b) from the memory-only Figure 3(a).
package nic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/ring"
	"ovshighway/internal/stats"
)

// LineRate64B is the 10GbE line rate in packets/s for minimum-size frames
// (64B + 20B inter-frame overhead = 84B slots ⇒ 14.88 Mpps).
const LineRate64B = 14_880_952

// Config parametrizes a NIC.
type Config struct {
	ID   uint32
	Name string
	// RatePps caps each direction, 0 = LineRate64B. Negative = unlimited.
	RatePps float64
	// QueueSize is the per-direction descriptor ring size. Default 1024.
	QueueSize int
}

// NIC is one simulated physical port.
type NIC struct {
	id   uint32
	name string

	rxQ *ring.SPSC[*mempool.Buf] // wire → switch
	txQ *ring.SPSC[*mempool.Buf] // switch → wire

	rxBucket tokenBucket // applied when the switch pulls from the wire
	txBucket tokenBucket // applied when the switch pushes to the wire

	counters stats.PortCounters

	// cong is the egress congestion gauge (0 quiet .. 255 saturated).
	// Whoever consumes this NIC's wire-TX side (a trunk pump) publishes its
	// backpressure here; the switch-side sender reads it through
	// CongestionGauge to steer flows off a congested path. A NIC nobody
	// writes stays at 0 — permanently quiet.
	cong atomic.Uint32

	// WireTxDrops counts generator-side drops (wire ingress queue full).
	WireTxDrops uint64
	wireMu      sync.Mutex
}

// New builds a NIC.
func New(cfg Config) (*NIC, error) {
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1024
	}
	rate := cfg.RatePps
	switch {
	case rate == 0:
		rate = LineRate64B
	case rate < 0:
		rate = 0 // unlimited
	}
	rxQ, err := ring.NewSPSC[*mempool.Buf](cfg.QueueSize)
	if err != nil {
		return nil, fmt.Errorf("nic %s: %w", cfg.Name, err)
	}
	txQ, err := ring.NewSPSC[*mempool.Buf](cfg.QueueSize)
	if err != nil {
		return nil, fmt.Errorf("nic %s: %w", cfg.Name, err)
	}
	n := &NIC{id: cfg.ID, name: cfg.Name, rxQ: rxQ, txQ: txQ}
	n.rxBucket.init(rate)
	n.txBucket.init(rate)
	return n, nil
}

// PortID implements vswitch.DataPort.
func (n *NIC) PortID() uint32 { return n.id }

// PortName implements vswitch.DataPort.
func (n *NIC) PortName() string { return n.name }

// PortCounters implements vswitch.DataPort.
func (n *NIC) PortCounters() *stats.PortCounters { return &n.counters }

// CongestionGauge exposes the egress congestion gauge: the wire-side
// consumer stores a 0..255 score, the datapath's adaptive ECMP loads it per
// action execution. Handing out the atomic itself keeps the hot-path read a
// single load with no interface call.
func (n *NIC) CongestionGauge() *atomic.Uint32 { return &n.cong }

// Recv implements vswitch.DataPort: the switch pulls wire arrivals, paced at
// line rate.
func (n *NIC) Recv(out []*mempool.Buf) int {
	allowed := n.rxBucket.take(len(out))
	if allowed == 0 {
		return 0
	}
	got := n.rxQ.Dequeue(out[:allowed])
	n.rxBucket.refund(allowed - got)
	if got > 0 {
		var bytes uint64
		for _, b := range out[:got] {
			bytes += uint64(b.Len)
		}
		n.counters.RxPackets.Add(uint64(got))
		n.counters.RxBytes.Add(bytes)
	}
	return got
}

// Send implements vswitch.DataPort: the switch pushes toward the wire, paced
// at line rate; excess is dropped exactly like a saturated physical NIC.
// Bytes are summed before the enqueue transfers buffer ownership.
func (n *NIC) Send(bufs []*mempool.Buf) int {
	var total uint64
	for _, b := range bufs {
		total += uint64(b.Len)
	}
	allowed := n.txBucket.take(len(bufs))
	sent := 0
	if allowed > 0 {
		sent = n.txQ.Enqueue(bufs[:allowed])
		n.txBucket.refund(allowed - sent)
	}
	var unsent uint64
	for _, b := range bufs[sent:] {
		unsent += uint64(b.Len)
		b.Free()
	}
	n.counters.TxPackets.Add(uint64(sent))
	n.counters.TxBytes.Add(total - unsent)
	if d := len(bufs) - sent; d > 0 {
		n.counters.TxDropped.Add(uint64(d))
	}
	return sent
}

// InjectFromWire places generator frames on the wire side (single generator
// goroutine). Returns how many were accepted; the rest remain owned by the
// caller.
func (n *NIC) InjectFromWire(bufs []*mempool.Buf) int {
	return n.rxQ.Enqueue(bufs)
}

// DrainToWire removes frames the switch transmitted (single sink goroutine).
func (n *NIC) DrainToWire(out []*mempool.Buf) int {
	return n.txQ.Dequeue(out)
}

// QueueBacklog reports the frames parked in the NIC's descriptor rings,
// both directions — an emptiness probe for drains that must not tear the
// device down while it still holds packets.
func (n *NIC) QueueBacklog() int { return n.rxQ.Len() + n.txQ.Len() }

// DrainFromWire removes frames still parked on the wire-ingress queue
// without pacing or counting — a teardown helper, only valid once the
// switch-side consumer has detached.
func (n *NIC) DrainFromWire(out []*mempool.Buf) int {
	return n.rxQ.Dequeue(out)
}

// tokenBucket is a packet-granular rate limiter. rate 0 disables limiting.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func (t *tokenBucket) init(rate float64) {
	t.rate = rate
	t.burst = rate / 1000 // 1ms worth of line rate
	if t.burst < 64 {
		t.burst = 64
	}
	t.tokens = t.burst
	t.last = time.Now()
}

// take grants up to want tokens, returning how many were granted.
func (t *tokenBucket) take(want int) int {
	if t.rate == 0 {
		return want
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	grant := int(t.tokens)
	if grant > want {
		grant = want
	}
	if grant > 0 {
		t.tokens -= float64(grant)
	}
	return grant
}

// refund returns unused tokens (taken but not consumed by the queue).
func (t *tokenBucket) refund(n int) {
	if t.rate == 0 || n <= 0 {
		return
	}
	t.mu.Lock()
	t.tokens += float64(n)
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.mu.Unlock()
}
