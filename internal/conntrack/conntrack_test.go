package conntrack

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ovshighway/internal/pkt"
)

func mkKey(i int) Key {
	return Key{
		Src:     pkt.IP4FromUint32(0x0a000000 | uint32(i)),
		Dst:     pkt.IP4{10, 1, 0, 1},
		SrcPort: uint16(1000 + i%60000),
		DstPort: 80,
		Proto:   pkt.ProtoTCP,
	}
}

func TestConntrackBasic(t *testing.T) {
	ct, err := New(Config{Shards: 4, Capacity: 1024, IdleTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	k := mkKey(1)
	if e := ct.Lookup(k, now); e != nil {
		t.Fatalf("lookup on empty table returned %v", e)
	}
	e := ct.Insert(k, now)
	if e == nil {
		t.Fatal("insert failed on empty table")
	}
	if e.Key() != k {
		t.Fatalf("entry key %v != %v", e.Key(), k)
	}
	if dup := ct.Insert(k, now); dup != nil {
		t.Fatal("duplicate insert succeeded")
	}
	got := ct.Lookup(k, now+1)
	if got != e {
		t.Fatalf("lookup returned %p want %p", got, e)
	}
	if got.LastSeen() != now+1 {
		t.Fatalf("lastSeen not bumped: %d", got.LastSeen())
	}
	if ct.Live() != 1 {
		t.Fatalf("live = %d, want 1", ct.Live())
	}
	if !ct.Remove(k) {
		t.Fatal("remove of live entry failed")
	}
	if ct.Remove(k) {
		t.Fatal("double remove succeeded")
	}
	if e := ct.Lookup(k, now+2); e != nil {
		t.Fatal("removed entry served")
	}
	if ct.Live() != 0 {
		t.Fatalf("live = %d after remove, want 0", ct.Live())
	}
	if err := ct.CheckShardSums(); err != nil {
		t.Fatal(err)
	}
}

func TestConntrackCapacity(t *testing.T) {
	ct, err := New(Config{Shards: 2, Capacity: 64, IdleTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	inserted := 0
	for i := 0; i < 1024; i++ {
		if ct.Insert(mkKey(i), now) != nil {
			inserted++
		}
	}
	if inserted == 0 || inserted > 64 {
		t.Fatalf("inserted %d entries into capacity-64 table", inserted)
	}
	if ct.Live() != inserted {
		t.Fatalf("live %d != inserted %d", ct.Live(), inserted)
	}
	// Freeing makes room again.
	removed := 0
	for i := 0; i < 1024 && removed < 8; i++ {
		if ct.Remove(mkKey(i)) {
			removed++
		}
	}
	readmitted := 0
	for i := 2000; i < 4000 && readmitted < removed; i++ {
		if ct.Insert(mkKey(i), now) != nil {
			readmitted++
		}
	}
	if readmitted != removed {
		t.Fatalf("readmitted %d after removing %d", readmitted, removed)
	}
	if err := ct.CheckShardSums(); err != nil {
		t.Fatal(err)
	}
}

func TestConntrackExpire(t *testing.T) {
	ct, err := New(Config{Shards: 4, Capacity: 256, IdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	now := base.UnixNano()
	for i := 0; i < 100; i++ {
		if ct.Insert(mkKey(i), now) == nil {
			t.Fatalf("insert %d failed", i)
		}
	}
	// Keep half fresh.
	fresh := base.Add(90 * time.Millisecond)
	for i := 0; i < 50; i++ {
		if ct.Lookup(mkKey(i), fresh.UnixNano()) == nil {
			t.Fatalf("lookup %d missed", i)
		}
	}
	n := ct.Expire(base.Add(150 * time.Millisecond))
	if n != 50 {
		t.Fatalf("expired %d, want 50", n)
	}
	if ct.Live() != 50 {
		t.Fatalf("live %d after expiry, want 50", ct.Live())
	}
	// Expired entries are never served; fresh ones still are.
	after := base.Add(160 * time.Millisecond).UnixNano()
	for i := 0; i < 100; i++ {
		e := ct.Lookup(mkKey(i), after)
		if i < 50 && e == nil {
			t.Fatalf("fresh entry %d not served", i)
		}
		if i >= 50 && e != nil {
			t.Fatalf("expired entry %d served", i)
		}
	}
	if err := ct.CheckShardSums(); err != nil {
		t.Fatal(err)
	}
	st := ct.Stats()
	if st.Expired != 50 {
		t.Fatalf("stats.Expired = %d, want 50", st.Expired)
	}
}

// TestConntrackChurn drives enough insert/remove cycles through a small
// shard to force tombstone compaction repeatedly, then verifies every live
// entry is still reachable.
func TestConntrackChurn(t *testing.T) {
	ct, err := New(Config{Shards: 1, Capacity: 128, IdleTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	live := map[Key]bool{}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20000; step++ {
		i := rng.Intn(512)
		k := mkKey(i)
		if rng.Intn(2) == 0 {
			if ct.Insert(k, now) != nil {
				live[k] = true
			}
		} else {
			if ct.Remove(k) != live[k] {
				t.Fatalf("step %d: remove(%v) disagreed with reference", step, k)
			}
			delete(live, k)
		}
	}
	if ct.Live() != len(live) {
		t.Fatalf("live %d != reference %d", ct.Live(), len(live))
	}
	for k := range live {
		if ct.Lookup(k, now) == nil {
			t.Fatalf("live entry %v unreachable after churn", k)
		}
	}
	if err := ct.CheckShardSums(); err != nil {
		t.Fatal(err)
	}
}

// refConn is the linear-reference model of one tracked connection.
type refConn struct {
	lastSeen int64
	dead     bool // death-marked (removed or expired) but possibly still in carcass
}

// TestQuickConntrackOracle drives random connection open/traffic/close/
// expire churn against a map-based linear reference (mirroring
// TestQuickTieredLookupOracle): a death-marked entry is never served, the
// live gauge tracks the reference exactly, and the per-shard counters always
// sum to the global set.
func TestQuickConntrackOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 1 + rng.Intn(4)
		cap := 64 << rng.Intn(3)
		idle := time.Duration(50+rng.Intn(200)) * time.Millisecond
		ct, err := New(Config{Shards: shards, Capacity: cap, IdleTimeout: idle})
		if err != nil {
			t.Log(err)
			return false
		}
		ref := map[Key]*refConn{}
		now := int64(1_000_000_000) // synthetic clock, ns
		keyOf := func() Key { return mkKey(rng.Intn(4 * cap)) }
		liveRef := func() int {
			n := 0
			for _, c := range ref {
				if !c.dead {
					n++
				}
			}
			return n
		}
		for step := 0; step < 250; step++ {
			now += int64(rng.Intn(10)) * int64(time.Millisecond)
			switch rng.Intn(10) {
			case 0, 1, 2: // open
				k := keyOf()
				e := ct.Insert(k, now)
				c := ref[k]
				wasLive := c != nil && !c.dead
				if wasLive && e != nil {
					t.Logf("seed %d step %d: duplicate insert admitted", seed, step)
					return false
				}
				if e != nil {
					ref[k] = &refConn{lastSeen: now}
				} else if !wasLive {
					// Table full — reference drops it too (insert failed).
					if ct.Live() >= ct.Capacity() {
						// expected: arena exhausted
					}
				}
			case 3, 4, 5, 6: // traffic
				k := keyOf()
				e := ct.Lookup(k, now)
				c := ref[k]
				wantHit := c != nil && !c.dead
				if wantHit != (e != nil) {
					t.Logf("seed %d step %d: lookup(%v) = %v, reference live=%v",
						seed, step, k, e != nil, wantHit)
					return false
				}
				if e != nil {
					c.lastSeen = now
				}
			case 7: // close
				k := keyOf()
				got := ct.Remove(k)
				c := ref[k]
				want := c != nil && !c.dead
				if got != want {
					t.Logf("seed %d step %d: remove(%v) = %v, want %v", seed, step, k, got, want)
					return false
				}
				if c != nil {
					delete(ref, k)
				}
			case 8, 9: // expiry sweep
				horizon := now - int64(idle)
				wantExpired := 0
				for _, c := range ref {
					if !c.dead && c.lastSeen < horizon {
						c.dead = true
						wantExpired++
					}
				}
				if n := ct.Expire(time.Unix(0, now)); n != wantExpired {
					t.Logf("seed %d step %d: expired %d, reference %d", seed, step, n, wantExpired)
					return false
				}
			}
			if ct.Live() != liveRef() {
				t.Logf("seed %d step %d: live %d != reference %d", seed, step, ct.Live(), liveRef())
				return false
			}
		}
		if err := ct.CheckShardSums(); err != nil {
			t.Log(err)
			return false
		}
		// Final audit: every reference-live connection is served, every dead
		// one is not.
		for k, c := range ref {
			e := ct.Lookup(k, now)
			if c.dead && e != nil {
				t.Logf("seed %d: death-marked %v served after churn", seed, k)
				return false
			}
			if !c.dead && e == nil {
				t.Logf("seed %d: live %v lost after churn", seed, k)
				return false
			}
		}
		return ct.CheckShardSums() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestConntrackPeek pins the side-effect-free contract of the control-plane
// probe: no idle-clock refresh, no packet counter, no stats movement — the
// exact properties NAT44's port reclaim depends on (a Lookup-based probe
// would keep every binding eternally fresh).
func TestConntrackPeek(t *testing.T) {
	ct, err := New(Config{Shards: 4, Capacity: 256, IdleTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	k := mkKey(1)
	if ct.Peek(k) != nil {
		t.Fatal("peek on empty table hit")
	}
	e := ct.Insert(k, now)
	if e == nil {
		t.Fatal("insert failed")
	}
	before := ct.Stats()
	for i := 0; i < 10; i++ {
		if ct.Peek(k) != e {
			t.Fatal("peek missed a live entry")
		}
	}
	if e.LastSeen() != now {
		t.Fatalf("peek refreshed the idle clock: %d != %d", e.LastSeen(), now)
	}
	if e.Packets != 0 {
		t.Fatalf("peek counted packets: %d", e.Packets)
	}
	if after := ct.Stats(); after != before {
		t.Fatalf("peek moved stats: %+v -> %+v", before, after)
	}
	// A death-marked entry peeks as nil even before the owner reclaims it.
	if ct.Expire(time.Unix(0, now).Add(2*time.Second)) != 1 {
		t.Fatal("expire missed the idle entry")
	}
	if ct.Peek(k) != nil {
		t.Fatal("peek served a death-marked entry")
	}
	if err := ct.CheckShardSums(); err != nil {
		t.Fatal(err)
	}
}

// TestConntrackHomeSlotSpread guards the shard-vs-bucket bit split: the
// shard pick consumes the hash's low bits (h % shards), so with a
// power-of-two shard count every key in one shard shares them — a home slot
// masked from the raw hash could only reach 1/shards of the bucket array.
// The remixed home slot must reach (nearly) all of it.
func TestConntrackHomeSlotSpread(t *testing.T) {
	const shards = 4
	const mask = 1<<10 - 1
	seen := map[uint32]bool{}
	n := 0
	for i := 0; n < 4096; i++ {
		h := HashKey(mkKey(i))
		if h%shards != 0 {
			continue // keep one shard's key population
		}
		n++
		seen[homeSlot(h, mask)] = true
	}
	// 4096 draws over 1024 slots reach ~1000 distinct ones if uniform; the
	// raw-mask scheme caps at 256.
	if len(seen) <= (mask+1)/shards {
		t.Fatalf("home slots clustered: %d distinct of %d reachable", len(seen), mask+1)
	}
}

// TestConntrackShardAlignment pins the shard pick to the RSS queue formula:
// shard = Hash2 % shards, the same modulus the guest-side RSS fan-out uses.
func TestConntrackShardAlignment(t *testing.T) {
	ct, err := New(Config{Shards: 4, Capacity: 4096, IdleTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	perShard := make([]int, 4)
	for i := 0; i < 1000; i++ {
		k := mkKey(i)
		if ct.Insert(k, now) == nil {
			t.Fatalf("insert %d failed", i)
		}
		perShard[HashKey(k)%4]++
	}
	ss := ct.ShardStats()
	for i, want := range perShard {
		if ss[i].Inserts != uint64(want) {
			t.Fatalf("shard %d inserts %d, want %d (Hash2 %% shards)", i, ss[i].Inserts, want)
		}
	}
}
