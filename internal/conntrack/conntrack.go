// Package conntrack implements the sharded connection-tracking table the
// stateful VNFs (NAT44, ACL established-bypass, L4 balancer) ride on.
//
// The table is split into power-of-two-bucket, open-addressed shards selected
// by the same secondary key hash (flow.Packed.Hash2) that drives RSS queue
// spreading, the SMC signature and ECMP path pinning. One flow therefore maps
// to one RX queue, one PMD, one fabric path — and one conntrack shard: the
// connection's state lives where its packets arrive, so the hit path takes no
// locks and bounces no cache lines between cores.
//
// Memory discipline follows the mempool idiom: every entry lives in one
// arena slice preallocated at construction and recycled through an index
// freelist — the steady-state datapath performs zero heap allocations on
// lookup, insert and remove (CI-gated by BenchmarkConntrack, like the EMC).
//
// Concurrency contract: each shard has a single writer — the VNF goroutine
// whose traffic hashes there. The expiry sweeper (the vSwitch's flow-table
// sweeper, via Switch.AttachConntrack) runs on another goroutine but touches
// only per-entry atomics: it death-marks idle entries (state Live→Dead)
// exactly as flow-table removal death-marks cached flows, and the owning
// writer reclaims dead entries lazily — on probe contact and via an
// amortized clock hand on insert. A dead entry is never served: Lookup
// treats anything but Live as a miss, and Peek — the side-effect-free
// control-plane probe that leaves the idle clock and the stats untouched —
// does the same.
package conntrack

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

// Key is the canonical connection identity: the packet 5-tuple, direction
// significant (a NAT inserts one entry per direction, each under the tuple
// that direction's packets carry).
type Key = pkt.FiveTuple

// HashKey returns the shard/bucket hash of a connection key: the same Hash2
// the RSS queue pick, the SMC signature and the ECMP path pinning derive
// from, computed over the 5-tuple embedded in a packed classifier key
// (everything else zero, as RSSHash fixes the in-port contribution at zero).
// Allocation-free.
func HashKey(k Key) uint32 {
	fk := flow.Key{
		EthType: pkt.EtherTypeIPv4,
		IPSrc:   k.Src.Uint32(),
		IPDst:   k.Dst.Uint32(),
		IPProto: k.Proto,
		L4Src:   k.SrcPort,
		L4Dst:   k.DstPort,
	}
	kp := fk.Pack()
	return kp.Hash2()
}

// Entry states. Transitions: Free→Live (owner publish), Live→Dead (owner
// remove or sweeper expiry), Dead→Free (owner reclaim).
const (
	stateFree uint32 = iota
	stateLive
	stateDead
)

// Entry is one tracked connection. The identity fields are written by the
// owning shard writer before publication and must not be mutated while the
// entry is live; the exported VNF payload fields (translation, backend pick,
// TCP lifecycle) belong to the owner goroutine exclusively.
type Entry struct {
	key  Key
	hash uint32

	// state is the entry lifecycle word (Free/Live/Dead). The sweeper CASes
	// Live→Dead cross-thread; every other transition is owner-side.
	state atomic.Uint32
	// lastSeen is the UnixNano of the most recent hit — the idle-expiry
	// clock, updated by the owner on every Lookup hit and read by the
	// sweeper.
	lastSeen atomic.Int64

	// XlateIP/XlatePort carry a NAT44 translation (the external address the
	// connection was mapped to, or the original inside address on a reverse
	// entry).
	XlateIP   pkt.IP4
	XlatePort uint16
	// Backend is an L4 balancer's pinned backend index (-1 = none).
	Backend int32
	// TCPState tracks coarse TCP lifecycle (see TCP* constants); zero for
	// connectionless protocols.
	TCPState uint8
	// Packets counts hits on this entry (owner-side, like flow counters).
	Packets uint64
}

// Coarse TCP lifecycle states tracked per entry.
const (
	TCPNone    uint8 = iota // not TCP, or no flags observed yet
	TCPOpening              // SYN seen
	TCPOpen                 // ACK after SYN
	TCPClosing              // FIN or RST seen
)

// Key returns the entry's connection key.
func (e *Entry) Key() Key { return e.key }

// LastSeen returns the UnixNano of the entry's most recent hit.
func (e *Entry) LastSeen() int64 { return e.lastSeen.Load() }

// Stats is one shard's (or the whole table's) event counters. All fields but
// the Live gauge are monotonic; Delta gives the windowed view the
// experiments report.
type Stats struct {
	Hits      uint64 // lookups that found a live entry
	Misses    uint64 // lookups that found nothing live
	Inserts   uint64 // connections admitted
	Removes   uint64 // owner-side removals (e.g. TCP FIN/RST)
	Expired   uint64 // sweeper death-marks (idle timeout)
	Reclaimed uint64 // dead entries recycled to the freelist
	Live      uint64 // currently live entries (gauge, not monotonic)
}

// Delta returns the counter movement since prev. Live is a gauge and is
// carried over as-is.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Inserts:   s.Inserts - prev.Inserts,
		Removes:   s.Removes - prev.Removes,
		Expired:   s.Expired - prev.Expired,
		Reclaimed: s.Reclaimed - prev.Reclaimed,
		Live:      s.Live,
	}
}

// Add accumulates o into s (shard-sum aggregation; also used by the vSwitch
// to merge several attached tables into one DatapathStats view).
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.Removes += o.Removes
	s.Expired += o.Expired
	s.Reclaimed += o.Reclaimed
	s.Live += o.Live
}

// counters is the atomic backing of Stats, one set per shard plus one global
// set bumped in tandem (the experiment's shard-sum-vs-global consistency
// check audits exactly this redundancy).
type counters struct {
	hits, misses, inserts, removes, expired, reclaimed atomic.Uint64
	live                                               atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Inserts:   c.inserts.Load(),
		Removes:   c.removes.Load(),
		Expired:   c.expired.Load(),
		Reclaimed: c.reclaimed.Load(),
		Live:      c.live.Load(),
	}
}

// bucketEmpty and bucketDead are the two non-index bucket values of the open
// addressing scheme: Empty terminates a probe chain, Dead (a tombstone left
// by reclamation) keeps chains walkable across holes.
const (
	bucketEmpty int32 = -1
	bucketDead  int32 = -2
)

// shard is one single-writer partition: an open-addressed power-of-two
// bucket array indexing into the table-wide entry arena.
type shard struct {
	buckets []int32 // arena indices, bucketEmpty, or bucketDead
	mask    uint32  // len(buckets)-1
	used    int     // live + tombstoned buckets (probe-length bound)
	tombs   int     // tombstoned buckets
	free    []int32 // freelist of arena indices owned by this shard
	scratch []int32 // compact()'s live-index scratch, preallocated
	hand    uint32  // amortized reclaim clock hand over buckets
	stats   counters
}

// Config parametrizes New. Zero values take defaults.
type Config struct {
	// Shards is the shard count, normally the PMD count so the Hash2 pick
	// aligns state with the receiving thread (default 1).
	Shards int
	// Capacity is the total preallocated entry count across all shards
	// (default 65536). Inserts beyond a shard's share fail rather than
	// allocate.
	Capacity int
	// IdleTimeout is the sweeper's idle-expiry horizon (default 30s).
	IdleTimeout time.Duration
}

// Table is the sharded connection table.
type Table struct {
	arena  []Entry // one preallocated slab, mempool-style; never grows
	shards []*shard
	idleTO time.Duration
	global counters
}

// New builds a table with cfg.Capacity entries preallocated in one arena.
func New(cfg Config) (*Table, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 65536
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	if cfg.Capacity < cfg.Shards {
		cfg.Capacity = cfg.Shards
	}
	t := &Table{
		arena:  make([]Entry, cfg.Capacity),
		shards: make([]*shard, cfg.Shards),
		idleTO: cfg.IdleTimeout,
	}
	perShard := cfg.Capacity / cfg.Shards
	// Buckets sized for a ≤ 2/3 load factor at full shard capacity, so probe
	// chains stay short even when every entry is in use.
	nb := 1 << bits.Len(uint(perShard+perShard/2))
	if nb < 8 {
		nb = 8
	}
	next := int32(0)
	for i := range t.shards {
		n := perShard
		if i == len(t.shards)-1 {
			n = cfg.Capacity - int(next) // remainder to the last shard
		}
		sh := &shard{
			buckets: make([]int32, nb),
			mask:    uint32(nb - 1),
			free:    make([]int32, 0, n),
			scratch: make([]int32, 0, n),
		}
		for j := range sh.buckets {
			sh.buckets[j] = bucketEmpty
		}
		// Freelist in reverse so pops hand out arena order.
		for j := n - 1; j >= 0; j-- {
			sh.free = append(sh.free, next+int32(j))
		}
		next += int32(n)
		t.shards[i] = sh
	}
	if int(next) != cfg.Capacity {
		return nil, fmt.Errorf("conntrack: arena split %d != capacity %d", next, cfg.Capacity)
	}
	return t, nil
}

// NumShards returns the shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// Capacity returns the total preallocated entry count.
func (t *Table) Capacity() int { return len(t.arena) }

// IdleTimeout returns the idle-expiry horizon Expire applies.
func (t *Table) IdleTimeout() time.Duration { return t.idleTO }

// shardOf mirrors the RSS queue pick (hash % queues): the same modulus the
// guest-side fan-out uses, so connection → shard and connection → PMD agree.
func (t *Table) shardOf(h uint32) *shard {
	return t.shards[h%uint32(len(t.shards))]
}

// homeSlot derives a bucket home index for hash h. The shard pick consumes
// the hash's low bits (h % shards, pinned to the RSS modulus), so with a
// power-of-two shard count every key in a shard shares those bits — masking
// the raw hash would leave only 1/shards of the bucket array reachable as
// home positions, clustering entries and multiplying probe-chain lengths.
// A multiply-shift remix spreads home slots over the whole array while
// leaving the shard pick, and its PMD alignment, untouched.
func homeSlot(h, mask uint32) uint32 {
	x := h * 0x9e3779b1 // odd golden-ratio constant; fold high bits down
	x ^= x >> 16
	return x & mask
}

// Lookup finds the live entry for k, bumping its idle clock to nowNano and
// its hit counter. Zero-alloc, lock-free; must be called from the shard's
// owning goroutine. Returns nil on miss — including death-marked entries: a
// removed or expired connection is never served.
func (t *Table) Lookup(k Key, nowNano int64) *Entry {
	h := HashKey(k)
	sh := t.shardOf(h)
	i := homeSlot(h, sh.mask)
	for {
		bi := sh.buckets[i]
		if bi == bucketEmpty {
			break
		}
		if bi != bucketDead {
			e := &t.arena[bi]
			if e.hash == h && e.key == k {
				if e.state.Load() == stateLive {
					e.lastSeen.Store(nowNano)
					e.Packets++
					sh.stats.hits.Add(1)
					t.global.hits.Add(1)
					return e
				}
				// Death-marked under our feet (sweeper): reclaim in place and
				// report the miss.
				t.reclaimBucket(sh, i)
				break
			}
		}
		i = (i + 1) & sh.mask
	}
	sh.stats.misses.Add(1)
	t.global.misses.Add(1)
	return nil
}

// Peek returns the live entry for k with no side effects: no idle-clock
// refresh, no hit counter, no stats movement, no carcass reclaim. It exists
// for control-plane probes — NAT44's port reclaim must ask "is this binding
// still live?" without resetting the very idle clock the sweeper expires on
// (a Lookup-based probe called with any period shorter than IdleTimeout
// would keep every binding eternally fresh). Keep Lookup for datapath hits.
// Owner goroutine only: it reads the shard's buckets non-atomically.
func (t *Table) Peek(k Key) *Entry {
	h := HashKey(k)
	sh := t.shardOf(h)
	i := homeSlot(h, sh.mask)
	for {
		bi := sh.buckets[i]
		if bi == bucketEmpty {
			return nil
		}
		if bi != bucketDead {
			e := &t.arena[bi]
			if e.hash == h && e.key == k {
				if e.state.Load() == stateLive {
					return e
				}
				return nil // death-marked: never served, but left for reclaim
			}
		}
		i = (i + 1) & sh.mask
	}
}

// Insert admits a new connection for k and returns its entry, or nil if the
// key is already live or the shard's arena share is exhausted. The caller
// fills the VNF payload fields on the returned entry. Zero-alloc; owner
// goroutine only.
func (t *Table) Insert(k Key, nowNano int64) *Entry {
	h := HashKey(k)
	sh := t.shardOf(h)
	// Amortized housekeeping: visit a few buckets per insert so entries
	// death-marked by the expiry sweeper drain back to the freelist even if
	// their probe chains are never walked again.
	t.reclaimStep(sh, 4)
retry:
	firstDead := int32(-1)
	i := homeSlot(h, sh.mask)
	for {
		bi := sh.buckets[i]
		if bi == bucketEmpty {
			break
		}
		if bi == bucketDead {
			if firstDead < 0 {
				firstDead = int32(i)
			}
		} else {
			e := &t.arena[bi]
			if e.hash == h && e.key == k {
				if e.state.Load() == stateLive {
					return nil // already tracked
				}
				// Same key, death-marked: retire the carcass first. Reclaiming
				// can compact the shard, which invalidates probe positions —
				// restart the walk when it does.
				if t.reclaimBucket(sh, i) {
					goto retry
				}
				if firstDead < 0 {
					firstDead = int32(i)
				}
			}
		}
		i = (i + 1) & sh.mask
	}
	if len(sh.free) == 0 {
		return nil // shard arena exhausted
	}
	// Guard the load factor: keep at least one empty bucket so probe chains
	// terminate (used counts tombstones too; compaction retires those).
	if firstDead < 0 && sh.used+1 >= len(sh.buckets) {
		return nil
	}
	slot := uint32(i)
	if firstDead >= 0 {
		slot = uint32(firstDead)
		sh.tombs--
	} else {
		sh.used++
	}
	bi := sh.free[len(sh.free)-1]
	sh.free = sh.free[:len(sh.free)-1]
	e := &t.arena[bi]
	e.key = k
	e.hash = h
	e.XlateIP = pkt.IP4{}
	e.XlatePort = 0
	e.Backend = -1
	e.TCPState = TCPNone
	e.Packets = 0
	e.lastSeen.Store(nowNano)
	e.state.Store(stateLive) // publish: the sweeper may now observe the entry
	sh.buckets[slot] = bi
	sh.stats.inserts.Add(1)
	t.global.inserts.Add(1)
	sh.stats.live.Add(1)
	t.global.live.Add(1)
	return e
}

// Remove death-marks and reclaims the live entry for k (TCP FIN/RST, admin
// clear), reporting whether one existed. Owner goroutine only.
func (t *Table) Remove(k Key) bool {
	h := HashKey(k)
	sh := t.shardOf(h)
	i := homeSlot(h, sh.mask)
	for {
		bi := sh.buckets[i]
		if bi == bucketEmpty {
			return false
		}
		if bi != bucketDead {
			e := &t.arena[bi]
			if e.hash == h && e.key == k {
				if !e.state.CompareAndSwap(stateLive, stateDead) {
					// The sweeper expired it first; still retire the carcass.
					t.reclaimBucket(sh, i)
					return false
				}
				sh.stats.removes.Add(1)
				t.global.removes.Add(1)
				sh.stats.live.Add(^uint64(0))
				t.global.live.Add(^uint64(0))
				t.reclaimBucket(sh, i)
				return true
			}
		}
		i = (i + 1) & sh.mask
	}
}

// reclaimBucket retires the dead entry in bucket i: freelist return plus a
// tombstone keeping the probe chain intact. Owner goroutine only; reports
// whether the shard was compacted (probe positions invalidated).
func (t *Table) reclaimBucket(sh *shard, i uint32) bool {
	bi := sh.buckets[i]
	if bi < 0 {
		return false
	}
	e := &t.arena[bi]
	e.state.Store(stateFree)
	sh.buckets[i] = bucketDead
	sh.tombs++
	sh.free = append(sh.free, bi)
	sh.stats.reclaimed.Add(1)
	t.global.reclaimed.Add(1)
	// A bucket array that is mostly tombstones probes like a full one;
	// compact by rehashing the survivors once holes dominate.
	if sh.tombs > len(sh.buckets)/2 {
		t.compact(sh)
		return true
	}
	return false
}

// reclaimStep advances the shard's clock hand over n buckets, reclaiming any
// entries the sweeper death-marked. Owner goroutine only.
func (t *Table) reclaimStep(sh *shard, n int) {
	for j := 0; j < n; j++ {
		i := sh.hand & sh.mask
		sh.hand++
		bi := sh.buckets[i]
		if bi >= 0 && t.arena[bi].state.Load() == stateDead {
			t.reclaimBucket(sh, i)
		}
	}
}

// compact rehashes a shard's live entries into the same bucket array,
// eliminating tombstones. O(buckets), amortized by the tombstone threshold;
// the entry arena itself does not move, so entry pointers held by VNFs stay
// valid. Uses the shard's preallocated scratch — no allocation.
func (t *Table) compact(sh *shard) {
	live := sh.scratch[:0]
	for i := range sh.buckets {
		bi := sh.buckets[i]
		sh.buckets[i] = bucketEmpty
		if bi < 0 {
			continue
		}
		if t.arena[bi].state.Load() == stateLive {
			live = append(live, bi)
		} else {
			// Dead but not yet reclaimed: recycle it now.
			t.arena[bi].state.Store(stateFree)
			sh.free = append(sh.free, bi)
			sh.stats.reclaimed.Add(1)
			t.global.reclaimed.Add(1)
		}
	}
	sh.used = 0
	sh.tombs = 0
	for _, bi := range live {
		e := &t.arena[bi]
		i := homeSlot(e.hash, sh.mask)
		for sh.buckets[i] != bucketEmpty {
			i = (i + 1) & sh.mask
		}
		sh.buckets[i] = bi
		sh.used++
	}
}

// Expire death-marks every live entry idle since before now-IdleTimeout.
// Safe to call from the sweeper goroutine concurrently with shard owners: it
// reads and writes only per-entry atomics; the owners reclaim the marked
// entries lazily. (The mark is racy by design — a connection refreshed in
// the instant between the staleness check and the CAS can be expired one
// sweep early; it simply re-establishes, exactly as a flow whose cached
// entry was death-marked reclassifies.) Returns the number of entries
// expired.
func (t *Table) Expire(now time.Time) int {
	horizon := now.Add(-t.idleTO).UnixNano()
	n := 0
	for i := range t.arena {
		e := &t.arena[i]
		if e.state.Load() != stateLive {
			continue
		}
		if e.lastSeen.Load() >= horizon {
			continue
		}
		if e.state.CompareAndSwap(stateLive, stateDead) {
			sh := t.shardOf(e.hash)
			sh.stats.expired.Add(1)
			t.global.expired.Add(1)
			sh.stats.live.Add(^uint64(0))
			t.global.live.Add(^uint64(0))
			n++
		}
	}
	return n
}

// Live returns the current live-entry gauge.
func (t *Table) Live() int { return int(t.global.live.Load()) }

// Stats returns the global counters.
func (t *Table) Stats() Stats { return t.global.snapshot() }

// ShardStats returns a per-shard counter snapshot, index-aligned with the
// shard (= PMD) number.
func (t *Table) ShardStats() []Stats {
	out := make([]Stats, len(t.shards))
	for i, sh := range t.shards {
		out[i] = sh.stats.snapshot()
	}
	return out
}

// CheckShardSums verifies the per-shard counters sum to the global set — the
// redundancy audit the conntrack experiment gates on. The table must be
// quiescent (no concurrent ops) for an exact comparison.
func (t *Table) CheckShardSums() error {
	var sum Stats
	for _, sh := range t.shards {
		sum.Add(sh.stats.snapshot())
	}
	if g := t.global.snapshot(); sum != g {
		return fmt.Errorf("conntrack: shard-sum %+v != global %+v", sum, g)
	}
	return nil
}
