package dpdkr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ovshighway/internal/mempool"
)

// TestQuiesceWaitsOutInFlightRx verifies the grace-period protocol: after
// DetachRxBypass + QuiesceRx return, no concurrently started Rx can still
// be consuming the old ring, so draining it is single-consumer safe.
func TestQuiesceWaitsOutInFlightRx(t *testing.T) {
	pool := mempool.MustNew(mempool.Config{Capacity: 512, BufSize: 256, Headroom: 32})
	portA, pmdA, _ := NewPort(1, "a", 256)
	portB, pmdB, _ := NewPort(2, "b", 256)
	link, _ := NewLink("l", 1, 2, 256)
	pmdA.AttachTxBypass(link)
	pmdB.AttachRxBypass(link)

	var running atomic.Bool
	var wg sync.WaitGroup
	running.Store(true)

	// Consumer loop (the VNF lcore).
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]*mempool.Buf, 8)
		for running.Load() {
			n := pmdB.Rx(out)
			for i := 0; i < n; i++ {
				out[i].Free()
			}
		}
	}()
	// Producer keeps the ring busy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for running.Load() {
			if b, err := pool.Get(); err == nil {
				b.SetBytes([]byte{1})
				if pmdA.Tx([]*mempool.Buf{b}) == 0 {
					b.Free()
				}
			}
		}
	}()

	// Control plane: repeatedly detach+quiesce, drain (now safe), re-attach.
	for i := 0; i < 200; i++ {
		pmdA.DetachTxBypass()
		pmdA.QuiesceTx()
		pmdB.DetachRxBypass()
		pmdB.QuiesceRx()
		// After quiescence we may act as the ring's only consumer.
		link.Drain()
		pmdB.AttachRxBypass(link)
		pmdA.AttachTxBypass(link)
	}

	running.Store(false)
	wg.Wait()
	pmdA.DetachTxBypass()
	pmdB.DetachRxBypass()
	link.Drain()
	// While detached, the producer's Tx fell back to port A's normal
	// channel; nobody consumed it in this test, so drain both ports too.
	portA.Drain()
	portB.Drain()
	// Conservation proves no buffer was double-freed or lost in the races.
	deadline := time.Now().Add(time.Second)
	for pool.Avail() != pool.Cap() && time.Now().Before(deadline) {
	}
	if pool.Avail() != pool.Cap() {
		t.Fatalf("population: %d of %d", pool.Avail(), pool.Cap())
	}
}

// TestQuiesceIdleReturnsImmediately: quiescing a PMD with no datapath
// activity must not block.
func TestQuiesceIdleReturnsImmediately(t *testing.T) {
	_, pmd, _ := NewPort(1, "a", 64)
	done := make(chan struct{})
	go func() {
		pmd.QuiesceRx()
		pmd.QuiesceTx()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("quiesce blocked on idle PMD")
	}
}
