package dpdkr

import (
	"testing"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

func buildFlowFrame(t *testing.T, srcPort uint16) []byte {
	t.Helper()
	raw := make([]byte, 128)
	n, err := pkt.BuildUDP(raw, pkt.UDPSpec{
		SrcMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x02},
		SrcIP:  pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: srcPort, DstPort: 2000,
		FrameLen: pkt.MinFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw[:n]
}

// TestGuestTxRSSFanOut sends 64 distinct flows through a 4-queue port and
// checks the guest-side RSS split: every frame lands on the queue its EMC
// hash selects, more than one queue receives traffic, and repeated frames of
// one flow always pick the same queue (per-flow ordering depends on this).
func TestGuestTxRSSFanOut(t *testing.T) {
	const queues = 4
	pool := mempool.MustNew(mempool.Config{Capacity: 256, BufSize: 256, Headroom: 32})
	port, pmd, err := NewPortMQ(1, "dpdkr1", 64, queues)
	if err != nil {
		t.Fatal(err)
	}
	if got := port.NumRxQueues(); got != queues {
		t.Fatalf("NumRxQueues = %d, want %d", got, queues)
	}

	var parser pkt.Parser
	expect := make(map[*mempool.Buf]int)
	perQueue := make([]int, queues)
	for fl := 0; fl < 64; fl++ {
		frame := buildFlowFrame(t, uint16(5000+fl))
		h, ok := flow.RSSHash(&parser, frame)
		if !ok {
			t.Fatalf("flow %d: frame did not parse", fl)
		}
		q := int(h % queues)
		perQueue[q]++
		b, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetBytes(frame); err != nil {
			t.Fatal(err)
		}
		expect[b] = q
		if n := pmd.Tx([]*mempool.Buf{b}); n != 1 {
			t.Fatalf("flow %d: Tx = %d", fl, n)
		}
	}

	populated := 0
	for q := 0; q < queues; q++ {
		out := make([]*mempool.Buf, 64)
		n := port.RecvQueue(q, out)
		if n != perQueue[q] {
			t.Fatalf("queue %d: received %d frames, RSS predicted %d", q, n, perQueue[q])
		}
		if n > 0 {
			populated++
		}
		for _, b := range out[:n] {
			if want, ok := expect[b]; !ok || want != q {
				t.Fatalf("queue %d: frame expected on queue %d", q, want)
			}
			b.Free()
		}
	}
	// 64 flows over 4 queues: a hash that funnels everything into one queue
	// is broken no matter how unlucky the draw.
	if populated < 2 {
		t.Fatalf("RSS populated only %d of %d queues", populated, queues)
	}

	// Per-flow stability: the same flow re-sent lands on the same queue.
	frame := buildFlowFrame(t, 5007)
	h, _ := flow.RSSHash(&parser, frame)
	want := int(h % queues)
	for i := 0; i < 3; i++ {
		b, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetBytes(frame); err != nil {
			t.Fatal(err)
		}
		if n := pmd.Tx([]*mempool.Buf{b}); n != 1 {
			t.Fatalf("resend %d: Tx = %d", i, n)
		}
		out := make([]*mempool.Buf, 4)
		if n := port.RecvQueue(want, out); n != 1 {
			t.Fatalf("resend %d: flow hopped off queue %d", i, want)
		}
		out[0].Free()
	}
}

// TestGuestTxRSSPrefixOnFullQueue fills one RSS queue and checks the Tx
// prefix contract: the send stops at the first frame whose queue is full,
// the shortfall is counted as TxNormalDrops, and the caller keeps ownership
// of the unsent tail.
func TestGuestTxRSSPrefixOnFullQueue(t *testing.T) {
	const queues = 2
	pool := mempool.MustNew(mempool.Config{Capacity: 64, BufSize: 256, Headroom: 32})
	_, pmd, err := NewPortMQ(1, "dpdkr1", 4, queues)
	if err != nil {
		t.Fatal(err)
	}
	var parser pkt.Parser
	// Find a flow that hashes to queue 0 and saturate that ring.
	var frame []byte
	for fp := uint16(5000); ; fp++ {
		f := buildFlowFrame(t, fp)
		if h, ok := flow.RSSHash(&parser, f); ok && h%queues == 0 {
			frame = f
			break
		}
	}
	bufs := make([]*mempool.Buf, 6)
	for i := range bufs {
		b, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetBytes(frame); err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
	}
	n := pmd.Tx(bufs)
	if n != 4 {
		t.Fatalf("Tx = %d, want 4 (ring size)", n)
	}
	if got := pmd.TxNormalDrops.Load(); got != 2 {
		t.Fatalf("TxNormalDrops = %d, want 2", got)
	}
	for _, b := range bufs[n:] {
		b.Free()
	}
}
