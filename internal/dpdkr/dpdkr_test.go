package dpdkr

import (
	"runtime"
	"sync"
	"testing"

	"ovshighway/internal/mempool"
)

func newPool(t testing.TB, n int) *mempool.Pool {
	t.Helper()
	return mempool.MustNew(mempool.Config{Capacity: n, BufSize: 256, Headroom: 32})
}

func mkBuf(t testing.TB, pool *mempool.Pool, payload byte, n int) *mempool.Buf {
	t.Helper()
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = payload
	}
	if err := b.SetBytes(data); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNormalChannelRoundTrip(t *testing.T) {
	pool := newPool(t, 16)
	port, pmd, err := NewPort(1, "dpdkr1", 8)
	if err != nil {
		t.Fatal(err)
	}

	// guest → host
	b := mkBuf(t, pool, 0xAA, 60)
	if n := pmd.Tx([]*mempool.Buf{b}); n != 1 {
		t.Fatalf("guest Tx = %d", n)
	}
	out := make([]*mempool.Buf, 4)
	if n := port.Recv(out); n != 1 || out[0] != b {
		t.Fatalf("host Recv = %d", n)
	}
	if got := port.Counters.RxPackets.Load(); got != 1 {
		t.Fatalf("host rx packets = %d", got)
	}
	if got := port.Counters.RxBytes.Load(); got != 60 {
		t.Fatalf("host rx bytes = %d", got)
	}
	b.Free()

	// host → guest
	b2 := mkBuf(t, pool, 0xBB, 64)
	if n := port.Send([]*mempool.Buf{b2}); n != 1 {
		t.Fatalf("host Send = %d", n)
	}
	if n := pmd.Rx(out); n != 1 || out[0] != b2 {
		t.Fatalf("guest Rx = %d", n)
	}
	if got := port.Counters.TxPackets.Load(); got != 1 {
		t.Fatalf("host tx packets = %d", got)
	}
	b2.Free()
}

func TestHostSendDropsWhenFull(t *testing.T) {
	pool := newPool(t, 16)
	port, _, _ := NewPort(1, "dpdkr1", 4)
	bufs := make([]*mempool.Buf, 6)
	for i := range bufs {
		bufs[i] = mkBuf(t, pool, byte(i), 60)
	}
	if n := port.Send(bufs); n != 4 {
		t.Fatalf("Send = %d, want 4", n)
	}
	if got := port.Counters.TxDropped.Load(); got != 2 {
		t.Fatalf("TxDropped = %d, want 2", got)
	}
	// Dropped buffers must have been freed (4 still queued, 2 returned).
	if pool.Avail() != 16-4 {
		t.Fatalf("pool avail = %d, want 12", pool.Avail())
	}
}

func TestGuestTxDropCounting(t *testing.T) {
	pool := newPool(t, 16)
	_, pmd, _ := NewPort(1, "dpdkr1", 4)
	bufs := make([]*mempool.Buf, 6)
	for i := range bufs {
		bufs[i] = mkBuf(t, pool, byte(i), 60)
	}
	n := pmd.Tx(bufs)
	if n != 4 {
		t.Fatalf("Tx = %d, want 4", n)
	}
	if got := pmd.TxNormalDrops.Load(); got != 2 {
		t.Fatalf("TxNormalDrops = %d", got)
	}
	// Caller keeps ownership of the unsent tail.
	for _, b := range bufs[n:] {
		b.Free()
	}
}

func TestBypassTxRxAndStats(t *testing.T) {
	pool := newPool(t, 32)
	_, pmdA, _ := NewPort(1, "dpdkr1", 8)
	_, pmdB, _ := NewPort(2, "dpdkr2", 8)

	link, err := NewLink("bypass-1-2", 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	pmdA.AttachTxBypass(link)
	pmdB.AttachRxBypass(link)

	b := mkBuf(t, pool, 0xCC, 100)
	if n := pmdA.Tx([]*mempool.Buf{b}); n != 1 {
		t.Fatalf("bypass Tx = %d", n)
	}
	out := make([]*mempool.Buf, 4)
	if n := pmdB.Rx(out); n != 1 || out[0] != b {
		t.Fatalf("bypass Rx = %d", n)
	}
	s := link.Stats.Read()
	if s.TxPackets != 1 || s.TxBytes != 100 || s.RxPackets != 1 || s.RxBytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
	b.Free()
}

func TestBypassTxDropsAccounted(t *testing.T) {
	pool := newPool(t, 32)
	_, pmdA, _ := NewPort(1, "dpdkr1", 8)
	link, _ := NewLink("l", 1, 2, 2)
	pmdA.AttachTxBypass(link)

	bufs := make([]*mempool.Buf, 4)
	for i := range bufs {
		bufs[i] = mkBuf(t, pool, 1, 60)
	}
	n := pmdA.Tx(bufs)
	if n != 2 {
		t.Fatalf("Tx = %d, want 2", n)
	}
	if link.Stats.Read().TxDrops != 2 {
		t.Fatalf("TxDrops = %d", link.Stats.Read().TxDrops)
	}
	for _, b := range bufs[n:] {
		b.Free()
	}
	link.Drain()
}

func TestNormalChannelStillPolledWithBypass(t *testing.T) {
	pool := newPool(t, 512)
	port, pmdB, _ := NewPort(2, "dpdkr2", 256)
	_, pmdA, _ := NewPort(1, "dpdkr1", 256)
	link, _ := NewLink("l", 1, 2, 256)
	pmdA.AttachTxBypass(link)
	pmdB.AttachRxBypass(link)

	// Keep the bypass saturated so Rx batches are always full from bypass...
	fill := func() {
		for {
			b, err := pool.Get()
			if err != nil {
				return
			}
			b.SetBytes([]byte{1})
			if pmdA.Tx([]*mempool.Buf{b}) == 0 {
				b.Free()
				return
			}
		}
	}
	fill()

	// ...and inject one packet-out on the normal channel.
	po := mkBuf(t, pool, 0xEE, 60)
	if port.Send([]*mempool.Buf{po}) != 1 {
		t.Fatal("packet-out not enqueued")
	}

	// Within a bounded number of full-batch rounds the PMD must still pick
	// up the normal-channel packet (fairness guarantee).
	out := make([]*mempool.Buf, 4)
	seen := false
	for round := 0; round < 64 && !seen; round++ {
		n := pmdB.Rx(out)
		for i := 0; i < n; i++ {
			if out[i] == po {
				seen = true
			}
			out[i].Free()
		}
		fill() // keep bypass full
	}
	if !seen {
		t.Fatal("packet-out starved by saturated bypass")
	}
	link.Drain()
}

func TestDetachReturnsLink(t *testing.T) {
	_, pmd, _ := NewPort(1, "dpdkr1", 8)
	link, _ := NewLink("l", 1, 2, 8)
	if pmd.DetachTxBypass() != nil || pmd.DetachRxBypass() != nil {
		t.Fatal("detach on clean PMD returned link")
	}
	pmd.AttachTxBypass(link)
	pmd.AttachRxBypass(link)
	if pmd.TxBypassLink() != link || pmd.RxBypassLink() != link {
		t.Fatal("attached links not visible")
	}
	if pmd.DetachTxBypass() != link || pmd.DetachRxBypass() != link {
		t.Fatal("detach did not return the attached link")
	}
	if pmd.TxBypassLink() != nil || pmd.RxBypassLink() != nil {
		t.Fatal("links visible after detach")
	}
}

func TestDrainFreesBuffers(t *testing.T) {
	pool := newPool(t, 8)
	_, pmd, _ := NewPort(1, "dpdkr1", 8)
	link, _ := NewLink("l", 1, 2, 8)
	pmd.AttachTxBypass(link)
	for i := 0; i < 5; i++ {
		pmd.Tx([]*mempool.Buf{mkBuf(t, pool, 1, 60)})
	}
	if got := link.Drain(); got != 5 {
		t.Fatalf("Drain = %d, want 5", got)
	}
	if pool.Avail() != 8 {
		t.Fatalf("pool avail = %d, want 8", pool.Avail())
	}
}

// TestSwitchoverNoLossNoDup runs live traffic through a port pair while the
// control plane repeatedly attaches and detaches the bypass, verifying every
// packet arrives exactly once regardless of the path taken. This is the
// dynamicity property: switchover happens "on the fly".
func TestSwitchoverNoLossNoDup(t *testing.T) {
	const total = 100000
	pool := mempool.MustNew(mempool.Config{Capacity: 1024, BufSize: 256, Headroom: 32})
	portA, pmdA, _ := NewPort(1, "dpdkr1", 256)
	portB, pmdB, _ := NewPort(2, "dpdkr2", 256)
	link, _ := NewLink("bypass", 1, 2, 256)

	var wg sync.WaitGroup

	// "vSwitch": forwards normal-channel traffic from A to B. Unlike a real
	// switch it applies backpressure instead of dropping, because this test
	// asserts zero loss end to end. The backlog check is sound because this
	// goroutine is the only producer for B's normal channel.
	stopSwitch := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]*mempool.Buf, 32)
		for {
			n := portA.Recv(batch)
			if n > 0 {
				for 256-portB.NormalBacklog() < n {
					runtime.Gosched()
				}
				if sent := portB.Send(batch[:n]); sent != n {
					t.Errorf("switch dropped %d packets", n-sent)
					return
				}
			}
			select {
			case <-stopSwitch:
				if portA.Recv(batch[:1]) == 0 {
					return
				}
			default:
			}
		}
	}()

	// Producer: VNF on port A sends sequence numbers, blocking on full rings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			b, err := pool.Get()
			if err != nil {
				runtime.Gosched() // consumers must run to refill the pool
				continue
			}
			seq := []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
			if err := b.SetBytes(seq); err != nil {
				t.Error(err)
				return
			}
			if pmdA.Tx([]*mempool.Buf{b}) == 1 {
				i++
			} else {
				b.Free()
				runtime.Gosched()
			}
		}
	}()

	// Control plane: toggles the bypass while traffic flows.
	toggleDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(toggleDone)
		for i := 0; i < 200; i++ {
			pmdB.AttachRxBypass(link)
			pmdA.AttachTxBypass(link)
			pmdA.DetachTxBypass()
			// RX side keeps polling the bypass until the producer can no
			// longer feed it, then detaches; leftover packets are consumed
			// because detach happens only after the TX side reverted.
		}
	}()

	// Consumer: VNF on port B counts every sequence number once.
	seen := make([]bool, total)
	count := 0
	batch := make([]*mempool.Buf, 32)
	for count < total {
		n := pmdB.Rx(batch)
		if n == 0 {
			runtime.Gosched()
		}
		for i := 0; i < n; i++ {
			p := batch[i].Bytes()
			seq := int(p[0])<<24 | int(p[1])<<16 | int(p[2])<<8 | int(p[3])
			if seq < 0 || seq >= total {
				t.Fatalf("bogus sequence %d", seq)
			}
			if seen[seq] {
				t.Fatalf("duplicate packet %d", seq)
			}
			seen[seq] = true
			count++
			batch[i].Free()
		}
	}
	close(stopSwitch)
	<-toggleDone
	pmdB.DetachRxBypass()
	wg.Wait()
}

func BenchmarkNormalChannelHop(b *testing.B) {
	pool := mempool.MustNew(mempool.Config{Capacity: 2048, BufSize: 256, Headroom: 32})
	port, pmd, _ := NewPort(1, "p", 1024)
	bufs := make([]*mempool.Buf, 32)
	out := make([]*mempool.Buf, 32)
	pool.GetBatch(bufs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pmd.Tx(bufs)
		port.Recv(out)
	}
	b.SetBytes(32)
}

func BenchmarkBypassHop(b *testing.B) {
	pool := mempool.MustNew(mempool.Config{Capacity: 2048, BufSize: 256, Headroom: 32})
	_, pmdA, _ := NewPort(1, "a", 1024)
	_, pmdB, _ := NewPort(2, "b", 1024)
	link, _ := NewLink("l", 1, 2, 1024)
	pmdA.AttachTxBypass(link)
	pmdB.AttachRxBypass(link)
	bufs := make([]*mempool.Buf, 32)
	out := make([]*mempool.Buf, 32)
	pool.GetBatch(bufs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pmdA.Tx(bufs)
		pmdB.Rx(out)
	}
	b.SetBytes(32)
}
