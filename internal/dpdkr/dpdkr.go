// Package dpdkr implements the paper's modified dpdkr port: a shared-memory
// ring port with a mandatory *normal* channel to the vSwitch forwarding
// engine and an optional *bypass* channel connected directly to another VM's
// PMD.
//
// The guest-side PMD multiplexes both channels behind a single logical port:
// applications call Rx/Tx exactly as they would on a vanilla dpdkr port and
// never learn whether their packets ride the bypass (the paper's
// transparency property). Channel switchover is an atomic pointer swap, so
// it is safe while traffic flows (the dynamicity property). Packets sent
// through the bypass are accounted into a shared stats block that the
// vSwitch merges into its OpenFlow statistics (the stats-transparency
// property).
package dpdkr

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
	"ovshighway/internal/ring"
	"ovshighway/internal/stats"
)

// Ring is the packet ring type used by all dpdkr channels.
type Ring = ring.SPSC[*mempool.Buf]

// DefaultRingSize is the per-direction ring capacity (DPDK's common default).
const DefaultRingSize = 1024

// Port is the host (vSwitch) side of a dpdkr port. The forwarding engine
// polls Recv for guest transmissions and pushes with Send; both operate on
// the normal channel only — the whole point of the bypass is that the host
// never sees bypass traffic.
type Port struct {
	ID   uint32
	Name string

	toVM *Ring // normal channel: host → guest
	// fromVM is the guest → host direction, split into one ring per RSS
	// queue: the guest side hashes each frame's flow identity (flow.RSSHash)
	// to pick a ring, modeling a NIC fanning its RX across hardware queues.
	// Single-queue ports have exactly one ring and behave as before.
	fromVM []*Ring

	// Counters hold the host-side view of normal-channel traffic.
	Counters stats.PortCounters
}

// PMD is the guest-side poll mode driver for one dpdkr port. A single
// goroutine (the VNF's lcore) must own Rx and Tx; the control plane may
// concurrently reconfigure the bypass pointers.
type PMD struct {
	PortID uint32

	rxNormal *Ring   // host → guest
	txNormal []*Ring // guest → host, one ring per RSS queue

	// rssParser classifies outgoing frames onto queues when the port has
	// more than one (owned by the lcore goroutine, like the rings).
	rssParser pkt.Parser

	txBypass atomic.Pointer[BypassHalf]
	rxBypass atomic.Pointer[BypassHalf]

	// rounds counts Rx calls for normal-channel fairness: even with an
	// active bypass the PMD periodically polls the normal channel so
	// controller packet-outs are still delivered.
	rounds uint64

	// rxOps/txOps are seqlock-style epoch counters: odd while the lcore is
	// inside Rx/Tx, even when idle. They let the control plane wait out an
	// in-flight datapath call after swapping a bypass pointer — the grace
	// period that makes teardown safe while traffic flows (without it, the
	// manager draining a detached ring would race the last Rx still using
	// it, i.e. two consumers on an SPSC ring).
	rxOps atomic.Uint64
	txOps atomic.Uint64

	// TxNormalDrops counts normal-channel enqueue failures observed by Tx.
	TxNormalDrops atomic.Uint64
}

// BypassHalf is one direction of a bypass channel as seen by one PMD: the
// shared ring plus the shared stats block for that directed link. Two
// BypassHalf values referencing the same ring exist — the sender's (tx) and
// the receiver's (rx) — mirroring the paper's "pair of dpdkr bypass channels
// mapped on the same piece of memory".
type BypassHalf struct {
	Link *Link
}

// Link is the shared substance of one directed bypass channel, created by
// the vSwitch's bypass manager and placed into a shm segment.
type Link struct {
	Name string
	// From/To are the host port IDs of the producing and consuming ports.
	From, To uint32
	Ring     *Ring
	Stats    *stats.Block
}

// NewLink builds a directed bypass link with its own ring and stats block.
func NewLink(name string, from, to uint32, ringSize int) (*Link, error) {
	r, err := ring.NewSPSC[*mempool.Buf](ringSize)
	if err != nil {
		return nil, fmt.Errorf("dpdkr: bypass link %q: %w", name, err)
	}
	return &Link{Name: name, From: from, To: to, Ring: r, Stats: &stats.Block{}}, nil
}

// Drain empties the link's ring, freeing any in-flight buffers in batched
// ring/pool operations. Used at teardown after both PMDs detached.
func (l *Link) Drain() int {
	var scratch [32]*mempool.Buf
	n := 0
	for {
		k := l.Ring.Dequeue(scratch[:])
		if k == 0 {
			return n
		}
		mempool.FreeBatch(scratch[:k])
		n += k
	}
}

// NewPort creates a single-queue dpdkr port with only the normal channel
// (the state every port starts in when the compute agent creates the VM)
// and returns both endpoints.
func NewPort(id uint32, name string, ringSize int) (*Port, *PMD, error) {
	return NewPortMQ(id, name, ringSize, 1)
}

// NewPortMQ creates a dpdkr port whose guest→host direction fans out into
// nq RSS queues, each its own SPSC ring: the guest PMD hashes every frame's
// flow onto one queue, and each queue is polled by exactly one forwarding
// thread — the substrate the vSwitch's queue→PMD assignment table
// distributes load over. nq <= 1 degenerates to the classic single-queue
// port.
func NewPortMQ(id uint32, name string, ringSize, nq int) (*Port, *PMD, error) {
	if ringSize == 0 {
		ringSize = DefaultRingSize
	}
	if nq < 1 {
		nq = 1
	}
	toVM, err := ring.NewSPSC[*mempool.Buf](ringSize)
	if err != nil {
		return nil, nil, err
	}
	fromVM := make([]*Ring, nq)
	for i := range fromVM {
		if fromVM[i], err = ring.NewSPSC[*mempool.Buf](ringSize); err != nil {
			return nil, nil, err
		}
	}
	p := &Port{ID: id, Name: name, toVM: toVM, fromVM: fromVM}
	d := &PMD{PortID: id, rxNormal: toVM, txNormal: fromVM}
	return p, d, nil
}

// --- host side -------------------------------------------------------------

// Recv dequeues up to len(out) guest transmissions from RSS queue 0 of the
// normal channel. Single-queue callers keep using this; multi-queue ports
// are polled per queue via RecvQueue.
func (p *Port) Recv(out []*mempool.Buf) int { return p.RecvQueue(0, out) }

// NumRxQueues reports how many RSS queues the guest→host direction has.
// The vSwitch uses it to enumerate pollable queues at port-add time.
func (p *Port) NumRxQueues() int { return len(p.fromVM) }

// RecvQueue dequeues up to len(out) guest transmissions from one RSS queue.
// Each queue must have exactly one consumer (the owning PMD thread); the
// assignment table upstream guarantees that.
func (p *Port) RecvQueue(q int, out []*mempool.Buf) int {
	n := p.fromVM[q].Dequeue(out)
	if n > 0 {
		var bytes uint64
		for _, b := range out[:n] {
			bytes += uint64(b.Len)
		}
		p.Counters.RxPackets.Add(uint64(n))
		p.Counters.RxBytes.Add(bytes)
	}
	return n
}

// Send enqueues bufs toward the guest on the normal channel. Packets that do
// not fit are freed and counted as TX drops; the return value is the number
// actually delivered. The forwarding engine is the single producer.
//
// Byte accounting happens BEFORE the enqueue: the moment a buffer enters the
// ring its ownership transfers to the consumer, which may free and recycle
// it concurrently — reading b.Len afterwards would be a use-after-transfer.
func (p *Port) Send(bufs []*mempool.Buf) int {
	var total uint64
	for _, b := range bufs {
		total += uint64(b.Len)
	}
	n := p.toVM.Enqueue(bufs)
	var unsent uint64
	for _, b := range bufs[n:] { // still owned by us
		unsent += uint64(b.Len)
		b.Free()
	}
	p.Counters.TxPackets.Add(uint64(n))
	p.Counters.TxBytes.Add(total - unsent)
	if dropped := len(bufs) - n; dropped > 0 {
		p.Counters.TxDropped.Add(uint64(dropped))
	}
	return n
}

// NormalBacklog reports the number of packets queued toward the guest
// (diagnostic; used in tests).
func (p *Port) NormalBacklog() int { return p.toVM.Len() }

// ReturnBacklog reports the number of packets the guest has transmitted
// that the forwarding engine has not yet picked up. A migration drain must
// see BOTH directions empty: frames parked here would be freed — lost — by
// Drain when the VM is destroyed.
func (p *Port) ReturnBacklog() int {
	n := 0
	for _, r := range p.fromVM {
		n += r.Len()
	}
	return n
}

// Drain frees every packet parked in the port's normal-channel rings,
// returning the count. Teardown-only: both the forwarding engine and the
// guest PMD must already be detached, since Drain acts as consumer on both
// rings.
func (p *Port) Drain() int {
	var scratch [32]*mempool.Buf
	n := 0
	rings := append([]*Ring{p.toVM}, p.fromVM...)
	for _, r := range rings {
		for {
			k := r.Dequeue(scratch[:])
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
			n += k
		}
	}
	return n
}

// PortID implements the datapath port interface.
func (p *Port) PortID() uint32 { return p.ID }

// PortName implements the datapath port interface.
func (p *Port) PortName() string { return p.Name }

// PortCounters implements the datapath port interface.
func (p *Port) PortCounters() *stats.PortCounters { return &p.Counters }

// --- guest side ------------------------------------------------------------

// normalPollInterval is how often (in Rx rounds) the PMD polls the normal
// channel while a bypass RX is active, keeping packet-out delivery live.
const normalPollInterval = 16

// Rx receives up to len(out) packets for the application, draining the
// bypass channel when one is attached and periodically (or on spare batch
// room) the normal channel.
func (d *PMD) Rx(out []*mempool.Buf) int {
	d.rxOps.Add(1) // enter critical section (odd)
	n := d.rx(out)
	d.rxOps.Add(1) // leave critical section (even)
	return n
}

func (d *PMD) rx(out []*mempool.Buf) int {
	d.rounds++
	bh := d.rxBypass.Load()
	if bh == nil {
		return d.rxNormal.Dequeue(out)
	}
	n := 0
	// On fairness rounds the normal channel goes first; otherwise a bypass
	// that fills every batch would starve controller packet-outs forever.
	if d.rounds%normalPollInterval == 0 {
		n = d.rxNormal.Dequeue(out)
	}
	if n < len(out) {
		m := bh.Link.Ring.Dequeue(out[n:])
		if m > 0 {
			var bytes uint64
			for _, b := range out[n : n+m] {
				bytes += uint64(b.Len)
			}
			bh.Link.Stats.AccountRx(uint64(m), bytes)
			n += m
		}
	}
	if n < len(out) {
		n += d.rxNormal.Dequeue(out[n:])
	}
	return n
}

// Tx transmits bufs, using the bypass channel when attached and the normal
// channel otherwise. It returns how many packets were accepted; the caller
// retains ownership of (and must free) the rest. Bypass traffic is accounted
// into the link's shared stats block — the vSwitch never sees it.
func (d *PMD) Tx(bufs []*mempool.Buf) int {
	d.txOps.Add(1) // enter critical section (odd)
	n := d.tx(bufs)
	d.txOps.Add(1) // leave critical section (even)
	return n
}

func (d *PMD) tx(bufs []*mempool.Buf) int {
	if bh := d.txBypass.Load(); bh != nil {
		// Sum before enqueueing: ownership transfers with the enqueue (see
		// Port.Send), and the unsent tail remains readable afterwards.
		var total uint64
		for _, b := range bufs {
			total += uint64(b.Len)
		}
		n := bh.Link.Ring.Enqueue(bufs)
		var unsent uint64
		for _, b := range bufs[n:] {
			unsent += uint64(b.Len)
		}
		bh.Link.Stats.AccountTx(uint64(n), total-unsent)
		if dropped := len(bufs) - n; dropped > 0 {
			bh.Link.Stats.TxDrops.Add(uint64(dropped))
		}
		return n
	}
	if len(d.txNormal) == 1 {
		n := d.txNormal[0].Enqueue(bufs)
		if dropped := len(bufs) - n; dropped > 0 {
			d.TxNormalDrops.Add(uint64(dropped))
		}
		return n
	}
	// Multi-queue RSS: hash each frame's flow onto a queue so one flow always
	// lands in one ring (ordering per flow is the ring's FIFO). The accepted
	// set must stay a prefix of bufs — the caller frees bufs[n:] — so the
	// first frame that doesn't fit ends the call even if other queues still
	// have room.
	n := 0
	for _, b := range bufs {
		q := 0
		if h, ok := flow.RSSHash(&d.rssParser, b.Bytes()); ok {
			q = int(h % uint32(len(d.txNormal)))
		}
		if d.txNormal[q].Enqueue(bufs[n : n+1]) == 0 {
			break
		}
		n++
	}
	if dropped := len(bufs) - n; dropped > 0 {
		d.TxNormalDrops.Add(uint64(dropped))
	}
	return n
}

// TxQueue enqueues bufs directly onto one normal-channel RSS queue,
// bypassing both the bypass pointer and the RSS hash. It models traffic a
// real NIC would have already hashed — benchmarks and tests use it to place
// load on a specific queue deterministically. Returns the number accepted
// (a prefix of bufs; the caller frees the rest).
func (d *PMD) TxQueue(q int, bufs []*mempool.Buf) int {
	d.txOps.Add(1) // enter critical section (odd)
	n := d.txNormal[q].Enqueue(bufs)
	d.txOps.Add(1) // leave critical section (even)
	if dropped := len(bufs) - n; dropped > 0 {
		d.TxNormalDrops.Add(uint64(dropped))
	}
	return n
}

// NumTxQueues reports how many RSS queues the guest side fans out over.
func (d *PMD) NumTxQueues() int { return len(d.txNormal) }

// --- control plane (driven via the agent's virtio-serial commands) ---------

// AttachTxBypass atomically redirects transmissions to the link's ring.
func (d *PMD) AttachTxBypass(l *Link) {
	d.txBypass.Store(&BypassHalf{Link: l})
}

// AttachRxBypass atomically adds the link's ring to the receive poll set.
func (d *PMD) AttachRxBypass(l *Link) {
	d.rxBypass.Store(&BypassHalf{Link: l})
}

// DetachTxBypass reverts transmissions to the normal channel, returning the
// previously attached link (nil if none).
func (d *PMD) DetachTxBypass() *Link {
	old := d.txBypass.Swap(nil)
	if old == nil {
		return nil
	}
	return old.Link
}

// DetachRxBypass removes the bypass ring from the poll set, returning the
// previously attached link (nil if none).
func (d *PMD) DetachRxBypass() *Link {
	old := d.rxBypass.Swap(nil)
	if old == nil {
		return nil
	}
	return old.Link
}

// TxBypassLink returns the currently attached TX link (nil if none).
func (d *PMD) TxBypassLink() *Link {
	if bh := d.txBypass.Load(); bh != nil {
		return bh.Link
	}
	return nil
}

// RxBypassLink returns the currently attached RX link (nil if none).
func (d *PMD) RxBypassLink() *Link {
	if bh := d.rxBypass.Load(); bh != nil {
		return bh.Link
	}
	return nil
}

// QuiesceRx blocks until any Rx call that began before QuiesceRx was invoked
// has finished. After a Detach*+Quiesce* pair, no datapath code can still
// hold the old bypass pointer.
func (d *PMD) QuiesceRx() { quiesce(&d.rxOps) }

// QuiesceTx is the transmit-side analogue of QuiesceRx.
func (d *PMD) QuiesceTx() { quiesce(&d.txOps) }

func quiesce(ops *atomic.Uint64) {
	start := ops.Load()
	if start%2 == 0 {
		return // idle: no critical section in flight
	}
	for {
		runtime.Gosched()
		// Either the lcore left the critical section (even) or it already
		// entered a new one (changed) — a new section observes the swapped
		// pointers, so both cases mean the grace period has elapsed.
		if v := ops.Load(); v%2 == 0 || v != start {
			return
		}
	}
}
