package ring

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewMPMCRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{-4, 0, 1, 5, 12} {
		if _, err := NewMPMC[int](c); err == nil {
			t.Errorf("capacity %d: want error, got nil", c)
		}
	}
	m, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cap() != 8 {
		t.Errorf("Cap() = %d, want 8", m.Cap())
	}
}

func TestMustMPMCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMPMC(0) did not panic")
		}
	}()
	MustMPMC[int](0)
}

func TestMPMCFIFOSingleThreaded(t *testing.T) {
	m := MustMPMC[int](8)
	for i := 0; i < 8; i++ {
		if !m.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if m.TryEnqueue(8) {
		t.Fatal("enqueue succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := m.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := m.TryDequeue(); ok {
		t.Fatal("dequeue succeeded on empty ring")
	}
}

func TestMPMCWraparound(t *testing.T) {
	m := MustMPMC[int](4)
	for i := 0; i < 1000; i++ {
		if !m.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
		v, ok := m.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = %d,%v; want %d", v, ok, i)
		}
	}
}

func TestMPMCBatchOps(t *testing.T) {
	m := MustMPMC[int](8)
	n := m.Enqueue([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if n != 8 {
		t.Fatalf("Enqueue = %d, want 8", n)
	}
	out := make([]int, 16)
	n = m.Dequeue(out)
	if n != 8 {
		t.Fatalf("Dequeue = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if out[i] != i+1 {
			t.Errorf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
}

// TestMPMCConcurrentNoLossNoDup pushes a known multiset through the ring from
// several producers to several consumers and verifies every element arrives
// exactly once.
func TestMPMCConcurrentNoLossNoDup(t *testing.T) {
	const (
		producers = 4
		consumers = 4
	)
	perProd := soakN(50000)
	m := MustMPMC[int](256)
	var wg sync.WaitGroup
	results := make(chan []int, consumers)
	var remaining sync.WaitGroup

	remaining.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer remaining.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !m.TryEnqueue(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() {
		remaining.Wait()
		close(done)
	}()

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []int
			for {
				v, ok := m.TryDequeue()
				if ok {
					got = append(got, v)
					continue
				}
				select {
				case <-done:
					// Producers finished; drain whatever is left.
					if v, ok := m.TryDequeue(); ok {
						got = append(got, v)
						continue
					}
					results <- got
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(results)

	var all []int
	for g := range results {
		all = append(all, g...)
	}
	if len(all) != producers*perProd {
		t.Fatalf("received %d elements, want %d", len(all), producers*perProd)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("all[%d] = %d (lost or duplicated element)", i, v)
		}
	}
}

// TestMPMCPerProducerOrder checks that elements from a single producer are
// consumed in that producer's order (FIFO per producer) when one consumer
// drains the ring.
func TestMPMCPerProducerOrder(t *testing.T) {
	perProd := soakN(20000)
	m := MustMPMC[[2]int](128)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !m.TryEnqueue([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	go func() { wg.Wait() }()

	lastSeen := map[int]int{0: -1, 1: -1, 2: -1}
	for count := 0; count < 3*perProd; {
		v, ok := m.TryDequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		p, i := v[0], v[1]
		if i != lastSeen[p]+1 {
			t.Fatalf("producer %d: saw %d after %d", p, i, lastSeen[p])
		}
		lastSeen[p] = i
		count++
	}
	wg.Wait()
}

func TestMPMCQuickModel(t *testing.T) {
	f := func(ops []uint8) bool {
		m := MustMPMC[int](8)
		var model []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok := m.TryEnqueue(next)
				if ok != (len(model) < 8) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := m.TryDequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if m.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickN(500)}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMPMCSingle(b *testing.B) {
	m := MustMPMC[int](1024)
	for i := 0; i < b.N; i++ {
		m.TryEnqueue(i)
		m.TryDequeue()
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	m := MustMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !m.TryEnqueue(1) {
				m.TryDequeue()
			} else {
				m.TryDequeue()
			}
		}
	})
}
