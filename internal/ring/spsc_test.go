package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// soakN scales a soak-test iteration count: the full run keeps the given
// count, -short divides it by 100 so the suite finishes in seconds.
func soakN(full int) int {
	if testing.Short() {
		return full / 100
	}
	return full
}

// quickN likewise scales a testing/quick MaxCount.
func quickN(full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

func TestNewSPSCRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{-1, 0, 1, 3, 6, 100} {
		if _, err := NewSPSC[int](c); err == nil {
			t.Errorf("capacity %d: want error, got nil", c)
		}
	}
	for _, c := range []int{2, 4, 64, 4096} {
		r, err := NewSPSC[int](c)
		if err != nil {
			t.Fatalf("capacity %d: unexpected error %v", c, err)
		}
		if r.Cap() != c {
			t.Errorf("Cap() = %d, want %d", r.Cap(), c)
		}
	}
}

func TestMustSPSCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSPSC(3) did not panic")
		}
	}()
	MustSPSC[int](3)
}

func TestSPSCFIFOOrder(t *testing.T) {
	r := MustSPSC[int](8)
	for i := 0; i < 5; i++ {
		if !r.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed on non-full ring", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue() = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on empty ring")
	}
}

func TestSPSCFullRejects(t *testing.T) {
	r := MustSPSC[int](4)
	for i := 0; i < 4; i++ {
		if !r.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed before full", i)
		}
	}
	if r.TryEnqueue(99) {
		t.Fatal("TryEnqueue succeeded on full ring")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	if got := r.Free(); got != 0 {
		t.Fatalf("Free() = %d, want 0", got)
	}
}

func TestSPSCWraparound(t *testing.T) {
	r := MustSPSC[int](4)
	next := 0
	// Push/pop more than 10x capacity so indices wrap repeatedly.
	for round := 0; round < 50; round++ {
		n := round%4 + 1
		for i := 0; i < n; i++ {
			if !r.TryEnqueue(next + i) {
				t.Fatalf("round %d: enqueue failed", round)
			}
		}
		for i := 0; i < n; i++ {
			v, ok := r.TryDequeue()
			if !ok || v != next+i {
				t.Fatalf("round %d: got %d,%v want %d,true", round, v, ok, next+i)
			}
		}
		next += n
	}
}

func TestSPSCBatchEnqueueDequeue(t *testing.T) {
	r := MustSPSC[int](8)
	in := []int{1, 2, 3, 4, 5}
	if n := r.Enqueue(in); n != 5 {
		t.Fatalf("Enqueue = %d, want 5", n)
	}
	out := make([]int, 3)
	if n := r.Dequeue(out); n != 3 {
		t.Fatalf("Dequeue = %d, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if n := r.Dequeue(out); n != 2 {
		t.Fatalf("second Dequeue = %d, want 2", n)
	}
}

func TestSPSCBatchPartialEnqueue(t *testing.T) {
	r := MustSPSC[int](4)
	in := []int{10, 20, 30, 40, 50, 60}
	if n := r.Enqueue(in); n != 4 {
		t.Fatalf("Enqueue on cap-4 ring = %d, want 4", n)
	}
	out := make([]int, 8)
	if n := r.Dequeue(out); n != 4 {
		t.Fatalf("Dequeue = %d, want 4", n)
	}
	for i, want := range []int{10, 20, 30, 40} {
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestSPSCBatchEmptySlices(t *testing.T) {
	r := MustSPSC[int](4)
	if n := r.Enqueue(nil); n != 0 {
		t.Errorf("Enqueue(nil) = %d, want 0", n)
	}
	if n := r.Dequeue(nil); n != 0 {
		t.Errorf("Dequeue(nil) = %d, want 0", n)
	}
}

func TestSPSCPointerSlotsCleared(t *testing.T) {
	r := MustSPSC[*int](4)
	v := new(int)
	r.TryEnqueue(v)
	got, ok := r.TryDequeue()
	if !ok || got != v {
		t.Fatal("round-trip failed")
	}
	// The vacated slot must not retain the pointer (GC hygiene).
	if r.buf[0] != nil {
		t.Fatal("dequeued slot still holds pointer")
	}
}

// TestSPSCConcurrentTransfer moves a large sequence through the ring with a
// distinct producer and consumer goroutine, checking order and completeness.
func TestSPSCConcurrentTransfer(t *testing.T) {
	total := soakN(200000)
	r := MustSPSC[int](128)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]int, 32)
		for i := 0; i < total; {
			n := 0
			for n < len(buf) && i+n < total {
				buf[n] = i + n
				n++
			}
			sent := 0
			for sent < n {
				k := r.Enqueue(buf[sent:n])
				sent += k
				if k == 0 {
					runtime.Gosched() // consumer needs the core to drain
				}
			}
			i += n
		}
	}()
	out := make([]int, 32)
	want := 0
	for want < total {
		n := r.Dequeue(out)
		if n == 0 {
			runtime.Gosched()
		}
		for i := 0; i < n; i++ {
			if out[i] != want {
				t.Fatalf("got %d, want %d", out[i], want)
			}
			want++
		}
	}
	wg.Wait()
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("ring not empty after transfer")
	}
}

// TestSPSCConcurrentSingleOps is the single-element variant of the transfer
// test, exercising TryEnqueue/TryDequeue cached-index refresh paths.
func TestSPSCConcurrentSingleOps(t *testing.T) {
	total := uint64(soakN(100000))
	r := MustSPSC[uint64](16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < total; {
			if r.TryEnqueue(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := uint64(0); want < total; {
		if v, ok := r.TryDequeue(); ok {
			if v != want {
				t.Fatalf("got %d, want %d", v, want)
			}
			want++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}

// TestSPSCQuickModel checks the ring against a simple slice-backed queue
// model over random operation sequences.
func TestSPSCQuickModel(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		r := MustSPSC[int](16)
		var model []int
		rng := rand.New(rand.NewSource(seed))
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0: // single enqueue
				ok := r.TryEnqueue(next)
				if ok != (len(model) < 16) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // single dequeue
				v, ok := r.TryDequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // batch enqueue
				k := rng.Intn(8) + 1
				batch := make([]int, k)
				for i := range batch {
					batch[i] = next + i
				}
				n := r.Enqueue(batch)
				wantN := 16 - len(model)
				if wantN > k {
					wantN = k
				}
				if n != wantN {
					return false
				}
				model = append(model, batch[:n]...)
				next += n
			case 3: // batch dequeue
				k := rng.Intn(8) + 1
				out := make([]int, k)
				n := r.Dequeue(out)
				wantN := len(model)
				if wantN > k {
					wantN = k
				}
				if n != wantN {
					return false
				}
				for i := 0; i < n; i++ {
					if out[i] != model[i] {
						return false
					}
				}
				model = model[n:]
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickN(300)}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPSCSingle(b *testing.B) {
	r := MustSPSC[int](1024)
	for i := 0; i < b.N; i++ {
		r.TryEnqueue(i)
		r.TryDequeue()
	}
}

func BenchmarkSPSCBatch32(b *testing.B) {
	r := MustSPSC[int](1024)
	in := make([]int, 32)
	out := make([]int, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Enqueue(in)
		r.Dequeue(out)
	}
	b.SetBytes(32)
}
