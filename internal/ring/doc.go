// Package ring provides lock-free bounded queues modeled on DPDK's rte_ring.
//
// Two variants are provided:
//
//   - SPSC: a single-producer single-consumer ring. This is the building
//     block for dpdkr port channels (both the normal channel to the vSwitch
//     and the direct bypass channel between two VMs), where each end is owned
//     by exactly one poll-mode thread.
//   - MPMC: a multi-producer multi-consumer ring (Vyukov bounded queue),
//     used for mempool freelists and any queue shared by several PMD loops.
//
// Both rings have power-of-two capacity, support batch enqueue/dequeue (the
// fast-path idiom throughout this repository), never allocate after
// construction, and are safe for concurrent use within their producer and
// consumer cardinality contracts.
package ring
