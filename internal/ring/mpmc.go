package ring

import (
	"fmt"
	"sync/atomic"
)

// slot is one cell of an MPMC ring. seq coordinates producers and consumers:
// a slot is writable for turn t when seq == t, and readable when seq == t+1.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded multi-producer multi-consumer lock-free ring
// (Dmitry Vyukov's bounded queue). Any number of goroutines may enqueue and
// dequeue concurrently. Construct with NewMPMC.
type MPMC[T any] struct {
	mask  uint64
	slots []slot[T]

	_    pad
	head atomic.Uint64 // next ticket to consume
	_    pad
	tail atomic.Uint64 // next ticket to produce
	_    pad
}

// NewMPMC returns an MPMC ring with the given capacity, which must be a
// power of two and at least 2.
func NewMPMC[T any](capacity int) (*MPMC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("ring: capacity %d is not a power of two >= 2", capacity)
	}
	m := &MPMC[T]{
		mask:  uint64(capacity - 1),
		slots: make([]slot[T], capacity),
	}
	for i := range m.slots {
		m.slots[i].seq.Store(uint64(i))
	}
	return m, nil
}

// MustMPMC is NewMPMC that panics on an invalid capacity.
func MustMPMC[T any](capacity int) *MPMC[T] {
	m, err := NewMPMC[T](capacity)
	if err != nil {
		panic(err)
	}
	return m
}

// Cap returns the ring capacity.
func (m *MPMC[T]) Cap() int { return len(m.slots) }

// Len returns an instantaneous element count; only exact at quiescence.
func (m *MPMC[T]) Len() int {
	n := int64(m.tail.Load()) - int64(m.head.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// TryEnqueue appends one element, returning false if the ring is full.
func (m *MPMC[T]) TryEnqueue(v T) bool {
	for {
		tail := m.tail.Load()
		s := &m.slots[tail&m.mask]
		seq := s.seq.Load()
		switch {
		case seq == tail:
			if m.tail.CompareAndSwap(tail, tail+1) {
				s.val = v
				s.seq.Store(tail + 1)
				return true
			}
		case seq < tail:
			return false // slot still holds an unconsumed value: full
		}
		// seq > tail: another producer raced ahead; retry with fresh tail.
	}
}

// TryDequeue removes one element, reporting whether one was available.
func (m *MPMC[T]) TryDequeue() (T, bool) {
	var zero T
	for {
		head := m.head.Load()
		s := &m.slots[head&m.mask]
		seq := s.seq.Load()
		switch {
		case seq == head+1:
			if m.head.CompareAndSwap(head, head+1) {
				v := s.val
				s.val = zero
				s.seq.Store(head + uint64(len(m.slots)))
				return v, true
			}
		case seq <= head:
			return zero, false // slot not yet produced: empty
		}
		// seq > head+1: another consumer raced ahead; retry.
	}
}

// Enqueue appends up to len(vs) elements and returns how many were queued.
func (m *MPMC[T]) Enqueue(vs []T) int {
	n := 0
	for _, v := range vs {
		if !m.TryEnqueue(v) {
			break
		}
		n++
	}
	return n
}

// Dequeue removes up to len(out) elements into out and returns the count.
func (m *MPMC[T]) Dequeue(out []T) int {
	n := 0
	for i := range out {
		v, ok := m.TryDequeue()
		if !ok {
			break
		}
		out[i] = v
		n++
	}
	return n
}
