package ring

import (
	"fmt"
	"sync/atomic"
)

// cacheLine is the assumed CPU cache-line size, used to pad producer and
// consumer indexes apart so they do not false-share.
const cacheLine = 64

type pad [cacheLine]byte

// SPSC is a bounded single-producer single-consumer lock-free ring.
//
// Exactly one goroutine may call producer methods (Enqueue, TryEnqueue) and
// exactly one goroutine may call consumer methods (Dequeue, TryDequeue) at a
// time. The zero value is not usable; construct with NewSPSC.
type SPSC[T any] struct {
	mask uint64
	buf  []T

	_    pad
	head atomic.Uint64 // next slot to consume
	_    pad
	tail atomic.Uint64 // next slot to produce
	_    pad

	// cachedHead is a producer-local snapshot of head, refreshed only when
	// the ring appears full; it keeps the producer off the consumer's cache
	// line most of the time. cachedTail is the consumer-side mirror.
	cachedHead uint64
	_          pad
	cachedTail uint64
	_          pad
}

// NewSPSC returns an SPSC ring with the given capacity, which must be a
// power of two and at least 2.
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("ring: capacity %d is not a power of two >= 2", capacity)
	}
	return &SPSC[T]{
		mask: uint64(capacity - 1),
		buf:  make([]T, capacity),
	}, nil
}

// MustSPSC is NewSPSC that panics on an invalid capacity. Intended for
// initialization paths where the capacity is a compile-time constant.
func MustSPSC[T any](capacity int) *SPSC[T] {
	r, err := NewSPSC[T](capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of elements currently queued. It is an instantaneous
// snapshot and only exact when producer and consumer are quiescent.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Free returns the number of free slots, with the same snapshot caveat as Len.
func (r *SPSC[T]) Free() int { return r.Cap() - r.Len() }

// TryEnqueue appends one element, returning false if the ring is full.
func (r *SPSC[T]) TryEnqueue(v T) bool {
	tail := r.tail.Load()
	if tail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// Enqueue appends up to len(vs) elements and returns how many were queued.
// It queues a prefix of vs; partial enqueue happens only when the ring fills.
func (r *SPSC[T]) Enqueue(vs []T) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = uint64(len(r.buf)) - (tail - r.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = vs[i]
	}
	r.tail.Store(tail + n)
	return int(n)
}

// TryDequeue removes one element, reporting whether one was available.
func (r *SPSC[T]) TryDequeue() (T, bool) {
	var zero T
	head := r.head.Load()
	if head >= r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head >= r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // drop reference for GC
	r.head.Store(head + 1)
	return v, true
}

// Dequeue removes up to len(out) elements into out and returns the count.
func (r *SPSC[T]) Dequeue(out []T) int {
	var zero T
	head := r.head.Load()
	avail := r.cachedTail - head
	if avail < uint64(len(out)) {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - head
	}
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		out[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(head + n)
	return int(n)
}
