package wire

import (
	"bytes"
	"testing"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
)

// env is a two-node micro-testbed: one NIC and one pool per side, joined by
// a wire. The test plays the role of both vSwitches (nic.Send/Recv).
type env struct {
	nicA, nicB   *nic.NIC
	poolA, poolB *mempool.Pool
	w            *Wire
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	e := &env{
		poolA: mempool.MustNew(mempool.Config{Capacity: 512}),
		poolB: mempool.MustNew(mempool.Config{Capacity: 512}),
	}
	var err error
	if e.nicA, err = nic.New(nic.Config{ID: 1, Name: "ethA", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	if e.nicB, err = nic.New(nic.Config{ID: 2, Name: "ethB", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	cfg.Name = "w0"
	cfg.A = Endpoint{NIC: e.nicA, Pool: e.poolA}
	cfg.B = Endpoint{NIC: e.nicB, Pool: e.poolB}
	if e.w, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.w.Stop)
	return e
}

// sendA pushes one payload out of node A's switch toward the wire.
func (e *env) sendA(t *testing.T, payload []byte) {
	t.Helper()
	b, err := e.poolA.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetBytes(payload); err != nil {
		t.Fatal(err)
	}
	if e.nicA.Send([]*mempool.Buf{b}) != 1 {
		t.Fatal("nic A rejected the frame")
	}
}

// recvB polls node B's switch side until a frame arrives or the deadline
// passes.
func (e *env) recvB(d time.Duration) *mempool.Buf {
	out := make([]*mempool.Buf, 1)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if e.nicB.Recv(out) == 1 {
			return out[0]
		}
		time.Sleep(10 * time.Microsecond)
	}
	return nil
}

func TestWireCarriesAndRehomes(t *testing.T) {
	e := newEnv(t, Config{})
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}
	e.sendA(t, payload)

	got := e.recvB(2 * time.Second)
	if got == nil {
		t.Fatal("frame did not cross the wire")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("payload corrupted across the wire: %x", got.Bytes())
	}
	// The load-bearing property: the delivered buffer belongs to node B's
	// pool, and node A's buffer went home.
	if !e.poolB.Owns(got) {
		t.Fatal("delivered frame not re-homed into the receiving pool")
	}
	if e.poolA.Owns(got) {
		t.Fatal("delivered frame still backed by the sending pool")
	}
	got.Free()
	deadline := time.Now().Add(time.Second)
	for e.poolA.Avail() != e.poolA.Cap() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.poolA.Avail() != e.poolA.Cap() {
		t.Fatalf("sending pool leaked: %d of %d free", e.poolA.Avail(), e.poolA.Cap())
	}
	ab, _ := e.w.Stats()
	if ab.Carried != 1 || ab.Dropped != 0 {
		t.Fatalf("a->b stats = %+v, want 1 carried, 0 dropped", ab)
	}
}

func TestWireBidirectional(t *testing.T) {
	e := newEnv(t, Config{})
	// B → A direction: push from node B's switch, receive on node A's.
	b, err := e.poolB.Get()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{9, 9, 9, 9}
	if err := b.SetBytes(payload); err != nil {
		t.Fatal(err)
	}
	if e.nicB.Send([]*mempool.Buf{b}) != 1 {
		t.Fatal("nic B rejected the frame")
	}
	out := make([]*mempool.Buf, 1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.nicA.Recv(out) == 1 {
			if !e.poolA.Owns(out[0]) {
				t.Fatal("b->a frame not re-homed into pool A")
			}
			out[0].Free()
			return
		}
		time.Sleep(10 * time.Microsecond)
	}
	t.Fatal("b->a frame did not arrive")
}

func TestWireLatencyShaping(t *testing.T) {
	const lat = 50 * time.Millisecond
	e := newEnv(t, Config{AtoB: Shaping{Latency: lat}})
	start := time.Now()
	e.sendA(t, []byte{1, 2, 3, 4})
	got := e.recvB(2 * time.Second)
	if got == nil {
		t.Fatal("frame did not arrive")
	}
	got.Free()
	if el := time.Since(start); el < lat {
		t.Fatalf("frame arrived after %v, before the %v propagation delay", el, lat)
	}
}

func TestWireRateShaping(t *testing.T) {
	if testing.Short() {
		t.Skip("rate measurement needs a real-time window")
	}
	const rate = 2000.0
	e := newEnv(t, Config{AtoB: Shaping{RatePps: rate}})
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b, err := e.poolA.Get(); err == nil {
				b.SetBytes([]byte{1, 2, 3, 4})
				e.nicA.Send([]*mempool.Buf{b})
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}()
	defer close(stop)
	// Drain B continuously and count what the wire carried in the window.
	out := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(500 * time.Millisecond)
	var got int
	for time.Now().Before(deadline) {
		n := e.nicB.Recv(out)
		mempool.FreeBatch(out[:n])
		got += n
		if n == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	// 500 ms at 2000 pps ⇒ ~1000 frames; allow generous scheduling slack
	// but catch an unshaped wire (which would carry tens of thousands).
	if got > 2500 {
		t.Fatalf("carried %d frames in 500ms, shaping to %v pps not applied", got, rate)
	}
	if got == 0 {
		t.Fatal("shaped wire carried nothing")
	}
}

func TestWireDropsOnExhaustedDestination(t *testing.T) {
	e := &env{
		poolA: mempool.MustNew(mempool.Config{Capacity: 256}),
		// Destination pool too small for the burst in flight.
		poolB: mempool.MustNew(mempool.Config{Capacity: 4}),
	}
	var err error
	if e.nicA, err = nic.New(nic.Config{ID: 1, Name: "ethA", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	if e.nicB, err = nic.New(nic.Config{ID: 2, Name: "ethB", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	e.w, err = New(Config{
		Name: "w0",
		A:    Endpoint{NIC: e.nicA, Pool: e.poolA},
		B:    Endpoint{NIC: e.nicB, Pool: e.poolB},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.w.Stop)

	// Flood without draining B: the 4-buffer destination pool exhausts.
	const burst = 128
	for i := 0; i < burst; i++ {
		e.sendA(t, []byte{byte(i), 1, 2, 3})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ab, _ := e.w.Stats()
		if ab.Dropped > 0 && ab.Carried+ab.Dropped == burst {
			// Source pool must be whole again: every frame either crossed
			// (re-homed copy) or was dropped, and both paths free the
			// original.
			for e.poolA.Avail() != e.poolA.Cap() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if e.poolA.Avail() != e.poolA.Cap() {
				t.Fatalf("sending pool leaked: %d of %d free", e.poolA.Avail(), e.poolA.Cap())
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	ab, _ := e.w.Stats()
	t.Fatalf("expected drops on exhausted destination pool, stats %+v", ab)
}

func TestWireStopFreesInFlight(t *testing.T) {
	const lat = time.Minute // frames park on the delay line forever
	e := newEnv(t, Config{AtoB: Shaping{Latency: lat}})
	for i := 0; i < 16; i++ {
		e.sendA(t, []byte{1, 2, 3, 4})
	}
	// Wait until the pump re-homed them (pool B shrinks).
	deadline := time.Now().Add(2 * time.Second)
	for e.poolB.Avail() == e.poolB.Cap() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.w.Stop()
	if e.poolB.Avail() != e.poolB.Cap() {
		t.Fatalf("in-flight frames leaked from pool B: %d of %d free",
			e.poolB.Avail(), e.poolB.Cap())
	}
	if e.poolA.Avail() != e.poolA.Cap() {
		t.Fatalf("source buffers leaked from pool A: %d of %d free",
			e.poolA.Avail(), e.poolA.Cap())
	}
}

func TestWireValidation(t *testing.T) {
	pool := mempool.MustNew(mempool.Config{Capacity: 4})
	dev, err := nic.New(nic.Config{ID: 1, Name: "eth", RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{A: Endpoint{NIC: dev, Pool: pool}}); err == nil {
		t.Fatal("missing B endpoint accepted")
	}
	if _, err := New(Config{
		A: Endpoint{NIC: dev, Pool: pool},
		B: Endpoint{NIC: dev},
	}); err == nil {
		t.Fatal("missing pool accepted")
	}
}
