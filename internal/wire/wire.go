// Package wire simulates the physical cable joining two NFV nodes' NICs.
// Each direction is pumped by one goroutine that drains the transmitting
// NIC's wire side (nic.DrainToWire), re-homes every frame into the receiving
// node's mempool, optionally applies rate and propagation-latency shaping,
// and injects the copies into the receiving NIC (nic.InjectFromWire).
//
// Re-homing is the load-bearing step: the two nodes own independent
// fixed-population pools (independent hugepage regions on real hosts), so a
// frame can never carry its buffer across the wire — the payload is copied
// into a buffer allocated from the destination pool and the source buffer
// returns to its own freelist. The mempool ownership guard turns any
// violation of this rule into a panic instead of silent freelist corruption.
package wire

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
)

// Endpoint is one side of a wire: the NIC it plugs into and the node-local
// pool arriving frames are re-homed into.
type Endpoint struct {
	NIC  *nic.NIC
	Pool *mempool.Pool
}

// Shaping configures one direction of the wire.
type Shaping struct {
	// RatePps caps the carried rate (0 = unshaped; the NICs on both ends
	// already pace at their own line rate, so wires usually leave this 0).
	RatePps float64
	// Latency is the propagation delay added to every frame.
	Latency time.Duration
}

// Config parametrizes New.
type Config struct {
	Name string
	A, B Endpoint
	// AtoB/BtoA shape the two directions independently.
	AtoB, BtoA Shaping
	// BatchSize is the per-iteration pump burst (default 32).
	BatchSize int
}

// DirStats counts one direction's traffic.
type DirStats struct {
	// Carried frames were delivered into the receiving NIC.
	Carried uint64
	// Dropped frames were lost on the wire: receiving pool exhausted,
	// receiving NIC ring full, or frame larger than the receiving buffers.
	Dropped uint64
}

// Wire is a running bidirectional link.
type Wire struct {
	name string
	ab   *pump
	ba   *pump
}

// New connects the two endpoints and starts both direction pumps.
func New(cfg Config) (*Wire, error) {
	if cfg.A.NIC == nil || cfg.B.NIC == nil {
		return nil, errors.New("wire: both endpoints need a NIC")
	}
	if cfg.A.Pool == nil || cfg.B.Pool == nil {
		return nil, errors.New("wire: both endpoints need a pool")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	w := &Wire{
		name: cfg.Name,
		ab:   newPump(fmt.Sprintf("%s:a->b", cfg.Name), cfg.A, cfg.B, cfg.AtoB, cfg.BatchSize),
		ba:   newPump(fmt.Sprintf("%s:b->a", cfg.Name), cfg.B, cfg.A, cfg.BtoA, cfg.BatchSize),
	}
	go w.ab.run()
	go w.ba.run()
	return w, nil
}

// Name returns the wire's name.
func (w *Wire) Name() string { return w.name }

// Stats returns per-direction counters (A→B, B→A).
func (w *Wire) Stats() (ab, ba DirStats) { return w.ab.stats(), w.ba.stats() }

// Stop halts both pumps and frees frames still in flight on the wire.
// Frames parked inside the NIC queues stay put: they belong to whoever
// tears the NICs down.
func (w *Wire) Stop() {
	w.ab.stopAndDrain()
	w.ba.stopAndDrain()
}

// delayed is one re-homed frame waiting out its propagation delay.
type delayed struct {
	buf *mempool.Buf
	due int64 // UnixNano
}

// pump moves one direction: src NIC wire-TX → re-home → shape → dst NIC
// wire-RX. The goroutine is the single consumer of the src queue and the
// single producer of the dst queue, honoring both SPSC contracts.
type pump struct {
	name    string
	src     Endpoint
	dst     Endpoint
	shaping Shaping
	bucket  tokenBucket

	drained []*mempool.Buf // scratch: frames pulled off the src NIC
	homed   []*mempool.Buf // scratch: fresh dst-pool buffers
	inFly   []delayed      // FIFO delay line (head index avoids reslicing)
	inHead  int

	carried atomic.Uint64
	dropped atomic.Uint64

	stop atomic.Bool
	done chan struct{}
}

func newPump(name string, src, dst Endpoint, sh Shaping, batch int) *pump {
	p := &pump{
		name:    name,
		src:     src,
		dst:     dst,
		shaping: sh,
		drained: make([]*mempool.Buf, batch),
		homed:   make([]*mempool.Buf, batch),
		done:    make(chan struct{}),
	}
	p.bucket.init(sh.RatePps)
	return p
}

func (p *pump) stats() DirStats {
	return DirStats{Carried: p.carried.Load(), Dropped: p.dropped.Load()}
}

func (p *pump) run() {
	defer close(p.done)
	for !p.stop.Load() {
		moved := p.pull()
		moved += p.deliver()
		if moved == 0 {
			// Idle (or waiting out a propagation delay): yield the core. A
			// busy spin here would starve the single-core measurement hosts
			// (see DESIGN.md "Cooperative backpressure").
			time.Sleep(time.Microsecond)
		}
	}
}

// pull drains a burst off the transmitting NIC and re-homes it into the
// destination pool. Frames that cannot be re-homed (destination pool
// exhausted, oversized payload) are dropped on the wire.
func (p *pump) pull() int {
	want := len(p.drained)
	if allowed := p.bucket.take(want); allowed < want {
		want = allowed
	}
	if want == 0 {
		return 0
	}
	n := p.src.NIC.DrainToWire(p.drained[:want])
	p.bucket.refund(want - n)
	if n == 0 {
		return 0
	}
	got := p.dst.Pool.GetBatch(p.homed[:n])
	now := time.Now()
	due := now.Add(p.shaping.Latency).UnixNano()
	kept := 0
	for i := 0; i < n; i++ {
		srcBuf := p.drained[i]
		if kept >= got {
			continue // destination pool exhausted: wire drop
		}
		dstBuf := p.homed[kept]
		if err := dstBuf.SetBytes(srcBuf.Bytes()); err != nil {
			continue // frame exceeds destination buffer geometry: wire drop
		}
		dstBuf.TS = srcBuf.TS // latency probes survive the hop
		p.inFly = append(p.inFly, delayed{buf: dstBuf, due: due})
		kept++
	}
	// Unused destination buffers (re-home failures) go straight back…
	if kept < got {
		mempool.FreeBatch(p.homed[kept:got])
	}
	// …and every source buffer returns to the transmitting node's pool.
	mempool.FreeBatch(p.drained[:n])
	if d := n - kept; d > 0 {
		p.dropped.Add(uint64(d))
	}
	return n
}

// deliver injects frames whose propagation delay has elapsed into the
// receiving NIC. Frames the NIC ring rejects are dropped (a full physical
// RX ring drops on the wire too).
func (p *pump) deliver() int {
	pending := len(p.inFly) - p.inHead
	if pending == 0 {
		return 0
	}
	ready := p.inHead
	now := time.Now().UnixNano()
	for ready < len(p.inFly) && p.inFly[ready].due <= now {
		ready++
	}
	if ready == p.inHead {
		return 0
	}
	moved := 0
	for p.inHead < ready {
		// Reuse the homed scratch as the injection window.
		k := 0
		for p.inHead < ready && k < len(p.homed) {
			p.homed[k] = p.inFly[p.inHead].buf
			k++
			p.inHead++
		}
		sent := p.dst.NIC.InjectFromWire(p.homed[:k])
		p.carried.Add(uint64(sent))
		moved += k
		if sent < k {
			mempool.FreeBatch(p.homed[sent:k])
			p.dropped.Add(uint64(k - sent))
		}
	}
	if p.inHead == len(p.inFly) {
		p.inFly = p.inFly[:0]
		p.inHead = 0
	} else if p.inHead >= 1024 {
		// Under sustained latency-shaped traffic the line never fully
		// drains, so compact the consumed head periodically or the slice
		// grows for the wire's lifetime.
		n := copy(p.inFly, p.inFly[p.inHead:])
		p.inFly = p.inFly[:n]
		p.inHead = 0
	}
	return moved
}

// stopAndDrain halts the pump goroutine and frees frames still on the delay
// line (they were already re-homed, so they return to the destination pool).
func (p *pump) stopAndDrain() {
	if !p.stop.CompareAndSwap(false, true) {
		return
	}
	<-p.done
	for _, d := range p.inFly[p.inHead:] {
		d.buf.Free()
	}
	p.inFly = nil
	p.inHead = 0
}

// tokenBucket is a packet-granular rate limiter (rate 0 disables shaping).
// Single-goroutine use: only the owning pump touches it.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (t *tokenBucket) init(rate float64) {
	t.rate = rate
	if rate <= 0 {
		t.rate = 0
		return
	}
	t.burst = rate / 1000 // 1 ms of line rate
	if t.burst < 64 {
		t.burst = 64
	}
	t.tokens = t.burst
	t.last = time.Now()
}

func (t *tokenBucket) take(want int) int {
	if t.rate == 0 {
		return want
	}
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	grant := int(t.tokens)
	if grant > want {
		grant = want
	}
	if grant > 0 {
		t.tokens -= float64(grant)
	}
	return grant
}

func (t *tokenBucket) refund(n int) {
	if t.rate == 0 || n <= 0 {
		return
	}
	t.tokens += float64(n)
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
}
