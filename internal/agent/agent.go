// Package agent implements the modified compute agent: the external
// component the vSwitch relies on for bypass plumbing, because OVS only
// knows ports and rules while the agent knows which VM each port belongs to.
//
// The agent implements core.Plumber. Plug/Unplug model QEMU ivshmem device
// hot-(un)plug; ConfigureTx/Rx and RemoveTx/Rx are sent to the in-VM PMD
// over the per-VM virtio-serial channel using the ctrlproto wire format.
// Configurable artificial delays reproduce the latency profile that makes
// the paper's end-to-end setup time land around 100 ms.
package agent

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ovshighway/internal/ctrlproto"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/shm"
	"ovshighway/internal/vm"
)

// Config parametrizes an Agent.
type Config struct {
	// HotplugDelay is added to every Plug/Unplug, emulating QEMU monitor
	// round-trip plus guest PCI enumeration.
	HotplugDelay time.Duration
	// ConfigDelay is added to every PMD (re)configuration, emulating the
	// virtio-serial round-trip into the guest.
	ConfigDelay time.Duration
}

// managedVM couples a VM with the agent's end of its control channel.
type managedVM struct {
	vm *vm.VM

	ctrlMu sync.Mutex // serializes request/response pairs on the channel
	ctrl   io.ReadWriteCloser
}

// Agent is the compute agent for one NFV node.
type Agent struct {
	cfg Config
	reg *shm.Registry

	mu     sync.Mutex
	vms    map[string]*managedVM
	byPort map[uint32]*managedVM
}

// New creates an agent bound to the host shm registry.
func New(reg *shm.Registry, cfg Config) *Agent {
	return &Agent{
		cfg:    cfg,
		reg:    reg,
		vms:    make(map[string]*managedVM),
		byPort: make(map[uint32]*managedVM),
	}
}

// CreateVM boots a VM context connected to the given dpdkr ports (port id →
// guest PMD) and wires its virtio-serial control channel. It mirrors the
// compute agent's normal duty of creating VMs attached to dpdkr ports that
// "have only the normal channel".
func (a *Agent) CreateVM(name string, pmds map[uint32]*dpdkr.PMD) (*vm.VM, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.vms[name]; dup {
		return nil, fmt.Errorf("agent: vm %q exists", name)
	}
	for id := range pmds {
		if _, dup := a.byPort[id]; dup {
			return nil, fmt.Errorf("agent: port %d already owned", id)
		}
	}
	v := vm.New(name, a.reg)
	for id, pmd := range pmds {
		v.AddPMD(id, pmd)
	}
	hostEnd, guestEnd := newPipe()
	go v.ServeCtrl(guestEnd)
	m := &managedVM{vm: v, ctrl: hostEnd}
	a.vms[name] = m
	for id := range pmds {
		a.byPort[id] = m
	}
	return v, nil
}

// DestroyVM tears a VM down: closes the control channel and unplugs devices.
func (a *Agent) DestroyVM(name string) error {
	a.mu.Lock()
	m, ok := a.vms[name]
	if ok {
		delete(a.vms, name)
		for id, owner := range a.byPort {
			if owner == m {
				delete(a.byPort, id)
			}
		}
	}
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("agent: vm %q not found", name)
	}
	m.ctrl.Close()
	m.vm.Shutdown()
	return nil
}

// VM returns a managed VM by name (nil if absent).
func (a *Agent) VM(name string) *vm.VM {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m, ok := a.vms[name]; ok {
		return m.vm
	}
	return nil
}

// VMForPort resolves the VM owning a port (nil if none) — the mapping OVS
// itself lacks, which is why the agent exists.
func (a *Agent) VMForPort(port uint32) *vm.VM {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m, ok := a.byPort[port]; ok {
		return m.vm
	}
	return nil
}

func (a *Agent) managed(port uint32) (*managedVM, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.byPort[port]
	if !ok {
		return nil, fmt.Errorf("agent: no VM owns port %d", port)
	}
	return m, nil
}

// --- core.Plumber implementation -------------------------------------------

// Plug hot-plugs the named segment into the VM owning port.
func (a *Agent) Plug(port uint32, segment string) error {
	m, err := a.managed(port)
	if err != nil {
		return err
	}
	sleep(a.cfg.HotplugDelay)
	return m.vm.PlugDevice(segment)
}

// Unplug removes the segment from the owning VM's device table.
func (a *Agent) Unplug(port uint32, segment string) error {
	m, err := a.managed(port)
	if err != nil {
		return err
	}
	sleep(a.cfg.HotplugDelay)
	return m.vm.UnplugDevice(segment)
}

func (a *Agent) configure(port uint32, msg ctrlproto.Msg) error {
	m, err := a.managed(port)
	if err != nil {
		return err
	}
	sleep(a.cfg.ConfigDelay)
	m.ctrlMu.Lock()
	defer m.ctrlMu.Unlock()
	return ctrlproto.Call(m.ctrl, msg)
}

// ConfigureTx points the PMD's transmit side at the plugged segment.
func (a *Agent) ConfigureTx(port uint32, segment string) error {
	return a.configure(port, ctrlproto.ConfigureBypass{Port: port, TxRing: segment})
}

// ConfigureRx adds the plugged segment to the PMD's receive poll set.
func (a *Agent) ConfigureRx(port uint32, segment string) error {
	return a.configure(port, ctrlproto.ConfigureBypass{Port: port, RxRing: segment})
}

// RemoveTx reverts the PMD's transmit side to the normal channel.
func (a *Agent) RemoveTx(port uint32) error {
	return a.configure(port, ctrlproto.RemoveBypass{Port: port, Dirs: ctrlproto.DirTx})
}

// RemoveRx removes the bypass from the PMD's receive poll set.
func (a *Agent) RemoveRx(port uint32) error {
	return a.configure(port, ctrlproto.RemoveBypass{Port: port, Dirs: ctrlproto.DirRx})
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// newPipe creates the two ends of a virtio-serial channel. net.Pipe gives
// synchronous in-memory streams, matching the device's rendezvous behaviour.
func newPipe() (host, guest io.ReadWriteCloser) {
	return net.Pipe()
}
