package agent

import (
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/shm"
)

func testAgent(t *testing.T, cfg Config) (*Agent, *shm.Registry, map[uint32]*dpdkr.PMD) {
	t.Helper()
	reg := shm.NewRegistry()
	a := New(reg, cfg)
	pmds := make(map[uint32]*dpdkr.PMD)
	for _, id := range []uint32{1, 2} {
		_, pmd, err := dpdkr.NewPort(id, "dpdkr", 64)
		if err != nil {
			t.Fatal(err)
		}
		pmds[id] = pmd
	}
	return a, reg, pmds
}

func TestCreateDestroyVM(t *testing.T) {
	a, _, pmds := testAgent(t, Config{})
	v, err := a.CreateVM("vm1", pmds)
	if err != nil {
		t.Fatal(err)
	}
	if a.VM("vm1") != v || a.VMForPort(1) != v || a.VMForPort(2) != v {
		t.Fatal("VM lookups broken")
	}
	if _, err := a.CreateVM("vm1", nil); err == nil {
		t.Fatal("duplicate VM name accepted")
	}
	if _, err := a.CreateVM("vm2", pmds); err == nil {
		t.Fatal("port double-ownership accepted")
	}
	if err := a.DestroyVM("vm1"); err != nil {
		t.Fatal(err)
	}
	if a.VM("vm1") != nil || a.VMForPort(1) != nil {
		t.Fatal("VM still visible after destroy")
	}
	if err := a.DestroyVM("vm1"); err == nil {
		t.Fatal("double destroy accepted")
	}
}

func TestPlumberFullCycle(t *testing.T) {
	a, reg, pmds := testAgent(t, Config{})
	if _, err := a.CreateVM("vm1", pmds); err != nil {
		t.Fatal(err)
	}
	link, _ := dpdkr.NewLink("bypass-1-2", 1, 2, 64)
	if _, err := reg.Create("bypass-1-2", link); err != nil {
		t.Fatal(err)
	}

	if err := a.Plug(1, "bypass-1-2"); err != nil {
		t.Fatal(err)
	}
	if err := a.Plug(2, "bypass-1-2"); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureRx(2, "bypass-1-2"); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureTx(1, "bypass-1-2"); err != nil {
		t.Fatal(err)
	}
	if pmds[1].TxBypassLink() != link || pmds[2].RxBypassLink() != link {
		t.Fatal("PMDs not wired via virtio-serial path")
	}

	if err := a.RemoveTx(1); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveRx(2); err != nil {
		t.Fatal(err)
	}
	if pmds[1].TxBypassLink() != nil || pmds[2].RxBypassLink() != nil {
		t.Fatal("PMDs still wired")
	}
	if err := a.Unplug(1, "bypass-1-2"); err != nil {
		t.Fatal(err)
	}
	if err := a.Unplug(2, "bypass-1-2"); err != nil {
		t.Fatal(err)
	}
}

func TestPlumberUnknownPort(t *testing.T) {
	a, _, _ := testAgent(t, Config{})
	if err := a.Plug(9, "x"); err == nil {
		t.Fatal("plug for orphan port accepted")
	}
	if err := a.ConfigureTx(9, "x"); err == nil {
		t.Fatal("configure for orphan port accepted")
	}
}

func TestConfiguredDelaysApply(t *testing.T) {
	const delay = 20 * time.Millisecond
	a, reg, pmds := testAgent(t, Config{HotplugDelay: delay, ConfigDelay: delay})
	if _, err := a.CreateVM("vm1", pmds); err != nil {
		t.Fatal(err)
	}
	link, _ := dpdkr.NewLink("seg", 1, 2, 64)
	reg.Create("seg", link)

	start := time.Now()
	if err := a.Plug(1, "seg"); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureTx(1, "seg"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 2*delay {
		t.Fatalf("elapsed %v, want >= %v (delays not applied)", el, 2*delay)
	}
}

func TestDestroyVMClosesCtrlChannel(t *testing.T) {
	a, reg, pmds := testAgent(t, Config{})
	if _, err := a.CreateVM("vm1", pmds); err != nil {
		t.Fatal(err)
	}
	link, _ := dpdkr.NewLink("seg", 1, 2, 64)
	reg.Create("seg", link)
	if err := a.Plug(1, "seg"); err != nil {
		t.Fatal(err)
	}
	if err := a.DestroyVM("vm1"); err != nil {
		t.Fatal(err)
	}
	// Devices were unplugged at destroy: only the creator ref remains.
	if got := link; got == nil {
		t.Fatal("unreachable")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry segments = %d, want 1 (creator ref only)", reg.Len())
	}
}
