// Package vswitch implements the software switch the paper modifies: an
// OVS-DPDK-style userspace datapath with poll-mode forwarding threads, an
// exact-match cache in front of a tuple-space-search classifier, an OpenFlow
// front-end, and hooks for the p-2-p bypass system (flow-table listeners for
// the detector, bypass-aware statistics export).
package vswitch

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ovshighway/internal/conntrack"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/stats"
)

// DataPort is any port the forwarding engine can poll and push. dpdkr ports
// (VM-facing) and simulated NIC ports both implement it.
type DataPort interface {
	PortID() uint32
	PortName() string
	// Recv dequeues guest/wire arrivals; single consumer (the owning PMD).
	Recv(out []*mempool.Buf) int
	// Send enqueues toward the guest/wire, freeing overflow. The datapath
	// serializes calls per port.
	Send(bufs []*mempool.Buf) int
	// PortCounters exposes the host-side counters for stats export.
	PortCounters() *stats.PortCounters
}

// CongestionReporter is implemented by ports whose egress side publishes a
// congestion score (trunk-attached NICs: the pump draining the wire side
// writes its staging backpressure there). The datapath caches the gauge
// pointer at port attach, so the adaptive-ECMP consult is one atomic load
// per path with no interface call on the hot path. Ports that do not
// implement it read as permanently quiet.
type CongestionReporter interface {
	CongestionGauge() *atomic.Uint32
}

// MultiQueuePort is a DataPort whose guest→host direction is fanned into
// several RSS queues. The datapath polls each queue independently and homes
// every queue on exactly one PMD via the assignment table; ports that do not
// implement it are treated as single-queue (queue 0 == Recv).
type MultiQueuePort interface {
	DataPort
	// NumRxQueues reports the fixed queue count (≥1), set at port creation.
	NumRxQueues() int
	// RecvQueue dequeues arrivals from one queue; single consumer per queue.
	RecvQueue(q int, out []*mempool.Buf) int
}

// Config parametrizes a Switch. Zero values take defaults.
type Config struct {
	DatapathID uint64
	// NumPMDs is the number of forwarding threads. The paper's baseline
	// decays with chain length precisely because all vSwitch hops share
	// these threads. Default 1.
	NumPMDs int
	// BatchSize is the per-poll burst size. Default 32.
	BatchSize int
	// EMCEntries sizes each PMD's exact-match cache. Default 8192.
	// EMCDisabled turns the cache off (ablation A1).
	EMCEntries  int
	EMCDisabled bool
	// SMCEntries sizes each PMD's signature-match cache — the second lookup
	// tier, which keeps absorbing lookups after the distinct-flow count
	// outgrows the EMC. Default 32768. SMCDisabled turns it off (ablation
	// A5).
	SMCEntries  int
	SMCDisabled bool
	// EMCInsertInvProb is the inverse probability of inserting a
	// classifier-resolved flow into the EMC (OVS's emc-insert-inv-prob):
	// 1 = always (default), N = 1-in-N. With heavy-tailed traffic a sparse
	// insertion policy keeps elephant flows from being churned out of the
	// small first tier by one-packet mice — the mice rarely win a slot,
	// the elephants reinsert within a few packets.
	EMCInsertInvProb int
	// PacketInQueue bounds the controller punt queue. Default 256.
	PacketInQueue int
	// TableMissToController punts unmatched packets instead of dropping.
	TableMissToController bool
	// ECMPAdaptiveDisabled pins every ECMP flow to its static hash path,
	// ignoring port congestion gauges — the PR 5 behaviour, kept as the
	// baseline arm of the adaptive-routing experiments.
	ECMPAdaptiveDisabled bool
	// SweepInterval is the flow-timeout expiry period. Default 500ms.
	SweepInterval time.Duration
}

func (c *Config) fill() {
	if c.NumPMDs == 0 {
		c.NumPMDs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.EMCEntries == 0 {
		c.EMCEntries = 8192
	}
	if c.SMCEntries == 0 {
		c.SMCEntries = 32768
	}
	if c.PacketInQueue == 0 {
		c.PacketInQueue = 256
	}
	if c.EMCInsertInvProb == 0 {
		c.EMCInsertInvProb = 1
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 500 * time.Millisecond
	}
}

// PacketInEvent is a packet punted to the controller channel.
type PacketInEvent struct {
	InPort uint32
	Reason uint8
	Data   []byte // owned copy
}

// portEntry pairs a port with its TX serialization lock. With several PMD
// threads, two PMDs may route to the same destination port concurrently;
// the lock preserves the single-producer contract of the underlying ring
// (OVS-DPDK takes the same lock when tx queues are shared).
type portEntry struct {
	port DataPort
	txMu sync.Mutex
	// queues are this port's pollable RX queues. They are built once, when
	// the entry is created, and the SAME objects carry over into every later
	// port-set snapshot — their identity is what lets the assignment table
	// preserve ownership (and their load counters survive) across unrelated
	// port add/removes.
	queues []*rxQueue
	// cong is the port's egress congestion gauge (nil for ports that report
	// none), resolved once at attach so ECMP path consults stay a bare load.
	cong *atomic.Uint32
}

// newPortEntry wraps a port and materializes its RX queues: one rxQueue per
// hardware queue for MultiQueuePort implementations, a single queue 0
// falling back to Recv for everything else.
func newPortEntry(p DataPort) *portEntry {
	e := &portEntry{port: p}
	if cr, ok := p.(CongestionReporter); ok {
		e.cong = cr.CongestionGauge()
	}
	nq := 1
	mq, _ := p.(MultiQueuePort)
	if mq != nil {
		if n := mq.NumRxQueues(); n > 1 {
			nq = n
		}
	}
	e.queues = make([]*rxQueue, nq)
	for i := range e.queues {
		e.queues[i] = &rxQueue{e: e, mq: mq, qid: i}
	}
	return e
}

// rxQueue is one pollable RX queue of one port — the unit of PMD ownership
// and of load accounting. The owning PMD is the only reader of the queue and
// the only writer of its load counters; stats readers load the counters
// atomically.
type rxQueue struct {
	e   *portEntry
	mq  MultiQueuePort // nil → single-queue port, recv via e.port.Recv
	qid int

	// busyNanos is time the owning PMD spent processing this queue's
	// batches; batches/frames count what it dequeued.
	busyNanos atomic.Uint64
	batches   atomic.Uint64
	frames    atomic.Uint64
}

func (q *rxQueue) recv(out []*mempool.Buf) int {
	if q.mq != nil {
		return q.mq.RecvQueue(q.qid, out)
	}
	return q.e.port.Recv(out)
}

func (e *portEntry) send(bufs []*mempool.Buf, locked bool) int {
	if locked {
		e.txMu.Lock()
		defer e.txMu.Unlock()
	}
	return e.port.Send(bufs)
}

// portSet is a copy-on-write snapshot of the attached ports. order is the
// dense index domain the PMD TX accumulators use; byID maps a port id to its
// index in order. Indexes are snapshot-local: a PMD resolves and flushes
// within one snapshot, so they never cross snapshots.
type portSet struct {
	byID  map[uint32]int
	order []*portEntry // ascending port id, deterministic polling order
	// queues flattens every entry's RX queues in port-id-then-queue-id order:
	// the index domain of the assignment table's owner slice.
	queues []*rxQueue
}

// buildPortSet sorts entries by port id and indexes them.
func buildPortSet(entries []*portEntry) *portSet {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].port.PortID() < entries[j].port.PortID()
	})
	ps := &portSet{byID: make(map[uint32]int, len(entries)), order: entries}
	for i, e := range entries {
		ps.byID[e.port.PortID()] = i
		ps.queues = append(ps.queues, e.queues...)
	}
	return ps
}

// entry returns the port entry for id, or nil.
func (ps *portSet) entry(id uint32) *portEntry {
	if i, ok := ps.byID[id]; ok {
		return ps.order[i]
	}
	return nil
}

// qAssign is the queue→PMD assignment table: one immutable snapshot pairing
// a port set with the owner of each of its queues (owner[i] owns
// ports.queues[i]; -1 parks the queue — nobody polls it, used as the quiesce
// step of a move). PMD loops load it once per iteration, so ports and
// ownership are always mutually consistent; control code replaces the whole
// snapshot atomically (copy-on-write under portsMu).
type qAssign struct {
	ports *portSet
	owner []int
}

// queueIndex locates a (port, queue) pair in the flattened queue slice,
// returning -1 when absent.
func (a *qAssign) queueIndex(portID uint32, qid int) int {
	for i, q := range a.ports.queues {
		if q.e.port.PortID() == portID && q.qid == qid {
			return i
		}
	}
	return -1
}

// Switch is the forwarding engine plus its control surfaces.
type Switch struct {
	cfg   Config
	table *flow.Table

	// portsSnap is the copy-on-write port set read by PMD loops.
	portsSnap atomic.Pointer[portSet]
	portsMu   sync.Mutex // serializes port add/remove and queue re-homing

	// asgSnap is the copy-on-write queue→PMD assignment table. It embeds the
	// port set it was built against, so a PMD loading it gets a consistent
	// (ports, owners) pair in one atomic load.
	asgSnap atomic.Pointer[qAssign]

	// QueueMoves counts completed queue re-homings (diagnostic; balancer
	// convergence and experiments read it).
	QueueMoves atomic.Uint64

	packetIns    chan PacketInEvent
	flowRemovals chan FlowRemovedEvent
	sweepStop    chan struct{}

	// bypass registrations for stats transparency.
	bypassMu    sync.Mutex
	bypassLinks map[*dpdkr.Link]*flow.Flow
	// foldedRx/foldedTx accumulate counters of torn-down links per port so
	// exported statistics never move backwards.
	foldedRx map[uint32]stats.Snapshot
	foldedTx map[uint32]stats.Snapshot

	// injectPool backs controller packet-out injection.
	injectMu   sync.Mutex
	injectPool *mempool.Pool

	// puntPool recycles packet-in payload copies: punts borrow a []byte here
	// instead of allocating per packet, and ReleasePacketIn returns it.
	puntPool sync.Pool

	// pmdsSnap is the copy-on-write PMD-thread set: stats/quiescence readers
	// load it wait-free while Restart swaps in a fresh generation of threads.
	// lifeMu serializes the lifecycle transitions (Start/Stop/Restart).
	pmdsSnap atomic.Pointer[[]*pmdThread]
	lifeMu   sync.Mutex
	started  atomic.Bool
	stopped  atomic.Bool
	wg       sync.WaitGroup

	// Restarts counts completed Restart cycles (diagnostic; chaos tests).
	Restarts atomic.Uint64

	// Misses counts slow-path classifications: full tuple-space walks after
	// EMC, SMC, and within-batch dedup all missed (diagnostic).
	Misses atomic.Uint64
	// TableMisses counts packets that matched no flow at all.
	TableMisses atomic.Uint64
	// DedupHits counts within-batch duplicate misses resolved from an
	// earlier packet of the same batch instead of a second classifier walk.
	DedupHits atomic.Uint64
	// ParseErrors counts frames the parser rejected; they are dropped
	// before classification.
	ParseErrors atomic.Uint64
	// ECMPRepicks counts adaptive-ECMP avoid-set changes: each time a flow's
	// path mask moved off (or back onto) a congested bundle slot through the
	// flowlet gate. Rate-bounded per flow, so this stays cold even under
	// sustained congestion.
	ECMPRepicks atomic.Uint64

	// conntracks is the copy-on-write list of attached connection tables:
	// their idle expiry rides the flow-table sweeper (same death-mark
	// semantics as cached flows), and their counters fold into
	// DatapathStats. A Switch-level field, so attached tables — like the
	// flow table itself — survive Restart, which is exactly the "state is
	// node-local, rules are reconciled" split the stateful VNFs depend on.
	ctMu       sync.Mutex
	conntracks atomic.Pointer[[]*conntrack.Table]
}

// AttachConntrack registers a connection table with the switch: the expiry
// sweeper drives its idle timeout and DatapathStats reports its counters.
// Attaching is idempotent per table.
func (s *Switch) AttachConntrack(t *conntrack.Table) {
	if t == nil {
		return
	}
	s.ctMu.Lock()
	defer s.ctMu.Unlock()
	var cur []*conntrack.Table
	if p := s.conntracks.Load(); p != nil {
		cur = *p
	}
	for _, have := range cur {
		if have == t {
			return
		}
	}
	next := make([]*conntrack.Table, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = t
	s.conntracks.Store(&next)
}

// ConntrackTables returns the attached connection tables (read-only snapshot).
func (s *Switch) ConntrackTables() []*conntrack.Table {
	if p := s.conntracks.Load(); p != nil {
		return *p
	}
	return nil
}

// New builds a stopped switch; call Start to launch the PMD threads.
func New(cfg Config) *Switch {
	cfg.fill()
	s := &Switch{
		cfg:          cfg,
		table:        flow.NewTable(),
		packetIns:    make(chan PacketInEvent, cfg.PacketInQueue),
		flowRemovals: make(chan FlowRemovedEvent, cfg.PacketInQueue),
		sweepStop:    make(chan struct{}),
		bypassLinks:  make(map[*dpdkr.Link]*flow.Flow),
		foldedRx:     make(map[uint32]stats.Snapshot),
		foldedTx:     make(map[uint32]stats.Snapshot),
	}
	empty := &portSet{byID: map[uint32]int{}}
	s.portsSnap.Store(empty)
	s.asgSnap.Store(&qAssign{ports: empty})
	return s
}

// borrowPuntData copies src into a pooled payload buffer.
func (s *Switch) borrowPuntData(src []byte) []byte {
	var data []byte
	if v := s.puntPool.Get(); v != nil {
		data = (*v.(*[]byte))[:0]
	}
	return append(data, src...)
}

// ReleasePacketIn returns a consumed packet-in's payload to the punt pool.
// Calling it is optional — consumers that retain ev.Data simply never
// release it and the copy is garbage collected — but after a release the
// payload must no longer be read.
func (s *Switch) ReleasePacketIn(ev PacketInEvent) {
	if ev.Data == nil {
		return
	}
	d := ev.Data[:0]
	s.puntPool.Put(&d)
}

// Table exposes the flow table (for the OpenFlow front-end and the
// detector's listener registration).
func (s *Switch) Table() *flow.Table { return s.table }

// DatapathID returns the configured datapath id.
func (s *Switch) DatapathID() uint64 { return s.cfg.DatapathID }

// PacketIns returns the controller punt channel.
func (s *Switch) PacketIns() <-chan PacketInEvent { return s.packetIns }

// AddPort attaches a port to the datapath.
func (s *Switch) AddPort(p DataPort) error {
	s.portsMu.Lock()
	defer s.portsMu.Unlock()
	old := s.portsSnap.Load()
	if _, dup := old.byID[p.PortID()]; dup {
		return fmt.Errorf("vswitch: port id %d in use", p.PortID())
	}
	entries := make([]*portEntry, 0, len(old.order)+1)
	entries = append(entries, old.order...)
	entries = append(entries, newPortEntry(p))
	ps := buildPortSet(entries)
	s.portsSnap.Store(ps)
	s.retargetAssignLocked(ps)
	return nil
}

// RemovePort detaches a port; buffers already handed to the port remain its
// responsibility.
func (s *Switch) RemovePort(id uint32) error {
	s.portsMu.Lock()
	defer s.portsMu.Unlock()
	old := s.portsSnap.Load()
	if _, ok := old.byID[id]; !ok {
		return fmt.Errorf("vswitch: port id %d not found", id)
	}
	entries := make([]*portEntry, 0, len(old.order)-1)
	for _, e := range old.order {
		if e.port.PortID() != id {
			entries = append(entries, e)
		}
	}
	ps := buildPortSet(entries)
	s.portsSnap.Store(ps)
	s.retargetAssignLocked(ps)
	return nil
}

// retargetAssignLocked rebuilds the assignment table for a new port set.
// Queues that survive the change (same *rxQueue object) keep their owner —
// adding port 9 must not re-home port 3's hot queue — and each new queue is
// homed on the PMD currently owning the fewest queues (ties break toward
// the lowest index). Counting owned queues rather than hashing ids is what
// fixes the residue-clustering pathology: all-even port ids with NumPMDs=2
// used to land every port on PMD 0 under the old id%N rule. Caller holds
// portsMu.
func (s *Switch) retargetAssignLocked(ps *portSet) {
	prev := s.asgSnap.Load()
	prevOwner := make(map[*rxQueue]int, len(prev.ports.queues))
	for i, q := range prev.ports.queues {
		prevOwner[q] = prev.owner[i]
	}
	owner := make([]int, len(ps.queues))
	counts := make([]int, s.cfg.NumPMDs)
	const unhomed = -2
	for i, q := range ps.queues {
		if o, ok := prevOwner[q]; ok {
			owner[i] = o
			if o >= 0 && o < len(counts) {
				counts[o]++
			}
			continue
		}
		owner[i] = unhomed
	}
	for i := range owner {
		if owner[i] != unhomed {
			continue
		}
		best := 0
		for p := 1; p < len(counts); p++ {
			if counts[p] < counts[best] {
				best = p
			}
		}
		owner[i] = best
		counts[best]++
	}
	s.asgSnap.Store(&qAssign{ports: ps, owner: owner})
}

// MoveQueue re-homes one RX queue onto the PMD with index dst using the
// quiesce-then-move protocol: the queue is first parked (owner −1) so no
// thread polls it, then the source PMD is waited out for one full loop
// iteration — its current iteration, including the batch it may be flushing
// from this very queue, completes before the wait returns — and only then
// does ownership flip to dst. Frames the source already dequeued are fully
// forwarded before the destination can dequeue newer ones, and the ring
// itself is FIFO, so per-flow ordering is preserved exactly like a trunk
// detach. Safe under live traffic.
func (s *Switch) MoveQueue(portID uint32, qid, dst int) error {
	if dst < 0 || dst >= s.cfg.NumPMDs {
		return fmt.Errorf("vswitch: move queue: no PMD %d (NumPMDs=%d)", dst, s.cfg.NumPMDs)
	}
	s.portsMu.Lock()
	defer s.portsMu.Unlock()
	cur := s.asgSnap.Load()
	qi := cur.queueIndex(portID, qid)
	if qi < 0 {
		return fmt.Errorf("vswitch: move queue: port %d queue %d not found", portID, qid)
	}
	src := cur.owner[qi]
	if src == dst {
		return nil
	}
	parked := make([]int, len(cur.owner))
	copy(parked, cur.owner)
	parked[qi] = -1
	s.asgSnap.Store(&qAssign{ports: cur.ports, owner: parked})
	if src >= 0 {
		s.waitPMDIteration(src)
	}
	final := make([]int, len(parked))
	copy(final, parked)
	final[qi] = dst
	s.asgSnap.Store(&qAssign{ports: cur.ports, owner: final})
	s.QueueMoves.Add(1)
	return nil
}

// waitPMDIteration blocks until PMD idx begins a new loop iteration (and so
// has observed the latest assignment snapshot), or the thread/switch stops.
func (s *Switch) waitPMDIteration(idx int) {
	if !s.started.Load() || s.stopped.Load() {
		return
	}
	pmds := s.pmdList()
	if idx < 0 || idx >= len(pmds) {
		return
	}
	p := pmds[idx]
	before := p.iters.Load()
	for p.iters.Load() == before && !p.stop.Load() {
		runtime.Gosched()
	}
}

// Port returns the port with the given id, or nil.
func (s *Switch) Port(id uint32) DataPort {
	if e := s.portsSnap.Load().entry(id); e != nil {
		return e.port
	}
	return nil
}

// Ports returns the current ports in id order.
func (s *Switch) Ports() []DataPort {
	snap := s.portsSnap.Load()
	out := make([]DataPort, len(snap.order))
	for i, e := range snap.order {
		out[i] = e.port
	}
	return out
}

// pmdList returns the current PMD-thread generation (nil before Start).
func (s *Switch) pmdList() []*pmdThread {
	if p := s.pmdsSnap.Load(); p != nil {
		return *p
	}
	return nil
}

// launchLocked builds and starts a fresh generation of PMD threads and the
// expiry sweeper. Caller holds lifeMu.
func (s *Switch) launchLocked() {
	pmds := make([]*pmdThread, 0, s.cfg.NumPMDs)
	for i := 0; i < s.cfg.NumPMDs; i++ {
		p := newPMDThread(s, i)
		pmds = append(pmds, p)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			p.run()
		}()
	}
	s.pmdsSnap.Store(&pmds)
	s.wg.Add(1)
	go s.sweeper(s.cfg.SweepInterval, s.sweepStop)
}

// haltLocked stops the current PMD generation and the sweeper, waiting for
// both. Caller holds lifeMu.
func (s *Switch) haltLocked() {
	for _, p := range s.pmdList() {
		p.stop.Store(true)
	}
	close(s.sweepStop)
	s.wg.Wait()
}

// Start launches the PMD threads. It is an error to start twice.
func (s *Switch) Start() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("vswitch: already started")
	}
	s.launchLocked()
	return nil
}

// Stop halts the PMD threads and waits for them. Safe to call once.
func (s *Switch) Stop() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if !s.started.Load() || !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.haltLocked()
}

// Restart simulates a vSwitch crash-and-relaunch for fault injection: the
// forwarding threads and sweeper stop, the ENTIRE flow table is wiped (a
// restarted switch has lost its datapath and ofproto state; listeners fire,
// so the bypass manager drains and dissolves every bypass exactly as it
// would when the rules died one by one), the per-PMD EMC/SMC caches are
// discarded with their threads, and a fresh generation of threads launches.
// Ports, pools and VMs survive — they belong to the host, not the switch
// process. Whatever control plane owns the rules (the reconciler) must
// reinstall them; until then traffic parks in the port rings and overflow
// drops at the ring mouth, which is exactly an OVS restart's behaviour.
func (s *Switch) Restart() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if !s.started.Load() {
		return errors.New("vswitch: not started")
	}
	if s.stopped.Load() {
		return errors.New("vswitch: already stopped")
	}
	s.haltLocked()
	s.table.DeleteWhere(func(*flow.Flow) bool { return true })
	s.sweepStop = make(chan struct{})
	s.launchLocked()
	s.Restarts.Add(1)
	return nil
}

// WaitDatapathQuiescence blocks until every PMD thread has started a new
// loop iteration (and therefore observed the latest port snapshot), or the
// switch has stopped. Callers use it after RemovePort before reclaiming the
// removed port's resources.
func (s *Switch) WaitDatapathQuiescence() {
	if !s.started.Load() || s.stopped.Load() {
		return
	}
	pmds := s.pmdList()
	before := make([]uint64, len(pmds))
	for i, p := range pmds {
		before[i] = p.iters.Load()
	}
	for i, p := range pmds {
		for p.iters.Load() == before[i] && !p.stop.Load() {
			runtime.Gosched()
		}
	}
}

// EMCStats aggregates the per-PMD cache counters (diagnostic, ablations).
func (s *Switch) EMCStats() flow.EMCStats {
	var out flow.EMCStats
	for _, p := range s.pmdList() {
		st := p.emcStats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Conflicts += st.Conflicts
	}
	return out
}

// SMCStats aggregates the per-PMD signature-cache counters (diagnostic,
// ablation A5). All zeros when the tier is disabled (no caches exist).
func (s *Switch) SMCStats() flow.SMCStats {
	var out flow.SMCStats
	for _, p := range s.pmdList() {
		if p.smc == nil {
			continue
		}
		st := p.smc.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.FalsePositives += st.FalsePositives
	}
	return out
}

// DatapathStats is the per-tier resolution breakdown of every parsed
// packet: which level of the lookup hierarchy answered. ClassifierHits are
// full tuple-space walks that found a flow; ClassifierMisses matched
// nothing (dropped or punted). DedupHits were resolved from an identical
// key earlier in the same batch, whichever tier that key came from.
type DatapathStats struct {
	EMC              flow.EMCStats
	SMC              flow.SMCStats
	ClassifierHits   uint64
	ClassifierMisses uint64
	DedupHits        uint64
	ParseErrors      uint64
	// ECMPRepicks counts adaptive multipath avoid-set changes in the window.
	ECMPRepicks uint64
	// PMDs and Queues carry the per-thread and per-queue load samples
	// (busy-poll time, batches, frames) taken with the tier counters, so one
	// snapshot-and-Delta yields both cache behaviour and load placement.
	PMDs   []PMDLoad
	Queues []QueueLoad
	// Conntrack aggregates the attached connection tables' counters;
	// ConntrackShards carries the per-shard (= per-PMD, by the Hash2
	// alignment) split, so windowed views show where connection state
	// actually lives.
	Conntrack       conntrack.Stats
	ConntrackShards []conntrack.Stats
}

// Delta returns the counter movement since an earlier snapshot — the
// windowed view experiments use to report steady state instead of
// since-boot blur (warm-up included).
func (s DatapathStats) Delta(prev DatapathStats) DatapathStats {
	out := DatapathStats{
		EMC:              s.EMC.Delta(prev.EMC),
		SMC:              s.SMC.Delta(prev.SMC),
		ClassifierHits:   s.ClassifierHits - prev.ClassifierHits,
		ClassifierMisses: s.ClassifierMisses - prev.ClassifierMisses,
		DedupHits:        s.DedupHits - prev.DedupHits,
		ParseErrors:      s.ParseErrors - prev.ParseErrors,
		ECMPRepicks:      s.ECMPRepicks - prev.ECMPRepicks,
		Conntrack:        s.Conntrack.Delta(prev.Conntrack),
	}
	if len(s.ConntrackShards) > 0 {
		out.ConntrackShards = make([]conntrack.Stats, len(s.ConntrackShards))
		for i, st := range s.ConntrackShards {
			if i < len(prev.ConntrackShards) {
				st = st.Delta(prev.ConntrackShards[i])
			}
			out.ConntrackShards[i] = st
		}
	}
	if len(s.PMDs) > 0 {
		out.PMDs = make([]PMDLoad, len(s.PMDs))
		for i, l := range s.PMDs {
			if i < len(prev.PMDs) {
				l = l.Delta(prev.PMDs[i])
			}
			out.PMDs[i] = l
		}
	}
	if len(s.Queues) > 0 {
		// Queues are keyed by (port, queue), not by index: port add/removes
		// between the two snapshots shift the flattened order. Saturating
		// subtraction, like PMDLoad.Delta.
		type qkey struct {
			port uint32
			q    int
		}
		prevBy := make(map[qkey]QueueLoad, len(prev.Queues))
		for _, l := range prev.Queues {
			prevBy[qkey{l.Port, l.Queue}] = l
		}
		out.Queues = make([]QueueLoad, len(s.Queues))
		for i, l := range s.Queues {
			if p, ok := prevBy[qkey{l.Port, l.Queue}]; ok {
				if l.BusyNanos >= p.BusyNanos {
					l.BusyNanos -= p.BusyNanos
				}
				if l.Batches >= p.Batches {
					l.Batches -= p.Batches
				}
				if l.Frames >= p.Frames {
					l.Frames -= p.Frames
				}
			}
			out.Queues[i] = l
		}
	}
	return out
}

// DatapathStats returns the aggregated lookup-tier counters. Safe to call
// while the datapath is forwarding (cache counters are per-PMD atomics), so
// callers can snapshot-and-diff a measurement window via Delta.
func (s *Switch) DatapathStats() DatapathStats {
	// TableMisses is loaded BEFORE Misses: each PMD batch adds Misses first,
	// so this order keeps tableMisses ≤ misses on a live datapath and the
	// subtraction can never wrap. The clamp covers torn multi-batch reads.
	tableMisses := s.TableMisses.Load()
	misses := s.Misses.Load()
	if tableMisses > misses {
		tableMisses = misses
	}
	out := DatapathStats{
		EMC:              s.EMCStats(),
		SMC:              s.SMCStats(),
		ClassifierHits:   misses - tableMisses,
		ClassifierMisses: tableMisses,
		DedupHits:        s.DedupHits.Load(),
		ParseErrors:      s.ParseErrors.Load(),
		ECMPRepicks:      s.ECMPRepicks.Load(),
		PMDs:             s.PMDLoads(),
		Queues:           s.QueueLoads(),
	}
	for _, ct := range s.ConntrackTables() {
		out.Conntrack.Add(ct.Stats())
		for i, ss := range ct.ShardStats() {
			if i == len(out.ConntrackShards) {
				out.ConntrackShards = append(out.ConntrackShards, conntrack.Stats{})
			}
			out.ConntrackShards[i].Add(ss)
		}
	}
	return out
}
