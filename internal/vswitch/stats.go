package vswitch

import (
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
)

// RegisterBypass associates an active bypass link with the flow whose
// steering rule it implements. From registration on, the link's shared
// counter block is merged into exported port and flow statistics — the
// paper's stats-transparency mechanism ("when OvS needs to export
// statistics, it just reads the proper values from that shared memory").
func (s *Switch) RegisterBypass(l *dpdkr.Link, f *flow.Flow) {
	s.bypassMu.Lock()
	defer s.bypassMu.Unlock()
	s.bypassLinks[l] = f
}

// UnregisterBypass removes a torn-down link from live merging and folds its
// final counters into the permanent per-port and per-flow accumulators, so
// statistics never regress after teardown.
func (s *Switch) UnregisterBypass(l *dpdkr.Link) {
	s.bypassMu.Lock()
	defer s.bypassMu.Unlock()
	f, ok := s.bypassLinks[l]
	if !ok {
		return
	}
	delete(s.bypassLinks, l)
	snap := l.Stats.Read()
	rx := s.foldedRx[l.From]
	rx.TxPackets += snap.TxPackets
	rx.TxBytes += snap.TxBytes
	s.foldedRx[l.From] = rx
	tx := s.foldedTx[l.To]
	tx.RxPackets += snap.RxPackets
	tx.RxBytes += snap.RxBytes
	s.foldedTx[l.To] = tx
	if f != nil {
		f.Packets.Add(snap.TxPackets)
		f.Bytes.Add(snap.TxBytes)
	}
}

// BypassLinkCount reports the number of live registered links (diagnostic).
func (s *Switch) BypassLinkCount() int {
	s.bypassMu.Lock()
	defer s.bypassMu.Unlock()
	return len(s.bypassLinks)
}

// BypassLinks returns the live registered links (diagnostic; teardown code
// uses it to wait out the links touching a specific port set).
func (s *Switch) BypassLinks() []*dpdkr.Link {
	s.bypassMu.Lock()
	defer s.bypassMu.Unlock()
	out := make([]*dpdkr.Link, 0, len(s.bypassLinks))
	for l := range s.bypassLinks {
		out = append(out, l)
	}
	return out
}

// PortStatsView is the merged statistics view for one port, combining the
// host-side normal-channel counters with live and folded bypass counters.
type PortStatsView struct {
	PortNo    uint32
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

// PortStats returns the merged counters for one port (false if unknown).
//
// Semantics match OpenFlow's switch-centric view: rx_* counts packets the
// port delivered into the datapath (for a bypass, packets the VM's PMD sent
// directly to the peer), tx_* counts packets delivered out of the datapath
// to the VM.
func (s *Switch) PortStats(id uint32) (PortStatsView, bool) {
	e := s.portsSnap.Load().entry(id)
	if e == nil {
		return PortStatsView{}, false
	}
	c := e.port.PortCounters()
	v := PortStatsView{
		PortNo:    id,
		RxPackets: c.RxPackets.Load(),
		RxBytes:   c.RxBytes.Load(),
		TxPackets: c.TxPackets.Load(),
		TxBytes:   c.TxBytes.Load(),
		RxDropped: c.RxDropped.Load(),
		TxDropped: c.TxDropped.Load(),
	}
	s.bypassMu.Lock()
	for l := range s.bypassLinks {
		snap := l.Stats.Read()
		if l.From == id {
			v.RxPackets += snap.TxPackets
			v.RxBytes += snap.TxBytes
		}
		if l.To == id {
			v.TxPackets += snap.RxPackets
			v.TxBytes += snap.RxBytes
		}
	}
	if folded, ok := s.foldedRx[id]; ok {
		v.RxPackets += folded.TxPackets
		v.RxBytes += folded.TxBytes
	}
	if folded, ok := s.foldedTx[id]; ok {
		v.TxPackets += folded.RxPackets
		v.TxBytes += folded.RxBytes
	}
	s.bypassMu.Unlock()
	return v, true
}

// AllPortStats returns merged counters for every port in id order.
func (s *Switch) AllPortStats() []PortStatsView {
	snap := s.portsSnap.Load()
	out := make([]PortStatsView, 0, len(snap.order))
	for _, e := range snap.order {
		if v, ok := s.PortStats(e.port.PortID()); ok {
			out = append(out, v)
		}
	}
	return out
}

// FlowCounters returns a flow's counters with any live bypass contribution
// merged in.
func (s *Switch) FlowCounters(f *flow.Flow) (packets, bytes uint64) {
	packets, bytes = f.Stats()
	s.bypassMu.Lock()
	for l, lf := range s.bypassLinks {
		if lf == f {
			snap := l.Stats.Read()
			packets += snap.TxPackets
			bytes += snap.TxBytes
		}
	}
	s.bypassMu.Unlock()
	return packets, bytes
}

// PMDLoad is one forwarding thread's load sample: busy vs. total poll time
// plus how many queues the assignment table currently homes on it. The
// balancer and the pmdscale experiment window these via Delta.
type PMDLoad struct {
	PMD        int
	BusyNanos  uint64
	TotalNanos uint64
	Queues     int
}

// BusyFraction is busy/total, clamped to [0,1] (timer jitter can nudge a
// saturated PMD's busy time past its measured total).
func (l PMDLoad) BusyFraction() float64 {
	if l.TotalNanos == 0 {
		return 0
	}
	f := float64(l.BusyNanos) / float64(l.TotalNanos)
	if f > 1 {
		f = 1
	}
	return f
}

// Delta returns the counter movement since prev, saturating at zero — a
// Restart replaces the PMD generation and zeroes the counters, and a
// windowed reading must not wrap.
func (l PMDLoad) Delta(prev PMDLoad) PMDLoad {
	d := l
	if d.BusyNanos >= prev.BusyNanos {
		d.BusyNanos -= prev.BusyNanos
	}
	if d.TotalNanos >= prev.TotalNanos {
		d.TotalNanos -= prev.TotalNanos
	}
	return d
}

// QueueLoad is one RX queue's load sample plus its current home PMD
// (−1 while parked mid-move).
type QueueLoad struct {
	Port      uint32
	Queue     int
	PMD       int
	BusyNanos uint64
	Batches   uint64
	Frames    uint64
}

// PMDLoads samples every live forwarding thread's load counters together
// with its owned-queue count. Index i is PMD i; nil before Start.
func (s *Switch) PMDLoads() []PMDLoad {
	pmds := s.pmdList()
	if pmds == nil {
		return nil
	}
	out := make([]PMDLoad, len(pmds))
	asg := s.asgSnap.Load()
	for i, p := range pmds {
		out[i] = PMDLoad{
			PMD:        i,
			BusyNanos:  p.busyNanos.Load(),
			TotalNanos: p.totalNanos.Load(),
		}
	}
	for qi := range asg.ports.queues {
		if o := asg.owner[qi]; o >= 0 && o < len(out) {
			out[o].Queues++
		}
	}
	return out
}

// QueueLoads samples every RX queue's counters and current owner, in
// port-id-then-queue-id order.
func (s *Switch) QueueLoads() []QueueLoad {
	asg := s.asgSnap.Load()
	out := make([]QueueLoad, len(asg.ports.queues))
	for qi, q := range asg.ports.queues {
		out[qi] = QueueLoad{
			Port:      q.e.port.PortID(),
			Queue:     q.qid,
			PMD:       asg.owner[qi],
			BusyNanos: q.busyNanos.Load(),
			Batches:   q.batches.Load(),
			Frames:    q.frames.Load(),
		}
	}
	return out
}

// SnapshotFlowStats returns a stable copy of all flows with merged counters,
// for the OpenFlow flow-stats reply.
type FlowStatsView struct {
	Priority uint16
	Cookie   uint64
	Packets  uint64
	Bytes    uint64
	Match    flow.Match
	Actions  flow.Actions
}

// FlowStats returns merged stats for every flow, sorted by priority
// descending (the table snapshot order).
func (s *Switch) FlowStats() []FlowStatsView {
	flows := s.table.Snapshot()
	out := make([]FlowStatsView, 0, len(flows))
	for _, f := range flows {
		p, b := s.FlowCounters(f)
		out = append(out, FlowStatsView{
			Priority: f.Priority,
			Cookie:   f.Cookie,
			Packets:  p,
			Bytes:    b,
			Match:    f.Match,
			Actions:  f.Actions,
		})
	}
	return out
}
