package vswitch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// TestAssignmentRoundRobinEvenPortIDs pins the residue-clustering fix: under
// the old id%NumPMDs ownership rule, NumPMDs=2 with all-even port ids
// (common when deployments allocate ids in strides) homed EVERY port on
// PMD 0 while PMD 1 spun forever. The explicit assignment table must spread
// the queues regardless of id values.
func TestAssignmentRoundRobinEvenPortIDs(t *testing.T) {
	sw := New(Config{NumPMDs: 2})
	for _, id := range []uint32{2, 4, 6, 8} {
		port, _, err := dpdkr.NewPort(id, "dpdkr", 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.AddPort(port); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Start(); err != nil {
		t.Fatal(err)
	}
	defer sw.Stop()

	counts := make(map[int]int)
	for _, q := range sw.QueueLoads() {
		if q.PMD < 0 || q.PMD >= 2 {
			t.Fatalf("port %d queue %d homed on PMD %d", q.Port, q.Queue, q.PMD)
		}
		counts[q.PMD]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("all-even port ids split %d/%d across 2 PMDs, want 2/2 (old id%%N rule = 4/0)",
			counts[0], counts[1])
	}
	// Each port must be owned by exactly one PMD.
	for _, id := range []uint32{2, 4, 6, 8} {
		owners := 0
		for _, p := range sw.pmdList() {
			if p.owns(id) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("port %d owned by %d PMDs, want 1", id, owners)
		}
	}
}

// seqFrame layout used by the move tests: a UDP frame whose source port is
// the flow id and whose first four payload bytes are a per-flow sequence
// number.
const (
	seqSrcPortOff = pkt.EthernetLen + pkt.IPv4MinLen // UDP source port
	seqCsumOff    = seqSrcPortOff + 6                // UDP checksum (zeroed)
	seqPayloadOff = seqSrcPortOff + 8                // payload = sequence number
)

func buildSeqTemplate(t testing.TB) []byte {
	t.Helper()
	raw := make([]byte, 256)
	spec := pkt.UDPSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameLen: pkt.MinFrame,
	}
	n, err := pkt.BuildUDP(raw, spec)
	if err != nil {
		t.Fatal(err)
	}
	raw[seqCsumOff] = 0 // "no checksum": src port and payload are rewritten per frame
	raw[seqCsumOff+1] = 0
	return raw[:n]
}

// TestMoveQueueOrderingUnderTraffic re-homes queues repeatedly under live
// traffic and asserts the two re-home guarantees: no frame is lost and every
// flow's sequence numbers arrive strictly in order at the single consumer.
// Drops are impossible by construction (the pool is smaller than every ring,
// so no enqueue can ever overflow), which makes the check exact: each flow
// must deliver seq 0,1,2,... with no gap.
func TestMoveQueueOrderingUnderTraffic(t *testing.T) {
	const (
		numQueues = 4
		numFlows  = 8
		numMoves  = 24
	)
	sw := New(Config{NumPMDs: 2})
	// Pool (256) < ring capacity (1024): the datapath can park every buffer
	// in existence without filling any ring.
	pool := mempool.MustNew(mempool.Config{Capacity: 256, BufSize: 2048})
	portGen, pmdGen, err := dpdkr.NewPortMQ(1, "gen", 1024, numQueues)
	if err != nil {
		t.Fatal(err)
	}
	portSink, pmdSink, err := dpdkr.NewPort(2, "sink", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(portGen); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(portSink); err != nil {
		t.Fatal(err)
	}
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	if err := sw.Start(); err != nil {
		t.Fatal(err)
	}
	defer sw.Stop()

	template := buildSeqTemplate(t)
	var (
		stopGen   atomic.Bool
		stopSink  atomic.Bool
		wg        sync.WaitGroup
		generated atomic.Uint64
	)
	// Generator: round-robin the flows, stamping each frame with its flow's
	// next sequence number. The guest PMD's RSS hash fans the flows over the
	// queues.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seqs := make([]uint32, numFlows)
		bufs := make([]*mempool.Buf, 16)
		one := make([]*mempool.Buf, 1)
		fl := 0
		for !stopGen.Load() {
			got := pool.GetBatch(bufs)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < got; i++ {
				b := bufs[i]
				b.SetBytes(template)
				fb := b.Bytes()
				fp := uint16(5000 + fl)
				fb[seqSrcPortOff] = byte(fp >> 8)
				fb[seqSrcPortOff+1] = byte(fp)
				seq := seqs[fl]
				seqs[fl]++
				fb[seqPayloadOff] = byte(seq >> 24)
				fb[seqPayloadOff+1] = byte(seq >> 16)
				fb[seqPayloadOff+2] = byte(seq >> 8)
				fb[seqPayloadOff+3] = byte(seq)
				fl = (fl + 1) % numFlows
				one[0] = b
				for pmdGen.Tx(one) == 0 { // cannot fail (pool < ring) but be safe
					runtime.Gosched()
				}
				generated.Add(1)
			}
		}
	}()

	// Single consumer: assert per-flow strict seq order with no gaps.
	var (
		delivered atomic.Uint64
		orderErr  atomic.Pointer[string]
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := make([]uint32, numFlows)
		out := make([]*mempool.Buf, 32)
		for {
			n := pmdSink.Rx(out)
			if n == 0 {
				// Only exit once the drain is complete: a transient empty
				// ring while frames are still crossing the datapath must not
				// end consumption (the conservation check would then count
				// in-flight frames as lost).
				if stopSink.Load() {
					return
				}
				runtime.Gosched()
				continue
			}
			for _, b := range out[:n] {
				fb := b.Bytes()
				fp := int(fb[seqSrcPortOff])<<8 | int(fb[seqSrcPortOff+1])
				fl := fp - 5000
				seq := uint32(fb[seqPayloadOff])<<24 | uint32(fb[seqPayloadOff+1])<<16 |
					uint32(fb[seqPayloadOff+2])<<8 | uint32(fb[seqPayloadOff+3])
				if fl < 0 || fl >= numFlows {
					msg := "frame with unknown flow id"
					orderErr.CompareAndSwap(nil, &msg)
				} else if seq != next[fl] {
					msg := "flow " + itoa(fl) + ": got seq " + itoa(int(seq)) + ", want " + itoa(int(next[fl]))
					orderErr.CompareAndSwap(nil, &msg)
				} else {
					next[fl]++
				}
				b.Free()
			}
			delivered.Add(uint64(n))
		}
	}()

	// Mover: bounce queues between the two PMDs while traffic flows.
	for i := 0; i < numMoves; i++ {
		q := i % numQueues
		dst := (i / numQueues) % 2
		if err := sw.MoveQueue(1, q, dst); err != nil {
			t.Fatalf("move %d (queue %d → pmd %d): %v", i, q, dst, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sw.QueueMoves.Load(); got == 0 {
		t.Fatal("no queue moves recorded")
	}

	// Shut the generator down, then drain: every generated frame must reach
	// the consumer (conservation — the move handoff lost nothing).
	stopGen.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < generated.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stopSink.Store(true)
	wg.Wait()
	if d, g := delivered.Load(), generated.Load(); d != g {
		t.Fatalf("delivered %d of %d generated frames (re-home lost %d)", d, g, g-d)
	}
	if msg := orderErr.Load(); msg != nil {
		t.Fatalf("per-flow ordering violated: %s", *msg)
	}
}

// TestMoveQueueCacheStaleness proves a moved queue cannot be served a stale
// cached action: flow F warms PMD 0's EMC with rule→output:2, the queue
// moves to PMD 1 (also warmed), the rule is modified to output:3, and the
// queue moves BACK to PMD 0 — whose EMC still physically holds the old
// entry. Generation validation must reject it: every post-modify frame of F
// must arrive on port 3 and none on port 2.
func TestMoveQueueCacheStaleness(t *testing.T) {
	sw := New(Config{NumPMDs: 2})
	pool := mempool.MustNew(mempool.Config{Capacity: 256, BufSize: 2048})
	portGen, pmdGen, err := dpdkr.NewPortMQ(1, "gen", 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(portGen); err != nil {
		t.Fatal(err)
	}
	sinks := make(map[uint32]*dpdkr.PMD, 2)
	for _, id := range []uint32{2, 3} {
		port, pmd, err := dpdkr.NewPort(id, "sink", 1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.AddPort(port); err != nil {
			t.Fatal(err)
		}
		sinks[id] = pmd
	}
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	if err := sw.Start(); err != nil {
		t.Fatal(err)
	}
	defer sw.Stop()

	template := buildSeqTemplate(t)
	send := func(n int) {
		one := make([]*mempool.Buf, 1)
		for i := 0; i < n; i++ {
			b, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			b.SetBytes(template)
			one[0] = b
			if pmdGen.Tx(one) != 1 {
				t.Fatal("guest tx failed")
			}
		}
	}
	recvAll := func(id uint32, want int, d time.Duration) int {
		out := make([]*mempool.Buf, 32)
		got := 0
		deadline := time.Now().Add(d)
		for got < want && time.Now().Before(deadline) {
			n := sinks[id].Rx(out)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			mempool.FreeBatch(out[:n])
			got += n
		}
		return got
	}
	// The template flow rides one specific RSS queue; find it so the moves
	// target the queue the flow actually uses.
	var parser pkt.Parser
	h, ok := flow.RSSHash(&parser, template)
	if !ok {
		t.Fatal("template frame did not parse")
	}
	q := int(h % 2)

	// Warm PMD 0, then PMD 1, with the original action.
	if err := sw.MoveQueue(1, q, 0); err != nil {
		t.Fatal(err)
	}
	send(8)
	if got := recvAll(2, 8, 2*time.Second); got != 8 {
		t.Fatalf("warm-up on pmd 0: delivered %d/8", got)
	}
	if err := sw.MoveQueue(1, q, 1); err != nil {
		t.Fatal(err)
	}
	send(8)
	if got := recvAll(2, 8, 2*time.Second); got != 8 {
		t.Fatalf("warm-up on pmd 1: delivered %d/8", got)
	}

	// Modify the rule (same priority+match = replace) and move the queue
	// back onto the PMD whose cache was warmed with the OLD action.
	sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}, 0)
	if err := sw.MoveQueue(1, q, 0); err != nil {
		t.Fatal(err)
	}
	send(16)
	if got := recvAll(3, 16, 2*time.Second); got != 16 {
		t.Fatalf("post-modify: port 3 delivered %d/16", got)
	}
	if got := recvAll(2, 1, 100*time.Millisecond); got != 0 {
		t.Fatalf("stale EMC entry served: %d frame(s) still reached port 2 after modify", got)
	}
}

// itoa is a minimal int formatter so the hot consumer goroutine can build an
// error message without importing fmt into the datapath loop.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
