package vswitch

import (
	"fmt"

	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
)

// matchSubsumes reports whether outer's constraints are a subset of inner's:
// every field outer pins is pinned identically by inner. This is OpenFlow's
// non-strict matching rule (a delete with match M removes all flows at least
// as specific as M).
func matchSubsumes(outer, inner flow.Match) bool {
	om := outer.Mask.Pack()
	im := inner.Mask.Pack()
	ok := outer.Key.Pack().And(om)
	ik := inner.Key.Pack().And(om)
	for i := range om {
		if om[i]&^im[i] != 0 {
			return false // outer constrains a bit inner wildcards
		}
		if ok[i] != ik[i] {
			return false // constrained bits disagree
		}
	}
	return true
}

// outputsTo reports whether the action list outputs to port (PortAny matches
// everything, per the OpenFlow delete filter semantics).
func outputsTo(as flow.Actions, port uint32) bool {
	if port == openflow.PortAny {
		return true
	}
	for _, p := range as.OutputPorts() {
		if p == port {
			return true
		}
	}
	return false
}

// ApplyFlowMod applies a decoded OpenFlow flow-mod to the table. This is the
// single ingestion point for steering changes — the table listeners (and
// thus the p-2-p detector) observe every effect synchronously.
func (s *Switch) ApplyFlowMod(fm openflow.FlowMod) error {
	switch fm.Command {
	case openflow.FlowCmdAdd, openflow.FlowCmdModifyStrict:
		s.table.AddWithTimeouts(fm.Priority, fm.Match, fm.Actions, fm.Cookie, fm.IdleTO, fm.HardTO, fm.Flags)
		return nil
	case openflow.FlowCmdModify:
		// Non-strict modify: replace the actions of every subsumed flow.
		// Implemented as re-adds so listeners see remove+add pairs.
		for _, f := range s.table.Snapshot() {
			if matchSubsumes(fm.Match, f.Match) {
				s.table.Add(f.Priority, f.Match, fm.Actions, f.Cookie)
			}
		}
		return nil
	case openflow.FlowCmdDeleteStrict:
		s.table.DeleteStrict(fm.Priority, fm.Match)
		return nil
	case openflow.FlowCmdDelete:
		s.table.DeleteWhere(func(f *flow.Flow) bool {
			return matchSubsumes(fm.Match, f.Match) && outputsTo(f.Actions, fm.OutPort)
		})
		return nil
	default:
		return fmt.Errorf("vswitch: unsupported flow-mod command %d", fm.Command)
	}
}
