package vswitch

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
)

// OFServer is the switch's OpenFlow controller channel: it accepts TCP
// connections, answers the standard request/reply messages, applies
// flow-mods to the datapath table, and forwards packet-in events. External
// controllers cannot tell this switch has been modified: the p-2-p machinery
// is invisible at this interface (the paper's transparency requirement
// toward the controller).
type OFServer struct {
	sw *Switch
	ln net.Listener

	mu    sync.Mutex
	conns map[*openflow.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewOFServer wraps sw with an OpenFlow front-end listening on ln.
func NewOFServer(sw *Switch, ln net.Listener) *OFServer {
	return &OFServer{
		sw:    sw,
		ln:    ln,
		conns: make(map[*openflow.Conn]struct{}),
		done:  make(chan struct{}),
	}
}

// Addr returns the listener address.
func (srv *OFServer) Addr() net.Addr { return srv.ln.Addr() }

// Serve runs the accept loop (blocking) and the packet-in pump.
func (srv *OFServer) Serve() error {
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		srv.pumpPacketIns()
	}()
	for {
		nc, err := srv.ln.Accept()
		if err != nil {
			select {
			case <-srv.done:
				return nil
			default:
				return err
			}
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			srv.handle(nc)
		}()
	}
}

// Close stops the server and all controller connections.
func (srv *OFServer) Close() {
	select {
	case <-srv.done:
		return
	default:
		close(srv.done)
	}
	srv.ln.Close()
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	srv.wg.Wait()
}

func (srv *OFServer) pumpPacketIns() {
	for {
		var msg openflow.Msg
		var release func()
		select {
		case <-srv.done:
			return
		case ev := <-srv.sw.PacketIns():
			msg = openflow.PacketIn{
				Reason: ev.Reason,
				Match:  flow.MatchInPort(ev.InPort),
				Data:   ev.Data,
			}
			// Send serializes synchronously, so the pooled payload can go
			// back once every connection has been written.
			release = func() { srv.sw.ReleasePacketIn(ev) }
		case ev := <-srv.sw.FlowRemovals():
			msg = openflow.FlowRemoved{
				Cookie:      ev.Cookie,
				Priority:    ev.Priority,
				Reason:      ev.Reason,
				DurationSec: ev.DurationSec,
				IdleTO:      ev.IdleTO,
				HardTO:      ev.HardTO,
				PacketCount: ev.Packets,
				ByteCount:   ev.Bytes,
				Match:       ev.Match,
			}
		}
		srv.mu.Lock()
		for c := range srv.conns {
			if _, err := c.Send(msg); err != nil {
				// The reader goroutine will reap the connection.
				continue
			}
		}
		srv.mu.Unlock()
		if release != nil {
			release()
		}
	}
}

func (srv *OFServer) handle(nc net.Conn) {
	c := openflow.NewConn(nc)
	defer c.Close()

	// Passive handshake: expect the controller's HELLO, answer with ours.
	m, _, err := c.Recv()
	if err != nil {
		return
	}
	if _, ok := m.(openflow.Hello); !ok {
		return
	}
	if _, err := c.Send(openflow.Hello{}); err != nil {
		return
	}

	srv.mu.Lock()
	srv.conns[c] = struct{}{}
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, c)
		srv.mu.Unlock()
	}()

	for {
		m, xid, err := c.Recv()
		if err != nil {
			var ofErr openflow.Error
			if errors.As(err, &ofErr) {
				// Unsupported but well-framed message: report and continue.
				_ = c.SendXid(ofErr, xid)
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("ofserver: connection error: %v", err)
			}
			return
		}
		if err := srv.dispatch(c, m, xid); err != nil {
			log.Printf("ofserver: dispatch: %v", err)
			return
		}
	}
}

func (srv *OFServer) dispatch(c *openflow.Conn, m openflow.Msg, xid uint32) error {
	switch msg := m.(type) {
	case openflow.EchoRequest:
		return c.SendXid(openflow.EchoReply{Data: msg.Data}, xid)
	case openflow.FeaturesRequest:
		return c.SendXid(openflow.FeaturesReply{
			DatapathID: srv.sw.DatapathID(),
			NBuffers:   0,
			NTables:    1,
		}, xid)
	case openflow.BarrierRequest:
		// All processing in this implementation is synchronous, so the
		// barrier is satisfied by ordering alone.
		return c.SendXid(openflow.BarrierReply{}, xid)
	case openflow.FlowMod:
		if err := srv.sw.ApplyFlowMod(msg); err != nil {
			return c.SendXid(openflow.Error{
				Type: openflow.ErrTypeBadRequest,
				Code: openflow.ErrCodeBadType,
			}, xid)
		}
		return nil
	case openflow.PacketOut:
		if err := srv.sw.InjectPacketOut(msg.InPort, msg.Actions, msg.Data); err != nil {
			return c.SendXid(openflow.Error{
				Type: openflow.ErrTypeBadRequest,
				Code: openflow.ErrCodeBadLen,
			}, xid)
		}
		return nil
	case openflow.PortStatsRequest:
		var reply openflow.PortStatsReply
		if msg.PortNo == openflow.PortAny {
			for _, v := range srv.sw.AllPortStats() {
				reply.Stats = append(reply.Stats, portStatsWire(v))
			}
		} else if v, ok := srv.sw.PortStats(msg.PortNo); ok {
			reply.Stats = append(reply.Stats, portStatsWire(v))
		}
		return c.SendXid(reply, xid)
	case openflow.FlowStatsRequest:
		var reply openflow.FlowStatsReply
		for _, v := range srv.sw.FlowStats() {
			if !matchSubsumes(msg.Match, v.Match) || !outputsTo(v.Actions, msg.OutPort) {
				continue
			}
			reply.Stats = append(reply.Stats, openflow.FlowStats{
				Priority:    v.Priority,
				Cookie:      v.Cookie,
				PacketCount: v.Packets,
				ByteCount:   v.Bytes,
				Match:       v.Match,
				Actions:     v.Actions,
			})
		}
		return c.SendXid(reply, xid)
	case openflow.Hello:
		return nil // redundant hello: ignore
	default:
		return c.SendXid(openflow.Error{
			Type: openflow.ErrTypeBadRequest,
			Code: openflow.ErrCodeBadType,
		}, xid)
	}
}

func portStatsWire(v PortStatsView) openflow.PortStats {
	return openflow.PortStats{
		PortNo:    v.PortNo,
		RxPackets: v.RxPackets,
		TxPackets: v.TxPackets,
		RxBytes:   v.RxBytes,
		TxBytes:   v.TxBytes,
		RxDropped: v.RxDropped,
		TxDropped: v.TxDropped,
	}
}
