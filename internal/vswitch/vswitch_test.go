package vswitch

import (
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// testEnv wires a switch with n dpdkr ports (ids 1..n) and returns the guest
// PMDs.
type testEnv struct {
	sw   *Switch
	pool *mempool.Pool
	pmds map[uint32]*dpdkr.PMD
}

func newEnv(t testing.TB, cfg Config, nPorts int) *testEnv {
	t.Helper()
	env := &testEnv{
		sw:   New(cfg),
		pool: mempool.MustNew(mempool.Config{Capacity: 4096, BufSize: 2048, Headroom: 128}),
		pmds: make(map[uint32]*dpdkr.PMD),
	}
	env.sw.SetInjectionPool(env.pool)
	for i := 1; i <= nPorts; i++ {
		id := uint32(i)
		port, pmd, err := dpdkr.NewPort(id, "dpdkr", 1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.sw.AddPort(port); err != nil {
			t.Fatal(err)
		}
		env.pmds[id] = pmd
	}
	if err := env.sw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.sw.Stop)
	return env
}

// sendUDP transmits one synthesized UDP frame from the guest on port id.
func (e *testEnv) sendUDP(t testing.TB, id uint32, spec pkt.UDPSpec) {
	t.Helper()
	b, err := e.pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := pkt.BuildUDP(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetBytes(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if e.pmds[id].Tx([]*mempool.Buf{b}) != 1 {
		t.Fatal("guest tx failed")
	}
}

// recvOne polls the guest PMD on port id until one packet arrives or the
// deadline passes, returning nil on timeout.
func (e *testEnv) recvOne(id uint32, d time.Duration) *mempool.Buf {
	out := make([]*mempool.Buf, 1)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if e.pmds[id].Rx(out) == 1 {
			return out[0]
		}
	}
	return nil
}

var defaultSpec = pkt.UDPSpec{
	SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
	SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
	SrcPort: 1000, DstPort: 2000, FrameLen: pkt.MinFrame,
}

func TestForwardingBasic(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	f := env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 7)

	env.sendUDP(t, 1, defaultSpec)
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet not forwarded")
	}
	b.Free()

	p, bytes := env.sw.FlowCounters(f)
	if p != 1 || bytes != pkt.MinFrame {
		t.Fatalf("flow counters = %d/%d", p, bytes)
	}
	if v, _ := env.sw.PortStats(1); v.RxPackets != 1 {
		t.Fatalf("port1 rx = %d", v.RxPackets)
	}
	if v, _ := env.sw.PortStats(2); v.TxPackets != 1 {
		t.Fatalf("port2 tx = %d", v.TxPackets)
	}
}

func TestTableMissDrops(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(2, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("unmatched packet forwarded")
	}
	// The buffer must have been freed back to the pool.
	deadline := time.Now().Add(time.Second)
	for env.pool.Avail() != env.pool.Cap() && time.Now().Before(deadline) {
	}
	if env.pool.Avail() != env.pool.Cap() {
		t.Fatal("dropped packet leaked")
	}
}

func TestTableMissPuntsWhenConfigured(t *testing.T) {
	env := newEnv(t, Config{TableMissToController: true}, 1)
	env.sendUDP(t, 1, defaultSpec)
	select {
	case ev := <-env.sw.PacketIns():
		if ev.InPort != 1 || len(ev.Data) != pkt.MinFrame {
			t.Fatalf("packet-in %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no packet-in")
	}
}

func TestControllerActionPunts(t *testing.T) {
	env := newEnv(t, Config{}, 1)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Controller()}, 0)
	env.sendUDP(t, 1, defaultSpec)
	select {
	case ev := <-env.sw.PacketIns():
		if ev.Reason != 1 {
			t.Fatalf("reason = %d, want OFPR_ACTION", ev.Reason)
		}
	case <-time.After(time.Second):
		t.Fatal("no packet-in")
	}
}

func TestActionsRewriteAndTTL(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	newDst := pkt.MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	env.sw.Table().Add(10, flow.MatchInPort(1),
		flow.Actions{flow.SetEthDst(newDst), flow.DecTTL(), flow.Output(2)}, 0)

	spec := defaultSpec
	spec.TTL = 10
	env.sendUDP(t, 1, spec)
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet not forwarded")
	}
	defer b.Free()
	var p pkt.Parser
	if err := p.Parse(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst() != newDst {
		t.Fatalf("dst = %s", p.Eth.Dst())
	}
	if p.IPv4.TTL() != 9 {
		t.Fatalf("ttl = %d, want 9", p.IPv4.TTL())
	}
	if !p.IPv4.VerifyChecksum() {
		t.Fatal("checksum not updated")
	}
}

func TestVlanPushActionTagsFrames(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1),
		flow.Actions{flow.PushVlan(42), flow.Output(2)}, 0)

	env.sendUDP(t, 1, defaultSpec)
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet not forwarded")
	}
	defer b.Free()
	var p pkt.Parser
	if err := p.Parse(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !p.Decoded.Has(pkt.LayerVLAN | pkt.LayerUDP) {
		t.Fatalf("forwarded frame layers = %b, want VLAN+UDP", p.Decoded)
	}
	if p.VLAN.VID() != 42 {
		t.Fatalf("vid = %d, want 42", p.VLAN.VID())
	}
	if p.Eth.Src() != defaultSpec.SrcMAC || p.Eth.Dst() != defaultSpec.DstMAC {
		t.Fatal("push displaced the MAC addresses")
	}
	if got := b.Len; got != pkt.MinFrame+pkt.VLANLen {
		t.Fatalf("tagged frame length = %d, want %d", got, pkt.MinFrame+pkt.VLANLen)
	}
}

func TestVlanMatchAndPopAction(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	// Lane steering shape: tagged traffic entering port 1 demuxes by vid.
	env.sw.Table().Add(10, flow.MatchInPort(1).WithVlan(7),
		flow.Actions{flow.PopVlan(), flow.Output(2)}, 0)
	env.sw.Table().Add(10, flow.MatchInPort(1).WithVlan(9),
		flow.Actions{flow.PopVlan(), flow.Output(3)}, 0)

	tagged := defaultSpec
	tagged.VlanID = 7
	env.sendUDP(t, 1, tagged)
	tagged.VlanID = 9
	env.sendUDP(t, 1, tagged)

	for _, port := range []uint32{2, 3} {
		b := env.recvOne(port, time.Second)
		if b == nil {
			t.Fatalf("lane to port %d did not deliver", port)
		}
		var p pkt.Parser
		if err := p.Parse(b.Bytes()); err != nil {
			t.Fatal(err)
		}
		if p.Decoded.Has(pkt.LayerVLAN) {
			t.Fatalf("port %d frame still tagged after pop", port)
		}
		if !p.Decoded.Has(pkt.LayerUDP) || p.UDP.DstPort() != defaultSpec.DstPort {
			t.Fatalf("port %d inner packet corrupted by pop", port)
		}
		b.Free()
	}
}

func TestVlanSetActionRewritesVid(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1).WithVlan(5),
		flow.Actions{flow.SetVlan(6), flow.Output(2)}, 0)
	tagged := defaultSpec
	tagged.VlanID = 5
	env.sendUDP(t, 1, tagged)
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet not forwarded")
	}
	defer b.Free()
	if vid, ok := pkt.FrameVlanID(b.Bytes()); !ok || vid != 6 {
		t.Fatalf("vid = %d,%v, want 6,true", vid, ok)
	}
}

func TestDecTTLExpiryDrops(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1),
		flow.Actions{flow.DecTTL(), flow.Output(2)}, 0)
	spec := defaultSpec
	spec.TTL = 1
	env.sendUDP(t, 1, spec)
	if b := env.recvOne(2, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("expired packet forwarded")
	}
}

func TestMulticastOutput(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	env.sw.Table().Add(10, flow.MatchInPort(1),
		flow.Actions{flow.Output(2), flow.Output(3)}, 0)
	env.sendUDP(t, 1, defaultSpec)
	b2 := env.recvOne(2, time.Second)
	b3 := env.recvOne(3, time.Second)
	if b2 == nil || b3 == nil {
		t.Fatal("multicast incomplete")
	}
	if &b2.Data[0] != &b3.Data[0] {
		t.Fatal("multicast copies should share storage (refcounted clone)")
	}
	b2.Free()
	b3.Free()
	deadline := time.Now().Add(time.Second)
	for env.pool.Avail() != env.pool.Cap() && time.Now().Before(deadline) {
	}
	if env.pool.Avail() != env.pool.Cap() {
		t.Fatal("refcount leak after multicast")
	}
}

// TestOutputToRemovedPortSkipsToNextOutput pins the dead-destination
// semantics: an output action naming a port absent from the snapshot is a
// no-op — the packet must still reach later outputs in the same action list
// (and must not be freed while chained, which would be a use-after-free).
func TestOutputToRemovedPortSkipsToNextOutput(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	// Output first to a never-attached port 9, then to the live port 2.
	env.sw.Table().Add(10, flow.MatchInPort(1),
		flow.Actions{flow.Output(9), flow.Output(2)}, 0)

	env.sendUDP(t, 1, defaultSpec)
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet lost after dead output")
	}
	if b.Refcnt() != 1 {
		t.Fatalf("refcnt = %d, want 1 (dead output must not clone or free)", b.Refcnt())
	}
	b.Free()

	// All-dead action list: the packet must be freed exactly once.
	env.sw.Table().Add(20, flow.MatchInPort(1), flow.Actions{flow.Output(9)}, 0)
	env.sendUDP(t, 1, defaultSpec)
	deadline := time.Now().Add(time.Second)
	for env.pool.Avail() != env.pool.Cap() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.pool.Avail() != env.pool.Cap() {
		t.Fatalf("buffer leaked on all-dead output: %d/%d", env.pool.Avail(), env.pool.Cap())
	}
}

func TestFlowModChangeRedirectsTraffic(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(2, time.Second); b == nil {
		t.Fatal("initial path broken")
	} else {
		b.Free()
	}
	// Replace the rule: traffic must shift to port 3 (EMC invalidation).
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}, 0)
	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(3, time.Second); b == nil {
		t.Fatal("redirect not effective (stale EMC?)")
	} else {
		b.Free()
	}
}

func TestEMCHitRate(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	for i := 0; i < 100; i++ {
		env.sendUDP(t, 1, defaultSpec)
		if b := env.recvOne(2, time.Second); b != nil {
			b.Free()
		}
	}
	st := env.sw.EMCStats()
	if st.Hits == 0 {
		t.Fatalf("EMC never hit: %+v", st)
	}
	if got := env.sw.Misses.Load(); got >= 100 {
		t.Fatalf("slow path used %d times for identical flow", got)
	}
}

func TestEMCDisabledStillForwards(t *testing.T) {
	env := newEnv(t, Config{EMCDisabled: true}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	for i := 0; i < 10; i++ {
		env.sendUDP(t, 1, defaultSpec)
		b := env.recvOne(2, time.Second)
		if b == nil {
			t.Fatal("forwarding broken with EMC off")
		}
		b.Free()
	}
	if st := env.sw.EMCStats(); st.Hits != 0 {
		t.Fatalf("EMC used while disabled: %+v", st)
	}
}

func TestMultiPMDForwarding(t *testing.T) {
	env := newEnv(t, Config{NumPMDs: 3}, 4)
	// All ports forward into port 4 to force cross-PMD TX serialization.
	for id := uint32(1); id <= 3; id++ {
		env.sw.Table().Add(10, flow.MatchInPort(id), flow.Actions{flow.Output(4)}, 0)
	}
	const per = 200
	for i := 0; i < per; i++ {
		for id := uint32(1); id <= 3; id++ {
			env.sendUDP(t, id, defaultSpec)
		}
	}
	got := 0
	out := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(3 * time.Second)
	for got < 3*per && time.Now().Before(deadline) {
		n := env.pmds[4].Rx(out)
		for i := 0; i < n; i++ {
			out[i].Free()
		}
		got += n
	}
	if got != 3*per {
		t.Fatalf("received %d of %d", got, 3*per)
	}
}

func TestPortAddRemove(t *testing.T) {
	sw := New(Config{})
	port, _, _ := dpdkr.NewPort(5, "x", 64)
	if err := sw.AddPort(port); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(port); err == nil {
		t.Fatal("duplicate port accepted")
	}
	if sw.Port(5) == nil {
		t.Fatal("port not visible")
	}
	if err := sw.RemovePort(5); err != nil {
		t.Fatal(err)
	}
	if err := sw.RemovePort(5); err == nil {
		t.Fatal("double remove accepted")
	}
	if sw.Port(5) != nil {
		t.Fatal("port visible after removal")
	}
}

func TestInjectPacketOut(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	frame := make([]byte, 128)
	n, _ := pkt.BuildUDP(frame, defaultSpec)
	if err := env.sw.InjectPacketOut(0, flow.Actions{flow.Output(2)}, frame[:n]); err != nil {
		t.Fatal(err)
	}
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet-out not delivered")
	}
	b.Free()
}

func TestInjectPacketOutToController(t *testing.T) {
	// A packet-out whose action list punts back to the controller (the
	// learning-switch bootstrap pattern) must surface as a packet-in.
	env := newEnv(t, Config{}, 1)
	frame := make([]byte, 128)
	n, _ := pkt.BuildUDP(frame, defaultSpec)
	if err := env.sw.InjectPacketOut(1, flow.Actions{flow.Controller()}, frame[:n]); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-env.sw.PacketIns():
		if ev.InPort != 1 || len(ev.Data) != n {
			t.Fatalf("packet-in %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no packet-in from controller action")
	}
	// The buffer must have been freed (no output moved it).
	deadline := time.Now().Add(time.Second)
	for env.pool.Avail() != env.pool.Cap() && time.Now().Before(deadline) {
	}
	if env.pool.Avail() != env.pool.Cap() {
		t.Fatal("inject leaked the buffer")
	}
}

func TestInjectWithoutPoolFails(t *testing.T) {
	sw := New(Config{})
	if err := sw.InjectPacketOut(0, flow.Actions{flow.Output(1)}, []byte{1}); err == nil {
		t.Fatal("inject without pool succeeded")
	}
}

func TestBypassStatsMerge(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	f := env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)

	link, _ := dpdkr.NewLink("bypass-1-2", 1, 2, 64)
	env.sw.RegisterBypass(link, f)
	if env.sw.BypassLinkCount() != 1 {
		t.Fatal("link not registered")
	}

	// Simulate PMD accounting: 50 packets, 3200 bytes crossed the bypass.
	link.Stats.AccountTx(50, 3200)
	link.Stats.AccountRx(48, 3072) // two still in flight in the ring

	if v, _ := env.sw.PortStats(1); v.RxPackets != 50 || v.RxBytes != 3200 {
		t.Fatalf("port1 merged rx = %d/%d", v.RxPackets, v.RxBytes)
	}
	if v, _ := env.sw.PortStats(2); v.TxPackets != 48 || v.TxBytes != 3072 {
		t.Fatalf("port2 merged tx = %d/%d", v.TxPackets, v.TxBytes)
	}
	if p, by := env.sw.FlowCounters(f); p != 50 || by != 3200 {
		t.Fatalf("flow merged = %d/%d", p, by)
	}

	// Teardown folds: stats must not regress.
	env.sw.UnregisterBypass(link)
	if env.sw.BypassLinkCount() != 0 {
		t.Fatal("link still registered")
	}
	if v, _ := env.sw.PortStats(1); v.RxPackets != 50 {
		t.Fatalf("port1 rx after fold = %d", v.RxPackets)
	}
	if p, _ := f.Stats(); p != 50 {
		t.Fatalf("flow packets after fold = %d", p)
	}
	// Double unregister is harmless.
	env.sw.UnregisterBypass(link)
	if p, _ := f.Stats(); p != 50 {
		t.Fatal("double unregister double-folded")
	}
}

func TestMatchSubsumes(t *testing.T) {
	all := flow.MatchAll()
	p1 := flow.MatchInPort(1)
	p1udp := flow.MatchInPort(1).WithIPProto(pkt.ProtoUDP)
	p2 := flow.MatchInPort(2)

	cases := []struct {
		outer, inner flow.Match
		want         bool
	}{
		{all, all, true},
		{all, p1, true},
		{all, p1udp, true},
		{p1, all, false},
		{p1, p1, true},
		{p1, p1udp, true},
		{p1, p2, false},
		{p1udp, p1, false},
	}
	for i, c := range cases {
		if got := matchSubsumes(c.outer, c.inner); got != c.want {
			t.Errorf("case %d: subsumes(%s, %s) = %v, want %v", i, c.outer, c.inner, got, c.want)
		}
	}
}

func TestSMCDisabledStillForwards(t *testing.T) {
	env := newEnv(t, Config{EMCDisabled: true, SMCDisabled: true}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	for i := 0; i < 10; i++ {
		env.sendUDP(t, 1, defaultSpec)
		b := env.recvOne(2, time.Second)
		if b == nil {
			t.Fatal("forwarding broken with both cache tiers off")
		}
		b.Free()
	}
	if st := env.sw.SMCStats(); st.Hits != 0 {
		t.Fatalf("SMC used while disabled: %+v", st)
	}
}

// TestSMCServesPastEMC drives more distinct flows than a tiny EMC can hold:
// the SMC tier must absorb a share of the lookups the EMC thrashes away.
func TestSMCServesPastEMC(t *testing.T) {
	env := newEnv(t, Config{EMCEntries: 4}, 2) // 2 sets × 2 ways
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	// Cycle 64 distinct 5-tuples several times.
	for round := 0; round < 5; round++ {
		for i := 0; i < 64; i++ {
			spec := defaultSpec
			spec.SrcPort = uint16(3000 + i)
			env.sendUDP(t, 1, spec)
			if b := env.recvOne(2, time.Second); b != nil {
				b.Free()
			}
		}
	}
	st := env.sw.DatapathStats()
	if st.SMC.Hits == 0 {
		t.Fatalf("SMC never hit past the EMC's reach: %+v", st)
	}
}

// TestBatchMissDedup sends a burst of identical frames with both cache
// tiers disabled: the first packet of each batch walks the classifier, the
// rest must resolve by within-batch dedup.
func TestBatchMissDedup(t *testing.T) {
	env := newEnv(t, Config{EMCDisabled: true, SMCDisabled: true}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)

	const burst = 16
	raw := make([]byte, 256)
	n, err := pkt.BuildUDP(raw, defaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*mempool.Buf, burst)
	var total uint64
	// The PMD may split a burst across polls on a loaded host (every batch
	// still satisfies walks + dedups == batch size); retry until at least
	// one burst lands as a multi-packet batch and produces dedup hits.
	deadline := time.Now().Add(5 * time.Second)
	for env.sw.DatapathStats().DedupHits == 0 {
		if !time.Now().Before(deadline) {
			t.Fatalf("identical bursts produced no dedup hits: %+v", env.sw.DatapathStats())
		}
		bufs := make([]*mempool.Buf, burst)
		for i := range bufs {
			b, err := env.pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SetBytes(raw[:n]); err != nil {
				t.Fatal(err)
			}
			bufs[i] = b
		}
		if env.pmds[1].Tx(bufs) != burst {
			t.Fatal("guest tx failed")
		}
		total += burst
		got := 0
		for got < burst && time.Now().Before(deadline) {
			k := env.pmds[2].Rx(out[:burst-got])
			for i := 0; i < k; i++ {
				out[i].Free()
			}
			got += k
		}
		if got != burst {
			t.Fatalf("delivered %d of %d", got, burst)
		}
	}
	st := env.sw.DatapathStats()
	if walks := env.sw.Misses.Load(); walks+st.DedupHits != total {
		t.Fatalf("walks(%d) + dedup(%d) != sent(%d)", walks, st.DedupHits, total)
	}
}

// TestParseErrorsCounted: malformed frames must be dropped, freed, and
// counted — not silently discarded.
func TestParseErrorsCounted(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)

	b, err := env.pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetBytes([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil { // < Ethernet header
		t.Fatal(err)
	}
	if env.pmds[1].Tx([]*mempool.Buf{b}) != 1 {
		t.Fatal("guest tx failed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for env.sw.ParseErrors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := env.sw.ParseErrors.Load(); got != 1 {
		t.Fatalf("ParseErrors = %d, want 1", got)
	}
	if st := env.sw.DatapathStats(); st.ParseErrors != 1 {
		t.Fatalf("DatapathStats.ParseErrors = %d, want 1", st.ParseErrors)
	}
	// The malformed frame's buffer must be home again.
	deadline = time.Now().Add(time.Second)
	for env.pool.Avail() != env.pool.Cap() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.pool.Avail() != env.pool.Cap() {
		t.Fatalf("parse-failed frame leaked: %d of %d free", env.pool.Avail(), env.pool.Cap())
	}
	// Well-formed traffic still flows.
	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(2, time.Second); b == nil {
		t.Fatal("forwarding broken after parse error")
	} else {
		b.Free()
	}
}

// TestEMCSurvivesUnrelatedDeleteChurn is the vswitch-level death-mark
// check: steady traffic with unrelated flows being deleted between bursts
// must keep hitting the EMC (the old global-version scheme dropped every
// such lookup onto the classifier).
func TestEMCSurvivesUnrelatedDeleteChurn(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	specs := make([]flow.FlowSpec, 64)
	matches := make([]flow.Match, 64)
	for i := range specs {
		m := flow.MatchInPort(999).WithL4Dst(uint16(i))
		matches[i] = m
		specs[i] = flow.FlowSpec{Priority: 5, Match: m, Actions: flow.Actions{flow.Drop()}}
	}
	env.sw.Table().AddBatch(specs)

	// Warm the caches, then alternate unrelated deletes with traffic.
	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(2, time.Second); b != nil {
		b.Free()
	}
	base := env.sw.Misses.Load()
	for i := 0; i < 64; i++ {
		if !env.sw.Table().DeleteStrict(5, matches[i]) {
			t.Fatal("victim delete failed")
		}
		env.sendUDP(t, 1, defaultSpec)
		if b := env.recvOne(2, time.Second); b == nil {
			t.Fatal("packet lost during churn")
		} else {
			b.Free()
		}
	}
	if walks := env.sw.Misses.Load() - base; walks != 0 {
		t.Fatalf("unrelated deletes forced %d classifier walks, want 0 (EMC death-mark)", walks)
	}
}
