package vswitch

import (
	"testing"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// drainTo pulls everything waiting on a guest PMD and returns the UDP
// source ports of the drained frames (the flow axis of these tests).
func (e *testEnv) drainTo(id uint32, seen map[uint16]int) int {
	out := make([]*mempool.Buf, 32)
	total := 0
	for {
		n := e.pmds[id].Rx(out)
		if n == 0 {
			return total
		}
		for _, b := range out[:n] {
			var p pkt.Parser
			if err := p.Parse(b.Bytes()); err == nil && p.Decoded.Has(pkt.LayerUDP) {
				seen[p.UDP.SrcPort()]++
			}
			b.Free()
		}
		total += n
	}
}

// TestECMPOutputPinsFlows: an output_ecmp action spreads distinct flows
// over its parallel ports, but every packet of one flow always leaves by
// the same port — per-flow path pinning, the property that keeps TCP-like
// flows in order across a multi-trunk uplink.
func TestECMPOutputPinsFlows(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.OutputECMP(2, 3)}, 0)

	const flows = 32
	const rounds = 8
	spec := defaultSpec
	for r := 0; r < rounds; r++ {
		for f := 0; f < flows; f++ {
			spec.SrcPort = uint16(5000 + f)
			env.sendUDP(t, 1, spec)
		}
	}
	seen2 := map[uint16]int{}
	seen3 := map[uint16]int{}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < flows*rounds && time.Now().Before(deadline) {
		got += env.drainTo(2, seen2)
		got += env.drainTo(3, seen3)
		time.Sleep(time.Millisecond)
	}
	if got != flows*rounds {
		t.Fatalf("delivered %d of %d packets", got, flows*rounds)
	}
	// Pinning: no flow appears on both ports, and every flow delivered all
	// its rounds on its one port.
	for fp, n := range seen2 {
		if seen3[fp] != 0 {
			t.Fatalf("flow %d straddles ports: %d on port 2, %d on port 3", fp, n, seen3[fp])
		}
		if n != rounds {
			t.Fatalf("flow %d delivered %d of %d packets on port 2", fp, n, rounds)
		}
	}
	for fp, n := range seen3 {
		if n != rounds {
			t.Fatalf("flow %d delivered %d of %d packets on port 3", fp, n, rounds)
		}
	}
	// Spreading: with 32 flows over 2 paths, both paths carry some.
	if len(seen2) == 0 || len(seen3) == 0 {
		t.Fatalf("flows did not spread: %d on port 2, %d on port 3", len(seen2), len(seen3))
	}
}

// TestECMPOutputFallsForwardOnDeadPort: when a selected ECMP port leaves
// the switch (a torn-down trunk), its flows re-pin onto the surviving
// ports on the very next batch — no rule rewrite, no packet loss beyond
// what was in flight.
func TestECMPOutputFallsForwardOnDeadPort(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.OutputECMP(2, 3)}, 0)

	const flows = 16
	send := func() {
		spec := defaultSpec
		for f := 0; f < flows; f++ {
			spec.SrcPort = uint16(5000 + f)
			env.sendUDP(t, 1, spec)
		}
	}
	recvAll := func(want int, ports ...uint32) map[uint32]map[uint16]int {
		seen := map[uint32]map[uint16]int{}
		for _, id := range ports {
			seen[id] = map[uint16]int{}
		}
		got := 0
		deadline := time.Now().Add(5 * time.Second)
		for got < want && time.Now().Before(deadline) {
			for _, id := range ports {
				got += env.drainTo(id, seen[id])
			}
			time.Sleep(time.Millisecond)
		}
		if got != want {
			t.Fatalf("delivered %d of %d packets", got, want)
		}
		return seen
	}

	send()
	before := recvAll(flows, 2, 3)
	if len(before[3]) == 0 {
		t.Skip("hash pinned no flows to port 3; nothing to fail over")
	}

	// Port 3 dies (its trunk was torn down). The rule still lists it.
	if err := env.sw.RemovePort(3); err != nil {
		t.Fatal(err)
	}
	env.sw.WaitDatapathQuiescence()
	send()
	after := recvAll(flows, 2)
	if len(after[2]) != flows {
		t.Fatalf("only %d of %d flows reached the surviving port", len(after[2]), flows)
	}
	// Flows that were pinned to port 2 must still be there (their pin never
	// moved), and port 3's flows re-pinned onto 2.
	for fp := range before[2] {
		if after[2][fp] == 0 {
			t.Fatalf("flow %d lost its surviving pin after unrelated port death", fp)
		}
	}
	for fp := range before[3] {
		if after[2][fp] == 0 {
			t.Fatalf("flow %d did not re-pin onto the surviving port", fp)
		}
	}
}
