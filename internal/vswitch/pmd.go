package vswitch

import (
	"runtime"
	"sync/atomic"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// pmdThread is one forwarding thread. It owns the ports whose id hashes to
// its index, a private parser and EMC (no cross-thread sharing on the fast
// path), and per-destination TX accumulators flushed once per input batch.
type pmdThread struct {
	s    *Switch
	idx  int
	stop atomic.Bool
	// iters counts loop iterations; each iteration re-loads the port
	// snapshot, so control code can wait out an in-flight iteration after
	// swapping the snapshot (see Switch.WaitDatapathQuiescence).
	iters atomic.Uint64

	emc    *flow.EMC
	parser pkt.Parser

	rxBatch []*mempool.Buf

	// txAcc accumulates output per destination port id within one batch;
	// txTouched lists the ids with pending traffic (deterministic flush).
	txAcc     map[uint32][]*mempool.Buf
	txTouched []uint32
}

func newPMDThread(s *Switch, idx int) *pmdThread {
	return &pmdThread{
		s:       s,
		idx:     idx,
		emc:     flow.NewEMC(s.cfg.EMCEntries),
		rxBatch: make([]*mempool.Buf, s.cfg.BatchSize),
		txAcc:   make(map[uint32][]*mempool.Buf),
	}
}

func (p *pmdThread) emcStats() flow.EMCStats { return p.emc.Stats() }

// owns reports whether this PMD polls the given port.
func (p *pmdThread) owns(id uint32) bool {
	return int(id)%p.s.cfg.NumPMDs == p.idx
}

func (p *pmdThread) run() {
	for !p.stop.Load() {
		p.iters.Add(1)
		snap := p.s.portsSnap.Load()
		work := false
		for _, e := range snap.order {
			if !p.owns(e.port.PortID()) {
				continue
			}
			n := e.port.Recv(p.rxBatch)
			if n == 0 {
				continue
			}
			work = true
			p.processBatch(e.port.PortID(), p.rxBatch[:n], snap)
		}
		if !work {
			runtime.Gosched()
		}
	}
}

// processBatch classifies and executes one input burst, then flushes the
// per-destination accumulators.
func (p *pmdThread) processBatch(inPort uint32, bufs []*mempool.Buf, snap *portSet) {
	table := p.s.table
	version := table.Version()
	multiPMD := p.s.cfg.NumPMDs > 1
	nowNano := time.Now().UnixNano() // amortized idle-timeout timestamp

	for _, b := range bufs {
		b.Port = inPort
		frame := b.Bytes()
		if err := p.parser.Parse(frame); err != nil {
			b.Free()
			continue
		}
		key := flow.ExtractKey(&p.parser, inPort)
		kp := key.Pack()
		hash := kp.Hash()

		var f *flow.Flow
		if !p.s.cfg.EMCDisabled {
			f = p.emc.Lookup(kp, hash, version)
		}
		if f == nil {
			f = table.Lookup(&key)
			p.s.Misses.Add(1)
			if f != nil && !p.s.cfg.EMCDisabled {
				p.emc.Insert(kp, hash, f, version)
			}
		}
		if f == nil {
			p.tableMiss(inPort, b)
			continue
		}
		f.Packets.Add(1)
		f.Bytes.Add(uint64(b.Len))
		f.Touch(nowNano)
		p.execute(b, f.Actions, snap)
	}

	// Flush accumulated outputs.
	for _, id := range p.txTouched {
		batch := p.txAcc[id]
		if e, ok := snap.byID[id]; ok {
			e.send(batch, multiPMD)
		} else {
			for _, b := range batch {
				b.Free()
			}
		}
		p.txAcc[id] = batch[:0]
	}
	p.txTouched = p.txTouched[:0]
}

func (p *pmdThread) tableMiss(inPort uint32, b *mempool.Buf) {
	if p.s.cfg.TableMissToController {
		p.punt(inPort, b, 0 /* OFPR_NO_MATCH */)
	}
	b.Free()
}

// punt copies the frame to the controller queue (best effort: a slow or
// absent controller must not stall the datapath).
func (p *pmdThread) punt(inPort uint32, b *mempool.Buf, reason uint8) {
	ev := PacketInEvent{
		InPort: inPort,
		Reason: reason,
		Data:   append([]byte(nil), b.Bytes()...),
	}
	select {
	case p.s.packetIns <- ev:
	default:
	}
}

// execute runs the action list on b. Ownership: b is consumed (either moved
// into a TX accumulator, or freed). Header-mutating actions only apply
// before the first output: once the buffer has been handed to a destination
// (clones share storage), mutating it would corrupt the copy already sent.
// OpenFlow action lists emitted by this system always mutate before output.
func (p *pmdThread) execute(b *mempool.Buf, actions flow.Actions, snap *portSet) {
	moved := false
	for _, a := range actions {
		switch a.Type {
		case flow.ActOutput:
			out := b
			if moved {
				out = b.Clone()
			}
			p.accumulate(a.Port, out)
			moved = true
		case flow.ActController:
			p.punt(b.Port, b, 1 /* OFPR_ACTION */)
		case flow.ActDrop:
			if !moved {
				b.Free()
			}
			return
		case flow.ActSetEthSrc:
			if !moved && p.parser.Decoded.Has(pkt.LayerEthernet) {
				p.parser.Eth.SetSrc(a.MAC)
			}
		case flow.ActSetEthDst:
			if !moved && p.parser.Decoded.Has(pkt.LayerEthernet) {
				p.parser.Eth.SetDst(a.MAC)
			}
		case flow.ActDecTTL:
			if !moved && p.parser.Decoded.Has(pkt.LayerIPv4) {
				ttl := p.parser.IPv4.TTL()
				if ttl <= 1 {
					b.Free()
					return
				}
				p.parser.IPv4.SetTTL(ttl - 1)
				p.parser.IPv4.UpdateChecksum()
			}
		}
	}
	if !moved {
		b.Free()
	}
}

func (p *pmdThread) accumulate(dst uint32, b *mempool.Buf) {
	batch, ok := p.txAcc[dst]
	if !ok || len(batch) == 0 {
		if !ok {
			p.txAcc[dst] = nil
		}
		p.txTouched = append(p.txTouched, dst)
	}
	p.txAcc[dst] = append(batch, b)
}
