package vswitch

import (
	"runtime"
	"sync/atomic"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// pktMeta is one packet's slot in the per-thread scratch array filled by the
// parse phase of the batched pipeline. It carries everything the action
// phase needs so the shared parser is never re-consulted per packet: the
// packed key and its hash, the resolved flow, and the header views that
// mutating actions write through. next chains packets of the same flow group
// within the batch (-1 terminates).
type pktMeta struct {
	buf     *mempool.Buf
	kp      flow.Packed
	hash    uint32
	f       *flow.Flow
	decoded pkt.Layers
	eth     pkt.Ethernet
	ipv4    pkt.IPv4
	next    int32
}

// refreshViews re-derives the cached header views after an action moved the
// packet head (VLAN push/pop). The decode calls only wrap existing bytes —
// no allocation on the success path — so VLAN actions stay inside the
// zero-alloc budget of the batched pipeline.
func (m *pktMeta) refreshViews() {
	frame := m.buf.Bytes()
	if eth, err := pkt.DecodeEthernet(frame); err == nil {
		m.eth = eth
	}
	if m.decoded.Has(pkt.LayerIPv4) {
		off := pkt.EthernetLen
		if m.decoded.Has(pkt.LayerVLAN) {
			off += pkt.VLANLen
		}
		if ip, err := pkt.DecodeIPv4(frame[off:]); err == nil {
			m.ipv4 = ip
		}
	}
}

// flowGroup is one resolved flow within a batch plus the chain of packets
// that hit it. Counters aggregate here and land on the flow with a single
// atomic add per counter per batch, and the action list executes once per
// group instead of once per packet.
type flowGroup struct {
	f           *flow.Flow
	first, last int32
	pkts        uint64
	bytes       uint64
}

// pmdThread is one forwarding thread. It owns the ports whose id hashes to
// its index, a private parser, EMC and SMC (no cross-thread sharing on the
// fast path), preallocated batch scratch (pktMeta/flowGroup arrays), and
// dense per-destination TX accumulators flushed once per input batch.
// Steady-state forwarding performs no heap allocation.
type pmdThread struct {
	s    *Switch
	idx  int
	stop atomic.Bool
	// iters counts loop iterations; each iteration re-loads the port
	// snapshot, so control code can wait out an in-flight iteration after
	// swapping the snapshot (see Switch.WaitDatapathQuiescence and the
	// quiesce step of Switch.MoveQueue).
	iters atomic.Uint64

	// busyNanos/totalNanos implement the pmd-auto-lb load signal: busy is
	// time spent inside processBatch, total is wall time across whole loop
	// iterations (empty polls and Gosched waits included), both written only
	// by this thread. busy/total over a sampling window is the PMD's busy
	// fraction — what the balancer equalizes.
	busyNanos  atomic.Uint64
	totalNanos atomic.Uint64

	emc    *flow.EMC
	smc    *flow.SMC
	parser pkt.Parser
	// rng drives probabilistic EMC insertion (xorshift32; never zero).
	rng uint32

	rxBatch []*mempool.Buf
	metas   []pktMeta
	groups  []flowGroup
	// missIdx lists the meta indexes of this batch's cache misses, so a
	// burst of identical missed keys walks the tuple space once (the rest
	// resolve by comparing packed keys against earlier misses).
	missIdx []int32

	// txAcc accumulates output per destination port index within the current
	// port snapshot (dense — no map operations on the hot path); txTouched
	// lists the indexes with pending traffic in first-use order for a
	// deterministic flush. Both retain their capacity across batches.
	txAcc     [][]*mempool.Buf
	txTouched []int
}

func newPMDThread(s *Switch, idx int) *pmdThread {
	p := &pmdThread{
		s:         s,
		idx:       idx,
		rng:       0x9e3779b9 + uint32(idx),
		emc:       flow.NewEMC(s.cfg.EMCEntries),
		rxBatch:   make([]*mempool.Buf, s.cfg.BatchSize),
		metas:     make([]pktMeta, s.cfg.BatchSize),
		groups:    make([]flowGroup, s.cfg.BatchSize),
		missIdx:   make([]int32, 0, s.cfg.BatchSize),
		txTouched: make([]int, 0, 8),
	}
	if !s.cfg.SMCDisabled {
		// Only allocated when in use: the SMC's entry array (~768 KB at the
		// default 32768 entries) would otherwise weigh on exactly the
		// configurations meant to measure the switch without the tier.
		p.smc = flow.NewSMC(s.cfg.SMCEntries)
	}
	return p
}

func (p *pmdThread) emcStats() flow.EMCStats { return p.emc.Stats() }

// emcInsertOK applies the emc-insert-inv-prob policy: with inverse
// probability N, only one in N classifier resolutions claims an EMC slot
// (xorshift32, allocation-free). N=1 short-circuits to always.
func (p *pmdThread) emcInsertOK() bool {
	inv := p.s.cfg.EMCInsertInvProb
	if inv <= 1 {
		return true
	}
	x := p.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.rng = x
	return x%uint32(inv) == 0
}

// owns reports whether this PMD polls any queue of the given port under the
// current assignment table. Ownership is a runtime property of the table,
// not a function of the id — the old id%NumPMDs rule clustered all-even
// port ids onto PMD 0 and left the others spinning.
func (p *pmdThread) owns(id uint32) bool {
	asg := p.s.asgSnap.Load()
	for qi, q := range asg.ports.queues {
		if q.e.port.PortID() == id && asg.owner[qi] == p.idx {
			return true
		}
	}
	return false
}

func (p *pmdThread) run() {
	var lastTick time.Time
	for !p.stop.Load() {
		p.iters.Add(1)
		now := time.Now()
		if !lastTick.IsZero() {
			p.totalNanos.Add(uint64(now.Sub(lastTick)))
		}
		lastTick = now
		// One atomic load yields a mutually consistent (ports, owners) pair;
		// the embedded port set is what processBatch resolves output ports
		// against, so a queue and its destinations always come from the same
		// generation.
		asg := p.s.asgSnap.Load()
		work := false
		for qi, q := range asg.ports.queues {
			if asg.owner[qi] != p.idx {
				continue
			}
			n := q.recv(p.rxBatch)
			if n == 0 {
				continue
			}
			work = true
			t0 := time.Now()
			p.processBatch(q.e.port.PortID(), p.rxBatch[:n], asg.ports)
			busy := uint64(time.Since(t0))
			p.busyNanos.Add(busy)
			q.busyNanos.Add(busy)
			q.batches.Add(1)
			q.frames.Add(uint64(n))
		}
		if !work {
			runtime.Gosched()
		}
	}
}

// processBatch runs one input burst through the two-phase pipeline:
//
//	phase 1 parses and classifies every packet into the scratch array
//	(EMC, then SMC, then within-batch miss dedup, then the masked
//	classifier — all on the already-packed key);
//	phase 2 chains packets by resolved flow and executes each flow's action
//	list once per group, then flushes the per-destination accumulators.
//
// Cross-flow packet order within a batch may change (groups flush in
// first-seen order); per-flow order is preserved — the same reordering
// window a flow-grouped hardware datapath has.
func (p *pmdThread) processBatch(inPort uint32, bufs []*mempool.Buf, snap *portSet) {
	if len(p.txAcc) < len(snap.order) {
		p.txAcc = append(p.txAcc, make([][]*mempool.Buf, len(snap.order)-len(p.txAcc))...)
	}
	table := p.s.table
	gen := table.Generation()
	emcOn := !p.s.cfg.EMCDisabled
	smcOn := !p.s.cfg.SMCDisabled
	nowNano := time.Now().UnixNano() // amortized idle-timeout timestamp

	// Phase 1: parse + classify into scratch.
	n := int32(0)
	p.missIdx = p.missIdx[:0]
	var misses, tableMisses, dedups, parseErrs uint64
	for _, b := range bufs {
		b.Port = inPort
		if err := p.parser.Parse(b.Bytes()); err != nil {
			b.Free()
			parseErrs++
			continue
		}
		key := flow.ExtractKey(&p.parser, inPort)
		m := &p.metas[n]
		m.buf = b
		m.kp = key.Pack()
		m.hash = m.kp.Hash()
		m.decoded = p.parser.Decoded
		m.eth = p.parser.Eth
		m.ipv4 = p.parser.IPv4
		m.next = -1
		var f *flow.Flow
		resolved := false
		if emcOn {
			if f = p.emc.Lookup(m.kp, m.hash, gen); f != nil {
				resolved = true
			}
		}
		if !resolved && smcOn {
			// SMC hits do not promote into the EMC (as in OVS-DPDK): when
			// the flow count has outgrown the EMC, promotion would just
			// churn its sets without raising the hit rate.
			if f = p.smc.Lookup(&m.kp, m.hash, gen); f != nil {
				resolved = true
			}
		}
		if !resolved {
			// Within-batch dedup: a burst of identical missed keys walks
			// the tuple space once. A memoized nil (table miss) counts too.
			for _, j := range p.missIdx {
				if p.metas[j].kp == m.kp {
					f = p.metas[j].f
					resolved = true
					dedups++
					break
				}
			}
		}
		if !resolved {
			f = table.LookupPacked(&m.kp)
			misses++
			if f != nil {
				if emcOn && p.emcInsertOK() {
					// SMC-aware eviction: a LIVE entry this insertion
					// displaces demotes into the second tier (OVS-style), so
					// the flows the EMC can no longer hold keep resolving
					// without another classifier walk.
					if vk, vf, ev := p.emc.Insert(m.kp, m.hash, f, gen); ev && smcOn {
						p.smc.Insert(&vk, vk.Hash(), vf, gen)
					}
				}
				if smcOn {
					p.smc.Insert(&m.kp, m.hash, f, gen)
				}
			} else {
				tableMisses++
			}
			p.missIdx = append(p.missIdx, n)
		}
		m.f = f
		n++
	}
	if misses > 0 {
		p.s.Misses.Add(misses)
	}
	if tableMisses > 0 {
		p.s.TableMisses.Add(tableMisses)
	}
	if dedups > 0 {
		p.s.DedupHits.Add(dedups)
	}
	if parseErrs > 0 {
		p.s.ParseErrors.Add(parseErrs)
	}

	// Phase 2: group by flow. Bursts carry few distinct flows, so a linear
	// scan over the open groups beats any allocation-bearing structure.
	ng := 0
	for i := int32(0); i < n; i++ {
		m := &p.metas[i]
		if m.f == nil {
			p.tableMiss(inPort, m.buf)
			m.buf = nil
			continue
		}
		gi := 0
		for ; gi < ng; gi++ {
			if p.groups[gi].f == m.f {
				break
			}
		}
		if gi == ng {
			p.groups[ng] = flowGroup{f: m.f, first: i, last: i, pkts: 1, bytes: uint64(m.buf.Len)}
			ng++
			continue
		}
		g := &p.groups[gi]
		p.metas[g.last].next = i
		g.last = i
		g.pkts++
		g.bytes += uint64(m.buf.Len)
	}

	for gi := 0; gi < ng; gi++ {
		g := &p.groups[gi]
		g.f.Packets.Add(g.pkts)
		g.f.Bytes.Add(g.bytes)
		g.f.Touch(nowNano)
		p.executeGroup(g, snap, nowNano)
	}

	// Flush accumulated outputs.
	if len(p.txTouched) > 0 {
		multiPMD := p.s.cfg.NumPMDs > 1
		for _, idx := range p.txTouched {
			batch := p.txAcc[idx]
			snap.order[idx].send(batch, multiPMD)
			p.txAcc[idx] = batch[:0]
		}
		p.txTouched = p.txTouched[:0]
	}
}

func (p *pmdThread) tableMiss(inPort uint32, b *mempool.Buf) {
	if p.s.cfg.TableMissToController {
		p.punt(inPort, b, 0 /* OFPR_NO_MATCH */)
	}
	b.Free()
}

// punt copies the frame into a pooled payload and hands it to the controller
// queue (best effort: a slow or absent controller must not stall the
// datapath; on overflow the copy goes straight back to the pool).
func (p *pmdThread) punt(inPort uint32, b *mempool.Buf, reason uint8) {
	ev := PacketInEvent{
		InPort: inPort,
		Reason: reason,
		Data:   p.s.borrowPuntData(b.Bytes()),
	}
	select {
	case p.s.packetIns <- ev:
	default:
		p.s.ReleasePacketIn(ev)
	}
}

// Adaptive-ECMP tuning. A bundle slot whose egress gauge reads at or above
// ecmpCongestedScore is avoidable; a flow may change its avoid mask only
// when the flowlet gate is open — an idle gap of ecmpFlowletGapNanos since
// the flow's previous ECMP batch (no packets in flight to overtake), or
// ecmpRepickMinNanos since the mask last moved (bounded repick rate). The
// mask is stable between gate openings, so the path mapping packets observe
// changes at most once per gate — the same quiesce-then-move ordering
// argument MoveQueue makes, with the flowlet gap standing in for the parked
// iteration.
const (
	ecmpCongestedScore  = 64
	ecmpFlowletGapNanos = int64(time.Millisecond)
	ecmpRepickMinNanos  = int64(5 * time.Millisecond)
)

// executeGroup runs the group's action list once, applying each action to
// every live packet in the group chain. Ownership: every chained buffer is
// consumed (moved into a TX accumulator, or freed). Header-mutating actions
// only apply before the first output: once a buffer has been handed to a
// destination (clones share storage), mutating it would corrupt the copy
// already sent. OpenFlow action lists emitted by this system always mutate
// before output. A packet dropped mid-list (TTL expiry) marks its meta slot
// nil and later actions skip it.
func (p *pmdThread) executeGroup(g *flowGroup, snap *portSet, nowNano int64) {
	moved := false
	for _, a := range g.f.Actions {
		switch a.Type {
		case flow.ActOutput:
			dstIdx, ok := snap.byID[a.Port]
			if !ok {
				// Unknown/removed destination: outputting nowhere is a
				// no-op. The buffers stay live for any later action and are
				// freed at the end if nothing moves them — freeing here
				// would leave freed buffers chained for later actions.
				continue
			}
			for i := g.first; i >= 0; i = p.metas[i].next {
				m := &p.metas[i]
				if m.buf == nil {
					continue
				}
				out := m.buf
				if moved {
					out = out.Clone()
				}
				if len(p.txAcc[dstIdx]) == 0 {
					p.txTouched = append(p.txTouched, dstIdx)
				}
				p.txAcc[dstIdx] = append(p.txAcc[dstIdx], out)
			}
			moved = true
		case flow.ActOutputECMP:
			if a.NPorts == 0 {
				continue
			}
			// Resolve the bundle's ports against the snapshot once per
			// action (-1 = gone), not once per packet.
			var ecmpIdx [flow.MaxECMPPorts]int
			n := uint32(a.NPorts)
			for j := uint32(0); j < n; j++ {
				ecmpIdx[j] = -1
				if idx, ok := snap.byID[a.Ports[j]]; ok {
					ecmpIdx[j] = idx
				}
			}
			// Congestion-aware repick: read each live path's egress gauge
			// (≤8 atomic loads per action) and, when some-but-not-all paths
			// are congested, move the flow's avoid mask onto the congested
			// set — but only through the flowlet gate, so the mask packets
			// observe is stable between gate openings and intra-flow order
			// holds. All paths congested (or all quiet) falls back to the
			// static hash pin. Disabled, this whole block is skipped and
			// avoid stays 0 — exactly the PR 5 datapath.
			var avoid uint32
			if !p.s.cfg.ECMPAdaptiveDisabled && n > 1 {
				var congMask uint32
				quiet := 0
				for j := uint32(0); j < n; j++ {
					idx := ecmpIdx[j]
					if idx < 0 {
						continue
					}
					if c := snap.order[idx].cong; c != nil && c.Load() >= ecmpCongestedScore {
						congMask |= 1 << j
					} else {
						quiet++
					}
				}
				st := g.f.ECMP()
				avoid = st.Avoid.Load()
				want := congMask
				if quiet == 0 {
					want = 0 // nowhere better to go: keep the static pin
				}
				if want != avoid &&
					(nowNano-st.Seen.Load() >= ecmpFlowletGapNanos ||
						nowNano-st.Moved.Load() >= ecmpRepickMinNanos) {
					st.Avoid.Store(want)
					st.Moved.Store(nowNano)
					avoid = want
					p.s.ECMPRepicks.Add(1)
				}
				st.Seen.Store(nowNano)
			}
			// Per-packet path pinning: the packet's secondary key hash (mixed
			// with its VLAN lane, present after an earlier push in this same
			// action list) selects one of the parallel destinations, so one
			// flow always rides one path while distinct flows spread. A
			// selected port missing from the snapshot (a torn-down trunk) or
			// sitting in the avoid mask falls forward to the next live
			// unavoided one — live rebalance without a rule rewrite; with an
			// empty avoid mask surviving pins never move.
			sent := false
			for i := g.first; i >= 0; i = p.metas[i].next {
				m := &p.metas[i]
				if m.buf == nil {
					continue
				}
				pick := m.kp.Hash2()
				if vid, tagged := pkt.FrameVlanID(m.buf.Bytes()); tagged {
					pick ^= uint32(vid) * 0x9e3779b9
				}
				dstIdx := -1
				fallback := -1
				for j := uint32(0); j < n; j++ {
					slot := (pick + j) % n
					idx := ecmpIdx[slot]
					if idx < 0 {
						continue
					}
					if fallback < 0 {
						fallback = idx
					}
					if avoid&(1<<slot) != 0 {
						continue
					}
					dstIdx = idx
					break
				}
				if dstIdx < 0 {
					dstIdx = fallback // every live path avoided: static pin
				}
				if dstIdx < 0 {
					continue // every parallel path is down: behave like ActOutput to nowhere
				}
				out := m.buf
				if moved {
					out = out.Clone()
				}
				if len(p.txAcc[dstIdx]) == 0 {
					p.txTouched = append(p.txTouched, dstIdx)
				}
				p.txAcc[dstIdx] = append(p.txAcc[dstIdx], out)
				sent = true
			}
			if sent {
				moved = true
			}
		case flow.ActController:
			for i := g.first; i >= 0; i = p.metas[i].next {
				if m := &p.metas[i]; m.buf != nil {
					p.punt(m.buf.Port, m.buf, 1 /* OFPR_ACTION */)
				}
			}
		case flow.ActDrop:
			if !moved {
				p.freeGroup(g)
			}
			return
		case flow.ActSetEthSrc:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					if m := &p.metas[i]; m.buf != nil && m.decoded.Has(pkt.LayerEthernet) {
						m.eth.SetSrc(a.MAC)
					}
				}
			}
		case flow.ActSetEthDst:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					if m := &p.metas[i]; m.buf != nil && m.decoded.Has(pkt.LayerEthernet) {
						m.eth.SetDst(a.MAC)
					}
				}
			}
		case flow.ActPushVlan:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					m := &p.metas[i]
					if m.buf == nil || !m.decoded.Has(pkt.LayerEthernet) {
						continue
					}
					if _, err := m.buf.Prepend(pkt.VLANLen); err != nil {
						// No headroom left (already deeply encapsulated): the
						// frame cannot carry the tag, drop it.
						m.buf.Free()
						m.buf = nil
						continue
					}
					if err := pkt.PushVlan(m.buf.Bytes(), a.Vlan, 0); err != nil {
						m.buf.Free()
						m.buf = nil
						continue
					}
					m.decoded |= pkt.LayerVLAN
					m.refreshViews()
				}
			}
		case flow.ActPopVlan:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					m := &p.metas[i]
					if m.buf == nil || !m.decoded.Has(pkt.LayerVLAN) {
						continue
					}
					if _, err := pkt.PopVlan(m.buf.Bytes()); err != nil {
						continue
					}
					_ = m.buf.Adj(pkt.VLANLen)
					m.decoded &^= pkt.LayerVLAN
					m.refreshViews()
				}
			}
		case flow.ActSetVlan:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					m := &p.metas[i]
					if m.buf == nil || !m.decoded.Has(pkt.LayerVLAN) {
						continue
					}
					frame := m.buf.Bytes()
					if vl, err := pkt.DecodeVLAN(frame[pkt.EthernetLen:]); err == nil {
						vl.SetVID(a.Vlan)
					}
				}
			}
		case flow.ActSetVlanPcp:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					m := &p.metas[i]
					if m.buf == nil || !m.decoded.Has(pkt.LayerVLAN) {
						continue
					}
					frame := m.buf.Bytes()
					if vl, err := pkt.DecodeVLAN(frame[pkt.EthernetLen:]); err == nil {
						vl.SetPCP(a.PCP)
					}
				}
			}
		case flow.ActDecTTL:
			if !moved {
				for i := g.first; i >= 0; i = p.metas[i].next {
					m := &p.metas[i]
					if m.buf == nil || !m.decoded.Has(pkt.LayerIPv4) {
						continue
					}
					ttl := m.ipv4.TTL()
					if ttl <= 1 {
						m.buf.Free()
						m.buf = nil
						continue
					}
					m.ipv4.SetTTL(ttl - 1)
					m.ipv4.UpdateChecksum()
				}
			}
		}
	}
	if !moved {
		p.freeGroup(g)
	}
}

// freeGroup frees every live buffer in the group chain.
func (p *pmdThread) freeGroup(g *flowGroup) {
	for i := g.first; i >= 0; i = p.metas[i].next {
		if m := &p.metas[i]; m.buf != nil {
			m.buf.Free()
			m.buf = nil
		}
	}
}
