package vswitch

import (
	"time"

	"ovshighway/internal/flow"
)

// FlowRemovedEvent reports an expired flow toward the controller channel
// (OFPT_FLOW_REMOVED). Counters include merged bypass traffic.
type FlowRemovedEvent struct {
	Priority    uint16
	Cookie      uint64
	Reason      uint8
	IdleTO      uint16
	HardTO      uint16
	DurationSec uint32
	Packets     uint64
	Bytes       uint64
	Match       flow.Match
}

// FlowRemovals returns the expiry notification channel (only flows whose
// flow-mod set OFPFF_SEND_FLOW_REM appear here).
func (s *Switch) FlowRemovals() <-chan FlowRemovedEvent { return s.flowRemovals }

// sweeper periodically expires timed-out flows and re-ranks the classifier
// subtables by observed hits. Expiry goes through the table's listener
// path, so the p-2-p detector dissolves bypasses of expired steering rules
// exactly as it does for explicit deletes.
func (s *Switch) sweeper(interval time.Duration, stop <-chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.table.Rerank()
			// Attached connection tables expire on the same tick: the sweeper
			// only death-marks idle entries (per-entry atomics); the owning
			// VNF goroutines reclaim them lazily, exactly as the lookup
			// caches scrub death-marked flows.
			for _, ct := range s.ConntrackTables() {
				ct.Expire(now)
			}
			for _, e := range s.table.Expire(now) {
				if e.Flow.Flags&flow.SendFlowRemoved == 0 {
					continue
				}
				pkts, bytes := s.FlowCounters(e.Flow)
				ev := FlowRemovedEvent{
					Priority:    e.Flow.Priority,
					Cookie:      e.Flow.Cookie,
					Reason:      e.Reason,
					IdleTO:      e.Flow.IdleTO,
					HardTO:      e.Flow.HardTO,
					DurationSec: uint32(e.Flow.Age() / time.Second),
					Packets:     pkts,
					Bytes:       bytes,
					Match:       e.Flow.Match,
				}
				select {
				case s.flowRemovals <- ev:
				default: // controller slow or absent: drop the notification
				}
			}
		}
	}
}
