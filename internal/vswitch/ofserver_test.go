package vswitch

import (
	"net"
	"testing"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
	"ovshighway/internal/pkt"
)

// startOFServer launches an OF server for the env's switch and returns a
// connected controller-side Conn.
func startOFServer(t *testing.T, env *testEnv) *openflow.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewOFServer(env.sw, ln)
	go srv.Serve()
	t.Cleanup(srv.Close)

	c, err := openflow.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// barrier round-trips a barrier request, guaranteeing all prior messages on
// the connection were processed.
func barrier(t *testing.T, c *openflow.Conn) {
	t.Helper()
	xid, err := c.Send(openflow.BarrierRequest{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		m, gotXid, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(openflow.BarrierReply); ok && gotXid == xid {
			return
		}
	}
}

func TestOFServerHandshakeAndEcho(t *testing.T) {
	env := newEnv(t, Config{DatapathID: 0xfeed}, 1)
	c := startOFServer(t, env)

	xid, err := c.Send(openflow.EchoRequest{Data: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	m, gotXid, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	er, ok := m.(openflow.EchoReply)
	if !ok || gotXid != xid || string(er.Data) != "hi" {
		t.Fatalf("echo reply = %T %+v xid=%d", m, m, gotXid)
	}

	if _, err := c.Send(openflow.FeaturesRequest{}); err != nil {
		t.Fatal(err)
	}
	m, _, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := m.(openflow.FeaturesReply)
	if !ok || fr.DatapathID != 0xfeed {
		t.Fatalf("features = %+v", m)
	}
}

func TestOFServerFlowModDrivesDatapath(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	c := startOFServer(t, env)

	fm := openflow.FlowMod{
		Command: openflow.FlowCmdAdd, Priority: 10, Cookie: 5,
		Match:   flow.MatchInPort(1),
		Actions: flow.Actions{flow.Output(2)},
	}
	if _, err := c.Send(fm); err != nil {
		t.Fatal(err)
	}
	barrier(t, c)

	env.sendUDP(t, 1, defaultSpec)
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("flow-mod over TCP did not program the datapath")
	}
	b.Free()

	// Delete it and confirm traffic stops.
	fm.Command = openflow.FlowCmdDeleteStrict
	if _, err := c.Send(fm); err != nil {
		t.Fatal(err)
	}
	barrier(t, c)
	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(2, 100*time.Millisecond); b != nil {
		b.Free()
		t.Fatal("traffic after delete")
	}
}

func TestOFServerNonStrictDelete(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	c := startOFServer(t, env)
	tb := env.sw.Table()
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	tb.Add(10, flow.MatchInPort(1).WithIPProto(pkt.ProtoUDP), flow.Actions{flow.Output(3)}, 0)
	tb.Add(10, flow.MatchInPort(2), flow.Actions{flow.Output(1)}, 0)

	// Non-strict delete of everything admitting in_port=1.
	fm := openflow.FlowMod{
		Command: openflow.FlowCmdDelete,
		OutPort: openflow.PortAny,
		Match:   flow.MatchInPort(1),
	}
	if _, err := c.Send(fm); err != nil {
		t.Fatal(err)
	}
	barrier(t, c)
	if got := tb.Len(); got != 1 {
		t.Fatalf("table len = %d, want 1", got)
	}
}

func TestOFServerDeleteWithOutPortFilter(t *testing.T) {
	env := newEnv(t, Config{}, 3)
	c := startOFServer(t, env)
	tb := env.sw.Table()
	tb.Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0)
	tb.Add(20, flow.MatchInPort(1).WithIPProto(pkt.ProtoUDP), flow.Actions{flow.Output(3)}, 0)

	fm := openflow.FlowMod{
		Command: openflow.FlowCmdDelete,
		OutPort: 3,
		Match:   flow.MatchAll(),
	}
	if _, err := c.Send(fm); err != nil {
		t.Fatal(err)
	}
	barrier(t, c)
	flows := tb.Snapshot()
	if len(flows) != 1 {
		t.Fatalf("table len = %d, want 1", len(flows))
	}
	if p, _ := flows[0].Actions.SoleOutput(); p != 2 {
		t.Fatalf("wrong flow survived: %s", flows[0])
	}
}

func TestOFServerStatsRequests(t *testing.T) {
	env := newEnv(t, Config{}, 2)
	c := startOFServer(t, env)
	env.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 99)

	env.sendUDP(t, 1, defaultSpec)
	if b := env.recvOne(2, time.Second); b != nil {
		b.Free()
	}

	if _, err := c.Send(openflow.PortStatsRequest{PortNo: openflow.PortAny}); err != nil {
		t.Fatal(err)
	}
	m, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ps := m.(openflow.PortStatsReply)
	if len(ps.Stats) != 2 {
		t.Fatalf("port stats entries = %d", len(ps.Stats))
	}
	var p1, p2 openflow.PortStats
	for _, s := range ps.Stats {
		switch s.PortNo {
		case 1:
			p1 = s
		case 2:
			p2 = s
		}
	}
	if p1.RxPackets != 1 || p2.TxPackets != 1 {
		t.Fatalf("stats: p1=%+v p2=%+v", p1, p2)
	}

	if _, err := c.Send(openflow.FlowStatsRequest{OutPort: openflow.PortAny}); err != nil {
		t.Fatal(err)
	}
	m, _, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	fs := m.(openflow.FlowStatsReply)
	if len(fs.Stats) != 1 || fs.Stats[0].Cookie != 99 || fs.Stats[0].PacketCount != 1 {
		t.Fatalf("flow stats = %+v", fs.Stats)
	}
}

func TestOFServerPacketOutAndPacketIn(t *testing.T) {
	env := newEnv(t, Config{TableMissToController: true}, 2)
	c := startOFServer(t, env)

	// Packet-out to port 2 must reach the guest PMD via the normal channel.
	frame := make([]byte, 128)
	n, _ := pkt.BuildUDP(frame, defaultSpec)
	po := openflow.PacketOut{
		InPort:  openflow.PortController,
		Actions: flow.Actions{flow.Output(2)},
		Data:    frame[:n],
	}
	if _, err := c.Send(po); err != nil {
		t.Fatal(err)
	}
	b := env.recvOne(2, time.Second)
	if b == nil {
		t.Fatal("packet-out not delivered")
	}
	b.Free()

	// A table miss must surface as packet-in on the controller connection.
	env.sendUDP(t, 1, defaultSpec)
	deadline := time.After(2 * time.Second)
	for {
		type result struct {
			m   openflow.Msg
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, _, err := c.Recv()
			ch <- result{m, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if pi, ok := r.m.(openflow.PacketIn); ok {
				if pi.Match.Key.InPort != 1 {
					t.Fatalf("packet-in port = %d", pi.Match.Key.InPort)
				}
				return
			}
		case <-deadline:
			t.Fatal("no packet-in received")
		}
	}
}
