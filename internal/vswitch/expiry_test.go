package vswitch

import (
	"testing"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
)

func TestFlowExpiredPredicate(t *testing.T) {
	tb := flow.NewTable()
	f := tb.AddWithTimeouts(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 0, 1, 0, 0)
	now := time.Now()
	if dead, _ := f.Expired(now); dead {
		t.Fatal("fresh idle flow expired immediately")
	}
	if dead, reason := f.Expired(now.Add(2 * time.Second)); !dead || reason != flow.ReasonIdleTimeout {
		t.Fatalf("idle expiry = %v/%d", dead, reason)
	}
	// A touch extends the idle deadline.
	f.Touch(now.Add(3 * time.Second).UnixNano())
	if dead, _ := f.Expired(now.Add(3500 * time.Millisecond)); dead {
		t.Fatal("touched flow expired")
	}

	h := tb.AddWithTimeouts(10, flow.MatchInPort(2), flow.Actions{flow.Output(1)}, 0, 0, 2, 0)
	if dead, _ := h.Expired(now.Add(time.Second)); dead {
		t.Fatal("hard flow expired early")
	}
	h.Touch(now.Add(10 * time.Second).UnixNano()) // touches never save a hard timeout
	if dead, reason := h.Expired(now.Add(3 * time.Second)); !dead || reason != flow.ReasonHardTimeout {
		t.Fatalf("hard expiry = %v/%d", dead, reason)
	}

	p := tb.Add(10, flow.MatchInPort(3), flow.Actions{flow.Output(1)}, 0)
	if dead, _ := p.Expired(now.Add(1000 * time.Hour)); dead {
		t.Fatal("permanent flow expired")
	}
}

type expRecListener struct {
	added, removed []*flow.Flow
}

func (r *expRecListener) FlowAdded(f *flow.Flow)   { r.added = append(r.added, f) }
func (r *expRecListener) FlowRemoved(f *flow.Flow) { r.removed = append(r.removed, f) }

func TestTableExpireRemovesAndNotifies(t *testing.T) {
	tb := flow.NewTable()
	rec := &expRecListener{}
	tb.AddListener(rec)
	tb.AddWithTimeouts(10, flow.MatchInPort(1), flow.Actions{flow.Output(2)}, 7, 1, 0, 0)
	tb.Add(10, flow.MatchInPort(2), flow.Actions{flow.Output(1)}, 8)

	if got := tb.Expire(time.Now()); got != nil {
		t.Fatalf("premature expiry: %v", got)
	}
	expired := tb.Expire(time.Now().Add(5 * time.Second))
	if len(expired) != 1 || expired[0].Flow.Cookie != 7 || expired[0].Reason != flow.ReasonIdleTimeout {
		t.Fatalf("expired = %+v", expired)
	}
	if tb.Len() != 1 {
		t.Fatalf("table len = %d", tb.Len())
	}
	if len(rec.removed) != 1 || rec.removed[0].Cookie != 7 {
		t.Fatal("listener not fired on expiry")
	}
	k := flow.Key{InPort: 1}
	if tb.Lookup(&k) != nil {
		t.Fatal("expired flow still matches")
	}
}

func TestSweeperExpiresIdleFlowUnderNoTraffic(t *testing.T) {
	env := newEnv(t, Config{SweepInterval: 20 * time.Millisecond}, 2)
	env.sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowCmdAdd, Priority: 10,
		Match: flow.MatchInPort(1), Actions: flow.Actions{flow.Output(2)},
		IdleTO: 1,
	})
	if env.sw.Table().Len() != 1 {
		t.Fatal("flow not installed")
	}
	deadline := time.Now().Add(3 * time.Second)
	for env.sw.Table().Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if env.sw.Table().Len() != 0 {
		t.Fatal("idle flow not swept")
	}
}

func TestTrafficKeepsIdleFlowAlive(t *testing.T) {
	env := newEnv(t, Config{SweepInterval: 20 * time.Millisecond}, 2)
	env.sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowCmdAdd, Priority: 10,
		Match: flow.MatchInPort(1), Actions: flow.Actions{flow.Output(2)},
		IdleTO: 1,
	})
	// Keep packets flowing for >1 idle period.
	stop := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(stop) {
		env.sendUDP(t, 1, defaultSpec)
		if b := env.recvOne(2, 100*time.Millisecond); b != nil {
			b.Free()
		}
		time.Sleep(50 * time.Millisecond)
	}
	if env.sw.Table().Len() != 1 {
		t.Fatal("active flow was idle-expired")
	}
}

func TestFlowRemovedDeliveredToController(t *testing.T) {
	env := newEnv(t, Config{SweepInterval: 20 * time.Millisecond}, 2)
	c := startOFServer(t, env)

	fm := openflow.FlowMod{
		Command: openflow.FlowCmdAdd, Priority: 10, Cookie: 0xabc,
		Match: flow.MatchInPort(1), Actions: flow.Actions{flow.Output(2)},
		IdleTO: 1, Flags: flow.SendFlowRemoved,
	}
	if _, err := c.Send(fm); err != nil {
		t.Fatal(err)
	}
	barrier(t, c)

	deadline := time.After(5 * time.Second)
	for {
		type result struct {
			m   openflow.Msg
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, _, err := c.Recv()
			ch <- result{m, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatal(r.err)
			}
			fr, ok := r.m.(openflow.FlowRemoved)
			if !ok {
				continue
			}
			if fr.Cookie != 0xabc || fr.Reason != openflow.RemovedIdleTimeout || fr.IdleTO != 1 {
				t.Fatalf("flow-removed = %+v", fr)
			}
			if fr.Match.Key.InPort != 1 {
				t.Fatalf("flow-removed match = %s", fr.Match)
			}
			return
		case <-deadline:
			t.Fatal("no flow-removed received")
		}
	}
}

func TestFlowRemovedNotSentWithoutFlag(t *testing.T) {
	env := newEnv(t, Config{SweepInterval: 20 * time.Millisecond}, 2)
	env.sw.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowCmdAdd, Priority: 10,
		Match: flow.MatchInPort(1), Actions: flow.Actions{flow.Output(2)},
		IdleTO: 1, // no SendFlowRemoved flag
	})
	deadline := time.Now().Add(3 * time.Second)
	for env.sw.Table().Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case ev := <-env.sw.FlowRemovals():
		t.Fatalf("unsolicited flow-removed %+v", ev)
	default:
	}
}

func TestFlowRemovedWireRoundTrip(t *testing.T) {
	m := openflow.FlowRemoved{
		Cookie: 9, Priority: 10, Reason: openflow.RemovedHardTimeout,
		DurationSec: 5, IdleTO: 1, HardTO: 2,
		PacketCount: 100, ByteCount: 6400,
		Match: flow.MatchInPort(3),
	}
	b := openflow.Encode(m, 42)
	got, xid, err := openflow.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if xid != 42 {
		t.Fatalf("xid = %d", xid)
	}
	fr := got.(openflow.FlowRemoved)
	if fr.Cookie != 9 || fr.Reason != openflow.RemovedHardTimeout ||
		fr.PacketCount != 100 || fr.ByteCount != 6400 || !fr.Match.Equal(m.Match) {
		t.Fatalf("round trip = %+v", fr)
	}
}
