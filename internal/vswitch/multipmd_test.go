package vswitch

import (
	"sync/atomic"
	"testing"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
)

// TestFourPMDChainForwarding drives a 4-hop steering chain through a switch
// running four PMD threads: guests on the middle ports echo every received
// packet back out, so each frame crosses the forwarding engine five times
// and the hops land on different PMDs. It asserts end-to-end delivery,
// the static per-PMD port ownership partition, and that EMCStats is the
// exact aggregate of the per-PMD caches.
func TestFourPMDChainForwarding(t *testing.T) {
	const nPMD = 4
	env := newEnv(t, Config{NumPMDs: nPMD}, 6)

	// Steering chain 1 → 2 → 3 → 4 → 5 → 6, installed in one batch.
	specs := make([]flow.FlowSpec, 0, 5)
	for id := uint32(1); id <= 5; id++ {
		specs = append(specs, flow.FlowSpec{
			Priority: 10, Match: flow.MatchInPort(id), Actions: flow.Actions{flow.Output(id + 1)},
		})
	}
	env.sw.Table().AddBatch(specs)

	// Every port must be polled by exactly one PMD, and with ids 1..6 over
	// 4 PMDs every PMD owns at least one port.
	if len(env.sw.pmdList()) != nPMD {
		t.Fatalf("switch started %d PMDs, want %d", len(env.sw.pmdList()), nPMD)
	}
	perPMD := make([]int, nPMD)
	for id := uint32(1); id <= 6; id++ {
		owners := 0
		for i, p := range env.sw.pmdList() {
			if p.owns(id) {
				owners++
				perPMD[i]++
			}
		}
		if owners != 1 {
			t.Fatalf("port %d owned by %d PMDs, want exactly 1", id, owners)
		}
	}
	for i, n := range perPMD {
		if n == 0 {
			t.Fatalf("PMD %d owns no ports (distribution %v)", i, perPMD)
		}
	}

	// Echo guests on the middle ports: whatever arrives goes back out the
	// same dpdkr port, to be steered toward the next hop.
	var stop atomic.Bool
	defer stop.Store(true)
	for id := uint32(2); id <= 5; id++ {
		pmd := env.pmds[id]
		go func() {
			batch := make([]*mempool.Buf, 16)
			for !stop.Load() {
				n := pmd.Rx(batch)
				if n == 0 {
					time.Sleep(time.Microsecond)
					continue
				}
				sent := pmd.Tx(batch[:n])
				mempool.FreeBatch(batch[sent:n])
			}
		}()
	}

	const frames = 500
	for i := 0; i < frames; i++ {
		env.sendUDP(t, 1, defaultSpec)
	}
	got := 0
	out := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(5 * time.Second)
	for got < frames && time.Now().Before(deadline) {
		n := env.pmds[6].Rx(out)
		mempool.FreeBatch(out[:n])
		got += n
	}
	if got != frames {
		t.Fatalf("delivered %d of %d frames through the 4-PMD chain", got, frames)
	}

	// EMCStats must be the exact sum of the per-PMD caches, and the chain
	// (one 5-tuple crossing the engine 5 times) must have produced hits on
	// more than one PMD.
	var want flow.EMCStats
	pmdsWithHits := 0
	for _, p := range env.sw.pmdList() {
		st := p.emcStats()
		want.Hits += st.Hits
		want.Misses += st.Misses
		want.Conflicts += st.Conflicts
		if st.Hits > 0 {
			pmdsWithHits++
		}
	}
	if agg := env.sw.EMCStats(); agg != want {
		t.Fatalf("EMCStats() = %+v, per-PMD sum = %+v", agg, want)
	}
	if want.Hits == 0 {
		t.Fatal("no EMC hits across any PMD")
	}
	if pmdsWithHits < 2 {
		t.Fatalf("EMC hits on %d PMDs, chain hops should spread over several", pmdsWithHits)
	}
}
