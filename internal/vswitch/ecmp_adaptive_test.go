package vswitch

import (
	"testing"
	"time"

	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/pkt"
)

// adaptiveEnv wires the adaptive-ECMP micro-testbed: one dpdkr guest port
// feeding an output_ecmp rule whose two parallel ports are NICs — the port
// kind that publishes a congestion gauge (trunk endpoints in the fabric).
type adaptiveEnv struct {
	sw         *Switch
	pool       *mempool.Pool
	src        *dpdkr.PMD
	nicB, nicC *nic.NIC
}

func newAdaptiveEnv(t *testing.T, cfg Config) *adaptiveEnv {
	t.Helper()
	e := &adaptiveEnv{
		sw:   New(cfg),
		pool: mempool.MustNew(mempool.Config{Capacity: 4096, BufSize: 2048, Headroom: 128}),
	}
	e.sw.SetInjectionPool(e.pool)
	port, pmd, err := dpdkr.NewPort(1, "src", 1024)
	if err != nil {
		t.Fatal(err)
	}
	e.src = pmd
	if e.nicB, err = nic.New(nic.Config{ID: 2, Name: "b", QueueSize: 1024, RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	if e.nicC, err = nic.New(nic.Config{ID: 3, Name: "c", QueueSize: 1024, RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []DataPort{port, e.nicB, e.nicC} {
		if err := e.sw.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	e.sw.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.OutputECMP(2, 3)}, 0)
	if err := e.sw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.sw.Stop)
	return e
}

// sendFlows injects one frame per flow (flows distinguished by UDP source
// port, the ECMP hash axis).
func (e *adaptiveEnv) sendFlows(t *testing.T, flows int) {
	t.Helper()
	raw := make([]byte, 256)
	spec := defaultSpec
	for f := 0; f < flows; f++ {
		spec.SrcPort = uint16(5000 + f)
		n, err := pkt.BuildUDP(raw, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetBytes(raw[:n]); err != nil {
			t.Fatal(err)
		}
		if e.src.Tx([]*mempool.Buf{b}) != 1 {
			t.Fatal("guest tx failed")
		}
	}
}

// collect drains both egress NICs until want frames arrived, returning the
// per-port flow sets (UDP source port -> count).
func (e *adaptiveEnv) collect(t *testing.T, want int) (onB, onC map[uint16]int) {
	t.Helper()
	onB, onC = map[uint16]int{}, map[uint16]int{}
	drain := make([]*mempool.Buf, 64)
	pull := func(n *nic.NIC, seen map[uint16]int) int {
		k := n.DrainToWire(drain)
		for _, b := range drain[:k] {
			var p pkt.Parser
			if err := p.Parse(b.Bytes()); err == nil && p.Decoded.Has(pkt.LayerUDP) {
				seen[p.UDP.SrcPort()]++
			}
			b.Free()
		}
		return k
	}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < want && time.Now().Before(deadline) {
		got += pull(e.nicB, onB)
		got += pull(e.nicC, onC)
		if got < want {
			time.Sleep(100 * time.Microsecond)
		}
	}
	if got != want {
		t.Fatalf("delivered %d of %d packets", got, want)
	}
	return onB, onC
}

// flowletGap sleeps past the flowlet idle threshold so the next batch is
// allowed to move the rule's avoid mask without reordering risk.
func flowletGap() { time.Sleep(5 * time.Millisecond) }

const adaptiveFlows = 32

// TestECMPAdaptiveRepicksOffCongestedPath: when one parallel path's
// congestion gauge crosses the threshold, the next flowlet repicks every
// flow onto the quiet path — and when the signal clears, flows return to
// their static hash pins. The repick counter records the mask moves.
func TestECMPAdaptiveRepicksOffCongestedPath(t *testing.T) {
	e := newAdaptiveEnv(t, Config{})

	e.sendFlows(t, adaptiveFlows)
	b1, c1 := e.collect(t, adaptiveFlows)
	if len(b1) == 0 || len(c1) == 0 {
		t.Fatalf("static hash did not spread: %d/%d flows", len(b1), len(c1))
	}
	if n := e.sw.DatapathStats().ECMPRepicks; n != 0 {
		t.Fatalf("repicked %d times with no congestion signal", n)
	}

	// Path B reports congestion: after a flowlet gap, everything must leave
	// by C, including B's former flows.
	e.nicB.CongestionGauge().Store(255)
	flowletGap()
	e.sendFlows(t, adaptiveFlows)
	b2, c2 := e.collect(t, adaptiveFlows)
	if len(b2) != 0 {
		t.Fatalf("%d flows still on the congested path", len(b2))
	}
	if len(c2) != adaptiveFlows {
		t.Fatalf("quiet path carries %d of %d flows", len(c2), adaptiveFlows)
	}
	if n := e.sw.DatapathStats().ECMPRepicks; n == 0 {
		t.Fatal("avoid mask moved but the repick counter stayed at zero")
	}

	// Signal clears: flows fall back to their original static pins — the
	// deterministic hash, not wherever the detour left them.
	e.nicB.CongestionGauge().Store(0)
	flowletGap()
	e.sendFlows(t, adaptiveFlows)
	b3, c3 := e.collect(t, adaptiveFlows)
	for fp := range b1 {
		if b3[fp] == 0 {
			t.Fatalf("flow %d did not return to its static pin after the signal cleared", fp)
		}
	}
	for fp := range c1 {
		if c3[fp] == 0 {
			t.Fatalf("flow %d left its static pin after an unrelated detour", fp)
		}
	}
}

// TestECMPAdaptiveDisabledKeepsStaticPins: the incast baseline arm — with
// ECMPAdaptiveDisabled the gauge is ignored, every flow keeps its static
// hash pin through a saturated congestion signal, and no repick is counted.
func TestECMPAdaptiveDisabledKeepsStaticPins(t *testing.T) {
	e := newAdaptiveEnv(t, Config{ECMPAdaptiveDisabled: true})

	e.sendFlows(t, adaptiveFlows)
	b1, c1 := e.collect(t, adaptiveFlows)
	if len(b1) == 0 {
		t.Skip("hash pinned no flows to port 2; nothing to hold static")
	}

	e.nicB.CongestionGauge().Store(255)
	flowletGap()
	e.sendFlows(t, adaptiveFlows)
	b2, c2 := e.collect(t, adaptiveFlows)
	if len(b2) != len(b1) || len(c2) != len(c1) {
		t.Fatalf("disabled arm moved flows: %d/%d -> %d/%d", len(b1), len(c1), len(b2), len(c2))
	}
	for fp := range b1 {
		if b2[fp] == 0 {
			t.Fatalf("flow %d abandoned its static pin with adaptation disabled", fp)
		}
	}
	if n := e.sw.DatapathStats().ECMPRepicks; n != 0 {
		t.Fatalf("disabled arm counted %d repicks", n)
	}
}

// TestECMPAdaptiveAllCongestedFallsBackToStatic: when every parallel path
// reports congestion there is nowhere better to go — the avoid mask stays
// empty, flows keep their static pins spread over ALL paths, and nothing is
// counted as a repick.
func TestECMPAdaptiveAllCongestedFallsBackToStatic(t *testing.T) {
	e := newAdaptiveEnv(t, Config{})
	e.nicB.CongestionGauge().Store(255)
	e.nicC.CongestionGauge().Store(255)

	e.sendFlows(t, adaptiveFlows)
	b1, c1 := e.collect(t, adaptiveFlows)
	if len(b1) == 0 || len(c1) == 0 {
		t.Fatalf("all-congested fallback collapsed the spread: %d/%d flows", len(b1), len(c1))
	}
	flowletGap()
	e.sendFlows(t, adaptiveFlows)
	b2, c2 := e.collect(t, adaptiveFlows)
	for fp := range b1 {
		if b2[fp] == 0 {
			t.Fatalf("flow %d moved despite uniform congestion", fp)
		}
	}
	for fp := range c1 {
		if c2[fp] == 0 {
			t.Fatalf("flow %d moved despite uniform congestion", fp)
		}
	}
	if n := e.sw.DatapathStats().ECMPRepicks; n != 0 {
		t.Fatalf("uniform congestion counted %d repicks", n)
	}
}
