package vswitch

import (
	"errors"

	"ovshighway/internal/flow"
	"ovshighway/internal/mempool"
	"ovshighway/internal/pkt"
)

// SetInjectionPool provides the buffer pool used for controller packet-out
// injection. Must be set before InjectPacketOut is used.
func (s *Switch) SetInjectionPool(p *mempool.Pool) {
	s.injectMu.Lock()
	s.injectPool = p
	s.injectMu.Unlock()
}

// InjectPacketOut executes a controller packet-out: the frame is copied into
// a datapath buffer and the action list is executed immediately on the
// control thread. Packets output to a dpdkr port travel the NORMAL channel —
// which is exactly why the modified PMD keeps polling it while a bypass is
// active.
func (s *Switch) InjectPacketOut(inPort uint32, actions flow.Actions, data []byte) error {
	s.injectMu.Lock()
	pool := s.injectPool
	s.injectMu.Unlock()
	if pool == nil {
		return errors.New("vswitch: no injection pool configured")
	}
	b, err := pool.Get()
	if err != nil {
		return err
	}
	if err := b.SetBytes(data); err != nil {
		b.Free()
		return err
	}
	b.Port = inPort

	var parser pkt.Parser
	_ = parser.Parse(b.Bytes())
	snap := s.portsSnap.Load()
	moved := false
	for _, a := range actions {
		switch a.Type {
		case flow.ActOutput:
			e := snap.entry(a.Port)
			if e == nil {
				// Output to an unknown port is a no-op; the buffer stays
				// live for later actions and is freed at the end if never
				// moved.
				continue
			}
			out := b
			if moved {
				out = b.Clone()
			}
			e.send([]*mempool.Buf{out}, true)
			moved = true
		case flow.ActController:
			ev := PacketInEvent{
				InPort: inPort,
				Reason: 1, // OFPR_ACTION
				Data:   s.borrowPuntData(b.Bytes()),
			}
			select {
			case s.packetIns <- ev:
			default:
				s.ReleasePacketIn(ev)
			}
		case flow.ActSetEthSrc:
			if !moved && parser.Decoded.Has(pkt.LayerEthernet) {
				parser.Eth.SetSrc(a.MAC)
			}
		case flow.ActSetEthDst:
			if !moved && parser.Decoded.Has(pkt.LayerEthernet) {
				parser.Eth.SetDst(a.MAC)
			}
		case flow.ActDecTTL:
			if !moved && parser.Decoded.Has(pkt.LayerIPv4) {
				ttl := parser.IPv4.TTL()
				if ttl <= 1 {
					b.Free()
					return nil
				}
				parser.IPv4.SetTTL(ttl - 1)
				parser.IPv4.UpdateChecksum()
			}
		case flow.ActDrop:
			if !moved {
				b.Free()
			}
			return nil
		}
	}
	if !moved {
		b.Free()
	}
	return nil
}
