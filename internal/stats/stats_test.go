package stats

import (
	"sync"
	"testing"
	"time"
)

func TestBlockAccounting(t *testing.T) {
	var b Block
	b.AccountTx(10, 640)
	b.AccountRx(8, 512)
	b.TxDrops.Add(2)
	s := b.Read()
	if s.TxPackets != 10 || s.TxBytes != 640 || s.RxPackets != 8 || s.RxBytes != 512 || s.TxDrops != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestBlockConcurrentWriters(t *testing.T) {
	var b Block
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				b.AccountTx(1, 64)
			}
		}()
	}
	wg.Wait()
	if s := b.Read(); s.TxPackets != 80000 || s.TxBytes != 80000*64 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h LatencyHist
	// 90 samples at ~1µs, 10 at ~1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < time.Microsecond || p50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < time.Millisecond || p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	mean := h.Mean()
	// mean ≈ (90*1µs + 10*1ms)/100 ≈ 100.9µs
	if mean < 50*time.Microsecond || mean > 200*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistEmptyAndReset(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistBucketEdges(t *testing.T) {
	var h LatencyHist
	h.Observe(0)            // clamps to bucket 0
	h.Observe(-time.Second) // negative: clamps to bucket 0, not counted in sum
	h.Observe(time.Duration(1) << 62)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	// Quantile of the huge sample must not overflow into nonsense.
	if q := h.Quantile(1.0); q <= 0 {
		t.Fatalf("q100 = %v", q)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 40000 {
		t.Fatalf("count = %d", h.Count())
	}
}
