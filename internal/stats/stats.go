// Package stats provides atomic counter blocks shared between the in-VM PMD
// and the vSwitch.
//
// In the paper, packets crossing a bypass channel never touch the vSwitch, so
// OVS cannot count them; instead the PMD increments counters in a shared
// memory region and OVS reads that region when exporting OpenFlow statistics.
// Block is that region's equivalent: written lock-free by one PMD, read at
// any time by the stats exporter.
package stats

import "sync/atomic"

// Block is one direction's bypass counters (one per directed p-2-p link).
type Block struct {
	TxPackets atomic.Uint64
	TxBytes   atomic.Uint64
	RxPackets atomic.Uint64
	RxBytes   atomic.Uint64
	// TxDrops counts packets the PMD had to drop because the bypass ring was
	// full (the peer VM is not draining fast enough).
	TxDrops atomic.Uint64
}

// Snapshot is a point-in-time copy of a Block.
type Snapshot struct {
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
	TxDrops            uint64
}

// Read returns a snapshot of the counters.
func (b *Block) Read() Snapshot {
	return Snapshot{
		TxPackets: b.TxPackets.Load(),
		TxBytes:   b.TxBytes.Load(),
		RxPackets: b.RxPackets.Load(),
		RxBytes:   b.RxBytes.Load(),
		TxDrops:   b.TxDrops.Load(),
	}
}

// AccountTx records packets sent through the bypass.
func (b *Block) AccountTx(packets, bytes uint64) {
	b.TxPackets.Add(packets)
	b.TxBytes.Add(bytes)
}

// AccountRx records packets received from the bypass.
func (b *Block) AccountRx(packets, bytes uint64) {
	b.RxPackets.Add(packets)
	b.RxBytes.Add(bytes)
}

// PortCounters are the host-side per-port datapath counters the vSwitch
// maintains for traffic it moves itself (the normal channel).
type PortCounters struct {
	RxPackets atomic.Uint64
	RxBytes   atomic.Uint64
	TxPackets atomic.Uint64
	TxBytes   atomic.Uint64
	RxDropped atomic.Uint64
	TxDropped atomic.Uint64
}
