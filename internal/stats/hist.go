package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of LatencyHist: power-of-two nanosecond
// buckets from 1ns (bucket 0) to ~9.2s (bucket 62), plus an overflow bucket.
const histBuckets = 64

// LatencyHist is a lock-free log₂ latency histogram. Writers call Observe
// concurrently from datapath goroutines; readers take quantiles at any time.
type LatencyHist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketFor maps a duration to its log₂ bucket index.
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := 63 - leadingZeros64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func leadingZeros64(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	if ns := d.Nanoseconds(); ns > 0 {
		h.sum.Add(uint64(ns))
	}
}

// Count returns the number of samples.
func (h *LatencyHist) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of the samples.
func (h *LatencyHist) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the top edge of the bucket containing it. Resolution is a factor of two,
// which is ample for the order-of-magnitude comparisons of experiment E3.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= want {
			if i >= 62 {
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(int64(1) << uint(i+1))
		}
	}
	return time.Duration(math.MaxInt64)
}

// Reset zeroes the histogram.
func (h *LatencyHist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}
