package vm

import (
	"net"
	"testing"

	"ovshighway/internal/ctrlproto"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/shm"
)

func testVM(t *testing.T) (*VM, *shm.Registry, *dpdkr.PMD) {
	t.Helper()
	reg := shm.NewRegistry()
	v := New("vm1", reg)
	_, pmd, err := dpdkr.NewPort(1, "dpdkr1", 64)
	if err != nil {
		t.Fatal(err)
	}
	v.AddPMD(1, pmd)
	return v, reg, pmd
}

func TestPlugUnplugDevice(t *testing.T) {
	v, reg, _ := testVM(t)
	link, _ := dpdkr.NewLink("seg1", 1, 2, 64)
	seg, _ := reg.Create("seg1", link)

	if err := v.PlugDevice("seg1"); err != nil {
		t.Fatal(err)
	}
	// Plugging again is refcounted (same-VM bypass ends share the segment).
	if err := v.PlugDevice("seg1"); err != nil {
		t.Fatalf("refcounted re-plug failed: %v", err)
	}
	if got := seg.Refs(); got != 3 {
		t.Fatalf("refs = %d, want 3 (creator + 2 plugs)", got)
	}
	if err := v.UnplugDevice("seg1"); err != nil {
		t.Fatal(err)
	}
	if len(v.DeviceNames()) != 1 {
		t.Fatal("device vanished while references remain")
	}
	if err := v.UnplugDevice("seg1"); err != nil {
		t.Fatal(err)
	}
	if err := v.UnplugDevice("seg1"); err == nil {
		t.Fatal("unplug of absent device accepted")
	}
	if got := seg.Refs(); got != 1 {
		t.Fatalf("refs = %d, want 1", got)
	}
}

func TestPlugUnknownSegmentFails(t *testing.T) {
	v, _, _ := testVM(t)
	if err := v.PlugDevice("ghost"); err == nil {
		t.Fatal("plugged nonexistent segment")
	}
}

func TestCtrlConfigureRequiresPluggedDevice(t *testing.T) {
	v, reg, pmd := testVM(t)
	link, _ := dpdkr.NewLink("seg1", 1, 2, 64)
	reg.Create("seg1", link)

	host, guest := net.Pipe()
	defer host.Close()
	go v.ServeCtrl(guest)

	// The segment exists on the host but is NOT plugged: the VM must refuse
	// (isolation property — a VM cannot reach memory QEMU never mapped).
	err := ctrlproto.Call(host, ctrlproto.ConfigureBypass{Port: 1, TxRing: "seg1"})
	if err == nil {
		t.Fatal("configured bypass with unplugged segment")
	}
	if pmd.TxBypassLink() != nil {
		t.Fatal("PMD attached despite refusal")
	}

	// After plugging it works.
	if err := v.PlugDevice("seg1"); err != nil {
		t.Fatal(err)
	}
	if err := ctrlproto.Call(host, ctrlproto.ConfigureBypass{Port: 1, TxRing: "seg1"}); err != nil {
		t.Fatal(err)
	}
	if pmd.TxBypassLink() != link {
		t.Fatal("PMD not attached")
	}

	// Remove reverts.
	if err := ctrlproto.Call(host, ctrlproto.RemoveBypass{Port: 1, Dirs: ctrlproto.DirTx}); err != nil {
		t.Fatal(err)
	}
	if pmd.TxBypassLink() != nil {
		t.Fatal("PMD still attached after remove")
	}
}

func TestCtrlUnknownPortRejected(t *testing.T) {
	v, _, _ := testVM(t)
	host, guest := net.Pipe()
	defer host.Close()
	go v.ServeCtrl(guest)
	if err := ctrlproto.Call(host, ctrlproto.ConfigureBypass{Port: 99, TxRing: "x"}); err == nil {
		t.Fatal("configured PMD for unknown port")
	}
	if err := ctrlproto.Call(host, ctrlproto.RemoveBypass{Port: 99, Dirs: ctrlproto.DirTx}); err == nil {
		t.Fatal("removed bypass for unknown port")
	}
}

func TestShutdownUnplugsAll(t *testing.T) {
	v, reg, _ := testVM(t)
	for _, name := range []string{"a", "b"} {
		link, _ := dpdkr.NewLink(name, 1, 2, 64)
		reg.Create(name, link)
		if err := v.PlugDevice(name); err != nil {
			t.Fatal(err)
		}
	}
	v.Shutdown()
	if got := len(v.DeviceNames()); got != 0 {
		t.Fatalf("devices after shutdown = %d", got)
	}
}

func TestPortsListing(t *testing.T) {
	v, _, _ := testVM(t)
	if got := v.Ports(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Ports = %v", got)
	}
	if v.PMD(1) == nil || v.PMD(2) != nil {
		t.Fatal("PMD lookup wrong")
	}
}
