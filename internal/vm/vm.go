// Package vm models the QEMU/KVM virtual machine contexts the VNFs run in.
//
// A VM is an isolation boundary: its guest code (the PMD and the VNF app)
// can only reach shared-memory segments that have been explicitly plugged
// into its device table — the ivshmem hot-plug step of the paper. The VM
// also terminates the guest end of the virtio-serial control channel on
// which the compute agent reconfigures PMD instances.
package vm

import (
	"fmt"
	"io"
	"sync"

	"ovshighway/internal/ctrlproto"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/shm"
)

// VM is one virtual machine context.
type VM struct {
	Name string

	reg *shm.Registry

	mu      sync.Mutex
	devices map[string]*device    // plugged ivshmem devices by name
	pmds    map[uint32]*dpdkr.PMD // guest PMD instances by host port id
}

// device is one plugged ivshmem region. refs counts plug operations: when a
// VM hosts both ends of a bypass (two of its own ports linked through the
// switch), the same segment is plugged once per end.
type device struct {
	seg  *shm.Segment
	refs int
}

// New creates an empty VM attached to the host shm registry.
func New(name string, reg *shm.Registry) *VM {
	return &VM{
		Name:    name,
		reg:     reg,
		devices: make(map[string]*device),
		pmds:    make(map[uint32]*dpdkr.PMD),
	}
}

// AddPMD installs the guest driver for a dpdkr port (done at VM creation,
// when the compute agent connects the VM to its ports).
func (v *VM) AddPMD(port uint32, pmd *dpdkr.PMD) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pmds[port] = pmd
}

// PMD returns the guest driver for a port (nil if absent). VNF applications
// obtain their port handles through this.
func (v *VM) PMD(port uint32) *dpdkr.PMD {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.pmds[port]
}

// Ports returns the ids of all ports with installed PMDs.
func (v *VM) Ports() []uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]uint32, 0, len(v.pmds))
	for id := range v.pmds {
		out = append(out, id)
	}
	return out
}

// PlugDevice maps the named segment into the VM (QEMU ivshmem device_add).
// Called by the compute agent, never by guest code. Re-plugging an
// already-present device increments its reference count.
func (v *VM) PlugDevice(segment string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d, ok := v.devices[segment]; ok {
		if _, err := v.reg.Attach(segment); err != nil {
			return fmt.Errorf("vm %s: plug %q: %w", v.Name, segment, err)
		}
		d.refs++
		return nil
	}
	s, err := v.reg.Attach(segment)
	if err != nil {
		return fmt.Errorf("vm %s: plug %q: %w", v.Name, segment, err)
	}
	v.devices[segment] = &device{seg: s, refs: 1}
	return nil
}

// UnplugDevice drops one plug reference, removing the device from the table
// when the last reference goes.
func (v *VM) UnplugDevice(segment string) error {
	v.mu.Lock()
	d, ok := v.devices[segment]
	if ok {
		d.refs--
		if d.refs == 0 {
			delete(v.devices, segment)
		}
	}
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("vm %s: device %q not plugged", v.Name, segment)
	}
	v.reg.Detach(d.seg)
	return nil
}

// DeviceNames lists plugged devices (diagnostic).
func (v *VM) DeviceNames() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.devices))
	for n := range v.devices {
		out = append(out, n)
	}
	return out
}

// lookupLink resolves a plugged device to its bypass link. This is the
// isolation check: a segment that exists on the host but was never plugged
// into this VM is unreachable.
func (v *VM) lookupLink(segment string) (*dpdkr.Link, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.devices[segment]
	if !ok {
		return nil, fmt.Errorf("vm %s: no device %q", v.Name, segment)
	}
	l, ok := d.seg.Obj.(*dpdkr.Link)
	if !ok {
		return nil, fmt.Errorf("vm %s: device %q is not a bypass link", v.Name, segment)
	}
	return l, nil
}

// ServeCtrl runs the guest end of the virtio-serial control channel until
// the stream errors (agent closed it) — normally run in its own goroutine.
// It applies ConfigureBypass/RemoveBypass commands to the addressed PMD and
// acknowledges each one.
func (v *VM) ServeCtrl(conn io.ReadWriter) {
	for {
		m, err := ctrlproto.Read(conn)
		if err != nil {
			return
		}
		ack := v.apply(m)
		if err := ctrlproto.Write(conn, ack); err != nil {
			return
		}
	}
}

func (v *VM) apply(m ctrlproto.Msg) ctrlproto.Ack {
	switch cmd := m.(type) {
	case ctrlproto.ConfigureBypass:
		pmd := v.PMD(cmd.Port)
		if pmd == nil {
			return ctrlproto.Ack{Detail: fmt.Sprintf("no PMD for port %d", cmd.Port)}
		}
		if cmd.TxRing != "" {
			l, err := v.lookupLink(cmd.TxRing)
			if err != nil {
				return ctrlproto.Ack{Detail: err.Error()}
			}
			pmd.AttachTxBypass(l)
		}
		if cmd.RxRing != "" {
			l, err := v.lookupLink(cmd.RxRing)
			if err != nil {
				return ctrlproto.Ack{Detail: err.Error()}
			}
			pmd.AttachRxBypass(l)
		}
		return ctrlproto.Ack{OK: true}
	case ctrlproto.RemoveBypass:
		pmd := v.PMD(cmd.Port)
		if pmd == nil {
			return ctrlproto.Ack{Detail: fmt.Sprintf("no PMD for port %d", cmd.Port)}
		}
		// Detach then wait for the lcore's grace period before acking: once
		// the agent sees the Ack, no datapath code can still be touching the
		// old bypass ring (the manager may drain and free it immediately).
		if cmd.Dirs&ctrlproto.DirTx != 0 {
			pmd.DetachTxBypass()
			pmd.QuiesceTx()
		}
		if cmd.Dirs&ctrlproto.DirRx != 0 {
			pmd.DetachRxBypass()
			pmd.QuiesceRx()
		}
		return ctrlproto.Ack{OK: true}
	default:
		return ctrlproto.Ack{Detail: fmt.Sprintf("unsupported command %T", m)}
	}
}

// Shutdown unplugs every device reference (VM destruction).
func (v *VM) Shutdown() {
	v.mu.Lock()
	refs := make(map[string]int, len(v.devices))
	for n, d := range v.devices {
		refs[n] = d.refs
	}
	v.mu.Unlock()
	for n, k := range refs {
		for i := 0; i < k; i++ {
			_ = v.UnplugDevice(n)
		}
	}
}
