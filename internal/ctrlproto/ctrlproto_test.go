package ctrlproto

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(%T): %v", m, err)
	}
	return got
}

func TestRoundTrips(t *testing.T) {
	cases := []Msg{
		ConfigureBypass{Port: 3, TxRing: "bypass-3-4", RxRing: "bypass-4-3"},
		ConfigureBypass{Port: 1, TxRing: "only-tx"},
		ConfigureBypass{Port: 9},
		RemoveBypass{Port: 5, Dirs: DirTx | DirRx},
		RemoveBypass{Port: 7, Dirs: DirRx},
		Ack{OK: true},
		Ack{OK: false, Detail: "no such port"},
	}
	for i, m := range cases {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("case %d: got %+v, want %+v", i, got, m)
		}
	}
}

func TestReadRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{TypeAck, 0xff, 0xff, 0xff, 0xff})
	if _, err := Read(&buf); err == nil {
		t.Fatal("oversized body accepted")
	}
}

func TestReadRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{99, 0, 0, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	// Header promises 10 bytes, stream has 3.
	r := bytes.NewReader([]byte{TypeAck, 0, 0, 0, 10, 1, 0, 0})
	if _, err := Read(r); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Empty stream yields EOF.
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream err = %v, want EOF", err)
	}
}

func TestCallOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		m, err := Read(server)
		if err != nil {
			done <- err
			return
		}
		cfg, ok := m.(ConfigureBypass)
		if !ok || cfg.Port != 2 {
			done <- Write(server, Ack{OK: false, Detail: "bad command"})
			return
		}
		done <- Write(server, Ack{OK: true})
	}()

	if err := Call(client, ConfigureBypass{Port: 2, TxRing: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCallRejected(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		Read(server)
		Write(server, Ack{OK: false, Detail: "nope"})
	}()
	err := Call(client, RemoveBypass{Port: 1, Dirs: DirTx})
	if err == nil {
		t.Fatal("negative ack not surfaced")
	}
}

// Property: decode never panics on arbitrary framed input.
func TestQuickReadTotal(t *testing.T) {
	f := func(typ uint8, body []byte) bool {
		if len(body) > maxBodyLen {
			body = body[:maxBodyLen]
		}
		var buf bytes.Buffer
		buf.WriteByte(typ)
		var l [4]byte
		be.PutUint32(l[:], uint32(len(body)))
		buf.Write(l[:])
		buf.Write(body)
		_, _ = Read(&buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConfigureBypass round-trips for arbitrary names.
func TestQuickConfigureRoundTrip(t *testing.T) {
	f := func(port uint32, tx, rx string) bool {
		if len(tx) > 1000 {
			tx = tx[:1000]
		}
		if len(rx) > 1000 {
			rx = rx[:1000]
		}
		m := ConfigureBypass{Port: port, TxRing: tx, RxRing: rx}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
