// Package ctrlproto is the framed binary control protocol the compute agent
// speaks to the in-VM PMD over the virtio-serial channel. It carries the
// bypass (re)configuration commands of the paper's step (ii): after plugging
// the ivshmem device, the agent tells the PMD instance which rings to use.
//
// Wire format: every message is
//
//	type(1) | length(4, big endian, body only) | body
//
// Body fields are fixed-width integers and length-prefixed strings.
package ctrlproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

var be = binary.BigEndian

// Message type discriminators.
const (
	// TypeConfigureBypass tells the PMD serving Port to start using the
	// named plugged devices as its bypass TX and/or RX rings. Empty names
	// leave that direction unchanged.
	TypeConfigureBypass uint8 = 1
	// TypeRemoveBypass tells the PMD to stop using its bypass ring(s) and
	// revert to the normal channel. Directions selected by flags.
	TypeRemoveBypass uint8 = 2
	// TypeAck acknowledges a command.
	TypeAck uint8 = 3
)

// Direction flags for RemoveBypass.
const (
	DirTx uint8 = 1 << iota
	DirRx
)

// maxBodyLen bounds accepted message bodies.
const maxBodyLen = 4096

// Msg is a decoded control message.
type Msg interface {
	msgType() uint8
	encodeBody(b []byte) []byte
}

// ConfigureBypass instructs the PMD for Port to attach bypass rings.
type ConfigureBypass struct {
	Port   uint32
	TxRing string // plugged device name for the TX direction ("" = none)
	RxRing string // plugged device name for the RX direction ("" = none)
}

func (ConfigureBypass) msgType() uint8 { return TypeConfigureBypass }
func (m ConfigureBypass) encodeBody(b []byte) []byte {
	b = be.AppendUint32(b, m.Port)
	b = appendString(b, m.TxRing)
	return appendString(b, m.RxRing)
}

// RemoveBypass instructs the PMD for Port to drop bypass directions.
type RemoveBypass struct {
	Port uint32
	Dirs uint8 // DirTx | DirRx
}

func (RemoveBypass) msgType() uint8 { return TypeRemoveBypass }
func (m RemoveBypass) encodeBody(b []byte) []byte {
	b = be.AppendUint32(b, m.Port)
	return append(b, m.Dirs)
}

// Ack reports command completion.
type Ack struct {
	OK     bool
	Detail string
}

func (Ack) msgType() uint8 { return TypeAck }
func (m Ack) encodeBody(b []byte) []byte {
	ok := uint8(0)
	if m.OK {
		ok = 1
	}
	b = append(b, ok)
	return appendString(b, m.Detail)
}

func appendString(b []byte, s string) []byte {
	b = be.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("ctrlproto: truncated string length")
	}
	n := int(be.Uint16(b[0:2]))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("ctrlproto: truncated string body")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// Write frames and writes one message.
func Write(w io.Writer, m Msg) error {
	body := m.encodeBody(nil)
	hdr := make([]byte, 5, 5+len(body))
	hdr[0] = m.msgType()
	be.PutUint32(hdr[1:5], uint32(len(body)))
	_, err := w.Write(append(hdr, body...))
	return err
}

// Read reads and decodes one message.
func Read(r io.Reader) (Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	blen := int(be.Uint32(hdr[1:5]))
	if blen > maxBodyLen {
		return nil, fmt.Errorf("ctrlproto: body %d exceeds limit", blen)
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	switch hdr[0] {
	case TypeConfigureBypass:
		if len(body) < 4 {
			return nil, fmt.Errorf("ctrlproto: short configure body")
		}
		m := ConfigureBypass{Port: be.Uint32(body[0:4])}
		var err error
		rest := body[4:]
		if m.TxRing, rest, err = readString(rest); err != nil {
			return nil, err
		}
		if m.RxRing, _, err = readString(rest); err != nil {
			return nil, err
		}
		return m, nil
	case TypeRemoveBypass:
		if len(body) < 5 {
			return nil, fmt.Errorf("ctrlproto: short remove body")
		}
		return RemoveBypass{Port: be.Uint32(body[0:4]), Dirs: body[4]}, nil
	case TypeAck:
		if len(body) < 1 {
			return nil, fmt.Errorf("ctrlproto: short ack body")
		}
		m := Ack{OK: body[0] == 1}
		var err error
		if m.Detail, _, err = readString(body[1:]); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("ctrlproto: unknown type %d", hdr[0])
	}
}

// Call writes a command and reads the Ack, returning an error when the Ack
// is negative or the peer misbehaves.
func Call(rw io.ReadWriter, m Msg) error {
	if err := Write(rw, m); err != nil {
		return err
	}
	reply, err := Read(rw)
	if err != nil {
		return err
	}
	ack, ok := reply.(Ack)
	if !ok {
		return fmt.Errorf("ctrlproto: reply %T, want Ack", reply)
	}
	if !ack.OK {
		return fmt.Errorf("ctrlproto: command rejected: %s", ack.Detail)
	}
	return nil
}
