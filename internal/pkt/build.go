package pkt

import "fmt"

// UDPSpec describes a UDP/IPv4 frame to synthesize. It is the workload
// vocabulary of the benchmark harness: the paper's 64-byte bidirectional
// traffic is UDPSpec with FrameLen=MinFrame.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IP4
	SrcPort, DstPort uint16
	// VlanID, when non-zero, inserts an 802.1Q tag carrying this VLAN id
	// between the MAC addresses and the IPv4 EtherType (trunk-lane traffic).
	VlanID uint16
	// VlanPCP is the 3-bit 802.1Q priority code point stamped into the tag
	// (only meaningful with a non-zero VlanID). The trunk's DRR scheduler
	// classes frames by this field.
	VlanPCP  uint8
	TTL      uint8 // default 64
	Payload  []byte
	FrameLen int // pad frame (with zero bytes) up to this length; 0 = no padding
}

// BuildUDP serializes the spec into dst and returns the frame length.
// dst must be large enough; the frame is Ethernet[+802.1Q]+IPv4+UDP+payload,
// padded to FrameLen if set. Checksums (IPv4 header and UDP) are filled in.
func BuildUDP(dst []byte, s UDPSpec) (int, error) {
	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	l2Len := EthernetLen
	if s.VlanID != 0 {
		l2Len += VLANLen
	}
	ipLen := IPv4MinLen + UDPLen + len(s.Payload)
	frameLen := l2Len + ipLen
	if s.FrameLen > frameLen {
		frameLen = s.FrameLen
	}
	if len(dst) < frameLen {
		return 0, fmt.Errorf("pkt: BuildUDP: dst %d < frame %d", len(dst), frameLen)
	}
	for i := l2Len + ipLen; i < frameLen; i++ {
		dst[i] = 0
	}

	copy(dst[0:6], s.DstMAC[:])
	copy(dst[6:12], s.SrcMAC[:])
	if s.VlanID != 0 {
		be.PutUint16(dst[12:14], EtherTypeVLAN)
		be.PutUint16(dst[14:16], uint16(s.VlanPCP&0x07)<<13|s.VlanID&0x0fff)
		be.PutUint16(dst[16:18], EtherTypeIPv4)
	} else {
		be.PutUint16(dst[12:14], EtherTypeIPv4)
	}

	ip := dst[l2Len:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	be.PutUint16(ip[2:4], uint16(ipLen))
	be.PutUint16(ip[4:6], 0) // identification
	be.PutUint16(ip[6:8], 0x4000)
	ip[8] = ttl
	ip[9] = ProtoUDP
	be.PutUint16(ip[10:12], 0)
	copy(ip[12:16], s.SrcIP[:])
	copy(ip[16:20], s.DstIP[:])
	be.PutUint16(ip[10:12], Checksum(ip[:IPv4MinLen]))

	udp := ip[IPv4MinLen:]
	be.PutUint16(udp[0:2], s.SrcPort)
	be.PutUint16(udp[2:4], s.DstPort)
	be.PutUint16(udp[4:6], uint16(UDPLen+len(s.Payload)))
	be.PutUint16(udp[6:8], 0)
	copy(udp[UDPLen:], s.Payload)
	seg := udp[:UDPLen+len(s.Payload)]
	be.PutUint16(udp[6:8], L4Checksum(s.SrcIP, s.DstIP, ProtoUDP, seg))

	return frameLen, nil
}

// TCPSpec describes a TCP/IPv4 frame (no options) to synthesize.
type TCPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IP4
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	TTL              uint8
	Payload          []byte
}

// BuildTCP serializes the spec into dst and returns the frame length.
func BuildTCP(dst []byte, s TCPSpec) (int, error) {
	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	win := s.Window
	if win == 0 {
		win = 65535
	}
	ipLen := IPv4MinLen + TCPMinLen + len(s.Payload)
	frameLen := EthernetLen + ipLen
	if len(dst) < frameLen {
		return 0, fmt.Errorf("pkt: BuildTCP: dst %d < frame %d", len(dst), frameLen)
	}

	copy(dst[0:6], s.DstMAC[:])
	copy(dst[6:12], s.SrcMAC[:])
	be.PutUint16(dst[12:14], EtherTypeIPv4)

	ip := dst[EthernetLen:]
	ip[0] = 0x45
	ip[1] = 0
	be.PutUint16(ip[2:4], uint16(ipLen))
	be.PutUint16(ip[4:6], 0)
	be.PutUint16(ip[6:8], 0x4000)
	ip[8] = ttl
	ip[9] = ProtoTCP
	be.PutUint16(ip[10:12], 0)
	copy(ip[12:16], s.SrcIP[:])
	copy(ip[16:20], s.DstIP[:])
	be.PutUint16(ip[10:12], Checksum(ip[:IPv4MinLen]))

	tcp := ip[IPv4MinLen:]
	be.PutUint16(tcp[0:2], s.SrcPort)
	be.PutUint16(tcp[2:4], s.DstPort)
	be.PutUint32(tcp[4:8], s.Seq)
	be.PutUint32(tcp[8:12], s.Ack)
	tcp[12] = 5 << 4 // data offset 5 words
	tcp[13] = s.Flags & 0x3f
	be.PutUint16(tcp[14:16], win)
	be.PutUint16(tcp[16:18], 0)
	be.PutUint16(tcp[18:20], 0) // urgent pointer
	copy(tcp[TCPMinLen:], s.Payload)
	seg := tcp[:TCPMinLen+len(s.Payload)]
	be.PutUint16(tcp[16:18], L4Checksum(s.SrcIP, s.DstIP, ProtoTCP, seg))

	return frameLen, nil
}

// PushVlan rewrites frame into the 802.1Q-tagged version of the packet that
// starts at frame[VLANLen:] — the caller has already grown the head by
// VLANLen bytes (mempool.Buf.Prepend on the datapath). The MAC addresses
// move to the front and the tag (TPID 0x8100, the given vid and pcp) slots
// in between; the original EtherType is already in place after the tag.
// The rewrite is in place and allocation-free.
func PushVlan(frame []byte, vid uint16, pcp uint8) error {
	if len(frame) < VLANLen+EthernetLen {
		return fmt.Errorf("pkt: PushVlan: frame %d bytes, need %d", len(frame), VLANLen+EthernetLen)
	}
	copy(frame[0:12], frame[VLANLen:VLANLen+12])
	be.PutUint16(frame[12:14], EtherTypeVLAN)
	be.PutUint16(frame[14:16], uint16(pcp&0x07)<<13|vid&0x0fff)
	return nil
}

// PopVlan removes the outermost 802.1Q tag in place: the MAC addresses move
// back by VLANLen bytes so the untagged packet starts at frame[VLANLen:],
// and the stripped vid is returned. The caller must then trim VLANLen bytes
// off the packet head (mempool.Buf.Adj on the datapath). Errors when the
// frame is not tagged. Allocation-free on success.
func PopVlan(frame []byte) (uint16, error) {
	if len(frame) < EthernetLen+VLANLen {
		return 0, fmt.Errorf("pkt: PopVlan: frame %d bytes, need %d", len(frame), EthernetLen+VLANLen)
	}
	if be.Uint16(frame[12:14]) != EtherTypeVLAN {
		return 0, fmt.Errorf("pkt: PopVlan: frame not 802.1Q tagged (0x%04x)", be.Uint16(frame[12:14]))
	}
	vid := be.Uint16(frame[14:16]) & 0x0fff
	copy(frame[VLANLen:VLANLen+12], frame[0:12])
	return vid, nil
}

// FrameVlanID peeks the 802.1Q VLAN id of a frame without a full parse —
// the per-frame demultiplex step of the trunk fabric. ok is false when the
// frame is too short or not tagged.
func FrameVlanID(frame []byte) (vid uint16, ok bool) {
	if len(frame) < EthernetLen+VLANLen || be.Uint16(frame[12:14]) != EtherTypeVLAN {
		return 0, false
	}
	return be.Uint16(frame[14:16]) & 0x0fff, true
}

// FrameVlanPCP peeks the 802.1Q priority code point of a frame without a
// full parse — the per-frame class demultiplex step of the trunk's DRR
// scheduler. ok is false when the frame is too short or not tagged.
func FrameVlanPCP(frame []byte) (pcp uint8, ok bool) {
	if len(frame) < EthernetLen+VLANLen || be.Uint16(frame[12:14]) != EtherTypeVLAN {
		return 0, false
	}
	return frame[14] >> 5, true
}

// BuildARP serializes an Ethernet/IPv4 ARP message into dst.
func BuildARP(dst []byte, op uint16, senderMAC MAC, senderIP IP4, targetMAC MAC, targetIP IP4) (int, error) {
	frameLen := EthernetLen + ARPLen
	if len(dst) < frameLen {
		return 0, fmt.Errorf("pkt: BuildARP: dst %d < frame %d", len(dst), frameLen)
	}
	ethDst := targetMAC
	if op == ARPRequest {
		ethDst = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	}
	copy(dst[0:6], ethDst[:])
	copy(dst[6:12], senderMAC[:])
	be.PutUint16(dst[12:14], EtherTypeARP)

	a := dst[EthernetLen:]
	be.PutUint16(a[0:2], 1)             // hardware: ethernet
	be.PutUint16(a[2:4], EtherTypeIPv4) // protocol: ipv4
	a[4] = 6
	a[5] = 4
	be.PutUint16(a[6:8], op)
	copy(a[8:14], senderMAC[:])
	copy(a[14:18], senderIP[:])
	copy(a[18:24], targetMAC[:])
	copy(a[24:28], targetIP[:])
	return frameLen, nil
}
