package pkt

// Checksum computes the RFC 1071 internet checksum over b.
func Checksum(b []byte) uint16 {
	return finish(sum(b, 0))
}

func sum(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

// L4Checksum computes the transport checksum for an IPv4 packet: the
// pseudo-header (src, dst, proto, length) followed by the transport segment.
// The checksum field inside seg must be zeroed by the caller first.
func L4Checksum(src, dst IP4, proto uint8, seg []byte) uint16 {
	acc := sum(src[:], 0)
	acc = sum(dst[:], acc)
	acc += uint32(proto)
	acc += uint32(len(seg))
	acc = sum(seg, acc)
	c := finish(acc)
	// UDP transmits an all-zero checksum as 0xffff (0 means "no checksum").
	if proto == ProtoUDP && c == 0 {
		c = 0xffff
	}
	return c
}
