// Package pkt implements zero-copy packet header views, a preallocated
// single-pass parser, and packet builders for Ethernet, VLAN, ARP, IPv4,
// IPv6, UDP, TCP and ICMPv4.
//
// The decoding style follows the gopacket DecodingLayerParser idiom: the
// caller owns a Parser whose header structs are reused across packets, so
// per-packet decoding performs no allocation. All views alias the input
// buffer; they are valid only until the buffer is reused.
package pkt

import (
	"encoding/binary"
	"fmt"
)

// be is the network byte order used by every header codec in this package.
var be = binary.BigEndian

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers understood by the parser.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Header sizes in bytes.
const (
	EthernetLen = 14
	VLANLen     = 4
	ARPLen      = 28
	IPv4MinLen  = 20
	IPv6Len     = 40
	UDPLen      = 8
	TCPMinLen   = 20
	ICMPLen     = 8

	// MinFrame is the canonical 64-byte minimum Ethernet frame used by the
	// paper's throughput experiments (60 bytes on the wire + 4-byte FCS,
	// which we do not materialize; generators pad to 60).
	MinFrame = 60
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the address in the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IP4 is an IPv4 address in network byte order.
type IP4 [4]byte

// String renders dotted-quad form.
func (a IP4) String() string { return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3]) }

// Uint32 returns the address as a big-endian integer.
func (a IP4) Uint32() uint32 { return be.Uint32(a[:]) }

// IP4FromUint32 converts a big-endian integer to an address.
func IP4FromUint32(v uint32) IP4 {
	var a IP4
	be.PutUint32(a[:], v)
	return a
}

// IP6 is an IPv6 address.
type IP6 [16]byte

// String renders the full uncompressed hex form (sufficient for logs/tests).
func (a IP6) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		be.Uint16(a[0:2]), be.Uint16(a[2:4]), be.Uint16(a[4:6]), be.Uint16(a[6:8]),
		be.Uint16(a[8:10]), be.Uint16(a[10:12]), be.Uint16(a[12:14]), be.Uint16(a[14:16]))
}

// Ethernet is a view over an Ethernet II header.
type Ethernet struct {
	raw []byte
}

// DecodeEthernet wraps b as an Ethernet header view.
func DecodeEthernet(b []byte) (Ethernet, error) {
	if len(b) < EthernetLen {
		return Ethernet{}, fmt.Errorf("pkt: ethernet: %d bytes, need %d", len(b), EthernetLen)
	}
	return Ethernet{raw: b}, nil
}

// Dst returns the destination MAC.
func (h Ethernet) Dst() MAC { var m MAC; copy(m[:], h.raw[0:6]); return m }

// Src returns the source MAC.
func (h Ethernet) Src() MAC { var m MAC; copy(m[:], h.raw[6:12]); return m }

// EtherType returns the EtherType field.
func (h Ethernet) EtherType() uint16 { return be.Uint16(h.raw[12:14]) }

// SetDst stores the destination MAC.
func (h Ethernet) SetDst(m MAC) { copy(h.raw[0:6], m[:]) }

// SetSrc stores the source MAC.
func (h Ethernet) SetSrc(m MAC) { copy(h.raw[6:12], m[:]) }

// SetEtherType stores the EtherType field.
func (h Ethernet) SetEtherType(t uint16) { be.PutUint16(h.raw[12:14], t) }

// Payload returns the bytes after the header.
func (h Ethernet) Payload() []byte { return h.raw[EthernetLen:] }

// VLAN is a view over an 802.1Q tag (the 4 bytes after the MAC addresses).
type VLAN struct {
	raw []byte
}

// DecodeVLAN wraps b (starting at the TPID) as a VLAN tag view.
func DecodeVLAN(b []byte) (VLAN, error) {
	if len(b) < VLANLen {
		return VLAN{}, fmt.Errorf("pkt: vlan: %d bytes, need %d", len(b), VLANLen)
	}
	return VLAN{raw: b}, nil
}

// VID returns the 12-bit VLAN identifier.
func (h VLAN) VID() uint16 { return be.Uint16(h.raw[0:2]) & 0x0fff }

// PCP returns the 3-bit priority code point.
func (h VLAN) PCP() uint8 { return uint8(h.raw[0] >> 5) }

// EtherType returns the encapsulated EtherType.
func (h VLAN) EtherType() uint16 { return be.Uint16(h.raw[2:4]) }

// SetVID stores the VLAN identifier, preserving PCP/DEI bits.
func (h VLAN) SetVID(vid uint16) {
	v := be.Uint16(h.raw[0:2])&0xf000 | vid&0x0fff
	be.PutUint16(h.raw[0:2], v)
}

// SetPCP stores the 3-bit priority code point, preserving DEI and VID.
func (h VLAN) SetPCP(pcp uint8) {
	h.raw[0] = h.raw[0]&0x1f | (pcp&0x07)<<5
}

// SetEtherType stores the encapsulated EtherType.
func (h VLAN) SetEtherType(t uint16) { be.PutUint16(h.raw[2:4], t) }

// Payload returns the bytes after the tag.
func (h VLAN) Payload() []byte { return h.raw[VLANLen:] }

// ARP is a view over an Ethernet/IPv4 ARP message.
type ARP struct {
	raw []byte
}

// ARP opcodes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// DecodeARP wraps b as an ARP view.
func DecodeARP(b []byte) (ARP, error) {
	if len(b) < ARPLen {
		return ARP{}, fmt.Errorf("pkt: arp: %d bytes, need %d", len(b), ARPLen)
	}
	return ARP{raw: b}, nil
}

// Op returns the ARP opcode.
func (h ARP) Op() uint16 { return be.Uint16(h.raw[6:8]) }

// SenderMAC returns the sender hardware address.
func (h ARP) SenderMAC() MAC { var m MAC; copy(m[:], h.raw[8:14]); return m }

// SenderIP returns the sender protocol address.
func (h ARP) SenderIP() IP4 { var a IP4; copy(a[:], h.raw[14:18]); return a }

// TargetMAC returns the target hardware address.
func (h ARP) TargetMAC() MAC { var m MAC; copy(m[:], h.raw[18:24]); return m }

// TargetIP returns the target protocol address.
func (h ARP) TargetIP() IP4 { var a IP4; copy(a[:], h.raw[24:28]); return a }

// IPv4 is a view over an IPv4 header.
type IPv4 struct {
	raw []byte
}

// DecodeIPv4 wraps b as an IPv4 view, validating version and IHL.
func DecodeIPv4(b []byte) (IPv4, error) {
	if len(b) < IPv4MinLen {
		return IPv4{}, fmt.Errorf("pkt: ipv4: %d bytes, need %d", len(b), IPv4MinLen)
	}
	if b[0]>>4 != 4 {
		return IPv4{}, fmt.Errorf("pkt: ipv4: version %d", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4MinLen || ihl > len(b) {
		return IPv4{}, fmt.Errorf("pkt: ipv4: bad ihl %d", ihl)
	}
	return IPv4{raw: b}, nil
}

// HeaderLen returns the header length in bytes (IHL*4).
func (h IPv4) HeaderLen() int { return int(h.raw[0]&0x0f) * 4 }

// TotalLen returns the total-length field.
func (h IPv4) TotalLen() uint16 { return be.Uint16(h.raw[2:4]) }

// TTL returns the time-to-live field.
func (h IPv4) TTL() uint8 { return h.raw[8] }

// Proto returns the protocol field.
func (h IPv4) Proto() uint8 { return h.raw[9] }

// Checksum returns the header checksum field.
func (h IPv4) Checksum() uint16 { return be.Uint16(h.raw[10:12]) }

// Src returns the source address.
func (h IPv4) Src() IP4 { var a IP4; copy(a[:], h.raw[12:16]); return a }

// Dst returns the destination address.
func (h IPv4) Dst() IP4 { var a IP4; copy(a[:], h.raw[16:20]); return a }

// DSCP returns the 6-bit differentiated services field.
func (h IPv4) DSCP() uint8 { return h.raw[1] >> 2 }

// SetTTL stores the TTL field (checksum must be recomputed by the caller).
func (h IPv4) SetTTL(ttl uint8) { h.raw[8] = ttl }

// SetSrc stores the source address.
func (h IPv4) SetSrc(a IP4) { copy(h.raw[12:16], a[:]) }

// SetDst stores the destination address.
func (h IPv4) SetDst(a IP4) { copy(h.raw[16:20], a[:]) }

// SetChecksum stores the header checksum field.
func (h IPv4) SetChecksum(c uint16) { be.PutUint16(h.raw[10:12], c) }

// UpdateChecksum recomputes and stores the header checksum.
func (h IPv4) UpdateChecksum() {
	h.SetChecksum(0)
	h.SetChecksum(Checksum(h.raw[:h.HeaderLen()]))
}

// VerifyChecksum reports whether the stored header checksum is valid.
func (h IPv4) VerifyChecksum() bool {
	return Checksum(h.raw[:h.HeaderLen()]) == 0
}

// Payload returns the bytes after the header, bounded by TotalLen when sane.
func (h IPv4) Payload() []byte {
	end := int(h.TotalLen())
	if end > len(h.raw) || end < h.HeaderLen() {
		end = len(h.raw)
	}
	return h.raw[h.HeaderLen():end]
}

// IPv6 is a view over an IPv6 fixed header.
type IPv6 struct {
	raw []byte
}

// DecodeIPv6 wraps b as an IPv6 view, validating the version.
func DecodeIPv6(b []byte) (IPv6, error) {
	if len(b) < IPv6Len {
		return IPv6{}, fmt.Errorf("pkt: ipv6: %d bytes, need %d", len(b), IPv6Len)
	}
	if b[0]>>4 != 6 {
		return IPv6{}, fmt.Errorf("pkt: ipv6: version %d", b[0]>>4)
	}
	return IPv6{raw: b}, nil
}

// NextHeader returns the next-header field.
func (h IPv6) NextHeader() uint8 { return h.raw[6] }

// HopLimit returns the hop-limit field.
func (h IPv6) HopLimit() uint8 { return h.raw[7] }

// PayloadLen returns the payload-length field.
func (h IPv6) PayloadLen() uint16 { return be.Uint16(h.raw[4:6]) }

// Src returns the source address.
func (h IPv6) Src() IP6 { var a IP6; copy(a[:], h.raw[8:24]); return a }

// Dst returns the destination address.
func (h IPv6) Dst() IP6 { var a IP6; copy(a[:], h.raw[24:40]); return a }

// Payload returns the bytes after the fixed header.
func (h IPv6) Payload() []byte { return h.raw[IPv6Len:] }

// UDP is a view over a UDP header.
type UDP struct {
	raw []byte
}

// DecodeUDP wraps b as a UDP view.
func DecodeUDP(b []byte) (UDP, error) {
	if len(b) < UDPLen {
		return UDP{}, fmt.Errorf("pkt: udp: %d bytes, need %d", len(b), UDPLen)
	}
	return UDP{raw: b}, nil
}

// SrcPort returns the source port.
func (h UDP) SrcPort() uint16 { return be.Uint16(h.raw[0:2]) }

// DstPort returns the destination port.
func (h UDP) DstPort() uint16 { return be.Uint16(h.raw[2:4]) }

// Length returns the UDP length field.
func (h UDP) Length() uint16 { return be.Uint16(h.raw[4:6]) }

// Checksum returns the checksum field.
func (h UDP) Checksum() uint16 { return be.Uint16(h.raw[6:8]) }

// SetSrcPort stores the source port.
func (h UDP) SetSrcPort(p uint16) { be.PutUint16(h.raw[0:2], p) }

// SetDstPort stores the destination port.
func (h UDP) SetDstPort(p uint16) { be.PutUint16(h.raw[2:4], p) }

// SetChecksum stores the checksum field (0 = none, legal for IPv4 UDP).
func (h UDP) SetChecksum(c uint16) { be.PutUint16(h.raw[6:8], c) }

// Datagram returns the full UDP datagram bytes (header plus payload), the
// span L4Checksum covers.
func (h UDP) Datagram() []byte { return h.raw }

// Payload returns the bytes after the header, bounded by the length field.
func (h UDP) Payload() []byte {
	end := int(h.Length())
	if end > len(h.raw) || end < UDPLen {
		end = len(h.raw)
	}
	return h.raw[UDPLen:end]
}

// TCP is a view over a TCP header.
type TCP struct {
	raw []byte
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// DecodeTCP wraps b as a TCP view, validating the data offset.
func DecodeTCP(b []byte) (TCP, error) {
	if len(b) < TCPMinLen {
		return TCP{}, fmt.Errorf("pkt: tcp: %d bytes, need %d", len(b), TCPMinLen)
	}
	off := int(b[12]>>4) * 4
	if off < TCPMinLen || off > len(b) {
		return TCP{}, fmt.Errorf("pkt: tcp: bad data offset %d", off)
	}
	return TCP{raw: b}, nil
}

// SrcPort returns the source port.
func (h TCP) SrcPort() uint16 { return be.Uint16(h.raw[0:2]) }

// DstPort returns the destination port.
func (h TCP) DstPort() uint16 { return be.Uint16(h.raw[2:4]) }

// Seq returns the sequence number.
func (h TCP) Seq() uint32 { return be.Uint32(h.raw[4:8]) }

// Ack returns the acknowledgment number.
func (h TCP) Ack() uint32 { return be.Uint32(h.raw[8:12]) }

// DataOff returns the header length in bytes.
func (h TCP) DataOff() int { return int(h.raw[12]>>4) * 4 }

// Flags returns the low 6 flag bits.
func (h TCP) Flags() uint8 { return h.raw[13] & 0x3f }

// Payload returns the bytes after the header and options.
func (h TCP) Payload() []byte { return h.raw[h.DataOff():] }

// SetSrcPort rewrites the source port in place (NAT). The caller owns the
// checksum fixup.
func (h TCP) SetSrcPort(p uint16) { be.PutUint16(h.raw[0:2], p) }

// SetDstPort rewrites the destination port in place (NAT). The caller owns
// the checksum fixup.
func (h TCP) SetDstPort(p uint16) { be.PutUint16(h.raw[2:4], p) }

// Checksum returns the TCP checksum field.
func (h TCP) Checksum() uint16 { return be.Uint16(h.raw[16:18]) }

// SetChecksum stores the TCP checksum field.
func (h TCP) SetChecksum(c uint16) { be.PutUint16(h.raw[16:18], c) }

// Segment returns the full TCP segment bytes (header, options and payload),
// the span L4Checksum covers.
func (h TCP) Segment() []byte { return h.raw }

// ICMP is a view over an ICMPv4 header.
type ICMP struct {
	raw []byte
}

// ICMPv4 types used in tests and examples.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// DecodeICMP wraps b as an ICMP view.
func DecodeICMP(b []byte) (ICMP, error) {
	if len(b) < ICMPLen {
		return ICMP{}, fmt.Errorf("pkt: icmp: %d bytes, need %d", len(b), ICMPLen)
	}
	return ICMP{raw: b}, nil
}

// Type returns the ICMP type.
func (h ICMP) Type() uint8 { return h.raw[0] }

// Code returns the ICMP code.
func (h ICMP) Code() uint8 { return h.raw[1] }
