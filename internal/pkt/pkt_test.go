package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = MAC{0x02, 0, 0, 0, 0, 0x0b}
	ipA  = IP4{10, 0, 0, 1}
	ipB  = IP4{10, 0, 0, 2}
)

func buildTestUDP(t testing.TB, payload []byte, frameLen int) []byte {
	t.Helper()
	buf := make([]byte, 2048)
	n, err := BuildUDP(buf, UDPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 1234, DstPort: 5678,
		Payload:  payload,
		FrameLen: frameLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "02:00:00:00:00:0a" {
		t.Errorf("MAC.String() = %q", got)
	}
	bc := MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if !bc.IsBroadcast() || !bc.IsMulticast() {
		t.Error("broadcast flags wrong")
	}
	if macA.IsBroadcast() || macA.IsMulticast() {
		t.Error("unicast misclassified")
	}
}

func TestIP4Conversions(t *testing.T) {
	a := IP4{192, 168, 1, 20}
	if a.String() != "192.168.1.20" {
		t.Errorf("String = %q", a.String())
	}
	if IP4FromUint32(a.Uint32()) != a {
		t.Error("Uint32 round-trip failed")
	}
}

func TestBuildParseUDPRoundTrip(t *testing.T) {
	payload := []byte("ping-payload")
	frame := buildTestUDP(t, payload, 0)

	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	want := LayerEthernet | LayerIPv4 | LayerUDP
	if !p.Decoded.Has(want) {
		t.Fatalf("Decoded = %b, want at least %b", p.Decoded, want)
	}
	if p.Eth.Src() != macA || p.Eth.Dst() != macB {
		t.Error("MAC mismatch")
	}
	if p.Eth.EtherType() != EtherTypeIPv4 {
		t.Error("ethertype mismatch")
	}
	if p.IPv4.Src() != ipA || p.IPv4.Dst() != ipB {
		t.Error("IP mismatch")
	}
	if p.IPv4.Proto() != ProtoUDP || p.IPv4.TTL() != 64 {
		t.Error("proto/ttl mismatch")
	}
	if !p.IPv4.VerifyChecksum() {
		t.Error("IPv4 checksum invalid")
	}
	if p.UDP.SrcPort() != 1234 || p.UDP.DstPort() != 5678 {
		t.Error("port mismatch")
	}
	if !bytes.Equal(p.L4Payload, payload) {
		t.Errorf("payload = %q, want %q", p.L4Payload, payload)
	}
}

func TestBuildUDPPadsToMinFrame(t *testing.T) {
	frame := buildTestUDP(t, []byte{1, 2}, MinFrame)
	if len(frame) != MinFrame {
		t.Fatalf("frame len = %d, want %d", len(frame), MinFrame)
	}
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	// The UDP length field bounds the payload despite the padding.
	if !bytes.Equal(p.L4Payload, []byte{1, 2}) {
		t.Errorf("payload = %v", p.L4Payload)
	}
}

func TestUDPChecksumValidates(t *testing.T) {
	frame := buildTestUDP(t, []byte("data"), 0)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	// Verify by recomputing over the segment with the checksum zeroed.
	seg := make([]byte, int(p.UDP.Length()))
	copy(seg, p.IPv4.Payload())
	stored := be.Uint16(seg[6:8])
	seg[6], seg[7] = 0, 0
	if got := L4Checksum(ipA, ipB, ProtoUDP, seg); got != stored {
		t.Errorf("UDP checksum: stored %04x, computed %04x", stored, got)
	}
}

func TestBuildParseTCPRoundTrip(t *testing.T) {
	buf := make([]byte, 256)
	n, err := BuildTCP(buf, TCPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 80, DstPort: 4000,
		Seq: 1000, Ack: 2000,
		Flags:   TCPSyn | TCPAck,
		Payload: []byte("abc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	if err := p.Parse(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if !p.Decoded.Has(LayerTCP) {
		t.Fatal("TCP not decoded")
	}
	if p.TCP.SrcPort() != 80 || p.TCP.DstPort() != 4000 {
		t.Error("ports mismatch")
	}
	if p.TCP.Seq() != 1000 || p.TCP.Ack() != 2000 {
		t.Error("seq/ack mismatch")
	}
	if p.TCP.Flags() != TCPSyn|TCPAck {
		t.Errorf("flags = %b", p.TCP.Flags())
	}
	if string(p.L4Payload) != "abc" {
		t.Errorf("payload = %q", p.L4Payload)
	}
	// Verify the TCP checksum.
	seg := make([]byte, len(p.IPv4.Payload()))
	copy(seg, p.IPv4.Payload())
	stored := be.Uint16(seg[16:18])
	seg[16], seg[17] = 0, 0
	if got := L4Checksum(ipA, ipB, ProtoTCP, seg); got != stored {
		t.Errorf("TCP checksum: stored %04x computed %04x", stored, got)
	}
}

func TestBuildParseARPRoundTrip(t *testing.T) {
	buf := make([]byte, 128)
	n, err := BuildARP(buf, ARPRequest, macA, ipA, MAC{}, ipB)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	if err := p.Parse(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if !p.Decoded.Has(LayerARP) {
		t.Fatal("ARP not decoded")
	}
	if !p.Eth.Dst().IsBroadcast() {
		t.Error("ARP request not broadcast")
	}
	if p.ARP.Op() != ARPRequest || p.ARP.SenderMAC() != macA || p.ARP.SenderIP() != ipA || p.ARP.TargetIP() != ipB {
		t.Error("ARP fields mismatch")
	}
}

func TestParseVLAN(t *testing.T) {
	inner := buildTestUDP(t, []byte("x"), 0)
	// Splice a VLAN tag after the MACs.
	frame := make([]byte, 0, len(inner)+4)
	frame = append(frame, inner[:12]...)
	frame = append(frame, 0x81, 0x00, 0x00, 0x64) // TPID 8100, VID 100
	frame = append(frame, inner[12:]...)

	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	if !p.Decoded.Has(LayerVLAN | LayerIPv4 | LayerUDP) {
		t.Fatalf("Decoded = %b", p.Decoded)
	}
	if p.VLAN.VID() != 100 {
		t.Errorf("VID = %d, want 100", p.VLAN.VID())
	}
}

func TestBuildUDPWithVlanTag(t *testing.T) {
	buf := make([]byte, 2048)
	n, err := BuildUDP(buf, UDPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 1234, DstPort: 5678,
		VlanID:   42,
		FrameLen: MinFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := buf[:n]
	if n < MinFrame {
		t.Fatalf("frame %d bytes, want >= %d", n, MinFrame)
	}
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	if !p.Decoded.Has(LayerVLAN | LayerIPv4 | LayerUDP) {
		t.Fatalf("Decoded = %b", p.Decoded)
	}
	if p.VLAN.VID() != 42 {
		t.Errorf("VID = %d, want 42", p.VLAN.VID())
	}
	if p.UDP.DstPort() != 5678 {
		t.Errorf("inner UDP dst port = %d", p.UDP.DstPort())
	}
	if vid, ok := FrameVlanID(frame); !ok || vid != 42 {
		t.Errorf("FrameVlanID = %d,%v, want 42,true", vid, ok)
	}
	if _, ok := FrameVlanID(buildTestUDP(t, nil, MinFrame)); ok {
		t.Error("FrameVlanID reported a tag on an untagged frame")
	}
}

func TestPushPopVlanRoundTrip(t *testing.T) {
	orig := buildTestUDP(t, []byte("payload"), 0)

	// Push: grow the head by VLANLen, original frame at offset VLANLen.
	grown := make([]byte, len(orig)+VLANLen)
	copy(grown[VLANLen:], orig)
	if err := PushVlan(grown, 7, 3); err != nil {
		t.Fatal(err)
	}
	var p Parser
	if err := p.Parse(grown); err != nil {
		t.Fatal(err)
	}
	if !p.Decoded.Has(LayerVLAN | LayerUDP) {
		t.Fatalf("tagged frame Decoded = %b", p.Decoded)
	}
	if p.VLAN.VID() != 7 || p.VLAN.PCP() != 3 {
		t.Fatalf("tag = vid %d pcp %d, want 7/3", p.VLAN.VID(), p.VLAN.PCP())
	}
	if p.Eth.Src() != macA || p.Eth.Dst() != macB {
		t.Fatal("push displaced the MAC addresses")
	}

	// Pop: MACs move back; untagged packet starts at VLANLen.
	vid, err := PopVlan(grown)
	if err != nil {
		t.Fatal(err)
	}
	if vid != 7 {
		t.Fatalf("PopVlan vid = %d, want 7", vid)
	}
	if !bytes.Equal(grown[VLANLen:], orig) {
		t.Fatal("pop did not restore the original frame")
	}
}

func TestPopVlanRejectsUntagged(t *testing.T) {
	frame := buildTestUDP(t, nil, MinFrame)
	if _, err := PopVlan(frame); err == nil {
		t.Fatal("PopVlan accepted an untagged frame")
	}
	if err := PushVlan(make([]byte, 10), 1, 0); err == nil {
		t.Fatal("PushVlan accepted a runt frame")
	}
}

func TestParseTruncatedStopsCleanly(t *testing.T) {
	frame := buildTestUDP(t, bytes.Repeat([]byte{9}, 32), 0)
	var p Parser
	for cut := len(frame) - 1; cut >= 0; cut-- {
		err := p.Parse(frame[:cut])
		if cut < EthernetLen {
			if err == nil {
				t.Fatalf("cut %d: want error for sub-ethernet frame", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if !p.Decoded.Has(LayerEthernet) {
			t.Fatalf("cut %d: ethernet not decoded", cut)
		}
	}
}

func TestDecodeIPv4Validation(t *testing.T) {
	b := make([]byte, 20)
	b[0] = 0x65 // version 6
	if _, err := DecodeIPv4(b); err == nil {
		t.Error("version 6 accepted by DecodeIPv4")
	}
	b[0] = 0x4f // IHL 15*4=60 > len
	if _, err := DecodeIPv4(b); err == nil {
		t.Error("oversized IHL accepted")
	}
	b[0] = 0x42 // IHL 2*4=8 < 20
	if _, err := DecodeIPv4(b); err == nil {
		t.Error("undersized IHL accepted")
	}
}

func TestIPv4SettersAndChecksum(t *testing.T) {
	frame := buildTestUDP(t, nil, 0)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	p.IPv4.SetTTL(10)
	if p.IPv4.VerifyChecksum() {
		t.Fatal("checksum still valid after TTL rewrite")
	}
	p.IPv4.UpdateChecksum()
	if !p.IPv4.VerifyChecksum() {
		t.Fatal("checksum invalid after update")
	}
	if p.IPv4.TTL() != 10 {
		t.Fatal("TTL not set")
	}
}

func TestFiveTupleAndHash(t *testing.T) {
	frame := buildTestUDP(t, nil, 0)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	ft, ok := p.FiveTuple()
	if !ok {
		t.Fatal("FiveTuple not extracted")
	}
	want := FiveTuple{Src: ipA, Dst: ipB, SrcPort: 1234, DstPort: 5678, Proto: ProtoUDP}
	if ft != want {
		t.Fatalf("FiveTuple = %+v, want %+v", ft, want)
	}
	if ft.Hash() == 0 {
		t.Error("hash is zero (suspicious)")
	}
	other := want
	other.DstPort = 5679
	if other.Hash() == want.Hash() {
		t.Error("adjacent tuples collide (suspicious for FNV)")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 materials.
	b := []byte{0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06,
		0x00, 0x00, 0xac, 0x10, 0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c}
	if got := Checksum(b); got != 0xb1e6 {
		t.Errorf("Checksum = %04x, want b1e6", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x78})
	odd := Checksum([]byte{0x12, 0x34, 0x56, 0x78, 0x9a})
	if even == odd {
		t.Error("odd trailing byte ignored")
	}
}

// Property: IPv4 checksum verification holds for built packets of any size,
// and parsing is total (never panics) on arbitrary mutations.
func TestQuickBuildParse(t *testing.T) {
	buf := make([]byte, 4096)
	f := func(payload []byte, sp, dp uint16, src, dst [4]byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		n, err := BuildUDP(buf, UDPSpec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: IP4(src), DstIP: IP4(dst),
			SrcPort: sp, DstPort: dp,
			Payload: payload,
		})
		if err != nil {
			return false
		}
		var p Parser
		if err := p.Parse(buf[:n]); err != nil {
			return false
		}
		if !p.Decoded.Has(LayerEthernet | LayerIPv4 | LayerUDP) {
			return false
		}
		return p.IPv4.VerifyChecksum() &&
			p.UDP.SrcPort() == sp && p.UDP.DstPort() == dp &&
			bytes.Equal(p.L4Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics on arbitrary bytes.
func TestQuickParseTotal(t *testing.T) {
	f := func(b []byte) bool {
		var p Parser
		_ = p.Parse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse64B(b *testing.B) {
	frame := buildTestUDP(b, nil, MinFrame)
	var p Parser
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

func BenchmarkBuildUDP64B(b *testing.B) {
	buf := make([]byte, 128)
	spec := UDPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, FrameLen: MinFrame}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildUDP(buf, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFiveTupleHash(b *testing.B) {
	ft := FiveTuple{Src: ipA, Dst: ipB, SrcPort: 1234, DstPort: 5678, Proto: ProtoUDP}
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc += ft.Hash()
	}
	_ = acc
}
