package pkt

// Layers is a bitset of layers decoded by Parser.Parse.
type Layers uint16

// Layer bits set in Parser.Decoded.
const (
	LayerEthernet Layers = 1 << iota
	LayerVLAN
	LayerARP
	LayerIPv4
	LayerIPv6
	LayerUDP
	LayerTCP
	LayerICMP
)

// Has reports whether all bits in l are present.
func (ls Layers) Has(l Layers) bool { return ls&l == l }

// Parser decodes a frame in a single pass into preallocated views. It is the
// gopacket DecodingLayerParser analogue: reuse one Parser per PMD loop and no
// per-packet allocation occurs. A Parser must not be shared across
// goroutines.
type Parser struct {
	Decoded Layers

	Eth  Ethernet
	VLAN VLAN
	ARP  ARP
	IPv4 IPv4
	IPv6 IPv6
	UDP  UDP
	TCP  TCP
	ICMP ICMP

	// L4Payload is the application payload when a transport layer decoded.
	L4Payload []byte
}

// Parse decodes frame starting at the Ethernet layer. It decodes as deep as
// the frame allows and stops silently at truncation or unknown protocols;
// Decoded records how far it got. The error is non-nil only when the frame
// is too short to carry an Ethernet header at all.
func (p *Parser) Parse(frame []byte) error {
	p.Decoded = 0
	p.L4Payload = nil

	eth, err := DecodeEthernet(frame)
	if err != nil {
		return err
	}
	p.Eth = eth
	p.Decoded |= LayerEthernet

	etherType := eth.EtherType()
	next := eth.Payload()

	if etherType == EtherTypeVLAN {
		vl, err := DecodeVLAN(next)
		if err != nil {
			return nil
		}
		p.VLAN = vl
		p.Decoded |= LayerVLAN
		etherType = vl.EtherType()
		next = vl.Payload()
	}

	switch etherType {
	case EtherTypeARP:
		if arp, err := DecodeARP(next); err == nil {
			p.ARP = arp
			p.Decoded |= LayerARP
		}
		return nil
	case EtherTypeIPv4:
		ip, err := DecodeIPv4(next)
		if err != nil {
			return nil
		}
		p.IPv4 = ip
		p.Decoded |= LayerIPv4
		p.parseL4(ip.Proto(), ip.Payload())
	case EtherTypeIPv6:
		ip, err := DecodeIPv6(next)
		if err != nil {
			return nil
		}
		p.IPv6 = ip
		p.Decoded |= LayerIPv6
		p.parseL4(ip.NextHeader(), ip.Payload())
	}
	return nil
}

func (p *Parser) parseL4(proto uint8, b []byte) {
	switch proto {
	case ProtoUDP:
		if u, err := DecodeUDP(b); err == nil {
			p.UDP = u
			p.Decoded |= LayerUDP
			p.L4Payload = u.Payload()
		}
	case ProtoTCP:
		if t, err := DecodeTCP(b); err == nil {
			p.TCP = t
			p.Decoded |= LayerTCP
			p.L4Payload = t.Payload()
		}
	case ProtoICMP:
		if ic, err := DecodeICMP(b); err == nil {
			p.ICMP = ic
			p.Decoded |= LayerICMP
		}
	}
}

// FiveTuple is the canonical flow key for exact-match caches.
type FiveTuple struct {
	Src, Dst         IP4
	SrcPort, DstPort uint16
	Proto            uint8
}

// FiveTuple extracts the IPv4 5-tuple after a successful Parse. ok is false
// when the packet is not IPv4 TCP/UDP (ICMP yields zero ports).
func (p *Parser) FiveTuple() (ft FiveTuple, ok bool) {
	if !p.Decoded.Has(LayerIPv4) {
		return ft, false
	}
	ft.Src = p.IPv4.Src()
	ft.Dst = p.IPv4.Dst()
	ft.Proto = p.IPv4.Proto()
	switch {
	case p.Decoded.Has(LayerUDP):
		ft.SrcPort = p.UDP.SrcPort()
		ft.DstPort = p.UDP.DstPort()
	case p.Decoded.Has(LayerTCP):
		ft.SrcPort = p.TCP.SrcPort()
		ft.DstPort = p.TCP.DstPort()
	case p.Decoded.Has(LayerICMP):
		// ports stay zero
	default:
		return ft, false
	}
	return ft, true
}

// Hash returns a 32-bit hash of the tuple (FNV-1a over the packed fields),
// suitable for EMC bucketing and RSS-style spreading.
func (ft FiveTuple) Hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	for _, b := range ft.Src {
		mix(b)
	}
	for _, b := range ft.Dst {
		mix(b)
	}
	mix(byte(ft.SrcPort >> 8))
	mix(byte(ft.SrcPort))
	mix(byte(ft.DstPort >> 8))
	mix(byte(ft.DstPort))
	mix(ft.Proto)
	return h
}
