package mempool

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(Config{Capacity: 4, BufSize: 64, Headroom: 64}); err == nil {
		t.Error("headroom == bufsize accepted")
	}
	p, err := New(Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cap() != 10 || p.Avail() != 10 {
		t.Errorf("Cap/Avail = %d/%d, want 10/10", p.Cap(), p.Avail())
	}
	if p.Headroom() != DefaultHeadroom {
		t.Errorf("Headroom = %d, want %d", p.Headroom(), DefaultHeadroom)
	}
}

func TestGetFreeCycle(t *testing.T) {
	p := MustNew(Config{Capacity: 2, BufSize: 256, Headroom: 32})
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third Get = %v, want ErrExhausted", err)
	}
	a.Free()
	if p.Avail() != 1 {
		t.Fatalf("Avail = %d, want 1", p.Avail())
	}
	b.Free()
	st := p.Stats()
	if st.Allocs != 2 || st.Frees != 2 || st.Fails != 1 {
		t.Fatalf("stats = %+v, want 2/2/1", st)
	}
}

func TestBufResetOnGet(t *testing.T) {
	p := MustNew(Config{Capacity: 1, BufSize: 256, Headroom: 32})
	b, _ := p.Get()
	b.SetBytes([]byte("hello"))
	b.Port = 7
	b.TS = 99
	b.Hash = 123
	b.HashValid = true
	b.Free()
	b2, _ := p.Get()
	if b2.Len != 0 || b2.Off != 32 || b2.Port != 0 || b2.TS != 0 || b2.HashValid {
		t.Fatalf("buffer not reset: %+v", b2)
	}
	if b2.Refcnt() != 1 {
		t.Fatalf("refcnt = %d, want 1", b2.Refcnt())
	}
}

func TestSetBytesAndBounds(t *testing.T) {
	p := MustNew(Config{Capacity: 1, BufSize: 128, Headroom: 16})
	b, _ := p.Get()
	payload := bytes.Repeat([]byte{0xAB}, 112)
	if err := b.SetBytes(payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatal("payload round-trip mismatch")
	}
	if err := b.SetBytes(bytes.Repeat([]byte{1}, 113)); err == nil {
		t.Fatal("oversized SetBytes accepted")
	}
	b.Free()
}

func TestPrependAdj(t *testing.T) {
	p := MustNew(Config{Capacity: 1, BufSize: 128, Headroom: 16})
	b, _ := p.Get()
	b.SetBytes([]byte("payload"))
	hdr, err := b.Prepend(4)
	if err != nil {
		t.Fatal(err)
	}
	copy(hdr, "HDR:")
	if string(b.Bytes()) != "HDR:payload" {
		t.Fatalf("after prepend: %q", b.Bytes())
	}
	if _, err := b.Prepend(100); err == nil {
		t.Fatal("prepend beyond headroom accepted")
	}
	if err := b.Adj(4); err != nil {
		t.Fatal(err)
	}
	if string(b.Bytes()) != "payload" {
		t.Fatalf("after adj: %q", b.Bytes())
	}
	if err := b.Adj(100); err == nil {
		t.Fatal("adj beyond length accepted")
	}
	b.Free()
}

func TestCloneRefcount(t *testing.T) {
	p := MustNew(Config{Capacity: 1, BufSize: 128, Headroom: 16})
	b, _ := p.Get()
	c := b.Clone()
	if c != b {
		t.Fatal("Clone returned different buffer")
	}
	if b.Refcnt() != 2 {
		t.Fatalf("refcnt = %d, want 2", b.Refcnt())
	}
	b.Free()
	if p.Avail() != 0 {
		t.Fatal("buffer returned while references remain")
	}
	b.Free()
	if p.Avail() != 1 {
		t.Fatal("buffer not returned after last reference")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := MustNew(Config{Capacity: 2, BufSize: 128, Headroom: 16})
	b, _ := p.Get()
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestGetBatch(t *testing.T) {
	p := MustNew(Config{Capacity: 4, BufSize: 128, Headroom: 16})
	out := make([]*Buf, 8)
	n := p.GetBatch(out)
	if n != 4 {
		t.Fatalf("GetBatch = %d, want 4", n)
	}
	seen := map[*Buf]bool{}
	for _, b := range out[:n] {
		if seen[b] {
			t.Fatal("duplicate buffer from GetBatch")
		}
		seen[b] = true
		b.Free()
	}
}

// TestConcurrentChurn hammers Get/Free from many goroutines and verifies the
// population is conserved.
func TestConcurrentChurn(t *testing.T) {
	p := MustNew(Config{Capacity: 64, BufSize: 128, Headroom: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]*Buf, 0, 8)
			for i := 0; i < 20000; i++ {
				if len(local) < 8 {
					if b, err := p.Get(); err == nil {
						local = append(local, b)
						continue
					}
				}
				if len(local) > 0 {
					local[len(local)-1].Free()
					local = local[:len(local)-1]
				}
			}
			for _, b := range local {
				b.Free()
			}
		}()
	}
	wg.Wait()
	if p.Avail() != 64 {
		t.Fatalf("population leaked: avail = %d, want 64", p.Avail())
	}
	st := p.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
}

// TestQuickPrependAdjInverse: Adj(n) undoes Prepend(n) for any n within
// headroom, restoring the observable packet bytes.
func TestQuickPrependAdjInverse(t *testing.T) {
	p := MustNew(Config{Capacity: 1, BufSize: 512, Headroom: 64})
	f := func(payload []byte, n uint8) bool {
		if len(payload) > 448 {
			payload = payload[:448]
		}
		b, err := p.Get()
		if err != nil {
			return false
		}
		defer b.Free()
		if err := b.SetBytes(payload); err != nil {
			return false
		}
		k := int(n) % 65
		hdr, err := b.Prepend(k)
		if (err == nil) != (k <= 64) {
			return false
		}
		if err != nil {
			return true
		}
		for i := range hdr {
			hdr[i] = 0xEE
		}
		if err := b.Adj(k); err != nil {
			return false
		}
		return bytes.Equal(b.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGetFree(b *testing.B) {
	p := MustNew(Config{Capacity: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ := p.Get()
		buf.Free()
	}
}

func TestOwns(t *testing.T) {
	a := MustNew(Config{Capacity: 4})
	b := MustNew(Config{Capacity: 4})
	ba, err := a.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Free()
	if !a.Owns(ba) {
		t.Error("pool must own its own buffer")
	}
	if b.Owns(ba) {
		t.Error("foreign pool must not own the buffer")
	}
	if a.Owns(nil) {
		t.Error("nil buffer owned")
	}
	if a.Owns(&Buf{}) {
		t.Error("detached buffer owned")
	}
}

// TestForeignFreePanics simulates the cross-node migration bug the guard
// exists for: a buffer whose pool pointer was re-homed without copying the
// payload into the destination arena must not reach the foreign freelist.
func TestForeignFreePanics(t *testing.T) {
	a := MustNew(Config{Capacity: 4})
	b := MustNew(Config{Capacity: 4})
	buf, err := a.Get()
	if err != nil {
		t.Fatal(err)
	}
	buf.pool = b // buggy migration: pointer moved, storage did not
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a foreign buffer must panic")
		}
	}()
	buf.Free()
}

func TestForeignFreeBatchPanics(t *testing.T) {
	a := MustNew(Config{Capacity: 4})
	b := MustNew(Config{Capacity: 4})
	buf, err := a.Get()
	if err != nil {
		t.Fatal(err)
	}
	buf.pool = b
	defer func() {
		if recover() == nil {
			t.Fatal("batch-freeing a foreign buffer must panic")
		}
	}()
	FreeBatch([]*Buf{buf})
}
