// Package mempool provides preallocated packet-buffer pools, the stand-in for
// DPDK's hugepage-backed mbuf mempools. All buffers are carved out of one
// arena at construction time; allocation and free on the fast path are ring
// operations and never touch the Go allocator.
package mempool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"ovshighway/internal/ring"
)

// Default buffer geometry, mirroring typical DPDK mbuf configuration: room
// for a full 1500-byte frame plus headroom for header prepends.
const (
	DefaultBufSize  = 2048
	DefaultHeadroom = 128
)

// Buf is a packet buffer (mbuf equivalent). Data occupies Data[Off:Off+Len]
// within the fixed backing slice; Off leaves headroom so encapsulation
// headers can be prepended without copying the payload.
type Buf struct {
	Data []byte // fixed backing storage, len == pool buffer size
	Off  int    // start of packet data
	Len  int    // length of packet data

	// Port is the ingress port id stamped by the receiving PMD; it feeds
	// the in_port match field of the flow pipeline.
	Port uint32
	// TS is an optional nanosecond timestamp used by latency probes.
	TS int64
	// Hash caches the 5-tuple hash computed by the first classifier lookup.
	Hash uint32
	// HashValid reports whether Hash has been computed for current contents.
	HashValid bool

	pool *Pool
	// refcnt supports multicast actions (one buffer output to N ports).
	refcnt atomic.Int32
}

// Bytes returns the packet contents as a sub-slice of the backing storage.
func (b *Buf) Bytes() []byte { return b.Data[b.Off : b.Off+b.Len] }

// SetBytes copies p into the buffer at the default headroom offset.
// It fails if p exceeds the buffer capacity beyond the headroom.
func (b *Buf) SetBytes(p []byte) error {
	if len(p) > len(b.Data)-b.pool.headroom {
		return fmt.Errorf("mempool: payload %d exceeds buffer room %d", len(p), len(b.Data)-b.pool.headroom)
	}
	b.Off = b.pool.headroom
	b.Len = copy(b.Data[b.Off:], p)
	b.HashValid = false
	return nil
}

// Prepend grows the packet head by n bytes into the headroom and returns the
// new head slice, or an error if insufficient headroom remains.
func (b *Buf) Prepend(n int) ([]byte, error) {
	if n > b.Off {
		return nil, fmt.Errorf("mempool: prepend %d exceeds headroom %d", n, b.Off)
	}
	b.Off -= n
	b.Len += n
	b.HashValid = false
	return b.Data[b.Off : b.Off+n], nil
}

// Adj trims n bytes from the packet head (e.g. decapsulation).
func (b *Buf) Adj(n int) error {
	if n > b.Len {
		return fmt.Errorf("mempool: adj %d exceeds length %d", n, b.Len)
	}
	b.Off += n
	b.Len -= n
	b.HashValid = false
	return nil
}

// Clone increments the reference count and returns b, so the same payload
// can be enqueued to multiple destinations. Each destination must Free it.
func (b *Buf) Clone() *Buf {
	b.refcnt.Add(1)
	return b
}

// Refcnt returns the current reference count (1 for a freshly allocated buf).
func (b *Buf) Refcnt() int { return int(b.refcnt.Load()) }

// Free returns the buffer to its pool once all references are dropped.
// Freeing a buffer more times than it was referenced panics: that is a
// use-after-free style bug we want loud.
func (b *Buf) Free() {
	n := b.refcnt.Add(-1)
	switch {
	case n > 0:
		return
	case n < 0:
		panic("mempool: double free")
	}
	b.pool.put(b)
}

// Pool is a fixed-population buffer pool.
type Pool struct {
	free     *ring.MPMC[*Buf]
	bufSize  int
	headroom int
	capacity int

	// arenaLo/arenaHi bound the pool's backing arena. Every buffer this pool
	// allocated has its storage inside these bounds; the freelist uses them
	// to reject foreign buffers (see Owns).
	arenaLo uintptr
	arenaHi uintptr

	allocs atomic.Uint64
	frees  atomic.Uint64
	fails  atomic.Uint64
}

// ErrExhausted is returned by Get when no buffers are available.
var ErrExhausted = errors.New("mempool: exhausted")

// Config parametrizes New. Zero fields take defaults.
type Config struct {
	Capacity int // number of buffers; rounded up to a power of two
	BufSize  int // backing size of each buffer
	Headroom int // initial data offset
}

// New builds a pool with cfg.Capacity preallocated buffers.
func New(cfg Config) (*Pool, error) {
	if cfg.Capacity <= 0 {
		return nil, errors.New("mempool: capacity must be positive")
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = DefaultBufSize
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = DefaultHeadroom
	}
	if cfg.Headroom >= cfg.BufSize {
		return nil, fmt.Errorf("mempool: headroom %d >= buffer size %d", cfg.Headroom, cfg.BufSize)
	}
	ringCap := 2
	for ringCap < cfg.Capacity+1 {
		ringCap <<= 1
	}
	p := &Pool{
		free:     ring.MustMPMC[*Buf](ringCap),
		bufSize:  cfg.BufSize,
		headroom: cfg.Headroom,
		capacity: cfg.Capacity,
	}
	// One arena allocation for all payload storage: this is the hugepage
	// region equivalent, and it keeps buffers dense in memory.
	arena := make([]byte, cfg.Capacity*cfg.BufSize)
	p.arenaLo = uintptr(unsafe.Pointer(&arena[0]))
	p.arenaHi = p.arenaLo + uintptr(len(arena))
	bufs := make([]Buf, cfg.Capacity)
	for i := range bufs {
		bufs[i].Data = arena[i*cfg.BufSize : (i+1)*cfg.BufSize]
		bufs[i].pool = p
		if !p.free.TryEnqueue(&bufs[i]) {
			return nil, errors.New("mempool: internal: freelist overflow")
		}
	}
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Pool {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Cap returns the total buffer population.
func (p *Pool) Cap() int { return p.capacity }

// Avail returns the instantaneous number of free buffers.
func (p *Pool) Avail() int { return p.free.Len() }

// Headroom returns the configured data offset for fresh buffers.
func (p *Pool) Headroom() int { return p.headroom }

// reset returns the buffer to its freshly-allocated state (refcount 1, no
// metadata, data offset at the pool headroom).
func (b *Buf) reset(headroom int) {
	b.Off = headroom
	b.Len = 0
	b.Port = 0
	b.TS = 0
	b.Hash = 0
	b.HashValid = false
	b.refcnt.Store(1)
}

// Get allocates one buffer with refcount 1, or ErrExhausted.
func (p *Pool) Get() (*Buf, error) {
	b, ok := p.free.TryDequeue()
	if !ok {
		p.fails.Add(1)
		return nil, ErrExhausted
	}
	p.allocs.Add(1)
	b.reset(p.headroom)
	return b, nil
}

// GetBatch fills out with up to len(out) fresh buffers in one batched ring
// dequeue, returning the count.
func (p *Pool) GetBatch(out []*Buf) int {
	n := p.free.Dequeue(out)
	for _, b := range out[:n] {
		b.reset(p.headroom)
	}
	p.allocs.Add(uint64(n))
	if n < len(out) {
		p.fails.Add(1)
	}
	return n
}

// Owns reports whether b was allocated by this pool, by checking that its
// backing storage lies inside the pool arena. With per-node pools connected
// by wires, a buffer migrated across nodes without re-homing would otherwise
// land on a foreign freelist and silently corrupt both populations.
func (p *Pool) Owns(b *Buf) bool {
	if b == nil || len(b.Data) == 0 {
		return false
	}
	addr := uintptr(unsafe.Pointer(&b.Data[0]))
	return addr >= p.arenaLo && addr < p.arenaHi
}

// guardOwnership panics when a buffer reaches a freelist that did not
// allocate it — a use-after-migrate bug we want loud, exactly like double
// frees.
func (p *Pool) guardOwnership(b *Buf) {
	if !p.Owns(b) {
		panic("mempool: buffer returned to a pool that did not allocate it")
	}
}

func (p *Pool) put(b *Buf) {
	p.guardOwnership(b)
	p.frees.Add(1)
	// The freelist ring is sized above the buffer population, so it can never
	// be durably full. TryEnqueue can still fail transiently: an MPMC
	// consumer preempted between claiming a slot and releasing it holds that
	// slot hostage, and a producer that wraps around to it sees "full".
	// Spin until the stalled consumer finishes.
	for !p.free.TryEnqueue(b) {
		runtime.Gosched()
	}
}

// putBatch returns a batch of zero-refcount buffers to the freelist with
// batched ring enqueues (same transient-full caveat as put).
func (p *Pool) putBatch(bufs []*Buf) {
	for _, b := range bufs {
		p.guardOwnership(b)
	}
	p.frees.Add(uint64(len(bufs)))
	sent := 0
	for sent < len(bufs) {
		n := p.free.Enqueue(bufs[sent:])
		sent += n
		if n == 0 {
			runtime.Gosched()
		}
	}
}

// FreeBatch drops one reference on every non-nil buffer and returns those
// reaching zero to their pools in batched ring operations — the batch
// analogue of calling Free in a loop on an RX burst. It compacts in place:
// the contents of bufs are unspecified afterwards. Over-freeing panics
// exactly as Free does.
func FreeBatch(bufs []*Buf) {
	var pool *Pool
	k := 0
	for _, b := range bufs {
		if b == nil {
			continue
		}
		n := b.refcnt.Add(-1)
		switch {
		case n > 0:
			continue
		case n < 0:
			panic("mempool: double free")
		}
		// Runs of same-pool buffers flush together; a pool change flushes the
		// pending run first (multi-pool batches are rare but legal).
		if b.pool != pool {
			if k > 0 {
				pool.putBatch(bufs[:k])
				k = 0
			}
			pool = b.pool
		}
		bufs[k] = b // k never exceeds the read index, so this is safe
		k++
	}
	if k > 0 {
		pool.putBatch(bufs[:k])
	}
}

// Stats reports cumulative allocation counters.
type Stats struct {
	Allocs, Frees, Fails uint64
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{Allocs: p.allocs.Load(), Frees: p.frees.Load(), Fails: p.fails.Load()}
}
