package shm

import (
	"sync"
	"testing"
)

func TestCreateAttachDetachLifecycle(t *testing.T) {
	r := NewRegistry()
	s, err := r.Create("bypass-1-2", "payload")
	if err != nil {
		t.Fatal(err)
	}
	if s.Refs() != 1 || r.Len() != 1 {
		t.Fatalf("refs=%d len=%d", s.Refs(), r.Len())
	}
	if _, err := r.Create("bypass-1-2", nil); err == nil {
		t.Fatal("duplicate name accepted")
	}

	a, err := r.Attach("bypass-1-2")
	if err != nil {
		t.Fatal(err)
	}
	if a != s || s.Refs() != 2 {
		t.Fatalf("attach: refs=%d", s.Refs())
	}
	if destroyed := r.Detach(s); destroyed {
		t.Fatal("destroyed while references remain")
	}
	if destroyed := r.Detach(s); !destroyed {
		t.Fatal("not destroyed at last detach")
	}
	if r.Len() != 0 {
		t.Fatalf("registry len = %d after destroy", r.Len())
	}
	if _, err := r.Attach("bypass-1-2"); err == nil {
		t.Fatal("attach to destroyed segment succeeded")
	}
}

func TestAttachUnknown(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Attach("nope"); err == nil {
		t.Fatal("attach to unknown segment succeeded")
	}
}

func TestDetachWithoutAttachPanics(t *testing.T) {
	r := NewRegistry()
	s, _ := r.Create("x", nil)
	r.Detach(s)
	defer func() {
		if recover() == nil {
			t.Fatal("over-detach did not panic")
		}
	}()
	r.Detach(s)
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Create("b", nil)
	r.Create("a", nil)
	got := r.Names()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
}

func TestConcurrentAttachDetach(t *testing.T) {
	r := NewRegistry()
	s, _ := r.Create("seg", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a, err := r.Attach("seg")
				if err != nil {
					return // segment died under us: acceptable ordering
				}
				r.Detach(a)
			}
		}()
	}
	wg.Wait()
	if s.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (creator)", s.Refs())
	}
	r.Detach(s)
	if r.Len() != 0 {
		t.Fatal("segment leaked")
	}
}
