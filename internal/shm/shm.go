// Package shm is the host shared-memory object registry, the stand-in for
// the hugepage segments that QEMU exposes to VMs as ivshmem devices.
//
// A VM context can only reach a segment after the compute agent explicitly
// plugs it (see internal/vm and internal/agent). Preserving this indirection
// matters for fidelity: it is *why* the paper needs an external component —
// OVS knows ports, not VMs, so someone else must map the bypass memory into
// the right QEMU processes.
package shm

import (
	"fmt"
	"sort"
	"sync"
)

// Segment is one named, ref-counted shared object. Obj is the payload (for
// bypass channels: a *dpdkr.BypassHalf pair plus a stats block).
type Segment struct {
	Name string
	Obj  any

	mu   sync.Mutex
	refs int
	dead bool
}

// Registry tracks all live segments on the host.
type Registry struct {
	mu   sync.Mutex
	segs map[string]*Segment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{segs: make(map[string]*Segment)}
}

// Create registers a new segment holding obj with one reference (the
// creator's). It fails if the name is taken.
func (r *Registry) Create(name string, obj any) (*Segment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.segs[name]; ok {
		return nil, fmt.Errorf("shm: segment %q exists", name)
	}
	s := &Segment{Name: name, Obj: obj, refs: 1}
	r.segs[name] = s
	return s, nil
}

// Attach takes an additional reference on a named segment (QEMU mapping the
// region into a guest).
func (r *Registry) Attach(name string) (*Segment, error) {
	r.mu.Lock()
	s, ok := r.segs[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("shm: segment %q not found", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, fmt.Errorf("shm: segment %q is being destroyed", name)
	}
	s.refs++
	return s, nil
}

// Detach drops one reference. When the last reference goes the segment is
// removed from the registry. Reports whether the segment was destroyed.
func (r *Registry) Detach(s *Segment) bool {
	s.mu.Lock()
	s.refs--
	if s.refs < 0 {
		s.mu.Unlock()
		panic("shm: detach without attach")
	}
	last := s.refs == 0
	if last {
		s.dead = true
	}
	s.mu.Unlock()
	if last {
		r.mu.Lock()
		delete(r.segs, s.Name)
		r.mu.Unlock()
	}
	return last
}

// Refs returns the current reference count (diagnostic).
func (s *Segment) Refs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs
}

// Names returns the sorted names of live segments (diagnostic).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.segs))
	for n := range r.segs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live segments.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.segs)
}
