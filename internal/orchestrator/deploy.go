package orchestrator

import (
	"fmt"
	"sync/atomic"

	"ovshighway/internal/conntrack"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vnf"
)

// DeployCookieBase marks the OpenFlow cookie space deployments stamp on
// their steering rules; the low bits carry a process-unique sequence so a
// deployment tears down exactly its own rules (several deployments can
// share one node's table, and controller-installed flows must survive).
const DeployCookieBase = uint64(0xD0) << 56

var deployCookieSeq atomic.Uint64

// Deployment is a service graph instantiated on a node.
type Deployment struct {
	node *Node

	apps     []*vnf.App
	sources  []*vnf.Source
	sinks    map[string]*vnf.Sink
	srcsinks map[string]*vnf.SrcSink
	nats     map[string]*vnf.NAT44    // stateful-VNF handles, by VNF name
	acls     map[string]*vnf.ACL      // (lazily allocated: most deployments
	lbs      map[string]*vnf.Balancer // carry none)
	vms      map[string][]uint32      // VM name → port ids

	// PortOf maps (VNF name, local port) to switch port ids.
	portOf map[graph.Endpoint]uint32

	// specs is the deployment's DESIRED local steering state: the rules its
	// node-local edges lower to, stamped with the deployment cookie. The
	// reconciler re-derives the installed set from the flow table and diffs
	// it against this — drift (a wiped table, a restarted vSwitch) shows up
	// as missing entries and is re-installed verbatim.
	specs []flow.FlowSpec

	flowPrio uint16
	cookie   uint64
}

// newDeployment returns an empty deployment shell on n — no VNFs, no rules.
// Cluster migration uses it to grow a deployment onto a node that hosted
// none of the graph's VNFs at Deploy time.
func newDeployment(n *Node) *Deployment {
	return &Deployment{
		node:     n,
		sinks:    make(map[string]*vnf.Sink),
		srcsinks: make(map[string]*vnf.SrcSink),
		vms:      make(map[string][]uint32),
		portOf:   make(map[graph.Endpoint]uint32),
		flowPrio: 10,
		cookie:   DeployCookieBase | deployCookieSeq.Add(1),
	}
}

// SourceSpecArgs configures a source VNF through graph.VNF.Args.
type SourceSpecArgs struct {
	Spec  pkt.UDPSpec
	Flows int
	// RatePps paces generation (0 = full blast). A paced source below chain
	// capacity reaches a lossless steady state — the precondition for the
	// unidirectional conservation ledger (Sent == Received after settle).
	RatePps float64
}

// NAT44Args configures a stateful NAT44 VNF through graph.VNF.Args. The
// port block is the node's slice of the ExtIP port space — cluster
// placement hands each NAT node a disjoint block so nodes allocate without
// coordinating.
type NAT44Args struct {
	ExtIP     pkt.IP4
	PortBase  uint16
	PortCount int
	// Table overrides the node's shared conntrack table (tests; optional).
	Table *conntrack.Table
}

// ACLArgs configures a stateful ACL VNF through graph.VNF.Args.
type ACLArgs struct {
	Rules        []vnf.ACLRule
	DefaultAllow bool
	// Table overrides the node's shared conntrack table (tests; optional).
	Table *conntrack.Table
}

// BalancerArgs configures an L4 balancer VNF through graph.VNF.Args.
type BalancerArgs struct {
	VIP      pkt.IP4
	VIPPort  uint16
	Backends []vnf.Backend
	// Table overrides the node's shared conntrack table (tests; optional).
	Table *conntrack.Table
}

// SrcSinkArgs configures a bidirectional endpoint VNF through graph.VNF.Args.
type SrcSinkArgs struct {
	Spec      pkt.UDPSpec
	Flows     int
	Timestamp bool
	// RatePps paces generation (0 = full blast). Paced endpoints below
	// chain capacity reach a lossless steady state — the precondition for
	// exact end-to-end packet accounting across a live migration.
	RatePps float64
}

// Deploy lowers g onto the node: one VM per VNF with its dpdkr ports, the
// VNF applications started inside, and one steering rule per directed edge
// (in_port=A → output:B). In highway mode the detector then turns each
// point-to-point pair into a bypass automatically — deployment code is
// identical in both modes, which is the transparency argument end to end.
//
// Deploy is validation plus lower: Cluster.Deploy validates and partitions
// a placement-labeled graph first and then runs the same per-node lowering
// on each partition.
func (n *Node) Deploy(g *graph.Graph) (*Deployment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return n.lower(g)
}

// lower is the per-node local lowering step: instantiate every VNF of the
// (already validated, node-local) graph and install the steering rules for
// its edges in one batched table mutation. NIC endpoints the edges name
// must already be attached to this node.
func (n *Node) lower(g *graph.Graph) (*Deployment, error) {
	d := newDeployment(n)

	// Instantiate VNFs.
	for _, v := range g.VNFs {
		if err := d.instantiate(v); err != nil {
			d.Stop()
			return nil, err
		}
	}

	// Program steering rules in one batched table mutation: a chain lays
	// down O(edges) rules and per-rule Add would rebuild the classifier
	// snapshot per rule. The spec list is retained as the deployment's
	// desired local state for the reconciler.
	specs, err := d.edgeSpecs(g)
	if err != nil {
		d.Stop()
		return nil, err
	}
	d.specs = specs
	n.Switch.Table().AddBatch(specs)
	return d, nil
}

// instantiate creates v's VM on the deployment's node and starts its
// application, recording the port mapping.
func (d *Deployment) instantiate(v graph.VNF) error {
	ids, pmds, err := d.node.CreateVM(v.Name, v.Kind.PortCount())
	if err != nil {
		return fmt.Errorf("deploy %s: %w", v.Name, err)
	}
	d.vms[v.Name] = ids
	for i, id := range ids {
		d.portOf[graph.VNFPort(v.Name, i)] = id
	}
	if err := d.startVNF(v, pmds); err != nil {
		return fmt.Errorf("deploy %s: %w", v.Name, err)
	}
	return nil
}

// edgeSpecs lowers the node-local edges of g to steering rule specs against
// the deployment's current port mapping. Pure derivation — no table mutation
// — so Deploy installs the result and the reconciler rederives it each pass.
func (d *Deployment) edgeSpecs(g *graph.Graph) ([]flow.FlowSpec, error) {
	specs := make([]flow.FlowSpec, 0, 2*len(g.Edges))
	for _, e := range g.Edges {
		a, err := d.resolve(e.A)
		if err != nil {
			return nil, err
		}
		b, err := d.resolve(e.B)
		if err != nil {
			return nil, err
		}
		specs = append(specs, flow.FlowSpec{
			Priority: d.flowPrio, Match: flow.MatchInPort(a), Actions: flow.Actions{flow.Output(b)},
			Cookie: d.cookie,
		})
		if e.Bidirectional {
			specs = append(specs, flow.FlowSpec{
				Priority: d.flowPrio, Match: flow.MatchInPort(b), Actions: flow.Actions{flow.Output(a)},
				Cookie: d.cookie,
			})
		}
	}
	return specs, nil
}

// appByName returns the named middle-VNF application (nil if absent).
func (d *Deployment) appByName(name string) *vnf.App {
	for _, a := range d.apps {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func (d *Deployment) resolve(ep graph.Endpoint) (uint32, error) {
	switch ep.Kind {
	case graph.EpVNF:
		id, ok := d.portOf[graph.Endpoint{Kind: graph.EpVNF, Name: ep.Name, Port: ep.Port}]
		if !ok {
			return 0, fmt.Errorf("deploy: unresolved endpoint %s/%d", ep.Name, ep.Port)
		}
		return id, nil
	case graph.EpNIC:
		id, ok := d.node.NICPort(ep.Name)
		if !ok {
			return 0, fmt.Errorf("deploy: unknown NIC %q", ep.Name)
		}
		return id, nil
	default:
		return 0, fmt.Errorf("deploy: bad endpoint kind %d", ep.Kind)
	}
}

func (d *Deployment) startVNF(v graph.VNF, pmds []*dpdkr.PMD) error {
	switch v.Kind {
	case graph.KindForward:
		app, err := vnf.NewForwarder(v.Name, pmds[0], pmds[1], d.node.Pool)
		if err != nil {
			return err
		}
		app.Start()
		d.apps = append(d.apps, app)
	case graph.KindFirewall:
		rules, _ := v.Args.([]vnf.FirewallRule)
		app, _, err := vnf.NewFirewall(v.Name, pmds[0], pmds[1], d.node.Pool, rules)
		if err != nil {
			return err
		}
		app.Start()
		d.apps = append(d.apps, app)
	case graph.KindMonitor:
		app, _, err := vnf.NewMonitor(v.Name, pmds[0], pmds[1], d.node.Pool, 0)
		if err != nil {
			return err
		}
		app.Start()
		d.apps = append(d.apps, app)
	case graph.KindNAT44:
		args, ok := v.Args.(NAT44Args)
		if !ok {
			return fmt.Errorf("nat44 %s: missing NAT44Args", v.Name)
		}
		ct, err := d.conntrackFor(args.Table)
		if err != nil {
			return err
		}
		app, nat, err := vnf.NewNAT44(v.Name, pmds[0], pmds[1], d.node.Pool, vnf.NAT44Config{
			ExtIP: args.ExtIP, PortBase: args.PortBase, PortCount: args.PortCount, Table: ct,
		})
		if err != nil {
			return err
		}
		app.Start()
		d.apps = append(d.apps, app)
		if d.nats == nil {
			d.nats = make(map[string]*vnf.NAT44)
		}
		d.nats[v.Name] = nat
	case graph.KindACL:
		args, _ := v.Args.(ACLArgs)
		ct, err := d.conntrackFor(args.Table)
		if err != nil {
			return err
		}
		app, acl, err := vnf.NewACL(v.Name, pmds[0], pmds[1], d.node.Pool, ct, args.Rules, args.DefaultAllow)
		if err != nil {
			return err
		}
		app.Start()
		d.apps = append(d.apps, app)
		if d.acls == nil {
			d.acls = make(map[string]*vnf.ACL)
		}
		d.acls[v.Name] = acl
	case graph.KindBalancer:
		args, ok := v.Args.(BalancerArgs)
		if !ok {
			return fmt.Errorf("balancer %s: missing BalancerArgs", v.Name)
		}
		ct, err := d.conntrackFor(args.Table)
		if err != nil {
			return err
		}
		app, lb, err := vnf.NewBalancer(v.Name, pmds[0], pmds[1], d.node.Pool, vnf.BalancerConfig{
			VIP: args.VIP, VIPPort: args.VIPPort, Backends: args.Backends, Table: ct,
		})
		if err != nil {
			return err
		}
		app.Start()
		d.apps = append(d.apps, app)
		if d.lbs == nil {
			d.lbs = make(map[string]*vnf.Balancer)
		}
		d.lbs[v.Name] = lb
	case graph.KindSource:
		args, _ := v.Args.(SourceSpecArgs)
		if args.Spec.FrameLen == 0 {
			args.Spec = DefaultTrafficSpec()
		}
		if args.Flows == 0 {
			args.Flows = 1
		}
		src, err := vnf.NewSourcePaced(v.Name, pmds[0], d.node.Pool, args.Spec, args.Flows, args.RatePps)
		if err != nil {
			return err
		}
		d.sources = append(d.sources, src)
	case graph.KindSink:
		sink, err := vnf.NewSink(v.Name, pmds[0], d.node.Pool)
		if err != nil {
			return err
		}
		d.sinks[v.Name] = sink
	case graph.KindSrcSink:
		args, _ := v.Args.(SrcSinkArgs)
		if args.Spec.FrameLen == 0 {
			args.Spec = DefaultTrafficSpec()
		}
		if args.Flows == 0 {
			args.Flows = 1
		}
		ss, err := vnf.NewSrcSink(vnf.SrcSinkConfig{
			Name: v.Name, PMD: pmds[0], Pool: d.node.Pool,
			Spec: args.Spec, Flows: args.Flows, Timestamp: args.Timestamp,
			RatePps: args.RatePps,
		})
		if err != nil {
			return err
		}
		d.srcsinks[v.Name] = ss
	default:
		return fmt.Errorf("unknown VNF kind %q", v.Kind)
	}
	return nil
}

// DefaultTrafficSpec is the canonical 64-byte bidirectional UDP workload of
// the paper's evaluation.
func DefaultTrafficSpec() pkt.UDPSpec {
	return pkt.UDPSpec{
		SrcMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x02},
		SrcIP:  pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000,
		FrameLen: pkt.MinFrame,
	}
}

// conntrackFor resolves a stateful VNF's connection table: an explicit
// override, or a fresh per-VNF (sweeper-attached) table — per-VNF because a
// shard admits one writer and chain stages key on different tuple spaces.
func (d *Deployment) conntrackFor(override *conntrack.Table) (*conntrack.Table, error) {
	if override != nil {
		d.node.Switch.AttachConntrack(override)
		return override, nil
	}
	return d.node.NewConntrack()
}

// Sink returns a named sink VNF (nil if absent).
func (d *Deployment) Sink(name string) *vnf.Sink { return d.sinks[name] }

// Source returns the i-th source VNF (nil if absent); sources carry no graph
// names, deployment order is instantiation order.
func (d *Deployment) Source(i int) *vnf.Source {
	if i < 0 || i >= len(d.sources) {
		return nil
	}
	return d.sources[i]
}

// NAT44 returns a named NAT44 VNF handle (nil if absent).
func (d *Deployment) NAT44(name string) *vnf.NAT44 { return d.nats[name] }

// ACL returns a named ACL VNF handle (nil if absent).
func (d *Deployment) ACL(name string) *vnf.ACL { return d.acls[name] }

// Balancer returns a named balancer VNF handle (nil if absent).
func (d *Deployment) Balancer(name string) *vnf.Balancer { return d.lbs[name] }

// SrcSink returns a named bidirectional endpoint VNF (nil if absent).
func (d *Deployment) SrcSink(name string) *vnf.SrcSink { return d.srcsinks[name] }

// Apps returns the started middle-VNF applications.
func (d *Deployment) Apps() []*vnf.App { return d.apps }

// Stop halts all VNFs and destroys their VMs (ports removed from the
// switch). Steering rules die first — the deployment's own (by cookie)
// plus any flow referencing the doomed ports, whoever installed it, so the
// bypass manager tears links down before the PMD owners disappear.
// Unrelated flows (other deployments, controller rules on other ports)
// survive.
func (d *Deployment) Stop() {
	mine := make(map[uint32]bool)
	for _, ids := range d.vms {
		for _, id := range ids {
			mine[id] = true
		}
	}
	touchesMine := func(f *flow.Flow) bool {
		if f.Match.Mask.InPort != 0 && mine[f.Match.Key.InPort] {
			return true
		}
		for _, a := range f.Actions {
			if a.Type == flow.ActOutput && mine[a.Port] {
				return true
			}
		}
		return false
	}
	d.node.Switch.Table().DeleteWhere(func(f *flow.Flow) bool {
		return f.Cookie == d.cookie || touchesMine(f)
	})
	if d.node.Manager != nil {
		// Wait for the manager to process the deletions before VMs go away.
		// Only this deployment's bypasses dissolve; count the survivors via
		// the ports being destroyed instead of expecting zero.
		waitCond(func() bool {
			for _, l := range d.node.Switch.BypassLinks() {
				if mine[l.From] || mine[l.To] {
					return false
				}
			}
			return true
		})
	}
	for _, s := range d.sources {
		s.Stop()
	}
	for _, s := range d.srcsinks {
		s.Stop()
	}
	for _, app := range d.apps {
		app.Stop()
	}
	for _, s := range d.sinks {
		s.Stop()
	}
	for name, ids := range d.vms {
		_ = d.node.DestroyVM(name, ids)
	}
}
