package orchestrator

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/trunk"
	"ovshighway/internal/vnf"
)

// TrunkConfig shapes the shared trunks a cluster creates between node
// pairs. Unlike the retired one-wire-per-crossing fabric, the rate budget
// lives on the TRUNK and is contended by every lane: the trunk NICs
// themselves are unshaped so the budget is not paid twice.
type TrunkConfig struct {
	// RatePps caps each trunk direction, shared across all lanes
	// (0 = 10G line rate for 64B frames, negative = unlimited).
	RatePps float64
	// Latency is the per-direction propagation delay (0 = none).
	Latency time.Duration
	// QueueSize is the trunk NIC descriptor ring depth (default 1024).
	QueueSize int
}

// Cluster is a set of NFV nodes joined by shared VLAN-steered trunks.
// Every node runs the same datapath mode and carries its own vSwitch,
// agent, packet pool and — in highway mode — detector and bypass manager;
// nothing is shared across nodes except the trunks, which are created
// lazily per node pair and carry one VLAN lane per service-graph crossing.
type Cluster struct {
	cfg   NodeConfig
	order []string
	nodes map[string]*Node

	// mu guards the trunk registry and its per-trunk VLAN id allocators.
	mu     sync.Mutex
	trunks map[pairKey]*clusterTrunk
	// poller drives every trunk of this cluster from one shared goroutine
	// (created lazily with the first trunk). Guarded by mu.
	poller *trunk.Poller
}

// pairKey identifies an unordered node pair (lo < hi lexically).
type pairKey struct{ lo, hi string }

func makePair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// clusterTrunk is one realized node-pair uplink: the trunk and its two NIC
// attachments. Lane/vid state lives solely inside trunk.Trunk (AllocLane is
// the one allocator). All fields are guarded by Cluster.mu.
type clusterTrunk struct {
	pair           pairKey
	tr             *trunk.Trunk
	cfg            TrunkConfig // the config the trunk was created with
	nicLo, nicHi   *nic.NIC
	nameLo, nameHi string
	portLo, portHi uint32
}

// port returns the trunk NIC's switch port id on the given node.
func (ct *clusterTrunk) port(node string) uint32 {
	if node == ct.pair.lo {
		return ct.portLo
	}
	return ct.portHi
}

// NewCluster boots one node per name (first name is the default placement
// target). All nodes share the config template but own independent
// resources.
func NewCluster(names []string, cfg NodeConfig) (*Cluster, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("orchestrator: cluster needs at least one node name")
	}
	c := &Cluster{
		cfg:    cfg,
		nodes:  make(map[string]*Node, len(names)),
		trunks: make(map[pairKey]*clusterTrunk),
	}
	for _, name := range names {
		if name == "" {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: empty node name")
		}
		if _, dup := c.nodes[name]; dup {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: duplicate node name %q", name)
		}
		n, err := NewNode(cfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: node %s: %w", name, err)
		}
		c.nodes[name] = n
		c.order = append(c.order, name)
	}
	return c, nil
}

// Node returns the named node (nil if absent).
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// NodeNames returns the node names in creation order.
func (c *Cluster) NodeNames() []string { return append([]string(nil), c.order...) }

// DefaultNode returns the placement target for unlabeled VNFs.
func (c *Cluster) DefaultNode() string { return c.order[0] }

// Mode returns the cluster's datapath mode.
func (c *Cluster) Mode() Mode { return c.cfg.Mode }

// Stop shuts the cluster down: trunk pumps first (so no goroutine keeps
// feeding the dying switches), then every node.
func (c *Cluster) Stop() {
	c.mu.Lock()
	trunks := make([]*clusterTrunk, 0, len(c.trunks))
	for _, ct := range c.trunks {
		trunks = append(trunks, ct)
	}
	c.trunks = make(map[pairKey]*clusterTrunk)
	poller := c.poller
	c.poller = nil
	c.mu.Unlock()
	for _, ct := range trunks {
		ct.tr.Stop()
	}
	if poller != nil {
		poller.Stop()
	}
	for _, name := range c.order {
		c.nodes[name].Stop()
	}
}

// BypassLinkCount sums the live bypass channels across all nodes.
func (c *Cluster) BypassLinkCount() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Switch.BypassLinkCount()
	}
	return total
}

// WaitBypassCount blocks (bounded) until exactly want bypasses are live
// cluster-wide.
func (c *Cluster) WaitBypassCount(want int) bool {
	return waitCond(func() bool { return c.BypassLinkCount() == want })
}

// TrunkCount returns the number of live node-pair trunks.
func (c *Cluster) TrunkCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.trunks)
}

// Trunks returns the live trunks, ordered by node pair.
func (c *Cluster) Trunks() []*trunk.Trunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]pairKey, 0, len(c.trunks))
	for k := range c.trunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lo != keys[j].lo {
			return keys[i].lo < keys[j].lo
		}
		return keys[i].hi < keys[j].hi
	})
	out := make([]*trunk.Trunk, len(keys))
	for i, k := range keys {
		out[i] = c.trunks[k].tr
	}
	return out
}

// nicNodes maps every externally-registered NIC name to its home node, for
// partitioning graphs with NIC endpoints.
func (c *Cluster) nicNodes() map[string]string {
	out := make(map[string]string)
	for _, name := range c.order {
		for _, nn := range c.nodes[name].NICNames() {
			out[nn] = name
		}
	}
	return out
}

// ensureTrunk returns the node pair's trunk, creating it (NICs on both
// sides plus the pump pair) on first use. A trunk is shared infrastructure:
// a deployment joining an existing trunk must ask for the same shaping, or
// its lanes would silently ride a link configured by somebody else — that
// mismatch is an error, not a silent drop. Caller holds c.mu.
func (c *Cluster) ensureTrunk(pair pairKey, tcfg TrunkConfig) (*clusterTrunk, error) {
	if ct, ok := c.trunks[pair]; ok {
		if ct.cfg != tcfg {
			return nil, fmt.Errorf(
				"orchestrator: trunk %s-%s already exists with config %+v; deployment asked for %+v",
				pair.lo, pair.hi, ct.cfg, tcfg)
		}
		return ct, nil
	}
	rate := tcfg.RatePps
	switch {
	case rate == 0:
		rate = nic.LineRate64B
	case rate < 0:
		rate = 0 // unshaped
	}
	nlo, nhi := c.nodes[pair.lo], c.nodes[pair.hi]
	nameLo := "trunk:" + pair.hi // the peer names the uplink, like eth-to-<peer>
	nameHi := "trunk:" + pair.lo
	// Trunk NICs are unshaped: the shared budget lives on the trunk itself.
	devLo, err := nlo.AddNIC(nameLo, nic.Config{RatePps: -1, QueueSize: tcfg.QueueSize})
	if err != nil {
		return nil, fmt.Errorf("orchestrator: trunk NIC on %s: %w", pair.lo, err)
	}
	devHi, err := nhi.AddNIC(nameHi, nic.Config{RatePps: -1, QueueSize: tcfg.QueueSize})
	if err != nil {
		_ = nlo.RemoveNIC(nameLo)
		return nil, fmt.Errorf("orchestrator: trunk NIC on %s: %w", pair.hi, err)
	}
	if c.poller == nil {
		c.poller = trunk.NewPoller()
	}
	tr, err := trunk.New(trunk.Config{
		Name:    fmt.Sprintf("trunk-%s-%s", pair.lo, pair.hi),
		A:       trunk.Endpoint{NIC: devLo, Pool: nlo.Pool},
		B:       trunk.Endpoint{NIC: devHi, Pool: nhi.Pool},
		RatePps: rate,
		Latency: tcfg.Latency,
		Poller:  c.poller,
	})
	if err != nil {
		_ = nlo.RemoveNIC(nameLo)
		_ = nhi.RemoveNIC(nameHi)
		return nil, err
	}
	portLo, _ := nlo.NICPort(nameLo)
	portHi, _ := nhi.NICPort(nameHi)
	ct := &clusterTrunk{
		pair: pair,
		tr:   tr,
		cfg:  tcfg,
		nicLo: devLo, nicHi: devHi,
		nameLo: nameLo, nameHi: nameHi,
		portLo: portLo, portHi: portHi,
	}
	c.trunks[pair] = ct
	return ct, nil
}

// releaseLane frees one lane and, when the trunk has no lanes left, tears
// the whole trunk down: pumps stopped, NICs detached, queues drained.
// Registry removal, pump stop and NIC detachment all happen inside the
// critical section, so a concurrent Deploy on the same node pair either
// still finds the trunk (and joins it) or finds the NIC names free — it
// can never hit a half-dismantled trunk's name reservation.
func (c *Cluster) releaseLane(pair pairKey, vid uint16) {
	c.mu.Lock()
	ct, ok := c.trunks[pair]
	if !ok {
		c.mu.Unlock()
		return
	}
	_ = ct.tr.RemoveLane(vid)
	if ct.tr.LaneCount() > 0 {
		c.mu.Unlock()
		return
	}
	// Last lane gone: dismantle. Stop the pumps (bounded: the poller
	// detaches them within two iterations) and detach the NICs before
	// unlocking.
	delete(c.trunks, pair)
	ct.tr.Stop()
	if len(c.trunks) == 0 && c.poller != nil {
		// Symmetric with the lazy create in ensureTrunk: the last trunk
		// takes the shared poller goroutine with it, so a trunk-less
		// cluster is back to zero idle wakeups (a later Deploy recreates
		// it).
		c.poller.Stop()
		c.poller = nil
	}
	nlo, nhi := c.nodes[pair.lo], c.nodes[pair.hi]
	_ = nlo.RemoveNIC(ct.nameLo)
	_ = nhi.RemoveNIC(ct.nameHi)
	c.mu.Unlock()

	// Wait out PMD iterations still holding the old port snapshots, then
	// reclaim whatever is parked in the NIC queues (pumps and PMDs are
	// both gone, so the drains see quiescent rings).
	nlo.Switch.WaitDatapathQuiescence()
	nhi.Switch.WaitDatapathQuiescence()
	scratch := make([]*mempool.Buf, 32)
	for _, dev := range []*nic.NIC{ct.nicLo, ct.nicHi} {
		for {
			k := dev.DrainToWire(scratch)
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
		}
		for {
			k := dev.DrainFromWire(scratch)
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
		}
	}
}

// clusterLane is one realized crossing: a VLAN lane on a node pair's trunk.
type clusterLane struct {
	pair pairKey
	vid  uint16
}

// ClusterDeployment is a service graph deployed across a cluster: one local
// deployment per participating node plus the trunk lanes realizing the
// cross-node edges.
type ClusterDeployment struct {
	cluster *Cluster
	deps    map[string]*Deployment
	lanes   []clusterLane
}

// Deploy partitions g by VNF placement (unlabeled VNFs land on the default
// node), allocates a VLAN lane on the node pair's shared trunk for every
// boundary crossing (creating the trunk on first use), and lowers each
// partition on its node. Crossing edges lower to vlan steering: the sending
// side pushes the lane's tag and outputs to the trunk NIC, the receiving
// side matches (trunk port, vid), strips the tag and outputs to the target
// VNF port. The per-node lowering is exactly the single-node Deploy path,
// so in highway mode each node's detector establishes bypasses for its
// intra-node hops while the trunk hops stay on the NIC path — the highway
// survives the split, and all crossings of a node pair contend for one
// shared uplink exactly like a ToR fabric.
func (c *Cluster) Deploy(g *graph.Graph, tcfg TrunkConfig) (*ClusterDeployment, error) {
	part, err := g.Partition(c.DefaultNode(), c.nicNodes())
	if err != nil {
		return nil, err
	}
	for node := range part.Local {
		if c.nodes[node] == nil {
			return nil, fmt.Errorf("orchestrator: graph places VNFs on unknown node %q (cluster has %v)", node, c.order)
		}
	}
	cd := &ClusterDeployment{cluster: c, deps: make(map[string]*Deployment)}

	// Realize the crossings first: one lane per crossing on the node pair's
	// shared trunk, so the steering rules below have ports and vids to
	// reference.
	type laneSteer struct {
		ce  graph.CrossEdge
		ct  *clusterTrunk
		vid uint16
	}
	steers := make([]laneSteer, 0, len(part.Cross))
	c.mu.Lock()
	for _, ce := range part.Cross {
		pair := makePair(ce.NodeA, ce.NodeB)
		ct, err := c.ensureTrunk(pair, tcfg)
		if err != nil {
			c.mu.Unlock()
			cd.Stop()
			return nil, err
		}
		vid, err := ct.tr.AllocLane()
		if err != nil {
			c.mu.Unlock()
			cd.Stop()
			return nil, err
		}
		cd.lanes = append(cd.lanes, clusterLane{pair: pair, vid: vid})
		steers = append(steers, laneSteer{ce: ce, ct: ct, vid: vid})
	}
	c.mu.Unlock()

	// Lower each partition locally. The local graphs came out of Partition
	// validated and hold no crossing edges — those are steered below.
	for _, node := range c.order {
		lg, ok := part.Local[node]
		if !ok {
			continue
		}
		dep, err := c.nodes[node].lower(lg)
		if err != nil {
			cd.Stop()
			return nil, fmt.Errorf("orchestrator: node %s: %w", node, err)
		}
		cd.deps[node] = dep
	}

	// Install the lane steering, batched per node and stamped with that
	// node's deployment cookie so teardown reclaims exactly these rules.
	specs := make(map[string][]flow.FlowSpec)
	addSteer := func(fromNode string, fromEp graph.Endpoint, toNode string, toEp graph.Endpoint, ct *clusterTrunk, vid uint16) error {
		src, err := cd.deps[fromNode].resolve(fromEp)
		if err != nil {
			return err
		}
		dst, err := cd.deps[toNode].resolve(toEp)
		if err != nil {
			return err
		}
		specs[fromNode] = append(specs[fromNode], flow.FlowSpec{
			Priority: cd.deps[fromNode].flowPrio,
			Match:    flow.MatchInPort(src),
			Actions:  flow.Actions{flow.PushVlan(vid), flow.Output(ct.port(fromNode))},
			Cookie:   cd.deps[fromNode].cookie,
		})
		specs[toNode] = append(specs[toNode], flow.FlowSpec{
			Priority: cd.deps[toNode].flowPrio,
			Match:    flow.MatchInPort(ct.port(toNode)).WithVlan(vid),
			Actions:  flow.Actions{flow.PopVlan(), flow.Output(dst)},
			Cookie:   cd.deps[toNode].cookie,
		})
		return nil
	}
	for _, st := range steers {
		if err := addSteer(st.ce.NodeA, st.ce.A, st.ce.NodeB, st.ce.B, st.ct, st.vid); err != nil {
			cd.Stop()
			return nil, err
		}
		if st.ce.Bidirectional {
			if err := addSteer(st.ce.NodeB, st.ce.B, st.ce.NodeA, st.ce.A, st.ct, st.vid); err != nil {
				cd.Stop()
				return nil, err
			}
		}
	}
	for node, ss := range specs {
		c.nodes[node].Switch.Table().AddBatch(ss)
	}
	return cd, nil
}

// DeployPlaced optimizes the graph's placement first — Graph.Place assigns
// every unpinned VNF a node, minimizing trunk crossings under balance — and
// then deploys the placed graph. The chosen crossing count is returned
// alongside the deployment.
func (c *Cluster) DeployPlaced(g *graph.Graph, tcfg TrunkConfig) (*ClusterDeployment, int, error) {
	crossings, err := g.Place(c.order, c.nicNodes())
	if err != nil {
		return nil, 0, err
	}
	cd, err := c.Deploy(g, tcfg)
	if err != nil {
		return nil, 0, err
	}
	return cd, crossings, nil
}

// Deployment returns the named node's local deployment (nil if the node
// hosts no VNFs).
func (cd *ClusterDeployment) Deployment(node string) *Deployment { return cd.deps[node] }

// SrcSink finds a named bidirectional endpoint VNF across all partitions.
func (cd *ClusterDeployment) SrcSink(name string) *vnf.SrcSink {
	for _, d := range cd.deps {
		if ss := d.SrcSink(name); ss != nil {
			return ss
		}
	}
	return nil
}

// Trunks returns the trunks this deployment's lanes ride, ordered by node
// pair (shared trunks appear once even when several lanes use them).
func (cd *ClusterDeployment) Trunks() []*trunk.Trunk {
	cd.cluster.mu.Lock()
	defer cd.cluster.mu.Unlock()
	seen := make(map[pairKey]bool)
	var out []*trunk.Trunk
	for _, ln := range cd.lanes {
		if seen[ln.pair] {
			continue
		}
		seen[ln.pair] = true
		if ct, ok := cd.cluster.trunks[ln.pair]; ok {
			out = append(out, ct.tr)
		}
	}
	return out
}

// Lanes returns the deployment's (node pair, vid) lane assignments in
// crossing order.
func (cd *ClusterDeployment) Lanes() []struct {
	NodeA, NodeB string
	VID          uint16
} {
	out := make([]struct {
		NodeA, NodeB string
		VID          uint16
	}, len(cd.lanes))
	for i, ln := range cd.lanes {
		out[i].NodeA, out[i].NodeB, out[i].VID = ln.pair.lo, ln.pair.hi, ln.vid
	}
	return out
}

// Stop tears the cluster deployment down in dependency order: local
// deployments first (steering and lane rules deleted by cookie, bypasses
// dissolved, VMs destroyed), then the lanes — and with a trunk's last lane
// the trunk itself, its pumps stopped, NICs detached and queues drained.
// Lanes of co-resident deployments on the same trunks keep flowing.
func (cd *ClusterDeployment) Stop() {
	for _, node := range cd.cluster.order {
		if d := cd.deps[node]; d != nil {
			d.Stop()
		}
	}
	cd.deps = map[string]*Deployment{}
	for _, ln := range cd.lanes {
		cd.cluster.releaseLane(ln.pair, ln.vid)
	}
	cd.lanes = nil
}
