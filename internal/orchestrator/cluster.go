package orchestrator

import (
	"fmt"
	"sync/atomic"
	"time"

	"ovshighway/internal/graph"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/vnf"
	"ovshighway/internal/wire"
)

// WireConfig shapes the simulated cables a cluster creates between nodes.
type WireConfig struct {
	// RatePps caps each NIC direction (nic.Config semantics: 0 = 64B line
	// rate, negative = unlimited). The wire itself stays unshaped — the NIC
	// token buckets on both ends already pace the hop, and shaping twice
	// would halve the budget.
	RatePps float64
	// Latency is the per-direction propagation delay (0 = none).
	Latency time.Duration
	// QueueSize is the NIC descriptor ring depth (default 1024).
	QueueSize int
}

// Cluster is a set of NFV nodes joined by simulated wires. Every node runs
// the same datapath mode and carries its own vSwitch, agent, packet pool
// and — in highway mode — detector and bypass manager; nothing is shared
// across nodes except the wires a deployment creates.
type Cluster struct {
	cfg   NodeConfig
	order []string
	nodes map[string]*Node
	// deploySeq makes the synthesized wire-NIC names of concurrent
	// deployments on the same nodes unique.
	deploySeq atomic.Uint64
}

// NewCluster boots one node per name (first name is the default placement
// target). All nodes share the config template but own independent
// resources.
func NewCluster(names []string, cfg NodeConfig) (*Cluster, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("orchestrator: cluster needs at least one node name")
	}
	c := &Cluster{cfg: cfg, nodes: make(map[string]*Node, len(names))}
	for _, name := range names {
		if name == "" {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: empty node name")
		}
		if _, dup := c.nodes[name]; dup {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: duplicate node name %q", name)
		}
		n, err := NewNode(cfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: node %s: %w", name, err)
		}
		c.nodes[name] = n
		c.order = append(c.order, name)
	}
	return c, nil
}

// Node returns the named node (nil if absent).
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// NodeNames returns the node names in creation order.
func (c *Cluster) NodeNames() []string { return append([]string(nil), c.order...) }

// DefaultNode returns the placement target for unlabeled VNFs.
func (c *Cluster) DefaultNode() string { return c.order[0] }

// Mode returns the cluster's datapath mode.
func (c *Cluster) Mode() Mode { return c.cfg.Mode }

// Stop shuts every node down.
func (c *Cluster) Stop() {
	for _, name := range c.order {
		c.nodes[name].Stop()
	}
}

// BypassLinkCount sums the live bypass channels across all nodes.
func (c *Cluster) BypassLinkCount() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Switch.BypassLinkCount()
	}
	return total
}

// WaitBypassCount blocks (bounded) until exactly want bypasses are live
// cluster-wide.
func (c *Cluster) WaitBypassCount(want int) bool {
	return waitCond(func() bool { return c.BypassLinkCount() == want })
}

// nicNodes maps every externally-registered NIC name to its home node, for
// partitioning graphs with NIC endpoints.
func (c *Cluster) nicNodes() map[string]string {
	out := make(map[string]string)
	for _, name := range c.order {
		for _, nn := range c.nodes[name].NICNames() {
			out[nn] = name
		}
	}
	return out
}

// clusterWire is one realized crossing: the wire and its two NIC
// attachments.
type clusterWire struct {
	w            *wire.Wire
	nicA, nicB   *nic.NIC
	nodeA, nodeB string
	nameA, nameB string
}

// ClusterDeployment is a service graph deployed across a cluster: one local
// deployment per participating node plus the wires realizing the
// cross-node edges.
type ClusterDeployment struct {
	cluster *Cluster
	deps    map[string]*Deployment
	wires   []clusterWire
}

// Deploy partitions g by VNF placement (unlabeled VNFs land on the default
// node), attaches a NIC pair and a wire for every boundary crossing, and
// lowers each partition on its node. The per-node lowering is exactly the
// single-node Deploy path, so in highway mode each node's detector
// establishes bypasses for its intra-node hops while the wire hops stay on
// the NIC path — the highway survives the split.
func (c *Cluster) Deploy(g *graph.Graph, wcfg WireConfig) (*ClusterDeployment, error) {
	prefix := fmt.Sprintf("d%d.", c.deploySeq.Add(1))
	part, err := g.Partition(c.DefaultNode(), c.nicNodes(), prefix)
	if err != nil {
		return nil, err
	}
	for node := range part.Local {
		if c.nodes[node] == nil {
			return nil, fmt.Errorf("orchestrator: graph places VNFs on unknown node %q (cluster has %v)", node, c.order)
		}
	}
	cd := &ClusterDeployment{cluster: c, deps: make(map[string]*Deployment)}

	// Realize the crossings first: lowering resolves NIC endpoints by name,
	// so the wire NICs must exist before the partitions deploy.
	for _, ce := range part.Cross {
		na, nb := c.nodes[ce.NodeA], c.nodes[ce.NodeB]
		devA, err := na.AddNIC(ce.NICA, nic.Config{RatePps: wcfg.RatePps, QueueSize: wcfg.QueueSize})
		if err != nil {
			cd.Stop()
			return nil, fmt.Errorf("orchestrator: wire NIC %s on %s: %w", ce.NICA, ce.NodeA, err)
		}
		devB, err := nb.AddNIC(ce.NICB, nic.Config{RatePps: wcfg.RatePps, QueueSize: wcfg.QueueSize})
		if err != nil {
			_ = na.RemoveNIC(ce.NICA)
			cd.Stop()
			return nil, fmt.Errorf("orchestrator: wire NIC %s on %s: %w", ce.NICB, ce.NodeB, err)
		}
		w, err := wire.New(wire.Config{
			Name: fmt.Sprintf("wire-%s-%s-%d", ce.NodeA, ce.NodeB, ce.Index),
			A:    wire.Endpoint{NIC: devA, Pool: na.Pool},
			B:    wire.Endpoint{NIC: devB, Pool: nb.Pool},
			AtoB: wire.Shaping{Latency: wcfg.Latency},
			BtoA: wire.Shaping{Latency: wcfg.Latency},
		})
		if err != nil {
			_ = na.RemoveNIC(ce.NICA)
			_ = nb.RemoveNIC(ce.NICB)
			cd.Stop()
			return nil, err
		}
		cd.wires = append(cd.wires, clusterWire{
			w: w, nicA: devA, nicB: devB,
			nodeA: ce.NodeA, nodeB: ce.NodeB,
			nameA: ce.NICA, nameB: ce.NICB,
		})
	}

	// Lower each partition locally. The local graphs came out of Partition
	// validated, and every synthesized NIC endpoint now resolves.
	for _, node := range c.order {
		lg, ok := part.Local[node]
		if !ok {
			continue
		}
		dep, err := c.nodes[node].lower(lg)
		if err != nil {
			cd.Stop()
			return nil, fmt.Errorf("orchestrator: node %s: %w", node, err)
		}
		cd.deps[node] = dep
	}
	return cd, nil
}

// Deployment returns the named node's local deployment (nil if the node
// hosts no VNFs).
func (cd *ClusterDeployment) Deployment(node string) *Deployment { return cd.deps[node] }

// SrcSink finds a named bidirectional endpoint VNF across all partitions.
func (cd *ClusterDeployment) SrcSink(name string) *vnf.SrcSink {
	for _, d := range cd.deps {
		if ss := d.SrcSink(name); ss != nil {
			return ss
		}
	}
	return nil
}

// Wires returns the wires this deployment created.
func (cd *ClusterDeployment) Wires() []*wire.Wire {
	out := make([]*wire.Wire, len(cd.wires))
	for i := range cd.wires {
		out[i] = cd.wires[i].w
	}
	return out
}

// Stop tears the cluster deployment down in dependency order: local
// deployments first (flows deleted, bypasses dissolved, VMs destroyed),
// then the wires, and finally the wire NICs — whose queues are drained only
// after both the pumps and the datapaths have detached.
func (cd *ClusterDeployment) Stop() {
	for _, node := range cd.cluster.order {
		if d := cd.deps[node]; d != nil {
			d.Stop()
		}
	}
	cd.deps = map[string]*Deployment{}
	for _, cw := range cd.wires {
		cw.w.Stop()
	}
	for _, cw := range cd.wires {
		_ = cd.cluster.nodes[cw.nodeA].RemoveNIC(cw.nameA)
		_ = cd.cluster.nodes[cw.nodeB].RemoveNIC(cw.nameB)
	}
	// Wait out PMD iterations still holding the old port snapshots, then
	// reclaim whatever is parked in the NIC queues (wire pumps and PMDs are
	// both gone, so the drains see quiescent rings).
	seen := make(map[string]bool)
	for _, cw := range cd.wires {
		for _, node := range []string{cw.nodeA, cw.nodeB} {
			if !seen[node] {
				seen[node] = true
				cd.cluster.nodes[node].Switch.WaitDatapathQuiescence()
			}
		}
	}
	scratch := make([]*mempool.Buf, 32)
	for _, cw := range cd.wires {
		for _, dev := range []*nic.NIC{cw.nicA, cw.nicB} {
			for {
				k := dev.DrainToWire(scratch)
				if k == 0 {
					break
				}
				mempool.FreeBatch(scratch[:k])
			}
			for {
				k := dev.DrainFromWire(scratch)
				if k == 0 {
					break
				}
				mempool.FreeBatch(scratch[:k])
			}
		}
	}
	cd.wires = nil
}
