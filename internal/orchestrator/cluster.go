package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/trunk"
	"ovshighway/internal/vnf"
)

// FabricMode selects how inter-node crossings are routed through the
// cluster's switched core.
type FabricMode int

// Fabric modes.
const (
	// FabricMesh connects every communicating node pair directly — the
	// ToR-cable-per-pair model. With ECMPWidth > 1 each adjacency is a
	// bundle of parallel trunks with per-flow path pinning.
	FabricMesh FabricMode = iota
	// FabricSpine relays leaf–leaf crossings through a designated spine
	// node: leaves only ever uplink to the spine (leaf–spine adjacencies,
	// optionally ECMP bundles), and the spine's vSwitch forwards tagged
	// lanes between its trunk ports. Crossings that touch the spine itself
	// stay single-hop.
	FabricSpine
)

func (m FabricMode) String() string {
	if m == FabricSpine {
		return "spine"
	}
	return "mesh"
}

// TrunkConfig shapes the shared trunk fabric a cluster creates between
// nodes. Unlike the retired one-wire-per-crossing fabric, the rate budget
// lives on each TRUNK and is contended by every lane riding it: the trunk
// NICs themselves are unshaped so the budget is not paid twice.
type TrunkConfig struct {
	// RatePps caps each trunk direction, shared across all lanes
	// (0 = 10G line rate for 64B frames, negative = unlimited). With
	// ECMPWidth > 1 the cap applies PER PARALLEL TRUNK, so a wider bundle
	// carries proportionally more.
	RatePps float64
	// Latency is the per-direction propagation delay (0 = none).
	Latency time.Duration
	// QueueSize is the trunk NIC descriptor ring depth (default 1024).
	QueueSize int
	// StagingCap bounds each trunk direction's per-PCP staging queue
	// (default 256). Shallower queues surface congestion faster; deeper
	// ones absorb bigger bursts before dropping.
	StagingCap int
	// Mode selects the core topology (mesh or leaf–spine).
	Mode FabricMode
	// Spine names the relay node in FabricSpine mode (default: the
	// cluster's first node). Ignored when Spines is set.
	Spine string
	// Spines names the relay nodes of a k-spine Clos core: every leaf–leaf
	// crossing gets one two-hop path PER SPINE and the sender's ECMP spreads
	// flows across all of them (spines × bundle width, capped at
	// flow.MaxECMPPorts fan-out ports). Empty falls back to the single
	// Spine. Crossings that touch a spine themselves stay single-hop.
	Spines []string
	// ECMPWidth is the number of parallel trunks per adjacency (default 1,
	// max flow.MaxECMPPorts). Each flow is pinned to one trunk of the
	// bundle by its (lane, Hash2) hash; surviving trunks absorb the flows
	// of a torn-down one.
	ECMPWidth int
	// PCPWeights are the per-802.1Q-priority DRR weights every trunk of
	// the fabric schedules its shared budget by (0 = weight 1).
	PCPWeights [8]float64
}

// width returns the effective ECMP bundle width.
func (tc TrunkConfig) width() int {
	w := tc.ECMPWidth
	if w < 1 {
		w = 1
	}
	if w > flow.MaxECMPPorts {
		w = flow.MaxECMPPorts
	}
	return w
}

// equal compares two trunk configs field by field. TrunkConfig stopped
// being ==-comparable when Spines arrived (slice field), and ensureTrunk's
// shared-adjacency check must keep comparing by value, not identity.
func (tc TrunkConfig) equal(o TrunkConfig) bool {
	if len(tc.Spines) != len(o.Spines) {
		return false
	}
	for i := range tc.Spines {
		if tc.Spines[i] != o.Spines[i] {
			return false
		}
	}
	return tc.RatePps == o.RatePps &&
		tc.Latency == o.Latency &&
		tc.QueueSize == o.QueueSize &&
		tc.StagingCap == o.StagingCap &&
		tc.Mode == o.Mode &&
		tc.Spine == o.Spine &&
		tc.ECMPWidth == o.ECMPWidth &&
		tc.PCPWeights == o.PCPWeights
}

// Cluster is a set of NFV nodes joined by a switched-core fabric of shared
// VLAN-steered trunks. Every node runs the same datapath mode and carries
// its own vSwitch, agent, packet pool and — in highway mode — detector and
// bypass manager; nothing is shared across nodes except the trunk fabric,
// which is created lazily per adjacency and carries one VLAN lane per
// service-graph crossing (relayed through the spine in spine mode).
type Cluster struct {
	cfg   NodeConfig
	order []string
	nodes map[string]*Node

	// mu guards the trunk registry and the cluster-wide VLAN id allocator.
	mu     sync.Mutex
	trunks map[pairKey]*clusterTrunk
	// vids is the cluster-wide VLAN id allocator: one vid identifies a lane
	// on EVERY trunk of its path (all parallel trunks of every hop), so
	// allocation must be global, not per trunk.
	vids map[uint16]bool
	// poller drives every trunk of this cluster from one shared goroutine
	// (created lazily with the first trunk). Guarded by mu.
	poller *trunk.Poller
	// loadRx remembers each node's total port RX count at the previous
	// NodeLoads call, so load is apportioned by recent movement rather
	// than since-boot totals. Guarded by mu.
	loadRx []float64
	// deployments registers every live ClusterDeployment so the cluster's
	// reconciler can walk them — the desired state the fabric converges
	// toward. Guarded by mu.
	deployments map[*ClusterDeployment]bool
	// cordoned marks nodes excluded from automatic placement (DeployPlaced
	// and the rebalance controller). A cordon does not touch running VNFs —
	// Drain does that — and explicit pins still deploy to a cordoned node.
	// Guarded by mu; created on first Cordon.
	cordoned map[string]bool
}

// pairKey identifies an unordered node pair (lo < hi lexically).
type pairKey struct{ lo, hi string }

func makePair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// trunkLink is one physical parallel trunk of an adjacency: the trunk and
// its two NIC attachments. All fields are guarded by Cluster.mu.
type trunkLink struct {
	tr             *trunk.Trunk
	nicLo, nicHi   *nic.NIC
	nameLo, nameHi string
	portLo, portHi uint32
	// failed marks an injected link death. The link keeps its bundle slot
	// (so FailTrunk indices stay stable and repeatable) but contributes no
	// ports to steering and no capacity; the reconciler rebuilds the slot
	// in place.
	failed bool
}

// port returns the link's switch port id on the given node of the pair.
func (tl *trunkLink) port(pair pairKey, node string) uint32 {
	if node == pair.lo {
		return tl.portLo
	}
	return tl.portHi
}

// clusterTrunk is one realized adjacency: an ECMP bundle of parallel trunk
// links between a node pair plus the set of lanes riding it. Guarded by
// Cluster.mu.
type clusterTrunk struct {
	pair  pairKey
	cfg   TrunkConfig // the config the adjacency was created with
	links []*trunkLink
	// lanes is the set of vids riding this adjacency. Membership, not a
	// refcount: vids are cluster-globally unique per crossing and a path
	// never visits the same pair twice.
	lanes map[uint16]bool
}

// ports returns the LIVE bundle's switch port ids on the given node, in
// link order — the ECMP fan-out of steering rules installed on that node.
// Failed links are skipped: they hold their slot for repair but must not
// attract traffic.
func (ct *clusterTrunk) ports(node string) []uint32 {
	out := make([]uint32, 0, len(ct.links))
	for _, tl := range ct.links {
		if tl.failed {
			continue
		}
		out = append(out, tl.port(ct.pair, node))
	}
	return out
}

// live counts the bundle's non-failed links.
func (ct *clusterTrunk) live() int {
	n := 0
	for _, tl := range ct.links {
		if !tl.failed {
			n++
		}
	}
	return n
}

// NewCluster boots one node per name (first name is the default placement
// target). All nodes share the config template but own independent
// resources.
func NewCluster(names []string, cfg NodeConfig) (*Cluster, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("orchestrator: cluster needs at least one node name")
	}
	c := &Cluster{
		cfg:         cfg,
		nodes:       make(map[string]*Node, len(names)),
		trunks:      make(map[pairKey]*clusterTrunk),
		vids:        make(map[uint16]bool),
		deployments: make(map[*ClusterDeployment]bool),
	}
	for _, name := range names {
		if name == "" {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: empty node name")
		}
		if _, dup := c.nodes[name]; dup {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: duplicate node name %q", name)
		}
		n, err := NewNode(cfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("orchestrator: node %s: %w", name, err)
		}
		c.nodes[name] = n
		c.order = append(c.order, name)
	}
	return c, nil
}

// Node returns the named node (nil if absent).
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// NodeNames returns the node names in creation order.
func (c *Cluster) NodeNames() []string { return append([]string(nil), c.order...) }

// DefaultNode returns the placement target for unlabeled VNFs.
func (c *Cluster) DefaultNode() string { return c.order[0] }

// Mode returns the cluster's datapath mode.
func (c *Cluster) Mode() Mode { return c.cfg.Mode }

// Stop shuts the cluster down: trunk pumps first (so no goroutine keeps
// feeding the dying switches), then every node.
func (c *Cluster) Stop() {
	c.mu.Lock()
	var links []*trunkLink
	for _, ct := range c.trunks {
		links = append(links, ct.links...)
	}
	c.trunks = make(map[pairKey]*clusterTrunk)
	c.vids = make(map[uint16]bool)
	c.deployments = make(map[*ClusterDeployment]bool)
	poller := c.poller
	c.poller = nil
	c.mu.Unlock()
	for _, tl := range links {
		tl.tr.Stop()
	}
	if poller != nil {
		poller.Stop()
	}
	for _, name := range c.order {
		c.nodes[name].Stop()
	}
}

// BypassLinkCount sums the live bypass channels across all nodes.
func (c *Cluster) BypassLinkCount() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Switch.BypassLinkCount()
	}
	return total
}

// WaitBypassCount blocks (bounded) until exactly want bypasses are live
// cluster-wide.
func (c *Cluster) WaitBypassCount(want int) bool {
	return waitCond(func() bool { return c.BypassLinkCount() == want })
}

// TrunkCount returns the number of live adjacencies (node pairs joined by a
// trunk bundle; a bundle of k parallel trunks counts once).
func (c *Cluster) TrunkCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.trunks)
}

// sortedPairs returns the live adjacency keys in pair order. Caller holds
// c.mu.
func (c *Cluster) sortedPairs() []pairKey {
	keys := make([]pairKey, 0, len(c.trunks))
	for k := range c.trunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lo != keys[j].lo {
			return keys[i].lo < keys[j].lo
		}
		return keys[i].hi < keys[j].hi
	})
	return keys
}

// Trunks returns the live trunks, ordered by node pair then bundle index.
func (c *Cluster) Trunks() []*trunk.Trunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*trunk.Trunk
	for _, k := range c.sortedPairs() {
		for _, tl := range c.trunks[k].links {
			if tl.failed {
				continue
			}
			out = append(out, tl.tr)
		}
	}
	return out
}

// PairTrunks returns the parallel trunks of one adjacency in bundle order
// (nil when the pair has none) — the per-path observability surface of the
// fabric experiment.
func (c *Cluster) PairTrunks(a, b string) []*trunk.Trunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	ct, ok := c.trunks[makePair(a, b)]
	if !ok {
		return nil
	}
	out := make([]*trunk.Trunk, 0, len(ct.links))
	for _, tl := range ct.links {
		if tl.failed {
			continue
		}
		out = append(out, tl.tr)
	}
	return out
}

// ErrUnknownAdjacency reports a fault-injection call naming a node pair (or
// bundle slot) the fabric does not carry. Callers match it with errors.Is.
var ErrUnknownAdjacency = errors.New("orchestrator: unknown trunk adjacency")

// FailTrunk kills one parallel trunk of an adjacency (bundle index idx)
// while its lanes keep flowing over the surviving links: the datapath's
// ECMP output falls forward past the dead port, re-pinning the failed
// path's flows — live rebalance without a rule rewrite. The dead link keeps
// its bundle slot marked failed, so indices stay stable, a repeat call on
// an already-dead slot is a no-op, and the reconciler can rebuild the slot
// in place. Failing the last LIVE link of an adjacency is refused (that is
// teardown, not rebalance — use FailNode for total-loss scenarios).
func (c *Cluster) FailTrunk(a, b string, idx int) error {
	pair := makePair(a, b)
	c.mu.Lock()
	ct, ok := c.trunks[pair]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: no trunk between %s and %s", ErrUnknownAdjacency, a, b)
	}
	if idx < 0 || idx >= len(ct.links) {
		c.mu.Unlock()
		return fmt.Errorf("%w: trunk %s-%s has no bundle index %d", ErrUnknownAdjacency, pair.lo, pair.hi, idx)
	}
	tl := ct.links[idx]
	if tl.failed {
		c.mu.Unlock()
		return nil // idempotent: the slot is already dead
	}
	if ct.live() == 1 {
		c.mu.Unlock()
		return fmt.Errorf("orchestrator: refusing to fail the last live trunk of %s-%s", pair.lo, pair.hi)
	}
	tl.failed = true
	c.dismantleLinkLocked(pair, tl)
	c.mu.Unlock()
	c.drainDeadLink(pair, tl)
	return nil
}

// FailNode simulates a node blip: every trunk link touching the node dies
// (both directions — the peer sees its uplink vanish too) and the node's
// vSwitch restarts, losing its entire flow table and per-PMD caches. VMs,
// ports and pools survive, as they would across a vswitchd crash on a real
// host. Nothing is repaired here: recovery is the reconciler's job.
func (c *Cluster) FailNode(node string) error {
	if c.nodes[node] == nil {
		return fmt.Errorf("orchestrator: unknown node %q", node)
	}
	type dead struct {
		pair pairKey
		tl   *trunkLink
	}
	var killed []dead
	c.mu.Lock()
	for pair, ct := range c.trunks {
		if pair.lo != node && pair.hi != node {
			continue
		}
		for _, tl := range ct.links {
			if tl.failed {
				continue
			}
			tl.failed = true
			c.dismantleLinkLocked(pair, tl)
			killed = append(killed, dead{pair: pair, tl: tl})
		}
	}
	c.mu.Unlock()
	for _, d := range killed {
		c.drainDeadLink(d.pair, d.tl)
	}
	return c.RestartVSwitch(node)
}

// WipeDeploymentRules deletes every deployment-installed steering rule on
// the node (any flow carrying a deployment cookie), simulating an operator
// fat-fingering `ovs-ofctl del-flows` — controller-installed flows
// survive. Returns the number of rules destroyed; the reconciler is
// expected to put them all back.
func (c *Cluster) WipeDeploymentRules(node string) (int, error) {
	n := c.nodes[node]
	if n == nil {
		return 0, fmt.Errorf("orchestrator: unknown node %q", node)
	}
	return n.Switch.Table().DeleteWhere(func(f *flow.Flow) bool {
		return f.Cookie>>56 == DeployCookieBase>>56
	}), nil
}

// RestartVSwitch bounces the node's vSwitch: PMD threads stop, the flow
// table is wiped (taking EMC/SMC caches and all bypasses with it), and a
// fresh datapath relaunches empty. This is the vswitchd-crash fault the
// reconciler must heal by re-installing the deployment's rules.
func (c *Cluster) RestartVSwitch(node string) error {
	n := c.nodes[node]
	if n == nil {
		return fmt.Errorf("orchestrator: unknown node %q", node)
	}
	return n.Switch.Restart()
}

// nicNodes maps every externally-registered NIC name to its home node, for
// partitioning graphs with NIC endpoints.
func (c *Cluster) nicNodes() map[string]string {
	out := make(map[string]string)
	for _, name := range c.order {
		for _, nn := range c.nodes[name].NICNames() {
			out[nn] = name
		}
	}
	return out
}

// spineNodes resolves the relay nodes for spine-mode routing: the k-spine
// Spines list when set, else the single Spine (defaulting to the cluster's
// first node). Nil in mesh mode.
func (c *Cluster) spineNodes(tcfg TrunkConfig) ([]string, error) {
	if tcfg.Mode != FabricSpine {
		return nil, nil
	}
	spines := tcfg.Spines
	if len(spines) == 0 {
		spine := tcfg.Spine
		if spine == "" {
			spine = c.order[0]
		}
		spines = []string{spine}
	}
	seen := make(map[string]bool, len(spines))
	for _, s := range spines {
		if c.nodes[s] == nil {
			return nil, fmt.Errorf("orchestrator: spine node %q not in cluster %v", s, c.order)
		}
		if seen[s] {
			return nil, fmt.Errorf("orchestrator: duplicate spine node %q", s)
		}
		seen[s] = true
	}
	return spines, nil
}

// paths returns the adjacency paths a crossing between two distinct nodes
// rides: one direct path in mesh mode (or when either end IS a spine), and
// one src→spineᵢ→dst path per spine otherwise — the Clos multipath the
// sender's ECMP spreads flows across.
func (c *Cluster) paths(a, b string, spines []string, tcfg TrunkConfig) [][]pairKey {
	if tcfg.Mode != FabricSpine {
		return [][]pairKey{{makePair(a, b)}}
	}
	for _, s := range spines {
		if a == s || b == s {
			return [][]pairKey{{makePair(a, b)}}
		}
	}
	out := make([][]pairKey, 0, len(spines))
	for _, s := range spines {
		out = append(out, []pairKey{makePair(a, s), makePair(s, b)})
	}
	return out
}

// allocVidLocked hands out the lowest free cluster-wide VLAN id. Caller
// holds c.mu.
func (c *Cluster) allocVidLocked() (uint16, error) {
	for vid := uint16(1); vid <= 4094; vid++ {
		if !c.vids[vid] {
			c.vids[vid] = true
			return vid, nil
		}
	}
	return 0, fmt.Errorf("orchestrator: out of cluster VLAN ids")
}

// ensureTrunk returns the node pair's adjacency, creating its ECMP bundle
// (NICs on both sides plus the pump pairs) on first use. An adjacency is
// shared infrastructure: a deployment joining an existing one must ask for
// the same shaping and fabric shape, or its lanes would silently ride a
// link configured by somebody else — that mismatch is an error, not a
// silent drop. Caller holds c.mu.
func (c *Cluster) ensureTrunk(pair pairKey, tcfg TrunkConfig) (*clusterTrunk, error) {
	if ct, ok := c.trunks[pair]; ok {
		if !ct.cfg.equal(tcfg) {
			return nil, fmt.Errorf(
				"orchestrator: trunk %s-%s already exists with config %+v; deployment asked for %+v",
				pair.lo, pair.hi, ct.cfg, tcfg)
		}
		return ct, nil
	}
	nlo, nhi := c.nodes[pair.lo], c.nodes[pair.hi]
	if c.poller == nil {
		c.poller = trunk.NewPoller()
	}
	ct := &clusterTrunk{pair: pair, cfg: tcfg, lanes: make(map[uint16]bool)}
	undo := func() {
		for _, tl := range ct.links {
			tl.tr.Stop()
			_ = nlo.RemoveNIC(tl.nameLo)
			_ = nhi.RemoveNIC(tl.nameHi)
		}
		if len(c.trunks) == 0 && c.poller != nil {
			c.poller.Stop()
			c.poller = nil
		}
	}
	for i := 0; i < tcfg.width(); i++ {
		tl, err := c.newTrunkLinkLocked(pair, i, tcfg)
		if err != nil {
			undo()
			return nil, err
		}
		ct.links = append(ct.links, tl)
	}
	c.trunks[pair] = ct
	return ct, nil
}

// trunkRate maps the config's rate knob to the trunk's effective budget.
func trunkRate(tcfg TrunkConfig) float64 {
	switch {
	case tcfg.RatePps == 0:
		return nic.LineRate64B
	case tcfg.RatePps < 0:
		return 0 // unshaped
	}
	return tcfg.RatePps
}

// newTrunkLinkLocked creates bundle slot i of an adjacency: NICs on both
// sides plus the trunk joining them. Shared by first-use creation
// (ensureTrunk) and in-place repair of a failed slot (repairTrunkLocked) —
// a repaired link reuses the slot's NIC names, so the fabric looks
// identical before and after the fault. Caller holds c.mu.
func (c *Cluster) newTrunkLinkLocked(pair pairKey, i int, tcfg TrunkConfig) (*trunkLink, error) {
	nlo, nhi := c.nodes[pair.lo], c.nodes[pair.hi]
	// The peer names the uplink, like eth-to-<peer>; parallel bundle
	// members are distinguished by index.
	nameLo := fmt.Sprintf("trunk:%s#%d", pair.hi, i)
	nameHi := fmt.Sprintf("trunk:%s#%d", pair.lo, i)
	// Trunk NICs are unshaped: the shared budget lives on the trunk itself.
	devLo, err := nlo.AddNIC(nameLo, nic.Config{RatePps: -1, QueueSize: tcfg.QueueSize})
	if err != nil {
		return nil, fmt.Errorf("orchestrator: trunk NIC on %s: %w", pair.lo, err)
	}
	devHi, err := nhi.AddNIC(nameHi, nic.Config{RatePps: -1, QueueSize: tcfg.QueueSize})
	if err != nil {
		_ = nlo.RemoveNIC(nameLo)
		return nil, fmt.Errorf("orchestrator: trunk NIC on %s: %w", pair.hi, err)
	}
	tr, err := trunk.New(trunk.Config{
		Name:       fmt.Sprintf("trunk-%s-%s#%d", pair.lo, pair.hi, i),
		A:          trunk.Endpoint{NIC: devLo, Pool: nlo.Pool},
		B:          trunk.Endpoint{NIC: devHi, Pool: nhi.Pool},
		RatePps:    trunkRate(tcfg),
		Latency:    tcfg.Latency,
		PCPWeights: tcfg.PCPWeights,
		StagingCap: tcfg.StagingCap,
		Poller:     c.poller,
	})
	if err != nil {
		_ = nlo.RemoveNIC(nameLo)
		_ = nhi.RemoveNIC(nameHi)
		return nil, err
	}
	portLo, _ := nlo.NICPort(nameLo)
	portHi, _ := nhi.NICPort(nameHi)
	return &trunkLink{
		tr:    tr,
		nicLo: devLo, nicHi: devHi,
		nameLo: nameLo, nameHi: nameHi,
		portLo: portLo, portHi: portHi,
	}, nil
}

// repairTrunkLocked rebuilds every failed slot of an adjacency in place:
// fresh NICs under the slot's original names, a fresh trunk, and every lane
// the adjacency carries re-registered on it. Returns the number of slots
// rebuilt. Caller holds c.mu.
func (c *Cluster) repairTrunkLocked(ct *clusterTrunk) (int, error) {
	repaired := 0
	for i, tl := range ct.links {
		if !tl.failed {
			continue
		}
		fresh, err := c.newTrunkLinkLocked(ct.pair, i, ct.cfg)
		if err != nil {
			return repaired, fmt.Errorf("orchestrator: repair trunk %s-%s#%d: %w", ct.pair.lo, ct.pair.hi, i, err)
		}
		for vid := range ct.lanes {
			if err := fresh.tr.AddLane(vid); err != nil {
				fresh.tr.Stop()
				_ = c.nodes[ct.pair.lo].RemoveNIC(fresh.nameLo)
				_ = c.nodes[ct.pair.hi].RemoveNIC(fresh.nameHi)
				return repaired, err
			}
		}
		ct.links[i] = fresh
		repaired++
	}
	return repaired, nil
}

// addLaneLocked registers vid on every parallel trunk of the adjacency.
// Caller holds c.mu.
func (ct *clusterTrunk) addLaneLocked(vid uint16) error {
	for i, tl := range ct.links {
		if err := tl.tr.AddLane(vid); err != nil {
			for _, prev := range ct.links[:i] {
				_ = prev.tr.RemoveLane(vid)
			}
			return err
		}
	}
	ct.lanes[vid] = true
	return nil
}

// dismantleLinkLocked stops one link's pumps and detaches its NICs. Caller
// holds c.mu; call drainDeadLink after unlocking to reclaim queued buffers.
func (c *Cluster) dismantleLinkLocked(pair pairKey, tl *trunkLink) {
	tl.tr.Stop()
	_ = c.nodes[pair.lo].RemoveNIC(tl.nameLo)
	_ = c.nodes[pair.hi].RemoveNIC(tl.nameHi)
}

// drainDeadLink waits out PMD iterations still holding the old port
// snapshots, then reclaims whatever is parked in the dead link's NIC queues
// (pumps and PMDs are both gone, so the drains see quiescent rings).
func (c *Cluster) drainDeadLink(pair pairKey, tl *trunkLink) {
	c.nodes[pair.lo].Switch.WaitDatapathQuiescence()
	c.nodes[pair.hi].Switch.WaitDatapathQuiescence()
	scratch := make([]*mempool.Buf, 32)
	for _, dev := range []*nic.NIC{tl.nicLo, tl.nicHi} {
		for {
			k := dev.DrainToWire(scratch)
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
		}
		for {
			k := dev.DrainFromWire(scratch)
			if k == 0 {
				break
			}
			mempool.FreeBatch(scratch[:k])
		}
	}
}

// releaseLane frees one lane hop on an adjacency and, when the adjacency
// has no lanes left, tears the whole bundle down: pumps stopped, NICs
// detached, queues drained. Registry removal, pump stop and NIC detachment
// all happen inside the critical section, so a concurrent Deploy on the
// same node pair either still finds the adjacency (and joins it) or finds
// the NIC names free — it can never hit a half-dismantled bundle's name
// reservation.
func (c *Cluster) releaseLane(pair pairKey, vid uint16) {
	c.mu.Lock()
	ct, ok := c.trunks[pair]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(ct.lanes, vid)
	for _, tl := range ct.links {
		_ = tl.tr.RemoveLane(vid)
	}
	if len(ct.lanes) > 0 {
		c.mu.Unlock()
		return
	}
	// Last lane gone: dismantle the bundle. Stop the pumps (bounded: the
	// poller detaches them within two iterations) and detach the NICs
	// before unlocking.
	delete(c.trunks, pair)
	for _, tl := range ct.links {
		c.dismantleLinkLocked(pair, tl)
	}
	if len(c.trunks) == 0 && c.poller != nil {
		// Symmetric with the lazy create in ensureTrunk: the last trunk
		// takes the shared poller goroutine with it, so a trunk-less
		// cluster is back to zero idle wakeups (a later Deploy recreates
		// it).
		c.poller.Stop()
		c.poller = nil
	}
	c.mu.Unlock()

	for _, tl := range ct.links {
		c.drainDeadLink(pair, tl)
	}
}

// releaseVid returns a lane's cluster-wide VLAN id to the allocator.
func (c *Cluster) releaseVid(vid uint16) {
	c.mu.Lock()
	delete(c.vids, vid)
	c.mu.Unlock()
}

// laneSteer is one realized crossing's steering intent: the crossing, its
// cluster-wide VLAN id and the adjacency paths it rides (a single one-hop
// path in mesh mode, one two-hop path per spine in a k-spine core; the vid
// is registered on every trunk of every path). Hop port snapshots are
// deliberately NOT stored: they are recaptured under Cluster.mu every time
// rules are (re)derived, so a repaired bundle's fresh ports flow into the
// next reconcile pass automatically.
type laneSteer struct {
	ce    graph.CrossEdge
	vid   uint16
	paths [][]pairKey
}

// eachPair visits every adjacency of every path, in path-then-hop order.
func (st laneSteer) eachPair(fn func(pairKey)) {
	for _, path := range st.paths {
		for _, pair := range path {
			fn(pair)
		}
	}
}

// ClusterDeployment is a service graph deployed across a cluster: one local
// deployment per participating node plus the trunk lanes realizing the
// cross-node edges (and, in spine mode, the relay rules on the spine). It
// retains its DESIRED state — the graph, fabric config and lane
// assignments — so the reconciler can re-derive what every node's flow
// table and the trunk registry should hold and repair drift.
type ClusterDeployment struct {
	cluster *Cluster
	// mu serializes control-plane operations on this deployment: reconcile
	// passes, live migration and teardown.
	mu      sync.Mutex
	stopped bool

	// migrating names the VNF whose live migration currently owns the
	// deployment (empty when none). It stays set while Migrate RELEASES
	// cd.mu for its drain window, so control-plane entrants can tell "lock
	// free" from "deployment free": a second Migrate fails with
	// ErrMigrationInFlight, Reconcile defers its pass, Stop waits on
	// migDone. Guarded by mu; migDone is created on first use.
	migrating string
	migDone   *sync.Cond
	// testDrainHold, when set, is invoked at the start of the migration
	// drain window (after cd.mu is released); tests use it to hold the
	// drain open while probing concurrent control-plane behavior.
	testDrainHold func()

	graph  *graph.Graph
	tcfg   TrunkConfig
	spines []string

	deps   map[string]*Deployment
	steers []laneSteer
	// steerCookie stamps relay rules installed on nodes that host none of
	// the deployment's VNFs (the spine), so teardown can find exactly them.
	steerCookie uint64
	// relayNodes lists the nodes carrying steerCookie-stamped rules.
	relayNodes map[string]bool
}

// hopSnapshot is an adjacency's bundle ports captured under Cluster.mu, so
// the unlocked steering-install phase of Deploy never reads ct.links while
// a concurrent FailTrunk mutates it.
type hopSnapshot struct {
	pair             pairKey
	portsLo, portsHi []uint32
}

// snapshotHop captures the bundle's ports on both nodes. Caller holds
// Cluster.mu.
func snapshotHop(ct *clusterTrunk) hopSnapshot {
	return hopSnapshot{
		pair:    ct.pair,
		portsLo: ct.ports(ct.pair.lo),
		portsHi: ct.ports(ct.pair.hi),
	}
}

// ports returns the snapshot's switch port ids on the given node.
func (h hopSnapshot) ports(node string) []uint32 {
	if node == h.pair.lo {
		return h.portsLo
	}
	return h.portsHi
}

// outputTo returns the action steering a frame into an adjacency's bundle
// on the given node: plain output for a single trunk, hash-pinned ECMP
// spread for a bundle.
func outputTo(h hopSnapshot, node string) flow.Action {
	ports := h.ports(node)
	if len(ports) == 1 {
		return flow.Output(ports[0])
	}
	return flow.OutputECMP(ports...)
}

// Deploy partitions g by VNF placement (unlabeled VNFs land on the default
// node), allocates a cluster-wide VLAN lane for every boundary crossing and
// registers it on every trunk of the crossing's fabric path (creating
// adjacencies on first use), and lowers each partition on its node.
// Crossing edges lower to vlan steering: the sending side pushes the lane's
// tag (stamping the edge's PCP priority for the trunk scheduler when set)
// and outputs into the union of its paths' first-hop bundles — hash-pinned
// ECMP when that union is wider than one trunk, so with k spines a leaf–leaf
// crossing spreads over k × bundle-width uplinks; in spine mode each spine's
// vSwitch relays the tagged lane between its trunk ports; the receiving side
// matches (trunk port, vid), strips the tag and outputs to the target VNF
// port. The
// per-node lowering is exactly the single-node Deploy path, so in highway
// mode each node's detector establishes bypasses for its intra-node hops
// while the trunk hops stay on the NIC path — the highway survives the
// split, and all crossings of an adjacency contend for its shared uplink
// exactly like a ToR fabric.
func (c *Cluster) Deploy(g *graph.Graph, tcfg TrunkConfig) (*ClusterDeployment, error) {
	part, err := g.Partition(c.DefaultNode(), c.nicNodes())
	if err != nil {
		return nil, err
	}
	for node := range part.Local {
		if c.nodes[node] == nil {
			return nil, fmt.Errorf("orchestrator: graph places VNFs on unknown node %q (cluster has %v)", node, c.order)
		}
	}
	spines, err := c.spineNodes(tcfg)
	if err != nil {
		return nil, err
	}
	cd := &ClusterDeployment{
		cluster:     c,
		graph:       g,
		tcfg:        tcfg,
		spines:      spines,
		deps:        make(map[string]*Deployment),
		steerCookie: DeployCookieBase | deployCookieSeq.Add(1),
		relayNodes:  make(map[string]bool),
	}

	// Realize the crossings first: one cluster-wide vid per crossing,
	// registered on every trunk of every path it rides (one path per spine
	// for a leaf–leaf crossing), so the steering rules below have ports and
	// vids to reference.
	c.mu.Lock()
	for _, ce := range part.Cross {
		vid, err := c.allocVidLocked()
		if err != nil {
			c.mu.Unlock()
			cd.Stop()
			return nil, err
		}
		st := laneSteer{ce: ce, vid: vid}
		for _, path := range c.paths(ce.NodeA, ce.NodeB, spines, tcfg) {
			var done []pairKey
			for _, pair := range path {
				ct, err := c.ensureTrunk(pair, tcfg)
				if err == nil {
					err = ct.addLaneLocked(vid)
				}
				if err != nil {
					// The partially-registered lane is recorded before Stop
					// so teardown removes its hops FIRST and only then
					// returns the vid to the allocator (releaseVid) — freeing
					// it here, while earlier hops still carry it, would let a
					// concurrent Deploy be handed a vid that is live on other
					// trunks.
					if len(done) > 0 {
						st.paths = append(st.paths, done)
					}
					c.mu.Unlock()
					cd.steers = append(cd.steers, st)
					cd.Stop()
					return nil, err
				}
				done = append(done, pair)
			}
			st.paths = append(st.paths, done)
		}
		cd.steers = append(cd.steers, st)
	}
	c.mu.Unlock()

	// Lower each partition locally. The local graphs came out of Partition
	// validated and hold no crossing edges — those are steered below.
	for _, node := range c.order {
		lg, ok := part.Local[node]
		if !ok {
			continue
		}
		dep, err := c.nodes[node].lower(lg)
		if err != nil {
			cd.Stop()
			return nil, fmt.Errorf("orchestrator: node %s: %w", node, err)
		}
		cd.deps[node] = dep
	}

	// Install the lane steering, batched per node (the local rules were
	// already installed by each node's lower).
	specs := make(map[string][]flow.FlowSpec)
	for _, st := range cd.steers {
		if err := cd.steerSpecsInto(st, specs); err != nil {
			cd.Stop()
			return nil, err
		}
	}
	for node, ss := range specs {
		c.nodes[node].Switch.Table().AddBatch(ss)
	}
	c.mu.Lock()
	c.deployments[cd] = true
	c.mu.Unlock()
	return cd, nil
}

// snapshotPaths captures fresh hop port snapshots for each of a steer's
// adjacency paths under Cluster.mu — the only safe way to read bundle ports
// while FailTrunk/repair mutate link slots concurrently.
func (c *Cluster) snapshotPaths(paths [][]pairKey) ([][]hopSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]hopSnapshot, 0, len(paths))
	for _, pairs := range paths {
		hops := make([]hopSnapshot, 0, len(pairs))
		for _, pair := range pairs {
			ct, ok := c.trunks[pair]
			if !ok {
				return nil, fmt.Errorf("%w: %s-%s vanished from the fabric", ErrUnknownAdjacency, pair.lo, pair.hi)
			}
			hops = append(hops, snapshotHop(ct))
		}
		out = append(out, hops)
	}
	return out, nil
}

// steerSpecsInto derives the crossing's steering rules against the fabric's
// CURRENT ports and appends them per node — the desired-state generator
// shared by Deploy, the reconciler and live migration. Endpoint-node rules
// are stamped with that node's deployment cookie (teardown reclaims them
// with the deployment); relay rules on pass-through nodes carry the
// deployment's steer cookie instead.
func (cd *ClusterDeployment) steerSpecsInto(st laneSteer, specs map[string][]flow.FlowSpec) error {
	paths, err := cd.cluster.snapshotPaths(st.paths)
	if err != nil {
		return err
	}
	if err := cd.steerDir(st, st.ce.NodeA, st.ce.A, st.ce.NodeB, st.ce.B, paths, specs); err != nil {
		return err
	}
	if st.ce.Bidirectional {
		rev := make([][]hopSnapshot, len(paths))
		for i, hops := range paths {
			r := make([]hopSnapshot, len(hops))
			for j, h := range hops {
				r[len(r)-1-j] = h
			}
			rev[i] = r
		}
		if err := cd.steerDir(st, st.ce.NodeB, st.ce.B, st.ce.NodeA, st.ce.A, rev, specs); err != nil {
			return err
		}
	}
	return nil
}

// steerDir lowers one direction of a crossing: sender tag+fan-in, per-hop
// relays on each path, receiver strip+deliver. With k spine paths the
// sender's fan-in is a single ECMP spread over the UNION of every path's
// first-hop bundle ports (path order, then bundle order) — one rule, so the
// PMD's hash pin (and its congestion-aware repick) chooses both the spine
// and the trunk within its bundle in one pick. Paths whose first hop has no
// live ports are left out of the union; the direction only errors when NO
// path can carry it.
func (cd *ClusterDeployment) steerDir(st laneSteer, fromNode string, fromEp graph.Endpoint, toNode string, toEp graph.Endpoint, paths [][]hopSnapshot, specs map[string][]flow.FlowSpec) error {
	src, err := cd.deps[fromNode].resolve(fromEp)
	if err != nil {
		return err
	}
	dst, err := cd.deps[toNode].resolve(toEp)
	if err != nil {
		return err
	}
	var sendPorts []uint32
	recvLive := false
	for _, hops := range paths {
		sendPorts = append(sendPorts, hops[0].ports(fromNode)...)
		if len(hops[len(hops)-1].ports(toNode)) > 0 {
			recvLive = true
		}
	}
	if len(sendPorts) == 0 || !recvLive {
		// Every link of the entry (or exit) hop of every path is dead: there
		// is nothing to steer into. The reconciler repairs bundles before
		// re-deriving specs, so hitting this means repair itself failed —
		// surface it.
		return fmt.Errorf("orchestrator: lane %d of %s→%s has no live trunk ports", st.vid, fromNode, toNode)
	}
	// Sender: tag, stamp the crossing priority, fan into the union of
	// first hops.
	acts := flow.Actions{flow.PushVlan(st.vid)}
	if st.ce.PCP != 0 {
		acts = append(acts, flow.SetVlanPcp(st.ce.PCP))
	}
	if len(sendPorts) == 1 {
		acts = append(acts, flow.Output(sendPorts[0]))
	} else {
		acts = append(acts, flow.OutputECMP(sendPorts...))
	}
	specs[fromNode] = append(specs[fromNode], flow.FlowSpec{
		Priority: cd.deps[fromNode].flowPrio,
		Match:    flow.MatchInPort(src),
		Actions:  acts,
		Cookie:   cd.deps[fromNode].cookie,
	})
	for _, hops := range paths {
		// Relays: on each intermediate node of this path, forward the tagged
		// lane from every inbound trunk port of one hop into the next hop's
		// bundle.
		relay := fromNode
		for h := 0; h+1 < len(hops); h++ {
			next := hops[h].pair.lo
			if next == relay {
				next = hops[h].pair.hi
			}
			prio := uint16(10)
			if d := cd.deps[next]; d != nil {
				prio = d.flowPrio
			}
			for _, inPort := range hops[h].ports(next) {
				specs[next] = append(specs[next], flow.FlowSpec{
					Priority: prio,
					Match:    flow.MatchInPort(inPort).WithVlan(st.vid),
					Actions:  flow.Actions{outputTo(hops[h+1], next)},
					Cookie:   cd.steerCookie,
				})
			}
			cd.relayNodes[next] = true
			relay = next
		}
		// Receiver: match every inbound trunk port of this path's last hop,
		// strip the tag, deliver.
		for _, inPort := range hops[len(hops)-1].ports(toNode) {
			specs[toNode] = append(specs[toNode], flow.FlowSpec{
				Priority: cd.deps[toNode].flowPrio,
				Match:    flow.MatchInPort(inPort).WithVlan(st.vid),
				Actions:  flow.Actions{flow.PopVlan(), flow.Output(dst)},
				Cookie:   cd.deps[toNode].cookie,
			})
		}
	}
	return nil
}

// NodeLoads estimates each node's background load in VNF-equivalents for
// placement: the cluster's already-deployed VNF mass (VM port pairs)
// apportioned by each node's measured datapath traffic — the MOVEMENT of
// its vswitch port RX counters since the previous NodeLoads call, not the
// since-boot totals, so a chain that was busy an hour ago but idles now
// stops skewing placement (the same snapshot-and-diff idiom as
// DatapathStats.Delta). A node carrying most of the recent packets counts
// as hosting most of the load, which is what distinguishes a busy short
// chain from an idle long one. With no traffic observed in the interval
// (including the first call), the VM count alone is the load.
//
// Trunk-port RX is excluded: a relay-only spine receives every leaf–leaf
// frame on its trunk ports but hosts none of the VNF work, and counting
// that forwarding as load would repel placements from the node best wired
// to host them. Only traffic arriving on VM and external NIC ports — the
// packets a node's own VNFs actually handle — counts.
func (c *Cluster) NodeLoads() []float64 {
	trunkRx := make([]map[uint32]bool, len(c.order))
	idx := make(map[string]int, len(c.order))
	for i, name := range c.order {
		trunkRx[i] = make(map[uint32]bool)
		idx[name] = i
	}
	c.mu.Lock()
	for pair, ct := range c.trunks {
		for _, tl := range ct.links {
			trunkRx[idx[pair.lo]][tl.portLo] = true
			trunkRx[idx[pair.hi]][tl.portHi] = true
		}
	}
	c.mu.Unlock()
	loads := make([]float64, len(c.order))
	var totalVNFs, totalDelta float64
	rx := make([]float64, len(c.order))
	delta := make([]float64, len(c.order))
	for i, name := range c.order {
		n := c.nodes[name]
		loads[i] = float64(n.VMPortCount()) / 2
		totalVNFs += loads[i]
		for _, ps := range n.Switch.AllPortStats() {
			if trunkRx[i][ps.PortNo] {
				continue
			}
			rx[i] += float64(ps.RxPackets)
		}
	}
	c.mu.Lock()
	first := c.loadRx == nil
	for i := range rx {
		if !first && rx[i] >= c.loadRx[i] {
			delta[i] = rx[i] - c.loadRx[i]
		}
		totalDelta += delta[i]
	}
	c.loadRx = rx
	c.mu.Unlock()
	if totalDelta == 0 || totalVNFs == 0 {
		return loads
	}
	for i := range loads {
		loads[i] = totalVNFs * delta[i] / totalDelta
	}
	return loads
}

// Cordon excludes a node from automatic placement: DeployPlaced and the
// rebalance controller will not assign unpinned VNFs to it. Running VNFs
// are untouched (Drain evacuates them) and explicitly pinned graphs still
// deploy there — a cordon is an operator intent, not a fault. Idempotent.
func (c *Cluster) Cordon(node string) error {
	if c.nodes[node] == nil {
		return fmt.Errorf("orchestrator: cordon: unknown node %q (cluster has %v)", node, c.order)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cordoned == nil {
		c.cordoned = make(map[string]bool)
	}
	c.cordoned[node] = true
	return nil
}

// Uncordon returns a node to the placement pool. Idempotent.
func (c *Cluster) Uncordon(node string) error {
	if c.nodes[node] == nil {
		return fmt.Errorf("orchestrator: uncordon: unknown node %q (cluster has %v)", node, c.order)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cordoned, node)
	return nil
}

// CordonedNodes lists the currently cordoned nodes in cluster order.
func (c *Cluster) CordonedNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, name := range c.order {
		if c.cordoned[name] {
			out = append(out, name)
		}
	}
	return out
}

// placementExclusions builds the per-node placement exclusion mask (indexed
// like c.order): cordoned nodes always, plus — when withFaults is set —
// every node touching a failed trunk slot, so a controller never targets a
// node whose fabric attachment is degraded. The second result reports
// whether any failed slot exists at all (the controller's defer signal),
// independent of withFaults.
func (c *Cluster) placementExclusions(withFaults bool) ([]bool, bool) {
	idx := make(map[string]int, len(c.order))
	for i, name := range c.order {
		idx[name] = i
	}
	excluded := make([]bool, len(c.order))
	c.mu.Lock()
	defer c.mu.Unlock()
	for name := range c.cordoned {
		excluded[idx[name]] = true
	}
	anyFailed := false
	for pair, ct := range c.trunks {
		for _, tl := range ct.links {
			if tl.failed {
				anyFailed = true
				if withFaults {
					excluded[idx[pair.lo]] = true
					excluded[idx[pair.hi]] = true
				}
			}
		}
	}
	return excluded, anyFailed
}

// placeOptions assembles the optimizer inputs shared by DeployPlaced and
// the rebalance controller: measured load-weighted balance, spine-aware
// fabric distances (leaf–leaf relays cost 2), and node exclusions.
func (c *Cluster) placeOptions(loads []float64, spines []string, excluded []bool) graph.PlaceOptions {
	opts := graph.PlaceOptions{NodeLoad: loads, Excluded: excluded}
	if len(spines) > 0 {
		isSpine := make(map[int]bool, len(spines))
		for i, name := range c.order {
			for _, s := range spines {
				if name == s {
					isSpine[i] = true
				}
			}
		}
		opts.Dist = func(a, b int) int {
			if isSpine[a] || isSpine[b] {
				return 1
			}
			return 2
		}
	}
	return opts
}

// DeployPlaced optimizes the graph's placement first — Graph.PlaceWith
// assigns every unpinned VNF a node, minimizing fabric hop cost (leaf–leaf
// crossings through a spine cost 2) under load-weighted balance (NodeLoads),
// skipping cordoned nodes — and then deploys the placed graph. The chosen
// crossing count is returned alongside the deployment.
func (c *Cluster) DeployPlaced(g *graph.Graph, tcfg TrunkConfig) (*ClusterDeployment, int, error) {
	spines, err := c.spineNodes(tcfg)
	if err != nil {
		return nil, 0, err
	}
	excluded, _ := c.placementExclusions(false)
	opts := c.placeOptions(c.NodeLoads(), spines, excluded)
	crossings, err := g.PlaceWith(c.order, c.nicNodes(), opts)
	if err != nil {
		return nil, 0, err
	}
	cd, err := c.Deploy(g, tcfg)
	if err != nil {
		return nil, 0, err
	}
	return cd, crossings, nil
}

// Deployment returns the named node's local deployment (nil if the node
// hosts no VNFs).
func (cd *ClusterDeployment) Deployment(node string) *Deployment { return cd.deps[node] }

// Crossings reports the deployment's current node-boundary crossing count
// under its live placement — the number of trunk lanes the layout pays for.
func (cd *ClusterDeployment) Crossings() int {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	return cd.graph.Crossings(cd.cluster.DefaultNode(), cd.cluster.nicNodes())
}

// SrcSink finds a named bidirectional endpoint VNF across all partitions.
func (cd *ClusterDeployment) SrcSink(name string) *vnf.SrcSink {
	for _, d := range cd.deps {
		if ss := d.SrcSink(name); ss != nil {
			return ss
		}
	}
	return nil
}

// Sink finds a named sink VNF across all partitions.
func (cd *ClusterDeployment) Sink(name string) *vnf.Sink {
	for _, d := range cd.deps {
		if s := d.Sink(name); s != nil {
			return s
		}
	}
	return nil
}

// Sources returns every source VNF across all partitions.
func (cd *ClusterDeployment) Sources() []*vnf.Source {
	var out []*vnf.Source
	for _, d := range cd.deps {
		out = append(out, d.sources...)
	}
	return out
}

// NAT44 finds a named stateful NAT VNF across all partitions.
func (cd *ClusterDeployment) NAT44(name string) *vnf.NAT44 {
	for _, d := range cd.deps {
		if n := d.NAT44(name); n != nil {
			return n
		}
	}
	return nil
}

// ACL finds a named stateful firewall VNF across all partitions.
func (cd *ClusterDeployment) ACL(name string) *vnf.ACL {
	for _, d := range cd.deps {
		if a := d.ACL(name); a != nil {
			return a
		}
	}
	return nil
}

// Balancer finds a named L4 balancer VNF across all partitions.
func (cd *ClusterDeployment) Balancer(name string) *vnf.Balancer {
	for _, d := range cd.deps {
		if b := d.Balancer(name); b != nil {
			return b
		}
	}
	return nil
}

// Trunks returns the trunks this deployment's lanes ride, ordered by node
// pair then bundle index (shared adjacencies appear once even when several
// lanes use them).
func (cd *ClusterDeployment) Trunks() []*trunk.Trunk {
	cd.cluster.mu.Lock()
	defer cd.cluster.mu.Unlock()
	seen := make(map[pairKey]bool)
	var out []*trunk.Trunk
	for _, ln := range cd.steers {
		ln.eachPair(func(pair pairKey) {
			if seen[pair] {
				return
			}
			seen[pair] = true
			if ct, ok := cd.cluster.trunks[pair]; ok {
				for _, tl := range ct.links {
					if tl.failed {
						continue
					}
					out = append(out, tl.tr)
				}
			}
		})
	}
	return out
}

// Lanes returns the deployment's (node pair, vid) lane assignments in
// crossing order; a spine-relayed lane appears once per hop.
func (cd *ClusterDeployment) Lanes() []struct {
	NodeA, NodeB string
	VID          uint16
} {
	var out []struct {
		NodeA, NodeB string
		VID          uint16
	}
	for _, ln := range cd.steers {
		ln.eachPair(func(pair pairKey) {
			out = append(out, struct {
				NodeA, NodeB string
				VID          uint16
			}{NodeA: pair.lo, NodeB: pair.hi, VID: ln.vid})
		})
	}
	return out
}

// Stop tears the cluster deployment down in dependency order: relay rules
// on pass-through nodes (found by steer cookie), then local deployments
// (steering and lane rules deleted by cookie, bypasses dissolved, VMs
// destroyed), then the lanes — and with an adjacency's last lane the whole
// bundle, its pumps stopped, NICs detached and queues drained. Lanes of
// co-resident deployments on the same trunks keep flowing.
func (cd *ClusterDeployment) Stop() {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	// A migration's drain window owns the deployment even though it has
	// released cd.mu; tearing down under it would destroy the VMs and lanes
	// the drain is reading. Wait it out first.
	cd.waitMigrationDone()
	if cd.stopped {
		return
	}
	cd.stopped = true
	cd.cluster.mu.Lock()
	delete(cd.cluster.deployments, cd)
	cd.cluster.mu.Unlock()
	for node := range cd.relayNodes {
		cd.cluster.nodes[node].Switch.Table().DeleteWhere(func(f *flow.Flow) bool {
			return f.Cookie == cd.steerCookie
		})
	}
	cd.relayNodes = map[string]bool{}
	for _, node := range cd.cluster.order {
		if d := cd.deps[node]; d != nil {
			d.Stop()
		}
	}
	cd.deps = map[string]*Deployment{}
	for _, ln := range cd.steers {
		ln.eachPair(func(pair pairKey) {
			cd.cluster.releaseLane(pair, ln.vid)
		})
		cd.cluster.releaseVid(ln.vid)
	}
	cd.steers = nil
}
