package orchestrator

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ovshighway/internal/graph"
)

// This file closes the placement loop. DeployPlaced picks a layout once,
// against the loads of that moment; nothing revisits the decision as load
// drifts, so the cluster stays stuck on its day-one layout. The rebalance
// controller is the revisit: sample loads, re-run the optimizer, diff the
// proposal against reality into a move plan, and execute it as rolling
// zero-loss migrations — one VNF in flight, damped against oscillation,
// deferred while the fabric carries unrepaired faults. The same rolling
// machinery powers Drain, the operator's graceful node decommission.

// RebalanceConfig tunes the placement controller. Zero values take the
// documented defaults.
type RebalanceConfig struct {
	// Interval is the load-sampling/planning period (default 100ms).
	Interval time.Duration
	// MinCrossingGain is the crossing-count reduction a plan must deliver
	// to execute on its own merit (default 1 — any strict improvement).
	MinCrossingGain int
	// MinSpreadGain admits crossing-neutral plans that improve balance: the
	// max-minus-min per-node load spread (VNF-equivalents) must shrink by at
	// least this much (default 1).
	MinSpreadGain float64
	// Cooldown is the per-VNF minimum time between moves. A VNF moved more
	// recently stays pinned to its current node during planning, so
	// oscillating load cannot ping-pong it (default 20×Interval).
	Cooldown time.Duration
}

func (cfg *RebalanceConfig) fill() {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MinCrossingGain <= 0 {
		cfg.MinCrossingGain = 1
	}
	if cfg.MinSpreadGain <= 0 {
		cfg.MinSpreadGain = 1
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 20 * cfg.Interval
	}
}

// RebalanceMove is one executed (or attempted) rolling move of a plan.
type RebalanceMove struct {
	VNF  string
	From string
	To   string
	// Report is the underlying migration's outcome (zero on error).
	Report MigrateReport
	// Err is the migration failure, if any; the rest of the move's plan was
	// abandoned and the deployment reconciled back to a consistent layout.
	Err error
}

// RebalancerStats is a point-in-time read of the controller's counters.
type RebalancerStats struct {
	Passes   uint64 // planning passes completed
	Deferred uint64 // passes skipped while the fabric carried unrepaired faults
	Damped   uint64 // plans discarded by the hysteresis thresholds
	Moves    uint64 // migrations executed successfully
	Errors   uint64 // migrations that failed (plan abandoned, layout reconciled)
	// MaxInFlight is the highest number of concurrently executing
	// migrations the controller observed on itself; the rolling executor is
	// serial, so anything above 1 is a bug.
	MaxInFlight int32
}

// Rebalancer is the background placement controller. Start it with
// Cluster.StartRebalancer; stop it before stopping the cluster.
type Rebalancer struct {
	c    *Cluster
	cfg  RebalanceConfig
	stop chan struct{}
	done chan struct{}

	passes   atomic.Uint64
	deferred atomic.Uint64
	damped   atomic.Uint64
	movesN   atomic.Uint64
	errsN    atomic.Uint64
	inFlight atomic.Int32
	maxInFl  atomic.Int32

	mu sync.Mutex
	// lastMove is the per-VNF cooldown clock, keyed by deployment cookie +
	// VNF name (names are only unique within a deployment).
	lastMove map[string]time.Time
	// moves logs every executed or attempted move, oldest first.
	moves []RebalanceMove

	// testAfterMove, when set, runs after each executed move with cd.mu and
	// r.mu free; tests use it to trigger mid-plan aborts.
	testAfterMove func(RebalanceMove)
}

// newRebalancer builds a controller without starting its loop; tests drive
// runOnce directly.
func (c *Cluster) newRebalancer(cfg RebalanceConfig) *Rebalancer {
	cfg.fill()
	return &Rebalancer{
		c:        c,
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastMove: make(map[string]time.Time),
	}
}

// StartRebalancer launches the background placement controller. Stop it
// before stopping the cluster or its deployments, or a mid-teardown plan
// may migrate VNFs the teardown is about to destroy.
func (c *Cluster) StartRebalancer(cfg RebalanceConfig) *Rebalancer {
	r := c.newRebalancer(cfg)
	go r.run()
	return r
}

func (r *Rebalancer) run() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.runOnce()
		}
	}
}

// Stop aborts the controller: no new moves start, the move in flight (if
// any) completes, and the call returns once the loop has exited. A plan
// abandoned mid-way is safe — every executed move left a fully converged
// layout, and the reconciler keeps converging whatever remains.
func (r *Rebalancer) Stop() {
	r.requestStop()
	<-r.done
}

// requestStop flips the stop signal without waiting (idempotent).
func (r *Rebalancer) requestStop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
}

// Stats reads the controller's counters.
func (r *Rebalancer) Stats() RebalancerStats {
	return RebalancerStats{
		Passes:      r.passes.Load(),
		Deferred:    r.deferred.Load(),
		Damped:      r.damped.Load(),
		Moves:       r.movesN.Load(),
		Errors:      r.errsN.Load(),
		MaxInFlight: r.maxInFl.Load(),
	}
}

// Moves returns a copy of the controller's move log, oldest first.
func (r *Rebalancer) Moves() []RebalanceMove {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RebalanceMove(nil), r.moves...)
}

// runOnce is one controller pass: sample loads, plan per deployment,
// execute accepted plans as rolling migrations. Returns the number of
// moves executed.
func (r *Rebalancer) runOnce() int {
	defer r.passes.Add(1)
	return r.pass(r.c.NodeLoads())
}

// pass plans and executes against the given load sample (split out so tests
// can inject synthetic loads).
func (r *Rebalancer) pass(loads []float64) int {
	c := r.c
	excluded, anyFailed := c.placementExclusions(true)
	if anyFailed {
		// The fabric carries unrepaired faults: measured loads are skewed
		// by the outage and a migration's fresh lanes could land on the
		// degraded adjacency. Let the reconciler repair first; rebalancing
		// resumes on a clean pass.
		r.deferred.Add(1)
		return 0
	}
	executed := 0
	for _, cd := range c.deploymentsSorted() {
		plan := r.planDeployment(cd, loads, excluded)
		for _, mv := range plan {
			select {
			case <-r.stop:
				return executed
			default:
			}
			// Re-validate against faults that appeared while earlier moves
			// of the plan ran: the remaining proposal was computed against
			// a world that no longer exists, so abandon it — the next pass
			// replans against reality.
			if exclNow, failedNow := c.placementExclusions(true); failedNow || exclNow[c.nodeIndex(mv.to)] {
				return executed
			}
			if !r.executeMove(cd, mv) {
				break
			}
			executed++
		}
	}
	return executed
}

// plannedMove is one entry of a deployment's accepted plan.
type plannedMove struct {
	vnf, from, to string
}

// planDeployment re-runs placement for one deployment against current
// loads and diffs the proposal into a move plan. Returns nil when the
// deployment is busy, the proposal is a no-op, or the improvement does not
// clear the damping thresholds.
func (r *Rebalancer) planDeployment(cd *ClusterDeployment, loads []float64, excluded []bool) []plannedMove {
	c := r.c
	cd.mu.Lock()
	if cd.stopped || cd.migrating != "" {
		cd.mu.Unlock()
		return nil
	}
	// Plan on a scratch copy: PlaceWith writes node assignments, and the
	// live graph must not change unless a migration commits it.
	scratch := &graph.Graph{
		VNFs:  append([]graph.VNF(nil), cd.graph.VNFs...),
		Edges: cd.graph.Edges,
	}
	spines := cd.spines
	instantiated := make(map[string]bool)
	for _, d := range cd.deps {
		for name := range d.vms {
			instantiated[name] = true
		}
	}
	cd.mu.Unlock()

	nicNodes := c.nicNodes()
	curCross := scratch.Crossings(c.DefaultNode(), nicNodes)

	// Unpin the movable VNFs: running two-port middles not under cooldown.
	// Everything else (endpoints, cooling-down VNFs) stays pinned where it
	// is, so the optimizer plans around it.
	now := time.Now()
	movable := make(map[string]string)
	r.mu.Lock()
	for i := range scratch.VNFs {
		v := &scratch.VNFs[i]
		if v.Kind.PortCount() != 2 || v.Node == "" || !instantiated[v.Name] {
			continue
		}
		if last, ok := r.lastMove[moveKey(cd, v.Name)]; ok && now.Sub(last) < r.cfg.Cooldown {
			continue
		}
		movable[v.Name] = v.Node
		v.Node = ""
	}
	r.mu.Unlock()
	if len(movable) == 0 {
		return nil
	}

	propCross, err := scratch.PlaceWith(c.order, nicNodes, c.placeOptions(loads, spines, excluded))
	if err != nil {
		r.errsN.Add(1)
		return nil
	}
	var plan []plannedMove
	proj := append([]float64(nil), loads...)
	for _, v := range scratch.VNFs {
		from, ok := movable[v.Name]
		if !ok || v.Node == from {
			continue
		}
		plan = append(plan, plannedMove{vnf: v.Name, from: from, to: v.Node})
		proj[c.nodeIndex(from)]--
		proj[c.nodeIndex(v.Node)]++
	}
	if len(plan) == 0 {
		return nil
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].vnf < plan[j].vnf })

	// Hysteresis: a plan executes only for a real crossing reduction, or
	// for a crossing-neutral balance improvement above the spread
	// threshold. Everything weaker is damped — each move costs a drain
	// window of double-steering, and acting on noise ping-pongs VNFs.
	gain := curCross - propCross
	if gain < r.cfg.MinCrossingGain {
		if gain < 0 || loadSpread(loads, excluded)-loadSpread(proj, excluded) < r.cfg.MinSpreadGain {
			r.damped.Add(1)
			return nil
		}
	}
	return plan
}

// executeMove runs one rolling migration and logs the outcome. Returns
// false when the move failed and the rest of its plan must be abandoned.
func (r *Rebalancer) executeMove(cd *ClusterDeployment, mv plannedMove) bool {
	n := r.inFlight.Add(1)
	for {
		peak := r.maxInFl.Load()
		if n <= peak || r.maxInFl.CompareAndSwap(peak, n) {
			break
		}
	}
	rep, err := cd.Migrate(mv.vnf, mv.to)
	r.inFlight.Add(-1)
	move := RebalanceMove{VNF: mv.vnf, From: mv.from, To: mv.to, Report: rep, Err: err}
	r.mu.Lock()
	r.moves = append(r.moves, move)
	if err == nil {
		r.lastMove[moveKey(cd, mv.vnf)] = time.Now()
	}
	r.mu.Unlock()
	if err != nil {
		// Migrate failed pre-flip and reverted its own pin, or raced a
		// teardown/another controller. The installed state is a coherent
		// layout either way; one reconcile pass converges any partial rule
		// installs, and the next controller pass replans from scratch.
		r.errsN.Add(1)
		_, _ = cd.Reconcile()
		return false
	}
	r.movesN.Add(1)
	if r.testAfterMove != nil {
		r.testAfterMove(move)
	}
	return true
}

// moveKey scopes a VNF's cooldown clock to its deployment.
func moveKey(cd *ClusterDeployment, vnf string) string {
	return fmt.Sprintf("%d/%s", cd.steerCookie, vnf)
}

// nodeIndex maps a node name to its position in cluster order.
func (c *Cluster) nodeIndex(name string) int {
	for i, n := range c.order {
		if n == name {
			return i
		}
	}
	return 0
}

// loadSpread is the balance metric the damper compares: max minus min
// per-node load across the eligible nodes.
func loadSpread(loads []float64, excluded []bool) float64 {
	first := true
	var lo, hi float64
	for i, l := range loads {
		if i < len(excluded) && excluded[i] {
			continue
		}
		if first || l < lo {
			lo = l
		}
		if first || l > hi {
			hi = l
		}
		first = false
	}
	return hi - lo
}

// Drain gracefully decommissions a node under live traffic: the node is
// cordoned (no new placement), then every middle VNF it hosts is evacuated
// with the same rolling zero-loss machinery the rebalance controller uses —
// one migration at a time, targets chosen by re-running placement with the
// node excluded. Single-port endpoint VNFs cannot migrate and stay put.
// Returns the number of VNFs moved; a node hosting none is a no-op (the
// cordon still applies). On error the evacuation stops with the completed
// moves committed and the layout reconcilable.
func (c *Cluster) Drain(node string) (int, error) {
	if err := c.Cordon(node); err != nil {
		return 0, fmt.Errorf("orchestrator: drain: %w", err)
	}
	moved := 0
	for _, cd := range c.deploymentsSorted() {
		n, err := cd.drainFrom(node)
		moved += n
		if err != nil {
			return moved, fmt.Errorf("orchestrator: drain %s: %w", node, err)
		}
	}
	return moved, nil
}

// drainFrom evacuates this deployment's middle VNFs off the given node.
func (cd *ClusterDeployment) drainFrom(node string) (int, error) {
	c := cd.cluster
	cd.mu.Lock()
	if cd.stopped {
		cd.mu.Unlock()
		return 0, nil
	}
	scratch := &graph.Graph{
		VNFs:  append([]graph.VNF(nil), cd.graph.VNFs...),
		Edges: cd.graph.Edges,
	}
	spines := cd.spines
	var evacuate []string
	if d := cd.deps[node]; d != nil {
		for i := range scratch.VNFs {
			v := &scratch.VNFs[i]
			if v.Kind.PortCount() != 2 {
				continue
			}
			if _, ok := d.vms[v.Name]; !ok {
				continue
			}
			evacuate = append(evacuate, v.Name)
			v.Node = ""
		}
	}
	cd.mu.Unlock()
	if len(evacuate) == 0 {
		return 0, nil
	}
	sort.Strings(evacuate)

	// Choose targets by placement with the drained node excluded (the
	// cordon covers it), against current loads; resident VNFs elsewhere
	// stay pinned, so only the evacuees move.
	excluded, _ := c.placementExclusions(false)
	if _, err := scratch.PlaceWith(c.order, c.nicNodes(), c.placeOptions(c.NodeLoads(), spines, excluded)); err != nil {
		return 0, err
	}
	target := make(map[string]string, len(evacuate))
	for _, v := range scratch.VNFs {
		target[v.Name] = v.Node
	}
	moved := 0
	for _, name := range evacuate {
		if _, err := cd.Migrate(name, target[name]); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}
