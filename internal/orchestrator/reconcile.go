package orchestrator

import (
	"sort"
	"sync/atomic"
	"time"

	"ovshighway/internal/flow"
)

// This file is the cluster's converging control plane. Deploy installs the
// fabric once; everything here is about noticing that reality has drifted
// from the deployment's declared intent — a vSwitch restart wiped a flow
// table, a trunk died, an operator fat-fingered a rule delete — and putting
// it back. The shape follows production NFV controllers (a desired-state
// spec plus a reconcile loop), scaled down to this reproduction: the
// ClusterDeployment IS the spec (graph, fabric config, lane assignments),
// and a pass re-derives what every node should hold and repairs the
// difference. Bypasses are deliberately NOT reconciled directly: the p2p
// detector re-establishes them on its own once the steering rules are back,
// which is the transparency argument surviving faults.

// flowKey identifies a rule slot in a table: the (priority, match) pair
// that Add-replacement semantics key on.
type flowKey struct {
	prio uint16
	m    flow.Match
}

// desiredSpecs derives the deployment's complete intended rule set per
// node: each local deployment's edge rules plus every crossing's steering
// rules against the fabric's CURRENT trunk ports. Caller holds cd.mu.
func (cd *ClusterDeployment) desiredSpecs() (map[string][]flow.FlowSpec, error) {
	specs := make(map[string][]flow.FlowSpec)
	for node, d := range cd.deps {
		specs[node] = append(specs[node], d.specs...)
	}
	for _, st := range cd.steers {
		if err := cd.steerSpecsInto(st, specs); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// cookiesOn returns the cookie values this deployment stamps on the given
// node — the ownership filter for reading installed state back.
func (cd *ClusterDeployment) cookiesOn(node string) map[uint64]bool {
	mine := map[uint64]bool{cd.steerCookie: true}
	if d := cd.deps[node]; d != nil {
		mine[d.cookie] = true
	}
	return mine
}

// installedOn snapshots the deployment's rules currently installed on a
// node, keyed by rule slot.
func (cd *ClusterDeployment) installedOn(node string) map[flowKey]*flow.Flow {
	installed := make(map[flowKey]*flow.Flow)
	mine := cd.cookiesOn(node)
	for _, f := range cd.cluster.nodes[node].Switch.Table().Snapshot() {
		if mine[f.Cookie] {
			installed[flowKey{f.Priority, f.Match}] = f
		}
	}
	return installed
}

// applySpecs converges every node's installed rules onto desired: missing
// or diverged slots are (re)installed — Add replacement semantics make each
// fix atomic per slot — and slots installed but no longer desired are
// deleted. Returns the number of mutations. Caller holds cd.mu.
func (cd *ClusterDeployment) applySpecs(desired map[string][]flow.FlowSpec) int {
	repairs := 0
	for _, node := range cd.cluster.order {
		installed := cd.installedOn(node)
		want := desired[node]
		wantKeys := make(map[flowKey]bool, len(want))
		var add []flow.FlowSpec
		for _, sp := range want {
			k := flowKey{sp.Priority, sp.Match}
			wantKeys[k] = true
			f, ok := installed[k]
			if !ok || f.Cookie != sp.Cookie || !f.Actions.Equal(sp.Actions) {
				add = append(add, sp)
			}
		}
		table := cd.cluster.nodes[node].Switch.Table()
		if len(add) > 0 {
			table.AddBatch(add)
			repairs += len(add)
		}
		for k := range installed {
			if !wantKeys[k] && table.DeleteStrict(k.prio, k.m) {
				repairs++
			}
		}
	}
	return repairs
}

// Reconcile runs one convergence pass over this deployment: repair the
// trunk fabric first (recreate vanished adjacencies, rebuild failed bundle
// slots in place, re-register missing lanes), then re-derive the desired
// rule set against the repaired ports and converge every node's flow table
// onto it. Returns the number of repairs made — zero means the pass found
// reality matching intent. Safe to call concurrently with traffic; it
// never touches the PMD hot path, only the tables the datapath snapshots.
func (cd *ClusterDeployment) Reconcile() (int, error) {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	if cd.stopped {
		return 0, nil
	}
	if cd.migrating != "" {
		// A live migration's drain window is in progress: desired state
		// already reflects the new layout, but the stale old-path rules
		// must survive until the drain completes. Converging now would
		// delete them mid-drain and drop the packets they are carrying,
		// so the pass defers; the migration itself converges the tables
		// in its step 6.
		return 0, nil
	}
	repairs := 0
	c := cd.cluster
	c.mu.Lock()
	for _, st := range cd.steers {
		for _, path := range st.paths {
			for _, pair := range path {
				ct, ok := c.trunks[pair]
				if !ok {
					var err error
					ct, err = c.ensureTrunk(pair, cd.tcfg)
					if err != nil {
						c.mu.Unlock()
						return repairs, err
					}
					repairs++
				} else {
					n, err := c.repairTrunkLocked(ct)
					repairs += n
					if err != nil {
						c.mu.Unlock()
						return repairs, err
					}
				}
				if !ct.lanes[st.vid] {
					if err := ct.addLaneLocked(st.vid); err != nil {
						c.mu.Unlock()
						return repairs, err
					}
					repairs++
				}
			}
		}
	}
	c.mu.Unlock()
	desired, err := cd.desiredSpecs()
	if err != nil {
		return repairs, err
	}
	return repairs + cd.applySpecs(desired), nil
}

// deploymentsSorted snapshots the live deployments in creation order (the
// steer cookie is allocation-ordered), the walk order every cluster-wide
// control loop uses.
func (c *Cluster) deploymentsSorted() []*ClusterDeployment {
	c.mu.Lock()
	cds := make([]*ClusterDeployment, 0, len(c.deployments))
	for cd := range c.deployments {
		cds = append(cds, cd)
	}
	c.mu.Unlock()
	sort.Slice(cds, func(i, j int) bool { return cds[i].steerCookie < cds[j].steerCookie })
	return cds
}

// ReconcileOnce runs one convergence pass over every live deployment, in
// deployment-creation order, and returns the total repairs made.
func (c *Cluster) ReconcileOnce() (int, error) {
	cds := c.deploymentsSorted()
	total := 0
	for _, cd := range cds {
		n, err := cd.Reconcile()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReconcilerStats is a point-in-time read of a reconciler's counters.
type ReconcilerStats struct {
	Passes  uint64 // convergence passes completed
	Repairs uint64 // total drift repairs across all passes
	Errors  uint64 // passes that hit an unrepairable error
}

// Reconciler is the background convergence loop: every interval it runs
// ReconcileOnce over the cluster's deployments. It is the component that
// turns the fault-injection surface (FailTrunk, FailNode, RestartVSwitch,
// rule wipes) into transient blips instead of permanent outages.
type Reconciler struct {
	c        *Cluster
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	passes  atomic.Uint64
	repairs atomic.Uint64
	errs    atomic.Uint64
}

// StartReconciler launches the background loop (interval <= 0 defaults to
// 10ms — fast convergence at simulation time scales). Stop the reconciler
// before stopping the cluster, or a mid-teardown pass may rebuild trunks
// the teardown just removed.
func (c *Cluster) StartReconciler(interval time.Duration) *Reconciler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	r := &Reconciler{
		c:        c,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go r.run()
	return r
}

func (r *Reconciler) run() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			n, err := r.c.ReconcileOnce()
			r.passes.Add(1)
			r.repairs.Add(uint64(n))
			if err != nil {
				r.errs.Add(1)
			}
		}
	}
}

// Stop halts the loop and waits for an in-flight pass to finish.
func (r *Reconciler) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// Stats reads the loop's counters.
func (r *Reconciler) Stats() ReconcilerStats {
	return ReconcilerStats{
		Passes:  r.passes.Load(),
		Repairs: r.repairs.Load(),
		Errors:  r.errs.Load(),
	}
}
