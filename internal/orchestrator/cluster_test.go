package orchestrator

import (
	"testing"
	"time"

	"ovshighway/internal/graph"
)

func newCluster(t *testing.T, mode Mode, names ...string) *Cluster {
	t.Helper()
	c, err := NewCluster(names, NodeConfig{
		Mode:     mode,
		PoolSize: 4096,
		RingSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// waitRecv polls until the named srcsink endpoint has received want packets.
func waitRecv(t *testing.T, cd *ClusterDeployment, name string, want uint64) {
	t.Helper()
	ss := cd.SrcSink(name)
	if ss == nil {
		t.Fatalf("endpoint %s not deployed", name)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ss.Received.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ss.Received.Load(); got < want {
		t.Fatalf("%s received only %d of %d packets", name, got, want)
	}
}

func TestClusterSplitChainVanillaTrafficCrossesWire(t *testing.T) {
	c := newCluster(t, ModeVanilla, "node-a", "node-b")
	// 3 VMs (end0, vnf1, end1) split 2+1: the vnf1↔end1 hop crosses.
	g := graph.SplitBidirChain(1, []string{"node-a", "node-b"})
	cd, err := c.Deploy(g, WireConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if len(cd.Wires()) != 1 {
		t.Fatalf("deployment created %d wires, want 1", len(cd.Wires()))
	}
	// Both directions must deliver across the node boundary.
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	ab, ba := cd.Wires()[0].Stats()
	if ab.Carried == 0 || ba.Carried == 0 {
		t.Fatalf("wire carried %d/%d frames, both directions must flow", ab.Carried, ba.Carried)
	}
	if c.BypassLinkCount() != 0 {
		t.Fatal("vanilla cluster created bypasses")
	}
	// The partitions landed where placement said.
	if cd.Deployment("node-a") == nil || cd.Deployment("node-b") == nil {
		t.Fatal("missing per-node deployment")
	}
	if cd.Deployment("node-a").SrcSink("end0") == nil {
		t.Fatal("end0 not on node-a")
	}
	if cd.Deployment("node-b").SrcSink("end1") == nil {
		t.Fatal("end1 not on node-b")
	}
}

func TestClusterSplitChainHighwayBypassesIntraNodeHops(t *testing.T) {
	c := newCluster(t, ModeHighway, "node-a", "node-b")
	// 5 VMs (end0, vnf1..vnf3, end1) split 3+2: intra-node hops are
	// end0↔vnf1, vnf1↔vnf2 on node-a and vnf3↔end1 on node-b = 3 hops ⇒ 6
	// directed bypasses. The vnf2↔vnf3 wire hop must stay on the NIC path.
	g := graph.SplitBidirChain(3, []string{"node-a", "node-b"})
	cd, err := c.Deploy(g, WireConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if !c.WaitBypassCount(6) {
		t.Fatalf("cluster bypasses = %d, want 6", c.BypassLinkCount())
	}
	// Per node: 2 hops on node-a, 1 hop on node-b.
	if got := c.Node("node-a").Switch.BypassLinkCount(); got != 4 {
		t.Fatalf("node-a bypasses = %d, want 4", got)
	}
	if got := c.Node("node-b").Switch.BypassLinkCount(); got != 2 {
		t.Fatalf("node-b bypasses = %d, want 2", got)
	}
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	ab, ba := cd.Wires()[0].Stats()
	if ab.Carried == 0 || ba.Carried == 0 {
		t.Fatalf("wire carried %d/%d frames, the inter-node hop cannot bypass", ab.Carried, ba.Carried)
	}
}

func TestClusterDeploymentStopReclaimsEverything(t *testing.T) {
	c := newCluster(t, ModeHighway, "a", "b")
	g := graph.SplitBidirChain(2, []string{"a", "b"})
	cd, err := c.Deploy(g, WireConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitRecv(t, cd, "end1", 1000)
	cd.Stop()

	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if got := n.Switch.Table().Len(); got != 0 {
			t.Fatalf("node %s still has %d flows", name, got)
		}
		if got := n.Switch.BypassLinkCount(); got != 0 {
			t.Fatalf("node %s still has %d bypasses", name, got)
		}
		if len(n.Switch.Ports()) != 0 {
			t.Fatalf("node %s still has ports %v", name, n.Switch.Ports())
		}
		// Every packet buffer must be home: VNFs, wires and NIC queues all
		// drained.
		if n.Pool.Avail() != n.Pool.Cap() {
			t.Fatalf("node %s pool leaked: %d of %d free", name, n.Pool.Avail(), n.Pool.Cap())
		}
	}
	// The cluster survives a second deployment on the same nodes.
	cd2, err := c.Deploy(graph.SplitBidirChain(1, []string{"a", "b"}), WireConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitRecv(t, cd2, "end1", 1000)
	cd2.Stop()
}

func TestClusterRejectsUnknownPlacement(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(1, []string{"a", "elsewhere"})
	if _, err := c.Deploy(g, WireConfig{}); err == nil {
		t.Fatal("placement on unknown node accepted")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, NodeConfig{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster([]string{"a", "a"}, NodeConfig{}); err == nil {
		t.Fatal("duplicate node names accepted")
	}
	if _, err := NewCluster([]string{""}, NodeConfig{}); err == nil {
		t.Fatal("empty node name accepted")
	}
}

func TestClusterTwoConcurrentDeploymentsDoNotCollide(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	// Both graphs put their crossing at the same edge index, which would
	// collide on the synthesized wire-NIC names without a per-deployment
	// prefix. (VNF names must differ — VMs are keyed by name per node.)
	g2 := graph.SplitBidirChain(1, []string{"a", "b"})
	rename := func(name string) string { return "g2-" + name }
	for i := range g2.VNFs {
		g2.VNFs[i].Name = rename(g2.VNFs[i].Name)
	}
	for i := range g2.Edges {
		g2.Edges[i].A.Name = rename(g2.Edges[i].A.Name)
		g2.Edges[i].B.Name = rename(g2.Edges[i].B.Name)
	}
	cd1, err := c.Deploy(graph.SplitBidirChain(1, []string{"a", "b"}), WireConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	cd2, err := c.Deploy(g2, WireConfig{RatePps: -1})
	if err != nil {
		t.Fatalf("second concurrent deployment: %v", err)
	}
	waitRecv(t, cd1, "end1", 1000)
	waitRecv(t, cd2, "g2-end1", 1000)
	// Tearing the first down must not touch the second's wire.
	cd1.Stop()
	ss := cd2.SrcSink("g2-end1")
	base := ss.Received.Load()
	deadline := time.Now().Add(5 * time.Second)
	for ss.Received.Load() < base+1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ss.Received.Load(); got < base+1000 {
		t.Fatalf("second deployment stalled after first's teardown (%d new packets)", got-base)
	}
	cd2.Stop()
	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if n.Pool.Avail() != n.Pool.Cap() {
			t.Fatalf("node %s pool leaked: %d of %d free", name, n.Pool.Avail(), n.Pool.Cap())
		}
		if len(n.Switch.Ports()) != 0 {
			t.Fatalf("node %s still has ports attached", name)
		}
	}
}
