package orchestrator

import (
	"testing"
	"time"

	"ovshighway/internal/graph"
)

func newCluster(t *testing.T, mode Mode, names ...string) *Cluster {
	t.Helper()
	c, err := NewCluster(names, NodeConfig{
		Mode:     mode,
		PoolSize: 4096,
		RingSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// waitRecv polls until the named srcsink endpoint has received want packets.
func waitRecv(t *testing.T, cd *ClusterDeployment, name string, want uint64) {
	t.Helper()
	ss := cd.SrcSink(name)
	if ss == nil {
		t.Fatalf("endpoint %s not deployed", name)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ss.Received.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ss.Received.Load(); got < want {
		t.Fatalf("%s received only %d of %d packets", name, got, want)
	}
}

// renamed returns a deep-enough copy of g with every VNF (and edge
// endpoint) name prefixed, so two instances can share a cluster.
func renamed(g *graph.Graph, prefix string) *graph.Graph {
	out := &graph.Graph{
		VNFs:  append([]graph.VNF(nil), g.VNFs...),
		Edges: append([]graph.Edge(nil), g.Edges...),
	}
	for i := range out.VNFs {
		out.VNFs[i].Name = prefix + out.VNFs[i].Name
	}
	for i := range out.Edges {
		if out.Edges[i].A.Kind == graph.EpVNF {
			out.Edges[i].A.Name = prefix + out.Edges[i].A.Name
		}
		if out.Edges[i].B.Kind == graph.EpVNF {
			out.Edges[i].B.Name = prefix + out.Edges[i].B.Name
		}
	}
	return out
}

func TestClusterSplitChainVanillaTrafficCrossesTrunk(t *testing.T) {
	c := newCluster(t, ModeVanilla, "node-a", "node-b")
	// 3 VMs (end0, vnf1, end1) split 2+1: the vnf1↔end1 hop crosses.
	g := graph.SplitBidirChain(1, []string{"node-a", "node-b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if len(cd.Trunks()) != 1 || c.TrunkCount() != 1 {
		t.Fatalf("deployment rides %d trunks (cluster has %d), want 1", len(cd.Trunks()), c.TrunkCount())
	}
	tr := cd.Trunks()[0]
	if tr.LaneCount() != 1 {
		t.Fatalf("trunk carries %d lanes, want 1", tr.LaneCount())
	}
	// Both directions must deliver across the node boundary.
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	ab, ba := tr.Stats()
	if ab.Carried == 0 || ba.Carried == 0 {
		t.Fatalf("trunk carried %d/%d frames, both directions must flow", ab.Carried, ba.Carried)
	}
	// The single lane accounts for the whole trunk.
	vid := tr.Lanes()[0]
	lab, lba, ok := tr.LaneStats(vid)
	if !ok || lab.Carried != ab.Carried || lba.Carried != ba.Carried {
		t.Fatalf("lane %d stats %+v/%+v do not match trunk %+v/%+v", vid, lab, lba, ab, ba)
	}
	if tr.Unrouted() != 0 {
		t.Fatalf("trunk dropped %d unrouted frames", tr.Unrouted())
	}
	if c.BypassLinkCount() != 0 {
		t.Fatal("vanilla cluster created bypasses")
	}
	// The partitions landed where placement said.
	if cd.Deployment("node-a") == nil || cd.Deployment("node-b") == nil {
		t.Fatal("missing per-node deployment")
	}
	if cd.Deployment("node-a").SrcSink("end0") == nil {
		t.Fatal("end0 not on node-a")
	}
	if cd.Deployment("node-b").SrcSink("end1") == nil {
		t.Fatal("end1 not on node-b")
	}
}

func TestClusterSplitChainHighwayBypassesIntraNodeHops(t *testing.T) {
	c := newCluster(t, ModeHighway, "node-a", "node-b")
	// 5 VMs (end0, vnf1..vnf3, end1) split 3+2: intra-node hops are
	// end0↔vnf1, vnf1↔vnf2 on node-a and vnf3↔end1 on node-b = 3 hops ⇒ 6
	// directed bypasses. The vnf2↔vnf3 trunk hop must stay on the NIC path.
	g := graph.SplitBidirChain(3, []string{"node-a", "node-b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if !c.WaitBypassCount(6) {
		t.Fatalf("cluster bypasses = %d, want 6", c.BypassLinkCount())
	}
	// Per node: 2 hops on node-a, 1 hop on node-b.
	if got := c.Node("node-a").Switch.BypassLinkCount(); got != 4 {
		t.Fatalf("node-a bypasses = %d, want 4", got)
	}
	if got := c.Node("node-b").Switch.BypassLinkCount(); got != 2 {
		t.Fatalf("node-b bypasses = %d, want 2", got)
	}
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	ab, ba := cd.Trunks()[0].Stats()
	if ab.Carried == 0 || ba.Carried == 0 {
		t.Fatalf("trunk carried %d/%d frames, the inter-node hop cannot bypass", ab.Carried, ba.Carried)
	}
}

// TestClusterSharedTrunkMultipleLanes is the headline fabric property: a
// deployment with k crossings between one node pair gets exactly one trunk
// carrying k distinct VLAN lanes, all flowing concurrently.
func TestClusterSharedTrunkMultipleLanes(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	// Two disjoint split chains in ONE graph: 2 crossings, same node pair.
	g := graph.SplitBidirChain(1, []string{"a", "b"})
	g2 := renamed(graph.SplitBidirChain(1, []string{"a", "b"}), "t2-")
	g.VNFs = append(g.VNFs, g2.VNFs...)
	g.Edges = append(g.Edges, g2.Edges...)

	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if c.TrunkCount() != 1 {
		t.Fatalf("cluster created %d trunks, want exactly 1 per node pair", c.TrunkCount())
	}
	tr := cd.Trunks()[0]
	if got := tr.LaneCount(); got != 2 {
		t.Fatalf("trunk carries %d lanes, want 2 (one per crossing)", got)
	}
	lanes := cd.Lanes()
	if len(lanes) != 2 || lanes[0].VID == lanes[1].VID {
		t.Fatalf("lane vids not distinct: %+v", lanes)
	}
	// Both tenant chains flow across their own lane.
	waitRecv(t, cd, "end1", 2000)
	waitRecv(t, cd, "t2-end1", 2000)
	for _, vid := range tr.Lanes() {
		ab, ba, ok := tr.LaneStats(vid)
		if !ok || ab.Carried == 0 || ba.Carried == 0 {
			t.Fatalf("lane %d idle: %+v/%+v", vid, ab, ba)
		}
	}
	if tr.Unrouted() != 0 {
		t.Fatalf("trunk dropped %d unrouted frames", tr.Unrouted())
	}
}

func TestClusterDeploymentStopReclaimsEverything(t *testing.T) {
	c := newCluster(t, ModeHighway, "a", "b")
	g := graph.SplitBidirChain(2, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitRecv(t, cd, "end1", 1000)
	cd.Stop()

	if c.TrunkCount() != 0 {
		t.Fatalf("%d trunks survive their last lane", c.TrunkCount())
	}
	// The shared trunk poller dies with the last trunk: a trunk-less
	// cluster must be back to zero idle wakeups (and a later Deploy below
	// lazily recreates it).
	c.mu.Lock()
	pollerAlive := c.poller != nil
	c.mu.Unlock()
	if pollerAlive {
		t.Fatal("trunk poller survives the last trunk")
	}
	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if got := n.Switch.Table().Len(); got != 0 {
			t.Fatalf("node %s still has %d flows", name, got)
		}
		if got := n.Switch.BypassLinkCount(); got != 0 {
			t.Fatalf("node %s still has %d bypasses", name, got)
		}
		if len(n.Switch.Ports()) != 0 {
			t.Fatalf("node %s still has ports %v", name, n.Switch.Ports())
		}
		// Every packet buffer must be home: VNFs, trunks and NIC queues all
		// drained.
		if n.Pool.Avail() != n.Pool.Cap() {
			t.Fatalf("node %s pool leaked: %d of %d free", name, n.Pool.Avail(), n.Pool.Cap())
		}
	}
	// The cluster survives a second deployment on the same nodes.
	cd2, err := c.Deploy(graph.SplitBidirChain(1, []string{"a", "b"}), TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitRecv(t, cd2, "end1", 1000)
	cd2.Stop()
}

func TestClusterRejectsConflictingTrunkConfig(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	cd, err := c.Deploy(graph.SplitBidirChain(1, []string{"a", "b"}), TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	// A trunk is shared infrastructure: joining it with different shaping
	// must fail loudly instead of silently riding the existing config.
	g2 := renamed(graph.SplitBidirChain(1, []string{"a", "b"}), "g2-")
	if _, err := c.Deploy(g2, TrunkConfig{RatePps: 1000, Latency: time.Millisecond}); err == nil {
		t.Fatal("conflicting trunk config accepted")
	}
	// The failed deployment must not have leaked a lane.
	if tr := cd.Trunks()[0]; tr.LaneCount() != 1 {
		t.Fatalf("failed deploy leaked lanes: %d", tr.LaneCount())
	}
	// Same config still joins fine.
	cd2, err := c.Deploy(g2, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	cd2.Stop()
}

func TestClusterRejectsUnknownPlacement(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(1, []string{"a", "elsewhere"})
	if _, err := c.Deploy(g, TrunkConfig{}); err == nil {
		t.Fatal("placement on unknown node accepted")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, NodeConfig{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster([]string{"a", "a"}, NodeConfig{}); err == nil {
		t.Fatal("duplicate node names accepted")
	}
	if _, err := NewCluster([]string{""}, NodeConfig{}); err == nil {
		t.Fatal("empty node name accepted")
	}
}

// TestClusterCoResidentDeploymentsShareTrunk: two deployments land lanes on
// the SAME trunk; tearing one down leaves the other's lane flowing and the
// trunk alive until its last lane dies.
func TestClusterCoResidentDeploymentsShareTrunk(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	cd1, err := c.Deploy(graph.SplitBidirChain(1, []string{"a", "b"}), TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	cd2, err := c.Deploy(renamed(graph.SplitBidirChain(1, []string{"a", "b"}), "g2-"), TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatalf("second concurrent deployment: %v", err)
	}
	if c.TrunkCount() != 1 {
		t.Fatalf("co-resident deployments created %d trunks, want 1 shared", c.TrunkCount())
	}
	tr := cd1.Trunks()[0]
	if tr.LaneCount() != 2 {
		t.Fatalf("shared trunk carries %d lanes, want 2", tr.LaneCount())
	}
	waitRecv(t, cd1, "end1", 1000)
	waitRecv(t, cd2, "g2-end1", 1000)
	// Tearing the first down must not touch the second's lane.
	cd1.Stop()
	if c.TrunkCount() != 1 || tr.LaneCount() != 1 {
		t.Fatalf("trunk state after partial teardown: %d trunks, %d lanes (want 1/1)",
			c.TrunkCount(), tr.LaneCount())
	}
	ss := cd2.SrcSink("g2-end1")
	base := ss.Received.Load()
	deadline := time.Now().Add(5 * time.Second)
	for ss.Received.Load() < base+1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ss.Received.Load(); got < base+1000 {
		t.Fatalf("second deployment stalled after first's teardown (%d new packets)", got-base)
	}
	cd2.Stop()
	if c.TrunkCount() != 0 {
		t.Fatalf("trunk survives its last lane")
	}
	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if n.Pool.Avail() != n.Pool.Cap() {
			t.Fatalf("node %s pool leaked: %d of %d free", name, n.Pool.Avail(), n.Pool.Cap())
		}
		if len(n.Switch.Ports()) != 0 {
			t.Fatalf("node %s still has ports attached", name)
		}
	}
}

// TestClusterDeployPlaced exercises the auto-placement path: two disjoint
// tenant chains with interleaved VNF order fit one per node, so the
// optimizer should deploy them with zero crossings — and zero trunks.
func TestClusterDeployPlaced(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.BidirChain(2)
	g2 := renamed(graph.BidirChain(2), "t2-")
	// Interleave so the contiguous baseline would cut both chains.
	merged := &graph.Graph{}
	for i := range g.VNFs {
		merged.VNFs = append(merged.VNFs, g.VNFs[i], g2.VNFs[i])
	}
	merged.Edges = append(append([]graph.Edge(nil), g.Edges...), g2.Edges...)

	cd, crossings, err := c.DeployPlaced(merged, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	if crossings != 0 {
		t.Fatalf("optimizer settled on %d crossings, want 0", crossings)
	}
	if c.TrunkCount() != 0 {
		t.Fatalf("crossing-free placement still created %d trunks", c.TrunkCount())
	}
	waitRecv(t, cd, "end1", 1000)
	waitRecv(t, cd, "t2-end1", 1000)
}
