package orchestrator

import (
	"sync"
	"testing"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
	"ovshighway/internal/nic"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vnf"
)

func newNode(t *testing.T, mode Mode) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		Mode:     mode,
		PoolSize: 4096,
		RingSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

func TestDeployChainVanillaTrafficFlows(t *testing.T) {
	n := newNode(t, ModeVanilla)
	d, err := n.Deploy(graph.Chain(2, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	sink := d.Sink("dst")
	deadline := time.Now().Add(5 * time.Second)
	for sink.Received.Load() < 10000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sink.Received.Load(); got < 10000 {
		t.Fatalf("sink received only %d packets", got)
	}
	if n.Switch.BypassLinkCount() != 0 {
		t.Fatal("vanilla mode created bypasses")
	}
}

func TestDeployChainHighwayEstablishesBypasses(t *testing.T) {
	n := newNode(t, ModeHighway)
	d, err := n.Deploy(graph.Chain(3, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	// Chain of 3 VNFs + src + dst: 4 bidirectional hops = 8 directed links.
	if !n.WaitBypassCount(8) {
		t.Fatalf("bypass links = %d, want 8", n.Switch.BypassLinkCount())
	}

	sink := d.Sink("dst")
	sink.ResetWindow()
	deadline := time.Now().Add(5 * time.Second)
	for sink.Received.Load() < 10000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sink.Received.Load(); got < 10000 {
		t.Fatalf("sink received only %d packets via highway", got)
	}

	// With every hop bypassed, the switch's own PMDs should have moved
	// almost nothing after establishment.
	var crossed uint64
	for _, p := range n.Switch.Ports() {
		crossed += p.PortCounters().RxPackets.Load()
	}
	if crossed > 100000 {
		t.Fatalf("switch still moving bulk traffic: %d packets", crossed)
	}
}

func TestHighwayFasterThanVanilla(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison in -short mode")
	}
	measure := func(mode Mode) float64 {
		n := newNode(t, mode)
		defer n.Stop()
		d, err := n.Deploy(graph.Chain(3, "", ""))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		if mode == ModeHighway && !n.WaitBypassCount(8) {
			t.Fatal("bypasses not established")
		}
		sink := d.Sink("dst")
		time.Sleep(200 * time.Millisecond) // warm-up
		sink.ResetWindow()
		time.Sleep(500 * time.Millisecond)
		return sink.RatePps()
	}
	vanilla := measure(ModeVanilla)
	highway := measure(ModeHighway)
	t.Logf("chain=3 vanilla=%.0f pps highway=%.0f pps (%.1fx)", vanilla, highway, highway/vanilla)
	if highway <= vanilla {
		t.Fatalf("highway (%.0f pps) not faster than vanilla (%.0f pps)", highway, vanilla)
	}
}

func TestDeployWithNICs(t *testing.T) {
	n := newNode(t, ModeHighway)
	nicIn, err := n.AddNIC("eth0", nic.Config{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	nicOut, err := n.AddNIC("eth1", nic.Config{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}

	d, err := n.Deploy(graph.Chain(2, "eth0", "eth1"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	// NIC↔VM hops cannot bypass; only the VM↔VM hop can (2 directed links).
	if !n.WaitBypassCount(2) {
		t.Fatalf("bypass links = %d, want 2", n.Switch.BypassLinkCount())
	}

	gen, err := nic.NewGenerator(nicIn, n.Pool, DefaultTrafficSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()
	sink := nic.NewWireSink(nicOut)
	defer sink.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for sink.Received.Load() < 5000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sink.Received.Load(); got < 5000 {
		t.Fatalf("wire sink received %d", got)
	}
}

func TestDeployFirewallMonitorGraph(t *testing.T) {
	// The introduction's service graph: firewall → monitor → sink, with the
	// firewall blocking one destination port.
	n := newNode(t, ModeHighway)
	g := &graph.Graph{
		VNFs: []graph.VNF{
			{Name: "src", Kind: graph.KindSource, Args: SourceSpecArgs{Spec: DefaultTrafficSpec(), Flows: 4}},
			{Name: "fw", Kind: graph.KindFirewall, Args: []vnf.FirewallRule{
				{Proto: pkt.ProtoUDP, DstPort: 9999}, // nothing matches: pass-through
			}},
			{Name: "mon", Kind: graph.KindMonitor},
			{Name: "dst", Kind: graph.KindSink},
		},
		Edges: []graph.Edge{
			{A: graph.VNFPort("src", 0), B: graph.VNFPort("fw", 0), Bidirectional: true},
			{A: graph.VNFPort("fw", 1), B: graph.VNFPort("mon", 0), Bidirectional: true},
			{A: graph.VNFPort("mon", 1), B: graph.VNFPort("dst", 0), Bidirectional: true},
		},
	}
	d, err := n.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	if !n.WaitBypassCount(6) {
		t.Fatalf("bypass links = %d, want 6", n.Switch.BypassLinkCount())
	}
	sink := d.Sink("dst")
	deadline := time.Now().Add(5 * time.Second)
	for sink.Received.Load() < 5000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sink.Received.Load(); got < 5000 {
		t.Fatalf("sink received %d", got)
	}
}

func TestDeployInvalidGraphFails(t *testing.T) {
	n := newNode(t, ModeVanilla)
	bad := &graph.Graph{VNFs: []graph.VNF{{Name: "", Kind: graph.KindForward}}}
	if _, err := n.Deploy(bad); err == nil {
		t.Fatal("invalid graph deployed")
	}
}

func TestDeploymentStopCleansUp(t *testing.T) {
	n := newNode(t, ModeHighway)
	d, err := n.Deploy(graph.Chain(2, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	if !n.WaitBypassCount(6) {
		t.Fatalf("links = %d", n.Switch.BypassLinkCount())
	}
	d.Stop()
	if got := n.Switch.BypassLinkCount(); got != 0 {
		t.Fatalf("bypass links after stop = %d", got)
	}
	if got := n.Registry.Len(); got != 0 {
		t.Fatalf("segments after stop = %d", got)
	}
	if got := len(n.Switch.Ports()); got != 0 {
		t.Fatalf("ports after stop = %d", got)
	}
	if got := n.Switch.Table().Len(); got != 0 {
		t.Fatalf("flows after stop = %d", got)
	}
}

func TestBypassSetupLatencyObserved(t *testing.T) {
	var (
		mu     sync.Mutex
		setups []time.Duration
	)
	n, err := NewNode(NodeConfig{
		Mode: ModeHighway,
		OnBypassUp: func(from, to uint32, d time.Duration) {
			mu.Lock()
			setups = append(setups, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	d, err := n.Deploy(graph.Chain(1, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if !n.WaitBypassCount(4) {
		t.Fatal("bypasses not established")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(setups) != 4 {
		t.Fatalf("observed %d setups, want 4", len(setups))
	}
	for _, s := range setups {
		if s <= 0 || s > time.Second {
			t.Fatalf("implausible setup duration %v", s)
		}
	}
}

// TestStopRemovesControllerInstalledFlowsOnOwnPorts covers the teardown
// invariant with cookie-scoped deletion: a controller that replaced one of
// the deployment's steering rules under its own cookie must not keep the
// bypass (or the flow) alive past Deployment.Stop — flows referencing the
// doomed ports die with the deployment regardless of who installed them.
func TestStopRemovesControllerInstalledFlowsOnOwnPorts(t *testing.T) {
	n := newNode(t, ModeHighway)
	d, err := n.Deploy(graph.Chain(2, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	if !n.WaitBypassCount(6) {
		t.Fatalf("bypasses = %d, want 6", n.Switch.BypassLinkCount())
	}
	// "Controller" replaces the src→vnf1 steering rule (ports 1→3) with an
	// identical one under a foreign cookie; the bypass re-establishes.
	n.Switch.Table().Add(10, flow.MatchInPort(1), flow.Actions{flow.Output(3)}, 0xBEEF)
	if !n.WaitBypassCount(6) {
		t.Fatalf("bypasses after controller replace = %d, want 6", n.Switch.BypassLinkCount())
	}
	d.Stop()
	if got := n.Switch.BypassLinkCount(); got != 0 {
		t.Fatalf("%d bypasses survived Stop", got)
	}
	if got := n.Switch.Table().Len(); got != 0 {
		t.Fatalf("%d flows survived Stop (controller flow on destroyed ports must die)", got)
	}
}
