package orchestrator

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ovshighway/internal/graph"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vnf"
)

// JSON schema for service graphs, consumed by cmd/nfvnode -graph:
//
//	{
//	  "vnfs": [
//	    {"name": "src",  "kind": "source", "flows": 4},
//	    {"name": "fw",   "kind": "firewall",
//	     "rules": [{"proto": 17, "dst_port": 53, "src_prefix": "10.0.0.0/8"}]},
//	    {"name": "mon",  "kind": "monitor"},
//	    {"name": "dst",  "kind": "sink"}
//	  ],
//	  "edges": [
//	    {"a": "src:0", "b": "fw:0",  "bidir": true},
//	    {"a": "fw:1",  "b": "mon:0", "bidir": true},
//	    {"a": "mon:1", "b": "dst:0", "bidir": true}
//	  ]
//	}
//
// Endpoints are "vnfname:port" or "nic:name".
type jsonGraph struct {
	VNFs  []jsonVNF  `json:"vnfs"`
	Edges []jsonEdge `json:"edges"`
}

type jsonVNF struct {
	Name  string       `json:"name"`
	Kind  string       `json:"kind"`
	Flows int          `json:"flows,omitempty"`
	Rules []jsonFWRule `json:"rules,omitempty"`
	// Timestamp enables latency stamping on source/srcsink kinds.
	Timestamp bool `json:"timestamp,omitempty"`
	// Node pins the VNF to a compute node; clusters partition by it and
	// the placement optimizer treats it as fixed. Empty = unplaced.
	Node string `json:"node,omitempty"`
}

type jsonFWRule struct {
	Proto     uint8  `json:"proto,omitempty"`
	DstPort   uint16 `json:"dst_port,omitempty"`
	SrcPrefix string `json:"src_prefix,omitempty"`
	DstPrefix string `json:"dst_prefix,omitempty"`
}

type jsonEdge struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Bidir bool   `json:"bidir,omitempty"`
}

// ParseGraphJSON decodes and validates a JSON service-graph description.
func ParseGraphJSON(data []byte) (*graph.Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("graph json: %w", err)
	}
	g := &graph.Graph{}
	for _, v := range jg.VNFs {
		gv := graph.VNF{Name: v.Name, Kind: graph.Kind(v.Kind), Node: v.Node}
		switch gv.Kind {
		case graph.KindFirewall:
			rules, err := parseFWRules(v.Rules)
			if err != nil {
				return nil, fmt.Errorf("vnf %s: %w", v.Name, err)
			}
			gv.Args = rules
		case graph.KindSource:
			gv.Args = SourceSpecArgs{Spec: DefaultTrafficSpec(), Flows: v.Flows}
		case graph.KindSrcSink:
			gv.Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: v.Flows, Timestamp: v.Timestamp}
		}
		g.VNFs = append(g.VNFs, gv)
	}
	for i, e := range jg.Edges {
		a, err := parseEndpoint(e.A)
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
		b, err := parseEndpoint(e.B)
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
		g.Edges = append(g.Edges, graph.Edge{A: a, B: b, Bidirectional: e.Bidir})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FormatGraphJSON serializes a service graph back into the JSON schema
// ParseGraphJSON consumes, preserving kinds, per-VNF node placement,
// kind-specific args and edge endpoints — parse(format(g)) round-trips.
func FormatGraphJSON(g *graph.Graph) ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	jg := jsonGraph{}
	for _, v := range g.VNFs {
		jv := jsonVNF{Name: v.Name, Kind: string(v.Kind), Node: v.Node}
		switch args := v.Args.(type) {
		case []vnf.FirewallRule:
			for _, r := range args {
				jr := jsonFWRule{Proto: r.Proto, DstPort: r.DstPort}
				if r.SrcPrefixLen > 0 {
					jr.SrcPrefix = fmt.Sprintf("%s/%d", r.SrcPrefix, r.SrcPrefixLen)
				}
				if r.DstPrefixLen > 0 {
					jr.DstPrefix = fmt.Sprintf("%s/%d", r.DstPrefix, r.DstPrefixLen)
				}
				jv.Rules = append(jv.Rules, jr)
			}
		case SourceSpecArgs:
			jv.Flows = args.Flows
		case SrcSinkArgs:
			jv.Flows = args.Flows
			jv.Timestamp = args.Timestamp
		}
		jg.VNFs = append(jg.VNFs, jv)
	}
	for _, e := range g.Edges {
		jg.Edges = append(jg.Edges, jsonEdge{
			A: formatEndpoint(e.A), B: formatEndpoint(e.B), Bidir: e.Bidirectional,
		})
	}
	return json.MarshalIndent(jg, "", "  ")
}

func formatEndpoint(ep graph.Endpoint) string {
	if ep.Kind == graph.EpNIC {
		return "nic:" + ep.Name
	}
	return fmt.Sprintf("%s:%d", ep.Name, ep.Port)
}

func parseEndpoint(s string) (graph.Endpoint, error) {
	idx := strings.LastIndex(s, ":")
	if idx < 0 {
		return graph.Endpoint{}, fmt.Errorf("endpoint %q: want \"vnf:port\" or \"nic:name\"", s)
	}
	head, tail := s[:idx], s[idx+1:]
	if head == "nic" {
		return graph.NIC(tail), nil
	}
	port, err := strconv.Atoi(tail)
	if err != nil {
		return graph.Endpoint{}, fmt.Errorf("endpoint %q: bad port: %w", s, err)
	}
	return graph.VNFPort(head, port), nil
}

func parseFWRules(in []jsonFWRule) ([]vnf.FirewallRule, error) {
	var out []vnf.FirewallRule
	for _, r := range in {
		rule := vnf.FirewallRule{Proto: r.Proto, DstPort: r.DstPort}
		if r.SrcPrefix != "" {
			addr, plen, err := parsePrefix(r.SrcPrefix)
			if err != nil {
				return nil, err
			}
			rule.SrcPrefix, rule.SrcPrefixLen = addr, plen
		}
		if r.DstPrefix != "" {
			addr, plen, err := parsePrefix(r.DstPrefix)
			if err != nil {
				return nil, err
			}
			rule.DstPrefix, rule.DstPrefixLen = addr, plen
		}
		out = append(out, rule)
	}
	return out, nil
}

func parsePrefix(s string) (pkt.IP4, int, error) {
	var a pkt.IP4
	plen := 32
	if idx := strings.Index(s, "/"); idx >= 0 {
		v, err := strconv.Atoi(s[idx+1:])
		if err != nil || v < 0 || v > 32 {
			return a, 0, fmt.Errorf("bad prefix %q", s)
		}
		plen = v
		s = s[:idx]
	}
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, 0, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return a, 0, fmt.Errorf("bad IPv4 %q: %w", s, err)
		}
		a[i] = byte(v)
	}
	return a, plen, nil
}
