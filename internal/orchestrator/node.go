// Package orchestrator assembles a complete NFV node — vSwitch, compute
// agent, shared-memory registry, p-2-p detector and bypass manager — and
// lowers service graphs onto it (Figure 1(b) of the paper). It is the
// engine behind the public highway API and the experiment harness.
package orchestrator

import (
	"fmt"
	"sync"
	"time"

	"ovshighway/internal/agent"
	"ovshighway/internal/conntrack"
	"ovshighway/internal/core"
	"ovshighway/internal/dpdkr"
	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/shm"
	"ovshighway/internal/vswitch"
)

// Mode selects the datapath variant: the vanilla OVS-DPDK baseline or the
// paper's transparent-highway extension.
type Mode int

// Datapath modes.
const (
	ModeVanilla Mode = iota // all traffic crosses the vSwitch
	ModeHighway             // p-2-p links bypass the vSwitch dynamically
)

func (m Mode) String() string {
	if m == ModeHighway {
		return "highway"
	}
	return "vanilla"
}

// NodeConfig parametrizes a Node. Zero values take defaults.
type NodeConfig struct {
	Mode       Mode
	Switch     vswitch.Config
	Agent      agent.Config
	RingSize   int // dpdkr and bypass ring size; default dpdkr.DefaultRingSize
	PoolSize   int // shared packet pool population; default 8192
	BufSize    int // packet buffer size; default 2048
	DrainTO    time.Duration
	OnBypassUp func(from, to uint32, setup time.Duration)

	// NumQueues is the RSS queue count of every VM-facing dpdkr port the
	// node creates; default 1 (classic single-queue ports).
	NumQueues int
	// AutoBalance starts the datapath load balancer alongside the switch:
	// per-PMD busy fractions are sampled every BalanceInterval and queues
	// re-home off the hottest PMD when the spread exceeds BalanceSpread
	// (zero values take the balancer's defaults: 100ms, 0.2).
	AutoBalance     bool
	BalanceInterval time.Duration
	BalanceSpread   float64

	// ConntrackCapacity/ConntrackIdle size the connection table each
	// stateful VNF gets when it deploys (zero values take the conntrack
	// defaults: 65536 entries, 30s idle).
	ConntrackCapacity int
	ConntrackIdle     time.Duration
}

// Node is one NFV compute node.
type Node struct {
	cfg NodeConfig

	Switch   *vswitch.Switch
	Agent    *agent.Agent
	Registry *shm.Registry
	Pool     *mempool.Pool
	Detector *core.Detector
	Manager  *core.Manager
	Balancer *core.Balancer

	mu       sync.Mutex
	nextPort uint32
	vmPorts  []uint32               // candidate ports for the detector
	ports    map[uint32]*dpdkr.Port // host-side port objects, for teardown drains
	nicByNm  map[string]uint32      // NIC name → port id
	stopped  bool
}

// NewConntrack builds a connection table sized by the node's config and
// attaches it to the vSwitch sweeper. Each stateful VNF gets its OWN table:
// a table shard has a single writer (the owning app goroutine), and VNFs at
// different points of a chain see different 5-tuples for the same
// connection anyway (a NAT keys on the pre-translation tuple, the balancer
// behind it on the post-translation one) — sharing a node-wide table would
// both break the single-writer contract and collide those key spaces.
// Shards follow the RSS queue count so a connection's shard and its
// receiving queue agree. Like the flow table, attached tables survive a
// vSwitch Restart: connection state is node-local, rules are reconciled.
func (n *Node) NewConntrack() (*conntrack.Table, error) {
	shards := n.cfg.NumQueues
	if shards <= 0 {
		shards = 1
	}
	ct, err := conntrack.New(conntrack.Config{
		Shards:      shards,
		Capacity:    n.cfg.ConntrackCapacity,
		IdleTimeout: n.cfg.ConntrackIdle,
	})
	if err != nil {
		return nil, err
	}
	n.Switch.AttachConntrack(ct)
	return ct, nil
}

// NewNode builds and starts a node (switch PMDs running; in highway mode the
// detector and manager are live as well).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.RingSize == 0 {
		cfg.RingSize = dpdkr.DefaultRingSize
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 8192
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = 2048
	}
	n := &Node{
		cfg:      cfg,
		Switch:   vswitch.New(cfg.Switch),
		Registry: shm.NewRegistry(),
		nextPort: 1,
		ports:    make(map[uint32]*dpdkr.Port),
		nicByNm:  make(map[string]uint32),
	}
	var err error
	n.Pool, err = mempool.New(mempool.Config{Capacity: cfg.PoolSize, BufSize: cfg.BufSize})
	if err != nil {
		return nil, err
	}
	n.Switch.SetInjectionPool(n.Pool)
	n.Agent = agent.New(n.Registry, cfg.Agent)

	if cfg.Mode == ModeHighway {
		n.Detector = core.NewDetector(n.Switch.Table(), n.candidatePorts)
		n.Manager = core.NewManager(n.Switch, n.Registry, n.Agent, n.Detector, core.ManagerConfig{
			RingSize:      cfg.RingSize,
			DrainTimeout:  cfg.DrainTO,
			OnEstablished: cfg.OnBypassUp,
		})
		go n.Manager.Run()
	}
	if err := n.Switch.Start(); err != nil {
		return nil, err
	}
	if cfg.AutoBalance {
		n.Balancer = core.NewBalancer(n.Switch, core.BalancerConfig{
			Interval:        cfg.BalanceInterval,
			SpreadThreshold: cfg.BalanceSpread,
		})
		go n.Balancer.Run()
	}
	return n, nil
}

// Stop tears the node down: manager (and all bypasses) first, then the
// switch threads.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	if n.Balancer != nil {
		n.Balancer.Stop()
	}
	if n.Manager != nil {
		n.Manager.Stop()
	}
	n.Switch.Stop()
}

// Mode returns the node's datapath mode.
func (n *Node) Mode() Mode { return n.cfg.Mode }

// VMPortCount reports the number of live VM-facing dpdkr ports — two per
// typical VNF — which NodeLoads converts into VNF-equivalents.
func (n *Node) VMPortCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.vmPorts)
}

func (n *Node) candidatePorts() []uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]uint32(nil), n.vmPorts...)
}

func (n *Node) allocPortID() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.allocPortIDLocked()
}

// allocPortIDLocked is allocPortID for callers already holding n.mu.
func (n *Node) allocPortIDLocked() uint32 {
	id := n.nextPort
	n.nextPort++
	return id
}

// CreateVM provisions a VM with nports fresh dpdkr ports attached to the
// switch, registers it with the agent, and returns the guest PMDs in
// creation order alongside the allocated port ids.
func (n *Node) CreateVM(name string, nports int) ([]uint32, []*dpdkr.PMD, error) {
	ids := make([]uint32, 0, nports)
	pmds := make([]*dpdkr.PMD, 0, nports)
	byID := make(map[uint32]*dpdkr.PMD, nports)
	for i := 0; i < nports; i++ {
		id := n.allocPortID()
		port, pmd, err := dpdkr.NewPortMQ(id, fmt.Sprintf("dpdkr%d", id), n.cfg.RingSize, n.cfg.NumQueues)
		if err != nil {
			return nil, nil, err
		}
		if err := n.Switch.AddPort(port); err != nil {
			return nil, nil, err
		}
		ids = append(ids, id)
		pmds = append(pmds, pmd)
		byID[id] = pmd
	}
	if _, err := n.Agent.CreateVM(name, byID); err != nil {
		for _, id := range ids {
			_ = n.Switch.RemovePort(id)
		}
		return nil, nil, err
	}
	n.mu.Lock()
	n.vmPorts = append(n.vmPorts, ids...)
	for _, id := range ids {
		if p, ok := n.Switch.Port(id).(*dpdkr.Port); ok {
			n.ports[id] = p
		}
	}
	n.mu.Unlock()
	if n.Detector != nil {
		n.Detector.Poke()
	}
	return ids, pmds, nil
}

// DestroyVM removes a VM and its ports from the node.
func (n *Node) DestroyVM(name string, ids []uint32) error {
	if err := n.Agent.DestroyVM(name); err != nil {
		return err
	}
	n.mu.Lock()
	keep := n.vmPorts[:0]
	drop := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	for _, id := range n.vmPorts {
		if !drop[id] {
			keep = append(keep, id)
		}
	}
	n.vmPorts = keep
	n.mu.Unlock()
	for _, id := range ids {
		_ = n.Switch.RemovePort(id)
	}
	// Wait for in-flight PMD iterations still holding the old port snapshot,
	// then — with the forwarding engine and the (destroyed) VM both
	// detached — free whatever was parked in the normal channels.
	n.Switch.WaitDatapathQuiescence()
	n.mu.Lock()
	for _, id := range ids {
		if p, ok := n.ports[id]; ok {
			p.Drain()
			delete(n.ports, id)
		}
	}
	n.mu.Unlock()
	if n.Detector != nil {
		n.Detector.Poke()
	}
	return nil
}

// portBacklog reports a port's normal-channel backlog in both directions —
// frames queued toward the VM plus frames the VM transmitted that the
// forwarding engine has not yet picked up. The migration drain's emptiness
// probe: a frame parked in either ring when the VM is destroyed would be
// freed, not delivered. Returns 0 for unknown ports.
func (n *Node) portBacklog(id uint32) int {
	n.mu.Lock()
	p := n.ports[id]
	n.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.NormalBacklog() + p.ReturnBacklog()
}

// AddNIC attaches a simulated physical NIC to the switch under the given
// graph-visible name.
func (n *Node) AddNIC(name string, cfg nic.Config) (*nic.NIC, error) {
	// Duplicate check, port-id allocation and name registration happen in
	// one critical section: a check-then-act gap would let two concurrent
	// AddNIC calls both pass and silently shadow one port behind the other
	// — teardown of either NIC then detaches the wrong one.
	n.mu.Lock()
	if _, dup := n.nicByNm[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("orchestrator: NIC name %q already in use", name)
	}
	if cfg.ID == 0 {
		cfg.ID = n.allocPortIDLocked()
	}
	n.nicByNm[name] = cfg.ID
	n.mu.Unlock()
	unregister := func() {
		n.mu.Lock()
		delete(n.nicByNm, name)
		n.mu.Unlock()
	}
	if cfg.Name == "" {
		cfg.Name = name
	}
	dev, err := nic.New(cfg)
	if err != nil {
		unregister()
		return nil, err
	}
	if err := n.Switch.AddPort(dev); err != nil {
		unregister()
		return nil, err
	}
	return dev, nil
}

// NICPort resolves a NIC name to its switch port id.
func (n *Node) NICPort(name string) (uint32, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, ok := n.nicByNm[name]
	return id, ok
}

// NICNames lists the NICs registered on this node (any order). The cluster
// deployer uses it to resolve NIC graph endpoints to their home nodes.
func (n *Node) NICNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nicByNm))
	for name := range n.nicByNm {
		out = append(out, name)
	}
	return out
}

// RemoveNIC detaches a previously-added NIC from the switch and forgets its
// name. The caller is responsible for draining the device's queues once the
// datapath has quiesced.
func (n *Node) RemoveNIC(name string) error {
	n.mu.Lock()
	id, ok := n.nicByNm[name]
	if ok {
		delete(n.nicByNm, name)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("orchestrator: unknown NIC %q", name)
	}
	return n.Switch.RemovePort(id)
}
