package orchestrator

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ovshighway/internal/graph"
)

// reconcileUntilClean drives synchronous reconcile passes until one applies
// zero repairs, returning the total repair count. Fails the test if the
// cluster does not converge within a bounded number of passes.
func reconcileUntilClean(t *testing.T, c *Cluster) int {
	t.Helper()
	total := 0
	for pass := 0; pass < 50; pass++ {
		n, err := c.ReconcileOnce()
		if err != nil {
			t.Fatalf("reconcile pass %d: %v", pass, err)
		}
		total += n
		if n == 0 {
			return total
		}
	}
	t.Fatalf("reconciler did not converge (%d repairs applied)", total)
	return total
}

// TestNodeLoadsExcludesSpineRelayTraffic: a relay-only spine forwards every
// leaf–leaf frame on its trunk ports but hosts none of the VNF work, so
// NodeLoads must attribute zero load to it — trunk-port RX is excluded from
// the traffic-apportioning pass.
func TestNodeLoadsExcludesSpineRelayTraffic(t *testing.T) {
	c := newCluster(t, ModeVanilla, "spine", "leaf-a", "leaf-b")
	g := graph.SplitBidirChain(1, []string{"leaf-a", "leaf-b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, Mode: FabricSpine, Spine: "spine"})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	// First call snapshots the RX baseline; the second sees only the
	// traffic moved in between — all of it relayed through the spine.
	c.NodeLoads()
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	loads := c.NodeLoads()

	byName := make(map[string]float64, len(loads))
	for i, name := range c.NodeNames() {
		byName[name] = loads[i]
	}
	if byName["spine"] != 0 {
		t.Fatalf("relay-only spine credited %.2f VNF-equivalents of load (trunk RX leaked into NodeLoads)", byName["spine"])
	}
	if byName["leaf-a"] == 0 || byName["leaf-b"] == 0 {
		t.Fatalf("leaves carried the chain but show no load: a=%.2f b=%.2f", byName["leaf-a"], byName["leaf-b"])
	}
}

// TestFailTrunkTypedErrors: fault injection aimed at adjacencies or bundle
// slots the fabric does not carry reports ErrUnknownAdjacency, matchable
// with errors.Is; re-failing a dead slot is an idempotent no-op.
func TestFailTrunkTypedErrors(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(1, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, ECMPWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if err := c.FailTrunk("a", "nope", 0); !errors.Is(err, ErrUnknownAdjacency) {
		t.Fatalf("unknown node pair: got %v, want ErrUnknownAdjacency", err)
	}
	if err := c.FailTrunk("a", "b", 7); !errors.Is(err, ErrUnknownAdjacency) {
		t.Fatalf("out-of-range bundle slot: got %v, want ErrUnknownAdjacency", err)
	}
	if err := c.FailTrunk("a", "b", 0); err != nil {
		t.Fatalf("failing a live slot: %v", err)
	}
	if err := c.FailTrunk("a", "b", 0); err != nil {
		t.Fatalf("re-failing a dead slot must be idempotent, got %v", err)
	}
	if err := c.FailTrunk("a", "b", 1); err == nil {
		t.Fatal("failing the last live slot was accepted")
	} else if errors.Is(err, ErrUnknownAdjacency) {
		t.Fatalf("last-slot refusal mislabeled as unknown adjacency: %v", err)
	}
}

// TestFailTrunkConcurrentWithStop races fault injection against deployment
// teardown: whatever interleaving wins, nothing may panic or deadlock, and
// errors must be the typed kind (the adjacency can legitimately vanish
// mid-call). Run under -race.
func TestFailTrunkConcurrentWithStop(t *testing.T) {
	for round := 0; round < 5; round++ {
		c := newCluster(t, ModeVanilla, "a", "b")
		g := graph.SplitBidirChain(1, []string{"a", "b"})
		cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, ECMPWidth: 2})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				if err := c.FailTrunk("a", "b", i); err != nil && !errors.Is(err, ErrUnknownAdjacency) {
					// The only other legitimate refusal is "last live slot".
					continue
				}
			}
		}()
		go func() {
			defer wg.Done()
			cd.Stop()
		}()
		wg.Wait()
		c.Stop()
	}
}

// TestReconcileRepairsRuleWipe: wiping a node's deployment rules (the
// fat-fingered del-flows fault) is fully repaired by reconciliation — the
// first pass reinstalls, a follow-up pass is clean, and traffic resumes.
func TestReconcileRepairsRuleWipe(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(2, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end1", 1000)

	// A freshly-converged deployment reconciles to zero repairs.
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("clean deployment reconciled with %d repairs, err %v", n, err)
	}

	wiped, err := c.WipeDeploymentRules("b")
	if err != nil {
		t.Fatal(err)
	}
	if wiped == 0 {
		t.Fatal("wipe removed no rules — fault not injected")
	}
	if n := reconcileUntilClean(t, c); n < wiped {
		t.Fatalf("reconciler repaired %d rules, expected at least the %d wiped", n, wiped)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
}

// TestReconcileRepairsTrunkFailure: a killed bundle slot is rebuilt by
// reconciliation — the bundle returns to full width with its lanes re-added
// and traffic keeps flowing over the repaired fabric.
func TestReconcileRepairsTrunkFailure(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(1, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, ECMPWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end1", 1000)

	if err := c.FailTrunk("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(c.PairTrunks("a", "b")); got != 1 {
		t.Fatalf("bundle has %d live trunks after failure, want 1", got)
	}
	if n := reconcileUntilClean(t, c); n == 0 {
		t.Fatal("reconciler saw nothing to repair after a trunk failure")
	}
	trunks := c.PairTrunks("a", "b")
	if len(trunks) != 2 {
		t.Fatalf("bundle not rebuilt: %d live trunks, want 2", len(trunks))
	}
	for i, tr := range trunks {
		if tr.LaneCount() != 1 {
			t.Fatalf("repaired slot %d carries %d lanes, want 1", i, tr.LaneCount())
		}
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
}

// TestReconcileSurvivesVSwitchRestart: a vSwitch restart empties a node's
// flow table entirely; reconciliation reinstalls the deployment's rules and
// the chain recovers without a redeploy.
func TestReconcileSurvivesVSwitchRestart(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(2, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end1", 1000)

	if err := c.RestartVSwitch("a"); err != nil {
		t.Fatal(err)
	}
	if got := c.Node("a").Switch.Table().Len(); got != 0 {
		t.Fatalf("restart left %d flows installed", got)
	}
	if n := reconcileUntilClean(t, c); n == 0 {
		t.Fatal("reconciler saw nothing to repair after a vswitch restart")
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
}

// TestReconcileSurvivesNodeBlip: FailNode combines every fault at once —
// all trunks touching the node die and its vSwitch restarts empty. One
// reconciliation convergence must bring the whole path back.
func TestReconcileSurvivesNodeBlip(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	g := graph.SplitBidirChain(4, []string{"a", "b", "c"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, ECMPWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end1", 1000)

	if err := c.FailNode("b"); err != nil {
		t.Fatal(err)
	}
	if n := reconcileUntilClean(t, c); n == 0 {
		t.Fatal("reconciler saw nothing to repair after a node blip")
	}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if got := len(c.PairTrunks(pair[0], pair[1])); got != 2 {
			t.Fatalf("adjacency %s–%s not rebuilt: %d live trunks, want 2", pair[0], pair[1], got)
		}
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
}

// TestReconcilerBackgroundLoop: the background reconciler alone — no manual
// ReconcileOnce calls — repairs an injected rule wipe and keeps its error
// counter at zero.
func TestReconcilerBackgroundLoop(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(2, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end1", 1000)

	r := c.StartReconciler(2 * time.Millisecond)
	defer r.Stop()
	if _, err := c.WipeDeploymentRules("b"); err != nil {
		t.Fatal(err)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
	if !waitCond(func() bool { return r.Stats().Repairs > 0 }) {
		t.Fatal("background reconciler recorded no repairs")
	}
	if st := r.Stats(); st.Errors != 0 {
		t.Fatalf("background reconciler recorded %d errors", st.Errors)
	}
}

// TestMigrateZeroLossOrchestrator: a paced chain's conservation ledger must
// not change across a live migration — every packet in flight during the
// cutover is delivered, none lost.
func TestMigrateZeroLossOrchestrator(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	g := graph.SplitBidirChain(3, []string{"a", "b"})
	for i := range g.VNFs {
		switch g.VNFs[i].Name {
		case "end0":
			g.VNFs[i].Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: 4, RatePps: 20_000}
		case "end1":
			spec := DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			g.VNFs[i].Args = SrcSinkArgs{Spec: spec, Flows: 4, RatePps: 20_000}
		}
	}
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end0", 1000)
	waitRecv(t, cd, "end1", 1000)

	settle := func() int64 {
		e0, e1 := cd.SrcSink("end0"), cd.SrcSink("end1")
		e0.SetPaused(true)
		e1.SetPaused(true)
		ledger := func() uint64 {
			return e0.Sent.Load() + e0.Received.Load() + e1.Sent.Load() + e1.Received.Load()
		}
		// Sustained quiet, not just two equal samples: a packet parked
		// behind a stalled goroutine (the race detector deschedules
		// aggressively) moves no counter for several milliseconds.
		deadline := time.Now().Add(2 * time.Second)
		prev := ledger()
		stable := 0
		for time.Now().Before(deadline) && stable < 8 {
			time.Sleep(5 * time.Millisecond)
			cur := ledger()
			if cur == prev {
				stable++
			} else {
				stable = 0
				prev = cur
			}
		}
		inflight := e0.InFlight() + e1.InFlight()
		e0.SetPaused(false)
		e1.SetPaused(false)
		return inflight
	}

	l0 := settle()
	rep, err := cd.Migrate("vnf2", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Errorf("paced chain should drain before the deadline: %+v", rep)
	}
	if rep.From != "a" || rep.To != "c" {
		t.Errorf("report endpoints = %s -> %s, want a -> c", rep.From, rep.To)
	}
	l1 := settle()
	if lost := l1 - l0; lost != 0 {
		t.Fatalf("migration lost %d packets (ledger %d → %d)", lost, l0, l1)
	}
	// The moved VNF now lives on the target; the chain still delivers.
	if cd.Deployment("c") == nil || cd.Deployment("c").vms["vnf2"] == nil {
		t.Fatal("vnf2 not instantiated on the target node")
	}
	if d := cd.Deployment("a"); d != nil && d.vms["vnf2"] != nil {
		t.Fatal("vnf2 still instantiated on the source node")
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
	// The deployment reconciles clean against its migrated layout.
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("post-migration reconcile: %d repairs, err %v", n, err)
	}
}

// TestMigrateValidation covers the refusal paths: unknown VNFs and nodes,
// endpoint (non-middle) VNFs, and the src==target no-op.
func TestMigrateValidation(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(1, []string{"a", "b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if _, err := cd.Migrate("vnf1", "nope"); err == nil {
		t.Fatal("migrate to an unknown node was accepted")
	}
	if _, err := cd.Migrate("ghost", "b"); err == nil {
		t.Fatal("migrating an unknown VNF was accepted")
	}
	if _, err := cd.Migrate("end0", "b"); err == nil {
		t.Fatal("migrating an endpoint VNF was accepted")
	}
	if _, err := cd.Migrate("vnf1", "a"); err != nil {
		t.Fatalf("src==target migration should be a no-op, got %v", err)
	}
}

// TestReconcileRepairsMultiSpinePath: in a two-spine Clos with ECMP×2
// uplink bundles, killing a bundle slot on one plane's uplink is repaired by
// reconciliation — the reconciler re-derives the slot shape from the steer's
// per-path hop list, rebuilds the trunk with its lane, and the chain keeps
// delivering across both planes.
func TestReconcileRepairsMultiSpinePath(t *testing.T) {
	c := newCluster(t, ModeVanilla, "s1", "s2", "leaf-a", "leaf-b")
	g := graph.SplitBidirChain(1, []string{"leaf-a", "leaf-b"})
	cd, err := c.Deploy(g, TrunkConfig{
		RatePps: -1, Mode: FabricSpine, Spines: []string{"s1", "s2"}, ECMPWidth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end1", 1000)

	// A freshly-converged Clos reconciles to zero repairs.
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("clean fabric reconciled with %d repairs, err %v", n, err)
	}

	if err := c.FailTrunk("leaf-a", "s1", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(c.PairTrunks("leaf-a", "s1")); got != 1 {
		t.Fatalf("uplink bundle has %d live trunks after failure, want 1", got)
	}
	if n := reconcileUntilClean(t, c); n == 0 {
		t.Fatal("reconciler saw nothing to repair after an uplink slot failure")
	}
	trunks := c.PairTrunks("leaf-a", "s1")
	if len(trunks) != 2 {
		t.Fatalf("uplink bundle not rebuilt: %d live trunks, want 2", len(trunks))
	}
	for i, tr := range trunks {
		if tr.LaneCount() != 1 {
			t.Fatalf("repaired slot %d carries %d lanes, want 1", i, tr.LaneCount())
		}
	}
	// The other plane's uplinks were untouched.
	for _, pair := range [][2]string{{"leaf-a", "s2"}, {"leaf-b", "s1"}, {"leaf-b", "s2"}} {
		if got := len(c.PairTrunks(pair[0], pair[1])); got != 2 {
			t.Fatalf("%s–%s bundle disturbed: %d live trunks, want 2", pair[0], pair[1], got)
		}
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
}
