package orchestrator

import (
	"testing"
	"time"

	"ovshighway/internal/graph"
	"ovshighway/internal/trunk"
)

// carriedTotal sums a trunk's carried frames over both directions.
func carriedTotal(tr *trunk.Trunk) uint64 {
	ab, ba := tr.Stats()
	return ab.Carried + ba.Carried
}

// TestClusterECMPPathPinningAndRebalance: an ECMP×2 adjacency spreads a
// many-flow chain over both parallel trunks while any single flow sticks to
// one path, and failing one trunk re-pins its flows onto the survivor with
// traffic still flowing — the live-rebalance property.
func TestClusterECMPPathPinningAndRebalance(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	g := graph.SplitBidirChain(1, []string{"a", "b"})
	// Plenty of flows so the hash spreads them across the bundle.
	for i := range g.VNFs {
		switch g.VNFs[i].Name {
		case "end0":
			g.VNFs[i].Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: 16}
		case "end1":
			spec := DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			g.VNFs[i].Args = SrcSinkArgs{Spec: spec, Flows: 16}
		}
	}
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, ECMPWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()

	if c.TrunkCount() != 1 {
		t.Fatalf("ECMP bundle counted as %d adjacencies, want 1", c.TrunkCount())
	}
	trunks := c.PairTrunks("a", "b")
	if len(trunks) != 2 {
		t.Fatalf("adjacency has %d parallel trunks, want 2", len(trunks))
	}
	// Both paths carry lanes of the same vid.
	for i, tr := range trunks {
		if tr.LaneCount() != 1 {
			t.Fatalf("parallel trunk %d carries %d lanes, want 1", i, tr.LaneCount())
		}
	}
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	// Spreading: with 16 flows per direction, both parallel paths carry
	// traffic (probability of all 32 flows pinning one path ~ 2^-32).
	if carriedTotal(trunks[0]) == 0 || carriedTotal(trunks[1]) == 0 {
		t.Fatalf("flows did not spread over the bundle: %d/%d carried",
			carriedTotal(trunks[0]), carriedTotal(trunks[1]))
	}
	if trunks[0].Unrouted()+trunks[1].Unrouted() != 0 {
		t.Fatal("ECMP bundle dropped unrouted frames")
	}

	// Fail path 0: the survivor must absorb ALL the flows (datapath
	// fall-forward, no rule rewrite) and the chain keeps delivering.
	if err := c.FailTrunk("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	survivor := trunks[1]
	if got := c.PairTrunks("a", "b"); len(got) != 1 || got[0] != survivor {
		t.Fatalf("registry did not shrink to the survivor: %d links", len(got))
	}
	ss := cd.SrcSink("end1")
	base := ss.Received.Load()
	carriedBase := carriedTotal(survivor)
	deadline := time.Now().Add(5 * time.Second)
	for ss.Received.Load() < base+2000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ss.Received.Load(); got < base+2000 {
		t.Fatalf("chain stalled after trunk failure (%d new packets)", got-base)
	}
	if carriedTotal(survivor) <= carriedBase {
		t.Fatal("surviving trunk carried nothing after rebalance")
	}
	// Re-failing the dead slot is idempotent, not an error.
	if err := c.FailTrunk("a", "b", 0); err != nil {
		t.Fatalf("re-failing an already-dead slot errored: %v", err)
	}
	// Failing the last live path is teardown, not rebalance: refused.
	if err := c.FailTrunk("a", "b", 1); err == nil {
		t.Fatal("failing the last live trunk of an adjacency was accepted")
	}
}

// TestClusterSpineRelay: in spine mode a leaf–leaf crossing rides two
// adjacencies (leaf→spine, spine→leaf) with the spine's vSwitch relaying
// the tagged lane between its trunk ports. Frames re-home pool-to-pool at
// every hop — after teardown all three nodes' pools must be whole, and the
// spine must hold no leftover relay rules.
func TestClusterSpineRelay(t *testing.T) {
	c := newCluster(t, ModeVanilla, "spine", "leaf-a", "leaf-b")
	g := graph.SplitBidirChain(1, []string{"leaf-a", "leaf-b"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, Mode: FabricSpine, Spine: "spine"})
	if err != nil {
		t.Fatal(err)
	}

	// Two adjacencies, no direct leaf–leaf trunk.
	if c.TrunkCount() != 2 {
		t.Fatalf("spine crossing created %d adjacencies, want 2", c.TrunkCount())
	}
	if c.PairTrunks("leaf-a", "leaf-b") != nil {
		t.Fatal("spine mode created a direct leaf–leaf trunk")
	}
	aSpine := c.PairTrunks("leaf-a", "spine")
	bSpine := c.PairTrunks("leaf-b", "spine")
	if len(aSpine) != 1 || len(bSpine) != 1 {
		t.Fatalf("leaf uplinks: %d/%d trunks, want 1/1", len(aSpine), len(bSpine))
	}
	// One lane, same vid on both hops.
	if aSpine[0].LaneCount() != 1 || bSpine[0].LaneCount() != 1 {
		t.Fatalf("lanes per hop: %d/%d, want 1/1", aSpine[0].LaneCount(), bSpine[0].LaneCount())
	}
	if aSpine[0].Lanes()[0] != bSpine[0].Lanes()[0] {
		t.Fatalf("relayed lane changed vid across hops: %d vs %d",
			aSpine[0].Lanes()[0], bSpine[0].Lanes()[0])
	}
	// The spine relays: rules live on its switch even though it hosts no
	// VNFs of this deployment.
	if cd.Deployment("spine") != nil {
		t.Fatal("spine unexpectedly hosts VNFs")
	}
	if got := c.Node("spine").Switch.Table().Len(); got == 0 {
		t.Fatal("spine holds no relay rules")
	}

	// Traffic flows end to end in both directions, through both hops.
	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	for name, tr := range map[string]*trunk.Trunk{"a-spine": aSpine[0], "spine-b": bSpine[0]} {
		ab, ba := tr.Stats()
		if ab.Carried == 0 || ba.Carried == 0 {
			t.Fatalf("hop %s idle: %+v/%+v", name, ab, ba)
		}
		if tr.Unrouted() != 0 {
			t.Fatalf("hop %s dropped %d unrouted frames", name, tr.Unrouted())
		}
	}

	cd.Stop()
	if c.TrunkCount() != 0 {
		t.Fatalf("%d adjacencies survive the deployment", c.TrunkCount())
	}
	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if got := n.Switch.Table().Len(); got != 0 {
			t.Fatalf("node %s still has %d flows (relay rules leaked?)", name, got)
		}
		// Every buffer is home: the relay re-homed frames leaf→spine pool
		// and spine→leaf pool, and teardown drained the rest. A frame freed
		// into the wrong pool would have panicked via the ownership guard.
		if n.Pool.Avail() != n.Pool.Cap() {
			t.Fatalf("node %s pool leaked: %d of %d free", name, n.Pool.Avail(), n.Pool.Cap())
		}
		if len(n.Switch.Ports()) != 0 {
			t.Fatalf("node %s still has ports attached", name)
		}
	}
}

// TestClusterSpineEndpointStaysSingleHop: a crossing that touches the spine
// itself needs no relay — one adjacency, no steer-cookie rules anywhere.
func TestClusterSpineEndpointStaysSingleHop(t *testing.T) {
	c := newCluster(t, ModeVanilla, "spine", "leaf-a")
	g := graph.SplitBidirChain(1, []string{"spine", "leaf-a"})
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1, Mode: FabricSpine, Spine: "spine"})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	if c.TrunkCount() != 1 {
		t.Fatalf("spine-endpoint crossing created %d adjacencies, want 1", c.TrunkCount())
	}
	waitRecv(t, cd, "end1", 1000)
}

// TestClusterMultiSpineClos: with Spines listing two relay nodes, a
// leaf–leaf crossing is lowered onto one two-hop path per spine — four
// adjacencies, relay rules on BOTH spines, and the sender's ECMP spreading
// a many-flow chain over both planes. Teardown leaves no rules, ports, or
// buffers behind on any of the four nodes.
func TestClusterMultiSpineClos(t *testing.T) {
	c := newCluster(t, ModeVanilla, "s1", "s2", "leaf-a", "leaf-b")
	g := graph.SplitBidirChain(1, []string{"leaf-a", "leaf-b"})
	for i := range g.VNFs {
		switch g.VNFs[i].Name {
		case "end0":
			g.VNFs[i].Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: 16}
		case "end1":
			spec := DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			g.VNFs[i].Args = SrcSinkArgs{Spec: spec, Flows: 16}
		}
	}
	cd, err := c.Deploy(g, TrunkConfig{
		RatePps: -1, Mode: FabricSpine, Spines: []string{"s1", "s2"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One leaf→spine→leaf path per spine: four adjacencies, no direct link.
	if c.TrunkCount() != 4 {
		t.Fatalf("2-spine crossing created %d adjacencies, want 4", c.TrunkCount())
	}
	if c.PairTrunks("leaf-a", "leaf-b") != nil {
		t.Fatal("multi-spine mode created a direct leaf–leaf trunk")
	}
	hops := map[string][]*trunk.Trunk{}
	for _, spine := range []string{"s1", "s2"} {
		for _, leaf := range []string{"leaf-a", "leaf-b"} {
			trs := c.PairTrunks(leaf, spine)
			if len(trs) != 1 {
				t.Fatalf("%s–%s: %d trunks, want 1", leaf, spine, len(trs))
			}
			hops[leaf+"/"+spine] = trs
		}
		// Both planes relay: steer rules live on each spine's switch even
		// though neither hosts VNFs.
		if cd.Deployment(spine) != nil {
			t.Fatalf("spine %s unexpectedly hosts VNFs", spine)
		}
		if c.Node(spine).Switch.Table().Len() == 0 {
			t.Fatalf("spine %s holds no relay rules", spine)
		}
	}
	// The lane keeps one vid across every hop of every path.
	vid := hops["leaf-a/s1"][0].Lanes()[0]
	for name, trs := range hops {
		if trs[0].LaneCount() != 1 || trs[0].Lanes()[0] != vid {
			t.Fatalf("hop %s lanes %v, want the single vid %d", name, trs[0].Lanes(), vid)
		}
	}

	waitRecv(t, cd, "end0", 2000)
	waitRecv(t, cd, "end1", 2000)
	// Spreading: 16 flows per direction hash across the two planes, so both
	// spines' uplinks carry traffic and nothing is unrouted.
	for name, trs := range hops {
		if carriedTotal(trs[0]) == 0 {
			t.Fatalf("plane idle: hop %s carried nothing", name)
		}
		if trs[0].Unrouted() != 0 {
			t.Fatalf("hop %s dropped %d unrouted frames", name, trs[0].Unrouted())
		}
	}

	cd.Stop()
	if c.TrunkCount() != 0 {
		t.Fatalf("%d adjacencies survive the deployment", c.TrunkCount())
	}
	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if got := n.Switch.Table().Len(); got != 0 {
			t.Fatalf("node %s still has %d flows (relay rules leaked?)", name, got)
		}
		if n.Pool.Avail() != n.Pool.Cap() {
			t.Fatalf("node %s pool leaked: %d of %d free", name, n.Pool.Avail(), n.Pool.Cap())
		}
		if len(n.Switch.Ports()) != 0 {
			t.Fatalf("node %s still has ports attached", name)
		}
	}
}

// TestClusterMultiSpineEndpointStaysDirect: a crossing that touches one of
// the spines needs no relay — a single direct adjacency, exactly like the
// one-spine rule.
func TestClusterMultiSpineEndpointStaysDirect(t *testing.T) {
	c := newCluster(t, ModeVanilla, "s1", "s2", "leaf-a")
	g := graph.SplitBidirChain(1, []string{"s1", "leaf-a"})
	cd, err := c.Deploy(g, TrunkConfig{
		RatePps: -1, Mode: FabricSpine, Spines: []string{"s1", "s2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	if c.TrunkCount() != 1 {
		t.Fatalf("spine-endpoint crossing created %d adjacencies, want 1", c.TrunkCount())
	}
	waitRecv(t, cd, "end1", 1000)
}
