package orchestrator

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/graph"
)

// Live VNF migration. The protocol is make-before-break double-steering:
//
//  1. Instantiate a replica of the VNF on the target node (new VM, new
//     ports, app started) while the original keeps forwarding.
//  2. Re-partition the graph with the VNF re-pinned. Crossings that now
//     touch the moved VNF get FRESH lanes (new vids); crossings untouched
//     by the move keep theirs. The old lanes stay registered.
//  3. Install every rule of the new layout that occupies a fresh table
//     slot — receiver/relay rules for the new vids, the replica's outbound
//     steering, new local edges. Traffic still flows the old path; the new
//     path is fully plumbed but dark.
//  4. Flip the feed rules: the slots steering traffic INTO the VNF are
//     replaced in place — flow.Table Add semantics swap a slot atomically
//     (the old rule is death-marked, so EMC/SMC cannot serve it again).
//     From this instant new packets ride the new path end to end.
//  5. Drain the old path: packets already committed to it — parked in
//     bypass rings, the old VM's port backlog, in flight on retired trunk
//     lanes — are carried to delivery by the STALE rules, which are kept
//     installed for exactly this long. The drain watches conservation
//     (old app in == out, backlogs empty, retired-lane counters quiet).
//  6. Tear down: stale rules deleted (the bypass manager dissolves the old
//     links with its usual zero-loss drain), old app stopped, old VM
//     destroyed, retired lanes released.
//
// Loss target is zero: at no point does a packet face a table with no
// matching rule, and nothing holding packets is destroyed before it drains.

// migrateDrainTimeout bounds step 5. A paced chain settles in a few
// milliseconds; the bound only matters when the chain is saturated (where
// steady-state loss exists anyway and "drained" is ill-defined).
const migrateDrainTimeout = 3 * time.Second

// ErrMigrationInFlight is returned by control-plane entry points that find
// another live migration holding the deployment during its drain window.
// Migrate releases cd.mu for the (up to migrateDrainTimeout-long) drain so
// co-resident control actions are not blocked; the in-flight mark is what
// keeps a second migration from interleaving with the first's stale rules.
var ErrMigrationInFlight = errors.New("orchestrator: migration in flight")

// MigrateReport describes a completed live migration.
type MigrateReport struct {
	VNF  string
	From string
	To   string
	// Cutover is the make-before-break window: from the atomic feed-rule
	// flip until the old path read drained (or the drain deadline fired)
	// and the datapath quiesced.
	Cutover time.Duration
	// Drained reports whether the old path was observed structurally quiet
	// (a sustained run of identical quiet samples) before teardown. False
	// means migrateDrainTimeout expired first and teardown proceeded on the
	// deadline — possible residual loss on a saturated chain, worth
	// surfacing instead of tearing down silently.
	Drained bool
}

// drainSample is one observation of everything still committed to the old
// path. Comparable: two equal consecutive quiet samples mean drained.
type drainSample struct {
	appRx, appTx, appTxD, appDrop uint64
	backlog                       int
	bypassBacklog                 int
	trunkBacklog                  int
	laneCarried                   uint64
	laneDropped                   uint64
}

func (s drainSample) quiet() bool {
	return s.bypassBacklog == 0 && s.backlog == 0 && s.trunkBacklog == 0 &&
		s.appRx == s.appTx+s.appTxD+s.appDrop
}

// beginMigration marks the deployment as owned by a live migration, so the
// drain window can release cd.mu without letting other control actions
// interleave with its stale rules. Caller holds cd.mu.
func (cd *ClusterDeployment) beginMigration(vnf string) {
	if cd.migDone == nil {
		cd.migDone = sync.NewCond(&cd.mu)
	}
	cd.migrating = vnf
}

// endMigration clears the in-flight mark and wakes waiters (Stop). Caller
// holds cd.mu.
func (cd *ClusterDeployment) endMigration() {
	cd.migrating = ""
	cd.migDone.Broadcast()
}

// waitMigrationDone blocks until no migration is in flight. Caller holds
// cd.mu; the lock is released while waiting and held again on return.
func (cd *ClusterDeployment) waitMigrationDone() {
	for cd.migrating != "" {
		cd.migDone.Wait()
	}
}

// Migrate moves a running middle VNF to another node with make-before-break
// double-steering, draining the old path before tearing it down. The graph
// the deployment was created from is updated in place (the VNF's Node pin
// changes), so subsequent reconcile passes converge on the new layout.
//
// cd.mu is NOT held across the step-5 drain (up to migrateDrainTimeout):
// the deployment is marked migration-in-flight instead, so a concurrent
// Migrate fails with ErrMigrationInFlight, Reconcile defers its pass, and
// Stop waits for the migration to finish.
func (cd *ClusterDeployment) Migrate(vnfName, target string) (MigrateReport, error) {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	if cd.stopped {
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: deployment is stopped", vnfName)
	}
	if cd.migrating != "" {
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: %w (%s is draining)", vnfName, ErrMigrationInFlight, cd.migrating)
	}
	c := cd.cluster
	if c.nodes[target] == nil {
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: unknown node %q", vnfName, target)
	}
	vi := -1
	for i, v := range cd.graph.VNFs {
		if v.Name == vnfName {
			vi = i
			break
		}
	}
	if vi < 0 {
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate: unknown VNF %q", vnfName)
	}
	v := cd.graph.VNFs[vi]
	if v.Kind.PortCount() != 2 {
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: only two-port middle VNFs migrate (kind %s)", vnfName, v.Kind)
	}
	src := ""
	for node, d := range cd.deps {
		if _, ok := d.vms[vnfName]; ok {
			src = node
			break
		}
	}
	if src == "" {
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate: VNF %q not instantiated", vnfName)
	}
	rep := MigrateReport{VNF: vnfName, From: src, To: target}
	if src == target {
		rep.Drained = true
		return rep, nil
	}
	srcDep := cd.deps[src]
	oldIDs := append([]uint32(nil), srcDep.vms[vnfName]...)
	oldApp := srcDep.appByName(vnfName)

	// Re-pin and re-partition: the new desired layout.
	prevNode := cd.graph.VNFs[vi].Node
	cd.graph.VNFs[vi].Node = target
	revertPin := func() { cd.graph.VNFs[vi].Node = prevNode }
	part, err := cd.graph.Partition(c.DefaultNode(), c.nicNodes())
	if err != nil {
		revertPin()
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: %w", vnfName, err)
	}

	// Step 1: replica on the target node.
	tdep := cd.deps[target]
	if tdep == nil {
		tdep = newDeployment(c.nodes[target])
		cd.deps[target] = tdep
	}
	vNew := v
	vNew.Node = target
	if err := tdep.instantiate(vNew); err != nil {
		revertPin()
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: %w", vnfName, err)
	}

	// Step 2: lane diff by crossing identity (position in Graph.Edges).
	oldByIdx := make(map[int]laneSteer, len(cd.steers))
	for _, st := range cd.steers {
		oldByIdx[st.ce.Index] = st
	}
	var kept, added []laneSteer
	for _, ce := range part.Cross {
		if st, ok := oldByIdx[ce.Index]; ok && st.ce.NodeA == ce.NodeA && st.ce.NodeB == ce.NodeB {
			st.ce = ce
			kept = append(kept, st)
			delete(oldByIdx, ce.Index)
			continue
		}
		added = append(added, laneSteer{ce: ce})
	}
	var retired []laneSteer
	for _, st := range oldByIdx {
		retired = append(retired, st)
	}
	releaseSteers := func(sts []laneSteer) {
		for _, st := range sts {
			st.eachPair(func(pair pairKey) {
				c.releaseLane(pair, st.vid)
			})
			c.releaseVid(st.vid)
		}
	}
	c.mu.Lock()
	for i := range added {
		ce := added[i].ce
		vid, err := c.allocVidLocked()
		if err == nil {
			added[i].vid = vid
		pathLoop:
			for _, path := range c.paths(ce.NodeA, ce.NodeB, cd.spines, cd.tcfg) {
				var done []pairKey
				for _, pair := range path {
					ct, terr := c.ensureTrunk(pair, cd.tcfg)
					if terr == nil {
						terr = ct.addLaneLocked(vid)
					}
					if terr != nil {
						err = terr
						if len(done) > 0 {
							added[i].paths = append(added[i].paths, done)
						}
						break pathLoop
					}
					done = append(done, pair)
				}
				added[i].paths = append(added[i].paths, done)
			}
		}
		if err != nil {
			c.mu.Unlock()
			releaseSteers(added[:i+1])
			tdep.removeVNF(vnfName)
			revertPin()
			return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: %w", vnfName, err)
		}
	}
	c.mu.Unlock()

	// Recompute every node's desired local rules against the new partition
	// (the old VNF's ports drop out, the replica's come in).
	prevSpecs := make(map[string][]flow.FlowSpec, len(cd.deps))
	for node, d := range cd.deps {
		prevSpecs[node] = d.specs
	}
	prevSteers := cd.steers
	revertSpec := func() {
		for node, d := range cd.deps {
			d.specs = prevSpecs[node]
		}
		cd.steers = prevSteers
	}
	for node, d := range cd.deps {
		lg, ok := part.Local[node]
		if !ok {
			d.specs = nil
			continue
		}
		sp, serr := d.edgeSpecs(lg)
		if serr != nil {
			revertSpec()
			releaseSteers(added)
			tdep.removeVNF(vnfName)
			revertPin()
			return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: %w", vnfName, serr)
		}
		d.specs = sp
	}
	cd.steers = append(kept, added...)
	desired, err := cd.desiredSpecs()
	if err != nil {
		revertSpec()
		releaseSteers(added)
		tdep.removeVNF(vnfName)
		revertPin()
		return MigrateReport{}, fmt.Errorf("orchestrator: migrate %s: %w", vnfName, err)
	}

	// Steps 3+4: make before break. Fresh slots first — the complete dark
	// path — then the in-place feed flips, each one an atomic slot swap.
	freshByNode := make(map[string][]flow.FlowSpec)
	flipByNode := make(map[string][]flow.FlowSpec)
	for _, node := range c.order {
		installed := cd.installedOn(node)
		for _, sp := range desired[node] {
			k := flowKey{sp.Priority, sp.Match}
			if f, ok := installed[k]; ok {
				if f.Cookie == sp.Cookie && f.Actions.Equal(sp.Actions) {
					continue
				}
				flipByNode[node] = append(flipByNode[node], sp)
			} else {
				freshByNode[node] = append(freshByNode[node], sp)
			}
		}
	}
	for node, ss := range freshByNode {
		c.nodes[node].Switch.Table().AddBatch(ss)
	}
	for node, ss := range flipByNode {
		c.nodes[node].Switch.Table().AddBatch(ss)
	}
	flipped := time.Now()

	// Step 5: drain everything still committed to the old path. Stale rules
	// are still installed, so these packets are carried to delivery.
	oldSet := make(map[uint32]bool, len(oldIDs))
	for _, id := range oldIDs {
		oldSet[id] = true
	}
	// Pairs still carrying live lanes share their NIC rings and pump queues
	// with active traffic, so a structural emptiness probe there would never
	// read zero; it applies only to pairs the retirement leaves idle.
	pairLive := make(map[pairKey]bool)
	for _, st := range cd.steers {
		st.eachPair(func(pair pairKey) {
			pairLive[pair] = true
		})
	}
	sample := func() drainSample {
		var s drainSample
		if oldApp != nil {
			s.appRx = oldApp.RxPackets.Load()
			s.appTx = oldApp.TxPackets.Load()
			s.appTxD = oldApp.TxDrops.Load()
			s.appDrop = oldApp.Dropped.Load()
		}
		for _, id := range oldIDs {
			s.backlog += srcDep.node.portBacklog(id)
		}
		// The links themselves persist until the stale rules go (step 6);
		// what must empty here is the packets parked in their rings.
		for _, l := range srcDep.node.Switch.BypassLinks() {
			if oldSet[l.From] || oldSet[l.To] {
				s.bypassBacklog += l.Ring.Len()
			}
		}
		// Retired-lane hops: the structural backlog (frames parked in the
		// trunk's staging/delay queues and the NIC descriptor rings) must be
		// zero, AND the lane counters must not have moved between samples —
		// counters alone cannot see parked frames, backlogs alone could be
		// sampled in the instant a frame is between rings.
		c.mu.Lock()
		for _, st := range retired {
			st.eachPair(func(pair pairKey) {
				ct, ok := c.trunks[pair]
				if !ok {
					return
				}
				for _, tl := range ct.links {
					if tl.failed {
						continue
					}
					if !pairLive[pair] {
						s.trunkBacklog += tl.tr.Backlog() +
							tl.nicLo.QueueBacklog() + tl.nicHi.QueueBacklog()
					}
					ab, ba, ok := tl.tr.LaneStats(st.vid)
					if ok {
						s.laneCarried += ab.Carried + ba.Carried
						s.laneDropped += ab.Dropped + ba.Dropped
					}
				}
			})
		}
		c.mu.Unlock()
		return s
	}
	// Drained = a sustained run of identical quiet samples. One quiet pair
	// is not enough: a frame in a descheduled thread's hands is in no ring
	// and moves no counter, so the window must outlast scheduling hiccups.
	//
	// The drain holds no control-plane state beyond the stale rules it
	// reads counters through, so cd.mu is released for its duration — a
	// multi-second drain must not block Stop, reconcile passes or control
	// actions on co-resident deployments. The in-flight mark set here is
	// what concurrent entrants key off.
	cd.beginMigration(vnfName)
	cd.mu.Unlock()
	if cd.testDrainHold != nil {
		cd.testDrainHold()
	}
	deadline := time.Now().Add(migrateDrainTimeout)
	prev := sample()
	stable := 0
	for time.Now().Before(deadline) && stable < 3 {
		time.Sleep(time.Millisecond)
		cur := sample()
		if cur == prev && cur.quiet() {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
	rep.Drained = stable >= 3
	srcDep.node.Switch.WaitDatapathQuiescence()
	rep.Cutover = time.Since(flipped)
	cd.mu.Lock()
	cd.endMigration()

	// Step 6: break. Converge tables onto the new desired state (deleting
	// the stale old-path rules — the bypass manager dissolves their links
	// with its own zero-loss drain), then retire the old VM and lanes.
	cd.applySpecs(desired)
	waitCond(func() bool {
		for _, l := range srcDep.node.Switch.BypassLinks() {
			if oldSet[l.From] || oldSet[l.To] {
				return false
			}
		}
		return true
	})
	srcDep.removeVNF(vnfName)
	releaseSteers(retired)
	return rep, nil
}

// removeVNF retires one middle VNF from a local deployment: app stopped,
// port mappings dropped, VM destroyed (which waits out the datapath and
// frees parked frames). Rules are the caller's business.
func (d *Deployment) removeVNF(name string) {
	ids := d.vms[name]
	if ids == nil {
		return
	}
	for i, a := range d.apps {
		if a.Name == name {
			a.Stop()
			d.apps = append(d.apps[:i], d.apps[i+1:]...)
			break
		}
	}
	delete(d.vms, name)
	for i := range ids {
		delete(d.portOf, graph.VNFPort(name, i))
	}
	_ = d.node.DestroyVM(name, ids)
}
