package orchestrator

import "time"

// waitCond polls cond up to a bounded deadline; used for control-plane
// convergence (bypass establishment/teardown is asynchronous by design).
func waitCond(cond func() bool) bool {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return cond()
}

// WaitBypassCount blocks until the switch reports exactly n live bypass
// links (or times out), returning whether the condition was met. Benchmarks
// use it to ensure the highway is fully established before measuring.
func (n *Node) WaitBypassCount(want int) bool {
	return waitCond(func() bool { return n.Switch.BypassLinkCount() == want })
}
