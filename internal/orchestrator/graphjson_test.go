package orchestrator

import (
	"testing"
	"time"

	"ovshighway/internal/graph"
	"ovshighway/internal/vnf"
)

const sampleGraph = `{
  "vnfs": [
    {"name": "src", "kind": "source", "flows": 4},
    {"name": "fw",  "kind": "firewall",
     "rules": [{"proto": 17, "dst_port": 53, "src_prefix": "10.0.0.0/8"}]},
    {"name": "mon", "kind": "monitor"},
    {"name": "dst", "kind": "sink"}
  ],
  "edges": [
    {"a": "src:0", "b": "fw:0",  "bidir": true},
    {"a": "fw:1",  "b": "mon:0", "bidir": true},
    {"a": "mon:1", "b": "dst:0", "bidir": true}
  ]
}`

func TestParseGraphJSON(t *testing.T) {
	g, err := ParseGraphJSON([]byte(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.VNFs) != 4 || len(g.Edges) != 3 {
		t.Fatalf("vnfs=%d edges=%d", len(g.VNFs), len(g.Edges))
	}
	if g.VNFs[0].Kind != graph.KindSource {
		t.Fatalf("vnf0 kind = %q", g.VNFs[0].Kind)
	}
	args, ok := g.VNFs[0].Args.(SourceSpecArgs)
	if !ok || args.Flows != 4 {
		t.Fatalf("source args = %+v", g.VNFs[0].Args)
	}
	rules, ok := g.VNFs[1].Args.([]vnf.FirewallRule)
	if !ok || len(rules) != 1 {
		t.Fatalf("firewall args = %+v", g.VNFs[1].Args)
	}
	if rules[0].Proto != 17 || rules[0].DstPort != 53 || rules[0].SrcPrefixLen != 8 {
		t.Fatalf("rule = %+v", rules[0])
	}
	if !g.Edges[0].Bidirectional || g.Edges[0].A.Name != "src" || g.Edges[0].B.Port != 0 {
		t.Fatalf("edge0 = %+v", g.Edges[0])
	}
}

func TestGraphJSONNodePlacementRoundTrip(t *testing.T) {
	placed := `{
	  "vnfs": [
	    {"name": "end0", "kind": "srcsink", "flows": 2, "timestamp": true, "node": "node-a"},
	    {"name": "fw",   "kind": "firewall", "node": "node-a",
	     "rules": [{"proto": 17, "dst_port": 53, "src_prefix": "10.0.0.0/8"}]},
	    {"name": "vnf1", "kind": "forward", "node": "node-b"},
	    {"name": "end1", "kind": "srcsink", "node": "node-b"}
	  ],
	  "edges": [
	    {"a": "end0:0", "b": "fw:0",   "bidir": true},
	    {"a": "fw:1",   "b": "vnf1:0", "bidir": true},
	    {"a": "vnf1:1", "b": "end1:0", "bidir": true}
	  ]
	}`
	g, err := ParseGraphJSON([]byte(placed))
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := map[string]string{"end0": "node-a", "fw": "node-a", "vnf1": "node-b", "end1": "node-b"}
	for _, v := range g.VNFs {
		if v.Node != wantNodes[v.Name] {
			t.Fatalf("%s parsed onto %q, want %q", v.Name, v.Node, wantNodes[v.Name])
		}
	}
	// Serialize and re-parse: the placement (and everything else) survives.
	data, err := FormatGraphJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGraphJSON(data)
	if err != nil {
		t.Fatalf("re-parse of formatted graph: %v\n%s", err, data)
	}
	if len(g2.VNFs) != len(g.VNFs) || len(g2.Edges) != len(g.Edges) {
		t.Fatalf("round-trip shrank the graph: %d VNFs %d edges", len(g2.VNFs), len(g2.Edges))
	}
	for i, v := range g2.VNFs {
		if v.Node != g.VNFs[i].Node {
			t.Fatalf("%s round-tripped onto %q, want %q", v.Name, v.Node, g.VNFs[i].Node)
		}
		if v.Kind != g.VNFs[i].Kind {
			t.Fatalf("%s kind drifted: %q vs %q", v.Name, v.Kind, g.VNFs[i].Kind)
		}
	}
	for i, e := range g2.Edges {
		if e != g.Edges[i] {
			t.Fatalf("edge %d drifted: %+v vs %+v", i, e, g.Edges[i])
		}
	}
	// Kind-specific args survive too.
	args, ok := g2.VNFs[0].Args.(SrcSinkArgs)
	if !ok || args.Flows != 2 || !args.Timestamp {
		t.Fatalf("srcsink args lost: %+v", g2.VNFs[0].Args)
	}
	rules, ok := g2.VNFs[1].Args.([]vnf.FirewallRule)
	if !ok || len(rules) != 1 || rules[0].DstPort != 53 || rules[0].SrcPrefixLen != 8 {
		t.Fatalf("firewall rules lost: %+v", g2.VNFs[1].Args)
	}
}

func TestFormatGraphJSONNICEndpoints(t *testing.T) {
	g, err := ParseGraphJSON([]byte(`{
	  "vnfs": [{"name": "f1", "kind": "forward"}],
	  "edges": [
	    {"a": "nic:eth0", "b": "f1:0", "bidir": true},
	    {"a": "f1:1", "b": "nic:eth1", "bidir": true}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	data, err := FormatGraphJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGraphJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Edges[0].A != graph.NIC("eth0") || g2.Edges[1].B != graph.NIC("eth1") {
		t.Fatalf("NIC endpoints drifted: %+v", g2.Edges)
	}
}

func TestParseGraphJSONNICEndpoints(t *testing.T) {
	g, err := ParseGraphJSON([]byte(`{
	  "vnfs": [{"name": "f1", "kind": "forward"}],
	  "edges": [
	    {"a": "nic:eth0", "b": "f1:0", "bidir": true},
	    {"a": "f1:1", "b": "nic:eth1", "bidir": true}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].A.Kind != graph.EpNIC || g.Edges[0].A.Name != "eth0" {
		t.Fatalf("nic endpoint = %+v", g.Edges[0].A)
	}
}

func TestParseGraphJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"vnfs": [{"name": "x", "kind": "bogus"}]}`,
		`{"vnfs": [{"name": "a", "kind": "sink"}], "edges": [{"a": "a", "b": "a:0"}]}`,       // endpoint without port
		`{"vnfs": [{"name": "a", "kind": "sink"}], "edges": [{"a": "a:x", "b": "a:0"}]}`,     // bad port
		`{"vnfs": [{"name": "a", "kind": "sink"}], "edges": [{"a": "ghost:0", "b": "a:0"}]}`, // unknown vnf
		`{"vnfs": [{"name": "fw", "kind": "firewall", "rules": [{"src_prefix": "10.0.0.0/99"}]},
		           {"name": "a", "kind": "sink"}]}`, // bad prefix
	}
	for _, c := range cases {
		if _, err := ParseGraphJSON([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestDeployGraphFromJSON(t *testing.T) {
	n := newNode(t, ModeHighway)
	g, err := ParseGraphJSON([]byte(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	d, err := n.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if !n.WaitBypassCount(6) {
		t.Fatalf("bypasses = %d", n.Switch.BypassLinkCount())
	}
	sink := d.Sink("dst")
	deadline := time.Now().Add(5 * time.Second)
	for sink.Received.Load() < 1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.Received.Load() < 1000 {
		t.Fatalf("sink received %d", sink.Received.Load())
	}
}
