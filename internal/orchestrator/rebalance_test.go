package orchestrator

import (
	"testing"
	"time"

	"ovshighway/internal/graph"
)

// skewedChain deploys an n-middle paced chain with the middles deliberately
// alternated between the two outer nodes — every chain edge crosses, the
// layout a drift-driven controller exists to fix.
func skewedChain(t *testing.T, c *Cluster, n int, outer0, outer1 string) *ClusterDeployment {
	t.Helper()
	g := graph.SplitBidirChain(n, nil)
	for i := range g.VNFs {
		v := &g.VNFs[i]
		switch v.Name {
		case "end0":
			v.Node = outer0
			v.Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: 4, RatePps: 20_000}
		case "end1":
			v.Node = outer1
			spec := DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			v.Args = SrcSinkArgs{Spec: spec, Flows: 4, RatePps: 20_000}
		default:
			// vnf1, vnf3, … on the far node, vnf2, vnf4, … on the near one,
			// so every chain edge crosses.
			if i%2 == 0 {
				v.Node = outer1
			} else {
				v.Node = outer0
			}
		}
	}
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cd.Stop)
	waitRecv(t, cd, "end0", 1000)
	waitRecv(t, cd, "end1", 1000)
	return cd
}

// TestRebalancerConvergesSkewedLayout: a pass over a fully alternating
// layout must strictly reduce crossings through rolling migrations — one in
// flight at a time — and leave a layout the reconciler finds converged.
func TestRebalancerConvergesSkewedLayout(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	cd := skewedChain(t, c, 6, "a", "c")

	before := cd.Crossings()
	if before < 6 {
		t.Fatalf("skew setup produced only %d crossings", before)
	}
	r := c.newRebalancer(RebalanceConfig{Interval: 10 * time.Millisecond, Cooldown: time.Hour})
	if moved := r.runOnce(); moved == 0 {
		t.Fatal("controller planned no moves for a fully skewed layout")
	}
	after := cd.Crossings()
	if after >= before {
		t.Fatalf("crossings did not decrease: %d → %d", before, after)
	}
	st := r.Stats()
	if st.MaxInFlight > 1 {
		t.Fatalf("controller ran %d migrations concurrently, want at most 1", st.MaxInFlight)
	}
	if st.Errors != 0 {
		t.Fatalf("controller recorded %d errors", st.Errors)
	}
	for _, mv := range r.Moves() {
		if mv.Err != nil {
			t.Fatalf("move %s %s→%s failed: %v", mv.VNF, mv.From, mv.To, mv.Err)
		}
		if !mv.Report.Drained {
			t.Errorf("move %s did not drain before the deadline", mv.VNF)
		}
	}
	// Every VNF just moved is cooling down, so a second pass is a no-op.
	if moved := r.runOnce(); moved != 0 {
		t.Fatalf("second pass moved %d VNFs during cooldown", moved)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("post-rebalance reconcile: %d repairs, err %v", n, err)
	}
}

// TestRebalanceAbortMidPlan: stopping the controller between moves abandons
// the rest of the plan, and what has executed is a complete, reconcilable
// layout — no half-migrated state.
func TestRebalanceAbortMidPlan(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	cd := skewedChain(t, c, 6, "a", "c")

	r := c.newRebalancer(RebalanceConfig{Interval: 10 * time.Millisecond, Cooldown: time.Hour})
	r.testAfterMove = func(RebalanceMove) { r.requestStop() }
	if moved := r.runOnce(); moved != 1 {
		t.Fatalf("aborted pass executed %d moves, want exactly 1", moved)
	}
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("layout after mid-plan abort is not converged: %d repairs, err %v", n, err)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
}

// TestRebalanceCooldownPreventsPingPong: under load that flips between
// passes, the per-VNF cooldown must keep the controller from bouncing the
// VNF straight back; once the cooldown expires the controller may act again.
func TestRebalanceCooldownPreventsPingPong(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	cd := pacedSplitChain(t, c, 1, []string{"a", "b"})

	r := c.newRebalancer(RebalanceConfig{
		Interval: 10 * time.Millisecond,
		Cooldown: 300 * time.Millisecond,
	})
	// Node a hot: the balance-driven plan pushes vnf1 (crossing-neutral on
	// a 1-middle chain) onto b.
	if moved := r.pass([]float64{4, 0}); moved != 1 {
		t.Fatalf("hot-a pass moved %d VNFs, want 1", moved)
	}
	if cd.Deployment("b") == nil || cd.Deployment("b").vms["vnf1"] == nil {
		t.Fatal("vnf1 not moved to b")
	}
	// Load flips immediately: without the cooldown this would bounce vnf1
	// right back. The damper must hold it.
	if moved := r.pass([]float64{0, 4}); moved != 0 {
		t.Fatal("oscillating load ping-ponged a VNF inside its cooldown")
	}
	// After the cooldown expires the same pressure is actionable again.
	time.Sleep(350 * time.Millisecond)
	if moved := r.pass([]float64{0, 4}); moved != 1 {
		t.Fatal("cooldown never expired — controller stuck")
	}
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("post-pass reconcile: %d repairs, err %v", n, err)
	}
}

// TestDrainEvacuatesNode: draining a node live-moves every resident middle
// VNF elsewhere, cordons the node against re-placement, and loses nothing.
func TestDrainEvacuatesNode(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	g := graph.SplitBidirChain(4, nil)
	for i := range g.VNFs {
		v := &g.VNFs[i]
		switch v.Name {
		case "end0":
			v.Node = "a"
			v.Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: 4, RatePps: 20_000}
		case "end1":
			v.Node = "b"
			spec := DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			v.Args = SrcSinkArgs{Spec: spec, Flows: 4, RatePps: 20_000}
		default:
			v.Node = "c"
		}
	}
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	waitRecv(t, cd, "end0", 1000)
	waitRecv(t, cd, "end1", 1000)

	moved, err := c.Drain("c")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Fatalf("drain moved %d VNFs, want 4", moved)
	}
	if d := cd.Deployment("c"); d != nil && len(d.vms) != 0 {
		t.Fatalf("node c still hosts VMs after drain: %v", d.vms)
	}
	if cs := c.CordonedNodes(); len(cs) != 1 || cs[0] != "c" {
		t.Fatalf("drain did not cordon the node: %v", cs)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("post-drain reconcile: %d repairs, err %v", n, err)
	}
}

// TestDrainEmptyNodeIsNoop: draining a node hosting no VNFs moves nothing
// and still applies the cordon.
func TestDrainEmptyNodeIsNoop(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b")
	cd := pacedSplitChain(t, c, 2, []string{"a"})

	moved, err := c.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("draining an empty node moved %d VNFs", moved)
	}
	if cs := c.CordonedNodes(); len(cs) != 1 || cs[0] != "b" {
		t.Fatalf("drain did not cordon the empty node: %v", cs)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)

	if _, err := c.Drain("nope"); err == nil {
		t.Fatal("draining an unknown node was accepted")
	}
}

// TestCordonExcludesFromPlacement: DeployPlaced never assigns an unpinned
// VNF to a cordoned node; Uncordon restores it to the pool.
func TestCordonExcludesFromPlacement(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	if err := c.Cordon("c"); err != nil {
		t.Fatal(err)
	}
	if err := c.Cordon("c"); err != nil {
		t.Fatalf("cordon is not idempotent: %v", err)
	}
	if err := c.Cordon("nope"); err == nil {
		t.Fatal("cordoning an unknown node was accepted")
	}

	cd, _, err := c.DeployPlaced(graph.SplitBidirChain(4, nil), TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	for _, v := range cd.graph.VNFs {
		if v.Node == "c" {
			t.Fatalf("VNF %s placed on cordoned node c", v.Name)
		}
	}
	if d := cd.Deployment("c"); d != nil && len(d.vms) != 0 {
		t.Fatalf("cordoned node c hosts VMs: %v", d.vms)
	}

	if err := c.Uncordon("c"); err != nil {
		t.Fatal(err)
	}
	if cs := c.CordonedNodes(); len(cs) != 0 {
		t.Fatalf("uncordon left cordons behind: %v", cs)
	}
}
