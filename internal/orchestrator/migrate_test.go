package orchestrator

import (
	"errors"
	"testing"
	"time"

	"ovshighway/internal/graph"
)

// pacedSplitChain deploys an n-middle bidirectional chain over the given
// nodes with paced endpoints, so migration drains settle in milliseconds.
func pacedSplitChain(t *testing.T, c *Cluster, n int, nodes []string) *ClusterDeployment {
	t.Helper()
	g := graph.SplitBidirChain(n, nodes)
	for i := range g.VNFs {
		switch g.VNFs[i].Name {
		case "end0":
			g.VNFs[i].Args = SrcSinkArgs{Spec: DefaultTrafficSpec(), Flows: 4, RatePps: 20_000}
		case "end1":
			spec := DefaultTrafficSpec()
			spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
			spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
			g.VNFs[i].Args = SrcSinkArgs{Spec: spec, Flows: 4, RatePps: 20_000}
		}
	}
	cd, err := c.Deploy(g, TrunkConfig{RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cd.Stop)
	waitRecv(t, cd, "end0", 1000)
	waitRecv(t, cd, "end1", 1000)
	return cd
}

// TestReconcileDuringMigrationDrain: the multi-second drain window of a
// live migration must not hold cd.mu — a reconcile pass arriving mid-drain
// completes (deferring the deployment), and a second Migrate fails fast
// with the typed in-flight error instead of queueing behind the drain.
func TestReconcileDuringMigrationDrain(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	cd := pacedSplitChain(t, c, 3, []string{"a", "b"})

	entered := make(chan struct{})
	release := make(chan struct{})
	cd.testDrainHold = func() {
		close(entered)
		<-release
	}
	type migResult struct {
		rep MigrateReport
		err error
	}
	resCh := make(chan migResult, 1)
	go func() {
		rep, err := cd.Migrate("vnf2", "c")
		resCh <- migResult{rep, err}
	}()
	select {
	case <-entered:
	case res := <-resCh:
		t.Fatalf("migration finished before entering the drain: %+v err=%v", res.rep, res.err)
	case <-time.After(5 * time.Second):
		t.Fatal("migration never reached the drain window")
	}

	recDone := make(chan error, 1)
	go func() {
		_, err := c.ReconcileOnce()
		recDone <- err
	}()
	select {
	case err := <-recDone:
		if err != nil {
			t.Fatalf("reconcile during drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReconcileOnce blocked by an in-progress migration drain")
	}

	if _, err := cd.Migrate("vnf1", "b"); !errors.Is(err, ErrMigrationInFlight) {
		t.Fatalf("concurrent migrate returned %v, want ErrMigrationInFlight", err)
	}

	close(release)
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !res.rep.Drained {
		t.Errorf("paced chain should drain before the deadline: %+v", res.rep)
	}
	base := cd.SrcSink("end1").Received.Load()
	waitRecv(t, cd, "end1", base+1000)
	if n, err := c.ReconcileOnce(); err != nil || n != 0 {
		t.Fatalf("post-migration reconcile: %d repairs, err %v", n, err)
	}
}

// TestStopWaitsForMigrationDrain: teardown arriving mid-drain must wait for
// the migration to finish rather than destroying the VMs and lanes the
// drain is still reading.
func TestStopWaitsForMigrationDrain(t *testing.T) {
	c := newCluster(t, ModeVanilla, "a", "b", "c")
	cd := pacedSplitChain(t, c, 3, []string{"a", "b"})

	entered := make(chan struct{})
	release := make(chan struct{})
	cd.testDrainHold = func() {
		close(entered)
		<-release
	}
	migDone := make(chan error, 1)
	go func() {
		_, err := cd.Migrate("vnf2", "c")
		migDone <- err
	}()
	<-entered

	stopDone := make(chan struct{})
	go func() {
		cd.Stop()
		close(stopDone)
	}()
	select {
	case <-stopDone:
		t.Fatal("Stop completed while the migration drain was still in progress")
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-migDone; err != nil {
		t.Fatal(err)
	}
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop never completed after the migration finished")
	}
}
